// Figure 3: GapBS PageRank and XSBench throughput (48 threads) — the "ideal"
// far-memory system vs. Hermit, plus the paper's analytic ideal model (§3.1)
// evaluated on the simulated ideal system's fault counts.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/xsbench.h"

int main() {
  using namespace magesim;
  PrintBanner("Figure 3: 'ideal' far-memory vs Hermit, 48 threads");

  std::vector<int> fars = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90};

  auto run_pair = [&](const std::string& title, const WorkloadFactory& make) {
    auto ideal = SweepSystem(IdealConfig(), make, fars);
    auto hermit = SweepSystem(HermitConfig(), make, fars);
    Table t({"far%", "ideal", "analytic-ideal", "hermit"});
    for (size_t i = 0; i < fars.size(); ++i) {
      double analytic =
          i == 0 ? 1.0
                 : IdealThroughputFraction(ideal[i].faults_per_core,
                                           ideal[i].local_seconds, UsToNs(3.9));
      t.AddRow({std::to_string(fars[i]), Table::Pct(ideal[i].normalized * 100),
                Table::Pct(analytic * 100), Table::Pct(hermit[i].normalized * 100)});
    }
    std::printf("\n%s (normalized throughput)\n", title.c_str());
    t.Print();
  };

  run_pair("(a) GapBS PageRank", [] {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 48});
  });
  run_pair("(b) XSBench", [] {
    return std::make_unique<XsBenchWorkload>(
        XsBenchWorkload::Options{.gridpoints = Scaled(1 << 19),
                                 .lookups_per_thread = Scaled(4000),
                                 .threads = 48});
  });
  return 0;
}
