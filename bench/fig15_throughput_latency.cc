// Figure 15: throughput-latency curves vs. raw RDMA reads. Offered fault
// load is swept via thread count; the raw-RDMA curve posts open-loop reads at
// increasing rates with four background writer threads for parity with the
// systems' eviction traffic.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

struct Point {
  double mops;
  double p99_us;
};

Point RunSystem(const KernelConfig& cfg, int threads) {
  SeqScanWorkload wl({.region_pages = Scaled(1200) * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 45 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  return {r.fault_mops, static_cast<double>(r.fault_latency.Percentile(99)) / 1000.0};
}

// Raw RDMA: open-loop Poisson reads at `rate_mops` with 4 saturating
// writers for parity with the systems' eviction traffic (§6.4).
Task<> RecordCompletion(std::shared_ptr<RdmaCompletion> c, Histogram& lat, SimTime posted) {
  co_await c->Wait();
  lat.Record(Engine::current().now() - posted);
}

Point RunRawRdma(double rate_mops) {
  Engine eng;
  RdmaNic nic(BareMetalParams());
  Histogram lat;
  constexpr SimTime kDeadline = 30 * kMillisecond;
  auto reader = [](RdmaNic& nic, Histogram& lat, double rate_mops) -> Task<> {
    Rng rng(7);
    double mean_interarrival_ns = 1000.0 / rate_mops;  // M ops/s == ops/us
    Engine& eng = Engine::current();
    while (eng.now() < kDeadline) {
      co_await Delay{static_cast<SimTime>(rng.NextExponential(mean_interarrival_ns)) + 1};
      // Open loop: post and move on; completions are recorded asynchronously.
      eng.Spawn(RecordCompletion(nic.PostRead(kPageSize), lat, eng.now()));
    }
  };
  auto writer = [](RdmaNic& nic) -> Task<> {
    while (Engine::current().now() < kDeadline) {
      co_await nic.Write(kPageSize);
    }
  };
  eng.Spawn(reader(nic, lat, rate_mops));
  for (int i = 0; i < 4; ++i) eng.Spawn(writer(nic));
  eng.Run();
  return {static_cast<double>(lat.count()) / (NsToSec(kDeadline) * 1e6),
          static_cast<double>(lat.Percentile(99)) / 1000.0};
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 15: throughput vs p99 latency (fault path vs raw RDMA)");

  Table t({"series", "Mops", "p99(us)"});
  for (double rate : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 5.5, 5.8}) {
    Point p = RunRawRdma(rate);
    t.AddRow({"raw-rdma", Table::Num(p.mops), Table::Num(p.p99_us, 1)});
  }
  for (const auto& cfg : AllSystemConfigs()) {
    for (int threads : {4, 8, 16, 24, 32, 40, 48}) {
      Point p = RunSystem(cfg, threads);
      t.AddRow({cfg.name, Table::Num(p.mops), Table::Num(p.p99_us, 1)});
    }
  }
  t.Print();
  std::printf("(magelib should hold a flat tail into saturation: its fault path\n"
              " back-pressures the NIC instead of overrunning it)\n");
  return 0;
}
