// Figure 10: the regular (prefetchable) sequential-scan pattern with and
// without prefetching. Prefetching only helps MAGE, whose eviction path can
// absorb the extra fault-in pressure; it barely helps DiLOS and hurts Hermit
// (sync eviction).
#include "bench/app_sweep.h"
#include "src/workloads/seqscan.h"

int main() {
  using namespace magesim;
  PrintBanner("Figure 10: sequential scan with/without prefetching, 48 threads");

  uint64_t pages = Scaled(48 * 1024);
  auto make = [pages] {
    return std::make_unique<SeqScanWorkload>(
        SeqScanWorkload::Options{.region_pages = pages, .threads = 48, .passes = 2});
  };

  auto with_prefetch = [](KernelConfig cfg) {
    cfg.prefetch = true;
    cfg.name += "+pf";
    return cfg;
  };

  std::vector<int> fars = {0, 10, 20, 30, 40, 50};
  std::vector<KernelConfig> systems = {
      IdealConfig(),          MageLibConfig(), with_prefetch(MageLibConfig()),
      DilosConfig(),          with_prefetch(DilosConfig()),
      HermitConfig(),         with_prefetch(HermitConfig())};

  std::map<std::string, std::vector<SweepPoint>> res;
  for (const auto& cfg : systems) res[cfg.name] = SweepSystem(cfg, make, fars);

  Table t({"far%", "ideal", "magelib", "magelib+pf", "dilos", "dilos+pf", "hermit",
           "hermit+pf"});
  for (size_t i = 0; i < fars.size(); ++i) {
    t.AddRow({std::to_string(fars[i]), Table::Pct(res["ideal"][i].normalized * 100),
              Table::Pct(res["magelib"][i].normalized * 100),
              Table::Pct(res["magelib+pf"][i].normalized * 100),
              Table::Pct(res["dilos"][i].normalized * 100),
              Table::Pct(res["dilos+pf"][i].normalized * 100),
              Table::Pct(res["hermit"][i].normalized * 100),
              Table::Pct(res["hermit+pf"][i].normalized * 100)});
  }
  t.Print();
  std::printf("\nmajor faults at 10%% far memory: magelib %llu -> magelib+pf %llu "
              "(paper: 1.2M -> 324K)\n",
              static_cast<unsigned long long>(res["magelib"][1].faults),
              static_cast<unsigned long long>(res["magelib+pf"][1].faults));
  return 0;
}
