// Figure 4: sequential-scan microbenchmark (48 threads) — Hermit and DiLOS
// vs. their respective "ideal" baselines. Even the friendliest (regular,
// prefetchable) pattern collapses on the baselines because the fault-in path
// starves for free pages.
#include "bench/app_sweep.h"
#include "src/workloads/seqscan.h"

int main() {
  using namespace magesim;
  PrintBanner("Figure 4: sequential scan vs ideal, 48 threads (M pages/s)");

  uint64_t pages = Scaled(48 * 1024);
  auto make = [pages] {
    return std::make_unique<SeqScanWorkload>(
        SeqScanWorkload::Options{.region_pages = pages, .threads = 48, .passes = 2});
  };
  std::vector<int> fars = {0, 10, 20, 30, 40, 50, 60, 70, 80};

  auto ideal = SweepSystem(IdealConfig(), make, fars);
  auto hermit = SweepSystem(HermitConfig(), make, fars);
  auto dilos = SweepSystem(DilosConfig(), make, fars);

  // Convert jobs/hour back to page throughput for the table.
  double pages_per_job = static_cast<double>(pages) * 2;
  auto mops = [&](const SweepPoint& p) {
    return p.jobs_per_hour / 3600.0 * pages_per_job / 1e6;
  };

  Table t({"far%", "ideal(Mops)", "hermit(Mops)", "hermit-norm", "dilos(Mops)", "dilos-norm"});
  for (size_t i = 0; i < fars.size(); ++i) {
    t.AddRow({std::to_string(fars[i]), Table::Num(mops(ideal[i])), Table::Num(mops(hermit[i])),
              Table::Pct(hermit[i].normalized * 100), Table::Num(mops(dilos[i])),
              Table::Pct(dilos[i].normalized * 100)});
  }
  t.Print();
  return 0;
}
