// Figure 17: technique breakdown. Starting from a DiLOS-like baseline, apply
// MAGE's techniques cumulatively: PIPELINED (always-async cross-batch
// pipelined eviction), LRU# (partitioned accounting), MULTILAYER (staged
// allocator) — the last configuration is MAGE-Lib.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/xsbench.h"

namespace magesim {
namespace {

std::vector<KernelConfig> AblationLadder() {
  KernelConfig base = DilosConfig();
  base.name = "baseline";

  KernelConfig pipelined = base;
  pipelined.name = "+pipelined";
  pipelined.pipelined_eviction = true;
  pipelined.allow_sync_eviction = false;  // P1: always-asynchronous decoupling
  pipelined.evict_batch_pages = 256;
  pipelined.evictor_wake_cost_ns = 0;

  KernelConfig lru = pipelined;
  lru.name = "+lru-part";
  lru.accounting = AccountingPolicy::kPartitionedFifo;  // P3 on accounting
  lru.accounting_partitions = 8;

  KernelConfig multi = lru;
  multi.name = "+multilayer";  // == MAGE-Lib modulo fault-path trims
  multi.allocator = AllocStrategy::kMultilayer;

  return {base, pipelined, lru, multi};
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 17: cumulative technique ablation (normalized throughput)");

  std::vector<int> fars = {0, 10, 20, 30, 40, 50, 60, 70};
  auto ladder = AblationLadder();

  auto run_app = [&](const std::string& title, const WorkloadFactory& make) {
    std::map<std::string, std::vector<SweepPoint>> res;
    for (const auto& cfg : ladder) res[cfg.name] = SweepSystem(cfg, make, fars);
    Table t({"far%", "baseline", "+pipelined", "+lru-part", "+multilayer"});
    for (size_t i = 0; i < fars.size(); ++i) {
      t.AddRow({std::to_string(fars[i]), Table::Pct(res["baseline"][i].normalized * 100),
                Table::Pct(res["+pipelined"][i].normalized * 100),
                Table::Pct(res["+lru-part"][i].normalized * 100),
                Table::Pct(res["+multilayer"][i].normalized * 100)});
    }
    std::printf("\n%s\n", title.c_str());
    t.Print();
    // Offloadable memory under a 20%-drop SLO (the paper's summary metric).
    for (const auto& cfg : ladder) {
      int offloadable = 0;
      for (size_t i = 0; i < fars.size(); ++i) {
        if (res[cfg.name][i].normalized >= 0.80) offloadable = fars[i];
      }
      std::printf("  %-12s offloadable at 20%%-drop SLO: %d%%\n", cfg.name.c_str(),
                  offloadable);
    }
  };

  run_app("(a) GapBS PageRank, 48 threads", [] {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 48});
  });
  run_app("(b) XSBench, 48 threads", [] {
    return std::make_unique<XsBenchWorkload>(
        XsBenchWorkload::Options{.gridpoints = Scaled(1 << 19),
                                 .lookups_per_thread = Scaled(4000),
                                 .threads = 48});
  });
  return 0;
}
