// Ablation (design-space study beyond the paper's figures): page-accounting
// policy comparison on GapBS at 48 threads. Shows the §4.2.2 trade-off
// directly: centralized policies (global LRU, MGLRU, S3-FIFO) have better
// replacement signals but one lock; MAGE's partitioned FIFO trades accuracy
// for contention-free scaling.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"

int main() {
  using namespace magesim;
  PrintBanner("Ablation: page-accounting policies on MAGE-Lib (GapBS, 48 threads)");

  auto make = [] {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 48});
  };

  auto with_policy = [](AccountingPolicy p, const char* name) {
    KernelConfig cfg = MageLibConfig();
    cfg.accounting = p;
    cfg.name = name;
    return cfg;
  };
  std::vector<KernelConfig> configs = {
      with_policy(AccountingPolicy::kPartitionedFifo, "partitioned"),
      with_policy(AccountingPolicy::kGlobalLru, "global-lru"),
      with_policy(AccountingPolicy::kMgLru, "mglru"),
      with_policy(AccountingPolicy::kS3Fifo, "s3fifo"),
  };

  std::vector<int> fars = {0, 10, 30, 50, 70};
  Table t({"far%", "partitioned", "global-lru", "mglru", "s3fifo"});
  std::map<std::string, std::vector<SweepPoint>> res;
  for (const auto& cfg : configs) res[cfg.name] = SweepSystem(cfg, make, fars);
  for (size_t i = 0; i < fars.size(); ++i) {
    t.AddRow({std::to_string(fars[i]), Table::Pct(res["partitioned"][i].normalized * 100),
              Table::Pct(res["global-lru"][i].normalized * 100),
              Table::Pct(res["mglru"][i].normalized * 100),
              Table::Pct(res["s3fifo"][i].normalized * 100)});
  }
  t.Print();

  std::printf("\nmajor faults at 30%% far memory (replacement accuracy):\n");
  for (const auto& cfg : configs) {
    std::printf("  %-12s %llu faults\n", cfg.name.c_str(),
                static_cast<unsigned long long>(res[cfg.name][2].faults));
  }
  return 0;
}
