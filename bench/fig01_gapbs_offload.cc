// Figure 1: GapBS PageRank (48 threads) throughput vs. percentage of far
// memory for every system plus the ideal baseline. The paper's headline
// figure: MAGE tracks the ideal curve where DiLOS/Hermit collapse by 10%
// offloading.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"

int main() {
  using namespace magesim;
  PrintBanner("Figure 1: GapBS PageRank throughput vs %% far memory, 48 threads");

  int scale = 17 + static_cast<int>(BenchScale() > 1.5) - static_cast<int>(BenchScale() < 0.75);
  auto make = [scale]() {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = scale, .iterations = 4, .threads = 48});
  };

  std::vector<int> fars = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90};
  std::vector<KernelConfig> systems = {IdealConfig(), MageLibConfig(), MageLnxConfig(),
                                       DilosConfig(), HermitConfig()};

  std::map<std::string, std::vector<SweepPoint>> results;
  for (const auto& cfg : systems) {
    results[cfg.name] = SweepSystem(cfg, make, fars);
  }

  Table t({"far%", "ideal", "magelib", "magelnx", "dilos", "hermit"});
  for (size_t i = 0; i < fars.size(); ++i) {
    t.AddRow({std::to_string(fars[i]), Table::Pct(results["ideal"][i].normalized * 100),
              Table::Pct(results["magelib"][i].normalized * 100),
              Table::Pct(results["magelnx"][i].normalized * 100),
              Table::Pct(results["dilos"][i].normalized * 100),
              Table::Pct(results["hermit"][i].normalized * 100)});
  }
  std::printf("normalized throughput (100%% = all-local baseline of each system)\n");
  t.Print();

  // Key paper claims at 10% offloading: MAGE loses ~15-19%, DiLOS/Hermit
  // lose ~51-74%.
  std::printf("\ndrop at 10%% far memory: magelib %.0f%%, magelnx %.0f%%, dilos %.0f%%, "
              "hermit %.0f%% (paper: 15/19/51/74)\n",
              (1 - results["magelib"][1].normalized) * 100,
              (1 - results["magelnx"][1].normalized) * 100,
              (1 - results["dilos"][1].normalized) * 100,
              (1 - results["hermit"][1].normalized) * 100);
  return 0;
}
