// Table 2: throughput-bound applications at 100% local memory (no
// offloading). Isolates the virtualization/runtime overheads: Hermit runs
// bare-metal and wins slightly; the VM-based systems regress a few percent.
#include <functional>

#include "bench/bench_common.h"
#include "src/workloads/gups.h"
#include "src/workloads/metis.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/seqscan.h"
#include "src/workloads/xsbench.h"

namespace magesim {
namespace {

double RunLocal(const KernelConfig& cfg, Workload& wl) {
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 1.0;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  // Ops/s rather than jobs/hour: ratios are identical for fixed-work jobs
  // and remain meaningful for fixed-duration ones (GUPS).
  return r.ops_per_sec;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Table 2: 100%-local performance (ops/s, % vs best)");

  struct AppRow {
    std::string name;
    std::function<std::unique_ptr<Workload>()> make;
  };
  std::vector<AppRow> apps = {
      {"gapbs",
       [] {
         return std::make_unique<PageRankWorkload>(
             PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 48});
       }},
      {"xsbench",
       [] {
         return std::make_unique<XsBenchWorkload>(
             XsBenchWorkload::Options{.gridpoints = Scaled(1 << 19),
                                      .lookups_per_thread = Scaled(4000),
                                      .threads = 48});
       }},
      {"seqscan",
       [] {
         return std::make_unique<SeqScanWorkload>(SeqScanWorkload::Options{
             .region_pages = Scaled(48 * 1024), .threads = 48, .passes = 2});
       }},
      {"gups",
       [] {
         return std::make_unique<GupsWorkload>(GupsWorkload::Options{
             .total_pages = Scaled(32 * 1024),
             .threads = 48,
             .phase_change_at = 200 * kMillisecond,
             .run_for = 400 * kMillisecond});
       }},
      {"metis",
       [] {
         return std::make_unique<MetisWorkload>(MetisWorkload::Options{
             .input_pages = Scaled(16 * 1024),
             .intermediate_pages = Scaled(12 * 1024),
             .threads = 48});
       }},
  };

  std::vector<KernelConfig> systems = {MageLibConfig(), MageLnxConfig(), DilosConfig(),
                                       HermitConfig()};
  Table t({"app", "magelib", "magelnx", "dilos", "hermit(best)"});
  for (const auto& app : apps) {
    std::map<std::string, double> jph;
    double best = 0;
    for (const auto& cfg : systems) {
      auto wl = app.make();
      jph[cfg.name] = RunLocal(cfg, *wl);
      best = std::max(best, jph[cfg.name]);
    }
    auto cell = [&](const std::string& n) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f (%+.1f%%)", jph[n], (jph[n] / best - 1) * 100);
      return std::string(buf);
    };
    t.AddRow({app.name, cell("magelib"), cell("magelnx"), cell("dilos"), cell("hermit")});
  }
  t.Print();
  std::printf("(paper: Hermit fastest on bare metal; VM systems regress 2-8.6%%)\n");
  return 0;
}
