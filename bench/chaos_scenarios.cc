// Chaos scenarios: the resilient data path under scripted fault plans
// (src/resilience/). Each scenario runs GUPS and a sequential scan through
// the same injection schedule and reports throughput retained vs. a healthy
// baseline next to the resilience counters — how much work a brownout, a
// flapping link, or a memory-node crash actually costs, and what the retry/
// breaker machinery absorbed. Every run finishes under the invariant checker;
// a non-zero violation count fails the harness.
//
// Plans are compact FaultPlan specs; tweak or add rows to script new
// scenarios (see docs/INTERNALS.md "Fault injection & resilience").
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/workloads/gups.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

struct Scenario {
  const char* name;
  const char* plan;  // "" = healthy baseline
};

const Scenario kScenarios[] = {
    {"baseline", ""},
    {"brownout", "brownout@100ms-400ms:bw=0.2,lat=15us"},
    {"flaky-link", "drop@50ms-600ms:p=0.02;spike@50ms-600ms:p=0.01,lat=40us"},
    {"error-burst", "error@200ms-260ms:p=0.5"},
    {"crash-recover", "crash@200ms-260ms"},
    {"pile-up", "degrade@100ms-300ms:p=0.05,bw=0.5;crash@350ms-380ms;"
                "brownout@450ms-550ms:bw=0.25"},
};

struct ChaosResult {
  RunResult r;
  double mops = 0;
};

ChaosResult RunScenario(Workload& wl, const char* plan, SimTime run_for) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = 42;
  opt.fault_plan = plan;
  opt.time_limit = run_for;
  opt.check_final = true;
  FarMemoryMachine m(opt, wl);
  ChaosResult out;
  out.r = m.Run();
  out.mops = out.r.ops_per_sec / 1e6;
  if (out.r.invariant_violations != 0) {
    std::fprintf(stderr, "FATAL: invariant violations under plan '%s'\n%s\n", plan,
                 m.checker()->Report().c_str());
    std::exit(1);
  }
  return out;
}

void RunWorkloadSweep(const char* wl_name, SimTime run_for,
                      const std::function<std::unique_ptr<Workload>()>& make) {
  std::printf("\n-- %s --\n", wl_name);
  Table t({"scenario", "Mops/s", "retained", "retries", "timeouts", "brk-open",
           "poisoned", "wb-lost", "throttled", "inj-drop", "inj-err", "crashes"});
  double baseline = 0;
  for (const Scenario& s : kScenarios) {
    std::unique_ptr<Workload> wl = make();
    ChaosResult c = RunScenario(*wl, s.plan, run_for);
    if (baseline == 0) baseline = c.mops;
    t.AddRow({s.name, Table::Num(c.mops),
              Table::Pct(baseline > 0 ? c.mops / baseline * 100 : 0),
              std::to_string(c.r.rdma_retries), std::to_string(c.r.rdma_timeouts),
              std::to_string(c.r.breaker_opens), std::to_string(c.r.pages_poisoned),
              std::to_string(c.r.writebacks_lost), std::to_string(c.r.prefetch_throttles),
              std::to_string(c.r.injected_drops), std::to_string(c.r.injected_errors),
              std::to_string(c.r.memnode_crashes)});
  }
  t.Print();
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  // Plans are per-scenario; a machine-level env override would clobber the
  // baseline row too.
  unsetenv("MAGESIM_FAULT_PLAN");
  PrintBanner("Chaos scenarios: throughput retained under scripted fault plans "
              "(50% far memory, magelib)");

  // Fixed duration (not MAGESIM_SCALE-scaled): the plan windows above are
  // absolute times and every scenario must fully play out.
  SimTime run_for = 600 * kMillisecond;
  uint64_t gups_pages = Scaled(32 * 1024);
  uint64_t scan_pages = Scaled(16 * 1024);

  RunWorkloadSweep("gups", run_for, [&]() -> std::unique_ptr<Workload> {
    return std::make_unique<GupsWorkload>(GupsWorkload::Options{
        .total_pages = gups_pages,
        .threads = 16,
        .phase_change_at = run_for,  // single-phase: isolate injection effects
        .run_for = run_for,
        .prewarm_region_a = false});
  });
  RunWorkloadSweep("seqscan", run_for, [&]() -> std::unique_ptr<Workload> {
    return std::make_unique<SeqScanWorkload>(
        SeqScanWorkload::Options{.region_pages = scan_pages, .threads = 8, .passes = 1000});
  });

  std::printf("\nAll scenarios completed with zero invariant violations.\n");
  return 0;
}
