// perf_fault_path: end-to-end fault-path cost (ns/event, faults/sec wall).
//
// One canonical fault+evict scenario on the MAGE-library config: a sequential
// scan at 50% far memory where steady state makes every access a major fault
// and every fault forces an eviction. The simulated outcome (faults, evicted
// pages, events, simulated ns) is deterministic; wall-clock events/sec and
// faults/sec are the tracked perf metrics.
//
// With MAGESIM_SPANS=1 the machine runs with span tracing installed and the
// report is named fault_path_spans — tracking the enabled-overhead of the
// span tracer against the fault_path baseline.
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "bench/perf_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

struct Outcome {
  uint64_t faults = 0;
  uint64_t evicted = 0;
  uint64_t events = 0;
  uint64_t sim_ns = 0;
};

Outcome RunOnce() {
  SeqScanWorkload wl({.region_pages = Scaled(1200) * 16,
                      .threads = 16,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 60 * kMillisecond;
  opt.stats_warmup = 20 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  Outcome o;
  o.faults = r.faults;
  o.evicted = r.evicted_pages;
  o.events = m.engine().events_processed();
  o.sim_ns = static_cast<uint64_t>(r.sim_seconds * 1e9 + 0.5);
  return o;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  BenchReps reps = BenchRepsFromEnv(/*default_warmup=*/1, /*default_measure=*/5);

  Outcome out;
  for (int i = 0; i < reps.warmup; ++i) out = RunOnce();
  std::vector<uint64_t> rep_ns;
  for (int i = 0; i < reps.measure; ++i) {
    uint64_t t0 = WallNowNs();
    Outcome got = RunOnce();
    rep_ns.push_back(WallNowNs() - t0);
    if (out.events != 0 && got.events != out.events) {
      std::fprintf(stderr, "perf_fault_path: nondeterministic rep\n");
      return 1;
    }
    out = got;
  }

  const char* spans_env = std::getenv("MAGESIM_SPANS");
  bool spans_on = spans_env != nullptr && spans_env[0] != '0';
  PerfReport r(spans_on ? "fault_path_spans" : "fault_path", reps);
  r.Sim("faults_per_rep", out.faults);
  r.Sim("evicted_pages_per_rep", out.evicted);
  r.Sim("events_per_rep", out.events);
  r.Sim("sim_ns_per_rep", out.sim_ns);
  r.WallTimes(rep_ns, out.events, "events");
  if (!rep_ns.empty()) {
    uint64_t best = rep_ns[0];
    for (uint64_t ns : rep_ns) best = ns < best ? ns : best;
    if (best > 0) {
      r.WallF("faults_per_sec",
              static_cast<double>(out.faults) * 1e9 / static_cast<double>(best));
    }
  }
  r.Write();
  return 0;
}
