// google-benchmark microbenchmarks of the simulation substrate itself: event
// queue throughput, allocator logic, Zipf sampling, histogram recording.
// These bound how fast the figure harnesses can run.
#include <benchmark/benchmark.h>

#include "src/mem/buddy_allocator.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace magesim {
namespace {

Task<> DelayLoop(int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{10};
  }
}

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    for (int t = 0; t < 8; ++t) e.Spawn(DelayLoop(1000));
    benchmark::DoNotOptimize(e.Run());
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_BuddyAllocFree(benchmark::State& state) {
  FramePool pool(1 << 14);
  BuddyAllocator buddy(pool);
  std::vector<PageFrame*> held;
  held.reserve(4096);
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) held.push_back(buddy.AllocPage());
    for (PageFrame* f : held) buddy.FreePage(f);
    held.clear();
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BuddyAllocFree);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfGenerator zipf(1 << 20, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(2);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextU64(1 << 20)));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_RngNext(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace magesim

BENCHMARK_MAIN();
