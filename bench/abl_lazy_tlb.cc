// Extension study (§7 related work: LATR, EcoTLB): lazy TLB reconciliation
// vs. MAGE's batched IPI shootdowns on the eviction path. Lazy mode removes
// all shootdown traffic but delays frame recirculation by up to one tick, so
// it needs deeper free-page headroom to sustain the same fault rate.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

struct Res {
  double fault_mops;
  double p99_us;
  uint64_t ipis;
};

Res RunCase(KernelConfig cfg, int threads) {
  SeqScanWorkload wl({.region_pages = Scaled(1200) * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 45 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  return {r.fault_mops, static_cast<double>(r.fault_latency.Percentile(99)) / 1000.0,
          r.ipis_sent};
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Extension: IPI shootdowns vs lazy TLB reconciliation (MAGE-Lib)");

  Table t({"threads", "ipi-Mops", "ipi-p99(us)", "ipis-sent", "lazy-Mops", "lazy-p99(us)",
           "lazy-ipis"});
  for (int threads : {8, 24, 48}) {
    KernelConfig ipi = MageLibConfig();
    KernelConfig lazy = MageLibConfig();
    lazy.lazy_tlb = true;
    // Deeper watermarks absorb the tick-granular reclaim delay.
    lazy.high_watermark = 0.16;
    lazy.low_watermark = 0.08;
    Res a = RunCase(ipi, threads);
    Res b = RunCase(lazy, threads);
    t.AddRow({std::to_string(threads), Table::Num(a.fault_mops), Table::Num(a.p99_us, 1),
              std::to_string(a.ipis), Table::Num(b.fault_mops), Table::Num(b.p99_us, 1),
              std::to_string(b.ipis)});
  }
  t.Print();
  return 0;
}
