// Shared helpers for the figure/table harnesses.
//
// Every harness prints the paper-figure series it regenerates. Scale knobs:
// MAGESIM_SCALE=0.25..4 multiplies working-set/op counts (default 1), so the
// full suite finishes in minutes on one host core while remaining faithful in
// shape. Determinism: all randomness is seeded; same scale => same output.
//
// Debugging: set MAGESIM_CHECK_INTERVAL_US=<us> to run every simulation in a
// harness under the invariant checker (src/check/) at that period, plus a
// final check when each run drains — no code changes needed. Violations show
// up in RunResult::invariant_violations; see docs/INTERNALS.md.
#ifndef MAGESIM_BENCH_BENCH_COMMON_H_
#define MAGESIM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/farmem.h"
#include "src/core/ideal_model.h"
#include "src/core/report.h"
#include "src/paging/kernels.h"

namespace magesim {

inline double BenchScale() {
  const char* s = std::getenv("MAGESIM_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * BenchScale());
}

// Warmup/measure repetition counts for the perf harnesses (bench/perf_*).
// MAGESIM_BENCH_REPS overrides the harness defaults so CI can run short
// smokes while local runs stay statistically meaningful:
//   MAGESIM_BENCH_REPS=M     -> warmup = max(1, M/4), measure = M
//   MAGESIM_BENCH_REPS=W:M   -> warmup = W, measure = M
// The chosen counts (and whether they came from the env) are recorded in
// every BENCH_*.json so a baseline and a smoke run are never silently
// compared at different statistical weight.
struct BenchReps {
  int warmup = 1;
  int measure = 3;
  bool from_env = false;
};

inline BenchReps BenchRepsFromEnv(int default_warmup, int default_measure) {
  BenchReps r{default_warmup, default_measure, false};
  const char* s = std::getenv("MAGESIM_BENCH_REPS");
  if (s == nullptr || *s == '\0') return r;
  int w = -1, m = -1;
  if (std::sscanf(s, "%d:%d", &w, &m) == 2) {
    if (w >= 0 && m > 0) {
      r.warmup = w;
      r.measure = m;
      r.from_env = true;
    }
  } else if (std::sscanf(s, "%d", &m) == 1 && m > 0) {
    r.warmup = m / 4 > 0 ? m / 4 : 1;
    r.measure = m;
    r.from_env = true;
  }
  return r;
}

// Offloading sweep used by most application figures (percent far memory).
inline std::vector<int> OffloadSweep() { return {0, 10, 20, 30, 40, 50, 60, 70, 80, 90}; }

}  // namespace magesim

#endif  // MAGESIM_BENCH_BENCH_COMMON_H_
