// Extension study (paper §8): MAGE's eviction/fault-path design is backend-
// agnostic. Run GapBS on three swap backends — RDMA far memory, NVMe SSD,
// and ZSwap — for MAGE-Lib vs Hermit. The MAGE advantage persists wherever
// software overheads (not the device) are the bottleneck.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"

namespace magesim {
namespace {

double NormalizedAt(const KernelConfig& cfg, const MachineParams& hw, int far,
                    const WorkloadFactory& make) {
  double base_jph = 0;
  for (int pass = 0; pass < 2; ++pass) {
    auto wl = make();
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.hw = hw;
    opt.hw_overridden = true;
    opt.local_mem_ratio = pass == 0 ? 1.0 : 1.0 - far / 100.0;
    FarMemoryMachine m(opt, *wl);
    RunResult r = m.Run();
    if (pass == 0) {
      base_jph = r.jobs_per_hour;
    } else {
      return base_jph > 0 ? r.jobs_per_hour / base_jph : 0;
    }
  }
  return 0;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Extension: swap backends (GapBS, 48 threads, 30% far memory)");

  auto make = [] {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 48});
  };

  struct Backend {
    const char* name;
    MachineParams hw;
  };
  std::vector<Backend> backends = {
      {"rdma-192g", VirtualizedParams()},
      {"nvme-ssd", NvmeBackendParams()},
      {"zswap", ZswapBackendParams()},
  };

  Table t({"backend", "magelib", "hermit", "mage-advantage"});
  for (const auto& b : backends) {
    double mage = NormalizedAt(MageLibConfig(), b.hw, 30, make);
    MachineParams hermit_hw = b.hw;
    hermit_hw.virtualized = false;  // Hermit runs bare-metal
    double hermit = NormalizedAt(HermitConfig(), hermit_hw, 30, make);
    t.AddRow({b.name, Table::Pct(mage * 100), Table::Pct(hermit * 100),
              Table::Num(hermit > 0 ? mage / hermit : 0, 2) + "x"});
  }
  t.Print();
  std::printf("(normalized throughput at 30%% offloading vs each system's all-local run)\n");
  return 0;
}
