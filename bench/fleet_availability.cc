// fleet_availability: kill-one-of-four memory-server availability study.
//
// A latency-QoS sequential scanner and a GUPS neighbor share one machine
// whose far side is a 4-server fleet with 2-way replication. Two runs over
// the same 50 ms simulated window:
//
//   healthy   all four servers up for the whole window
//   crash     server 1 crashes at 15 ms and rejoins (empty) at 30 ms; reads
//             of its slots fail over to the surviving replica and the
//             rebuild driver re-replicates in the background after rejoin
//
// The harness asserts the robustness acceptance bar — the latency tenant
// retains >= 80% of its healthy throughput across the crash run, the crash
// produced degraded reads but zero lost slots (k=2 tolerates one failure),
// zero silent losses, and the rebuild converged (pending queue drained)
// before the window closed — and exits nonzero on any miss.
//
// It is also a tracked perf harness: the deterministic outcome (ops,
// degraded reads, slots rebuilt) lands in the "sim" group of
// BENCH_fleet_availability.json, exact-matched by tools/perf_diff.py, so any
// behavioural drift in placement, failover, or rebuild pacing fails CI.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/perf_common.h"
#include "src/tenancy/tenant_spec.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

constexpr SimTime kWindow = 50 * kMillisecond;
// Server 1 is down for 30% of the window, then rejoins with nothing.
constexpr char kCrashPlan[] = "crash@15ms-30ms:node=1";
// Same tenant mix as multitenant_isolation: a 2-thread latency scanner and a
// hard-capped 8-thread GUPS neighbor.
constexpr char kTenancySpec[] =
    "lat:4:0:latency=seqscan/2,pages=4096,passes=100000,compute_ns=2000;"
    "bg:1:0.35:0.3:batch=gups/8,pages=16384,theta=0.4,run_ms=600,phase_ms=600";
constexpr double kLocalRatio = 0.35;

struct Outcome {
  uint64_t lat_ops_healthy = 0;
  uint64_t lat_ops_crash = 0;
  uint64_t degraded_reads = 0;
  uint64_t repairs_queued = 0;
  uint64_t slots_rebuilt = 0;
  uint64_t faults_crash = 0;
  uint64_t events = 0;  // both runs, for the wall-clock throughput metric
  double retained = 0;
};

void CheckClean(FarMemoryMachine& m, const RunResult& r, const char* label) {
  if (r.invariant_violations != 0) {
    std::fprintf(stderr, "FATAL: invariant violations in %s run\n%s\n", label,
                 m.checker()->Report().c_str());
    std::exit(1);
  }
  if (r.aborted) {
    std::fprintf(stderr, "FATAL: %s run aborted: %s\n", label, r.abort_reason.c_str());
    std::exit(1);
  }
}

std::vector<TenantSpec> ParsedSpecs() {
  TenancyOptions opts;
  std::string err;
  if (!ParseTenancyList(kTenancySpec, &opts, &err)) {
    std::fprintf(stderr, "FATAL: bad tenant spec: %s\n", err.c_str());
    std::exit(1);
  }
  for (TenantSpec& s : opts.tenants) {
    if (s.workload_opts.count("pages") != 0) {
      s.workload_opts["pages"] = std::to_string(Scaled(
          std::strtoull(s.workload_opts["pages"].c_str(), nullptr, 10)));
    }
  }
  return opts.tenants;
}

FarMemoryMachine::Options FleetOptions() {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = kLocalRatio;
  opt.seed = 42;
  opt.time_limit = kWindow;
  opt.check_final = true;
  opt.fleet.num_nodes = 4;
  opt.fleet.replication = 2;
  opt.fleet.rebuild_gbps = 50.0;
  opt.tenancy.tenants = ParsedSpecs();
  opt.tenancy.enabled = true;
  return opt;
}

uint64_t LatOps(FarMemoryMachine& m, int begin, int end) {
  uint64_t ops = 0;
  for (int tid = begin; tid < end; ++tid) {
    ops += m.threads()[static_cast<size_t>(tid)]->ops;
  }
  return ops;
}

Outcome RunOnce() {
  Outcome o;
  // The latency tenant is declared first, so its scanner owns threads [0, 2).
  const int lat_begin = 0, lat_end = 2;

  {  // Healthy fleet: the control run the crash run is measured against.
    FarMemoryMachine::Options opt = FleetOptions();
    SeqScanWorkload placeholder(
        SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
    FarMemoryMachine m(opt, placeholder);
    RunResult r = m.Run();
    CheckClean(m, r, "healthy");
    if (r.fleet_degraded_reads != 0 || r.fleet_slots_lost != 0 ||
        r.fleet_silent_losses != 0 || r.fleet_rebuild_pending != 0) {
      std::fprintf(stderr, "FATAL: healthy fleet run was not healthy\n");
      std::exit(1);
    }
    o.lat_ops_healthy = LatOps(m, lat_begin, lat_end);
    o.events += m.engine().events_processed();
  }

  {  // Same machine, same seed, server 1 dies mid-window.
    FarMemoryMachine::Options opt = FleetOptions();
    opt.fault_plan = kCrashPlan;
    SeqScanWorkload placeholder(
        SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
    FarMemoryMachine m(opt, placeholder);
    RunResult r = m.Run();
    CheckClean(m, r, "crash");
    bool ok = true;
    if (r.memnode_crashes != 1) {
      std::fprintf(stderr, "FAIL: expected 1 crash episode, saw %llu\n",
                   static_cast<unsigned long long>(r.memnode_crashes));
      ok = false;
    }
    if (r.fleet_degraded_reads == 0) {
      std::fprintf(stderr, "FAIL: crash produced no degraded reads\n");
      ok = false;
    }
    if (r.fleet_slots_lost != 0 || r.fleet_silent_losses != 0) {
      std::fprintf(stderr,
                   "FAIL: k=2 single crash lost data (lost=%llu silent=%llu)\n",
                   static_cast<unsigned long long>(r.fleet_slots_lost),
                   static_cast<unsigned long long>(r.fleet_silent_losses));
      ok = false;
    }
    if (r.fleet_slots_rebuilt == 0 || r.fleet_rebuild_pending != 0) {
      std::fprintf(stderr,
                   "FAIL: rebuild did not converge (rebuilt=%llu pending=%llu)\n",
                   static_cast<unsigned long long>(r.fleet_slots_rebuilt),
                   static_cast<unsigned long long>(r.fleet_rebuild_pending));
      ok = false;
    }
    if (!ok) std::exit(1);
    o.lat_ops_crash = LatOps(m, lat_begin, lat_end);
    o.degraded_reads = r.fleet_degraded_reads;
    o.repairs_queued = r.fleet_repairs_queued;
    o.slots_rebuilt = r.fleet_slots_rebuilt;
    o.faults_crash = r.faults;
    o.events += m.engine().events_processed();
  }

  o.retained = static_cast<double>(o.lat_ops_crash) /
               static_cast<double>(o.lat_ops_healthy);
  if (!(o.retained >= 0.8)) {  // negated so a 0/0 NaN also fails
    std::fprintf(stderr,
                 "FAIL: latency tenant retained %.1f%% of healthy throughput "
                 "across the crash (< 80%%)\n",
                 100.0 * o.retained);
    std::exit(1);
  }
  return o;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  BenchReps reps = BenchRepsFromEnv(/*default_warmup=*/1, /*default_measure=*/3);

  Outcome out;
  for (int i = 0; i < reps.warmup; ++i) out = RunOnce();
  std::vector<uint64_t> rep_ns;
  for (int i = 0; i < reps.measure; ++i) {
    uint64_t t0 = WallNowNs();
    Outcome got = RunOnce();
    rep_ns.push_back(WallNowNs() - t0);
    if (out.events != 0 &&
        (got.events != out.events || got.degraded_reads != out.degraded_reads ||
         got.lat_ops_crash != out.lat_ops_crash)) {
      std::fprintf(stderr, "fleet_availability: nondeterministic rep\n");
      return 1;
    }
    out = got;
  }

  std::printf("# fleet_availability: kill one of four servers (k=2), 50 ms window\n");
  std::printf("lat ops healthy %llu, crash %llu (retained %.1f%%)\n",
              static_cast<unsigned long long>(out.lat_ops_healthy),
              static_cast<unsigned long long>(out.lat_ops_crash),
              100.0 * out.retained);
  std::printf("degraded reads %llu, repairs queued %llu, slots rebuilt %llu\n",
              static_cast<unsigned long long>(out.degraded_reads),
              static_cast<unsigned long long>(out.repairs_queued),
              static_cast<unsigned long long>(out.slots_rebuilt));

  PerfReport r("fleet_availability", reps);
  r.Sim("lat_ops_healthy", out.lat_ops_healthy);
  r.Sim("lat_ops_crash", out.lat_ops_crash);
  r.SimF("retained_frac", out.retained);
  r.Sim("degraded_reads", out.degraded_reads);
  r.Sim("repairs_queued", out.repairs_queued);
  r.Sim("slots_rebuilt", out.slots_rebuilt);
  r.Sim("faults_crash_run", out.faults_crash);
  r.Sim("events_per_rep", out.events);
  r.WallTimes(rep_ns, out.events, "events");
  r.Write();
  return 0;
}
