// perf_engine_events: raw DES engine throughput (events/sec, ns/event).
//
// A pure scheduler microbench with no paging machinery: a mix of delays,
// yields, child-task calls (coroutine frame churn), mutex handoffs and event
// waits — the primitives every simulated subsystem is built from. The event
// count per rep is deterministic; wall time per event is the tracked metric.
#include <cstdint>
#include <vector>

#include "bench/perf_common.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {
namespace {

struct Shared {
  SimMutex lock{"perf"};
  SimEvent tick{"perf-tick"};
  uint64_t counter = 0;
};

// A leaf child task: one frame allocation + one delay event per call.
Task<> Leaf(Shared& s, SimTime d) {
  co_await Delay{d};
  ++s.counter;
}

Task<> Worker(Shared& s, int id, uint64_t iters) {
  for (uint64_t i = 0; i < iters; ++i) {
    // Frame churn: a fresh child coroutine per iteration.
    co_await Leaf(s, static_cast<SimTime>((i + static_cast<uint64_t>(id)) % 7));
    // Contended FIFO mutex: exercises the waiter queue on every handoff.
    {
      auto g = co_await s.lock.Scoped();
      co_await Delay{3};
    }
    if ((i & 63) == 0) {
      s.tick.Pulse();
      co_await YieldNow{};
    }
  }
}

uint64_t RunOnce(int tasks, uint64_t iters) {
  Engine e;
  Shared s;
  for (int t = 0; t < tasks; ++t) {
    e.Spawn(Worker(s, t, iters));
  }
  e.Run();
  return e.events_processed();
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  BenchReps reps = BenchRepsFromEnv(/*default_warmup=*/1, /*default_measure=*/5);
  const int kTasks = 64;
  const uint64_t kIters = Scaled(30000);

  uint64_t events = 0;
  for (int i = 0; i < reps.warmup; ++i) events = RunOnce(kTasks, kIters);
  std::vector<uint64_t> rep_ns;
  for (int i = 0; i < reps.measure; ++i) {
    uint64_t t0 = WallNowNs();
    uint64_t got = RunOnce(kTasks, kIters);
    rep_ns.push_back(WallNowNs() - t0);
    if (events != 0 && got != events) {
      std::fprintf(stderr, "perf_engine_events: nondeterministic event count (%llu vs %llu)\n",
                   static_cast<unsigned long long>(got), static_cast<unsigned long long>(events));
      return 1;
    }
    events = got;
  }

  PerfReport r("engine_events", reps);
  r.Sim("tasks", static_cast<uint64_t>(kTasks));
  r.Sim("iters_per_task", kIters);
  r.Sim("events_per_rep", events);
  r.WallTimes(rep_ns, events, "events");
  r.Write();
  return 0;
}
