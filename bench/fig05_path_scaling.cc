// Figure 5: fault-in-only vs fault-in-with-eviction throughput as thread
// count grows. Paper: Hermit and DiLOS saturate at 24-28 threads far below
// the 5.83 M ops/s NIC-limited ideal; eviction makes it worse.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

double FaultOnlyMops(const KernelConfig& cfg, int threads, uint64_t pages_per_thread) {
  FaultOnlySeqRead wl({.pages_per_thread = pages_per_thread, .threads = threads});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 1.0;  // pages pre-evicted by the workload itself
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  return r.fault_mops;
}

double FaultEvictMops(const KernelConfig& cfg, int threads, uint64_t pages) {
  // Sequential page-granularity reads with 50% memory offload: in steady
  // state every access is a major fault and every fault forces an eviction.
  SeqScanWorkload wl({.region_pages = pages,
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 45 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  return r.fault_mops;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 5: fault-in vs fault-in+eviction throughput scaling (M ops/s)");
  std::printf("ideal limit (192 Gbps / 4 KB): 5.83 M ops/s\n\n");

  uint64_t per_thread = Scaled(2500);
  std::vector<int> threads = {1, 4, 8, 16, 24, 32, 40, 48};
  std::vector<KernelConfig> systems = {HermitConfig(), DilosConfig(), MageLibConfig(),
                                       MageLnxConfig()};

  Table t({"threads", "hermit-fault", "hermit-evict", "dilos-fault", "dilos-evict",
           "magelib-fault", "magelib-evict", "magelnx-fault", "magelnx-evict"});
  for (int n : threads) {
    std::vector<std::string> row{std::to_string(n)};
    for (auto& cfg : systems) {
      double fo = FaultOnlyMops(cfg, n, per_thread);
      double fe = FaultEvictMops(cfg, n, Scaled(1200) * static_cast<uint64_t>(n));
      row.push_back(Table::Num(fo));
      row.push_back(Table::Num(fe));
    }
    t.AddRow(row);
  }
  t.Print();
  return 0;
}
