// Shared machinery for the tracked perf harnesses (bench/perf_*).
//
// Each harness runs `warmup + measure` repetitions of a deterministic
// scenario and emits BENCH_<name>.json. The JSON has two metric groups:
//
//   "sim"  -- deterministic per-rep values (event counts, faults, simulated
//             seconds). Same seed + same binary => identical values; any
//             drift is a determinism regression and tools/perf_diff.py
//             fails on it exactly.
//   "wall" -- wall-clock-derived values (events/sec, ns/event). These are
//             machine- and load-dependent; perf_diff.py compares them
//             against the committed baseline within a noise tolerance.
//
// Repetition counts come from BenchRepsFromEnv (MAGESIM_BENCH_REPS); the
// resolved counts are recorded in the JSON. Output lands in the current
// directory unless MAGESIM_BENCH_OUT_DIR is set.
#ifndef MAGESIM_BENCH_PERF_COMMON_H_
#define MAGESIM_BENCH_PERF_COMMON_H_

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"

namespace magesim {

inline uint64_t WallNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Accumulates one harness's results and renders BENCH_<name>.json with a
// stable key order (insertion order), so same-seed runs produce
// byte-identical files modulo the "wall" group.
class PerfReport {
 public:
  PerfReport(std::string name, BenchReps reps) : name_(std::move(name)), reps_(reps) {}

  // Deterministic per-rep metrics ("sim" group).
  void Sim(const std::string& key, uint64_t v) { sim_.emplace_back(key, FmtU64(v)); }
  void SimF(const std::string& key, double v) { sim_.emplace_back(key, FmtF(v)); }
  // Machine-dependent metrics ("wall" group).
  void Wall(const std::string& key, uint64_t v) { wall_.emplace_back(key, FmtU64(v)); }
  void WallF(const std::string& key, double v) { wall_.emplace_back(key, FmtF(v)); }

  // Convenience: record best/mean wall time over the measure reps plus a
  // throughput pair derived from the best rep (the least-noisy estimator).
  void WallTimes(const std::vector<uint64_t>& rep_ns, uint64_t units_per_rep,
                 const std::string& unit) {
    uint64_t best = 0, sum = 0;
    for (uint64_t ns : rep_ns) {
      if (best == 0 || ns < best) best = ns;
      sum += ns;
    }
    Wall("best_rep_ns", best);
    Wall("mean_rep_ns", rep_ns.empty() ? 0 : sum / rep_ns.size());
    if (best > 0 && units_per_rep > 0) {
      std::string singular = unit.size() > 1 && unit.back() == 's' ? unit.substr(0, unit.size() - 1) : unit;
      WallF(unit + "_per_sec", static_cast<double>(units_per_rep) * 1e9 / static_cast<double>(best));
      WallF("ns_per_" + singular, static_cast<double>(best) / static_cast<double>(units_per_rep));
    }
  }

  std::string ToJson() const {
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"magesim-bench-v1\",\n";
    out += "  \"name\": \"" + name_ + "\",\n";
    out += "  \"reps\": {\"warmup\": " + std::to_string(reps_.warmup) +
           ", \"measure\": " + std::to_string(reps_.measure) + ", \"source\": \"" +
           (reps_.from_env ? "env" : "default") + "\"},\n";
    out += "  \"scale\": " + FmtF(BenchScale()) + ",\n";
    out += Group("sim", sim_) + ",\n";
    out += Group("wall", wall_) + "\n";
    out += "}\n";
    return out;
  }

  // Writes BENCH_<name>.json and prints the path + headline to stdout.
  // Returns the path written.
  std::string Write() const {
    const char* dir = std::getenv("MAGESIM_BENCH_OUT_DIR");
    std::string path = (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
                       "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  using Kv = std::pair<std::string, std::string>;

  static std::string FmtU64(uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
  }
  static std::string FmtF(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }
  static std::string Group(const std::string& name, const std::vector<Kv>& kvs) {
    std::string out = "  \"" + name + "\": {";
    for (size_t i = 0; i < kvs.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      out += "    \"" + kvs[i].first + "\": " + kvs[i].second;
    }
    out += "\n  }";
    return out;
  }

  std::string name_;
  BenchReps reps_;
  std::vector<Kv> sim_;
  std::vector<Kv> wall_;
};

}  // namespace magesim

#endif  // MAGESIM_BENCH_PERF_COMMON_H_
