// Figure 18: (a) pipelined vs non-pipelined eviction across batch sizes on
// GapBS; (b) low-thread-count regression test (4 threads) across offloading.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"

int main() {
  using namespace magesim;

  // Scale 18 keeps the pipeline's in-flight pages a small fraction of the
  // residency, as at the paper's pool sizes.
  auto make48 = [] {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 18, .iterations = 3, .threads = 48});
  };

  PrintBanner("Figure 18a: eviction batch size, pipelined vs sequential (GapBS, 30% far)");
  {
    // One evictor thread makes per-evictor eviction throughput the binding
    // constraint (the paper's 20 GB working sets bind at four).
    Table t({"batch", "pipelined(norm%)", "sequential(norm%)"});
    for (int batch : {32, 64, 128, 256, 512}) {
      KernelConfig pip = MageLibConfig();
      pip.evict_batch_pages = batch;
      pip.num_evictors = 1;
      KernelConfig seq = pip;
      seq.pipelined_eviction = false;
      auto rp = SweepSystem(pip, make48, {0, 30});
      auto rs = SweepSystem(seq, make48, {0, 30});
      t.AddRow({std::to_string(batch), Table::Pct(rp[1].normalized * 100),
                Table::Pct(rs[1].normalized * 100)});
    }
    t.Print();
  }

  PrintBanner("Figure 18b: regression at 4 threads (low fault-in demand)");
  {
    auto make4 = [] {
      return std::make_unique<PageRankWorkload>(
          PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 4});
    };
    std::vector<int> fars = {0, 10, 20, 30, 40, 50, 60, 70, 80};
    std::map<std::string, std::vector<SweepPoint>> res;
    for (const auto& cfg : {MageLibConfig(), DilosConfig(), HermitConfig()}) {
      res[cfg.name] = SweepSystem(cfg, make4, fars);
    }
    Table t({"far%", "magelib", "dilos", "hermit"});
    for (size_t i = 0; i < fars.size(); ++i) {
      t.AddRow({std::to_string(fars[i]), Table::Pct(res["magelib"][i].normalized * 100),
                Table::Pct(res["dilos"][i].normalized * 100),
                Table::Pct(res["hermit"][i].normalized * 100)});
    }
    t.Print();
    std::printf("(at low demand all systems should be comparable: no throughput\n"
                " regression from MAGE's scalability-oriented design)\n");
  }
  return 0;
}
