// Figure 12: Metis-style MapReduce with an explicit phase change. Reports
// per-phase throughput (jobs/hour of that phase) vs. offloading; the reduce
// phase exposes how fast each system drains the previous working set.
#include "bench/bench_common.h"
#include "src/workloads/metis.h"

namespace magesim {
namespace {

struct PhaseResult {
  double map_jph;
  double reduce_jph;
};

PhaseResult RunMetis(const KernelConfig& cfg, double local_ratio) {
  MetisWorkload wl({.input_pages = Scaled(24 * 1024),
                    .intermediate_pages = Scaled(16 * 1024),
                    .threads = 48});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = local_ratio;
  FarMemoryMachine m(opt, wl);
  m.Run();
  double map_s = NsToSec(wl.map_done_at());
  double red_s = NsToSec(wl.reduce_done_at() - wl.map_done_at());
  return {map_s > 0 ? 3600.0 / map_s : 0, red_s > 0 ? 3600.0 / red_s : 0};
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 12: Metis map/reduce phase throughput vs offloading (normalized)");

  std::vector<int> fars = {0, 10, 20, 40, 60, 80};
  std::map<std::string, std::vector<PhaseResult>> res;
  for (const auto& cfg : AllSystemConfigs()) {
    for (int far : fars) {
      res[cfg.name].push_back(RunMetis(cfg, 1.0 - far / 100.0));
    }
  }

  auto print_phase = [&](const char* title, bool reduce) {
    Table t({"far%", "magelib", "magelnx", "dilos", "hermit"});
    for (size_t i = 0; i < fars.size(); ++i) {
      std::vector<std::string> row{std::to_string(fars[i])};
      for (const char* name : {"magelib", "magelnx", "dilos", "hermit"}) {
        const auto& v = res[name];
        double base = reduce ? v[0].reduce_jph : v[0].map_jph;
        double cur = reduce ? v[i].reduce_jph : v[i].map_jph;
        row.push_back(Table::Pct(base > 0 ? cur / base * 100 : 0));
      }
      t.AddRow(row);
    }
    std::printf("\n%s\n", title);
    t.Print();
  };
  print_phase("(a) map phase", false);
  print_phase("(b) reduce phase (after the working-set change)", true);
  return 0;
}
