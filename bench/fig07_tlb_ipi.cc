// Figure 7: average TLB shootdown latency and per-IPI delivery latency in the
// sequential-read microbenchmark as thread count grows. The inflection past
// 28 threads is the cross-socket boundary; the growth is IPI queueing.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

RunResult RunCase(const KernelConfig& cfg, int threads) {
  SeqScanWorkload wl({.region_pages = Scaled(1000) * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 30 * kMillisecond;
  opt.stats_warmup = 10 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 7: TLB shootdown and IPI delivery latency vs threads (us)");

  Table t({"threads", "hermit-shootdown", "hermit-ipi", "dilos-shootdown", "dilos-ipi",
           "magelib-shootdown", "magelib-ipi"});
  for (int threads : {2, 8, 16, 24, 28, 32, 40, 48}) {
    RunResult h = RunCase(HermitConfig(), threads);
    RunResult d = RunCase(DilosConfig(), threads);
    RunResult m = RunCase(MageLibConfig(), threads);
    t.AddRow({std::to_string(threads), Table::Num(h.tlb_shootdown_latency.mean() / 1000.0),
              Table::Num(h.ipi_delivery_latency.mean() / 1000.0),
              Table::Num(d.tlb_shootdown_latency.mean() / 1000.0),
              Table::Num(d.ipi_delivery_latency.mean() / 1000.0),
              Table::Num(m.tlb_shootdown_latency.mean() / 1000.0),
              Table::Num(m.ipi_delivery_latency.mean() / 1000.0)});
  }
  t.Print();
  return 0;
}
