// Figure 9: application throughput (GapBS PageRank, XSBench) with varying
// local memory at 48 threads for all four systems. The paper's main
// throughput-offloading result.
#include "bench/app_sweep.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/xsbench.h"

int main() {
  using namespace magesim;
  PrintBanner("Figure 9: throughput vs local memory, 48 threads");

  std::vector<int> fars = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90};
  std::vector<KernelConfig> systems = AllSystemConfigs();

  auto run_app = [&](const std::string& title, const WorkloadFactory& make) {
    std::map<std::string, std::vector<SweepPoint>> res;
    for (const auto& cfg : systems) res[cfg.name] = SweepSystem(cfg, make, fars);
    Table t({"far%", "magelib", "magelnx", "dilos", "hermit"});
    for (size_t i = 0; i < fars.size(); ++i) {
      t.AddRow({std::to_string(fars[i]), Table::Pct(res["magelib"][i].normalized * 100),
                Table::Pct(res["magelnx"][i].normalized * 100),
                Table::Pct(res["dilos"][i].normalized * 100),
                Table::Pct(res["hermit"][i].normalized * 100)});
    }
    std::printf("\n%s (normalized throughput, 100%% = all-local)\n", title.c_str());
    t.Print();

    // "Offloadable memory at a 30% throughput-drop SLO" summary (§6.2).
    for (const auto& cfg : systems) {
      int offloadable = 0;
      for (size_t i = 0; i < fars.size(); ++i) {
        if (res[cfg.name][i].normalized >= 0.70) offloadable = fars[i];
      }
      std::printf("  %-8s offloadable at 30%%-drop SLO: %d%%\n", cfg.name.c_str(), offloadable);
    }
  };

  run_app("(a) GapBS PageRank", [] {
    return std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 17, .iterations = 3, .threads = 48});
  });
  run_app("(b) XSBench", [] {
    return std::make_unique<XsBenchWorkload>(
        XsBenchWorkload::Options{.gridpoints = Scaled(1 << 19),
                                 .lookups_per_thread = Scaled(4000),
                                 .threads = 48});
  });
  return 0;
}
