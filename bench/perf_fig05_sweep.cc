// perf_fig05_sweep: simulator throughput on the Figure 5 path-scaling sweep.
//
// The headline scoreboard for "makes a hot path measurably faster": the
// fault-in-only and fault-in+eviction legs of fig05 (MAGE-library config) at
// 1..48 threads, one rep = the whole sweep. The per-config simulated results
// (faults, M ops/s) are deterministic and pinned in the "sim" group; the
// tracked perf metric is wall-clock simulated-events/sec over the sweep.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/perf_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

struct SweepOutcome {
  uint64_t events = 0;  // total engine events across all runs
  uint64_t faults = 0;
  std::vector<std::pair<std::string, uint64_t>> per_config;  // deterministic pins
};

SweepOutcome RunSweep() {
  SweepOutcome out;
  const KernelConfig cfg = MageLibConfig();
  const std::vector<int> threads = {1, 8, 24, 48};
  for (int n : threads) {
    {  // Fault-in only (fig05 left half).
      FaultOnlySeqRead wl({.pages_per_thread = Scaled(1500), .threads = n});
      FarMemoryMachine::Options opt;
      opt.kernel = cfg;
      opt.local_mem_ratio = 1.0;
      FarMemoryMachine m(opt, wl);
      RunResult r = m.Run();
      out.events += m.engine().events_processed();
      out.faults += r.faults;
      out.per_config.emplace_back("fault_t" + std::to_string(n), r.faults);
    }
    {  // Fault-in + eviction (fig05 right half).
      SeqScanWorkload wl({.region_pages = Scaled(800) * static_cast<uint64_t>(n),
                          .threads = n,
                          .passes = 1000,
                          .compute_per_page_ns = 100});
      FarMemoryMachine::Options opt;
      opt.kernel = cfg;
      opt.local_mem_ratio = 0.5;
      opt.time_limit = 25 * kMillisecond;
      opt.stats_warmup = 8 * kMillisecond;
      FarMemoryMachine m(opt, wl);
      RunResult r = m.Run();
      out.events += m.engine().events_processed();
      out.faults += r.faults;
      out.per_config.emplace_back("evict_t" + std::to_string(n), r.faults);
    }
  }
  return out;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  BenchReps reps = BenchRepsFromEnv(/*default_warmup=*/1, /*default_measure=*/3);

  SweepOutcome out;
  for (int i = 0; i < reps.warmup; ++i) out = RunSweep();
  std::vector<uint64_t> rep_ns;
  for (int i = 0; i < reps.measure; ++i) {
    uint64_t t0 = WallNowNs();
    SweepOutcome got = RunSweep();
    rep_ns.push_back(WallNowNs() - t0);
    if (out.events != 0 && got.events != out.events) {
      std::fprintf(stderr, "perf_fig05_sweep: nondeterministic rep\n");
      return 1;
    }
    out = got;
  }

  PerfReport r("fig05_sweep", reps);
  r.Sim("events_per_rep", out.events);
  r.Sim("faults_per_rep", out.faults);
  for (const auto& [key, v] : out.per_config) {
    r.Sim("faults." + key, v);
  }
  r.WallTimes(rep_ns, out.events, "events");
  r.Write();
  return 0;
}
