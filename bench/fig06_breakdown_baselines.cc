// Figure 6: average fault-handler latency breakdown for DiLOS and Hermit at
// 24 and 48 threads with active eviction. At low thread count RDMA dominates;
// at 48 threads TLB (sync-eviction shootdowns), page accounting, and
// allocation blow up.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

RunResult RunCase(const KernelConfig& cfg, int threads) {
  SeqScanWorkload wl({.region_pages = Scaled(1200) * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 45 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 6: fault-handler latency breakdown, eviction active (us/fault)");

  const char* cats[] = {"rdma", "tlb", "accounting", "alloc", "entry", "other"};
  Table t({"system", "threads", "rdma", "tlb", "accounting", "alloc", "entry", "other",
           "total(mean)"});
  for (const auto& cfg : {DilosConfig(), HermitConfig()}) {
    for (int threads : {24, 48}) {
      RunResult r = RunCase(cfg, threads);
      std::vector<std::string> row{cfg.name, std::to_string(threads)};
      for (const char* c : cats) {
        row.push_back(Table::Num(r.fault_breakdown.MeanPer(c, r.faults) / 1000.0));
      }
      row.push_back(Table::Num(r.fault_latency.mean() / 1000.0));
      t.AddRow(row);
    }
  }
  t.Print();
  std::printf("('tlb' in the fault handler = synchronous-eviction shootdowns; zero means\n"
              " eviction stayed asynchronous)\n");
  return 0;
}
