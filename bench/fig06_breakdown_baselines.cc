// Figure 6: average fault-handler latency breakdown for DiLOS and Hermit at
// 24 and 48 threads with active eviction. At low thread count RDMA dominates;
// at 48 threads TLB (sync-eviction shootdowns), page accounting, and
// allocation blow up.
#include <map>

#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

// Per-category mean latency read back from the machine's metrics registry
// (the published fault_breakdown.* counters), not RunResult's accumulators.
struct CaseResult {
  std::map<std::string, double> us_per_fault;
  double mean_fault_us = 0;
};

CaseResult RunCase(const KernelConfig& cfg, int threads,
                   const std::vector<std::string>& cats) {
  SeqScanWorkload wl({.region_pages = Scaled(1200) * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 45 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  opt.metrics.enabled = true;
  FarMemoryMachine m(opt, wl);
  m.Run();

  const MetricsRegistry& reg = *m.metrics();
  CaseResult out;
  uint64_t faults = reg.counter_value("kernel.faults");
  for (const std::string& c : cats) {
    uint64_t total_ns = reg.counter_value("fault_breakdown." + c + ".total_ns");
    out.us_per_fault[c] =
        faults == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(faults) / 1000.0;
  }
  if (const Histogram* h = reg.find_histogram("fault_latency_ns")) {
    out.mean_fault_us = h->mean() / 1000.0;
  }
  return out;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 6: fault-handler latency breakdown, eviction active (us/fault)");

  const std::vector<std::string> cats = {"rdma", "tlb", "accounting", "alloc", "entry", "other"};
  Table t({"system", "threads", "rdma", "tlb", "accounting", "alloc", "entry", "other",
           "total(mean)"});
  for (const auto& cfg : {DilosConfig(), HermitConfig()}) {
    for (int threads : {24, 48}) {
      CaseResult r = RunCase(cfg, threads, cats);
      std::vector<std::string> row{cfg.name, std::to_string(threads)};
      for (const std::string& c : cats) {
        row.push_back(Table::Num(r.us_per_fault[c]));
      }
      row.push_back(Table::Num(r.mean_fault_us));
      t.AddRow(row);
    }
  }
  t.Print();
  std::printf("('tlb' in the fault handler = synchronous-eviction shootdowns; zero means\n"
              " eviction stayed asynchronous)\n");
  return 0;
}
