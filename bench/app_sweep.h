// Shared sweep machinery for the application figures (1, 3, 9, 17, 18b):
// runs a workload factory across systems and offloading ratios, reporting
// throughput normalized to the 100%-local baseline.
#ifndef MAGESIM_BENCH_APP_SWEEP_H_
#define MAGESIM_BENCH_APP_SWEEP_H_

#include <functional>
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "src/workloads/workload.h"

namespace magesim {

struct SweepPoint {
  int far_percent;
  double jobs_per_hour;
  double normalized;  // vs. this system's 100%-local run
  uint64_t faults;
  uint64_t sync_evictions;
  std::vector<uint64_t> faults_per_core;
  double local_seconds;  // T0 of the 100%-local run
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

// Runs `cfg` at each offload percent; point 0 defines the baseline.
inline std::vector<SweepPoint> SweepSystem(const KernelConfig& cfg, const WorkloadFactory& make,
                                           const std::vector<int>& far_percents,
                                           uint64_t seed = 1) {
  std::vector<SweepPoint> out;
  double base_jph = 0;
  double t0 = 0;
  {
    auto wl = make();
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 1.0;
    opt.seed = seed;
    FarMemoryMachine m(opt, *wl);
    RunResult r = m.Run();
    base_jph = r.jobs_per_hour;
    t0 = r.sim_seconds;
  }
  for (int far : far_percents) {
    if (far == 0) {
      out.push_back({0, base_jph, 1.0, 0, 0, {}, t0});
      continue;
    }
    auto wl = make();
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 1.0 - static_cast<double>(far) / 100.0;
    opt.seed = seed;
    FarMemoryMachine m(opt, *wl);
    RunResult r = m.Run();
    out.push_back({far, r.jobs_per_hour, base_jph > 0 ? r.jobs_per_hour / base_jph : 0, r.faults,
                   r.sync_evictions, r.faults_per_core, t0});
  }
  return out;
}

}  // namespace magesim

#endif  // MAGESIM_BENCH_APP_SWEEP_H_
