// Figure 11: GUPS throughput timeline with a working-set phase change.
// Baselines nearly stall for seconds after the change; MAGE dips briefly and
// recovers because its eviction path drains the old working set fast.
#include "bench/bench_common.h"
#include "src/workloads/gups.h"

namespace magesim {
namespace {

constexpr SimTime kBucket = 20 * kMillisecond;

// Throughput per 20 ms bucket from the machine's periodic sampler (windowed
// ops rate over each sampling interval), not the workload's private timeline.
std::vector<double> RunTimeline(const KernelConfig& cfg, SimTime phase_at, SimTime run_for,
                                uint64_t pages) {
  GupsWorkload wl({.total_pages = pages,
                   .threads = 48,
                   .zipf_theta = 0.6,  // spread the hot set across region B
                   .phase_change_at = phase_at,
                   .run_for = run_for});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.85;  // paper: 85% local memory
  opt.time_limit = run_for + 100 * kMillisecond;
  opt.metrics.enabled = true;
  opt.metrics.sample_interval = kBucket;
  FarMemoryMachine m(opt, wl);
  m.Run();
  // Sample k (at t = k*kBucket) carries the windowed rate over bucket k-1.
  const auto& samples = m.sampler()->samples();
  size_t buckets = static_cast<size_t>(run_for / kBucket);
  std::vector<double> rates;
  for (size_t i = 0; i < buckets; ++i) {
    rates.push_back(i + 1 < samples.size() ? samples[i + 1].ops_rate_per_s / 1e6 : 0.0);
  }
  return rates;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 11: GUPS timeline, phase change at t=0.6s (M updates/s, 20ms buckets)");

  SimTime phase_at = 600 * kMillisecond;
  SimTime run_for = 1200 * kMillisecond;
  uint64_t pages = Scaled(192 * 1024);

  std::map<std::string, std::vector<double>> res;
  for (const auto& cfg : AllSystemConfigs()) {
    res[cfg.name] = RunTimeline(cfg, phase_at, run_for, pages);
  }

  Table t({"t(s)", "magelib", "magelnx", "dilos", "hermit"});
  size_t n = res["magelib"].size();
  for (size_t i = 0; i < n; ++i) {
    t.AddRow({Table::Num(0.02 * static_cast<double>(i), 2), Table::Num(res["magelib"][i]),
              Table::Num(res["magelnx"][i]), Table::Num(res["dilos"][i]),
              Table::Num(res["hermit"][i])});
  }
  t.Print();

  // Phase-change damage: deepest dip and total lost work after the change.
  std::printf("\n%-8s %12s %16s\n", "system", "deepest-dip", "lost-updates(M)");
  for (auto& [name, rates] : res) {
    size_t pc = static_cast<size_t>(phase_at / (20 * kMillisecond));
    double pre = 0;
    for (size_t i = pc / 2; i < pc; ++i) pre += rates[i];
    pre /= static_cast<double>(pc - pc / 2);
    double min_rate = pre;
    double deficit = 0;
    for (size_t i = pc; i < rates.size(); ++i) {
      min_rate = std::min(min_rate, rates[i]);
      if (rates[i] < pre) deficit += (pre - rates[i]) * 0.02;
    }
    std::printf("  %-8s %10.0f%% %16.2f\n", name.c_str(),
                pre > 0 ? (1 - min_rate / pre) * 100 : 0, deficit);
  }
  std::printf("(the paper's 32 GB working set stalls baselines for ~2 s; at simulation\n"
              " scale the transition is shorter but the relative damage ordering holds)\n");
  return 0;
}
