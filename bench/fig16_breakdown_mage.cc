// Figure 16: average fault-handler latency breakdown of DiLOS vs the MAGE
// variants at 24 and 48 threads. MAGE-Lib eliminates TLB work from the fault
// path, shrinks accounting via partitioning, and shrinks circulation via the
// multilayer allocator.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

RunResult RunCase(const KernelConfig& cfg, int threads) {
  SeqScanWorkload wl({.region_pages = Scaled(1200) * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 45 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 16: fault-handler breakdown, DiLOS vs MAGE variants (us/fault)");

  const char* cats[] = {"rdma", "tlb", "accounting", "alloc", "entry", "other"};
  Table t({"system", "threads", "rdma", "tlb", "accounting", "alloc", "entry", "other",
           "total(mean)"});
  for (const auto& cfg : {DilosConfig(), MageLnxConfig(), MageLibConfig()}) {
    for (int threads : {24, 48}) {
      RunResult r = RunCase(cfg, threads);
      std::vector<std::string> row{cfg.name, std::to_string(threads)};
      for (const char* c : cats) {
        row.push_back(Table::Num(r.fault_breakdown.MeanPer(c, r.faults) / 1000.0));
      }
      row.push_back(Table::Num(r.fault_latency.mean() / 1000.0));
      t.AddRow(row);
    }
  }
  t.Print();
  std::printf("(paper at 48T: magelib accounting 2.1->0.2 us via partitioning,\n"
              " circulation 2.4->0.5 us via the staging allocator, no TLB in FP)\n");
  return 0;
}
