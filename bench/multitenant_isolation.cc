// Noisy-neighbor isolation: a latency-QoS sequential scanner sharing one
// machine with a GUPS neighbor that wants far more memory than exists.
//
// Three runs over the same 200 ms simulated window:
//   solo       the scanner alone (its working set fits in local DRAM)
//   baseline   scanner + GUPS on shared global accounting (no tenancy): the
//              random-access neighbor evicts the scanner at will
//   tenancy    same co-run with memory control groups attached: GUPS is
//              hard-capped and batch-QoS, the scanner is latency-QoS and
//              evicted from last
//
// The harness asserts the paper-extension acceptance bar — with tenancy the
// latency tenant retains >= 80% of its solo throughput, while the
// unprotected baseline retains < 50% — and exits nonzero if either side
// fails or any run reports invariant violations.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/tenancy/tenant_spec.h"
#include "src/workloads/multi_tenant.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

constexpr SimTime kWindow = 200 * kMillisecond;
// Scanner: 2 threads cycling 4096 pages until the window closes.
// Neighbor: 4 GUPS threads hammering 16384 pages (zipf .99), never finishing.
constexpr char kTenancySpec[] =
    "lat:4:0:latency=seqscan/2,pages=4096,passes=100000,compute_ns=2000;"
    "bg:1:0.35:0.3:batch=gups/8,pages=16384,theta=0.4,run_ms=600,phase_ms=600";
// Combined working set 20480 pages at 35% local => 7168 local pages: the
// scanner (4096) plus the capped neighbor (2508) still fit, but the
// uncapped neighbor alone wants more than twice the machine.
constexpr double kCombinedLocalRatio = 0.35;

struct LatResult {
  double mops = 0;  // latency-tenant ops over the window, in millions/s
  RunResult r;
};

void CheckClean(FarMemoryMachine& m, const RunResult& r, const char* label) {
  if (r.invariant_violations != 0) {
    std::fprintf(stderr, "FATAL: invariant violations in %s run\n%s\n", label,
                 m.checker()->Report().c_str());
    std::exit(1);
  }
  if (r.aborted) {
    std::fprintf(stderr, "FATAL: %s run aborted: %s\n", label, r.abort_reason.c_str());
    std::exit(1);
  }
}

FarMemoryMachine::Options BaseOptions(double local_ratio) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = local_ratio;
  opt.seed = 42;
  opt.time_limit = kWindow;
  opt.check_final = true;
  return opt;
}

double LatOpsPerSec(FarMemoryMachine& m, const RunResult& r, int begin, int end) {
  uint64_t ops = 0;
  for (int tid = begin; tid < end; ++tid) {
    ops += m.threads()[static_cast<size_t>(tid)]->ops;
  }
  return static_cast<double>(ops) / r.sim_seconds;
}

LatResult RunSolo() {
  SeqScanWorkload wl(SeqScanWorkload::Options{.region_pages = Scaled(4096),
                                              .threads = 2,
                                              .passes = 100000,
                                              .compute_per_page_ns = 2000});
  FarMemoryMachine::Options opt = BaseOptions(/*local_ratio=*/1.0);
  FarMemoryMachine m(opt, wl);
  LatResult out;
  out.r = m.Run();
  CheckClean(m, out.r, "solo");
  out.mops = LatOpsPerSec(m, out.r, 0, 2) / 1e6;
  return out;
}

std::vector<TenantSpec> ParsedSpecs() {
  TenancyOptions opts;
  std::string err;
  if (!ParseTenancyList(kTenancySpec, &opts, &err)) {
    std::fprintf(stderr, "FATAL: bad tenant spec: %s\n", err.c_str());
    std::exit(1);
  }
  for (TenantSpec& s : opts.tenants) {
    if (s.workload_opts.count("pages") != 0) {
      s.workload_opts["pages"] = std::to_string(Scaled(
          std::strtoull(s.workload_opts["pages"].c_str(), nullptr, 10)));
    }
  }
  return opts.tenants;
}

// Shared-accounting baseline: the same two workloads, same cores, same vpn
// windows — built directly as a composite workload so no cgroups attach.
LatResult RunBaseline() {
  std::vector<TenantSpec> specs = ParsedSpecs();
  std::string err;
  std::unique_ptr<MultiTenantWorkload> wl = MultiTenantWorkload::Build(&specs, &err);
  if (wl == nullptr) {
    std::fprintf(stderr, "FATAL: %s\n", err.c_str());
    std::exit(1);
  }
  FarMemoryMachine::Options opt = BaseOptions(kCombinedLocalRatio);
  FarMemoryMachine m(opt, *wl);
  LatResult out;
  out.r = m.Run();
  CheckClean(m, out.r, "baseline");
  out.mops = LatOpsPerSec(m, out.r, specs[0].thread_begin, specs[0].thread_end) / 1e6;
  return out;
}

LatResult RunWithTenancy() {
  FarMemoryMachine::Options opt = BaseOptions(kCombinedLocalRatio);
  opt.tenancy.tenants = ParsedSpecs();
  opt.tenancy.enabled = true;
  SeqScanWorkload placeholder(
      SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
  FarMemoryMachine m(opt, placeholder);
  LatResult out;
  out.r = m.Run();
  CheckClean(m, out.r, "tenancy");
  out.mops = LatOpsPerSec(m, out.r, out.r.tenants[0].name == "lat" ? 0 : 2, 2) / 1e6;
  return out;
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;

  LatResult solo = RunSolo();
  LatResult base = RunBaseline();
  LatResult ten = RunWithTenancy();

  double base_keep = base.mops / solo.mops;
  double ten_keep = ten.mops / solo.mops;

  std::printf("# multitenant_isolation: latency scanner vs GUPS neighbor (200 ms window)\n");
  std::printf("%-10s %14s %10s\n", "run", "lat Mops/s", "retained");
  std::printf("%-10s %14.3f %9.1f%%\n", "solo", solo.mops, 100.0);
  std::printf("%-10s %14.3f %9.1f%%\n", "baseline", base.mops, 100.0 * base_keep);
  std::printf("%-10s %14.3f %9.1f%%\n", "tenancy", ten.mops, 100.0 * ten_keep);
  if (!ten.r.tenants.empty()) {
    const TenantRunResult& bg = ten.r.tenants[1];
    std::printf("neighbor   usage %llu/%llu pages, evicted %llu, hard-waits %llu, "
                "throttles %llu\n",
                static_cast<unsigned long long>(bg.usage_pages),
                static_cast<unsigned long long>(bg.hard_limit_pages),
                static_cast<unsigned long long>(bg.evict_selected),
                static_cast<unsigned long long>(bg.hard_limit_waits),
                static_cast<unsigned long long>(bg.backpressure_waits));
  }

  bool ok = true;
  if (ten_keep < 0.8) {
    std::fprintf(stderr, "FAIL: tenancy retained %.1f%% of solo (< 80%%)\n",
                 100.0 * ten_keep);
    ok = false;
  }
  if (base_keep >= 0.5) {
    std::fprintf(stderr, "FAIL: unprotected baseline retained %.1f%% of solo "
                 "(expected < 50%% — the neighbor should hurt)\n",
                 100.0 * base_keep);
    ok = false;
  }
  if (ok) std::printf("PASS: tenancy >= 80%% retained, baseline < 50%%\n");
  return ok ? 0 : 1;
}
