// Figure 13: Memcached under a USR-like load (99.8% GET, Zipf-0.99 keys,
// 24 server threads). (a) p99 latency vs. local-memory ratio at fixed load;
// (b) p99 latency vs. offered load at 50% local memory.
#include "bench/bench_common.h"
#include "src/workloads/memcached.h"

namespace magesim {
namespace {

struct McResult {
  double p99_us;
  double achieved_kops;
};

McResult RunMc(const KernelConfig& cfg, double local_ratio, double load_ops) {
  MemcachedWorkload wl({.num_keys = Scaled(1) << 19,
                        .load_ops_per_sec = load_ops,
                        .duration = 1 * kSecond});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = local_ratio;
  opt.time_limit = 1200 * kMillisecond;
  opt.stats_warmup = 200 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  m.Run();
  return {static_cast<double>(wl.request_latency().Percentile(99)) / 1000.0,
          wl.AchievedOpsPerSec() / 1000.0};
}

}  // namespace
}  // namespace magesim

int main() {
  using namespace magesim;
  PrintBanner("Figure 13: Memcached tail latency (24 server threads)");

  double fixed_load = 300000 * BenchScale();

  std::printf("\n(a) p99 latency (us) vs far memory at fixed load (%.0f Kops/s)\n",
              fixed_load / 1000);
  Table a({"far%", "magelib", "magelnx", "dilos", "hermit"});
  for (int far : {0, 10, 20, 30, 40, 50, 60, 70, 80}) {
    std::vector<std::string> row{std::to_string(far)};
    for (const auto& cfg : {MageLibConfig(), MageLnxConfig(), DilosConfig(), HermitConfig()}) {
      row.push_back(Table::Num(RunMc(cfg, 1.0 - far / 100.0, fixed_load).p99_us, 1));
    }
    a.AddRow(row);
  }
  a.Print();

  std::printf("\n(b) p99 latency (us) vs offered load at 50%% local memory\n");
  Table b({"load(Kops)", "magelib", "magelnx", "dilos", "hermit"});
  for (double load : {100e3, 200e3, 300e3, 400e3, 500e3, 600e3}) {
    double l = load * BenchScale();
    std::vector<std::string> row{Table::Num(l / 1000, 0)};
    for (const auto& cfg : {MageLibConfig(), MageLnxConfig(), DilosConfig(), HermitConfig()}) {
      McResult r = RunMc(cfg, 0.5, l);
      row.push_back(Table::Num(r.p99_us, 1));
    }
    b.AddRow(row);
  }
  b.Print();
  return 0;
}
