// Figure 14: available fault throughput — sequential read, prefetch off, 30%
// local memory, 48 threads. Reports p99 fault latency, synchronous-eviction
// count, and achieved network utilization. MAGE-Lib should approach the
// 192 Gbps wire limit with zero sync evictions.
#include "bench/bench_common.h"
#include "src/workloads/seqscan.h"

int main() {
  using namespace magesim;
  PrintBanner("Figure 14: available throughput at 30% local memory, 48 threads");

  Table t({"system", "read-Gbps", "%of-192", "p99-fault(us)", "sync-evictions", "faults"});
  for (const auto& cfg : AllSystemConfigs()) {
    SeqScanWorkload wl({.region_pages = Scaled(1500) * 48,
                        .threads = 48,
                        .passes = 1000,
                        .compute_per_page_ns = 100});
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 0.3;
    opt.time_limit = 60 * kMillisecond;
    opt.stats_warmup = 20 * kMillisecond;
    FarMemoryMachine m(opt, wl);
    RunResult r = m.Run();
    t.AddRow({cfg.name, Table::Num(r.nic_read_gbps, 1),
              Table::Pct(r.nic_read_gbps / 192.0 * 100),
              Table::Num(static_cast<double>(r.fault_latency.Percentile(99)) / 1000.0, 1),
              std::to_string(r.sync_evictions), std::to_string(r.faults)});
  }
  t.Print();
  std::printf("(paper: magelib 181 Gbps / p99 12 us, magelnx 139 Gbps / p99 31 us,\n"
              " dilos p99 82 us, hermit p99 255 us; magelib has zero sync evictions)\n");
  return 0;
}
