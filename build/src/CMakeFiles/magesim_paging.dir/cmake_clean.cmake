file(REMOVE_RECURSE
  "CMakeFiles/magesim_paging.dir/paging/evictor.cc.o"
  "CMakeFiles/magesim_paging.dir/paging/evictor.cc.o.d"
  "CMakeFiles/magesim_paging.dir/paging/fault_path.cc.o"
  "CMakeFiles/magesim_paging.dir/paging/fault_path.cc.o.d"
  "CMakeFiles/magesim_paging.dir/paging/kernel.cc.o"
  "CMakeFiles/magesim_paging.dir/paging/kernel.cc.o.d"
  "CMakeFiles/magesim_paging.dir/paging/kernels.cc.o"
  "CMakeFiles/magesim_paging.dir/paging/kernels.cc.o.d"
  "CMakeFiles/magesim_paging.dir/paging/pipelined_evictor.cc.o"
  "CMakeFiles/magesim_paging.dir/paging/pipelined_evictor.cc.o.d"
  "CMakeFiles/magesim_paging.dir/paging/prefetcher.cc.o"
  "CMakeFiles/magesim_paging.dir/paging/prefetcher.cc.o.d"
  "libmagesim_paging.a"
  "libmagesim_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
