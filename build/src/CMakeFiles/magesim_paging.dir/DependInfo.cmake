
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paging/evictor.cc" "src/CMakeFiles/magesim_paging.dir/paging/evictor.cc.o" "gcc" "src/CMakeFiles/magesim_paging.dir/paging/evictor.cc.o.d"
  "/root/repo/src/paging/fault_path.cc" "src/CMakeFiles/magesim_paging.dir/paging/fault_path.cc.o" "gcc" "src/CMakeFiles/magesim_paging.dir/paging/fault_path.cc.o.d"
  "/root/repo/src/paging/kernel.cc" "src/CMakeFiles/magesim_paging.dir/paging/kernel.cc.o" "gcc" "src/CMakeFiles/magesim_paging.dir/paging/kernel.cc.o.d"
  "/root/repo/src/paging/kernels.cc" "src/CMakeFiles/magesim_paging.dir/paging/kernels.cc.o" "gcc" "src/CMakeFiles/magesim_paging.dir/paging/kernels.cc.o.d"
  "/root/repo/src/paging/pipelined_evictor.cc" "src/CMakeFiles/magesim_paging.dir/paging/pipelined_evictor.cc.o" "gcc" "src/CMakeFiles/magesim_paging.dir/paging/pipelined_evictor.cc.o.d"
  "/root/repo/src/paging/prefetcher.cc" "src/CMakeFiles/magesim_paging.dir/paging/prefetcher.cc.o" "gcc" "src/CMakeFiles/magesim_paging.dir/paging/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magesim_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
