file(REMOVE_RECURSE
  "libmagesim_paging.a"
)
