# Empty dependencies file for magesim_paging.
# This may be replaced when dependencies are built.
