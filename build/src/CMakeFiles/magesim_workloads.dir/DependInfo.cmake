
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dataframe.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/dataframe.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/dataframe.cc.o.d"
  "/root/repo/src/workloads/gups.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/gups.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/gups.cc.o.d"
  "/root/repo/src/workloads/kronecker.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/kronecker.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/kronecker.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/memcached.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/memcached.cc.o.d"
  "/root/repo/src/workloads/metis.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/metis.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/metis.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/seqscan.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/seqscan.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/seqscan.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/trace.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/workload.cc.o.d"
  "/root/repo/src/workloads/xsbench.cc" "src/CMakeFiles/magesim_workloads.dir/workloads/xsbench.cc.o" "gcc" "src/CMakeFiles/magesim_workloads.dir/workloads/xsbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magesim_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
