file(REMOVE_RECURSE
  "CMakeFiles/magesim_workloads.dir/workloads/dataframe.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/dataframe.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/gups.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/gups.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/kronecker.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/kronecker.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/memcached.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/memcached.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/metis.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/metis.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/pagerank.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/pagerank.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/seqscan.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/seqscan.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/trace.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/trace.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/workload.cc.o.d"
  "CMakeFiles/magesim_workloads.dir/workloads/xsbench.cc.o"
  "CMakeFiles/magesim_workloads.dir/workloads/xsbench.cc.o.d"
  "libmagesim_workloads.a"
  "libmagesim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
