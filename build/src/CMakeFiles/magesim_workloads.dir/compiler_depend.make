# Empty compiler generated dependencies file for magesim_workloads.
# This may be replaced when dependencies are built.
