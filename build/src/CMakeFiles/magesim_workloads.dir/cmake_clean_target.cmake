file(REMOVE_RECURSE
  "libmagesim_workloads.a"
)
