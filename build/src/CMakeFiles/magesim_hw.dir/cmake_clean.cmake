file(REMOVE_RECURSE
  "CMakeFiles/magesim_hw.dir/hw/ipi.cc.o"
  "CMakeFiles/magesim_hw.dir/hw/ipi.cc.o.d"
  "CMakeFiles/magesim_hw.dir/hw/memnode.cc.o"
  "CMakeFiles/magesim_hw.dir/hw/memnode.cc.o.d"
  "CMakeFiles/magesim_hw.dir/hw/rdma.cc.o"
  "CMakeFiles/magesim_hw.dir/hw/rdma.cc.o.d"
  "CMakeFiles/magesim_hw.dir/hw/topology.cc.o"
  "CMakeFiles/magesim_hw.dir/hw/topology.cc.o.d"
  "libmagesim_hw.a"
  "libmagesim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
