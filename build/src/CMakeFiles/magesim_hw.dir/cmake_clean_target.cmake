file(REMOVE_RECURSE
  "libmagesim_hw.a"
)
