# Empty dependencies file for magesim_hw.
# This may be replaced when dependencies are built.
