
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/ipi.cc" "src/CMakeFiles/magesim_hw.dir/hw/ipi.cc.o" "gcc" "src/CMakeFiles/magesim_hw.dir/hw/ipi.cc.o.d"
  "/root/repo/src/hw/memnode.cc" "src/CMakeFiles/magesim_hw.dir/hw/memnode.cc.o" "gcc" "src/CMakeFiles/magesim_hw.dir/hw/memnode.cc.o.d"
  "/root/repo/src/hw/rdma.cc" "src/CMakeFiles/magesim_hw.dir/hw/rdma.cc.o" "gcc" "src/CMakeFiles/magesim_hw.dir/hw/rdma.cc.o.d"
  "/root/repo/src/hw/topology.cc" "src/CMakeFiles/magesim_hw.dir/hw/topology.cc.o" "gcc" "src/CMakeFiles/magesim_hw.dir/hw/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
