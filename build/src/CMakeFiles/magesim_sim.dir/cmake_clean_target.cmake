file(REMOVE_RECURSE
  "libmagesim_sim.a"
)
