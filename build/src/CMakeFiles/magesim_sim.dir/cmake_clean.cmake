file(REMOVE_RECURSE
  "CMakeFiles/magesim_sim.dir/sim/engine.cc.o"
  "CMakeFiles/magesim_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/magesim_sim.dir/sim/random.cc.o"
  "CMakeFiles/magesim_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/magesim_sim.dir/sim/stats.cc.o"
  "CMakeFiles/magesim_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/magesim_sim.dir/sim/sync.cc.o"
  "CMakeFiles/magesim_sim.dir/sim/sync.cc.o.d"
  "libmagesim_sim.a"
  "libmagesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
