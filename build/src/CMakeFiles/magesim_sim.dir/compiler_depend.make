# Empty compiler generated dependencies file for magesim_sim.
# This may be replaced when dependencies are built.
