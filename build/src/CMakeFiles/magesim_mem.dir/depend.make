# Empty dependencies file for magesim_mem.
# This may be replaced when dependencies are built.
