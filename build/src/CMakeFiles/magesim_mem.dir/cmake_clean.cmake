file(REMOVE_RECURSE
  "CMakeFiles/magesim_mem.dir/mem/buddy_allocator.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/buddy_allocator.cc.o.d"
  "CMakeFiles/magesim_mem.dir/mem/frame_pool.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/frame_pool.cc.o.d"
  "CMakeFiles/magesim_mem.dir/mem/multilayer_allocator.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/multilayer_allocator.cc.o.d"
  "CMakeFiles/magesim_mem.dir/mem/page_table.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/page_table.cc.o.d"
  "CMakeFiles/magesim_mem.dir/mem/percpu_cache.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/percpu_cache.cc.o.d"
  "CMakeFiles/magesim_mem.dir/mem/swap_allocator.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/swap_allocator.cc.o.d"
  "CMakeFiles/magesim_mem.dir/mem/vma.cc.o"
  "CMakeFiles/magesim_mem.dir/mem/vma.cc.o.d"
  "libmagesim_mem.a"
  "libmagesim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
