
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/buddy_allocator.cc" "src/CMakeFiles/magesim_mem.dir/mem/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/buddy_allocator.cc.o.d"
  "/root/repo/src/mem/frame_pool.cc" "src/CMakeFiles/magesim_mem.dir/mem/frame_pool.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/frame_pool.cc.o.d"
  "/root/repo/src/mem/multilayer_allocator.cc" "src/CMakeFiles/magesim_mem.dir/mem/multilayer_allocator.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/multilayer_allocator.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/magesim_mem.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/percpu_cache.cc" "src/CMakeFiles/magesim_mem.dir/mem/percpu_cache.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/percpu_cache.cc.o.d"
  "/root/repo/src/mem/swap_allocator.cc" "src/CMakeFiles/magesim_mem.dir/mem/swap_allocator.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/swap_allocator.cc.o.d"
  "/root/repo/src/mem/vma.cc" "src/CMakeFiles/magesim_mem.dir/mem/vma.cc.o" "gcc" "src/CMakeFiles/magesim_mem.dir/mem/vma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magesim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
