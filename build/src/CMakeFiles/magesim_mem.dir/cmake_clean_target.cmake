file(REMOVE_RECURSE
  "libmagesim_mem.a"
)
