# Empty dependencies file for magesim_core.
# This may be replaced when dependencies are built.
