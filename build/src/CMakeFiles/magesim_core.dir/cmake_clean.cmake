file(REMOVE_RECURSE
  "CMakeFiles/magesim_core.dir/core/farmem.cc.o"
  "CMakeFiles/magesim_core.dir/core/farmem.cc.o.d"
  "CMakeFiles/magesim_core.dir/core/ideal_model.cc.o"
  "CMakeFiles/magesim_core.dir/core/ideal_model.cc.o.d"
  "CMakeFiles/magesim_core.dir/core/report.cc.o"
  "CMakeFiles/magesim_core.dir/core/report.cc.o.d"
  "libmagesim_core.a"
  "libmagesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
