file(REMOVE_RECURSE
  "libmagesim_core.a"
)
