# Empty dependencies file for magesim_accounting.
# This may be replaced when dependencies are built.
