
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accounting/global_lru.cc" "src/CMakeFiles/magesim_accounting.dir/accounting/global_lru.cc.o" "gcc" "src/CMakeFiles/magesim_accounting.dir/accounting/global_lru.cc.o.d"
  "/root/repo/src/accounting/mglru.cc" "src/CMakeFiles/magesim_accounting.dir/accounting/mglru.cc.o" "gcc" "src/CMakeFiles/magesim_accounting.dir/accounting/mglru.cc.o.d"
  "/root/repo/src/accounting/partitioned_fifo.cc" "src/CMakeFiles/magesim_accounting.dir/accounting/partitioned_fifo.cc.o" "gcc" "src/CMakeFiles/magesim_accounting.dir/accounting/partitioned_fifo.cc.o.d"
  "/root/repo/src/accounting/s3fifo.cc" "src/CMakeFiles/magesim_accounting.dir/accounting/s3fifo.cc.o" "gcc" "src/CMakeFiles/magesim_accounting.dir/accounting/s3fifo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
