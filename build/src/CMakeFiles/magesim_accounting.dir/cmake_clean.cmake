file(REMOVE_RECURSE
  "CMakeFiles/magesim_accounting.dir/accounting/global_lru.cc.o"
  "CMakeFiles/magesim_accounting.dir/accounting/global_lru.cc.o.d"
  "CMakeFiles/magesim_accounting.dir/accounting/mglru.cc.o"
  "CMakeFiles/magesim_accounting.dir/accounting/mglru.cc.o.d"
  "CMakeFiles/magesim_accounting.dir/accounting/partitioned_fifo.cc.o"
  "CMakeFiles/magesim_accounting.dir/accounting/partitioned_fifo.cc.o.d"
  "CMakeFiles/magesim_accounting.dir/accounting/s3fifo.cc.o"
  "CMakeFiles/magesim_accounting.dir/accounting/s3fifo.cc.o.d"
  "libmagesim_accounting.a"
  "libmagesim_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
