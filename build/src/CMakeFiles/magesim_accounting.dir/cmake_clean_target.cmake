file(REMOVE_RECURSE
  "libmagesim_accounting.a"
)
