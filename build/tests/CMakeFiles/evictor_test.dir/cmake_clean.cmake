file(REMOVE_RECURSE
  "CMakeFiles/evictor_test.dir/paging/evictor_test.cc.o"
  "CMakeFiles/evictor_test.dir/paging/evictor_test.cc.o.d"
  "evictor_test"
  "evictor_test.pdb"
  "evictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
