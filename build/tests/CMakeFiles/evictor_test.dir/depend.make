# Empty dependencies file for evictor_test.
# This may be replaced when dependencies are built.
