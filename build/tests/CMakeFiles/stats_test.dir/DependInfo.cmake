
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/stats_test.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/sim/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/magesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
