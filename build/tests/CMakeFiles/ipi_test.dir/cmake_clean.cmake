file(REMOVE_RECURSE
  "CMakeFiles/ipi_test.dir/hw/ipi_test.cc.o"
  "CMakeFiles/ipi_test.dir/hw/ipi_test.cc.o.d"
  "ipi_test"
  "ipi_test.pdb"
  "ipi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
