# Empty compiler generated dependencies file for ipi_test.
# This may be replaced when dependencies are built.
