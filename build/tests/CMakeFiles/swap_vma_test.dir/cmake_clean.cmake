file(REMOVE_RECURSE
  "CMakeFiles/swap_vma_test.dir/mem/swap_vma_test.cc.o"
  "CMakeFiles/swap_vma_test.dir/mem/swap_vma_test.cc.o.d"
  "swap_vma_test"
  "swap_vma_test.pdb"
  "swap_vma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_vma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
