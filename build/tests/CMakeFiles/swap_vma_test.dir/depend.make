# Empty dependencies file for swap_vma_test.
# This may be replaced when dependencies are built.
