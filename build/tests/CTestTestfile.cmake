# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/ipi_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/buddy_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/page_table_test[1]_include.cmake")
include("/root/repo/build/tests/swap_vma_test[1]_include.cmake")
include("/root/repo/build/tests/accounting_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/evictor_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
