# Empty dependencies file for table2_local_perf.
# This may be replaced when dependencies are built.
