# Empty compiler generated dependencies file for fig05_path_scaling.
# This may be replaced when dependencies are built.
