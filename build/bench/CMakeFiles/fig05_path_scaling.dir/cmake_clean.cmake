file(REMOVE_RECURSE
  "CMakeFiles/fig05_path_scaling.dir/fig05_path_scaling.cc.o"
  "CMakeFiles/fig05_path_scaling.dir/fig05_path_scaling.cc.o.d"
  "fig05_path_scaling"
  "fig05_path_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_path_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
