file(REMOVE_RECURSE
  "CMakeFiles/fig03_ideal_vs_hermit.dir/fig03_ideal_vs_hermit.cc.o"
  "CMakeFiles/fig03_ideal_vs_hermit.dir/fig03_ideal_vs_hermit.cc.o.d"
  "fig03_ideal_vs_hermit"
  "fig03_ideal_vs_hermit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ideal_vs_hermit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
