# Empty dependencies file for fig03_ideal_vs_hermit.
# This may be replaced when dependencies are built.
