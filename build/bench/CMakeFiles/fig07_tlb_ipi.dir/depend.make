# Empty dependencies file for fig07_tlb_ipi.
# This may be replaced when dependencies are built.
