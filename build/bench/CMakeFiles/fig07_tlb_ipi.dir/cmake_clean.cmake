file(REMOVE_RECURSE
  "CMakeFiles/fig07_tlb_ipi.dir/fig07_tlb_ipi.cc.o"
  "CMakeFiles/fig07_tlb_ipi.dir/fig07_tlb_ipi.cc.o.d"
  "fig07_tlb_ipi"
  "fig07_tlb_ipi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tlb_ipi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
