# Empty dependencies file for fig18_batch_regression.
# This may be replaced when dependencies are built.
