file(REMOVE_RECURSE
  "CMakeFiles/fig18_batch_regression.dir/fig18_batch_regression.cc.o"
  "CMakeFiles/fig18_batch_regression.dir/fig18_batch_regression.cc.o.d"
  "fig18_batch_regression"
  "fig18_batch_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_batch_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
