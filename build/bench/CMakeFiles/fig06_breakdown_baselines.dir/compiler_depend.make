# Empty compiler generated dependencies file for fig06_breakdown_baselines.
# This may be replaced when dependencies are built.
