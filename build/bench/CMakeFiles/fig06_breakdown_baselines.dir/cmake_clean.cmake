file(REMOVE_RECURSE
  "CMakeFiles/fig06_breakdown_baselines.dir/fig06_breakdown_baselines.cc.o"
  "CMakeFiles/fig06_breakdown_baselines.dir/fig06_breakdown_baselines.cc.o.d"
  "fig06_breakdown_baselines"
  "fig06_breakdown_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_breakdown_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
