file(REMOVE_RECURSE
  "CMakeFiles/fig15_throughput_latency.dir/fig15_throughput_latency.cc.o"
  "CMakeFiles/fig15_throughput_latency.dir/fig15_throughput_latency.cc.o.d"
  "fig15_throughput_latency"
  "fig15_throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
