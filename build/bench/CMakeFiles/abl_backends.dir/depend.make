# Empty dependencies file for abl_backends.
# This may be replaced when dependencies are built.
