file(REMOVE_RECURSE
  "CMakeFiles/abl_backends.dir/abl_backends.cc.o"
  "CMakeFiles/abl_backends.dir/abl_backends.cc.o.d"
  "abl_backends"
  "abl_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
