# Empty compiler generated dependencies file for fig13_memcached.
# This may be replaced when dependencies are built.
