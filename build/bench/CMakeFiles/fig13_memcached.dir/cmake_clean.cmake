file(REMOVE_RECURSE
  "CMakeFiles/fig13_memcached.dir/fig13_memcached.cc.o"
  "CMakeFiles/fig13_memcached.dir/fig13_memcached.cc.o.d"
  "fig13_memcached"
  "fig13_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
