file(REMOVE_RECURSE
  "CMakeFiles/fig01_gapbs_offload.dir/fig01_gapbs_offload.cc.o"
  "CMakeFiles/fig01_gapbs_offload.dir/fig01_gapbs_offload.cc.o.d"
  "fig01_gapbs_offload"
  "fig01_gapbs_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_gapbs_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
