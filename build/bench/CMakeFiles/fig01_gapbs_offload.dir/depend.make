# Empty dependencies file for fig01_gapbs_offload.
# This may be replaced when dependencies are built.
