# Empty dependencies file for abl_accounting_policies.
# This may be replaced when dependencies are built.
