file(REMOVE_RECURSE
  "CMakeFiles/abl_accounting_policies.dir/abl_accounting_policies.cc.o"
  "CMakeFiles/abl_accounting_policies.dir/abl_accounting_policies.cc.o.d"
  "abl_accounting_policies"
  "abl_accounting_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_accounting_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
