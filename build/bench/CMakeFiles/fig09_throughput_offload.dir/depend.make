# Empty dependencies file for fig09_throughput_offload.
# This may be replaced when dependencies are built.
