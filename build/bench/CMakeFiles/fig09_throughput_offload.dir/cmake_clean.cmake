file(REMOVE_RECURSE
  "CMakeFiles/fig09_throughput_offload.dir/fig09_throughput_offload.cc.o"
  "CMakeFiles/fig09_throughput_offload.dir/fig09_throughput_offload.cc.o.d"
  "fig09_throughput_offload"
  "fig09_throughput_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_throughput_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
