file(REMOVE_RECURSE
  "CMakeFiles/fig11_gups_timeline.dir/fig11_gups_timeline.cc.o"
  "CMakeFiles/fig11_gups_timeline.dir/fig11_gups_timeline.cc.o.d"
  "fig11_gups_timeline"
  "fig11_gups_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gups_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
