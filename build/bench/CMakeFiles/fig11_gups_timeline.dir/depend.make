# Empty dependencies file for fig11_gups_timeline.
# This may be replaced when dependencies are built.
