# Empty compiler generated dependencies file for fig14_available_throughput.
# This may be replaced when dependencies are built.
