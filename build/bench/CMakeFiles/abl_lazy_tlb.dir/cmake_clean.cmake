file(REMOVE_RECURSE
  "CMakeFiles/abl_lazy_tlb.dir/abl_lazy_tlb.cc.o"
  "CMakeFiles/abl_lazy_tlb.dir/abl_lazy_tlb.cc.o.d"
  "abl_lazy_tlb"
  "abl_lazy_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lazy_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
