# Empty dependencies file for abl_lazy_tlb.
# This may be replaced when dependencies are built.
