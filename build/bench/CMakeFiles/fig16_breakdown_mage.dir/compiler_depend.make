# Empty compiler generated dependencies file for fig16_breakdown_mage.
# This may be replaced when dependencies are built.
