file(REMOVE_RECURSE
  "CMakeFiles/fig16_breakdown_mage.dir/fig16_breakdown_mage.cc.o"
  "CMakeFiles/fig16_breakdown_mage.dir/fig16_breakdown_mage.cc.o.d"
  "fig16_breakdown_mage"
  "fig16_breakdown_mage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_breakdown_mage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
