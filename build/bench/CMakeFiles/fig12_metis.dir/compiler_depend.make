# Empty compiler generated dependencies file for fig12_metis.
# This may be replaced when dependencies are built.
