file(REMOVE_RECURSE
  "CMakeFiles/fig12_metis.dir/fig12_metis.cc.o"
  "CMakeFiles/fig12_metis.dir/fig12_metis.cc.o.d"
  "fig12_metis"
  "fig12_metis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_metis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
