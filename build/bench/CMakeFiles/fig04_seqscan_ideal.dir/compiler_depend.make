# Empty compiler generated dependencies file for fig04_seqscan_ideal.
# This may be replaced when dependencies are built.
