file(REMOVE_RECURSE
  "CMakeFiles/fig04_seqscan_ideal.dir/fig04_seqscan_ideal.cc.o"
  "CMakeFiles/fig04_seqscan_ideal.dir/fig04_seqscan_ideal.cc.o.d"
  "fig04_seqscan_ideal"
  "fig04_seqscan_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_seqscan_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
