# Empty dependencies file for magesim_cli.
# This may be replaced when dependencies are built.
