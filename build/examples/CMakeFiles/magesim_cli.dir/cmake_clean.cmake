file(REMOVE_RECURSE
  "CMakeFiles/magesim_cli.dir/magesim_cli.cpp.o"
  "CMakeFiles/magesim_cli.dir/magesim_cli.cpp.o.d"
  "magesim_cli"
  "magesim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
