# Empty dependencies file for phase_change.
# This may be replaced when dependencies are built.
