file(REMOVE_RECURSE
  "CMakeFiles/phase_change.dir/phase_change.cpp.o"
  "CMakeFiles/phase_change.dir/phase_change.cpp.o.d"
  "phase_change"
  "phase_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
