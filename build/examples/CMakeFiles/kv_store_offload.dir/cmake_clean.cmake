file(REMOVE_RECURSE
  "CMakeFiles/kv_store_offload.dir/kv_store_offload.cpp.o"
  "CMakeFiles/kv_store_offload.dir/kv_store_offload.cpp.o.d"
  "kv_store_offload"
  "kv_store_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
