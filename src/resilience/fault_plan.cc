#include "src/resilience/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace magesim {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool KindFromName(const std::string& name, FaultKind* out) {
  for (int i = 0; i < static_cast<int>(FaultKind::kNumKinds); ++i) {
    FaultKind k = static_cast<FaultKind>(i);
    if (name == FaultKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool ChannelFromName(const std::string& name, FaultChannel* out) {
  if (name == "read") {
    *out = FaultChannel::kRead;
  } else if (name == "write") {
    *out = FaultChannel::kWrite;
  } else if (name == "both") {
    *out = FaultChannel::kBoth;
  } else {
    return false;
  }
  return true;
}

const char* ChannelName(FaultChannel c) {
  switch (c) {
    case FaultChannel::kRead: return "read";
    case FaultChannel::kWrite: return "write";
    case FaultChannel::kBoth: return "both";
  }
  return "both";
}

// Shortest decimal rendering that parses back to exactly the same double.
std::string FormatDouble(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

// Each kind starts from sensible non-noop defaults so terse specs like
// "brownout@2ms-6ms" are meaningful; explicit keys override.
void ApplyKindDefaults(FaultWindow* w) {
  switch (w->kind) {
    case FaultKind::kBrownout:
      w->bandwidth_factor = 0.25;
      break;
    case FaultKind::kDegrade:
      w->bandwidth_factor = 0.5;
      w->probability = 0.05;
      break;
    case FaultKind::kDrop:
    case FaultKind::kError:
      w->probability = 0.01;
      break;
    case FaultKind::kSpike:
      w->extra_latency_ns = 20 * kMicrosecond;
      break;
    case FaultKind::kIpiDelay:
      w->extra_latency_ns = 10 * kMicrosecond;
      break;
    case FaultKind::kCrash:
    case FaultKind::kNumKinds:
      break;
  }
}

bool SetWindowKey(FaultWindow* w, const std::string& key, const std::string& value,
                  std::string* error) {
  if (key == "p") {
    double p;
    if (!ParseDouble(value, &p) || p < 0.0 || p > 1.0) {
      SetError(error, "bad probability '" + value + "' (want 0..1)");
      return false;
    }
    w->probability = p;
  } else if (key == "bw") {
    double bw;
    if (!ParseDouble(value, &bw) || bw <= 0.0) {
      SetError(error, "bad bandwidth factor '" + value + "' (want > 0)");
      return false;
    }
    w->bandwidth_factor = bw;
  } else if (key == "lat") {
    if (!ParseTimeNs(value, &w->extra_latency_ns)) {
      SetError(error, "bad latency '" + value + "'");
      return false;
    }
  } else if (key == "ch") {
    if (!ChannelFromName(value, &w->channel)) {
      SetError(error, "bad channel '" + value + "' (want read|write|both)");
      return false;
    }
  } else if (key == "node") {
    char* end = nullptr;
    long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < 0 || n > 4096) {
      SetError(error, "bad node '" + value + "' (want a node id >= 0)");
      return false;
    }
    w->node = static_cast<int>(n);
  } else {
    SetError(error, "unknown key '" + key + "'");
    return false;
  }
  return true;
}

bool ValidateWindow(const FaultWindow& w, std::string* error) {
  if (w.until <= w.from) {
    SetError(error, "window must satisfy until > from");
    return false;
  }
  return true;
}

// --- minimal JSON reader for an array of flat objects ---
// Values are strings or numbers; that is all the plan schema needs.

struct JsonCursor {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Eat(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }
};

bool ReadJsonString(JsonCursor* c, std::string* out, std::string* error) {
  if (!c->Eat('"')) {
    SetError(error, "expected string");
    return false;
  }
  out->clear();
  while (c->p < c->end && *c->p != '"') {
    char ch = *c->p++;
    if (ch == '\\' && c->p < c->end) {
      char esc = *c->p++;
      switch (esc) {
        case 'n': ch = '\n'; break;
        case 't': ch = '\t'; break;
        default: ch = esc; break;
      }
    }
    out->push_back(ch);
  }
  if (c->p >= c->end) {
    SetError(error, "unterminated string");
    return false;
  }
  ++c->p;  // closing quote
  return true;
}

// Reads a string or number value; numbers are rendered back to text so the
// caller can reuse the spec-side field parsers.
bool ReadJsonScalar(JsonCursor* c, std::string* out, std::string* error) {
  c->SkipWs();
  if (c->Peek('"')) return ReadJsonString(c, out, error);
  const char* start = c->p;
  while (c->p < c->end &&
         (std::isalnum(static_cast<unsigned char>(*c->p)) || *c->p == '.' || *c->p == '-' ||
          *c->p == '+')) {
    ++c->p;
  }
  if (c->p == start) {
    SetError(error, "expected value");
    return false;
  }
  out->assign(start, static_cast<size_t>(c->p - start));
  return true;
}

bool ParseJsonWindow(JsonCursor* c, FaultWindow* w, std::string* error) {
  if (!c->Eat('{')) {
    SetError(error, "expected '{'");
    return false;
  }
  // Kind must be applied before its defaults, and defaults before overrides,
  // so collect key/value pairs first.
  std::vector<std::pair<std::string, std::string>> kvs;
  if (!c->Peek('}')) {
    do {
      std::string key, value;
      if (!ReadJsonString(c, &key, error)) return false;
      if (!c->Eat(':')) {
        SetError(error, "expected ':' after key '" + key + "'");
        return false;
      }
      if (!ReadJsonScalar(c, &value, error)) return false;
      kvs.emplace_back(std::move(key), std::move(value));
    } while (c->Eat(','));
  }
  if (!c->Eat('}')) {
    SetError(error, "expected '}'");
    return false;
  }

  bool have_kind = false;
  for (const auto& [key, value] : kvs) {
    if (key == "kind") {
      if (!KindFromName(value, &w->kind)) {
        SetError(error, "unknown fault kind '" + value + "'");
        return false;
      }
      have_kind = true;
    }
  }
  if (!have_kind) {
    SetError(error, "window missing \"kind\"");
    return false;
  }
  ApplyKindDefaults(w);
  for (const auto& [key, value] : kvs) {
    if (key == "kind") continue;
    if (key == "from" || key == "until") {
      SimTime t;
      if (!ParseTimeNs(value, &t)) {
        SetError(error, "bad time '" + value + "' for '" + key + "'");
        return false;
      }
      (key == "from" ? w->from : w->until) = t;
    } else if (!SetWindowKey(w, key, value, error)) {
      return false;
    }
  }
  return ValidateWindow(*w, error);
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kError: return "error";
    case FaultKind::kSpike: return "spike";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kIpiDelay: return "ipidelay";
    case FaultKind::kNumKinds: break;
  }
  return "unknown";
}

bool ParseTimeNs(const std::string& text, SimTime* out) {
  std::string s = Trim(text);
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return false;
  std::string unit = Trim(end);
  double scale = 1.0;
  if (unit == "" || unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    return false;
  }
  double ns = v * scale;
  if (ns < 0 || ns > 9.2e18) return false;
  *out = static_cast<SimTime>(ns + 0.5);
  return true;
}

std::string FormatTimeNs(SimTime ns) {
  char buf[48];
  if (ns != 0 && ns % kSecond == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(ns / kSecond));
  } else if (ns != 0 && ns % kMillisecond == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ns / kMillisecond));
  } else if (ns != 0 && ns % kMicrosecond == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(ns / kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

bool FaultPlan::Parse(const std::string& text, FaultPlan* out, std::string* error) {
  std::string t = Trim(text);
  if (!t.empty() && t[0] == '[') return ParseJson(t, out, error);
  return ParseSpec(t, out, error);
}

bool FaultPlan::ParseSpec(const std::string& text, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t semi = text.find(';', pos);
    std::string ev = Trim(text.substr(pos, semi == std::string::npos ? std::string::npos
                                                                     : semi - pos));
    pos = semi == std::string::npos ? text.size() + 1 : semi + 1;
    if (ev.empty()) continue;

    size_t at = ev.find('@');
    if (at == std::string::npos) {
      SetError(error, "event '" + ev + "' missing '@'");
      return false;
    }
    FaultWindow w;
    if (!KindFromName(Trim(ev.substr(0, at)), &w.kind)) {
      SetError(error, "unknown fault kind '" + Trim(ev.substr(0, at)) + "'");
      return false;
    }
    ApplyKindDefaults(&w);

    size_t colon = ev.find(':', at + 1);
    std::string range = ev.substr(at + 1, colon == std::string::npos ? std::string::npos
                                                                     : colon - at - 1);
    size_t dash = range.find('-');
    if (dash == std::string::npos) {
      SetError(error, "range '" + range + "' missing '-'");
      return false;
    }
    if (!ParseTimeNs(range.substr(0, dash), &w.from) ||
        !ParseTimeNs(range.substr(dash + 1), &w.until)) {
      SetError(error, "bad time range '" + range + "'");
      return false;
    }

    if (colon != std::string::npos) {
      size_t kpos = colon + 1;
      while (kpos <= ev.size()) {
        size_t comma = ev.find(',', kpos);
        std::string kv = Trim(ev.substr(kpos, comma == std::string::npos ? std::string::npos
                                                                         : comma - kpos));
        kpos = comma == std::string::npos ? ev.size() + 1 : comma + 1;
        if (kv.empty()) continue;
        size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          SetError(error, "key/value '" + kv + "' missing '='");
          return false;
        }
        if (!SetWindowKey(&w, Trim(kv.substr(0, eq)), Trim(kv.substr(eq + 1)), error)) {
          return false;
        }
      }
    }
    if (!ValidateWindow(w, error)) return false;
    plan.Add(w);
  }
  *out = std::move(plan);
  return true;
}

bool FaultPlan::ParseJson(const std::string& text, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  JsonCursor c{text.data(), text.data() + text.size()};
  if (!c.Eat('[')) {
    SetError(error, "expected '['");
    return false;
  }
  if (!c.Peek(']')) {
    do {
      FaultWindow w;
      if (!ParseJsonWindow(&c, &w, error)) return false;
      plan.Add(w);
    } while (c.Eat(','));
  }
  if (!c.Eat(']')) {
    SetError(error, "expected ']'");
    return false;
  }
  c.SkipWs();
  if (c.p != c.end) {
    SetError(error, "trailing characters after plan");
    return false;
  }
  *out = std::move(plan);
  return true;
}

std::string FaultPlan::ToSpec() const {
  std::string s;
  for (const FaultWindow& w : windows_) {
    if (!s.empty()) s += ";";
    s += FaultKindName(w.kind);
    s += "@";
    s += FormatTimeNs(w.from);
    s += "-";
    s += FormatTimeNs(w.until);
    // Emit exactly the fields that differ from the kind's parse-time defaults
    // so Parse(ToSpec(p)) == p for any representable window.
    FaultWindow d;
    d.kind = w.kind;
    ApplyKindDefaults(&d);
    std::vector<std::string> kvs;
    if (w.probability != d.probability) kvs.push_back("p=" + FormatDouble(w.probability));
    if (w.bandwidth_factor != d.bandwidth_factor) {
      kvs.push_back("bw=" + FormatDouble(w.bandwidth_factor));
    }
    if (w.extra_latency_ns != d.extra_latency_ns) {
      kvs.push_back("lat=" + FormatTimeNs(w.extra_latency_ns));
    }
    if (w.channel != d.channel) kvs.push_back(std::string("ch=") + ChannelName(w.channel));
    if (w.node != d.node) kvs.push_back("node=" + std::to_string(w.node));
    for (size_t i = 0; i < kvs.size(); ++i) {
      s += (i == 0 ? ":" : ",") + kvs[i];
    }
  }
  return s;
}

std::string FaultPlan::ToJson() const {
  std::string s = "[";
  for (size_t i = 0; i < windows_.size(); ++i) {
    const FaultWindow& w = windows_[i];
    if (i > 0) s += ",";
    s += "{\"kind\":\"";
    s += FaultKindName(w.kind);
    s += "\",\"from\":" + std::to_string(w.from);
    s += ",\"until\":" + std::to_string(w.until);
    s += ",\"p\":" + FormatDouble(w.probability);
    s += ",\"bw\":" + FormatDouble(w.bandwidth_factor);
    s += ",\"lat\":" + std::to_string(w.extra_latency_ns);
    s += ",\"ch\":\"";
    s += ChannelName(w.channel);
    s += "\"";
    if (w.node >= 0) s += ",\"node\":" + std::to_string(w.node);
    s += "}";
  }
  s += "]";
  return s;
}

void FaultPlan::Add(const FaultWindow& w) {
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), w,
      [](const FaultWindow& a, const FaultWindow& b) { return a.from < b.from; });
  windows_.insert(it, w);
}

SimTime FaultPlan::end_time() const {
  SimTime end = 0;
  for (const FaultWindow& w : windows_) end = std::max(end, w.until);
  return end;
}

int FaultPlan::max_target_node() const {
  int max_node = -1;
  for (const FaultWindow& w : windows_) max_node = std::max(max_node, w.node);
  return max_node;
}

}  // namespace magesim
