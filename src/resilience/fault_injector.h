// Executes a FaultPlan against the simulated hardware. Implements the hw
// layer's HwFaultModel hook: every posted RDMA op and dispatched IPI consults
// the injector, which combines all active windows (bandwidth factors multiply,
// latencies add, drop beats error) and draws probabilistic outcomes from its
// own xoshiro stream — same seed, same plan, byte-identical run.
#ifndef MAGESIM_RESILIENCE_FAULT_INJECTOR_H_
#define MAGESIM_RESILIENCE_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hw/fault_hooks.h"
#include "src/hw/memnode.h"
#include "src/resilience/fault_plan.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/task.h"

namespace magesim {

class FaultInjector : public HwFaultModel {
 public:
  FaultInjector(FaultPlan plan, uint64_t seed);

  // Windows with `node >= 0` only affect the NIC posting to that node;
  // node == -1 windows affect every node's link.
  RdmaOpFate OnRdmaPost(bool is_write, SimTime now, int node) override;
  SimTime ExtraIpiDelayNs(SimTime now) override;

  // Spawns the episode driver: emits a kFaultWindow marker as each window
  // opens and flips memory node availability across crash windows (the nodes
  // themselves trace kMemnodeCrash / kMemnodeRecover on the transition). A
  // node-targeted crash flips `nodes[window.node]`; an untargeted crash flips
  // node 0, matching the classic single-node machine. Call once, before
  // Engine::Run.
  void Start(Engine& eng, MemoryNode* memnode);
  void Start(Engine& eng, std::vector<MemoryNode*> nodes);

  // Invoked after every availability flip the episode driver performs, with
  // the node id and its new state — the fleet manager's crash/recover hook.
  void SetAvailabilityListener(std::function<void(int node, bool up)> fn) {
    availability_listener_ = std::move(fn);
  }

  const FaultPlan& plan() const { return plan_; }

  uint64_t drops_injected() const { return drops_; }
  uint64_t errors_injected() const { return errors_; }
  uint64_t spikes_injected() const { return spikes_; }
  uint64_t windows_opened() const { return windows_opened_; }

 private:
  Task<> EpisodeMain();

  // Windows sorted by start; post/IPI times are non-decreasing, so expired
  // prefix windows are skipped once (O(active windows) per consult).
  FaultPlan plan_;
  size_t cursor_ = 0;
  Rng rng_;
  std::vector<MemoryNode*> nodes_;
  std::function<void(int, bool)> availability_listener_;

  uint64_t drops_ = 0;
  uint64_t errors_ = 0;
  uint64_t spikes_ = 0;
  uint64_t windows_opened_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_RESILIENCE_FAULT_INJECTOR_H_
