#include "src/resilience/rebuild.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace magesim {

RebuildDriver::RebuildDriver(FleetManager& fleet, const RebuildOptions& opt)
    : fleet_(fleet), opt_(opt) {
  if (opt_.rebuild_gbps > 0.0) {
    pace_gap_ns_ = static_cast<SimTime>(kPageSize * 8.0 / opt_.rebuild_gbps);
  }
}

void RebuildDriver::Start(Engine& eng) { eng.Spawn(Main()); }

Task<bool> RebuildDriver::AwaitOp(std::shared_ptr<RdmaCompletion> c) {
  // Background repair has no retry machinery of its own: sleep until the op
  // is overdue, then judge it. A dropped completion (crash/drop window)
  // simply never arrives.
  Engine& eng = Engine::current();
  SimTime deadline = std::max(eng.now(), c->completes_at()) + opt_.op_grace_ns;
  if (deadline > eng.now()) co_await Delay{deadline - eng.now()};
  co_return c->done() && c->ok();
}

// magesim-lint: allow(coroutine-ref-capture): burst_pages points into the
// driver's RunRebuild frame, which co_awaits every RepairOne before exiting.
Task<> RebuildDriver::RepairOne(uint64_t slot, SpanHandle span,
                                uint64_t* burst_pages) {
  for (int attempt = 0; attempt < opt_.max_attempts; ++attempt) {
    // Re-resolve each attempt: a crash mid-repair moves source and target.
    int target = fleet_.RebuildTargetFor(slot);
    int source = fleet_.SourceFor(slot);
    if (target < 0 || source < 0) co_return;  // fully placed, or data gone
    SimTime t0 = Engine::current().now();
    bool ok = co_await AwaitOp(fleet_.nic(source).PostRead(kPageSize));
    if (ok) ok = co_await AwaitOp(fleet_.nic(target).PostWrite(kPageSize));
    SpanLeafUnder(span, SpanKind::kRebuild, t0, Engine::current().now(), target,
                  slot, {}, static_cast<uint64_t>(attempt) + 1);
    if (ok) {
      fleet_.AddCopy(slot, target);
      ++pages_rebuilt_;
      *burst_pages += 1;
      TraceEmit(TraceEventType::kFleetRebuildPage, target, slot);
      // Still short of its desired set (k > 2 with several holders down)?
      if (fleet_.RebuildTargetFor(slot) >= 0) fleet_.EnqueueRepair(slot);
      co_return;
    }
    ++repair_failures_;
  }
  // A dirty window outlasted the attempt budget: give the link a breather
  // and put the slot back for a later burst.
  co_await Delay{opt_.requeue_backoff_ns};
  fleet_.EnqueueRepair(slot);
}

Task<> RebuildDriver::Main() {
  for (;;) {
    while (fleet_.rebuild_pending() == 0) {
      fleet_.repair_ready().Reset();
      co_await fleet_.repair_ready().Wait();
    }
    ++bursts_;
    TraceEmit(TraceEventType::kFleetRebuildStart, -1, kTraceNoPage, kTraceNoFrame,
              static_cast<uint64_t>(fleet_.rebuild_pending()));
    SpanHandle span;
    if (SpanTracer* st = SpanTracer::Get()) {
      span = st->BeginDetached(SpanKind::kRebuild, -1, kTraceNoPage);
    }
    uint64_t burst_pages = 0;
    uint64_t slot = 0;
    while (fleet_.PopRepair(&slot)) {
      co_await RepairOne(slot, span, &burst_pages);
      if (pace_gap_ns_ > 0) co_await Delay{pace_gap_ns_};
    }
    SpanEndDetached(span, burst_pages);
    TraceEmit(TraceEventType::kFleetRebuildDone, -1, kTraceNoPage, kTraceNoFrame,
              burst_pages);
  }
}

}  // namespace magesim
