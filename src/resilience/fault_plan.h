// Declarative fault schedules. A FaultPlan is an ordered list of failure
// windows targeting the simulated hardware; the FaultInjector executes it.
//
// Two interchangeable surface syntaxes parse into the same plan:
//
//   Compact spec (one line, CLI-friendly):
//     brownout@2ms-6ms:bw=0.2,lat=20us;drop@3ms-4ms:p=0.05,ch=read
//
//     plan   := event (';' event)*
//     event  := kind '@' time '-' time [':' key '=' value (',' key=value)*]
//     kind   := brownout | degrade | drop | error | spike | crash | ipidelay
//     key    := p (probability) | bw (bandwidth factor) | lat (extra latency)
//               | ch (read|write|both) | node (memory-server id; default all)
//     time   := decimal with optional ns/us/ms/s suffix (default ns)
//
//   JSON (auto-detected by a leading '['):
//     [{"kind":"brownout","from":"2ms","until":"6ms","bw":0.2,"lat":"20us"}]
//
// Window semantics (active over [from, until)):
//   brownout  RDMA link at bw x rate, +lat per op, both channels
//   degrade   brownout + each op errors with probability p (sick memory node)
//   drop      op's completion is lost with probability p (per `ch`)
//   error     op's completion arrives flagged failed with probability p
//   spike     +lat per op with probability p
//   crash     memory node dark: every RDMA completion lost, node unavailable
//   ipidelay  +lat interconnect delay per IPI delivery
//
// Any window may carry `node=<id>` to target one memory server of a fleet
// (crash kills just that node; drop/error/brownout affect only its link).
// Without it a window applies to every node. The machine rejects plans naming
// nodes outside the configured fleet at construction time.
#ifndef MAGESIM_RESILIENCE_FAULT_PLAN_H_
#define MAGESIM_RESILIENCE_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace magesim {

enum class FaultKind : uint8_t {
  kBrownout,
  kDegrade,
  kDrop,
  kError,
  kSpike,
  kCrash,
  kIpiDelay,
  kNumKinds,
};

const char* FaultKindName(FaultKind k);

enum class FaultChannel : uint8_t { kRead = 1, kWrite = 2, kBoth = 3 };

struct FaultWindow {
  FaultKind kind = FaultKind::kBrownout;
  SimTime from = 0;
  SimTime until = 0;
  double probability = 1.0;       // drop / error / spike / degrade draws
  double bandwidth_factor = 1.0;  // brownout / degrade
  SimTime extra_latency_ns = 0;   // brownout / degrade / spike / ipidelay
  FaultChannel channel = FaultChannel::kBoth;  // drop / error
  int node = -1;                  // target memory node; -1 = every node

  bool operator==(const FaultWindow&) const = default;
};

class FaultPlan {
 public:
  // Auto-detects the syntax (leading '[' selects JSON). On failure returns
  // false and, if non-null, fills `error` with a human-readable reason.
  static bool Parse(const std::string& text, FaultPlan* out, std::string* error);
  static bool ParseSpec(const std::string& text, FaultPlan* out, std::string* error);
  static bool ParseJson(const std::string& text, FaultPlan* out, std::string* error);

  // Round-trippable renderings: Parse(ToSpec()) and Parse(ToJson()) rebuild
  // an equal plan.
  std::string ToSpec() const;
  std::string ToJson() const;

  // Inserts keeping windows sorted by start time (stable for equal starts).
  void Add(const FaultWindow& w);

  const std::vector<FaultWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }
  SimTime end_time() const;
  // Largest node id any window targets (-1 when no window is node-targeted).
  // The machine validates this against the configured fleet size.
  int max_target_node() const;

  bool operator==(const FaultPlan&) const = default;

 private:
  std::vector<FaultWindow> windows_;
};

// "12us" / "3ms" / "250" (ns) -> nanoseconds. Returns false on malformed
// input or a negative result.
bool ParseTimeNs(const std::string& text, SimTime* out);
// Renders with the largest unit that divides evenly: 3000000 -> "3ms".
std::string FormatTimeNs(SimTime ns);

}  // namespace magesim

#endif  // MAGESIM_RESILIENCE_FAULT_PLAN_H_
