// Online re-replication for a memory-server fleet. A single background
// coroutine drains the FleetManager's repair queue: each under-replicated
// slot is read from a surviving holder and written to the first live desired
// server missing a copy, paced to a configurable rebuild bandwidth so repair
// traffic doesn't starve the foreground fault path. Transient op failures
// (drop/error windows) back off and re-queue the slot; a slot whose data is
// gone is skipped — the fleet already surfaced it as lost. Each burst (first
// repair after idle until the queue drains) is a detached kRebuild root span,
// so rebuild time shows up in the critical-path tail attribution.
#ifndef MAGESIM_RESILIENCE_REBUILD_H_
#define MAGESIM_RESILIENCE_REBUILD_H_

#include <cstdint>
#include <memory>

#include "src/fleet/fleet.h"
#include "src/hw/rdma.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/spans/spans.h"

namespace magesim {

struct RebuildOptions {
  // Sustained re-replication rate; the driver spaces page repairs
  // page_bits / rebuild_gbps apart. <= 0 disables pacing (repair at link
  // speed).
  double rebuild_gbps = 10.0;
  // An op is declared failed once it is overdue by this grace (the same
  // notion the resilient data path uses).
  SimTime op_grace_ns = 30 * kMicrosecond;
  // Attempts per slot per burst before the slot is re-queued for a later
  // burst (with a backoff, so a dirty window doesn't spin the queue).
  int max_attempts = 4;
  SimTime requeue_backoff_ns = 100 * kMicrosecond;
};

class RebuildDriver {
 public:
  RebuildDriver(FleetManager& fleet, const RebuildOptions& opt);

  // Spawns the repair coroutine; call once, before Engine::Run.
  void Start(Engine& eng);

  uint64_t pages_rebuilt() const { return pages_rebuilt_; }
  uint64_t bursts() const { return bursts_; }
  uint64_t repair_failures() const { return repair_failures_; }
  size_t pending() const { return fleet_.rebuild_pending(); }

 private:
  Task<> Main();
  // One repair attempt chain for `slot`; bumps *burst_pages on success.
  Task<> RepairOne(uint64_t slot, SpanHandle span, uint64_t* burst_pages);
  Task<bool> AwaitOp(std::shared_ptr<RdmaCompletion> c);

  FleetManager& fleet_;
  RebuildOptions opt_;
  SimTime pace_gap_ns_ = 0;

  uint64_t pages_rebuilt_ = 0;
  uint64_t bursts_ = 0;
  uint64_t repair_failures_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_RESILIENCE_REBUILD_H_
