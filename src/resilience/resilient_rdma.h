// The resilient far-memory data path: per-op deadlines, bounded retries with
// exponential backoff, a circuit breaker per RDMA channel, and graceful
// degradation hooks for the paging kernel (eviction backpressure, prefetch
// throttling, poison-or-fail terminal policy). The kernel routes its remote
// reads/writebacks through a ResilienceManager when one is attached; with
// none attached the legacy direct-NIC path is byte-identical.
#ifndef MAGESIM_RESILIENCE_RESILIENT_RDMA_H_
#define MAGESIM_RESILIENCE_RESILIENT_RDMA_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/hw/rdma.h"
#include "src/resilience/retry.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/spans/spans.h"

namespace magesim {

// What to do when a demand read exhausts its retries.
enum class TerminalPolicy : uint8_t {
  kPoisonPage,  // mark the page poisoned, count it, keep running
  kFailRun,     // record the failure and request engine shutdown
};

struct ResilienceOptions {
  RetryPolicy retry;
  BreakerPolicy breaker;
  TerminalPolicy terminal = TerminalPolicy::kPoisonPage;
  // Upper bound on one eviction-backpressure pause.
  SimTime backpressure_max_ns = 400 * kMicrosecond;
  // 0 = derive from the machine seed.
  uint64_t seed = 0;
};

enum class RemoteOpStatus : uint8_t {
  kOk,         // data arrived
  kPoisoned,   // retries exhausted; page poisoned, fault completes anyway
  kAbandoned,  // retries exhausted on a speculative op; caller must unwind
};

// Completion handle for a writeback batch running in the background (the
// pipelined evictor overlaps it with the next batch's shootdown).
struct WritebackTicket {
  SimEvent done;
  size_t pages = 0;
  size_t lost = 0;  // valid once `done` fires
};

// Sentinel for ReadPage's slot argument: no fleet routing (single-node path).
inline constexpr uint64_t kNoFleetSlot = ~0ULL;

class ResilienceManager {
 public:
  ResilienceManager(RdmaNic& nic, const ResilienceOptions& opt);

  // Routes the data path through a memory-server fleet: reads resolve their
  // swap slot to the nearest live replica (failing over, degraded, to any
  // survivor), writebacks fan out to every live desired replica, and the
  // circuit-breaker state becomes per-server (channel ids 2n / 2n+1). With
  // no fleet attached every path below is byte-identical to before.
  void SetFleet(FleetManager* fleet);
  FleetManager* fleet() const { return fleet_; }

  // One remote page read on the fault path. Retries under the read breaker;
  // on exhaustion applies the terminal policy (`allow_poison` = demand fault)
  // or reports kAbandoned (speculative prefetch: caller unwinds the frame).
  // `op` is the requesting operation's span; the per-attempt rdma/retry/
  // backoff/breaker leaves attach to it. With a fleet attached, `slot`
  // (the page's swap slot) selects the serving replica; kNoFleetSlot keeps
  // the legacy single-NIC path.
  Task<RemoteOpStatus> ReadPage(int core, uint64_t vpn, bool allow_poison,
                                SpanHandle op = {}, uint64_t slot = kNoFleetSlot);

  // `n` dirty-page writebacks posted back-to-back (keeping the channel as
  // full as the legacy path), then awaited in FIFO order with per-op
  // deadlines; failed ops are retried individually. Returns pages lost for
  // good — their frames are still freed, so eviction never deadlocks.
  // `op` is the owning batch's span.
  Task<size_t> WritePages(int evictor_id, size_t n, SpanHandle op = {});

  // Fleet writeback: every slot is written to each live desired replica
  // (posted back-to-back, awaited FIFO, failures retried per-replica) and
  // the acknowledged replica set committed to the fleet table. Returns the
  // number of slots that ended with zero live copies (each surfaced as
  // lost by the fleet — never silent).
  Task<size_t> WriteSlots(int evictor_id, std::vector<uint64_t> slots,
                          SpanHandle op = {});

  // Background variant for the pipelined evictor. `batch_span` (may be
  // null) is passed through to WritePages in the spawned task, so the
  // per-op rdma/retry/backoff leaves land under the owning eviction batch.
  std::shared_ptr<WritebackTicket> SpawnWritePages(int evictor_id, size_t n,
                                                   SpanHandle batch_span = {});
  std::shared_ptr<WritebackTicket> SpawnWriteSlots(int evictor_id,
                                                   std::vector<uint64_t> slots,
                                                   SpanHandle batch_span = {});

  bool read_degraded() const;
  bool write_degraded() const;

  // Bounded pause for an evictor while the write channel is degraded: wait
  // out (most of) the breaker cool-down once, then proceed — the next
  // writeback acts as the half-open probe.
  Task<> EvictionBackpressure(int evictor_id);

  // Bookkeeping for a prefetch the kernel suppressed because the read
  // channel is degraded.
  void NotePrefetchThrottle(int core, uint64_t vpn);

  bool run_failed() const { return run_failed_; }
  const std::string& failure_reason() const { return failure_reason_; }

  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t reads_failed() const { return reads_failed_; }
  uint64_t pages_poisoned() const { return pages_poisoned_; }
  uint64_t writebacks_lost() const { return writebacks_lost_; }
  uint64_t backpressure_waits() const { return backpressure_waits_; }
  uint64_t prefetch_throttles() const { return prefetch_throttles_; }
  const Histogram& backoff_ns() const { return backoff_ns_; }
  const Histogram& attempts_per_op() const { return attempts_per_op_; }
  const CircuitBreaker& read_breaker() const { return read_breaker_; }
  const CircuitBreaker& write_breaker() const { return write_breaker_; }
  // Breaker opens across every channel (legacy pair + per-server pairs).
  uint64_t breaker_opens_total() const;
  const CircuitBreaker& node_read_breaker(int node) const {
    return node_read_breakers_[static_cast<size_t>(node)];
  }
  const CircuitBreaker& node_write_breaker(int node) const {
    return node_write_breakers_[static_cast<size_t>(node)];
  }

 private:
  enum class OpOutcome : uint8_t { kOk, kError, kTimeout };

  struct OpWait {
    SimEvent ev;
  };

  // Waits for `c` until it is overdue by the policy grace. Uses the
  // completion's scheduled time, so queueing delay alone never trips it; a
  // lost completion always does.
  Task<OpOutcome> AwaitWithDeadline(std::shared_ptr<RdmaCompletion> c, int actor,
                                    uint64_t vpn);
  static Task<> CompletionWatcher(std::shared_ptr<RdmaCompletion> c,
                                  std::shared_ptr<OpWait> w);
  static Task<> DeadlineWatcher(SimTime delay, std::shared_ptr<OpWait> w);

  // Full retry loop for one op posted on `nic` under breaker `br`; true on
  // success. `budget` = extra attempts allowed after the first. Leaves
  // attach to `op`; `span_channel` labels breaker causality (0 read, 1
  // write — per-server breakers aggregate onto the channel pair).
  Task<bool> OneOpOn(RdmaNic& nic, CircuitBreaker& br, int span_channel,
                     bool is_write, int actor, uint64_t vpn, int budget,
                     SpanHandle op);
  Task<bool> OneOp(bool is_write, int actor, uint64_t vpn, int budget, SpanHandle op);
  Task<RemoteOpStatus> FleetReadPage(int core, uint64_t vpn, uint64_t slot,
                                     bool allow_poison, SpanHandle op);
  Task<> TicketMain(int evictor_id, size_t n, std::shared_ptr<WritebackTicket> t,
                    SpanHandle batch_span);
  Task<> TicketMainSlots(int evictor_id, std::vector<uint64_t> slots,
                         std::shared_ptr<WritebackTicket> t, SpanHandle batch_span);
  void FailRun(const char* why);
  CircuitBreaker& NodeBreaker(int node, bool is_write) {
    auto& v = is_write ? node_write_breakers_ : node_read_breakers_;
    return v[static_cast<size_t>(node)];
  }

  RdmaNic& nic_;
  ResilienceOptions opt_;
  Rng rng_;
  CircuitBreaker read_breaker_;
  CircuitBreaker write_breaker_;
  FleetManager* fleet_ = nullptr;
  // Per-server breaker pairs (fleet mode only; deque — breakers don't move).
  std::deque<CircuitBreaker> node_read_breakers_;
  std::deque<CircuitBreaker> node_write_breakers_;

  bool run_failed_ = false;
  std::string failure_reason_;

  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t reads_failed_ = 0;
  uint64_t pages_poisoned_ = 0;
  uint64_t writebacks_lost_ = 0;
  uint64_t backpressure_waits_ = 0;
  uint64_t prefetch_throttles_ = 0;
  Histogram backoff_ns_;
  Histogram attempts_per_op_;
};

}  // namespace magesim

#endif  // MAGESIM_RESILIENCE_RESILIENT_RDMA_H_
