// The resilient far-memory data path: per-op deadlines, bounded retries with
// exponential backoff, a circuit breaker per RDMA channel, and graceful
// degradation hooks for the paging kernel (eviction backpressure, prefetch
// throttling, poison-or-fail terminal policy). The kernel routes its remote
// reads/writebacks through a ResilienceManager when one is attached; with
// none attached the legacy direct-NIC path is byte-identical.
#ifndef MAGESIM_RESILIENCE_RESILIENT_RDMA_H_
#define MAGESIM_RESILIENCE_RESILIENT_RDMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/rdma.h"
#include "src/resilience/retry.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/spans/spans.h"

namespace magesim {

// What to do when a demand read exhausts its retries.
enum class TerminalPolicy : uint8_t {
  kPoisonPage,  // mark the page poisoned, count it, keep running
  kFailRun,     // record the failure and request engine shutdown
};

struct ResilienceOptions {
  RetryPolicy retry;
  BreakerPolicy breaker;
  TerminalPolicy terminal = TerminalPolicy::kPoisonPage;
  // Upper bound on one eviction-backpressure pause.
  SimTime backpressure_max_ns = 400 * kMicrosecond;
  // 0 = derive from the machine seed.
  uint64_t seed = 0;
};

enum class RemoteOpStatus : uint8_t {
  kOk,         // data arrived
  kPoisoned,   // retries exhausted; page poisoned, fault completes anyway
  kAbandoned,  // retries exhausted on a speculative op; caller must unwind
};

// Completion handle for a writeback batch running in the background (the
// pipelined evictor overlaps it with the next batch's shootdown).
struct WritebackTicket {
  SimEvent done;
  size_t pages = 0;
  size_t lost = 0;  // valid once `done` fires
};

class ResilienceManager {
 public:
  ResilienceManager(RdmaNic& nic, const ResilienceOptions& opt);

  // One remote page read on the fault path. Retries under the read breaker;
  // on exhaustion applies the terminal policy (`allow_poison` = demand fault)
  // or reports kAbandoned (speculative prefetch: caller unwinds the frame).
  // `op` is the requesting operation's span; the per-attempt rdma/retry/
  // backoff/breaker leaves attach to it.
  Task<RemoteOpStatus> ReadPage(int core, uint64_t vpn, bool allow_poison,
                                SpanHandle op = {});

  // `n` dirty-page writebacks posted back-to-back (keeping the channel as
  // full as the legacy path), then awaited in FIFO order with per-op
  // deadlines; failed ops are retried individually. Returns pages lost for
  // good — their frames are still freed, so eviction never deadlocks.
  // `op` is the owning batch's span.
  Task<size_t> WritePages(int evictor_id, size_t n, SpanHandle op = {});

  // Background variant for the pipelined evictor. `batch_span` (may be
  // null) is passed through to WritePages in the spawned task, so the
  // per-op rdma/retry/backoff leaves land under the owning eviction batch.
  std::shared_ptr<WritebackTicket> SpawnWritePages(int evictor_id, size_t n,
                                                   SpanHandle batch_span = {});

  bool read_degraded() const { return read_breaker_.degraded(); }
  bool write_degraded() const { return write_breaker_.degraded(); }

  // Bounded pause for an evictor while the write channel is degraded: wait
  // out (most of) the breaker cool-down once, then proceed — the next
  // writeback acts as the half-open probe.
  Task<> EvictionBackpressure(int evictor_id);

  // Bookkeeping for a prefetch the kernel suppressed because the read
  // channel is degraded.
  void NotePrefetchThrottle(int core, uint64_t vpn);

  bool run_failed() const { return run_failed_; }
  const std::string& failure_reason() const { return failure_reason_; }

  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t reads_failed() const { return reads_failed_; }
  uint64_t pages_poisoned() const { return pages_poisoned_; }
  uint64_t writebacks_lost() const { return writebacks_lost_; }
  uint64_t backpressure_waits() const { return backpressure_waits_; }
  uint64_t prefetch_throttles() const { return prefetch_throttles_; }
  const Histogram& backoff_ns() const { return backoff_ns_; }
  const Histogram& attempts_per_op() const { return attempts_per_op_; }
  const CircuitBreaker& read_breaker() const { return read_breaker_; }
  const CircuitBreaker& write_breaker() const { return write_breaker_; }

 private:
  enum class OpOutcome : uint8_t { kOk, kError, kTimeout };

  struct OpWait {
    SimEvent ev;
  };

  // Waits for `c` until it is overdue by the policy grace. Uses the
  // completion's scheduled time, so queueing delay alone never trips it; a
  // lost completion always does.
  Task<OpOutcome> AwaitWithDeadline(std::shared_ptr<RdmaCompletion> c, int actor,
                                    uint64_t vpn);
  static Task<> CompletionWatcher(std::shared_ptr<RdmaCompletion> c,
                                  std::shared_ptr<OpWait> w);
  static Task<> DeadlineWatcher(SimTime delay, std::shared_ptr<OpWait> w);

  // Full retry loop for one op; true on success. `budget` = extra attempts
  // allowed after the first. Leaves attach to `op`.
  Task<bool> OneOp(bool is_write, int actor, uint64_t vpn, int budget, SpanHandle op);
  Task<> TicketMain(int evictor_id, size_t n, std::shared_ptr<WritebackTicket> t,
                    SpanHandle batch_span);
  void FailRun(const char* why);

  RdmaNic& nic_;
  ResilienceOptions opt_;
  Rng rng_;
  CircuitBreaker read_breaker_;
  CircuitBreaker write_breaker_;

  bool run_failed_ = false;
  std::string failure_reason_;

  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t reads_failed_ = 0;
  uint64_t pages_poisoned_ = 0;
  uint64_t writebacks_lost_ = 0;
  uint64_t backpressure_waits_ = 0;
  uint64_t prefetch_throttles_ = 0;
  Histogram backoff_ns_;
  Histogram attempts_per_op_;
};

}  // namespace magesim

#endif  // MAGESIM_RESILIENCE_RESILIENT_RDMA_H_
