// Retry building blocks for the resilient far-memory data path: exponential
// backoff with deterministic jitter, and a circuit breaker guarding each RDMA
// channel. Both draw all randomness from a caller-owned Rng, so same-seed
// runs replay the exact same decisions.
#ifndef MAGESIM_RESILIENCE_RETRY_H_
#define MAGESIM_RESILIENCE_RETRY_H_

#include <cstdint>

#include "src/sim/random.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace magesim {

struct RetryPolicy {
  // An op is declared timed out once it is overdue (past its expected
  // completion, or past post time for a lost completion) by this grace.
  SimTime op_grace_ns = 30 * kMicrosecond;
  // Additional attempts after the first; a page read therefore issues at
  // most 1 + max_retries ops before the terminal policy applies.
  int max_retries = 8;
  SimTime backoff_base_ns = 4 * kMicrosecond;
  double backoff_mult = 2.0;
  SimTime backoff_cap_ns = 512 * kMicrosecond;
  // Each delay is scaled by a uniform factor in [1, 1 + jitter), de-syncing
  // concurrent retriers; the cap applies before jitter.
  double jitter = 0.25;
};

// Yields base, base*mult, base*mult^2, ... capped, each jittered.
class BackoffSequence {
 public:
  explicit BackoffSequence(const RetryPolicy& p)
      : policy_(p), next_(static_cast<double>(p.backoff_base_ns)) {}

  SimTime Next(Rng& rng) {
    double d = next_;
    next_ = d * policy_.backoff_mult;
    double cap = static_cast<double>(policy_.backoff_cap_ns);
    if (next_ > cap) next_ = cap;
    if (policy_.jitter > 0.0) d *= 1.0 + policy_.jitter * rng.NextDouble();
    SimTime v = static_cast<SimTime>(d);
    return v < 1 ? 1 : v;
  }

  void Reset() { next_ = static_cast<double>(policy_.backoff_base_ns); }

 private:
  RetryPolicy policy_;
  double next_;
};

struct BreakerPolicy {
  int failure_threshold = 8;               // consecutive failures to trip
  SimTime open_duration_ns = 200 * kMicrosecond;  // cool-down before a probe
};

// Per-channel circuit breaker: Closed -> (threshold consecutive failures) ->
// Open -> (cool-down elapses) -> HalfOpen, where exactly one caller proceeds
// as the probe; its success closes the breaker, its failure re-opens it.
// State transitions are traced (kBreakerOpen/HalfOpen/Close).
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  // `channel_id` labels trace events: 0 = read channel, 1 = write channel.
  CircuitBreaker(const BreakerPolicy& policy, int channel_id)
      : policy_(policy), channel_id_(channel_id) {}

  // Waits until the caller may issue an op. Always admits eventually: while
  // open, callers park until the cool-down elapses, then one per cycle goes
  // through as the probe and the rest await its verdict.
  Task<> Admit();

  void OnSuccess();
  void OnFailure();

  State state() const { return state_; }
  bool degraded() const { return state_ != State::kClosed; }
  SimTime open_until() const { return open_until_; }
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t opens() const { return opens_; }
  SimTime time_degraded_ns(SimTime now) const {
    return degraded_accum_ + (degraded() ? now - degraded_since_ : 0);
  }

 private:
  void Open(SimTime now);
  void Close(SimTime now);

  BreakerPolicy policy_;
  int channel_id_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  SimTime open_until_ = 0;
  bool probe_in_flight_ = false;
  SimEvent state_change_;  // pulsed (never latched) on every transition

  uint64_t opens_ = 0;
  SimTime degraded_since_ = 0;
  SimTime degraded_accum_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_RESILIENCE_RETRY_H_
