#include "src/resilience/fault_injector.h"

#include <algorithm>
#include <vector>

#include "src/trace/trace.h"

namespace magesim {

namespace {

bool ChannelMatches(FaultChannel c, bool is_write) {
  uint8_t bit = is_write ? static_cast<uint8_t>(FaultChannel::kWrite)
                         : static_cast<uint8_t>(FaultChannel::kRead);
  return (static_cast<uint8_t>(c) & bit) != 0;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), rng_(seed ^ 0xfa17'1e57'0d15'ea5eULL) {}

RdmaOpFate FaultInjector::OnRdmaPost(bool is_write, SimTime now, int node) {
  RdmaOpFate fate;
  const auto& ws = plan_.windows();
  while (cursor_ < ws.size() && ws[cursor_].until <= now) ++cursor_;
  for (size_t i = cursor_; i < ws.size() && ws[i].from <= now; ++i) {
    const FaultWindow& w = ws[i];
    if (now >= w.until) continue;  // short window nested inside a longer one
    if (w.node >= 0 && w.node != node) continue;  // targets another server
    switch (w.kind) {
      case FaultKind::kBrownout:
        fate.bandwidth_factor *= w.bandwidth_factor;
        fate.extra_latency_ns += w.extra_latency_ns;
        break;
      case FaultKind::kDegrade:
        fate.bandwidth_factor *= w.bandwidth_factor;
        fate.extra_latency_ns += w.extra_latency_ns;
        if (w.probability > 0.0 && rng_.NextBool(w.probability) && !fate.error) {
          fate.error = true;
          ++errors_;
        }
        break;
      case FaultKind::kDrop:
        if (ChannelMatches(w.channel, is_write) && rng_.NextBool(w.probability) &&
            !fate.drop) {
          fate.drop = true;
          ++drops_;
        }
        break;
      case FaultKind::kError:
        if (ChannelMatches(w.channel, is_write) && rng_.NextBool(w.probability) &&
            !fate.error) {
          fate.error = true;
          ++errors_;
        }
        break;
      case FaultKind::kSpike:
        if (rng_.NextBool(w.probability)) {
          fate.extra_latency_ns += w.extra_latency_ns;
          ++spikes_;
        }
        break;
      case FaultKind::kCrash:
        if (!fate.drop) {
          fate.drop = true;
          ++drops_;
        }
        break;
      case FaultKind::kIpiDelay:
      case FaultKind::kNumKinds:
        break;
    }
  }
  return fate;
}

SimTime FaultInjector::ExtraIpiDelayNs(SimTime now) {
  SimTime extra = 0;
  const auto& ws = plan_.windows();
  while (cursor_ < ws.size() && ws[cursor_].until <= now) ++cursor_;
  for (size_t i = cursor_; i < ws.size() && ws[i].from <= now; ++i) {
    const FaultWindow& w = ws[i];
    if (now >= w.until) continue;
    if (w.kind == FaultKind::kIpiDelay) extra += w.extra_latency_ns;
  }
  return extra;
}

void FaultInjector::Start(Engine& eng, MemoryNode* memnode) {
  Start(eng, std::vector<MemoryNode*>{memnode});
}

void FaultInjector::Start(Engine& eng, std::vector<MemoryNode*> nodes) {
  if (plan_.empty()) return;
  nodes_ = std::move(nodes);
  eng.Spawn(EpisodeMain());
}

Task<> FaultInjector::EpisodeMain() {
  // Window opens and crash-window closes, processed in global time order.
  struct Marker {
    SimTime t;
    int type;  // 0 = window opens, 1 = crash window closes
    size_t idx;
  };
  std::vector<Marker> marks;
  const auto& ws = plan_.windows();
  for (size_t i = 0; i < ws.size(); ++i) {
    marks.push_back({ws[i].from, 0, i});
    if (ws[i].kind == FaultKind::kCrash) marks.push_back({ws[i].until, 1, i});
  }
  std::sort(marks.begin(), marks.end(), [](const Marker& a, const Marker& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.type != b.type) return a.type < b.type;
    return a.idx < b.idx;
  });

  // Overlapping crash windows on the same node stack: the node comes back
  // only when its last crash window closes. An untargeted crash flips node 0.
  std::vector<int> active_crashes(nodes_.size(), 0);
  for (const Marker& m : marks) {
    Engine& eng = Engine::current();
    if (m.t > eng.now()) co_await Delay{m.t - eng.now()};
    const FaultWindow& w = ws[m.idx];
    if (w.kind == FaultKind::kCrash) {
      size_t target = w.node >= 0 ? static_cast<size_t>(w.node) : 0;
      if (target >= nodes_.size() || nodes_[target] == nullptr) {
        if (m.type == 0) {
          ++windows_opened_;
          TraceEmit(TraceEventType::kFaultWindow, -1, kTraceNoPage,
                    kTraceNoFrame, static_cast<uint64_t>(w.kind));
        }
        continue;
      }
      if (m.type == 0) {
        ++windows_opened_;
        TraceEmit(TraceEventType::kFaultWindow, -1, kTraceNoPage, kTraceNoFrame,
                  static_cast<uint64_t>(w.kind));
        if (active_crashes[target]++ == 0) {
          nodes_[target]->SetAvailable(false);
          if (availability_listener_) {
            availability_listener_(static_cast<int>(target), false);
          }
        }
      } else if (--active_crashes[target] == 0) {
        nodes_[target]->SetAvailable(true);
        if (availability_listener_) {
          availability_listener_(static_cast<int>(target), true);
        }
      }
    } else {
      ++windows_opened_;
      TraceEmit(TraceEventType::kFaultWindow, -1, kTraceNoPage, kTraceNoFrame,
                static_cast<uint64_t>(w.kind));
    }
  }
}

}  // namespace magesim
