#include "src/resilience/resilient_rdma.h"

#include <algorithm>

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

ResilienceManager::ResilienceManager(RdmaNic& nic, const ResilienceOptions& opt)
    : nic_(nic),
      opt_(opt),
      rng_(opt.seed ^ 0x5e111e7ce2e511e7ULL),
      read_breaker_(opt.breaker, /*channel_id=*/0),
      write_breaker_(opt.breaker, /*channel_id=*/1) {}

Task<> ResilienceManager::CompletionWatcher(std::shared_ptr<RdmaCompletion> c,
                                            std::shared_ptr<OpWait> w) {
  // If the completion was dropped this watcher parks forever — the same
  // intentional leak policy as any coroutine parked at shutdown.
  co_await c->Wait();
  w->ev.Set();
}

Task<> ResilienceManager::DeadlineWatcher(SimTime delay, std::shared_ptr<OpWait> w) {
  co_await Delay{delay};
  w->ev.Set();
}

Task<ResilienceManager::OpOutcome> ResilienceManager::AwaitWithDeadline(
    std::shared_ptr<RdmaCompletion> c, int actor, uint64_t vpn) {
  Engine& eng = Engine::current();
  SimTime now = eng.now();
  SimTime deadline = std::max(now, c->completes_at()) + opt_.retry.op_grace_ns;
  if (!c->done()) {
    auto w = std::make_shared<OpWait>();
    eng.Spawn(CompletionWatcher(c, w));
    eng.Spawn(DeadlineWatcher(deadline - now, w));
    co_await w->ev.Wait();
  }
  if (!c->done()) {
    ++timeouts_;
    TraceEmit(TraceEventType::kRdmaTimeout, actor, vpn, kTraceNoFrame,
              static_cast<uint64_t>(Engine::current().now() - now));
    co_return OpOutcome::kTimeout;
  }
  co_return c->ok() ? OpOutcome::kOk : OpOutcome::kError;
}

Task<bool> ResilienceManager::OneOpOn(RdmaNic& nic, CircuitBreaker& br,
                                      int span_channel, bool is_write, int actor,
                                      uint64_t vpn, int budget, SpanHandle op) {
  BackoffSequence backoff(opt_.retry);
  const int channel = span_channel;
  for (int attempt = 0;; ++attempt) {
    SimTime g0 = Engine::current().now();
    co_await br.Admit();
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      // Nonzero only while the breaker is open; link to the op that opened it.
      st->LeafUnder(op, SpanKind::kBreakerWait, g0, Engine::current().now(), actor, vpn,
                    st->breaker_open(channel));
    }
    SimTime p0 = Engine::current().now();
    auto c = is_write ? nic.PostWrite(kPageSize) : nic.PostRead(kPageSize);
    OpOutcome out = co_await AwaitWithDeadline(c, actor, vpn);
    SpanLeafUnder(op,
                  attempt == 0 ? (is_write ? SpanKind::kRdmaWrite : SpanKind::kRdmaRead)
                               : SpanKind::kRdmaRetry,
                  p0, Engine::current().now(), actor, vpn, {},
                  static_cast<uint64_t>(attempt) + 1);
    if (out == OpOutcome::kOk) {
      br.OnSuccess();
      attempts_per_op_.Record(static_cast<uint64_t>(attempt) + 1);
      co_return true;
    }
    bool was_degraded = br.degraded();
    br.OnFailure();
    if (SpanTracer* st = SpanTracer::Get();
        st != nullptr && !was_degraded && br.degraded()) {
      st->NoteBreakerOpen(channel, op);  // this op tripped the breaker
    }
    if (attempt >= budget) {
      attempts_per_op_.Record(static_cast<uint64_t>(attempt) + 1);
      co_return false;
    }
    ++retries_;
    SimTime b = backoff.Next(rng_);
    backoff_ns_.Record(static_cast<uint64_t>(b));
    TraceEmit(TraceEventType::kRdmaRetry, actor, vpn, kTraceNoFrame,
              static_cast<uint64_t>(attempt) + 1);
    SimTime b0 = Engine::current().now();
    co_await Delay{b};
    SpanLeafUnder(op, SpanKind::kRetryBackoff, b0, Engine::current().now(), actor, vpn,
                  {}, static_cast<uint64_t>(b));
  }
}

Task<bool> ResilienceManager::OneOp(bool is_write, int actor, uint64_t vpn, int budget,
                                    SpanHandle op) {
  CircuitBreaker& br = is_write ? write_breaker_ : read_breaker_;
  return OneOpOn(nic_, br, /*span_channel=*/is_write ? 1 : 0, is_write, actor, vpn,
                 budget, op);
}

void ResilienceManager::SetFleet(FleetManager* fleet) {
  fleet_ = fleet;
  node_read_breakers_.clear();
  node_write_breakers_.clear();
  if (fleet_ == nullptr) return;
  for (int n = 0; n < fleet_->num_nodes(); ++n) {
    node_read_breakers_.emplace_back(opt_.breaker, /*channel_id=*/2 * n);
    node_write_breakers_.emplace_back(opt_.breaker, /*channel_id=*/2 * n + 1);
  }
}

bool ResilienceManager::read_degraded() const {
  if (fleet_ == nullptr) return read_breaker_.degraded();
  for (const CircuitBreaker& b : node_read_breakers_) {
    if (b.degraded()) return true;
  }
  return false;
}

bool ResilienceManager::write_degraded() const {
  if (fleet_ == nullptr) return write_breaker_.degraded();
  for (const CircuitBreaker& b : node_write_breakers_) {
    if (b.degraded()) return true;
  }
  return false;
}

uint64_t ResilienceManager::breaker_opens_total() const {
  uint64_t total = read_breaker_.opens() + write_breaker_.opens();
  for (const CircuitBreaker& b : node_read_breakers_) total += b.opens();
  for (const CircuitBreaker& b : node_write_breakers_) total += b.opens();
  return total;
}

Task<RemoteOpStatus> ResilienceManager::FleetReadPage(int core, uint64_t vpn,
                                                      uint64_t slot,
                                                      bool allow_poison,
                                                      SpanHandle op) {
  // Split the retry budget across replicas so total attempts stay bounded by
  // the single-node policy; a replica that exhausts its share is excluded
  // and the read fails over to the next survivor.
  const int per_replica_budget =
      std::max(1, opt_.retry.max_retries / std::max(1, fleet_->replication()));
  uint16_t excluded = 0;
  for (;;) {
    FleetManager::ReadTarget t = fleet_->ReadTargetFor(slot, excluded);
    if (t.node < 0) break;  // nothing live left to ask
    SimTime a0 = Engine::current().now();
    bool ok = co_await OneOpOn(fleet_->nic(t.node), NodeBreaker(t.node, false),
                               /*span_channel=*/0, /*is_write=*/false, core, vpn,
                               per_replica_budget, op);
    if (ok) {
      if (t.degraded) {
        fleet_->NoteDegradedRead(slot, t.node, fleet_->placement().PrimaryOf(slot));
        SpanLeafUnder(op, SpanKind::kDegradedRead, a0, Engine::current().now(),
                      t.node, vpn, {}, slot);
      }
      co_return RemoteOpStatus::kOk;
    }
    excluded |= static_cast<uint16_t>(1u << t.node);
  }
  ++reads_failed_;
  if (!allow_poison) co_return RemoteOpStatus::kAbandoned;
  if (opt_.terminal == TerminalPolicy::kFailRun) {
    FailRun("no live replica for demand read");
  }
  ++pages_poisoned_;
  TraceEmit(TraceEventType::kPagePoisoned, core, vpn);
  co_return RemoteOpStatus::kPoisoned;
}

Task<RemoteOpStatus> ResilienceManager::ReadPage(int core, uint64_t vpn,
                                                 bool allow_poison, SpanHandle op,
                                                 uint64_t slot) {
  if (fleet_ != nullptr && slot != kNoFleetSlot) {
    co_return co_await FleetReadPage(core, vpn, slot, allow_poison, op);
  }
  bool ok = co_await OneOp(/*is_write=*/false, core, vpn, opt_.retry.max_retries, op);
  if (ok) co_return RemoteOpStatus::kOk;
  ++reads_failed_;
  if (!allow_poison) co_return RemoteOpStatus::kAbandoned;
  if (opt_.terminal == TerminalPolicy::kFailRun) {
    FailRun("demand read retries exhausted");
  }
  // Even under kFailRun the page is poisoned so the in-flight fault unwinds
  // cleanly while the engine drains.
  ++pages_poisoned_;
  TraceEmit(TraceEventType::kPagePoisoned, core, vpn);
  co_return RemoteOpStatus::kPoisoned;
}

Task<size_t> ResilienceManager::WritePages(int evictor_id, size_t n, SpanHandle op) {
  if (n == 0) co_return 0;
  SimTime g0 = Engine::current().now();
  co_await write_breaker_.Admit();
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    st->LeafUnder(op, SpanKind::kBreakerWait, g0, Engine::current().now(), evictor_id,
                  kTraceNoPage, st->breaker_open(1));
  }
  // Post the whole batch back-to-back (matching the legacy path's channel
  // utilization), then await in FIFO order; only failures pay retry latency.
  std::vector<std::shared_ptr<RdmaCompletion>> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) ops.push_back(nic_.PostWrite(kPageSize));
  size_t lost = 0;
  for (auto& c : ops) {
    SimTime w0 = Engine::current().now();
    OpOutcome out = co_await AwaitWithDeadline(c, evictor_id, kTraceNoPage);
    // FIFO waits behind already-completed ops are zero-duration and skipped.
    SpanLeafUnder(op, SpanKind::kRdmaWrite, w0, Engine::current().now(), evictor_id,
                  kTraceNoPage, {}, 1);
    if (out == OpOutcome::kOk) {
      write_breaker_.OnSuccess();
      continue;
    }
    bool was_degraded = write_breaker_.degraded();
    write_breaker_.OnFailure();
    if (SpanTracer* st = SpanTracer::Get();
        st != nullptr && !was_degraded && write_breaker_.degraded()) {
      st->NoteBreakerOpen(1, op);
    }
    ++retries_;
    TraceEmit(TraceEventType::kRdmaRetry, evictor_id, kTraceNoPage, kTraceNoFrame, 1);
    if (!co_await OneOp(/*is_write=*/true, evictor_id, kTraceNoPage,
                        std::max(0, opt_.retry.max_retries - 1), op)) {
      ++lost;
    }
  }
  if (lost > 0) {
    writebacks_lost_ += lost;
    TraceEmit(TraceEventType::kWritebackLost, evictor_id, kTraceNoPage, kTraceNoFrame,
              static_cast<uint64_t>(lost));
    if (opt_.terminal == TerminalPolicy::kFailRun) FailRun("writeback retries exhausted");
  }
  co_return lost;
}

Task<size_t> ResilienceManager::WriteSlots(int evictor_id,
                                           std::vector<uint64_t> slots,
                                           SpanHandle op) {
  if (fleet_ == nullptr || slots.empty()) co_return 0;
  // Gate once per server this batch will touch (ascending, deterministic) —
  // the fleet analogue of WritePages' single upfront Admit.
  uint16_t touch_mask = 0;
  for (uint64_t slot : slots) touch_mask |= fleet_->WriteTargetsFor(slot).Mask();
  for (int n = 0; n < fleet_->num_nodes(); ++n) {
    if ((touch_mask & (1u << n)) == 0) continue;
    SimTime g0 = Engine::current().now();
    co_await NodeBreaker(n, /*is_write=*/true).Admit();
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      st->LeafUnder(op, SpanKind::kBreakerWait, g0, Engine::current().now(),
                    evictor_id, kTraceNoPage, st->breaker_open(1));
    }
  }
  // Post every (slot, replica) op back-to-back, then await in FIFO order;
  // only failures pay retry latency. Targets are re-resolved after the
  // admission gates so a server that died while we waited is skipped.
  struct PendingOp {
    size_t idx;
    int node;
    std::shared_ptr<RdmaCompletion> c;
  };
  std::vector<PendingOp> ops;
  std::vector<uint16_t> acked(slots.size(), 0);
  ops.reserve(slots.size() * static_cast<size_t>(fleet_->replication()));
  for (size_t i = 0; i < slots.size(); ++i) {
    ReplicaSet targets = fleet_->WriteTargetsFor(slots[i]);
    for (int j = 0; j < targets.count; ++j) {
      ops.push_back(
          {i, targets.node[j], fleet_->nic(targets.node[j]).PostWrite(kPageSize)});
    }
  }
  for (PendingOp& p : ops) {
    SimTime w0 = Engine::current().now();
    OpOutcome out = co_await AwaitWithDeadline(p.c, evictor_id, slots[p.idx]);
    SpanLeafUnder(op, SpanKind::kRdmaWrite, w0, Engine::current().now(), evictor_id,
                  slots[p.idx], {}, 1);
    CircuitBreaker& br = NodeBreaker(p.node, /*is_write=*/true);
    if (out == OpOutcome::kOk) {
      br.OnSuccess();
      acked[p.idx] |= static_cast<uint16_t>(1u << p.node);
      continue;
    }
    bool was_degraded = br.degraded();
    br.OnFailure();
    if (SpanTracer* st = SpanTracer::Get();
        st != nullptr && !was_degraded && br.degraded()) {
      st->NoteBreakerOpen(1, op);
    }
    ++retries_;
    TraceEmit(TraceEventType::kRdmaRetry, evictor_id, slots[p.idx], kTraceNoFrame, 1);
    if (co_await OneOpOn(fleet_->nic(p.node), br, /*span_channel=*/1,
                         /*is_write=*/true, evictor_id, slots[p.idx],
                         std::max(0, opt_.retry.max_retries - 1), op)) {
      acked[p.idx] |= static_cast<uint16_t>(1u << p.node);
    }
  }
  size_t lost = 0;
  for (size_t i = 0; i < slots.size(); ++i) {
    fleet_->CommitWrite(slots[i], acked[i]);
    if (!fleet_->HasLiveCopy(slots[i])) ++lost;
  }
  if (lost > 0) {
    writebacks_lost_ += lost;
    TraceEmit(TraceEventType::kWritebackLost, evictor_id, kTraceNoPage, kTraceNoFrame,
              static_cast<uint64_t>(lost));
    if (opt_.terminal == TerminalPolicy::kFailRun) {
      FailRun("writeback lost every replica");
    }
  }
  co_return lost;
}

Task<> ResilienceManager::TicketMain(int evictor_id, size_t n,
                                     std::shared_ptr<WritebackTicket> t,
                                     SpanHandle batch_span) {
  // The owning batch's span rides the call so WritePages' leaves parent
  // correctly. The batch closes only after `done` fires, so the handle
  // outlives every leaf emitted here.
  t->lost = co_await WritePages(evictor_id, n, batch_span);
  t->done.Set();
}

std::shared_ptr<WritebackTicket> ResilienceManager::SpawnWritePages(int evictor_id,
                                                                    size_t n,
                                                                    SpanHandle batch_span) {
  auto t = std::make_shared<WritebackTicket>();
  t->pages = n;
  Engine::current().Spawn(TicketMain(evictor_id, n, t, batch_span));
  return t;
}

Task<> ResilienceManager::TicketMainSlots(int evictor_id,
                                          std::vector<uint64_t> slots,
                                          std::shared_ptr<WritebackTicket> t,
                                          SpanHandle batch_span) {
  t->lost = co_await WriteSlots(evictor_id, std::move(slots), batch_span);
  t->done.Set();
}

std::shared_ptr<WritebackTicket> ResilienceManager::SpawnWriteSlots(
    int evictor_id, std::vector<uint64_t> slots, SpanHandle batch_span) {
  auto t = std::make_shared<WritebackTicket>();
  t->pages = slots.size();
  Engine::current().Spawn(
      TicketMainSlots(evictor_id, std::move(slots), t, batch_span));
  return t;
}

Task<> ResilienceManager::EvictionBackpressure(int evictor_id) {
  const CircuitBreaker* gate = &write_breaker_;
  if (fleet_ != nullptr) {
    // Per-server breakers: pause against the worst open write channel.
    gate = nullptr;
    for (const CircuitBreaker& b : node_write_breakers_) {
      if (b.degraded() && (gate == nullptr || b.open_until() > gate->open_until())) {
        gate = &b;
      }
    }
    if (gate == nullptr) co_return;
  } else if (!write_breaker_.degraded()) {
    co_return;
  }
  SimTime now = Engine::current().now();
  SimTime wait = gate->open_until() - now;
  if (wait < 10 * kMicrosecond) wait = 10 * kMicrosecond;
  if (wait > opt_.backpressure_max_ns) wait = opt_.backpressure_max_ns;
  ++backpressure_waits_;
  TraceEmit(TraceEventType::kEvictBackpressure, evictor_id, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(wait));
  SimTime b0 = Engine::current().now();
  co_await Delay{wait};
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    // No operation is open here (the pause sits between batches), so the
    // leaf becomes a self-contained backpressure root op, linked to the
    // write op that opened the breaker.
    st->Leaf(SpanKind::kBackpressure, b0, evictor_id, kTraceNoPage, st->breaker_open(1),
             static_cast<uint64_t>(wait));
  }
}

void ResilienceManager::NotePrefetchThrottle(int core, uint64_t vpn) {
  ++prefetch_throttles_;
  TraceEmit(TraceEventType::kPrefetchThrottle, core, vpn);
}

void ResilienceManager::FailRun(const char* why) {
  if (run_failed_) return;
  run_failed_ = true;
  failure_reason_ = why;
  Engine::current().RequestShutdown();
}

}  // namespace magesim
