#include "src/resilience/resilient_rdma.h"

#include <algorithm>

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

ResilienceManager::ResilienceManager(RdmaNic& nic, const ResilienceOptions& opt)
    : nic_(nic),
      opt_(opt),
      rng_(opt.seed ^ 0x5e111e7ce2e511e7ULL),
      read_breaker_(opt.breaker, /*channel_id=*/0),
      write_breaker_(opt.breaker, /*channel_id=*/1) {}

Task<> ResilienceManager::CompletionWatcher(std::shared_ptr<RdmaCompletion> c,
                                            std::shared_ptr<OpWait> w) {
  // If the completion was dropped this watcher parks forever — the same
  // intentional leak policy as any coroutine parked at shutdown.
  co_await c->Wait();
  w->ev.Set();
}

Task<> ResilienceManager::DeadlineWatcher(SimTime delay, std::shared_ptr<OpWait> w) {
  co_await Delay{delay};
  w->ev.Set();
}

Task<ResilienceManager::OpOutcome> ResilienceManager::AwaitWithDeadline(
    std::shared_ptr<RdmaCompletion> c, int actor, uint64_t vpn) {
  Engine& eng = Engine::current();
  SimTime now = eng.now();
  SimTime deadline = std::max(now, c->completes_at()) + opt_.retry.op_grace_ns;
  if (!c->done()) {
    auto w = std::make_shared<OpWait>();
    eng.Spawn(CompletionWatcher(c, w));
    eng.Spawn(DeadlineWatcher(deadline - now, w));
    co_await w->ev.Wait();
  }
  if (!c->done()) {
    ++timeouts_;
    TraceEmit(TraceEventType::kRdmaTimeout, actor, vpn, kTraceNoFrame,
              static_cast<uint64_t>(Engine::current().now() - now));
    co_return OpOutcome::kTimeout;
  }
  co_return c->ok() ? OpOutcome::kOk : OpOutcome::kError;
}

Task<bool> ResilienceManager::OneOp(bool is_write, int actor, uint64_t vpn, int budget) {
  BackoffSequence backoff(opt_.retry);
  CircuitBreaker& br = is_write ? write_breaker_ : read_breaker_;
  for (int attempt = 0;; ++attempt) {
    co_await br.Admit();
    auto c = is_write ? nic_.PostWrite(kPageSize) : nic_.PostRead(kPageSize);
    OpOutcome out = co_await AwaitWithDeadline(c, actor, vpn);
    if (out == OpOutcome::kOk) {
      br.OnSuccess();
      attempts_per_op_.Record(static_cast<uint64_t>(attempt) + 1);
      co_return true;
    }
    br.OnFailure();
    if (attempt >= budget) {
      attempts_per_op_.Record(static_cast<uint64_t>(attempt) + 1);
      co_return false;
    }
    ++retries_;
    SimTime b = backoff.Next(rng_);
    backoff_ns_.Record(static_cast<uint64_t>(b));
    TraceEmit(TraceEventType::kRdmaRetry, actor, vpn, kTraceNoFrame,
              static_cast<uint64_t>(attempt) + 1);
    co_await Delay{b};
  }
}

Task<RemoteOpStatus> ResilienceManager::ReadPage(int core, uint64_t vpn,
                                                 bool allow_poison) {
  bool ok = co_await OneOp(/*is_write=*/false, core, vpn, opt_.retry.max_retries);
  if (ok) co_return RemoteOpStatus::kOk;
  ++reads_failed_;
  if (!allow_poison) co_return RemoteOpStatus::kAbandoned;
  if (opt_.terminal == TerminalPolicy::kFailRun) {
    FailRun("demand read retries exhausted");
  }
  // Even under kFailRun the page is poisoned so the in-flight fault unwinds
  // cleanly while the engine drains.
  ++pages_poisoned_;
  TraceEmit(TraceEventType::kPagePoisoned, core, vpn);
  co_return RemoteOpStatus::kPoisoned;
}

Task<size_t> ResilienceManager::WritePages(int evictor_id, size_t n) {
  if (n == 0) co_return 0;
  co_await write_breaker_.Admit();
  // Post the whole batch back-to-back (matching the legacy path's channel
  // utilization), then await in FIFO order; only failures pay retry latency.
  std::vector<std::shared_ptr<RdmaCompletion>> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) ops.push_back(nic_.PostWrite(kPageSize));
  size_t lost = 0;
  for (auto& c : ops) {
    OpOutcome out = co_await AwaitWithDeadline(c, evictor_id, kTraceNoPage);
    if (out == OpOutcome::kOk) {
      write_breaker_.OnSuccess();
      continue;
    }
    write_breaker_.OnFailure();
    ++retries_;
    TraceEmit(TraceEventType::kRdmaRetry, evictor_id, kTraceNoPage, kTraceNoFrame, 1);
    if (!co_await OneOp(/*is_write=*/true, evictor_id, kTraceNoPage,
                        std::max(0, opt_.retry.max_retries - 1))) {
      ++lost;
    }
  }
  if (lost > 0) {
    writebacks_lost_ += lost;
    TraceEmit(TraceEventType::kWritebackLost, evictor_id, kTraceNoPage, kTraceNoFrame,
              static_cast<uint64_t>(lost));
    if (opt_.terminal == TerminalPolicy::kFailRun) FailRun("writeback retries exhausted");
  }
  co_return lost;
}

Task<> ResilienceManager::TicketMain(int evictor_id, size_t n,
                                     std::shared_ptr<WritebackTicket> t) {
  t->lost = co_await WritePages(evictor_id, n);
  t->done.Set();
}

std::shared_ptr<WritebackTicket> ResilienceManager::SpawnWritePages(int evictor_id,
                                                                    size_t n) {
  auto t = std::make_shared<WritebackTicket>();
  t->pages = n;
  Engine::current().Spawn(TicketMain(evictor_id, n, t));
  return t;
}

Task<> ResilienceManager::EvictionBackpressure(int evictor_id) {
  if (!write_breaker_.degraded()) co_return;
  SimTime now = Engine::current().now();
  SimTime wait = write_breaker_.open_until() - now;
  if (wait < 10 * kMicrosecond) wait = 10 * kMicrosecond;
  if (wait > opt_.backpressure_max_ns) wait = opt_.backpressure_max_ns;
  ++backpressure_waits_;
  TraceEmit(TraceEventType::kEvictBackpressure, evictor_id, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(wait));
  co_await Delay{wait};
}

void ResilienceManager::NotePrefetchThrottle(int core, uint64_t vpn) {
  ++prefetch_throttles_;
  TraceEmit(TraceEventType::kPrefetchThrottle, core, vpn);
}

void ResilienceManager::FailRun(const char* why) {
  if (run_failed_) return;
  run_failed_ = true;
  failure_reason_ = why;
  Engine::current().RequestShutdown();
}

}  // namespace magesim
