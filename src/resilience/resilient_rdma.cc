#include "src/resilience/resilient_rdma.h"

#include <algorithm>

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

ResilienceManager::ResilienceManager(RdmaNic& nic, const ResilienceOptions& opt)
    : nic_(nic),
      opt_(opt),
      rng_(opt.seed ^ 0x5e111e7ce2e511e7ULL),
      read_breaker_(opt.breaker, /*channel_id=*/0),
      write_breaker_(opt.breaker, /*channel_id=*/1) {}

Task<> ResilienceManager::CompletionWatcher(std::shared_ptr<RdmaCompletion> c,
                                            std::shared_ptr<OpWait> w) {
  // If the completion was dropped this watcher parks forever — the same
  // intentional leak policy as any coroutine parked at shutdown.
  co_await c->Wait();
  w->ev.Set();
}

Task<> ResilienceManager::DeadlineWatcher(SimTime delay, std::shared_ptr<OpWait> w) {
  co_await Delay{delay};
  w->ev.Set();
}

Task<ResilienceManager::OpOutcome> ResilienceManager::AwaitWithDeadline(
    std::shared_ptr<RdmaCompletion> c, int actor, uint64_t vpn) {
  Engine& eng = Engine::current();
  SimTime now = eng.now();
  SimTime deadline = std::max(now, c->completes_at()) + opt_.retry.op_grace_ns;
  if (!c->done()) {
    auto w = std::make_shared<OpWait>();
    eng.Spawn(CompletionWatcher(c, w));
    eng.Spawn(DeadlineWatcher(deadline - now, w));
    co_await w->ev.Wait();
  }
  if (!c->done()) {
    ++timeouts_;
    TraceEmit(TraceEventType::kRdmaTimeout, actor, vpn, kTraceNoFrame,
              static_cast<uint64_t>(Engine::current().now() - now));
    co_return OpOutcome::kTimeout;
  }
  co_return c->ok() ? OpOutcome::kOk : OpOutcome::kError;
}

Task<bool> ResilienceManager::OneOp(bool is_write, int actor, uint64_t vpn, int budget,
                                    SpanHandle op) {
  BackoffSequence backoff(opt_.retry);
  CircuitBreaker& br = is_write ? write_breaker_ : read_breaker_;
  const int channel = is_write ? 1 : 0;
  for (int attempt = 0;; ++attempt) {
    SimTime g0 = Engine::current().now();
    co_await br.Admit();
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      // Nonzero only while the breaker is open; link to the op that opened it.
      st->LeafUnder(op, SpanKind::kBreakerWait, g0, Engine::current().now(), actor, vpn,
                    st->breaker_open(channel));
    }
    SimTime p0 = Engine::current().now();
    auto c = is_write ? nic_.PostWrite(kPageSize) : nic_.PostRead(kPageSize);
    OpOutcome out = co_await AwaitWithDeadline(c, actor, vpn);
    SpanLeafUnder(op,
                  attempt == 0 ? (is_write ? SpanKind::kRdmaWrite : SpanKind::kRdmaRead)
                               : SpanKind::kRdmaRetry,
                  p0, Engine::current().now(), actor, vpn, {},
                  static_cast<uint64_t>(attempt) + 1);
    if (out == OpOutcome::kOk) {
      br.OnSuccess();
      attempts_per_op_.Record(static_cast<uint64_t>(attempt) + 1);
      co_return true;
    }
    bool was_degraded = br.degraded();
    br.OnFailure();
    if (SpanTracer* st = SpanTracer::Get();
        st != nullptr && !was_degraded && br.degraded()) {
      st->NoteBreakerOpen(channel, op);  // this op tripped the breaker
    }
    if (attempt >= budget) {
      attempts_per_op_.Record(static_cast<uint64_t>(attempt) + 1);
      co_return false;
    }
    ++retries_;
    SimTime b = backoff.Next(rng_);
    backoff_ns_.Record(static_cast<uint64_t>(b));
    TraceEmit(TraceEventType::kRdmaRetry, actor, vpn, kTraceNoFrame,
              static_cast<uint64_t>(attempt) + 1);
    SimTime b0 = Engine::current().now();
    co_await Delay{b};
    SpanLeafUnder(op, SpanKind::kRetryBackoff, b0, Engine::current().now(), actor, vpn,
                  {}, static_cast<uint64_t>(b));
  }
}

Task<RemoteOpStatus> ResilienceManager::ReadPage(int core, uint64_t vpn,
                                                 bool allow_poison, SpanHandle op) {
  bool ok = co_await OneOp(/*is_write=*/false, core, vpn, opt_.retry.max_retries, op);
  if (ok) co_return RemoteOpStatus::kOk;
  ++reads_failed_;
  if (!allow_poison) co_return RemoteOpStatus::kAbandoned;
  if (opt_.terminal == TerminalPolicy::kFailRun) {
    FailRun("demand read retries exhausted");
  }
  // Even under kFailRun the page is poisoned so the in-flight fault unwinds
  // cleanly while the engine drains.
  ++pages_poisoned_;
  TraceEmit(TraceEventType::kPagePoisoned, core, vpn);
  co_return RemoteOpStatus::kPoisoned;
}

Task<size_t> ResilienceManager::WritePages(int evictor_id, size_t n, SpanHandle op) {
  if (n == 0) co_return 0;
  SimTime g0 = Engine::current().now();
  co_await write_breaker_.Admit();
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    st->LeafUnder(op, SpanKind::kBreakerWait, g0, Engine::current().now(), evictor_id,
                  kTraceNoPage, st->breaker_open(1));
  }
  // Post the whole batch back-to-back (matching the legacy path's channel
  // utilization), then await in FIFO order; only failures pay retry latency.
  std::vector<std::shared_ptr<RdmaCompletion>> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) ops.push_back(nic_.PostWrite(kPageSize));
  size_t lost = 0;
  for (auto& c : ops) {
    SimTime w0 = Engine::current().now();
    OpOutcome out = co_await AwaitWithDeadline(c, evictor_id, kTraceNoPage);
    // FIFO waits behind already-completed ops are zero-duration and skipped.
    SpanLeafUnder(op, SpanKind::kRdmaWrite, w0, Engine::current().now(), evictor_id,
                  kTraceNoPage, {}, 1);
    if (out == OpOutcome::kOk) {
      write_breaker_.OnSuccess();
      continue;
    }
    bool was_degraded = write_breaker_.degraded();
    write_breaker_.OnFailure();
    if (SpanTracer* st = SpanTracer::Get();
        st != nullptr && !was_degraded && write_breaker_.degraded()) {
      st->NoteBreakerOpen(1, op);
    }
    ++retries_;
    TraceEmit(TraceEventType::kRdmaRetry, evictor_id, kTraceNoPage, kTraceNoFrame, 1);
    if (!co_await OneOp(/*is_write=*/true, evictor_id, kTraceNoPage,
                        std::max(0, opt_.retry.max_retries - 1), op)) {
      ++lost;
    }
  }
  if (lost > 0) {
    writebacks_lost_ += lost;
    TraceEmit(TraceEventType::kWritebackLost, evictor_id, kTraceNoPage, kTraceNoFrame,
              static_cast<uint64_t>(lost));
    if (opt_.terminal == TerminalPolicy::kFailRun) FailRun("writeback retries exhausted");
  }
  co_return lost;
}

Task<> ResilienceManager::TicketMain(int evictor_id, size_t n,
                                     std::shared_ptr<WritebackTicket> t,
                                     SpanHandle batch_span) {
  // The owning batch's span rides the call so WritePages' leaves parent
  // correctly. The batch closes only after `done` fires, so the handle
  // outlives every leaf emitted here.
  t->lost = co_await WritePages(evictor_id, n, batch_span);
  t->done.Set();
}

std::shared_ptr<WritebackTicket> ResilienceManager::SpawnWritePages(int evictor_id,
                                                                    size_t n,
                                                                    SpanHandle batch_span) {
  auto t = std::make_shared<WritebackTicket>();
  t->pages = n;
  Engine::current().Spawn(TicketMain(evictor_id, n, t, batch_span));
  return t;
}

Task<> ResilienceManager::EvictionBackpressure(int evictor_id) {
  if (!write_breaker_.degraded()) co_return;
  SimTime now = Engine::current().now();
  SimTime wait = write_breaker_.open_until() - now;
  if (wait < 10 * kMicrosecond) wait = 10 * kMicrosecond;
  if (wait > opt_.backpressure_max_ns) wait = opt_.backpressure_max_ns;
  ++backpressure_waits_;
  TraceEmit(TraceEventType::kEvictBackpressure, evictor_id, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(wait));
  SimTime b0 = Engine::current().now();
  co_await Delay{wait};
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    // No operation is open here (the pause sits between batches), so the
    // leaf becomes a self-contained backpressure root op, linked to the
    // write op that opened the breaker.
    st->Leaf(SpanKind::kBackpressure, b0, evictor_id, kTraceNoPage, st->breaker_open(1),
             static_cast<uint64_t>(wait));
  }
}

void ResilienceManager::NotePrefetchThrottle(int core, uint64_t vpn) {
  ++prefetch_throttles_;
  TraceEmit(TraceEventType::kPrefetchThrottle, core, vpn);
}

void ResilienceManager::FailRun(const char* why) {
  if (run_failed_) return;
  run_failed_ = true;
  failure_reason_ = why;
  Engine::current().RequestShutdown();
}

}  // namespace magesim
