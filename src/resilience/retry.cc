#include "src/resilience/retry.h"

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

Task<> CircuitBreaker::Admit() {
  for (;;) {
    if (state_ == State::kClosed) co_return;
    Engine& eng = Engine::current();
    SimTime now = eng.now();
    if (state_ == State::kOpen) {
      if (now < open_until_) {
        co_await Delay{open_until_ - now};
        continue;  // re-check: the breaker may have re-opened meanwhile
      }
      state_ = State::kHalfOpen;
      probe_in_flight_ = false;
      TraceEmit(TraceEventType::kBreakerHalfOpen, channel_id_);
    }
    // Half-open: first caller through becomes the probe, the rest wait for
    // its verdict (Close pulses on success, Open pulses on failure).
    if (!probe_in_flight_) {
      probe_in_flight_ = true;
      co_return;
    }
    co_await state_change_.Wait();
  }
}

void CircuitBreaker::OnSuccess() {
  SimTime now = Engine::current().now();
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      Close(now);
      break;
    case State::kOpen:
      // Late completion from before the trip; the probe decides.
      break;
  }
}

void CircuitBreaker::OnFailure() {
  SimTime now = Engine::current().now();
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) Open(now);
      break;
    case State::kHalfOpen:
      Open(now);
      break;
    case State::kOpen:
      break;
  }
}

void CircuitBreaker::Open(SimTime now) {
  if (state_ == State::kClosed) degraded_since_ = now;
  state_ = State::kOpen;
  ++opens_;
  open_until_ = now + policy_.open_duration_ns;
  probe_in_flight_ = false;
  TraceEmit(TraceEventType::kBreakerOpen, channel_id_, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(consecutive_failures_));
  consecutive_failures_ = 0;
  state_change_.Pulse();
}

void CircuitBreaker::Close(SimTime now) {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  SimTime degraded = now - degraded_since_;
  degraded_accum_ += degraded;
  TraceEmit(TraceEventType::kBreakerClose, channel_id_, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(degraded));
  state_change_.Pulse();
}

}  // namespace magesim
