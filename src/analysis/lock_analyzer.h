// Simulated-time concurrency-correctness analyzer ("sim-TSan").
//
// All magesim "cores" are coroutines on one OS thread, so ThreadSanitizer is
// structurally blind to sim-level races: a missed `co_await lock` silently
// corrupts the contention results the simulator exists to report. The
// LockAnalyzer closes that gap at runtime. Installed (one at a time, the
// Tracer/SimProfiler idiom), it receives every lock acquire/unlock, every
// guarded-access assertion, and every non-lock suspension through the
// src/sim/analysis_hooks.h table and enforces four rule families:
//
//   1. Ownership — unlocks must come from the owning logical task; double
//      unlocks are reported; `SimMutex::AssertHeld()` (the MAGESIM_GUARDED_BY
//      annotation) verifies guarded state is only touched under its lock.
//   2. Lock order (lockdep) — every acquisition extends a global digraph of
//      lock *classes* (locks sharing a name, e.g. all "fifo-part" partition
//      locks, form one class); a cycle is a potential deadlock even when none
//      manifests in this run, reported with each edge's first-acquisition
//      backtrail. Same-class nesting is not tracked (classic lockdep limit).
//   3. Held-across-await — holding a lock across a non-lock awaiter (RDMA
//      completion, evictor wakeup, semaphore, channel, condvar) serializes
//      unrelated progress and is reported unless allowlisted. Delay{} under a
//      lock is the repo's intended critical-section cost model and is only
//      flagged when AnalysisOptions::flag_delay_awaits is set.
//   4. Protocol checks — page-fault ownership (the task that TryBeginFault'd
//      a vpn must be the one to Map/EndFault it), per-CPU cache core
//      affinity, and lock quiescence at end of run.
//
// Diagnostics are deterministic: lock classes and instances are labeled by
// registration order, never by pointer. Violations abort with a named
// diagnostic by default; capture mode (abort_on_violation = false) records
// them for tests and reporting. Zero cost when not installed (one pointer
// test per instrumentation point); `AnalysisExemptScope` suppresses analysis
// inside deliberate modeling shortcuts.
#ifndef MAGESIM_ANALYSIS_LOCK_ANALYZER_H_
#define MAGESIM_ANALYSIS_LOCK_ANALYZER_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/analysis_hooks.h"
#include "src/sim/time.h"

namespace magesim {

enum class AnalysisViolationKind : uint8_t {
  kUnlockNotOwner,   // unlock by a task that does not own the lock
  kDoubleUnlock,     // unlock of a lock that is not held
  kGuardedAccess,    // guarded state touched without the declared lock
  kLockOrderCycle,   // acquisition-order digraph grew a cycle
  kHeldAcrossAwait,  // lock held across a non-lock awaiter outside allowlist
  kFaultProtocol,    // page-fault ownership protocol broken
  kCoreAffinity,     // per-CPU structure touched from the wrong core's task
  kLockQuiescence,   // lock still held when the simulation drained
  kNumKinds,
};

const char* AnalysisViolationKindName(AnalysisViolationKind k);

inline constexpr int kNumAnalysisViolationKinds =
    static_cast<int>(AnalysisViolationKind::kNumKinds);

struct AnalysisOptions {
  // Abort the process with a named diagnostic on the first violation (the CI
  // posture). When false, violations are recorded and counted instead — used
  // by the negative tests and by exploratory runs.
  bool abort_on_violation = true;
  // Also flag Delay{}/YieldNow suspensions under a lock. Off by default:
  // Delay under a lock is how the sim charges critical-section time.
  bool flag_delay_awaits = false;
  size_t max_recorded = 64;  // stored AnalysisViolation cap (counting continues)
};

struct AnalysisViolation {
  AnalysisViolationKind kind;
  SimTime t;
  TaskId task;
  std::string message;
};

class LockAnalyzer {
 public:
  explicit LockAnalyzer(AnalysisOptions opts = {});
  ~LockAnalyzer();
  LockAnalyzer(const LockAnalyzer&) = delete;
  LockAnalyzer& operator=(const LockAnalyzer&) = delete;

  // Registers this analyzer's hook table process-wide. At most one may be
  // installed at a time.
  void Install();
  void Uninstall();
  static LockAnalyzer* Get() { return current_; }
  // Like Get(), but null inside an AnalysisExemptScope — protocol checks in
  // instrumented code use this so deliberate modeling shortcuts stay silent.
  static LockAnalyzer* Active() {
    return AnalysisHooks() != nullptr ? current_ : nullptr;
  }

  // Labels the currently running task in diagnostics ("app-3", "evictor-0").
  // `core` >= 0 additionally binds the task to a core for CheckCoreAffinity.
  void NameCurrentTask(std::string name, int core = -1);

  // "task 5 (app-1)", "task 7", or "setup" for kNoTask.
  std::string TaskLabel(TaskId task) const;

  // Permits holding locks of class `lock_name` across awaits at `site` ("*"
  // = any site). Deliberate exceptions, documented at the registration point.
  void AllowHeldAcrossAwait(std::string lock_name, std::string site = "*");

  // Per-CPU structure guard: the current task, if bound to a core via
  // NameCurrentTask, must be running on `core`. Unbound tasks pass.
  void CheckCoreAffinity(int core, const char* what);

  // Page-fault ownership protocol: TryBeginFault marks the current task as
  // the fault owner; Map/EndFault must come from that task.
  void OnFaultBegin(uint64_t vpn);
  void CheckFaultOwner(uint64_t vpn, const char* what);
  void OnFaultEnd(uint64_t vpn);

  // Eviction protocol: a frame must be isolated from the accounting lists
  // before its mapping is torn down. `isolated` is the caller-evaluated frame
  // state test (keeps this library independent of the mem layer); setup code
  // outside any task passes.
  void CheckFrameIsolated(bool isolated, uint64_t vpn, const char* what);

  // One line per lock still held (and per task still holding locks); empty
  // when the lock state is quiescent. The invariant checker's
  // CheckLockQuiescence consumes this.
  std::vector<std::string> QuiescenceReport() const;

  const AnalysisOptions& options() const { return opts_; }
  const std::vector<AnalysisViolation>& violations() const { return violations_; }
  uint64_t total_violations() const { return total_violations_; }
  uint64_t count(AnalysisViolationKind k) const {
    return counts_[static_cast<size_t>(k)];
  }
  uint64_t locks_registered() const { return locks_.size(); }
  uint64_t lock_classes() const { return class_names_.size(); }
  uint64_t order_edges() const { return edge_count_; }

  // Human-readable summary: per-kind counts plus the recorded messages.
  std::string Report() const;

 private:
  struct LockState {
    uint32_t class_id = 0;
    uint32_t instance = 0;  // ordinal within the class, registration order
    bool exclusive = false;
    TaskId owner = kNoTask;
    std::vector<TaskId> shared_holders;
  };

  struct HeldEntry {
    uint32_t lock_idx;
    uint32_t class_id;
    bool shared;
  };

  struct TaskInfo {
    std::string name;
    int core = -1;
  };

  // First-acquisition backtrail for a lock-order edge.
  struct EdgeInfo {
    uint32_t from;
    uint32_t to;
    TaskId task;
    SimTime t;
    std::string held_desc;  // locks held when the edge was first seen
  };

  static void OnAcquireTramp(void* ctx, const void* lock, const char* name,
                             TaskId task, bool shared);
  static void OnUnlockTramp(void* ctx, const void* lock, const char* name,
                            TaskId task, bool shared, bool was_locked);
  static void OnAwaitTramp(void* ctx, const void* obj, const char* site,
                           AwaitKind kind, TaskId task);
  static void OnAssertHeldTramp(void* ctx, const void* lock, const char* name,
                                TaskId task, const char* what);

  void OnAcquire(const void* lock, const char* name, TaskId task, bool shared);
  void OnUnlock(const void* lock, const char* name, TaskId task, bool shared,
                bool was_locked);
  void OnAwait(const char* site, AwaitKind kind, TaskId task);
  void OnAssertHeld(const void* lock, const char* name, TaskId task,
                    const char* what);

  uint32_t RegisterLock(const void* lock, const char* name);
  std::string LockLabel(uint32_t lock_idx) const;
  std::string HeldDesc(TaskId task) const;
  bool Allowed(const std::string& cls, const char* site) const;
  void AddEdge(uint32_t from_cls, uint32_t to_cls, TaskId task);
  // Depth-first search for a path to_cls -> ... -> from_cls in the order
  // graph; returns the class-id path (empty if none).
  std::vector<uint32_t> FindPath(uint32_t from_cls, uint32_t to_cls) const;
  void ReportViolation(AnalysisViolationKind kind, TaskId task, std::string msg);

  AnalysisOptions opts_;
  SimAnalysisHooks hooks_;
  bool installed_ = false;

  std::unordered_map<const void*, uint32_t> lock_index_;
  std::vector<LockState> locks_;  // registration order — deterministic labels
  std::unordered_map<std::string, uint32_t> class_ids_;
  std::vector<std::string> class_names_;
  std::vector<uint32_t> class_instances_;  // per-class registration counter

  std::unordered_map<TaskId, std::vector<HeldEntry>> held_;
  std::unordered_map<TaskId, TaskInfo> tasks_;
  std::unordered_map<uint64_t, TaskId> fault_owner_;

  std::vector<std::vector<uint32_t>> adj_;  // class id -> successor class ids
  std::map<std::pair<uint32_t, uint32_t>, EdgeInfo> edges_;
  uint64_t edge_count_ = 0;

  std::set<std::pair<std::string, std::string>> await_allowlist_;

  uint64_t total_violations_ = 0;
  std::array<uint64_t, kNumAnalysisViolationKinds> counts_{};
  std::vector<AnalysisViolation> violations_;

  static LockAnalyzer* current_;
};

}  // namespace magesim

#endif  // MAGESIM_ANALYSIS_LOCK_ANALYZER_H_
