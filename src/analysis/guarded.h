// Guarded-state annotations for the concurrency analyzer.
//
// `GuardedBy<T>` wraps a value whose every access must happen under a
// declared SimMutex; `MAGESIM_GUARDED_BY(lock)` / `MAGESIM_ASSERT_HELD` are
// the access-site assertions for state that cannot be wrapped (intrusive
// lists, existing member layouts). All of them funnel into
// SimMutex::AssertHeld(): with no analyzer installed the cost is one pointer
// test; with one installed (Options::analysis / MAGESIM_ANALYSIS), an access
// by a task that does not hold the lock aborts with a diagnostic naming the
// lock, the accessor task, the owner task, and the simulated time.
//
// Header-only and dependency-free beyond src/sim — any layer may annotate
// without linking the analysis library.
#ifndef MAGESIM_ANALYSIS_GUARDED_H_
#define MAGESIM_ANALYSIS_GUARDED_H_

#include <utility>

#include "src/sim/sync.h"

namespace magesim {

// A value that must only be touched while holding its mutex:
//
//   SimMutex lock_{"lru"};
//   GuardedBy<FrameList> inactive_{lock_};
//   ...
//   auto g = co_await lock_.Scoped();
//   inactive_.Locked().PushBack(f);
template <typename T>
class GuardedBy {
 public:
  explicit GuardedBy(SimMutex& m) : m_(&m) {}
  template <typename... Args>
  GuardedBy(SimMutex& m, Args&&... args)
      : m_(&m), value_(std::forward<Args>(args)...) {}
  GuardedBy(const GuardedBy&) = delete;
  GuardedBy& operator=(const GuardedBy&) = delete;

  T& Locked(const char* what = "guarded value") {
    m_->AssertHeld(what);
    return value_;
  }
  const T& Locked(const char* what = "guarded value") const {
    m_->AssertHeld(what);
    return value_;
  }

  // Deliberately unchecked access: read-only reporting paths that tolerate
  // observing the owner mid-update, and setup code running before the engine.
  T& Unsafe() { return value_; }
  const T& Unsafe() const { return value_; }

  const SimMutex& mutex() const { return *m_; }

 private:
  SimMutex* m_;
  T value_;
};

}  // namespace magesim

// Access-site assertion that `lock` is held by the calling task, with an
// explicit description of the guarded state for the diagnostic.
#define MAGESIM_ASSERT_HELD(lock, what) ((lock).AssertHeld(what))

// Shorthand naming the lock itself as the description.
#define MAGESIM_GUARDED_BY(lock) ((lock).AssertHeld(#lock))

#endif  // MAGESIM_ANALYSIS_GUARDED_H_
