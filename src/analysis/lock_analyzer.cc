#include "src/analysis/lock_analyzer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

LockAnalyzer* LockAnalyzer::current_ = nullptr;

const char* AnalysisViolationKindName(AnalysisViolationKind k) {
  switch (k) {
    case AnalysisViolationKind::kUnlockNotOwner: return "unlock_not_owner";
    case AnalysisViolationKind::kDoubleUnlock: return "double_unlock";
    case AnalysisViolationKind::kGuardedAccess: return "guarded_access";
    case AnalysisViolationKind::kLockOrderCycle: return "lock_order_cycle";
    case AnalysisViolationKind::kHeldAcrossAwait: return "held_across_await";
    case AnalysisViolationKind::kFaultProtocol: return "fault_protocol";
    case AnalysisViolationKind::kCoreAffinity: return "core_affinity";
    case AnalysisViolationKind::kLockQuiescence: return "lock_quiescence";
    case AnalysisViolationKind::kNumKinds: break;
  }
  return "unknown";
}

namespace {

const char* AwaitKindName(AwaitKind k) {
  switch (k) {
    case AwaitKind::kDelay: return "delay";
    case AwaitKind::kYield: return "yield";
    case AwaitKind::kEvent: return "event-wait";
    case AwaitKind::kSemaphore: return "semaphore-wait";
    case AwaitKind::kChannel: return "channel-wait";
    case AwaitKind::kCondVar: return "condvar-wait";
  }
  return "await";
}

}  // namespace

LockAnalyzer::LockAnalyzer(AnalysisOptions opts) : opts_(opts) {
  hooks_.ctx = this;
  hooks_.on_acquire = &OnAcquireTramp;
  hooks_.on_unlock = &OnUnlockTramp;
  hooks_.on_await = &OnAwaitTramp;
  hooks_.on_assert_held = &OnAssertHeldTramp;
}

LockAnalyzer::~LockAnalyzer() { Uninstall(); }

void LockAnalyzer::Install() {
  if (current_ == this) return;
  if (current_ != nullptr) {
    std::fprintf(stderr, "magesim-analysis: only one LockAnalyzer may be installed\n");
    std::abort();
  }
  current_ = this;
  installed_ = true;
  SetAnalysisHooks(&hooks_);
}

void LockAnalyzer::Uninstall() {
  if (current_ != this) return;
  SetAnalysisHooks(nullptr);
  current_ = nullptr;
  installed_ = false;
}

void LockAnalyzer::OnAcquireTramp(void* ctx, const void* lock, const char* name,
                                  TaskId task, bool shared) {
  static_cast<LockAnalyzer*>(ctx)->OnAcquire(lock, name, task, shared);
}

void LockAnalyzer::OnUnlockTramp(void* ctx, const void* lock, const char* name,
                                 TaskId task, bool shared, bool was_locked) {
  static_cast<LockAnalyzer*>(ctx)->OnUnlock(lock, name, task, shared, was_locked);
}

void LockAnalyzer::OnAwaitTramp(void* ctx, const void* obj, const char* site,
                                AwaitKind kind, TaskId task) {
  (void)obj;
  static_cast<LockAnalyzer*>(ctx)->OnAwait(site, kind, task);
}

void LockAnalyzer::OnAssertHeldTramp(void* ctx, const void* lock, const char* name,
                                     TaskId task, const char* what) {
  static_cast<LockAnalyzer*>(ctx)->OnAssertHeld(lock, name, task, what);
}

uint32_t LockAnalyzer::RegisterLock(const void* lock, const char* name) {
  auto it = lock_index_.find(lock);
  if (it != lock_index_.end()) return it->second;
  std::string cls = (name != nullptr && name[0] != '\0') ? name : "<unnamed>";
  auto [cit, inserted] =
      class_ids_.emplace(cls, static_cast<uint32_t>(class_names_.size()));
  if (inserted) {
    class_names_.push_back(cls);
    class_instances_.push_back(0);
    adj_.emplace_back();
  }
  uint32_t class_id = cit->second;
  uint32_t idx = static_cast<uint32_t>(locks_.size());
  LockState st;
  st.class_id = class_id;
  st.instance = class_instances_[class_id]++;
  locks_.push_back(std::move(st));
  lock_index_.emplace(lock, idx);
  return idx;
}

std::string LockAnalyzer::LockLabel(uint32_t lock_idx) const {
  const LockState& st = locks_[lock_idx];
  std::string label = class_names_[st.class_id];
  if (st.instance > 0) {
    label += "#";
    label += std::to_string(st.instance);
  }
  return label;
}

std::string LockAnalyzer::TaskLabel(TaskId task) const {
  if (task == kNoTask) return "setup";
  std::string label = "task " + std::to_string(task);
  auto it = tasks_.find(task);
  if (it != tasks_.end() && !it->second.name.empty()) {
    label += " (" + it->second.name + ")";
  }
  return label;
}

std::string LockAnalyzer::HeldDesc(TaskId task) const {
  auto it = held_.find(task);
  if (it == held_.end() || it->second.empty()) return "[]";
  std::string out = "[";
  for (size_t i = 0; i < it->second.size(); ++i) {
    if (i > 0) out += ", ";
    out += LockLabel(it->second[i].lock_idx);
    if (it->second[i].shared) out += " (shared)";
  }
  out += "]";
  return out;
}

void LockAnalyzer::NameCurrentTask(std::string name, int core) {
  TaskId task = Engine::CurrentTaskOrNone();
  if (task == kNoTask) return;
  tasks_[task] = TaskInfo{std::move(name), core};
}

void LockAnalyzer::AllowHeldAcrossAwait(std::string lock_name, std::string site) {
  await_allowlist_.emplace(std::move(lock_name), std::move(site));
}

bool LockAnalyzer::Allowed(const std::string& cls, const char* site) const {
  if (await_allowlist_.count({cls, "*"}) > 0) return true;
  return await_allowlist_.count({cls, site != nullptr ? site : ""}) > 0;
}

void LockAnalyzer::AddEdge(uint32_t from_cls, uint32_t to_cls, TaskId task) {
  auto key = std::make_pair(from_cls, to_cls);
  if (edges_.find(key) != edges_.end()) return;
  edges_.emplace(key, EdgeInfo{from_cls, to_cls, task, Engine::NowOrZero(),
                               HeldDesc(task)});
  adj_[from_cls].push_back(to_cls);
  ++edge_count_;
  TraceEmit(TraceEventType::kAnalysisLockOrderEdge, static_cast<int32_t>(task),
            from_cls, to_cls);
  // A path to_cls -> ... -> from_cls through the pre-existing edges plus this
  // one closes a cycle: somewhere these classes are taken in both orders.
  std::vector<uint32_t> path = FindPath(to_cls, from_cls);
  if (path.empty()) return;
  std::ostringstream msg;
  msg << "lock-order cycle: ";
  for (uint32_t c : path) msg << "'" << class_names_[c] << "' -> ";
  msg << "'" << class_names_[to_cls] << "'";
  msg << "; new edge '" << class_names_[from_cls] << "' -> '"
      << class_names_[to_cls] << "' acquired by " << TaskLabel(task)
      << " at t=" << Engine::NowOrZero() << "ns holding " << HeldDesc(task);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto eit = edges_.find({path[i], path[i + 1]});
    if (eit == edges_.end()) continue;
    const EdgeInfo& e = eit->second;
    msg << "; edge '" << class_names_[e.from] << "' -> '" << class_names_[e.to]
        << "' first by " << TaskLabel(e.task) << " at t=" << e.t
        << "ns holding " << e.held_desc;
  }
  // The closing hop path.back() -> to_cls is this new edge itself when the
  // path ends at from_cls; already described above.
  ReportViolation(AnalysisViolationKind::kLockOrderCycle, task, msg.str());
}

std::vector<uint32_t> LockAnalyzer::FindPath(uint32_t from_cls, uint32_t to_cls) const {
  std::vector<uint32_t> stack{from_cls};
  std::vector<bool> visited(adj_.size(), false);
  std::vector<uint32_t> parent(adj_.size(), ~0u);
  visited[from_cls] = true;
  while (!stack.empty()) {
    uint32_t c = stack.back();
    stack.pop_back();
    if (c == to_cls) {
      std::vector<uint32_t> path;
      for (uint32_t x = to_cls; x != ~0u; x = parent[x]) path.push_back(x);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (uint32_t succ : adj_[c]) {
      if (visited[succ]) continue;
      visited[succ] = true;
      parent[succ] = c;
      stack.push_back(succ);
    }
  }
  return {};
}

void LockAnalyzer::OnAcquire(const void* lock, const char* name, TaskId task,
                             bool shared) {
  uint32_t idx = RegisterLock(lock, name);
  uint32_t class_id = locks_[idx].class_id;
  std::vector<HeldEntry>& held = held_[task];
  for (const HeldEntry& e : held) {
    if (e.class_id != class_id) AddEdge(e.class_id, class_id, task);
  }
  held.push_back(HeldEntry{idx, class_id, shared});
  LockState& st = locks_[idx];
  if (shared) {
    st.shared_holders.push_back(task);
  } else {
    st.exclusive = true;
    st.owner = task;
  }
}

void LockAnalyzer::OnUnlock(const void* lock, const char* name, TaskId task,
                            bool shared, bool was_locked) {
  uint32_t idx = RegisterLock(lock, name);
  LockState& st = locks_[idx];
  if (!was_locked) {
    ReportViolation(AnalysisViolationKind::kDoubleUnlock, task,
                    "double unlock of '" + LockLabel(idx) + "' by " +
                        TaskLabel(task) + " at t=" +
                        std::to_string(Engine::NowOrZero()) + "ns");
    return;
  }
  TaskId holder = task;
  if (shared) {
    auto hit = std::find(st.shared_holders.begin(), st.shared_holders.end(), task);
    if (hit != st.shared_holders.end()) {
      st.shared_holders.erase(hit);
    } else if (!st.shared_holders.empty()) {
      // Holders are known and this task is not among them. (An empty holder
      // list means the lock predates Install(); nothing to check.)
      holder = st.shared_holders.front();
      ReportViolation(AnalysisViolationKind::kUnlockNotOwner, task,
                      "shared unlock of '" + LockLabel(idx) + "' by " +
                          TaskLabel(task) + " which does not hold it (holder: " +
                          TaskLabel(holder) + ") at t=" +
                          std::to_string(Engine::NowOrZero()) + "ns");
      st.shared_holders.erase(st.shared_holders.begin());
    } else {
      return;
    }
  } else {
    if (st.exclusive && st.owner != task && st.owner != kNoTask && task != kNoTask) {
      ReportViolation(AnalysisViolationKind::kUnlockNotOwner, task,
                      "unlock of '" + LockLabel(idx) + "' by " + TaskLabel(task) +
                          " which does not own it (owner: " + TaskLabel(st.owner) +
                          ") at t=" + std::to_string(Engine::NowOrZero()) + "ns");
      // The primitive releases regardless; keep our state in sync with it.
      holder = st.owner;
    } else if (st.exclusive) {
      holder = st.owner;
    }
    st.exclusive = false;
    st.owner = kNoTask;
  }
  std::vector<HeldEntry>& held = held_[holder];
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->lock_idx == idx && it->shared == shared) {
      held.erase(std::next(it).base());
      break;
    }
  }
}

void LockAnalyzer::OnAwait(const char* site, AwaitKind kind, TaskId task) {
  if ((kind == AwaitKind::kDelay || kind == AwaitKind::kYield) &&
      !opts_.flag_delay_awaits) {
    return;
  }
  auto it = held_.find(task);
  if (it == held_.end() || it->second.empty()) return;
  for (const HeldEntry& e : it->second) {
    const std::string& cls = class_names_[e.class_id];
    if (Allowed(cls, site)) continue;
    std::ostringstream msg;
    msg << "lock '" << LockLabel(e.lock_idx) << "' held across "
        << AwaitKindName(kind) << " '" << (site != nullptr ? site : "?")
        << "' by " << TaskLabel(task) << " at t=" << Engine::NowOrZero()
        << "ns (held " << HeldDesc(task) << ")";
    ReportViolation(AnalysisViolationKind::kHeldAcrossAwait, task, msg.str());
  }
}

void LockAnalyzer::OnAssertHeld(const void* lock, const char* name, TaskId task,
                                const char* what) {
  if (task == kNoTask) return;  // setup/teardown code runs outside the protocol
  auto it = lock_index_.find(lock);
  std::string desc = (what != nullptr && what[0] != '\0') ? what : "guarded state";
  if (it == lock_index_.end()) {
    uint32_t idx = RegisterLock(lock, name);
    ReportViolation(AnalysisViolationKind::kGuardedAccess, task,
                    "guarded access (" + desc + ") without holding '" +
                        LockLabel(idx) + "' (never acquired) by " +
                        TaskLabel(task) + " at t=" +
                        std::to_string(Engine::NowOrZero()) + "ns");
    return;
  }
  const LockState& st = locks_[it->second];
  if (st.exclusive && st.owner == task) return;
  if (std::find(st.shared_holders.begin(), st.shared_holders.end(), task) !=
      st.shared_holders.end()) {
    return;
  }
  std::string owner_desc;
  if (st.exclusive) {
    owner_desc = "owner: " + TaskLabel(st.owner);
  } else if (!st.shared_holders.empty()) {
    owner_desc = "shared holder: " + TaskLabel(st.shared_holders.front());
  } else {
    owner_desc = "owner: none";
  }
  ReportViolation(AnalysisViolationKind::kGuardedAccess, task,
                  "guarded access (" + desc + ") without holding '" +
                      LockLabel(it->second) + "' by " + TaskLabel(task) + " (" +
                      owner_desc + ") at t=" +
                      std::to_string(Engine::NowOrZero()) + "ns");
}

void LockAnalyzer::CheckCoreAffinity(int core, const char* what) {
  TaskId task = Engine::CurrentTaskOrNone();
  if (task == kNoTask) return;
  auto it = tasks_.find(task);
  if (it == tasks_.end() || it->second.core < 0) return;
  if (it->second.core == core) return;
  std::ostringstream msg;
  msg << "per-CPU access (" << (what != nullptr ? what : "?") << ") for core "
      << core << " by " << TaskLabel(task) << " bound to core "
      << it->second.core << " at t=" << Engine::NowOrZero() << "ns";
  ReportViolation(AnalysisViolationKind::kCoreAffinity, task, msg.str());
}

void LockAnalyzer::OnFaultBegin(uint64_t vpn) {
  fault_owner_[vpn] = Engine::CurrentTaskOrNone();
}

void LockAnalyzer::CheckFaultOwner(uint64_t vpn, const char* what) {
  TaskId task = Engine::CurrentTaskOrNone();
  if (task == kNoTask) return;
  auto it = fault_owner_.find(vpn);
  if (it == fault_owner_.end() || it->second == kNoTask) return;
  if (it->second == task) return;
  std::ostringstream msg;
  msg << "fault protocol: " << (what != nullptr ? what : "?") << " of vpn "
      << vpn << " by " << TaskLabel(task) << " but the fault is owned by "
      << TaskLabel(it->second) << " at t=" << Engine::NowOrZero() << "ns";
  ReportViolation(AnalysisViolationKind::kFaultProtocol, task, msg.str());
}

void LockAnalyzer::OnFaultEnd(uint64_t vpn) {
  CheckFaultOwner(vpn, "EndFault");
  fault_owner_.erase(vpn);
}

void LockAnalyzer::CheckFrameIsolated(bool isolated, uint64_t vpn, const char* what) {
  TaskId task = Engine::CurrentTaskOrNone();
  if (task == kNoTask || isolated) return;
  std::ostringstream msg;
  msg << "eviction protocol: " << (what != nullptr ? what : "?") << " of vpn "
      << vpn << " by " << TaskLabel(task)
      << " while its frame is still on the accounting lists (not isolated)"
      << " at t=" << Engine::NowOrZero() << "ns";
  ReportViolation(AnalysisViolationKind::kFaultProtocol, task, msg.str());
}

std::vector<std::string> LockAnalyzer::QuiescenceReport() const {
  std::vector<std::string> out;
  for (uint32_t idx = 0; idx < locks_.size(); ++idx) {
    const LockState& st = locks_[idx];
    if (st.exclusive) {
      out.push_back("lock '" + LockLabel(idx) + "' still held by " +
                    TaskLabel(st.owner) + " at quiescence");
    } else if (!st.shared_holders.empty()) {
      out.push_back("lock '" + LockLabel(idx) + "' still shared-held by " +
                    std::to_string(st.shared_holders.size()) +
                    " task(s), first " + TaskLabel(st.shared_holders.front()) +
                    ", at quiescence");
    }
  }
  return out;
}

void LockAnalyzer::ReportViolation(AnalysisViolationKind kind, TaskId task,
                                   std::string msg) {
  ++total_violations_;
  ++counts_[static_cast<size_t>(kind)];
  TraceEmit(TraceEventType::kAnalysisViolation, static_cast<int32_t>(task),
            kTraceNoPage, kTraceNoFrame, static_cast<uint64_t>(kind));
  if (opts_.abort_on_violation) {
    std::fprintf(stderr, "magesim-analysis: FATAL %s: %s\n",
                 AnalysisViolationKindName(kind), msg.c_str());
    std::abort();
  }
  if (violations_.size() < opts_.max_recorded) {
    violations_.push_back(
        AnalysisViolation{kind, Engine::NowOrZero(), task, std::move(msg)});
  }
}

std::string LockAnalyzer::Report() const {
  std::ostringstream out;
  out << "lock analyzer: " << locks_registered() << " locks in "
      << lock_classes() << " classes, " << order_edges()
      << " order edges, " << total_violations_ << " violations\n";
  for (int k = 0; k < kNumAnalysisViolationKinds; ++k) {
    if (counts_[static_cast<size_t>(k)] == 0) continue;
    out << "  " << AnalysisViolationKindName(static_cast<AnalysisViolationKind>(k))
        << ": " << counts_[static_cast<size_t>(k)] << "\n";
  }
  for (const AnalysisViolation& v : violations_) {
    out << "  [" << AnalysisViolationKindName(v.kind) << "] " << v.message << "\n";
  }
  return out.str();
}

}  // namespace magesim
