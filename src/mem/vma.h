// Virtual memory area lookup on the fault path (§3.2).
//
// Hermit (Linux) takes mm-wide locks around VMA lookup; under fault storms
// the associated cacheline traffic and read-side serialization contend
// (the paper: "locks associated with virtual memory areas"). MageLnx shards
// the address-space lock by interval ("interval-tree-based shards", §5.1);
// unikernels (DiLOS, MageLib) have one flat address space and skip VMA
// locking altogether.
#ifndef MAGESIM_MEM_VMA_H_
#define MAGESIM_MEM_VMA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {

struct Vma {
  uint64_t start_vpn;
  uint64_t end_vpn;  // exclusive
  int id;
};

// Interface: resolve the VMA covering `vpn`, paying variant-specific
// synchronization costs.
class VmaResolver {
 public:
  virtual ~VmaResolver() = default;
  virtual Task<const Vma*> Find(uint64_t vpn) = 0;
  // Synchronous fast path: returns true and writes *out when the resolver
  // can answer with no simulated cost (no locks, no delays) — the caller
  // then skips the Find() coroutine entirely. Resolvers that model
  // synchronization must return false so the fault path pays for it.
  virtual bool TryFind(uint64_t vpn, const Vma** out) {
    (void)vpn;
    (void)out;
    return false;
  }
  virtual const LockStats* lock_stats() const { return nullptr; }
};

// Linux-style: one mmap lock serializing lookups (read-mostly rwsem modeled
// as a short exclusive section: the contended cost is cacheline ping-pong).
class LockedVmaSet : public VmaResolver {
 public:
  explicit LockedVmaSet(SimTime cs_ns = 60) : cs_ns_(cs_ns) {}

  void Add(Vma vma) { vmas_.push_back(vma); }
  Task<const Vma*> Find(uint64_t vpn) override;
  const LockStats* lock_stats() const override { return &lock_.stats(); }

 private:
  SimTime cs_ns_;
  std::vector<Vma> vmas_;
  SimMutex lock_{"mmap-lock"};
};

// MageLnx-style: the address range is partitioned into fixed shards, each
// with its own lock; faults on different shards never contend.
class ShardedVmaSet : public VmaResolver {
 public:
  ShardedVmaSet(uint64_t total_vpns, int num_shards, SimTime cs_ns = 60);

  void Add(Vma vma) { vmas_.push_back(vma); }
  Task<const Vma*> Find(uint64_t vpn) override;
  const LockStats* lock_stats() const override { return &shards_[0]->stats(); }
  LockStats AggregateLockStats() const;

 private:
  SimTime cs_ns_;
  uint64_t vpns_per_shard_;
  std::vector<Vma> vmas_;
  std::vector<std::unique_ptr<SimMutex>> shards_;
};

// Unikernel: single flat address space, no lookup cost at all.
class NoVma : public VmaResolver {
 public:
  explicit NoVma(uint64_t total_vpns) : vma_{0, total_vpns, 0} {}
  Task<const Vma*> Find(uint64_t vpn) override;
  bool TryFind(uint64_t vpn, const Vma** out) override {
    *out = (vpn < vma_.end_vpn ? &vma_ : nullptr);
    return true;
  }

 private:
  Vma vma_;
};

}  // namespace magesim

#endif  // MAGESIM_MEM_VMA_H_
