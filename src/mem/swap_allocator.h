// Remote ("swap") space allocation strategies (§3.3.3 EP3, §4.2.3).
//
// SwapAllocator models the Linux swap-slot allocator Hermit inherits: a slot
// bitmap behind one global spinlock with per-CPU cluster hints — the lock is
// the EP3 bottleneck the paper measures. DirectMapping models the VMA-level
// direct mapping DiLOS and MAGE use instead: local_addr + X maps to
// remote_addr + X, so "allocation" is a pure computation with no shared state.
#ifndef MAGESIM_MEM_SWAP_ALLOCATOR_H_
#define MAGESIM_MEM_SWAP_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/hw/topology.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {

class SwapAllocator {
 public:
  static constexpr uint64_t kClusterSlots = 256;

  SwapAllocator(uint64_t num_slots, int num_cores, SimTime cs_ns = 350);

  // Allocates one slot; returns kNoSlot when the device is full. Serializes
  // on the global swap_info lock.
  Task<uint64_t> Alloc(CoreId core);
  Task<> Free(uint64_t slot);

  static constexpr uint64_t kNoSlot = ~0ULL;

  // Setup-time (zero-cost) marking used by Kernel::Prepopulate to seed the
  // warmed-up state where non-resident pages already own slots.
  void MarkUsedForSetup(uint64_t slot);

  uint64_t free_slots() const { return free_slots_; }
  uint64_t num_slots() const { return num_slots_; }
  const LockStats& lock_stats() const { return lock_.stats(); }

 private:
  uint64_t ScanFrom(uint64_t start);

  uint64_t num_slots_;
  uint64_t free_slots_;
  SimTime cs_ns_;
  std::vector<bool> used_;
  std::vector<uint64_t> cluster_hint_;  // per-core next-fit hints
  SimMutex lock_{"swap-info"};
};

// VMA-level direct mapping (zero-cost remote allocator).
class DirectMapping {
 public:
  explicit DirectMapping(uint64_t remote_base = 0) : remote_base_(remote_base) {}

  uint64_t RemoteOffsetFor(uint64_t vpn) const { return remote_base_ + vpn; }

 private:
  uint64_t remote_base_;
};

}  // namespace magesim

#endif  // MAGESIM_MEM_SWAP_ALLOCATOR_H_
