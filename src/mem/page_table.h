// Page table for the (single) simulated application address space.
//
// PTEs carry present/accessed/dirty bits plus the remote-backing info a far
// memory system needs: either a direct-mapped remote offset (DiLOS/MAGE,
// §4.2.3) or a swap slot (Linux/Hermit). Per-page fault deduplication is
// embedded in the PTE as a lock/in-flight bit with a wait list — the unified
// page table design DiLOS and MageLib use to replace the kernel swap cache
// (§5.2).
#ifndef MAGESIM_MEM_PAGE_TABLE_H_
#define MAGESIM_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/mem/frame_pool.h"
#include "src/sim/sync.h"

namespace magesim {

inline constexpr uint64_t kNoSwapSlot = ~0ULL;

struct Pte {
  PageFrame* frame = nullptr;  // valid iff present
  bool present = false;
  bool accessed = false;
  bool dirty = false;
  // A fault (or prefetch) is in flight for this page; concurrent faulting
  // threads must wait instead of issuing duplicate RDMA reads.
  bool fault_in_flight = false;
  // Swap slot holding the page while non-present (kNoSwapSlot when the
  // variant uses VMA-level direct mapping instead).
  uint64_t swap_slot = kNoSwapSlot;
};

class PageTable {
 public:
  // Covers virtual pages [0, num_pages) of one mmap'd region.
  explicit PageTable(uint64_t num_pages);

  uint64_t num_pages() const { return num_pages_; }

  Pte& At(uint64_t vpn) { return ptes_[vpn]; }
  const Pte& At(uint64_t vpn) const { return ptes_[vpn]; }

  // Installs a mapping (fault-in completion).
  void Map(uint64_t vpn, PageFrame* frame);

  // Clears a mapping (eviction unmap). Transfers the PTE dirty bit onto the
  // frame and returns it.
  PageFrame* Unmap(uint64_t vpn);

  // --- Fault dedup (unified page table / swap cache replacement) ---
  // Marks a fault in flight. Returns false if one was already in flight.
  bool TryBeginFault(uint64_t vpn);
  // Suspends until the in-flight fault for `vpn` completes.
  Task<> WaitForFault(uint64_t vpn);
  // Completes the in-flight fault, waking waiters.
  void EndFault(uint64_t vpn);

  uint64_t mapped_pages() const { return mapped_; }
  uint64_t dedup_waits() const { return dedup_waits_; }

 private:
  uint64_t num_pages_;
  std::vector<Pte> ptes_;
  std::unordered_map<uint64_t, std::shared_ptr<SimEvent>> fault_waiters_;
  uint64_t mapped_ = 0;
  uint64_t dedup_waits_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_MEM_PAGE_TABLE_H_
