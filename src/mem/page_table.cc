#include "src/mem/page_table.h"

#include <cassert>

#include "src/analysis/lock_analyzer.h"

namespace magesim {

PageTable::PageTable(uint64_t num_pages) : num_pages_(num_pages) {
  ptes_.resize(num_pages);
}

void PageTable::Map(uint64_t vpn, PageFrame* frame) {
  assert(vpn < num_pages_);
  Pte& pte = ptes_[vpn];
  assert(!pte.present);
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->CheckFaultOwner(vpn, "Map");
  }
  pte.frame = frame;
  pte.present = true;
  pte.accessed = true;  // the faulting access counts as a reference
  pte.dirty = false;
  frame->state = PageFrame::State::kMapped;
  frame->vpn = vpn;
  ++mapped_;
}

PageFrame* PageTable::Unmap(uint64_t vpn) {
  assert(vpn < num_pages_);
  Pte& pte = ptes_[vpn];
  assert(pte.present);
  PageFrame* f = pte.frame;
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    // Eviction protocol: a frame must be isolated from the accounting lists
    // (IsolateBatch) before its mapping is torn down; unmapping a frame still
    // on the LRU/FIFO lists races the accounting scan. Modeling shortcuts
    // (instant/ideal reclaim) run under AnalysisExemptScope.
    la->CheckFrameIsolated(f->state == PageFrame::State::kIsolated, vpn, "Unmap");
  }
  f->dirty = pte.dirty;
  f->referenced = false;
  f->freq = 0;
  f->state = PageFrame::State::kIsolated;
  pte.frame = nullptr;
  pte.present = false;
  pte.accessed = false;
  pte.dirty = false;
  --mapped_;
  return f;
}

bool PageTable::TryBeginFault(uint64_t vpn) {
  Pte& pte = ptes_[vpn];
  if (pte.fault_in_flight) return false;
  pte.fault_in_flight = true;
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->OnFaultBegin(vpn);
  }
  return true;
}

Task<> PageTable::WaitForFault(uint64_t vpn) {
  auto it = fault_waiters_.find(vpn);
  std::shared_ptr<SimEvent> ev;
  if (it == fault_waiters_.end()) {
    ev = std::make_shared<SimEvent>("fault-wait");
    fault_waiters_.emplace(vpn, ev);
  } else {
    ev = it->second;
  }
  ++dedup_waits_;
  co_await ev->Wait();
}

void PageTable::EndFault(uint64_t vpn) {
  Pte& pte = ptes_[vpn];
  assert(pte.fault_in_flight);
  pte.fault_in_flight = false;
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->OnFaultEnd(vpn);
  }
  auto it = fault_waiters_.find(vpn);
  if (it != fault_waiters_.end()) {
    it->second->Set();
    fault_waiters_.erase(it);
  }
}

}  // namespace magesim
