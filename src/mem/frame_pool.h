// Physical page frames and their metadata.
//
// The simulation uses a single address space (the paper's setups are one
// application per machine: a unikernel for DiLOS/MageLib, a dedicated VM for
// MageLnx/Hermit), so a frame maps at most one virtual page.
#ifndef MAGESIM_MEM_FRAME_POOL_H_
#define MAGESIM_MEM_FRAME_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/hw/machine_params.h"

namespace magesim {

inline constexpr uint64_t kInvalidVpn = ~0ULL;

// Physical frame metadata (struct page analogue). Intrusively linkable into
// exactly one accounting list at a time.
struct PageFrame {
  uint32_t pfn = 0;

  enum class State : uint8_t {
    kFree,       // in an allocator
    kAllocated,  // taken from the allocator, not yet mapped
    kMapped,     // mapped into the page table
    kIsolated,   // removed from accounting by an evictor, being processed
  };
  State state = State::kFree;

  // Virtual page currently backed by this frame (kInvalidVpn if none).
  uint64_t vpn = kInvalidVpn;

  // Dirty snapshot taken at unmap time (PTE dirty bit transferred here).
  bool dirty = false;
  // Use-once filter (PG_referenced analogue): a page must be referenced on
  // two consecutive eviction scans to count as hot. Streams touched once per
  // pass are evicted; genuinely hot pages are protected.
  bool referenced = false;
  // Small saturating access-frequency counter (S3-FIFO policy only).
  uint8_t freq = 0;

  // Intrusive accounting-list linkage.
  PageFrame* prev = nullptr;
  PageFrame* next = nullptr;
  int16_t lru_list = -1;  // accounting partition holding this frame, -1 = none
  // Memory control group the backing page is charged to (-1 = untenanted).
  // Stamped at charge time; kept through unmap so eviction bookkeeping can
  // still route by tenant, overwritten on the next charge.
  int16_t tenant = -1;

  bool linked() const { return lru_list >= 0; }
};

// Flat array of frames covering local DRAM.
class FramePool {
 public:
  explicit FramePool(uint64_t num_frames);

  uint64_t size() const { return frames_.size(); }
  PageFrame& frame(uint32_t pfn) { return frames_[pfn]; }
  const PageFrame& frame(uint32_t pfn) const { return frames_[pfn]; }

  uint64_t CountInState(PageFrame::State s) const;

 private:
  std::vector<PageFrame> frames_;
};

}  // namespace magesim

#endif  // MAGESIM_MEM_FRAME_POOL_H_
