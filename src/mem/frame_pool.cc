#include "src/mem/frame_pool.h"

namespace magesim {

FramePool::FramePool(uint64_t num_frames) {
  frames_.resize(num_frames);
  for (uint64_t i = 0; i < num_frames; ++i) {
    frames_[i].pfn = static_cast<uint32_t>(i);
  }
}

uint64_t FramePool::CountInState(PageFrame::State s) const {
  uint64_t n = 0;
  for (const auto& f : frames_) {
    if (f.state == s) ++n;
  }
  return n;
}

}  // namespace magesim
