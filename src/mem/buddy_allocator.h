// Binary buddy allocator over page frames (the zone allocator both OSes use,
// §3.3.3). Pure data-structure logic — callers serialize access and charge
// simulated critical-section time; contention therefore emerges from how each
// paging variant wraps it (see percpu_cache.h / multilayer_allocator.h).
#ifndef MAGESIM_MEM_BUDDY_ALLOCATOR_H_
#define MAGESIM_MEM_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/mem/frame_pool.h"

namespace magesim {

class SimMutex;

class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = 10;  // up to 4 MB blocks
  static constexpr uint32_t kNoBlock = ~0u;

  // Manages frames [0, num_frames) of `pool`.
  explicit BuddyAllocator(FramePool& pool);

  // Allocates a 2^order-page block; returns its first pfn or kNoBlock.
  uint32_t AllocBlock(int order);
  void FreeBlock(uint32_t pfn, int order);

  // Single-page conveniences.
  PageFrame* AllocPage();
  void FreePage(PageFrame* f);

  uint64_t free_pages() const { return free_pages_; }
  uint64_t total_pages() const { return num_frames_; }

  // Number of free blocks currently on the order-`order` list.
  uint64_t FreeListSize(int order) const;

  // Work units (list ops + splits/merges) performed by the last Alloc/Free;
  // used by callers to charge proportional critical-section time.
  int last_op_work() const { return last_op_work_; }

  // Validates internal invariants (no overlapping free blocks, counts match);
  // used by tests. Returns true when consistent.
  bool CheckConsistency() const;

  // Every free block as a (start pfn, order) pair; used by the invariant
  // checker's ownership census and coalescing check.
  std::vector<std::pair<uint32_t, int>> FreeBlocks() const;

  // Declares the mutex each wrapping allocator uses to serialize this buddy;
  // AllocBlock/FreeBlock then assert it is held (the concurrency analyzer's
  // guarded-state rule). Unset for direct-unit-test use.
  void SetGuard(const SimMutex* guard) { guard_ = guard; }

 private:
  uint32_t BuddyOf(uint32_t pfn, int order) const { return pfn ^ (1u << order); }
  void RemoveFromFreeList(uint32_t pfn, int order);

  FramePool& pool_;
  const SimMutex* guard_ = nullptr;
  uint64_t num_frames_;
  uint64_t free_pages_ = 0;
  int last_op_work_ = 0;
  std::vector<std::vector<uint32_t>> free_lists_;  // per order, block start pfns
  std::vector<int8_t> block_order_;  // order of the free block starting here, -1 otherwise
};

}  // namespace magesim

#endif  // MAGESIM_MEM_BUDDY_ALLOCATOR_H_
