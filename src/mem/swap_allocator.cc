#include "src/mem/swap_allocator.h"

#include <cassert>

#include "src/analysis/guarded.h"
#include "src/sim/engine.h"

namespace magesim {

SwapAllocator::SwapAllocator(uint64_t num_slots, int num_cores, SimTime cs_ns)
    : num_slots_(num_slots), free_slots_(num_slots), cs_ns_(cs_ns) {
  used_.assign(num_slots, false);
  cluster_hint_.resize(static_cast<size_t>(num_cores));
  // Stagger per-core cluster hints across the device, as Linux's per-CPU
  // cluster allocation does.
  for (size_t i = 0; i < cluster_hint_.size(); ++i) {
    cluster_hint_[i] = (i * kClusterSlots) % (num_slots == 0 ? 1 : num_slots);
  }
}

uint64_t SwapAllocator::ScanFrom(uint64_t start) {
  for (uint64_t i = 0; i < num_slots_; ++i) {
    uint64_t s = (start + i) % num_slots_;
    if (!used_[s]) return s;
  }
  return kNoSlot;
}

void SwapAllocator::MarkUsedForSetup(uint64_t slot) {
  assert(slot < num_slots_);
  if (!used_[slot]) {
    used_[slot] = true;
    --free_slots_;
  }
}

Task<uint64_t> SwapAllocator::Alloc(CoreId core) {
  auto g = co_await lock_.Scoped();
  co_await Delay{cs_ns_};
  MAGESIM_ASSERT_HELD(lock_, "swap slot bitmap (alloc)");
  if (free_slots_ == 0) {
    co_return kNoSlot;
  }
  uint64_t& hint = cluster_hint_[static_cast<size_t>(core)];
  uint64_t slot = ScanFrom(hint);
  assert(slot != kNoSlot);
  used_[slot] = true;
  --free_slots_;
  hint = (slot + 1) % num_slots_;
  co_return slot;
}

Task<> SwapAllocator::Free(uint64_t slot) {
  assert(slot < num_slots_);
  auto g = co_await lock_.Scoped();
  co_await Delay{cs_ns_ / 2};
  MAGESIM_ASSERT_HELD(lock_, "swap slot bitmap (free)");
  assert(used_[slot]);
  used_[slot] = false;
  ++free_slots_;
}

}  // namespace magesim
