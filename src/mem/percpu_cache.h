// Linux-style per-CPU page caches (PcpAllocator) and the DiLOS-style global
// mutex allocator (GlobalMutexAllocator). See page_allocator.h.
#ifndef MAGESIM_MEM_PERCPU_CACHE_H_
#define MAGESIM_MEM_PERCPU_CACHE_H_

#include <vector>

#include "src/mem/page_allocator.h"

namespace magesim {

// Linux: a small lockless cache per CPU, refilled from / drained to the
// buddy allocator under its global lock. Works well at low fault rates; under
// swap-intensive load every refill/drain serializes on the buddy lock.
class PcpAllocator : public PageAllocator {
 public:
  PcpAllocator(BuddyAllocator& buddy, int num_cores, AllocatorCosts costs = {},
               int batch = 32, int high_watermark = 64);

  Task<PageFrame*> Alloc(CoreId core) override;
  Task<> Free(CoreId core, PageFrame* f) override;
  Task<> FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) override;
  uint64_t global_free_pages() const override { return buddy_.free_pages(); }
  const LockStats& lock_stats() const override { return buddy_lock_.stats(); }
  void AppendCached(std::vector<PageFrame*>* out) const override;

  size_t CacheSize(CoreId core) const { return caches_[static_cast<size_t>(core)].size(); }

 private:
  BuddyAllocator& buddy_;
  SimMutex buddy_lock_{"buddy"};
  AllocatorCosts costs_;
  int batch_;
  int high_;
  std::vector<std::vector<PageFrame*>> caches_;
};

// DiLOS: one global sleepable mutex protects the physical allocator; every
// page alloc/free takes it (§3.2: "a global sleepable mutex protecting its
// physical page allocator").
class GlobalMutexAllocator : public PageAllocator {
 public:
  explicit GlobalMutexAllocator(BuddyAllocator& buddy, AllocatorCosts costs = {});

  Task<PageFrame*> Alloc(CoreId core) override;
  Task<> Free(CoreId core, PageFrame* f) override;
  Task<> FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) override;
  uint64_t global_free_pages() const override { return buddy_.free_pages(); }
  const LockStats& lock_stats() const override { return mutex_.stats(); }

 private:
  BuddyAllocator& buddy_;
  SimMutex mutex_{"phys-alloc"};
  AllocatorCosts costs_;
};

}  // namespace magesim

#endif  // MAGESIM_MEM_PERCPU_CACHE_H_
