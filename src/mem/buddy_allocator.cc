#include "src/mem/buddy_allocator.h"

#include <algorithm>
#include <cassert>

#include "src/sim/prof_counters.h"
#include "src/sim/sync.h"

namespace magesim {

BuddyAllocator::BuddyAllocator(FramePool& pool)
    : pool_(pool), num_frames_(pool.size()), free_lists_(kMaxOrder + 1) {
  block_order_.assign(num_frames_, -1);
  // Seed free lists greedily with the largest aligned blocks.
  uint64_t pfn = 0;
  while (pfn < num_frames_) {
    int order = kMaxOrder;
    while (order > 0 &&
           ((pfn & ((1ULL << order) - 1)) != 0 || pfn + (1ULL << order) > num_frames_)) {
      --order;
    }
    free_lists_[static_cast<size_t>(order)].push_back(static_cast<uint32_t>(pfn));
    block_order_[pfn] = static_cast<int8_t>(order);
    free_pages_ += 1ULL << order;
    pfn += 1ULL << order;
  }
}

uint32_t BuddyAllocator::AllocBlock(int order) {
  MAGESIM_PROF_SCOPE(buddy_alloc);
  assert(order >= 0 && order <= kMaxOrder);
  if (guard_ != nullptr) guard_->AssertHeld("buddy free lists (alloc)");
  last_op_work_ = 1;
  int o = order;
  while (o <= kMaxOrder && free_lists_[static_cast<size_t>(o)].empty()) {
    ++o;
    ++last_op_work_;
  }
  if (o > kMaxOrder) {
    return kNoBlock;
  }
  uint32_t pfn = free_lists_[static_cast<size_t>(o)].back();
  free_lists_[static_cast<size_t>(o)].pop_back();
  block_order_[pfn] = -1;
  // Split down to the requested order, returning upper halves to free lists.
  while (o > order) {
    --o;
    ++last_op_work_;
    uint32_t upper = pfn + (1u << o);
    free_lists_[static_cast<size_t>(o)].push_back(upper);
    block_order_[upper] = static_cast<int8_t>(o);
  }
  free_pages_ -= 1ULL << order;
  for (uint32_t i = 0; i < (1u << order); ++i) {
    PageFrame& f = pool_.frame(pfn + i);
    assert(f.state == PageFrame::State::kFree);
    f.state = PageFrame::State::kAllocated;
  }
  return pfn;
}

void BuddyAllocator::RemoveFromFreeList(uint32_t pfn, int order) {
  auto& list = free_lists_[static_cast<size_t>(order)];
  auto it = std::find(list.begin(), list.end(), pfn);
  assert(it != list.end());
  *it = list.back();
  list.pop_back();
  block_order_[pfn] = -1;
}

void BuddyAllocator::FreeBlock(uint32_t pfn, int order) {
  MAGESIM_PROF_SCOPE(buddy_free);
  assert(order >= 0 && order <= kMaxOrder);
  if (guard_ != nullptr) guard_->AssertHeld("buddy free lists (free)");
  last_op_work_ = 1;
  for (uint32_t i = 0; i < (1u << order); ++i) {
    PageFrame& f = pool_.frame(pfn + i);
    assert(f.state != PageFrame::State::kFree);
    f.state = PageFrame::State::kFree;
    f.vpn = kInvalidVpn;
    f.dirty = false;
  }
  free_pages_ += 1ULL << order;
  // Coalesce with free buddies.
  while (order < kMaxOrder) {
    uint32_t buddy = BuddyOf(pfn, order);
    if (buddy >= num_frames_ || block_order_[buddy] != order) {
      break;
    }
    RemoveFromFreeList(buddy, order);
    pfn = std::min(pfn, buddy);
    ++order;
    ++last_op_work_;
  }
  free_lists_[static_cast<size_t>(order)].push_back(pfn);
  block_order_[pfn] = static_cast<int8_t>(order);
}

PageFrame* BuddyAllocator::AllocPage() {
  uint32_t pfn = AllocBlock(0);
  return pfn == kNoBlock ? nullptr : &pool_.frame(pfn);
}

void BuddyAllocator::FreePage(PageFrame* f) { FreeBlock(f->pfn, 0); }

uint64_t BuddyAllocator::FreeListSize(int order) const {
  return free_lists_[static_cast<size_t>(order)].size();
}

std::vector<std::pair<uint32_t, int>> BuddyAllocator::FreeBlocks() const {
  std::vector<std::pair<uint32_t, int>> out;
  for (int o = 0; o <= kMaxOrder; ++o) {
    for (uint32_t pfn : free_lists_[static_cast<size_t>(o)]) {
      out.emplace_back(pfn, o);
    }
  }
  return out;
}

bool BuddyAllocator::CheckConsistency() const {
  uint64_t counted = 0;
  std::vector<bool> covered(num_frames_, false);
  for (int o = 0; o <= kMaxOrder; ++o) {
    for (uint32_t pfn : free_lists_[static_cast<size_t>(o)]) {
      if (block_order_[pfn] != o) return false;
      for (uint32_t i = 0; i < (1u << o); ++i) {
        if (pfn + i >= num_frames_) return false;
        if (covered[pfn + i]) return false;  // overlap
        if (pool_.frame(pfn + i).state != PageFrame::State::kFree) return false;
        covered[pfn + i] = true;
      }
      counted += 1ULL << o;
    }
  }
  return counted == free_pages_;
}

}  // namespace magesim
