// MAGE's three-level physical page allocator (§5.2):
//   1. per-core free-page caches for immediate, contention-free access;
//   2. a shared concurrent queue for batch transfers between cores;
//   3. the global buddy allocator as a fallback.
// Application threads (fault path) pull from their core cache and refill from
// the shared queue; eviction threads (reclaim path) push whole reclaimed
// batches straight into the shared queue, replenishing the fault path without
// ever touching the buddy lock in steady state.
#ifndef MAGESIM_MEM_MULTILAYER_ALLOCATOR_H_
#define MAGESIM_MEM_MULTILAYER_ALLOCATOR_H_

#include <deque>
#include <vector>

#include "src/mem/page_allocator.h"

namespace magesim {

class MultilayerAllocator : public PageAllocator {
 public:
  MultilayerAllocator(BuddyAllocator& buddy, int num_cores, AllocatorCosts costs = {},
                      int core_cache_batch = 32, int core_cache_high = 64);

  Task<PageFrame*> Alloc(CoreId core) override;
  Task<> Free(CoreId core, PageFrame* f) override;
  // Eviction-thread strategy: batch-push to the shared queue (one short
  // critical section per batch, not per page).
  Task<> FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) override;

  uint64_t global_free_pages() const override {
    return buddy_.free_pages() + shared_queue_.size();
  }
  const LockStats& lock_stats() const override { return queue_lock_.stats(); }
  const LockStats& buddy_lock_stats() const { return buddy_lock_.stats(); }
  void AppendCached(std::vector<PageFrame*>* out) const override;

  size_t shared_queue_size() const { return shared_queue_.size(); }
  size_t CoreCacheSize(CoreId core) const { return caches_[static_cast<size_t>(core)].size(); }

 private:
  BuddyAllocator& buddy_;
  AllocatorCosts costs_;
  int batch_;
  int high_;
  std::vector<std::vector<PageFrame*>> caches_;
  std::deque<PageFrame*> shared_queue_;
  SimMutex queue_lock_{"shared-queue"};
  SimMutex buddy_lock_{"buddy"};
};

}  // namespace magesim

#endif  // MAGESIM_MEM_MULTILAYER_ALLOCATOR_H_
