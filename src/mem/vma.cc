#include "src/mem/vma.h"

#include "src/analysis/guarded.h"
#include "src/sim/engine.h"

namespace magesim {

namespace {

const Vma* Lookup(const std::vector<Vma>& vmas, uint64_t vpn) {
  for (const Vma& v : vmas) {
    if (vpn >= v.start_vpn && vpn < v.end_vpn) return &v;
  }
  return nullptr;
}

}  // namespace

Task<const Vma*> LockedVmaSet::Find(uint64_t vpn) {
  auto g = co_await lock_.Scoped();
  co_await Delay{cs_ns_};
  MAGESIM_ASSERT_HELD(lock_, "vma tree walk");
  co_return Lookup(vmas_, vpn);
}

ShardedVmaSet::ShardedVmaSet(uint64_t total_vpns, int num_shards, SimTime cs_ns)
    : cs_ns_(cs_ns),
      vpns_per_shard_((total_vpns + static_cast<uint64_t>(num_shards) - 1) /
                      static_cast<uint64_t>(num_shards)) {
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<SimMutex>("vma-shard"));
  }
}

Task<const Vma*> ShardedVmaSet::Find(uint64_t vpn) {
  size_t shard = static_cast<size_t>(vpn / vpns_per_shard_) % shards_.size();
  auto g = co_await shards_[shard]->Scoped();
  co_await Delay{cs_ns_};
  MAGESIM_ASSERT_HELD(*shards_[shard], "vma shard walk");
  co_return Lookup(vmas_, vpn);
}

LockStats ShardedVmaSet::AggregateLockStats() const {
  LockStats agg;
  for (const auto& s : shards_) {
    agg.acquisitions += s->stats().acquisitions;
    agg.contended += s->stats().contended;
    agg.total_wait_ns += s->stats().total_wait_ns;
    agg.max_wait_ns = std::max(agg.max_wait_ns, s->stats().max_wait_ns);
  }
  return agg;
}

Task<const Vma*> NoVma::Find(uint64_t vpn) {
  co_return(vpn < vma_.end_vpn ? &vma_ : nullptr);
}

}  // namespace magesim
