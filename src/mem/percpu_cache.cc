#include "src/mem/percpu_cache.h"

#include "src/analysis/lock_analyzer.h"
#include "src/sim/engine.h"

namespace magesim {

PcpAllocator::PcpAllocator(BuddyAllocator& buddy, int num_cores, AllocatorCosts costs, int batch,
                           int high_watermark)
    : buddy_(buddy), costs_(costs), batch_(batch), high_(high_watermark) {
  caches_.resize(static_cast<size_t>(num_cores));
  buddy_.SetGuard(&buddy_lock_);
}

Task<PageFrame*> PcpAllocator::Alloc(CoreId core) {
  SimTime start = Engine::current().now();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->CheckCoreAffinity(core, "pcp cache fill");
  }
  auto& cache = caches_[static_cast<size_t>(core)];
  if (!cache.empty()) {
    co_await Delay{costs_.pcp_hit_ns};
    // Re-check after the suspension: another context on this core (e.g. a
    // prefetch task) may have drained the cache meanwhile.
    if (!cache.empty()) {
      PageFrame* f = cache.back();
      cache.pop_back();
      ChargeAlloc(Engine::current().now() - start);
      co_return f;
    }
  }
  // Refill a batch from the buddy allocator under its lock.
  {
    auto g = co_await buddy_lock_.Scoped();
    co_await Delay{costs_.buddy_cs_base_ns};
    for (int i = 0; i < batch_; ++i) {
      PageFrame* f = buddy_.AllocPage();
      if (f == nullptr) break;
      co_await Delay{costs_.pcp_move_per_page_ns};
      cache.push_back(f);
    }
  }
  if (cache.empty()) {
    ChargeAlloc(Engine::current().now() - start);
    co_return nullptr;
  }
  PageFrame* f = cache.back();
  cache.pop_back();
  ChargeAlloc(Engine::current().now() - start);
  co_return f;
}

Task<> PcpAllocator::Free(CoreId core, PageFrame* f) {
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->CheckCoreAffinity(core, "pcp cache spill");
  }
  auto& cache = caches_[static_cast<size_t>(core)];
  co_await Delay{costs_.pcp_hit_ns};
  cache.push_back(f);
  if (static_cast<int>(cache.size()) > high_) {
    auto g = co_await buddy_lock_.Scoped();
    co_await Delay{costs_.buddy_cs_base_ns};
    while (!cache.empty() && static_cast<int>(cache.size()) > high_ - batch_) {
      co_await Delay{costs_.pcp_move_per_page_ns};
      if (cache.empty()) break;  // drained during the per-page delay
      buddy_.FreePage(cache.back());
      cache.pop_back();
    }
  }
}

Task<> PcpAllocator::FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) {
  // Reclaim bypasses the pcp cache and frees straight to the buddy (as
  // Linux's release_pages does for reclaimed batches).
  auto g = co_await buddy_lock_.Scoped();
  co_await Delay{costs_.buddy_cs_base_ns};
  for (PageFrame* f : frames) {
    buddy_.FreePage(f);
    co_await Delay{costs_.buddy_cs_per_work_ns * buddy_.last_op_work()};
  }
}

void PcpAllocator::AppendCached(std::vector<PageFrame*>* out) const {
  for (const auto& cache : caches_) {
    out->insert(out->end(), cache.begin(), cache.end());
  }
}

GlobalMutexAllocator::GlobalMutexAllocator(BuddyAllocator& buddy, AllocatorCosts costs)
    : buddy_(buddy), costs_(costs) {
  buddy_.SetGuard(&mutex_);
}

Task<PageFrame*> GlobalMutexAllocator::Alloc(CoreId core) {
  SimTime start = Engine::current().now();
  PageFrame* f = nullptr;
  {
    auto g = co_await mutex_.Scoped();
    co_await Delay{costs_.global_mutex_cs_ns};
    f = buddy_.AllocPage();
  }
  ChargeAlloc(Engine::current().now() - start);
  co_return f;
}

Task<> GlobalMutexAllocator::Free(CoreId core, PageFrame* f) {
  auto g = co_await mutex_.Scoped();
  co_await Delay{costs_.global_mutex_cs_ns};
  buddy_.FreePage(f);
}

Task<> GlobalMutexAllocator::FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) {
  auto g = co_await mutex_.Scoped();
  for (PageFrame* f : frames) {
    co_await Delay{costs_.global_mutex_cs_ns / 2};  // batched frees amortize
    buddy_.FreePage(f);
  }
}

}  // namespace magesim
