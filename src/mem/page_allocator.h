// Local physical-page allocation strategies (§3.3.3, §4.2.3).
//
// PageAllocator is the interface the paging paths use to circulate frames
// between free and used states. The three concrete strategies model the
// systems compared in the paper:
//  * PcpAllocator        — Linux: per-CPU page caches over a global buddy lock
//                          (Hermit, MageLnx's starting point).
//  * GlobalMutexAllocator— DiLOS: every alloc/free takes one global sleepable
//                          mutex on the physical allocator (§3.2).
//  * MultilayerAllocator — MAGE: per-core cache -> shared concurrent queue ->
//                          buddy fallback (§5.2), with different strategies
//                          for application vs. eviction threads.
#ifndef MAGESIM_MEM_PAGE_ALLOCATOR_H_
#define MAGESIM_MEM_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/hw/topology.h"
#include "src/mem/buddy_allocator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {

struct AllocatorCosts {
  SimTime buddy_cs_base_ns = 250;      // global buddy lock critical section
  SimTime buddy_cs_per_work_ns = 40;   // per split/merge/list operation
  SimTime pcp_hit_ns = 25;             // lockless per-CPU cache hit
  SimTime pcp_move_per_page_ns = 30;   // moving one page cache<->buddy
  SimTime shared_queue_cs_ns = 70;     // MAGE concurrent-queue batch op
  SimTime global_mutex_cs_ns = 280;    // DiLOS per-op mutex hold time
};

class PageAllocator {
 public:
  virtual ~PageAllocator() = default;

  // Grabs one free frame for `core`, or nullptr if none is available anywhere.
  // May suspend on allocator locks.
  virtual Task<PageFrame*> Alloc(CoreId core) = 0;

  // Returns one frame.
  virtual Task<> Free(CoreId core, PageFrame* f) = 0;

  // Returns a batch of frames (the eviction path reclaims whole batches).
  virtual Task<> FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) = 0;

  // Globally visible free pages (what watermark logic sees). Per-core caches
  // are intentionally excluded, as in Linux.
  virtual uint64_t global_free_pages() const = 0;

  // Contention on the allocator's shared lock(s).
  virtual const LockStats& lock_stats() const = 0;

  // Appends every frame currently parked in this allocator's caches/queues
  // (i.e. free-for-reuse but invisible to the buddy allocator). Used by the
  // invariant checker's frame-ownership census; zero simulated cost.
  virtual void AppendCached(std::vector<PageFrame*>* out) const {}

  // Cumulative simulated time spent inside Alloc() across all callers
  // (the "mem circulation" component of the fault-latency breakdowns).
  SimTime alloc_time_total() const { return alloc_time_total_; }
  uint64_t allocs() const { return allocs_; }

 protected:
  void ChargeAlloc(SimTime t) {
    alloc_time_total_ += t;
    ++allocs_;
  }

 private:
  SimTime alloc_time_total_ = 0;
  uint64_t allocs_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_MEM_PAGE_ALLOCATOR_H_
