#include "src/mem/multilayer_allocator.h"

#include "src/analysis/guarded.h"
#include "src/analysis/lock_analyzer.h"
#include "src/sim/engine.h"

namespace magesim {

MultilayerAllocator::MultilayerAllocator(BuddyAllocator& buddy, int num_cores,
                                         AllocatorCosts costs, int core_cache_batch,
                                         int core_cache_high)
    : buddy_(buddy), costs_(costs), batch_(core_cache_batch), high_(core_cache_high) {
  caches_.resize(static_cast<size_t>(num_cores));
  buddy_.SetGuard(&buddy_lock_);
}

Task<PageFrame*> MultilayerAllocator::Alloc(CoreId core) {
  SimTime start = Engine::current().now();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->CheckCoreAffinity(core, "core cache fill");
  }
  auto& cache = caches_[static_cast<size_t>(core)];
  if (!cache.empty()) {
    co_await Delay{costs_.pcp_hit_ns};
    // Re-check: a prefetch task sharing this core may have drained the cache
    // while we were suspended.
    if (!cache.empty()) {
      PageFrame* f = cache.back();
      cache.pop_back();
      f->state = PageFrame::State::kAllocated;
      ChargeAlloc(Engine::current().now() - start);
      co_return f;
    }
  }
  // Level 2: batch-pop from the shared concurrent queue. The critical section
  // is one pointer-range splice, independent of batch size.
  {
    auto g = co_await queue_lock_.Scoped();
    co_await Delay{costs_.shared_queue_cs_ns};
    MAGESIM_ASSERT_HELD(queue_lock_, "shared queue (refill pop)");
    for (int i = 0; i < batch_ && !shared_queue_.empty(); ++i) {
      cache.push_back(shared_queue_.front());
      shared_queue_.pop_front();
    }
  }
  if (!cache.empty()) {
    PageFrame* f = cache.back();
    cache.pop_back();
    f->state = PageFrame::State::kAllocated;
    ChargeAlloc(Engine::current().now() - start);
    co_return f;
  }
  // Level 3: buddy fallback (cold start or eviction falling behind).
  {
    auto g = co_await buddy_lock_.Scoped();
    co_await Delay{costs_.buddy_cs_base_ns};
    for (int i = 0; i < batch_; ++i) {
      PageFrame* f = buddy_.AllocPage();
      if (f == nullptr) break;
      co_await Delay{costs_.pcp_move_per_page_ns};
      cache.push_back(f);
    }
  }
  PageFrame* f = nullptr;
  if (!cache.empty()) {
    f = cache.back();
    cache.pop_back();
    f->state = PageFrame::State::kAllocated;
  }
  ChargeAlloc(Engine::current().now() - start);
  co_return f;
}

Task<> MultilayerAllocator::Free(CoreId core, PageFrame* f) {
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->CheckCoreAffinity(core, "core cache spill");
  }
  auto& cache = caches_[static_cast<size_t>(core)];
  co_await Delay{costs_.pcp_hit_ns};
  cache.push_back(f);
  if (static_cast<int>(cache.size()) > high_) {
    auto g = co_await queue_lock_.Scoped();
    co_await Delay{costs_.shared_queue_cs_ns};
    MAGESIM_ASSERT_HELD(queue_lock_, "shared queue (spill push)");
    // Size re-checked each step: concurrent Allocs on this core may have
    // drained the cache while we held the queue lock.
    while (!cache.empty() && static_cast<int>(cache.size()) > high_ - batch_) {
      shared_queue_.push_back(cache.back());
      cache.pop_back();
    }
  }
}

Task<> MultilayerAllocator::FreeBatch(CoreId core, const std::vector<PageFrame*>& frames) {
  auto g = co_await queue_lock_.Scoped();
  co_await Delay{costs_.shared_queue_cs_ns};
  MAGESIM_ASSERT_HELD(queue_lock_, "shared queue (reclaim batch push)");
  for (PageFrame* f : frames) {
    f->state = PageFrame::State::kFree;
    f->vpn = kInvalidVpn;
    f->dirty = false;
    shared_queue_.push_back(f);
  }
}

void MultilayerAllocator::AppendCached(std::vector<PageFrame*>* out) const {
  for (const auto& cache : caches_) {
    out->insert(out->end(), cache.begin(), cache.end());
  }
  out->insert(out->end(), shared_queue_.begin(), shared_queue_.end());
}

}  // namespace magesim
