#include "src/check/invariant_checker.h"

#include <cinttypes>
#include <cstdio>

#include "src/analysis/lock_analyzer.h"
#include "src/fleet/fleet.h"
#include "src/resilience/resilient_rdma.h"
#include "src/sim/engine.h"
#include "src/tenancy/memcg.h"

namespace magesim {

namespace {

// Where the ownership census last saw a frame.
enum class Owner : uint8_t { kNone, kBuddy, kCache, kPte };

const char* OwnerName(Owner o) {
  switch (o) {
    case Owner::kNone: return "nobody";
    case Owner::kBuddy: return "buddy free list";
    case Owner::kCache: return "allocator cache";
    case Owner::kPte: return "present PTE";
  }
  return "?";
}

std::string Describe(const char* fmt, uint64_t a) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, a);
  return buf;
}

std::string Describe(const char* fmt, uint64_t a, uint64_t b) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

const char* ViolationClassName(ViolationClass c) {
  switch (c) {
    case ViolationClass::kPteFrameMismatch: return "pte_frame_mismatch";
    case ViolationClass::kFrameAliased: return "frame_aliased";
    case ViolationClass::kBuddyCorruption: return "buddy_corruption";
    case ViolationClass::kBuddyNotCoalesced: return "buddy_not_coalesced";
    case ViolationClass::kAccountingLeak: return "accounting_leak";
    case ViolationClass::kEvictFaultOverlap: return "evict_fault_overlap";
    case ViolationClass::kFrameLeak: return "frame_leak";
    case ViolationClass::kStaleRemoteRead: return "stale_remote_read";
    case ViolationClass::kTransitLeak: return "transit_leak";
    case ViolationClass::kStuckFault: return "stuck_fault";
    case ViolationClass::kLockQuiescence: return "lock_quiescence";
    case ViolationClass::kTenantCharge: return "tenant_charge";
    case ViolationClass::kFleetReplica: return "fleet_replica";
    case ViolationClass::kNumClasses: break;
  }
  return "unknown";
}

InvariantChecker::InvariantChecker(Kernel& kernel, const TraceRingBuffer* recent,
                                   InvariantCheckerOptions opts)
    : kernel_(kernel), recent_(recent), opts_(opts) {}

void InvariantChecker::Add(ViolationClass cls, uint64_t vpn, uint64_t pfn, std::string msg) {
  if (!seen_.emplace(static_cast<uint8_t>(cls), vpn, pfn).second) return;
  ++total_violations_;
  if (violations_.size() >= opts_.max_recorded) return;
  if (recent_ != nullptr && (vpn != kTraceNoPage || pfn != kTraceNoFrame)) {
    for (const TraceEvent& e : recent_->LastTouching(vpn, pfn, opts_.trace_context)) {
      msg += "\n      ";
      msg += FormatTraceEvent(e);
    }
  }
  violations_.push_back(Violation{cls, vpn, pfn, std::move(msg)});
}

size_t InvariantChecker::CheckNow() {
  ++checks_run_;
  uint64_t before = total_violations_;

  FramePool& pool = kernel_.frame_pool();
  PageTable& pt = kernel_.page_table();
  BuddyAllocator& buddy = kernel_.buddy();
  uint64_t num_frames = pool.size();

  // --- Rule 2: buddy internal consistency + coalescing ---
  if (!buddy.CheckConsistency()) {
    Add(ViolationClass::kBuddyCorruption, kTraceNoPage, kTraceNoFrame,
        "buddy free lists inconsistent (overlapping blocks, stale block "
        "orders, non-free frames on a free list, or free_pages drift)");
  }
  std::vector<std::pair<uint32_t, int>> blocks = buddy.FreeBlocks();
  std::set<std::pair<uint32_t, int>> block_set(blocks.begin(), blocks.end());
  for (const auto& [pfn, order] : blocks) {
    if (order >= BuddyAllocator::kMaxOrder) continue;
    uint32_t sibling = pfn ^ (1u << order);
    if (pfn < sibling && block_set.count({sibling, order}) > 0) {
      Add(ViolationClass::kBuddyNotCoalesced, kTraceNoPage, pfn,
          Describe("buddy pair pfn=%" PRIu64 "/+%" PRIu64
                   " both free at the same order without merging",
                   pfn, static_cast<uint64_t>(sibling)));
    }
  }

  // --- Ownership census: who holds each frame right now ---
  std::vector<Owner> owner(num_frames, Owner::kNone);
  auto claim = [&](uint32_t pfn, Owner who) {
    if (owner[pfn] != Owner::kNone) {
      Add(ViolationClass::kFrameAliased, kTraceNoPage, pfn,
          std::string("frame owned twice: ") + OwnerName(owner[pfn]) + " and " +
              OwnerName(who) + Describe(" (pfn=%" PRIu64 ")", pfn));
      return false;
    }
    owner[pfn] = who;
    return true;
  };
  for (const auto& [start, order] : blocks) {
    for (uint32_t i = 0; i < (1u << order); ++i) {
      uint32_t pfn = start + i;
      if (pfn >= num_frames) break;  // CheckConsistency already flagged it
      claim(pfn, Owner::kBuddy);
      if (pool.frame(pfn).state != PageFrame::State::kFree) {
        Add(ViolationClass::kBuddyCorruption, kTraceNoPage, pfn,
            Describe("pfn=%" PRIu64 " is on a buddy free list but not in "
                     "state kFree", pfn));
      }
    }
  }
  std::vector<PageFrame*> cached;
  kernel_.allocator().AppendCached(&cached);
  for (PageFrame* f : cached) {
    claim(f->pfn, Owner::kCache);
    if (f->state != PageFrame::State::kFree && f->state != PageFrame::State::kAllocated) {
      Add(ViolationClass::kFrameAliased, f->vpn, f->pfn,
          Describe("pfn=%" PRIu64 " sits in an allocator cache while "
                   "mapped/isolated (vpn=%" PRIu64 ")", f->pfn, f->vpn));
    }
    if (f->linked()) {
      Add(ViolationClass::kAccountingLeak, f->vpn, f->pfn,
          Describe("pfn=%" PRIu64 " sits in an allocator cache but is still "
                   "linked into accounting list %" PRIu64, f->pfn,
                   static_cast<uint64_t>(f->lru_list)));
    }
  }

  // --- Rule 1: present PTE <-> frame bijection ---
  uint64_t present = 0;
  for (uint64_t vpn = 0; vpn < pt.num_pages(); ++vpn) {
    const Pte& pte = pt.At(vpn);
    if (!pte.present) continue;
    ++present;
    if (pte.frame == nullptr) {
      Add(ViolationClass::kPteFrameMismatch, vpn, kTraceNoFrame,
          Describe("vpn=%" PRIu64 " is present with a null frame", vpn));
      continue;
    }
    const PageFrame& f = *pte.frame;
    claim(f.pfn, Owner::kPte);
    if (f.vpn != vpn) {
      Add(ViolationClass::kPteFrameMismatch, vpn, f.pfn,
          Describe("vpn=%" PRIu64 " maps a frame that points back at vpn=%" PRIu64, vpn,
                   f.vpn));
    }
    if (f.state != PageFrame::State::kMapped && f.state != PageFrame::State::kIsolated) {
      Add(ViolationClass::kPteFrameMismatch, vpn, f.pfn,
          Describe("vpn=%" PRIu64 " maps pfn=%" PRIu64
                   " whose state is neither kMapped nor kIsolated", vpn, f.pfn));
    }
    // Rule 4: a frame an evictor isolated must not belong to an in-flight
    // fault — dedup guarantees faults never complete on a page an eviction
    // batch is concurrently tearing down.
    if (f.state == PageFrame::State::kIsolated && pte.fault_in_flight) {
      Add(ViolationClass::kEvictFaultOverlap, vpn, f.pfn,
          Describe("vpn=%" PRIu64 " (pfn=%" PRIu64
                   ") is in an eviction batch while a fault is in flight", vpn, f.pfn));
    }
  }
  if (present != pt.mapped_pages()) {
    Add(ViolationClass::kPteFrameMismatch, kTraceNoPage, kTraceNoFrame,
        Describe("page table reports %" PRIu64 " mapped pages but %" PRIu64
                 " PTEs are present", pt.mapped_pages(), present));
  }

  // --- Rules 3 + 5: frame walk (accounting sync, leaks, stale refaults) ---
  uint64_t linked = 0;
  for (uint64_t i = 0; i < num_frames; ++i) {
    const PageFrame& f = pool.frame(static_cast<uint32_t>(i));
    uint32_t pfn = f.pfn;
    if (f.linked()) {
      ++linked;
      if (f.state != PageFrame::State::kMapped) {
        Add(ViolationClass::kAccountingLeak, f.vpn, pfn,
            Describe("pfn=%" PRIu64 " is linked into accounting but not mapped "
                     "(vpn=%" PRIu64 ")", pfn, f.vpn));
        continue;
      }
    }
    switch (f.state) {
      case PageFrame::State::kFree:
        if (owner[pfn] == Owner::kNone) {
          Add(ViolationClass::kFrameLeak, kTraceNoPage, pfn,
              Describe("pfn=%" PRIu64 " is free but owned by no allocator (leaked)",
                       pfn));
        }
        break;
      case PageFrame::State::kAllocated:
        // In transit between Alloc and Map inside a fault (or parked in a
        // cache, already claimed above); never resident, never linked.
        if (f.linked()) {
          Add(ViolationClass::kAccountingLeak, f.vpn, pfn,
              Describe("pfn=%" PRIu64 " is merely allocated yet linked into accounting",
                       pfn));
        }
        break;
      case PageFrame::State::kMapped: {
        bool backed = f.vpn != kInvalidVpn && f.vpn < pt.num_pages() &&
                      pt.At(f.vpn).present && pt.At(f.vpn).frame == &f;
        if (!backed) {
          Add(ViolationClass::kPteFrameMismatch, f.vpn, pfn,
              Describe("pfn=%" PRIu64 " claims to be mapped at vpn=%" PRIu64
                       " but that PTE does not map it", pfn, f.vpn));
        } else if (!f.linked() && !pt.At(f.vpn).fault_in_flight) {
          // A mapped page outside accounting is only legal while its fault
          // (or prefetch) is still completing the Insert.
          Add(ViolationClass::kAccountingLeak, f.vpn, pfn,
              Describe("vpn=%" PRIu64 " (pfn=%" PRIu64 ") is resident but "
                       "missing from the accounting lists", f.vpn, pfn));
        }
        break;
      }
      case PageFrame::State::kIsolated:
        // Inside an eviction batch: owned by the evictor, not by any census
        // owner. Rule 4 handled the still-present case above.
        if (opts_.check_stale_remote_reads && f.dirty && f.vpn != kInvalidVpn &&
            f.vpn < pt.num_pages() && !pt.At(f.vpn).present &&
            pt.At(f.vpn).fault_in_flight && !kernel_.remote_valid(f.vpn)) {
          Add(ViolationClass::kStaleRemoteRead, f.vpn, pfn,
              Describe("vpn=%" PRIu64 " is refaulting while its dirty victim "
                       "(pfn=%" PRIu64 ") has not been written back", f.vpn, pfn));
        }
        break;
    }
  }
  if (linked != kernel_.accounting().tracked_pages()) {
    Add(ViolationClass::kAccountingLeak, kTraceNoPage, kTraceNoFrame,
        Describe("accounting tracks %" PRIu64 " pages but %" PRIu64
                 " frames are linked", kernel_.accounting().tracked_pages(), linked));
  }

  // --- Resilience rule: frames in transit are bounded by in-flight faults ---
  // Each non-present in-flight fault (demand or prefetch) holds at most one
  // kAllocated frame between Alloc and Map. A retry/poison/abandon path that
  // bails out without freeing its frame pushes the transit count above the
  // in-flight count — a leak no single-frame rule can see, because any
  // individual transit frame looks legitimate.
  uint64_t transit = 0;
  for (uint64_t i = 0; i < num_frames; ++i) {
    const PageFrame& f = pool.frame(static_cast<uint32_t>(i));
    if (f.state == PageFrame::State::kAllocated && owner[f.pfn] == Owner::kNone) {
      ++transit;
    }
  }
  uint64_t inflight = 0;
  for (uint64_t vpn = 0; vpn < pt.num_pages(); ++vpn) {
    const Pte& pte = pt.At(vpn);
    if (pte.fault_in_flight && !pte.present) ++inflight;
  }
  if (transit > inflight) {
    Add(ViolationClass::kTransitLeak, kTraceNoPage, kTraceNoFrame,
        Describe("%" PRIu64 " frames are in transit (kAllocated, unowned) but "
                 "only %" PRIu64 " faults are in flight: a failed remote op "
                 "leaked its frame", transit, inflight));
  }

  CheckTenantCharges();
  CheckFleetReplicas();

  return static_cast<size_t>(total_violations_ - before);
}

size_t InvariantChecker::CheckFleetReplicas() {
  ResilienceManager* res = kernel_.resilience();
  FleetManager* fleet = res != nullptr ? res->fleet() : nullptr;
  if (fleet == nullptr) return 0;
  uint64_t before = total_violations_;

  PageTable& pt = kernel_.page_table();
  for (uint64_t vpn = 0; vpn < pt.num_pages(); ++vpn) {
    if (pt.At(vpn).present) continue;
    uint64_t slot = kernel_.FleetSlotOf(vpn);
    if (!fleet->HasLiveCopy(slot) && !fleet->IsLostReported(slot)) {
      Add(ViolationClass::kFleetReplica, vpn, kTraceNoFrame,
          Describe("vpn=%" PRIu64 " lives remotely in slot %" PRIu64
                   " which has no live replica and was never surfaced as lost",
                   vpn, slot));
    }
  }
  uint64_t silent = fleet->CheckConsistency();
  if (silent != 0) {
    Add(ViolationClass::kFleetReplica, kTraceNoPage, kTraceNoFrame,
        Describe("fleet replica table holds %" PRIu64
                 " slot(s) with zero live copies and no loss report", silent));
  }
  return static_cast<size_t>(total_violations_ - before);
}

size_t InvariantChecker::CheckTenantCharges() {
  TenancyManager* ten = kernel_.tenancy();
  if (ten == nullptr || ten->num_tenants() == 0) return 0;
  uint64_t before = total_violations_;

  PageTable& pt = kernel_.page_table();
  std::vector<uint64_t> resident(static_cast<size_t>(ten->num_tenants()), 0);
  uint64_t total_resident = 0;
  for (uint64_t vpn = 0; vpn < pt.num_pages(); ++vpn) {
    bool present = pt.At(vpn).present;
    int charged = ten->charged_tenant(vpn);
    if (present) {
      ++total_resident;
      int owner = ten->TenantOf(vpn);
      if (owner >= 0 && owner < ten->num_tenants()) ++resident[static_cast<size_t>(owner)];
      if (charged < 0) {
        Add(ViolationClass::kTenantCharge, vpn, kTraceNoFrame,
            Describe("vpn=%" PRIu64 " is resident but charged to no tenant", vpn));
      } else if (charged != owner) {
        Add(ViolationClass::kTenantCharge, vpn, kTraceNoFrame,
            Describe("vpn=%" PRIu64 " is charged to tenant %" PRIu64
                     " but its vpn window belongs to another tenant",
                     vpn, static_cast<uint64_t>(charged)));
      }
    } else if (charged >= 0) {
      Add(ViolationClass::kTenantCharge, vpn, kTraceNoFrame,
          Describe("vpn=%" PRIu64 " is not resident but still charged to tenant %" PRIu64,
                   vpn, static_cast<uint64_t>(charged)));
    }
  }
  for (int t = 0; t < ten->num_tenants(); ++t) {
    uint64_t usage = ten->cgroup(t).usage();
    if (usage != resident[static_cast<size_t>(t)]) {
      Add(ViolationClass::kTenantCharge, kTraceNoPage, kTraceNoFrame,
          Describe("tenant %" PRIu64 " cgroup usage %" PRIu64
                   " disagrees with its resident page count",
                   static_cast<uint64_t>(t), usage));
    }
  }
  if (ten->root().usage() != total_resident) {
    Add(ViolationClass::kTenantCharge, kTraceNoPage, kTraceNoFrame,
        Describe("root cgroup usage %" PRIu64 " disagrees with %" PRIu64
                 " total resident pages", ten->root().usage(), total_resident));
  }
  if (ten->double_charges() != 0) {
    Add(ViolationClass::kTenantCharge, kTraceNoPage, kTraceNoFrame,
        Describe("%" PRIu64 " double charges observed (a vpn charged while "
                 "already charged)", ten->double_charges()));
  }
  if (ten->missing_uncharges() != 0) {
    Add(ViolationClass::kTenantCharge, kTraceNoPage, kTraceNoFrame,
        Describe("%" PRIu64 " uncharges observed for vpns that were not "
                 "charged", ten->missing_uncharges()));
  }
  return static_cast<size_t>(total_violations_ - before);
}

size_t InvariantChecker::CheckQuiescent() {
  uint64_t before = total_violations_;
  CheckNow();

  PageTable& pt = kernel_.page_table();
  for (uint64_t vpn = 0; vpn < pt.num_pages(); ++vpn) {
    if (pt.At(vpn).fault_in_flight) {
      Add(ViolationClass::kStuckFault, vpn, kTraceNoFrame,
          Describe("vpn=%" PRIu64 " still has fault_in_flight at quiescence: "
                   "some path bailed out without EndFault", vpn));
    }
  }

  // With no faults in flight, every unowned kAllocated frame is a leak.
  FramePool& pool = kernel_.frame_pool();
  std::vector<PageFrame*> cached;
  kernel_.allocator().AppendCached(&cached);
  std::vector<bool> in_cache(pool.size(), false);
  for (PageFrame* f : cached) in_cache[f->pfn] = true;
  for (uint64_t i = 0; i < pool.size(); ++i) {
    const PageFrame& f = pool.frame(static_cast<uint32_t>(i));
    if (f.state == PageFrame::State::kAllocated && !in_cache[f.pfn]) {
      Add(ViolationClass::kTransitLeak, f.vpn, f.pfn,
          Describe("pfn=%" PRIu64 " is still kAllocated at quiescence "
                   "(last vpn=%" PRIu64 "): leaked in transit", f.pfn, f.vpn));
    }
  }

  CheckLockQuiescence();

  return static_cast<size_t>(total_violations_ - before);
}

size_t InvariantChecker::CheckLockQuiescence() {
  LockAnalyzer* la = LockAnalyzer::Get();
  if (la == nullptr) return 0;
  std::vector<std::string> held = la->QuiescenceReport();
  if (held.empty()) return 0;
  // One aggregated violation naming every offending lock: the lines are
  // task-dependent free text, so folding them keeps the (class, vpn, pfn)
  // dedup key meaningful.
  std::string msg = "lock state not quiescent at drain:";
  for (const std::string& line : held) {
    msg += "\n      ";
    msg += line;
  }
  Add(ViolationClass::kLockQuiescence, kTraceNoPage, kTraceNoFrame, std::move(msg));
  return 1;
}

Task<> InvariantChecker::PeriodicMain(SimTime interval) {
  Engine& eng = Engine::current();
  while (!eng.shutdown_requested()) {
    co_await Delay{interval};
    if (eng.shutdown_requested()) break;
    CheckNow();
  }
}

std::string InvariantChecker::Report() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "invariant checks: %" PRIu64 " runs, %" PRIu64 " violations",
                checks_run_, total_violations_);
  std::string s = buf;
  std::array<uint64_t, static_cast<size_t>(ViolationClass::kNumClasses)> per_class{};
  for (const Violation& v : violations_) {
    ++per_class[static_cast<size_t>(v.cls)];
  }
  for (size_t c = 0; c < per_class.size(); ++c) {
    if (per_class[c] == 0) continue;
    std::snprintf(buf, sizeof(buf), "\n  %s: %" PRIu64,
                  ViolationClassName(static_cast<ViolationClass>(c)), per_class[c]);
    s += buf;
  }
  for (const Violation& v : violations_) {
    s += "\n  [";
    s += ViolationClassName(v.cls);
    s += "] ";
    s += v.message;
  }
  return s;
}

}  // namespace magesim
