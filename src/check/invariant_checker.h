// Cross-layer invariant checking for a running Kernel.
//
// The checker walks the page table, frame pool, buddy allocator, per-core
// allocator caches and accounting lists and cross-validates them:
//   1. Every present PTE maps a live frame exactly once (pfn referenced by at
//      most one PTE, frame->vpn points back, frame state is kMapped — or
//      kIsolated during the legal isolate->unmap window of an eviction batch).
//   2. Buddy free lists are non-overlapping, state-consistent and fully
//      coalesced (no buddy pair both free at the same order).
//   3. Accounting lists contain exactly the resident pages: every linked frame
//      is mapped, and every mapped frame is either linked or still completing
//      its fault-path Insert (PTE fault_in_flight set).
//   4. No eviction batch holds a page concurrently being faulted in
//      (frame isolated while its still-present PTE has fault_in_flight).
//   5. Frame ownership census: every frame is owned by exactly one of
//      {buddy free lists, allocator caches, a present PTE}, or is legitimately
//      in transit (kAllocated inside a fault, kIsolated inside an eviction
//      batch). Free frames owned by nobody are leaks.
//
// Because the simulation suspends only at co_await points, every rule above
// holds at *every* event boundary, not just at quiescence — the checker can
// run at arbitrary sim-time intervals (PeriodicMain) without false positives.
// Violations carry the offending page/frame plus the last N trace events that
// touched them (when a TraceRingBuffer is attached).
#ifndef MAGESIM_CHECK_INVARIANT_CHECKER_H_
#define MAGESIM_CHECK_INVARIANT_CHECKER_H_

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/paging/kernel.h"
#include "src/trace/trace.h"

namespace magesim {

enum class ViolationClass : uint8_t {
  kPteFrameMismatch,   // present PTE <-> frame bijection broken
  kFrameAliased,       // one frame reachable from two owners
  kBuddyCorruption,    // buddy free lists overlapping / state mismatch
  kBuddyNotCoalesced,  // buddy pair both free at the same order
  kAccountingLeak,     // LRU/FIFO lists out of sync with residency
  kEvictFaultOverlap,  // eviction batch holds a page being faulted in
  kFrameLeak,          // frame owned by nobody in an inexplicable state
  kStaleRemoteRead,    // (opt-in) refault racing an unfinished writeback
  kTransitLeak,        // more in-transit frames than in-flight faults
  kStuckFault,         // (quiescent only) fault_in_flight never cleared
  kLockQuiescence,     // (quiescent only) a sim lock is still held at drain
  kTenantCharge,       // memcg charges out of sync with residency
  kFleetReplica,       // fleet slot silently lost / unreachable remote page
  kNumClasses,
};

const char* ViolationClassName(ViolationClass c);

struct Violation {
  ViolationClass cls;
  uint64_t vpn;  // kTraceNoPage if not page-specific
  uint64_t pfn;  // kTraceNoFrame if not frame-specific
  std::string message;
};

struct InvariantCheckerOptions {
  // Refaulting a dirty page whose writeback has not completed reads a stale
  // remote copy. The current eviction model tolerates this race (the refault
  // observes the still-valid local data semantics the DES abstracts away), so
  // the rule is off by default; turn it on to audit a stricter model.
  bool check_stale_remote_reads = false;
  size_t trace_context = 6;   // trace events attached per violation
  size_t max_recorded = 64;   // stored Violation cap (counting continues)
};

class InvariantChecker {
 public:
  // `recent` (optional, not owned) supplies per-violation trace context.
  explicit InvariantChecker(Kernel& kernel, const TraceRingBuffer* recent = nullptr,
                            InvariantCheckerOptions opts = {});

  // Runs every rule once against the current state. Returns the number of
  // violations not already reported by an earlier check (deduplicated by
  // (class, vpn, pfn)).
  size_t CheckNow();

  // Strict end-of-run check for workloads that ran to natural completion
  // (engine drained, nothing parked mid-fault): everything CheckNow verifies,
  // plus "no fault left in flight" and "no frame left in transit" — the
  // resilience invariant that a mid-fault RDMA failure (retry, poison, or
  // prefetch abandon) never strands a frame or a PTE. Not valid after a
  // time-limit shutdown, which legally parks coroutines mid-fault.
  size_t CheckQuiescent();

  // With a TenancyManager attached to the kernel, cross-validates per-tenant
  // memcg charges against residency: every present PTE is charged to exactly
  // the tenant owning its vpn window, no absent page stays charged, per-leaf
  // charge counts equal each cgroup's usage, and the root usage equals total
  // resident pages. Runs as part of CheckNow; no-op without tenancy.
  size_t CheckTenantCharges();

  // With a memory-server fleet attached, verifies the replica-safety rule:
  // every non-present page (its data lives remotely) resolves to a slot with
  // at least one live replica, or the slot has been surfaced as lost — and
  // the fleet's own table contains no silently-lost slot. Runs as part of
  // CheckNow; no-op without a fleet.
  size_t CheckFleetReplicas();

  // When a LockAnalyzer is installed, verifies its lock state is quiescent
  // (no task still holds any sim lock). Runs as part of CheckQuiescent; no-op
  // without an installed analyzer.
  size_t CheckLockQuiescence();

  // Re-checks every `interval` ns of simulated time until shutdown.
  Task<> PeriodicMain(SimTime interval);

  uint64_t checks_run() const { return checks_run_; }
  uint64_t total_violations() const { return total_violations_; }
  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return total_violations_ == 0; }

  // Human-readable summary: per-class counts plus the recorded messages.
  std::string Report() const;

 private:
  void Add(ViolationClass cls, uint64_t vpn, uint64_t pfn, std::string msg);

  Kernel& kernel_;
  const TraceRingBuffer* recent_;
  InvariantCheckerOptions opts_;

  uint64_t checks_run_ = 0;
  uint64_t total_violations_ = 0;
  std::vector<Violation> violations_;
  std::set<std::tuple<uint8_t, uint64_t, uint64_t>> seen_;
};

}  // namespace magesim

#endif  // MAGESIM_CHECK_INVARIANT_CHECKER_H_
