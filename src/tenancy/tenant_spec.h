// Tenant specifications: the user-facing description of a multi-tenant run.
//
// A tenant spec names one memory control group and the workload that runs
// inside it:
//
//   name:weight:limit[:soft]:qos=workload[/threads][,key=val...]
//
//   name    cgroup name (unique per run)
//   weight  eviction-share weight (positive integer; victim selection is
//           weighted round-robin proportional to this)
//   limit   hard local-memory limit as a fraction of local DRAM pages
//           ("0.4") or a percentage ("40"); 0 = no hard limit
//   soft    optional soft limit (same units); defaults to 0.9 * limit
//   qos     latency | normal | batch
//   workload  a name from the workload registry, optionally with a thread
//             count ("gups/4") and workload options ("pages=4096,passes=8")
//
// Example: two tenants, a protected scanner and a thrashing GUPS neighbor:
//
//   lat:4:0.4:latency=seqscan/2,pages=4096,passes=64;bg:1:0.8:batch=gups/2
//
// Specs arrive via Options::tenancy, the MAGESIM_TENANCY environment
// variable (';'-separated list), or repeated --tenant CLI flags.
#ifndef MAGESIM_TENANCY_TENANT_SPEC_H_
#define MAGESIM_TENANCY_TENANT_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace magesim {

enum class QosClass : uint8_t {
  kLatency,  // evicted last, prefetcher priority
  kNormal,
  kBatch,    // absorbs eviction backpressure first
};

const char* QosClassName(QosClass q);
bool ParseQosClass(const std::string& s, QosClass* out);

struct TenantSpec {
  std::string name;
  uint32_t weight = 1;
  double hard_frac = 0;  // fraction of local DRAM pages; 0 = unlimited
  double soft_frac = 0;  // 0 = derive as 0.9 * hard_frac
  QosClass qos = QosClass::kNormal;

  // Workload to run inside the cgroup (a registry name).
  std::string workload;
  int threads = 0;  // 0 = workload default
  std::map<std::string, std::string> workload_opts;

  // Resolved placement, filled by MultiTenantWorkload::Build: the tenant owns
  // vpns [vpn_base, vpn_base + vpn_pages) and global thread ids
  // [thread_begin, thread_end).
  uint64_t vpn_base = 0;
  uint64_t vpn_pages = 0;
  int thread_begin = 0;
  int thread_end = 0;

  bool resolved() const { return vpn_pages > 0; }
};

struct TenancyOptions {
  bool enabled = false;
  std::vector<TenantSpec> tenants;
};

// Parses one "name:weight:limit[:soft]:qos=workload[/threads][,k=v...]"
// spec. Returns false (with a message in *err) on malformed input.
bool ParseTenantSpec(const std::string& s, TenantSpec* out, std::string* err);

// Parses a ';'-separated spec list (the MAGESIM_TENANCY format) into
// `out->tenants` and sets `out->enabled`. Validates name uniqueness.
bool ParseTenancyList(const std::string& s, TenancyOptions* out, std::string* err);

}  // namespace magesim

#endif  // MAGESIM_TENANCY_TENANT_SPEC_H_
