// Memory control groups: hierarchical per-tenant accounting of resident
// pages, hard/soft local-memory limits, and per-tenant watermarks.
//
// Every page the kernel maps is charged to exactly one leaf cgroup (the
// tenant owning its vpn range) and uncharged when it is unmapped; charges
// propagate to the root, so at every event boundary
//
//   root.usage == sum(leaf.usage) == resident pages
//
// which InvariantChecker::CheckTenantCharges verifies. Charge/Uncharge run
// synchronously (no co_await), so the bijection between present PTEs and
// charges holds at every scheduling point, not just at quiescence.
//
// Limits:
//  * hard  — the fault path blocks (TenantAdmission) while usage >= hard;
//            evictors are woken to reclaim from this tenant. Overage is
//            bounded by the faults already in flight when the limit was
//            crossed (at most one allocation batch).
//  * soft  — eviction eligibility: tenants over their *effective* soft limit
//            are preferred victims. The balance controller moves the
//            effective limit between the weight-proportional fair share and
//            the configured soft limit, squeezing thrashing tenants first.
//  * per-tenant watermarks — headroom below hard works like the global
//    free-page watermarks: dropping under the low watermark marks the cgroup
//    pressured (preferred victim + evictors kept awake) until headroom
//    recovers past the high watermark.
#ifndef MAGESIM_TENANCY_MEMCG_H_
#define MAGESIM_TENANCY_MEMCG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/frame_pool.h"
#include "src/sim/sync.h"
#include "src/tenancy/tenant_spec.h"

namespace magesim {

class MemCgroup {
 public:
  MemCgroup(int id, std::string name, MemCgroup* parent)
      : id_(id), name_(std::move(name)), parent_(parent) {}

  MemCgroup(const MemCgroup&) = delete;
  MemCgroup& operator=(const MemCgroup&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  MemCgroup* parent() const { return parent_; }

  // Setup-time configuration (limits in pages; 0 = unlimited).
  void Configure(uint64_t hard, uint64_t soft, uint32_t weight, QosClass qos,
                 uint64_t low_wm, uint64_t high_wm) {
    hard_ = hard;
    soft_ = soft;
    soft_eff_ = soft;
    weight_ = weight;
    qos_ = qos;
    low_wm_ = low_wm;
    high_wm_ = high_wm;
  }

  uint64_t usage() const { return usage_; }
  uint64_t peak_usage() const { return peak_usage_; }
  uint64_t hard_limit() const { return hard_; }
  uint64_t soft_limit() const { return soft_; }
  uint64_t effective_soft_limit() const { return soft_eff_; }
  uint32_t weight() const { return weight_; }
  QosClass qos() const { return qos_; }

  // Charges `n` pages to this cgroup and every ancestor.
  void Charge(uint64_t n) {
    for (MemCgroup* c = this; c != nullptr; c = c->parent_) {
      c->usage_ += n;
      c->charges_ += n;
      if (c->usage_ > c->peak_usage_) c->peak_usage_ = c->usage_;
      if (c->hard_ > 0 && c->usage_ > c->hard_) {
        uint64_t over = c->usage_ - c->hard_;
        if (over > c->max_overage_) c->max_overage_ = over;
      }
      c->UpdatePressure();
    }
  }

  void Uncharge(uint64_t n) {
    for (MemCgroup* c = this; c != nullptr; c = c->parent_) {
      c->usage_ -= n;
      c->uncharges_ += n;
      c->UpdatePressure();
    }
  }

  // Fault-path admission: block while at or over the hard limit. Faults
  // already past admission when the limit is crossed still complete, so the
  // worst-case overage is one in-flight allocation batch.
  bool OverHard() const { return hard_ > 0 && usage_ >= hard_; }

  // Preferred-victim predicate: over the effective soft limit, or inside the
  // per-tenant low-watermark band below the hard limit (with hysteresis up
  // to the high-watermark band).
  bool NeedsEviction() const {
    return pressured_ || (soft_eff_ > 0 && usage_ > soft_eff_);
  }
  bool pressured() const { return pressured_; }

  // Balance-controller hook: clamp and install a new effective soft limit.
  // Returns true if it changed.
  bool SetEffectiveSoftLimit(uint64_t pages) {
    if (soft_ > 0 && pages > soft_) pages = soft_;
    if (pages == soft_eff_) return false;
    soft_eff_ = pages;
    ++soft_adjusts_;
    UpdatePressure();
    return true;
  }

  // --- per-tenant statistics ---
  uint64_t charges() const { return charges_; }
  uint64_t uncharges() const { return uncharges_; }
  uint64_t max_overage() const { return max_overage_; }
  uint64_t soft_adjusts() const { return soft_adjusts_; }
  uint64_t hard_limit_waits() const { return hard_limit_waits_; }
  SimTime hard_wait_ns() const { return hard_wait_ns_; }
  uint64_t evict_selected() const { return evict_selected_; }
  uint64_t faults() const { return faults_; }
  uint64_t prefetch_denied() const { return prefetch_denied_; }
  uint64_t backpressure_waits() const { return backpressure_waits_; }

  void NoteFault() { ++faults_; }
  void NoteHardWait(SimTime waited) {
    ++hard_limit_waits_;
    hard_wait_ns_ += waited;
  }
  void NoteEvictSelected(uint64_t n) { evict_selected_ += n; }
  void NotePrefetchDenied() { ++prefetch_denied_; }
  void NoteBackpressure() { ++backpressure_waits_; }

 private:
  void UpdatePressure() {
    if (hard_ == 0) {
      pressured_ = false;
      return;
    }
    uint64_t headroom = hard_ > usage_ ? hard_ - usage_ : 0;
    if (headroom < low_wm_) {
      pressured_ = true;
    } else if (headroom >= high_wm_) {
      pressured_ = false;
    }
  }

  int id_;
  std::string name_;
  MemCgroup* parent_;

  uint64_t hard_ = 0;
  uint64_t soft_ = 0;
  uint64_t soft_eff_ = 0;
  uint32_t weight_ = 1;
  QosClass qos_ = QosClass::kNormal;
  uint64_t low_wm_ = 0;
  uint64_t high_wm_ = 0;

  uint64_t usage_ = 0;
  uint64_t peak_usage_ = 0;
  bool pressured_ = false;

  uint64_t charges_ = 0;
  uint64_t uncharges_ = 0;
  uint64_t max_overage_ = 0;
  uint64_t soft_adjusts_ = 0;
  uint64_t hard_limit_waits_ = 0;
  SimTime hard_wait_ns_ = 0;
  uint64_t evict_selected_ = 0;
  uint64_t faults_ = 0;
  uint64_t prefetch_denied_ = 0;
  uint64_t backpressure_waits_ = 0;
};

// Owns the cgroup hierarchy (one root, one leaf per tenant) and the
// vpn -> tenant mapping. The kernel calls Charge/Uncharge at every
// Map/Unmap; both are synchronous so checker invariants hold everywhere.
class TenancyManager {
 public:
  // Limits are resolved against `local_pages`; per-tenant watermarks reuse
  // the kernel's low/high watermark fractions, applied to each hard limit.
  TenancyManager(const TenancyOptions& opts, uint64_t local_pages, uint64_t wss_pages,
                 double low_wm_frac, double high_wm_frac);

  int num_tenants() const { return static_cast<int>(leaves_.size()); }
  MemCgroup& root() { return *root_; }
  const MemCgroup& root() const { return *root_; }
  MemCgroup& cgroup(int t) { return *leaves_[static_cast<size_t>(t)]; }
  const MemCgroup& cgroup(int t) const { return *leaves_[static_cast<size_t>(t)]; }
  const TenantSpec& spec(int t) const { return specs_[static_cast<size_t>(t)]; }
  uint64_t local_pages() const { return local_pages_; }

  // Owner of a vpn (specs carry contiguous, disjoint vpn ranges covering the
  // whole working set).
  int TenantOf(uint64_t vpn) const;

  // Charges `vpn`'s page to its tenant; stamps f->tenant for list routing.
  // Returns the tenant id. Counts (and tolerates) double charges so the
  // checker can flag them instead of corrupting usage counters.
  int Charge(uint64_t vpn, PageFrame* f);
  int Uncharge(uint64_t vpn, PageFrame* f);

  // Which tenant vpn is currently charged to (-1 = none); the checker's
  // charge/present bijection source.
  int charged_tenant(uint64_t vpn) const { return charged_[vpn]; }
  uint64_t double_charges() const { return double_charges_; }
  uint64_t missing_uncharges() const { return missing_uncharges_; }

  // Fault-path hard-limit plumbing: waiters park on the tenant's headroom
  // event; Uncharge pulses it once usage drops back under the hard limit.
  SimEvent& headroom_event(int t) { return *headroom_[static_cast<size_t>(t)]; }
  void NoteHardWaiter(int t, int delta) { hard_waiters_[static_cast<size_t>(t)] += delta; }
  bool HasHardWaiters() const;

  // Evictors must keep running (even above the global watermark) while any
  // tenant has blocked faulters or is inside its own watermark band.
  bool EvictionPressure() const;

  // Prefetch QoS gate: latency tenants prefetch unless at their hard limit;
  // batch tenants are denied under memory pressure; everyone is denied once
  // over the effective soft limit.
  bool AllowPrefetch(int t, bool global_pressure);

 private:
  std::vector<TenantSpec> specs_;
  uint64_t local_pages_;
  std::unique_ptr<MemCgroup> root_;
  std::vector<std::unique_ptr<MemCgroup>> leaves_;
  std::vector<std::unique_ptr<SimEvent>> headroom_;
  std::vector<int> hard_waiters_;
  std::vector<int16_t> charged_;  // per-vpn owner, -1 = uncharged
  uint64_t double_charges_ = 0;
  uint64_t missing_uncharges_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_TENANCY_MEMCG_H_
