#include "src/tenancy/tenant_accounting.h"

#include <algorithm>
#include <cassert>

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

TenantAccounting::TenantAccounting(TenancyManager& mgr,
                                   std::vector<std::unique_ptr<PageAccounting>> per_tenant)
    : mgr_(mgr), per_(std::move(per_tenant)) {
  assert(static_cast<int>(per_.size()) == mgr_.num_tenants());
}

int TenantAccounting::RouteTenant(const PageFrame* f) const {
  // Frames are stamped at charge time (Kernel maps before inserting); the
  // vpn lookup is a setup-time / defensive fallback.
  if (f->tenant >= 0 && f->tenant < static_cast<int16_t>(per_.size())) return f->tenant;
  return mgr_.TenantOf(f->vpn);
}

Task<> TenantAccounting::Insert(CoreId core, PageFrame* f) {
  SimTime t0 = Engine::current().now();
  ++stats_.inserts;
  co_await per_[static_cast<size_t>(RouteTenant(f))]->Insert(core, f);
  insert_time_total_ += Engine::current().now() - t0;
}

void TenantAccounting::InsertSetup(CoreId core, PageFrame* f) {
  ++stats_.inserts;
  per_[static_cast<size_t>(RouteTenant(f))]->InsertSetup(core, f);
}

void TenantAccounting::Unlink(PageFrame* f) {
  per_[static_cast<size_t>(RouteTenant(f))]->Unlink(f);
}

int TenantAccounting::TierOf(int t) const {
  const MemCgroup& cg = mgr_.cgroup(t);
  bool latency = cg.qos() == QosClass::kLatency;
  if (cg.NeedsEviction()) return latency ? 1 : 0;
  return latency ? 3 : 2;
}

std::vector<TenantAccounting::PlanEntry> TenantAccounting::PlanLocked(
    size_t need, const std::vector<bool>& exhausted) {
  ++plan_rounds_.Locked("tenancy victim plan");
  // Members of the lowest non-empty tier, ascending tenant id.
  std::vector<int> members;
  int best_tier = 4;
  for (int t = 0; t < num_tenants(); ++t) {
    if (exhausted[static_cast<size_t>(t)]) continue;
    if (per_[static_cast<size_t>(t)]->tracked_pages() == 0) continue;
    int tier = TierOf(t);
    if (tier < best_tier) {
      best_tier = tier;
      members.clear();
    }
    if (tier == best_tier) members.push_back(t);
  }
  std::vector<PlanEntry> plan;
  if (members.empty()) return plan;

  // Largest-remainder weighted split of `need` across the members. Floor
  // quotas first; leftover pages go to members in ascending remainder-rank
  // order with ties broken by the lower tenant id — the explicit
  // (tenant id, page id) tie-break at equal recency.
  uint64_t total_w = 0;
  for (int t : members) total_w += mgr_.cgroup(t).weight();
  std::vector<uint64_t> quota(members.size(), 0);
  std::vector<std::pair<uint64_t, size_t>> rema;  // (-remainder proxy, index)
  uint64_t assigned = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    uint64_t num = static_cast<uint64_t>(need) * mgr_.cgroup(members[i]).weight();
    quota[i] = num / total_w;
    assigned += quota[i];
    // Sort key: larger remainder first; equal remainders by lower tenant id.
    rema.emplace_back(num % total_w, i);
  }
  std::sort(rema.begin(), rema.end(), [&](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return members[a.second] < members[b.second];
  });
  for (size_t k = 0; assigned < need; ++k) {
    ++quota[rema[k % rema.size()].second];
    ++assigned;
  }
  for (size_t i = 0; i < members.size(); ++i) {
    if (quota[i] > 0) plan.push_back(PlanEntry{members[i], static_cast<size_t>(quota[i])});
  }
  return plan;
}

Task<size_t> TenantAccounting::IsolateBatch(int evictor_id, CoreId core, size_t want,
                                            std::vector<PageFrame*>* out) {
  size_t got_total = 0;
  std::vector<bool> exhausted(static_cast<size_t>(num_tenants()), false);
  while (got_total < want) {
    std::vector<PlanEntry> plan;
    {
      // Plan synchronously under the selection lock, then release it before
      // touching per-tenant lists (their own locks may suspend; holding
      // select_lock_ across that await would trip the analyzer — and
      // genuinely serialize the evictors).
      auto g = co_await select_lock_.Scoped();
      plan = PlanLocked(want - got_total, exhausted);
    }
    if (plan.empty()) break;
    bool progress = false;
    for (const PlanEntry& e : plan) {
      if (got_total >= want) break;
      size_t ask = std::min(e.ask, want - got_total);
      size_t got = co_await per_[static_cast<size_t>(e.tenant)]->IsolateBatch(evictor_id, core,
                                                                              ask, out);
      got_total += got;
      if (got > 0) {
        progress = true;
        mgr_.cgroup(e.tenant).NoteEvictSelected(got);
        TraceEmit(TraceEventType::kTenantEvictSelect, evictor_id, kTraceNoPage, kTraceNoFrame,
                  (static_cast<uint64_t>(e.tenant) << 32) | got);
      }
      if (got < ask) exhausted[static_cast<size_t>(e.tenant)] = true;
    }
    if (!progress) break;
  }
  stats_.isolated += got_total;
  co_return got_total;
}

uint64_t TenantAccounting::tracked_pages() const {
  uint64_t n = 0;
  for (const auto& p : per_) n += p->tracked_pages();
  return n;
}

LockStats TenantAccounting::AggregateLockStats() const {
  LockStats agg = select_lock_.stats();
  for (const auto& p : per_) {
    LockStats s = p->AggregateLockStats();
    agg.acquisitions += s.acquisitions;
    agg.contended += s.contended;
    agg.total_wait_ns += s.total_wait_ns;
    agg.max_wait_ns = std::max(agg.max_wait_ns, s.max_wait_ns);
  }
  return agg;
}

}  // namespace magesim
