#include "src/tenancy/tenant_spec.h"

#include <cstdlib>
#include <set>

namespace magesim {

namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseFrac(const std::string& s, double* out, std::string* err) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || v < 0) {
    *err = "bad limit '" + s + "' (want a fraction like 0.4 or a percent like 40)";
    return false;
  }
  // Percentages read naturally ("40" = 40% of local DRAM).
  if (v > 1.0) v /= 100.0;
  if (v > 1.0) {
    *err = "limit '" + s + "' exceeds 100% of local memory";
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

const char* QosClassName(QosClass q) {
  switch (q) {
    case QosClass::kLatency: return "latency";
    case QosClass::kNormal: return "normal";
    case QosClass::kBatch: return "batch";
  }
  return "?";
}

bool ParseQosClass(const std::string& s, QosClass* out) {
  if (s == "latency") {
    *out = QosClass::kLatency;
  } else if (s == "normal") {
    *out = QosClass::kNormal;
  } else if (s == "batch") {
    *out = QosClass::kBatch;
  } else {
    return false;
  }
  return true;
}

bool ParseTenantSpec(const std::string& s, TenantSpec* out, std::string* err) {
  size_t eq = s.find('=');
  if (eq == std::string::npos) {
    *err = "tenant spec '" + s + "' is missing '=workload'";
    return false;
  }
  std::vector<std::string> head = Split(s.substr(0, eq), ':');
  if (head.size() != 4 && head.size() != 5) {
    *err = "tenant spec '" + s + "' wants name:weight:limit[:soft]:qos=workload";
    return false;
  }
  TenantSpec t;
  t.name = head[0];
  if (t.name.empty()) {
    *err = "tenant spec '" + s + "' has an empty name";
    return false;
  }
  long w = std::atol(head[1].c_str());
  if (w <= 0) {
    *err = "tenant '" + t.name + "': weight '" + head[1] + "' must be a positive integer";
    return false;
  }
  t.weight = static_cast<uint32_t>(w);
  if (!ParseFrac(head[2], &t.hard_frac, err)) return false;
  size_t qos_at = 3;
  if (head.size() == 5) {
    if (!ParseFrac(head[3], &t.soft_frac, err)) return false;
    qos_at = 4;
  }
  if (!ParseQosClass(head[qos_at], &t.qos)) {
    *err = "tenant '" + t.name + "': unknown qos '" + head[qos_at] +
           "' (want latency|normal|batch)";
    return false;
  }

  // Workload part: name[/threads][,k=v...]
  std::vector<std::string> wparts = Split(s.substr(eq + 1), ',');
  std::string wname = wparts[0];
  size_t slash = wname.find('/');
  if (slash != std::string::npos) {
    int th = std::atoi(wname.c_str() + slash + 1);
    if (th <= 0) {
      *err = "tenant '" + t.name + "': bad thread count in '" + wname + "'";
      return false;
    }
    t.threads = th;
    wname = wname.substr(0, slash);
  }
  if (wname.empty()) {
    *err = "tenant '" + t.name + "' has an empty workload name";
    return false;
  }
  t.workload = wname;
  for (size_t i = 1; i < wparts.size(); ++i) {
    size_t kv = wparts[i].find('=');
    if (kv == std::string::npos || kv == 0) {
      *err = "tenant '" + t.name + "': bad workload option '" + wparts[i] + "'";
      return false;
    }
    t.workload_opts[wparts[i].substr(0, kv)] = wparts[i].substr(kv + 1);
  }
  *out = std::move(t);
  return true;
}

bool ParseTenancyList(const std::string& s, TenancyOptions* out, std::string* err) {
  std::set<std::string> names;
  for (const std::string& part : Split(s, ';')) {
    if (part.empty()) continue;
    TenantSpec t;
    if (!ParseTenantSpec(part, &t, err)) return false;
    if (!names.insert(t.name).second) {
      *err = "duplicate tenant name '" + t.name + "'";
      return false;
    }
    out->tenants.push_back(std::move(t));
  }
  if (out->tenants.empty()) {
    *err = "tenancy spec '" + s + "' defines no tenants";
    return false;
  }
  out->enabled = true;
  return true;
}

}  // namespace magesim
