// Per-tenant page accounting behind the PageAccounting interface.
//
// Each tenant gets its own instance of the configured replacement policy
// (PartitionedFifo / GlobalLru / S3Fifo / MGLRU); inserts and unlinks route
// by the frame's tenant stamp, so a tenant's pages only ever live on that
// tenant's lists. Victim selection is a deterministic QoS-tiered weighted
// round-robin:
//
//   tier 0: tenants needing eviction (over soft limit / in their watermark
//           band), qos != latency
//   tier 1: tenants needing eviction, qos == latency  (evicted-from last
//           among the over-limit set)
//   tier 2: under-limit batch/normal tenants  (global-pressure fallback:
//           hard limits may not cover the whole pool)
//   tier 3: under-limit latency tenants       (evicted-from last of all)
//
// Within the first non-empty tier, the batch is split by largest-remainder
// weighted quotas; both the remainder distribution and the execution order
// are strict ascending tenant id, and each per-tenant policy scans its lists
// in deterministic page order — so victims at equal recency are ordered by
// (tenant id, page id), never by container iteration order.
#ifndef MAGESIM_TENANCY_TENANT_ACCOUNTING_H_
#define MAGESIM_TENANCY_TENANT_ACCOUNTING_H_

#include <memory>
#include <vector>

#include "src/accounting/accounting.h"
#include "src/analysis/guarded.h"
#include "src/tenancy/memcg.h"

namespace magesim {

class TenantAccounting : public PageAccounting {
 public:
  TenantAccounting(TenancyManager& mgr,
                   std::vector<std::unique_ptr<PageAccounting>> per_tenant);

  Task<> Insert(CoreId core, PageFrame* f) override;
  void InsertSetup(CoreId core, PageFrame* f) override;
  Task<size_t> IsolateBatch(int evictor_id, CoreId core, size_t want,
                            std::vector<PageFrame*>* out) override;
  void Unlink(PageFrame* f) override;

  uint64_t tracked_pages() const override;
  LockStats AggregateLockStats() const override;

  PageAccounting& tenant_policy(int t) { return *per_[static_cast<size_t>(t)]; }
  int num_tenants() const { return static_cast<int>(per_.size()); }

 private:
  // One (tenant, pages-to-take) slice of a selection round.
  struct PlanEntry {
    int tenant;
    size_t ask;
  };

  // Eviction-preference tier of tenant `t` (lower = preferred victim).
  int TierOf(int t) const;

  // Builds one selection round under select_lock_: the lowest non-empty
  // tier's members split `need` by largest-remainder weighted quotas, in
  // ascending tenant-id order. `exhausted` marks tenants whose policies
  // could not fill their previous quota this call.
  std::vector<PlanEntry> PlanLocked(size_t need, const std::vector<bool>& exhausted);

  int RouteTenant(const PageFrame* f) const;

  TenancyManager& mgr_;
  std::vector<std::unique_ptr<PageAccounting>> per_;

  // Serializes victim planning across evictors. Held only across the
  // synchronous planning step, released before delegating to per-tenant
  // policies (which take their own list locks and may suspend).
  SimMutex select_lock_{"tenancy-select"};
  // Round counter, only meaningful under select_lock_ (lock-discipline
  // analyzer guard on the shared selection state).
  GuardedBy<uint64_t> plan_rounds_{select_lock_, 0};
};

}  // namespace magesim

#endif  // MAGESIM_TENANCY_TENANT_ACCOUNTING_H_
