#include "src/tenancy/memcg.h"

#include <algorithm>
#include <cassert>

namespace magesim {

TenancyManager::TenancyManager(const TenancyOptions& opts, uint64_t local_pages,
                               uint64_t wss_pages, double low_wm_frac, double high_wm_frac)
    : specs_(opts.tenants), local_pages_(local_pages) {
  assert(!specs_.empty());
  root_ = std::make_unique<MemCgroup>(-1, "root", nullptr);
  // The root has no limit of its own: the global watermarks already police
  // total residency. It exists for the hierarchical-sum invariant.
  root_->Configure(0, 0, 1, QosClass::kNormal, 0, 0);

  for (size_t i = 0; i < specs_.size(); ++i) {
    const TenantSpec& s = specs_[i];
    assert(s.resolved() && "tenant specs must be placement-resolved before the manager");
    auto hard = static_cast<uint64_t>(static_cast<double>(local_pages) * s.hard_frac);
    double soft_frac = s.soft_frac > 0 ? s.soft_frac : s.hard_frac * 0.9;
    auto soft = static_cast<uint64_t>(static_cast<double>(local_pages) * soft_frac);
    uint64_t low_wm = 0;
    uint64_t high_wm = 0;
    if (hard > 0) {
      low_wm = std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(hard) * low_wm_frac), 8);
      high_wm = std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(hard) * high_wm_frac), low_wm + 8);
    }
    auto cg = std::make_unique<MemCgroup>(static_cast<int>(i), s.name, root_.get());
    cg->Configure(hard, soft, s.weight, s.qos, low_wm, high_wm);
    leaves_.push_back(std::move(cg));
    headroom_.push_back(std::make_unique<SimEvent>("tenant-headroom"));
    hard_waiters_.push_back(0);
  }
  charged_.assign(wss_pages, -1);
}

int TenancyManager::TenantOf(uint64_t vpn) const {
  // Specs hold contiguous ranges in ascending vpn_base order: binary search
  // for the last base <= vpn.
  int lo = 0;
  int hi = num_tenants() - 1;
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    if (specs_[static_cast<size_t>(mid)].vpn_base <= vpn) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int TenancyManager::Charge(uint64_t vpn, PageFrame* f) {
  int t = TenantOf(vpn);
  if (charged_[vpn] >= 0) {
    // A page charged twice without an uncharge in between: recorded for the
    // checker; keep counters sane by not re-charging.
    ++double_charges_;
    return t;
  }
  charged_[vpn] = static_cast<int16_t>(t);
  if (f != nullptr) f->tenant = static_cast<int16_t>(t);
  leaves_[static_cast<size_t>(t)]->Charge(1);
  return t;
}

int TenancyManager::Uncharge(uint64_t vpn, PageFrame* f) {
  (void)f;  // the frame keeps its tenant stamp until recharged
  int t = charged_[vpn];
  if (t < 0) {
    ++missing_uncharges_;
    return TenantOf(vpn);
  }
  charged_[vpn] = -1;
  MemCgroup& cg = *leaves_[static_cast<size_t>(t)];
  cg.Uncharge(1);
  // Release fault-path waiters once the tenant is back under its hard limit.
  // DES atomicity makes Pulse safe here: a waiter's OverHard check and its
  // Wait() run in one synchronous window, so no wakeup can slip between.
  if (hard_waiters_[static_cast<size_t>(t)] > 0 && !cg.OverHard()) {
    headroom_[static_cast<size_t>(t)]->Pulse();
  }
  return t;
}

bool TenancyManager::HasHardWaiters() const {
  for (int n : hard_waiters_) {
    if (n > 0) return true;
  }
  return false;
}

bool TenancyManager::EvictionPressure() const {
  for (size_t i = 0; i < leaves_.size(); ++i) {
    if (hard_waiters_[i] > 0) return true;
    if (leaves_[i]->pressured()) return true;
  }
  return false;
}

bool TenancyManager::AllowPrefetch(int t, bool global_pressure) {
  MemCgroup& cg = *leaves_[static_cast<size_t>(t)];
  bool allow;
  if (cg.OverHard()) {
    allow = false;  // a speculative read would push the tenant further over
  } else if (cg.qos() == QosClass::kLatency) {
    allow = true;  // prefetcher priority: only the hard limit stops it
  } else if (cg.qos() == QosClass::kBatch && global_pressure) {
    allow = false;  // batch speculation yields first under pressure
  } else {
    allow = !cg.NeedsEviction();
  }
  if (!allow) cg.NotePrefetchDenied();
  return allow;
}

}  // namespace magesim
