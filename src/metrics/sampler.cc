#include "src/metrics/sampler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/sim/engine.h"

namespace magesim {

namespace {
uint64_t Pull(const std::function<uint64_t()>& f) { return f ? f() : 0; }
double PullD(const std::function<double()>& f) { return f ? f() : 0.0; }
// Delta between cumulative readings, tolerating a counter reset in between
// (the machine resets kernel/NIC stats at the end of warmup).
uint64_t Delta(uint64_t cur, uint64_t prev) { return cur >= prev ? cur - prev : cur; }
}  // namespace

void MetricsSampler::SampleNow() {
  SimTime now = Engine::current().now();
  if (!samples_.empty() && samples_.back().t == now) return;

  Sample s;
  s.t = now;
  s.free_pages = Pull(sources_.free_pages);
  s.faults = Pull(sources_.faults);
  s.evicted_pages = Pull(sources_.evicted_pages);
  s.ops = Pull(sources_.total_ops);
  s.ipi_queue_depth = Pull(sources_.ipi_queue_depth);
  s.dirty_ratio = PullD(sources_.dirty_ratio);
  uint64_t read_busy = Pull(sources_.nic_read_busy_ns);
  uint64_t write_busy = Pull(sources_.nic_write_busy_ns);

  if (!samples_.empty()) {
    const Sample& prev = samples_.back();
    SimTime dt = now - prev.t;
    if (dt > 0) {
      double dt_s = NsToSec(dt);
      s.fault_rate_per_s = static_cast<double>(Delta(s.faults, prev.faults)) / dt_s;
      s.evict_rate_per_s =
          static_cast<double>(Delta(s.evicted_pages, prev.evicted_pages)) / dt_s;
      s.ops_rate_per_s = static_cast<double>(Delta(s.ops, prev.ops)) / dt_s;
      s.nic_read_util = std::clamp(
          static_cast<double>(Delta(read_busy, prev_read_busy_)) / static_cast<double>(dt),
          0.0, 1.0);
      s.nic_write_util = std::clamp(
          static_cast<double>(Delta(write_busy, prev_write_busy_)) / static_cast<double>(dt),
          0.0, 1.0);
    }
  }
  prev_read_busy_ = read_busy;
  prev_write_busy_ = write_busy;
  samples_.push_back(s);
}

Task<> MetricsSampler::Main(bool progress) {
  SampleNow();
  while (!Engine::current().shutdown_requested()) {
    co_await Delay{interval_};
    SampleNow();
    if (progress && !samples_.empty()) {
      const Sample& s = samples_.back();
      std::fprintf(stderr,
                   "[magesim] t=%.3fms free=%" PRIu64 " faults/s=%.0f evict/s=%.0f"
                   " ops/s=%.0f dirty=%.2f ipi=%" PRIu64 " rd_util=%.2f wr_util=%.2f\n",
                   static_cast<double>(s.t) / 1e6, s.free_pages, s.fault_rate_per_s,
                   s.evict_rate_per_s, s.ops_rate_per_s, s.dirty_ratio, s.ipi_queue_depth,
                   s.nic_read_util, s.nic_write_util);
    }
  }
}

const std::vector<std::string>& MetricsSampler::Columns() {
  static const std::vector<std::string> cols = {
      "t_ns",          "free_pages",       "faults",          "evicted_pages",
      "ops",           "ipi_queue_depth",  "dirty_ratio",     "fault_rate_per_s",
      "evict_rate_per_s", "ops_rate_per_s", "nic_read_util",  "nic_write_util",
  };
  return cols;
}

std::string MetricsSampler::ToCsv() const {
  std::string out;
  const auto& cols = Columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ',';
    out += cols[i];
  }
  out += '\n';
  char buf[384];
  for (const Sample& s : samples_) {
    std::snprintf(buf, sizeof(buf),
                  "%lld,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%.6f,%.3f,%.3f,%.3f,%.6f,%.6f\n",
                  static_cast<long long>(s.t), s.free_pages, s.faults, s.evicted_pages, s.ops,
                  s.ipi_queue_depth, s.dirty_ratio, s.fault_rate_per_s, s.evict_rate_per_s,
                  s.ops_rate_per_s, s.nic_read_util, s.nic_write_util);
    out += buf;
  }
  return out;
}

}  // namespace magesim
