#include "src/metrics/metrics.h"

namespace magesim {

MetricsRegistry::CounterHandle MetricsRegistry::Counter(std::string_view name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    counters_.push_back(0);
    it = by_name_.emplace(std::string(name), Meta{Kind::kCounter, counters_.size() - 1}).first;
  }
  assert(it->second.kind == Kind::kCounter);
  return CounterHandle(&counters_[it->second.index]);
}

MetricsRegistry::GaugeHandle MetricsRegistry::Gauge(std::string_view name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    gauges_.push_back(0.0);
    it = by_name_.emplace(std::string(name), Meta{Kind::kGauge, gauges_.size() - 1}).first;
  }
  assert(it->second.kind == Kind::kGauge);
  return GaugeHandle(&gauges_[it->second.index]);
}

MetricsRegistry::HistHandle MetricsRegistry::Hist(std::string_view name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    hists_.push_back(std::make_unique<Histogram>());
    it = by_name_.emplace(std::string(name), Meta{Kind::kHistogram, hists_.size() - 1}).first;
  }
  assert(it->second.kind == Kind::kHistogram);
  return HistHandle(hists_[it->second.index].get());
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != Kind::kCounter) return 0;
  return counters_[it->second.index];
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != Kind::kGauge) return 0.0;
  return gauges_[it->second.index];
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != Kind::kHistogram) return nullptr;
  return hists_[it->second.index].get();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::SortedEntries() const {
  std::vector<Entry> out;
  out.reserve(by_name_.size());
  for (const auto& [name, meta] : by_name_) {
    out.push_back(Entry{&name, meta.kind, meta.index});
  }
  return out;  // std::map iteration is already name-sorted
}

}  // namespace magesim
