#include "src/metrics/profiler.h"

#include <cassert>

#include "src/sim/sync.h"

namespace magesim {

SimProfiler* SimProfiler::current_ = nullptr;

const char* SimPhaseName(SimPhase p) {
  switch (p) {
    case SimPhase::kAppCompute: return "app_compute";
    case SimPhase::kFaultMap: return "fault_map";
    case SimPhase::kFaultAlloc: return "fault_alloc";
    case SimPhase::kAccounting: return "accounting";
    case SimPhase::kRdmaWait: return "rdma_wait";
    case SimPhase::kTlbWait: return "tlb_wait";
    case SimPhase::kEviction: return "eviction";
    case SimPhase::kFreeWait: return "free_wait";
    case SimPhase::kNumPhases: break;
  }
  return "?";
}

SimProfiler::SimProfiler(int num_cores) {
  assert(num_cores >= 0);
  per_core_.resize(static_cast<size_t>(num_cores));
  for (auto& row : per_core_) row.fill(0);
}

SimProfiler::~SimProfiler() {
  if (current_ == this) Uninstall();
}

namespace {
void LockWaitTrampoline(void* ctx, const SimMutex& m, SimTime waited_ns) {
  static_cast<SimProfiler*>(ctx)->RecordLockWait(m, waited_ns);
}
}  // namespace

void SimProfiler::Install() {
  assert(current_ == nullptr && "another SimProfiler is already installed");
  current_ = this;
  SetLockWaitObserver(&LockWaitTrampoline, this);
}

void SimProfiler::Uninstall() {
  if (current_ != this) return;
  current_ = nullptr;
  SetLockWaitObserver(nullptr, nullptr);
}

void SimProfiler::RecordLockWait(const SimMutex& m, SimTime waited_ns) {
  if (waited_ns <= 0) return;
  lock_wait_total_ += waited_ns;
  ++lock_wait_events_;
  auto it = lock_slot_cache_.find(&m);
  if (it == lock_slot_cache_.end()) {
    std::string key = m.name().empty() ? "<anonymous>" : m.name();
    SimTime* slot = &lock_waits_[key];  // map nodes are stable
    it = lock_slot_cache_.emplace(&m, slot).first;
  }
  *it->second += waited_ns;
}

SimTime SimProfiler::core_attributed(int core) const {
  SimTime total = 0;
  for (SimTime v : per_core_[static_cast<size_t>(core)]) total += v;
  return total;
}

SimTime SimProfiler::phase_total(SimPhase p) const {
  SimTime total = 0;
  for (const auto& row : per_core_) total += row[static_cast<size_t>(p)];
  return total;
}

SimTime SimProfiler::total_attributed() const {
  SimTime total = 0;
  for (const auto& row : per_core_) {
    for (SimTime v : row) total += v;
  }
  return total;
}

void SimProfiler::Reset() {
  for (auto& row : per_core_) row.fill(0);
  lock_wait_total_ = 0;
  lock_wait_events_ = 0;
  lock_waits_.clear();
  lock_slot_cache_.clear();
}

}  // namespace magesim
