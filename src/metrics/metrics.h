// Unified metrics registry: named counters, gauges, and histograms with
// cheap interned handles.
//
// Names are interned once (at registration, off the hot path); after that all
// updates go through index-based handles — no string hashing or map lookups
// on hot paths. The registry is the single source every exporter reads: the
// JSON run-report, the CSV time series, and the Prometheus text exposition
// (src/metrics/run_report.h) all walk it in sorted-name order, so two
// deterministic simulations produce byte-identical exports.
//
//   MetricsRegistry reg;
//   auto faults = reg.Counter("kernel.faults");
//   faults.Add();                       // hot path: one bounds-free index
//   auto lat = reg.Hist("fault_latency_ns");
//   lat.Record(elapsed);
//   reg.counter_value("kernel.faults"); // string lookup, reporting only
#ifndef MAGESIM_METRICS_METRICS_H_
#define MAGESIM_METRICS_METRICS_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/stats.h"

namespace magesim {

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  // --- Handles: trivially copyable, safe to keep for the registry's life ---
  class CounterHandle {
   public:
    CounterHandle() = default;
    void Add(uint64_t delta = 1) { *cell_ += delta; }
    void Set(uint64_t v) { *cell_ = v; }
    uint64_t value() const { return *cell_; }

   private:
    friend class MetricsRegistry;
    explicit CounterHandle(uint64_t* cell) : cell_(cell) {}
    uint64_t* cell_ = nullptr;
  };

  class GaugeHandle {
   public:
    GaugeHandle() = default;
    void Set(double v) { *cell_ = v; }
    void Add(double delta) { *cell_ += delta; }
    double value() const { return *cell_; }

   private:
    friend class MetricsRegistry;
    explicit GaugeHandle(double* cell) : cell_(cell) {}
    double* cell_ = nullptr;
  };

  class HistHandle {
   public:
    HistHandle() = default;
    void Record(int64_t v) { h_->Record(v); }
    Histogram& histogram() { return *h_; }
    const Histogram& histogram() const { return *h_; }

   private:
    friend class MetricsRegistry;
    explicit HistHandle(Histogram* h) : h_(h) {}
    Histogram* h_ = nullptr;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration interns the name; calling again with the same name returns a
  // handle to the same cell (the kind must match).
  CounterHandle Counter(std::string_view name);
  GaugeHandle Gauge(std::string_view name);
  HistHandle Hist(std::string_view name);

  // --- Reporting-side string lookups (never on hot paths) ---
  bool Has(std::string_view name) const { return by_name_.count(std::string(name)) > 0; }
  // 0 / nullptr when absent.
  uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Deterministic (sorted-name) iteration for exporters.
  struct Entry {
    const std::string* name;
    Kind kind;
    size_t index;  // into the per-kind storage
  };
  std::vector<Entry> SortedEntries() const;

  size_t size() const { return by_name_.size(); }
  uint64_t counter_at(size_t index) const { return counters_[index]; }
  double gauge_at(size_t index) const { return gauges_[index]; }
  const Histogram& histogram_at(size_t index) const { return *hists_[index]; }

 private:
  struct Meta {
    Kind kind;
    size_t index;
  };

  // std::map keeps exports sorted and node pointers stable.
  std::map<std::string, Meta, std::less<>> by_name_;
  // Deques: handles hold element pointers, which must survive later
  // registrations (std::vector reallocation would dangle them).
  std::deque<uint64_t> counters_;
  std::deque<double> gauges_;
  std::vector<std::unique_ptr<Histogram>> hists_;
};

}  // namespace magesim

#endif  // MAGESIM_METRICS_METRICS_H_
