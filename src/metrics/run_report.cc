#include "src/metrics/run_report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace magesim {

namespace {

// Fixed conversion so output is deterministic and locale-independent.
// %.17g round-trips every double; integral values print without a spurious
// fraction ("3" not "3.0000000000000000").
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!comma_.empty()) {
    if (comma_.back()) out_ += ',';
    comma_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  comma_.push_back(false);
}

void JsonWriter::EndObject() {
  comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  comma_.push_back(false);
}

void JsonWriter::EndArray() {
  comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view k) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view v) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(v);
  out_ += '"';
}

void JsonWriter::Int(int64_t v) {
  MaybeComma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::UInt(uint64_t v) {
  MaybeComma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::Double(double v) {
  MaybeComma();
  out_ += FormatDouble(v);
}

void JsonWriter::Bool(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
}

void AppendHistogramJson(JsonWriter& w, const Histogram& h) {
  w.BeginObject();
  w.KV("count", h.count());
  w.KV("min", h.min());
  w.KV("max", h.max());
  w.KV("mean", h.mean());
  w.KV("sum", h.sum());
  w.KV("p50", h.Percentile(50));
  w.KV("p90", h.Percentile(90));
  w.KV("p99", h.Percentile(99));
  w.KV("p999", h.Percentile(99.9));
  w.EndObject();
}

void AppendRegistryJson(JsonWriter& w, const MetricsRegistry& reg) {
  auto entries = reg.SortedEntries();

  w.Key("counters");
  w.BeginObject();
  for (const auto& e : entries) {
    if (e.kind != MetricsRegistry::Kind::kCounter) continue;
    w.KV(*e.name, reg.counter_at(e.index));
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& e : entries) {
    if (e.kind != MetricsRegistry::Kind::kGauge) continue;
    w.KV(*e.name, reg.gauge_at(e.index));
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& e : entries) {
    if (e.kind != MetricsRegistry::Kind::kHistogram) continue;
    w.Key(*e.name);
    AppendHistogramJson(w, reg.histogram_at(e.index));
  }
  w.EndObject();
}

void AppendBreakdownJson(JsonWriter& w, const Breakdown& b) {
  w.BeginObject();
  for (const auto& [cat, e] : b.entries()) {
    w.Key(cat);
    w.BeginObject();
    w.KV("total_ns", e.total_ns);
    w.KV("count", e.count);
    w.EndObject();
  }
  w.EndObject();
}

void AppendProfilerJson(JsonWriter& w, const SimProfiler& prof, SimTime end_time_ns) {
  // Tracked cores: those with any attributed time. Idle is derived so the
  // per-phase totals sum to tracked_cores * end_time exactly.
  std::vector<int> tracked;
  for (int c = 0; c < prof.num_cores(); ++c) {
    if (prof.core_attributed(c) > 0) tracked.push_back(c);
  }

  SimTime idle_total = 0;
  for (int c : tracked) {
    SimTime idle = end_time_ns - prof.core_attributed(c);
    idle_total += idle > 0 ? idle : 0;
  }

  w.BeginObject();
  w.KV("end_time_ns", end_time_ns);
  w.KV("tracked_cores", static_cast<int64_t>(tracked.size()));
  w.KV("total_core_time_ns", static_cast<int64_t>(tracked.size()) * end_time_ns);
  w.KV("attributed_ns", prof.total_attributed());

  w.Key("phase_totals_ns");
  w.BeginObject();
  for (int p = 0; p < kNumSimPhases; ++p) {
    w.KV(SimPhaseName(static_cast<SimPhase>(p)), prof.phase_total(static_cast<SimPhase>(p)));
  }
  w.KV("idle", idle_total);
  w.EndObject();

  w.Key("per_core");
  w.BeginArray();
  for (int c : tracked) {
    w.BeginObject();
    w.KV("core", static_cast<int64_t>(c));
    for (int p = 0; p < kNumSimPhases; ++p) {
      w.KV(SimPhaseName(static_cast<SimPhase>(p)), prof.core_phase(c, static_cast<SimPhase>(p)));
    }
    SimTime idle = end_time_ns - prof.core_attributed(c);
    w.KV("idle", idle > 0 ? idle : 0);
    w.EndObject();
  }
  w.EndArray();

  w.Key("lock_wait");
  w.BeginObject();
  w.KV("total_ns", prof.lock_wait_total());
  w.KV("events", prof.lock_wait_events());
  w.Key("per_lock_ns");
  w.BeginObject();
  for (const auto& [name, ns] : prof.lock_waits()) {
    w.KV(name, ns);
  }
  w.EndObject();
  w.EndObject();

  w.EndObject();
}

void AppendTimeseriesJson(JsonWriter& w, const MetricsSampler& sampler) {
  w.BeginObject();
  w.KV("interval_ns", sampler.interval());
  w.Key("columns");
  w.BeginArray();
  for (const auto& col : MetricsSampler::Columns()) w.String(col);
  w.EndArray();
  w.Key("rows");
  w.BeginArray();
  for (const auto& s : sampler.samples()) {
    w.BeginArray();
    w.Int(s.t);
    w.UInt(s.free_pages);
    w.UInt(s.faults);
    w.UInt(s.evicted_pages);
    w.UInt(s.ops);
    w.UInt(s.ipi_queue_depth);
    w.Double(s.dirty_ratio);
    w.Double(s.fault_rate_per_s);
    w.Double(s.evict_rate_per_s);
    w.Double(s.ops_rate_per_s);
    w.Double(s.nic_read_util);
    w.Double(s.nic_write_util);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
}

namespace {
std::string PromName(std::string_view name) {
  std::string out = "magesim_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}
}  // namespace

std::string PrometheusText(const MetricsRegistry& reg) {
  std::string out;
  char buf[192];
  for (const auto& e : reg.SortedEntries()) {
    std::string name = PromName(*e.name);
    switch (e.kind) {
      case MetricsRegistry::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(),
                      reg.counter_at(e.index));
        out += buf;
        break;
      case MetricsRegistry::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%s %.17g\n", name.c_str(), reg.gauge_at(e.index));
        out += buf;
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = reg.histogram_at(e.index);
        out += "# TYPE " + name + " summary\n";
        const struct { const char* label; double p; } qs[] = {
            {"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}, {"0.999", 99.9}};
        for (const auto& q : qs) {
          std::snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %lld\n", name.c_str(), q.label,
                        static_cast<long long>(h.Percentile(q.p)));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_sum %lld\n%s_count %" PRIu64 "\n", name.c_str(),
                      static_cast<long long>(h.sum()), name.c_str(), h.count());
        out += buf;
        break;
      }
    }
  }
  return out;
}

}  // namespace magesim
