// Sim-time profiler: attributes each simulated core's time to phases.
//
// The paging layers wrap their leaf intervals (no nesting, so segments never
// double-count) in `PhaseScope`s; application threads report flushed compute
// quanta and absorbed IPI-handler ("stolen") time. Whatever is not covered by
// a scope is idle time, derived per core as `end_time - attributed`, so the
// per-phase attribution always sums to total simulated core-time exactly —
// the report's own consistency check (and ISSUE acceptance) relies on this.
//
// Lock-queue waiting is a cross-cutting view: `SimMutex::Unlock` reports each
// handoff's wait through the observer hook in sim/sync.h, and the profiler
// keeps per-lock named totals (the extension of LockStats the breakdown
// figures want). A coroutine parked on a FIFO lock occupies no core in this
// one-thread-per-core model, so lock wait is *not* also added to the per-core
// phase table — it would double-count against the enclosing fault/evict
// phases. `lock_wait_total()` equals the sum of the per-lock entries by
// construction.
//
// Like the Tracer, at most one profiler is installed at a time and every hook
// costs a single pointer test while none is.
#ifndef MAGESIM_METRICS_PROFILER_H_
#define MAGESIM_METRICS_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/time.h"

namespace magesim {

class SimMutex;

// Phases a simulated core's time is attributed to (§3.2 / Figs. 6 and 16
// vocabulary). kIdle is never recorded directly; exporters derive it.
enum class SimPhase : uint8_t {
  kAppCompute,  // application compute quanta (incl. virtualization tax)
  kFaultMap,    // fault-path map/unmap work: trap entry, VMA, PTE, bookkeeping
  kFaultAlloc,  // frame allocation inside the fault path
  kAccounting,  // page-accounting insert (FP3) and isolate (EP1)
  kRdmaWait,    // waiting on NIC reads (fault-in) and writebacks (eviction)
  kTlbWait,     // waiting for shootdown ACKs + absorbed flush-IPI handler time
  kEviction,    // eviction work: victim unmap, remote alloc, frame reclaim
  kFreeWait,    // MAGE-style fault-path waits for the EP to free pages
  kNumPhases,
};

inline constexpr int kNumSimPhases = static_cast<int>(SimPhase::kNumPhases);

// Stable snake_case name used by the JSON/CSV exports.
const char* SimPhaseName(SimPhase p);

class SimProfiler {
 public:
  explicit SimProfiler(int num_cores);
  ~SimProfiler();
  SimProfiler(const SimProfiler&) = delete;
  SimProfiler& operator=(const SimProfiler&) = delete;

  // Process-wide installation (mirrors Tracer). Install also registers the
  // lock-wait observer with sim/sync.h; Uninstall removes both.
  void Install();
  void Uninstall();
  static SimProfiler* Get() { return current_; }

  void AddPhase(int core, SimPhase phase, SimTime ns) {
    if (ns <= 0 || core < 0 || core >= static_cast<int>(per_core_.size())) return;
    per_core_[static_cast<size_t>(core)][static_cast<size_t>(phase)] += ns;
  }

  // Called (via the sync.h observer) for every contended lock handoff.
  void RecordLockWait(const SimMutex& m, SimTime waited_ns);

  // --- Introspection / export ---
  int num_cores() const { return static_cast<int>(per_core_.size()); }
  SimTime core_phase(int core, SimPhase p) const {
    return per_core_[static_cast<size_t>(core)][static_cast<size_t>(p)];
  }
  // Total attributed (non-idle) time on one core.
  SimTime core_attributed(int core) const;
  // Sum of one phase across all cores.
  SimTime phase_total(SimPhase p) const;
  // Sum of all phases across all cores.
  SimTime total_attributed() const;

  // Cross-cutting lock-wait view. total == sum of per-lock entries.
  SimTime lock_wait_total() const { return lock_wait_total_; }
  const std::map<std::string, SimTime>& lock_waits() const { return lock_waits_; }
  uint64_t lock_wait_events() const { return lock_wait_events_; }

  void Reset();

 private:
  std::vector<std::array<SimTime, kNumSimPhases>> per_core_;
  SimTime lock_wait_total_ = 0;
  uint64_t lock_wait_events_ = 0;
  // Name-keyed totals (deterministic export order); node-based map keeps the
  // cached slot pointers below stable.
  std::map<std::string, SimTime> lock_waits_;
  // Per-lock-object cache so repeat waits skip the string lookup. Never
  // iterated (pointer keys would be nondeterministic) — lookup only.
  std::unordered_map<const SimMutex*, SimTime*> lock_slot_cache_;

  static SimProfiler* current_;
};

// RAII leaf-interval attribution. Costs one pointer test when no profiler is
// installed. Scopes must not nest (each simulated nanosecond belongs to
// exactly one phase); instrument leaf intervals only.
class PhaseScope {
 public:
  PhaseScope(int core, SimPhase phase)
      : prof_(SimProfiler::Get()), core_(core), phase_(phase) {
    if (prof_ != nullptr) t0_ = Engine::current().now();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    if (prof_ != nullptr) prof_->AddPhase(core_, phase_, Engine::current().now() - t0_);
  }

 private:
  SimProfiler* prof_;
  int core_;
  SimPhase phase_;
  SimTime t0_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_METRICS_PROFILER_H_
