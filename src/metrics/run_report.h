// Run-report exporters: a minimal deterministic JSON writer plus helpers that
// serialize the metrics registry, sim-time profiler, and sampler time series.
//
// The JSON run-report is the single machine-readable artifact of a run
// (schema version recorded in the report itself; bump kRunReportSchemaVersion
// on breaking layout changes). All emitters walk sorted containers and format
// numbers with fixed printf conversions, so two deterministic simulations
// produce byte-identical documents apart from the explicitly wall-clock
// fields (everything under the "wall_clock" object).
#ifndef MAGESIM_METRICS_RUN_REPORT_H_
#define MAGESIM_METRICS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/metrics/profiler.h"
#include "src/metrics/sampler.h"
#include "src/sim/stats.h"

namespace magesim {

// 2: added the `tail` section (span critical-path attribution, present when
// span tracing is enabled) and "spans" to the config section.
inline constexpr int kRunReportSchemaVersion = 2;

// Streaming JSON writer with automatic comma placement. Emits compact,
// deterministic output (sorted inputs are the caller's job).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view k);

  void String(std::string_view v);
  void Int(int64_t v);
  void UInt(uint64_t v);
  void Double(double v);
  void Bool(bool v);

  // Key + value in one call.
  void KV(std::string_view k, std::string_view v) { Key(k); String(v); }
  void KV(std::string_view k, const char* v) { Key(k); String(v); }
  void KV(std::string_view k, int64_t v) { Key(k); Int(v); }
  void KV(std::string_view k, uint64_t v) { Key(k); UInt(v); }
  void KV(std::string_view k, int v) { Key(k); Int(v); }
  void KV(std::string_view k, double v) { Key(k); Double(v); }
  void KV(std::string_view k, bool v) { Key(k); Bool(v); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view v);

  std::string out_;
  // One entry per open object/array: true once the first element is written.
  std::vector<bool> comma_;
  bool pending_key_ = false;
};

// Histogram summary object: {count,min,max,mean,sum,p50,p90,p99,p999}.
void AppendHistogramJson(JsonWriter& w, const Histogram& h);

// Registry contents as three sibling keys on the current object:
// "counters": {name: value}, "gauges": {...}, "histograms": {name: summary}.
void AppendRegistryJson(JsonWriter& w, const MetricsRegistry& reg);

// Breakdown as {category: {total_ns, count}} on the current value position.
void AppendBreakdownJson(JsonWriter& w, const Breakdown& b);

// Profiler section as the current value position. `end_time_ns` is the run's
// final simulated timestamp: per-core idle time is derived as
// end_time - attributed (clamped at 0), so phase sums equal
// tracked_cores * end_time exactly. Cores with zero attributed time are
// untracked (not simulated as cores in this run) and excluded.
void AppendProfilerJson(JsonWriter& w, const SimProfiler& prof, SimTime end_time_ns);

// Sampler series as {interval_ns, columns: [...], rows: [[...], ...]}.
void AppendTimeseriesJson(JsonWriter& w, const MetricsSampler& sampler);

// Prometheus text exposition of the registry: counters and gauges as-is,
// histograms as _count/_sum plus quantile-labeled summary gauges. Metric
// names are sanitized ('.' and '-' become '_').
std::string PrometheusText(const MetricsRegistry& reg);

}  // namespace magesim

#endif  // MAGESIM_METRICS_RUN_REPORT_H_
