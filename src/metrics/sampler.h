// Engine-driven periodic sampler: records time series of free-memory
// watermark, fault and eviction rates, dirty ratio, IPI queue depth, and RDMA
// link utilization.
//
// The sampler pulls raw values through `SamplerSources` callbacks so this
// library never depends on the paging layer (and tests can script
// hand-computed inputs). Rates and utilizations are derived from deltas
// between consecutive samples, so each row is a windowed measurement over the
// preceding interval, not a since-start average.
#ifndef MAGESIM_METRICS_SAMPLER_H_
#define MAGESIM_METRICS_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/task.h"
#include "src/sim/time.h"

namespace magesim {

// Raw cumulative/instantaneous values the sampler reads each tick. Absent
// callbacks sample as zero.
struct SamplerSources {
  std::function<uint64_t()> free_pages;        // instantaneous
  std::function<uint64_t()> faults;            // cumulative
  std::function<uint64_t()> evicted_pages;     // cumulative
  std::function<uint64_t()> total_ops;         // cumulative app operations
  std::function<double()> dirty_ratio;         // instantaneous, [0,1]
  std::function<uint64_t()> ipi_queue_depth;   // instantaneous in-flight IPIs
  std::function<uint64_t()> nic_read_busy_ns;  // cumulative channel-busy ns
  std::function<uint64_t()> nic_write_busy_ns; // cumulative channel-busy ns
};

class MetricsSampler {
 public:
  struct Sample {
    SimTime t = 0;
    uint64_t free_pages = 0;
    uint64_t faults = 0;         // cumulative at sample time
    uint64_t evicted_pages = 0;  // cumulative
    uint64_t ops = 0;            // cumulative
    uint64_t ipi_queue_depth = 0;
    double dirty_ratio = 0.0;
    // Windowed derivations vs. the previous sample (0 for the t=0 row).
    double fault_rate_per_s = 0.0;
    double evict_rate_per_s = 0.0;
    double ops_rate_per_s = 0.0;
    double nic_read_util = 0.0;   // [0,1]
    double nic_write_util = 0.0;  // [0,1]
  };

  MetricsSampler(SamplerSources sources, SimTime interval)
      : sources_(std::move(sources)), interval_(interval) {}

  // Samples at t=0, then every `interval` ns until the engine requests
  // shutdown. Spawn on the machine's engine. When `progress` is set, each
  // sample also prints a one-line status to stderr.
  Task<> Main(bool progress = false);

  // Takes one sample at the current sim time (idempotent per timestamp:
  // a repeat call at the same t is dropped). Used by Main and for the final
  // end-of-run sample.
  void SampleNow();

  const std::vector<Sample>& samples() const { return samples_; }
  SimTime interval() const { return interval_; }

  // Column headers for ToCsv, in emit order.
  static const std::vector<std::string>& Columns();
  // RFC-4180-safe CSV of all samples (numeric cells never need quoting).
  std::string ToCsv() const;

 private:
  SamplerSources sources_;
  SimTime interval_;
  std::vector<Sample> samples_;
  // Cumulative NIC busy-ns at the previous sample (utilization deltas).
  uint64_t prev_read_busy_ = 0;
  uint64_t prev_write_busy_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_METRICS_SAMPLER_H_
