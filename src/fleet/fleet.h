// Memory-server fleet: N MemoryNodes, each behind its own RdmaNic, a
// deterministic PlacementMap assigning every swap slot a k-replica desired
// set, and the live replica table the data path and the rebuild driver share.
//
// The fleet tracks, per slot, which servers currently hold a copy (a bitmask)
// and whether the slot's data has been surfaced as lost. Reads resolve to the
// first live desired holder (primary) or, degraded, to any surviving holder;
// writes go to every live desired replica and commit the acknowledged mask.
// A crash clears the crashed server's bit everywhere: slots left with no
// copy are surfaced immediately (kFleetSlotLost — never silent), slots left
// under-replicated are queued for the background rebuild driver. A recovered
// server comes back *empty* (crash = data loss), so recovery also queues
// re-replication toward it.
//
// Node 0 is the machine's classic single-node pair (owned by
// FarMemoryMachine); the fleet owns servers 1..N-1. A machine without a
// fleet touches none of this — single-node runs stay byte-identical.
#ifndef MAGESIM_FLEET_FLEET_H_
#define MAGESIM_FLEET_FLEET_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/fleet/placement.h"
#include "src/hw/machine_params.h"
#include "src/hw/memnode.h"
#include "src/hw/rdma.h"
#include "src/sim/sync.h"

namespace magesim {

class FleetManager {
 public:
  struct Options {
    int num_nodes = 1;
    int replication = 2;  // clamped to [1, min(num_nodes, kMaxReplicas)]
    int vnodes_per_node = 64;
    uint64_t seed = 1;
    uint64_t capacity_bytes_per_node = 0;
  };

  // `nic0` / `node0` are the machine's existing node-0 hardware (not owned);
  // servers 1..num_nodes-1 are created and owned here, each with the same
  // MachineParams (a full-rate link per server).
  FleetManager(RdmaNic& nic0, MemoryNode& node0, const MachineParams& params,
               const Options& opt);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int replication() const { return placement_.replication(); }
  MemoryNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  RdmaNic& nic(int i) { return *nics_[static_cast<size_t>(i)]; }
  const PlacementMap& placement() const { return placement_; }

  // Wires the per-op fault model into every server's NIC.
  void SetFaultModelAll(HwFaultModel* model);

  // Marks `slot` as holding its full desired replica set (machine
  // prepopulation: remote copies exist before the run starts).
  void PrepopulateSlot(uint64_t slot);

  // --- data-plane resolution ---
  struct ReadTarget {
    int node = -1;        // -1 = no live copy anywhere (unrecoverable)
    bool degraded = false;  // served from a non-primary surviving replica
  };
  // `exclude_mask` skips servers that already failed this op (read failover).
  ReadTarget ReadTargetFor(uint64_t slot, uint16_t exclude_mask = 0) const;
  ReplicaSet DesiredReplicas(uint64_t slot) const {
    return placement_.ReplicasOf(slot);
  }
  // Live desired replicas a writeback should target (desired order).
  ReplicaSet WriteTargetsFor(uint64_t slot) const;
  // Commits a writeback's acknowledged replica mask. Zero acks surfaces the
  // slot as lost; a partial set queues repair toward the missing replicas.
  void CommitWrite(uint64_t slot, uint16_t acked_mask);
  bool HasLiveCopy(uint64_t slot) const;
  bool IsLostReported(uint64_t slot) const;
  uint16_t copies(uint64_t slot) const;
  uint16_t live_mask() const { return live_mask_; }

  // Degraded-read bookkeeping (called by the resilient read path once per
  // read actually served off-primary): counter + kFleetDegradedRead.
  void NoteDegradedRead(uint64_t slot, int served_node, int primary_node);

  // --- crash / recover (driven by the FaultInjector's episode listener) ---
  void OnNodeCrash(int node);
  void OnNodeRecover(int node);

  // --- rebuild queue (consumed by the RebuildDriver) ---
  void EnqueueRepair(uint64_t slot);
  bool PopRepair(uint64_t* slot);
  size_t rebuild_pending() const { return repair_queue_.size(); }
  SimEvent& repair_ready() { return repair_ready_; }
  // First live desired replica missing a copy (-1 = fully placed or nothing
  // live to rebuild toward) / a live holder to read the page from (-1 = data
  // gone).
  int RebuildTargetFor(uint64_t slot) const;
  int SourceFor(uint64_t slot) const;
  // Registers a re-replicated copy (clears any lost report on the slot).
  void AddCopy(uint64_t slot, int node);

  uint64_t slots_lost() const { return slots_lost_; }
  uint64_t degraded_reads() const { return degraded_reads_; }
  uint64_t repairs_queued() const { return repairs_queued_; }
  uint64_t slots_rebuilt() const { return slots_rebuilt_; }
  uint64_t crash_episodes() const;  // summed over all servers

  // Replica-safety sweep for tests/invariants: every slot that ever held
  // data either has a live copy or has been surfaced as lost. Returns the
  // number of silently-lost slots (0 = safe).
  uint64_t CheckConsistency() const;

 private:
  void EnsureSlot(uint64_t slot);
  bool NodeLive(int node) const {
    return (live_mask_ & (1u << node)) != 0;
  }

  PlacementMap placement_;
  std::vector<MemoryNode*> nodes_;  // [0] borrowed, rest own via owned_*
  std::vector<RdmaNic*> nics_;
  std::vector<std::unique_ptr<MemoryNode>> owned_nodes_;
  std::vector<std::unique_ptr<RdmaNic>> owned_nics_;

  // copies_[slot] bit n set = server n holds the slot's current data.
  // lost_[slot] = the slot's data became unreachable and was surfaced.
  std::vector<uint16_t> copies_;
  std::vector<uint8_t> lost_;
  uint16_t live_mask_ = 0;

  std::deque<uint64_t> repair_queue_;
  std::vector<uint8_t> queued_;  // dedup: slot already in repair_queue_
  SimEvent repair_ready_{"fleet-repair-ready"};

  uint64_t slots_lost_ = 0;
  uint64_t degraded_reads_ = 0;
  uint64_t repairs_queued_ = 0;
  uint64_t slots_rebuilt_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_FLEET_FLEET_H_
