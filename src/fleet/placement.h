// Deterministic slot placement for a memory-server fleet: a consistent-hash
// ring over swap slots. Each server contributes `vnodes_per_node` virtual
// points hashed from (seed, node, vnode); a slot's replica set is the first
// `replication` distinct servers encountered walking the ring clockwise from
// the slot's own hash. Same (seed, fleet size, replication, vnodes) =>
// byte-identical map on every platform, so same-seed runs of a fleet machine
// stay byte-identical. Adding a server moves only ~1/N of the slots.
#ifndef MAGESIM_FLEET_PLACEMENT_H_
#define MAGESIM_FLEET_PLACEMENT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace magesim {

// Upper bound on replication factor, sized so a replica set fits in a
// register-friendly struct and a per-slot copy set fits in a uint16_t mask.
inline constexpr int kMaxReplicas = 8;

struct ReplicaSet {
  int count = 0;
  std::array<int, kMaxReplicas> node{};

  uint16_t Mask() const {
    uint16_t m = 0;
    for (int i = 0; i < count; ++i) m |= static_cast<uint16_t>(1u << node[i]);
    return m;
  }
};

class PlacementMap {
 public:
  // `replication` is clamped to [1, min(num_nodes, kMaxReplicas)].
  PlacementMap(uint64_t seed, int num_nodes, int replication,
               int vnodes_per_node = 64);

  // Desired replica holders of `slot`, primary first. Liveness-independent:
  // the map never changes at runtime, so rebuild always converges back to
  // the same layout a fresh same-seed run would produce.
  ReplicaSet ReplicasOf(uint64_t slot) const;
  int PrimaryOf(uint64_t slot) const { return ReplicasOf(slot).node[0]; }

  int num_nodes() const { return num_nodes_; }
  int replication() const { return replication_; }
  size_t ring_points() const { return ring_.size(); }

  // FNV-1a over the ring — the determinism tests' map fingerprint.
  uint64_t Fingerprint() const;

 private:
  struct Point {
    uint64_t hash;
    int node;
  };

  uint64_t seed_;
  int num_nodes_;
  int replication_;
  std::vector<Point> ring_;  // sorted by (hash, node)
};

}  // namespace magesim

#endif  // MAGESIM_FLEET_PLACEMENT_H_
