#include "src/fleet/fleet.h"

#include "src/trace/trace.h"

namespace magesim {

FleetManager::FleetManager(RdmaNic& nic0, MemoryNode& node0,
                           const MachineParams& params, const Options& opt)
    : placement_(opt.seed, opt.num_nodes, opt.replication,
                 opt.vnodes_per_node) {
  int n = placement_.num_nodes();
  nodes_.push_back(&node0);
  nics_.push_back(&nic0);
  for (int i = 1; i < n; ++i) {
    owned_nodes_.push_back(std::make_unique<MemoryNode>(
        opt.capacity_bytes_per_node != 0 ? opt.capacity_bytes_per_node
                                         : node0.capacity_bytes(),
        i));
    owned_nodes_.back()->RegisterSetup();
    owned_nics_.push_back(std::make_unique<RdmaNic>(params, i));
    nodes_.push_back(owned_nodes_.back().get());
    nics_.push_back(owned_nics_.back().get());
  }
  live_mask_ = static_cast<uint16_t>((1u << n) - 1);
}

void FleetManager::SetFaultModelAll(HwFaultModel* model) {
  for (RdmaNic* nic : nics_) nic->SetFaultModel(model);
}

void FleetManager::EnsureSlot(uint64_t slot) {
  if (slot >= copies_.size()) {
    copies_.resize(slot + 1, 0);
    lost_.resize(slot + 1, 0);
    queued_.resize(slot + 1, 0);
  }
}

void FleetManager::PrepopulateSlot(uint64_t slot) {
  EnsureSlot(slot);
  copies_[slot] = placement_.ReplicasOf(slot).Mask();
}

FleetManager::ReadTarget FleetManager::ReadTargetFor(uint64_t slot,
                                                     uint16_t exclude_mask) const {
  ReadTarget t;
  if (slot >= copies_.size()) return t;
  uint16_t held =
      static_cast<uint16_t>(copies_[slot] & live_mask_ & ~exclude_mask);
  ReplicaSet desired = placement_.ReplicasOf(slot);
  for (int i = 0; i < desired.count; ++i) {
    int n = desired.node[i];
    if ((held & (1u << n)) != 0) {
      t.node = n;
      t.degraded = i != 0;  // not the placement primary
      return t;
    }
  }
  // No live desired holder; any surviving copy (mid-rebuild leftovers).
  for (int n = 0; n < num_nodes(); ++n) {
    if ((held & (1u << n)) != 0) {
      t.node = n;
      t.degraded = true;
      return t;
    }
  }
  return t;  // node = -1: the data is gone
}

ReplicaSet FleetManager::WriteTargetsFor(uint64_t slot) const {
  ReplicaSet desired = placement_.ReplicasOf(slot);
  ReplicaSet out;
  for (int i = 0; i < desired.count; ++i) {
    if (NodeLive(desired.node[i])) out.node[out.count++] = desired.node[i];
  }
  return out;
}

void FleetManager::CommitWrite(uint64_t slot, uint16_t acked_mask) {
  EnsureSlot(slot);
  acked_mask &= live_mask_;  // acks from a server that died since don't count
  copies_[slot] = acked_mask;
  if (acked_mask == 0) {
    if (lost_[slot] == 0) {
      lost_[slot] = 1;
      ++slots_lost_;
      TraceEmit(TraceEventType::kFleetSlotLost, -1, slot);
    }
    return;
  }
  lost_[slot] = 0;
  if (RebuildTargetFor(slot) >= 0) EnqueueRepair(slot);
}

bool FleetManager::HasLiveCopy(uint64_t slot) const {
  return slot < copies_.size() && (copies_[slot] & live_mask_) != 0;
}

bool FleetManager::IsLostReported(uint64_t slot) const {
  return slot < lost_.size() && lost_[slot] != 0;
}

uint16_t FleetManager::copies(uint64_t slot) const {
  return slot < copies_.size() ? copies_[slot] : 0;
}

void FleetManager::NoteDegradedRead(uint64_t slot, int served_node,
                                    int primary_node) {
  ++degraded_reads_;
  TraceEmit(TraceEventType::kFleetDegradedRead, served_node, slot, kTraceNoFrame,
            static_cast<uint64_t>(primary_node));
}

void FleetManager::OnNodeCrash(int node) {
  if (node < 0 || node >= num_nodes()) return;
  live_mask_ &= static_cast<uint16_t>(~(1u << node));
  uint16_t bit = static_cast<uint16_t>(1u << node);
  for (uint64_t slot = 0; slot < copies_.size(); ++slot) {
    if ((copies_[slot] & bit) == 0) continue;
    copies_[slot] = static_cast<uint16_t>(copies_[slot] & ~bit);
    if ((copies_[slot] & live_mask_) == 0) {
      // Every surviving byte of this slot is gone: surface it, never drop it
      // silently. (A later successful rewrite of resident data clears this.)
      if (lost_[slot] == 0) {
        lost_[slot] = 1;
        ++slots_lost_;
        TraceEmit(TraceEventType::kFleetSlotLost, node, slot);
      }
    } else {
      EnqueueRepair(slot);
    }
  }
}

void FleetManager::OnNodeRecover(int node) {
  if (node < 0 || node >= num_nodes()) return;
  live_mask_ |= static_cast<uint16_t>(1u << node);
  // The server rejoins empty — re-replicate every slot that wants a copy on
  // it (or anywhere else) back up to its desired set.
  for (uint64_t slot = 0; slot < copies_.size(); ++slot) {
    if ((copies_[slot] & live_mask_) == 0) continue;  // lost or never written
    if (RebuildTargetFor(slot) >= 0) EnqueueRepair(slot);
  }
}

void FleetManager::EnqueueRepair(uint64_t slot) {
  EnsureSlot(slot);
  if (queued_[slot] != 0) return;
  queued_[slot] = 1;
  ++repairs_queued_;
  repair_queue_.push_back(slot);
  TraceEmit(TraceEventType::kFleetRepairQueued, RebuildTargetFor(slot), slot);
  repair_ready_.Set();
}

bool FleetManager::PopRepair(uint64_t* slot) {
  if (repair_queue_.empty()) return false;
  *slot = repair_queue_.front();
  repair_queue_.pop_front();
  queued_[*slot] = 0;
  return true;
}

int FleetManager::RebuildTargetFor(uint64_t slot) const {
  if (slot >= copies_.size() || (copies_[slot] & live_mask_) == 0) return -1;
  ReplicaSet desired = placement_.ReplicasOf(slot);
  for (int i = 0; i < desired.count; ++i) {
    int n = desired.node[i];
    if (NodeLive(n) && (copies_[slot] & (1u << n)) == 0) return n;
  }
  return -1;
}

int FleetManager::SourceFor(uint64_t slot) const {
  if (slot >= copies_.size()) return -1;
  ReplicaSet desired = placement_.ReplicasOf(slot);
  for (int i = 0; i < desired.count; ++i) {
    int n = desired.node[i];
    if (NodeLive(n) && (copies_[slot] & (1u << n)) != 0) return n;
  }
  for (int n = 0; n < num_nodes(); ++n) {
    if (NodeLive(n) && (copies_[slot] & (1u << n)) != 0) return n;
  }
  return -1;
}

void FleetManager::AddCopy(uint64_t slot, int node) {
  EnsureSlot(slot);
  copies_[slot] |= static_cast<uint16_t>(1u << node);
  lost_[slot] = 0;
  ++slots_rebuilt_;
}

uint64_t FleetManager::crash_episodes() const {
  uint64_t total = 0;
  for (const MemoryNode* n : nodes_) total += n->crash_episodes();
  return total;
}

uint64_t FleetManager::CheckConsistency() const {
  uint64_t silent = 0;
  for (uint64_t slot = 0; slot < copies_.size(); ++slot) {
    bool ever_held = copies_[slot] != 0 || lost_[slot] != 0;
    if (!ever_held) continue;
    if ((copies_[slot] & live_mask_) == 0 && lost_[slot] == 0) ++silent;
  }
  return silent;
}

}  // namespace magesim
