#include "src/fleet/placement.h"

#include <algorithm>

namespace magesim {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and fully portable — the ring must
// come out identical on every platform for same-seed determinism.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

PlacementMap::PlacementMap(uint64_t seed, int num_nodes, int replication,
                           int vnodes_per_node)
    : seed_(seed), num_nodes_(num_nodes < 1 ? 1 : num_nodes) {
  replication_ = std::clamp(replication, 1, std::min(num_nodes_, kMaxReplicas));
  if (vnodes_per_node < 1) vnodes_per_node = 1;
  ring_.reserve(static_cast<size_t>(num_nodes_) * vnodes_per_node);
  for (int n = 0; n < num_nodes_; ++n) {
    for (int v = 0; v < vnodes_per_node; ++v) {
      uint64_t h = Mix64(seed_ ^ Mix64((static_cast<uint64_t>(n) << 32) |
                                       static_cast<uint64_t>(v)));
      ring_.push_back({h, n});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.node < b.node;  // hash ties broken deterministically
  });
}

ReplicaSet PlacementMap::ReplicasOf(uint64_t slot) const {
  ReplicaSet out;
  uint64_t h = Mix64(seed_ ^ Mix64(slot));
  size_t start = static_cast<size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), h,
                       [](const Point& p, uint64_t v) { return p.hash < v; }) -
      ring_.begin());
  for (size_t i = 0; i < ring_.size() && out.count < replication_; ++i) {
    int node = ring_[(start + i) % ring_.size()].node;
    bool seen = false;
    for (int j = 0; j < out.count; ++j) seen |= out.node[j] == node;
    if (!seen) out.node[out.count++] = node;
  }
  return out;
}

uint64_t PlacementMap::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<uint64_t>(num_nodes_));
  mix(static_cast<uint64_t>(replication_));
  for (const Point& p : ring_) {
    mix(p.hash);
    mix(static_cast<uint64_t>(p.node));
  }
  return h;
}

}  // namespace magesim
