// Slab allocator for the simulation hot path (SpeedMalloc's thesis applied
// to the simulator itself: allocation does not belong on the critical path).
//
// The DES engine allocates roughly one coroutine frame per simulated fault
// step — millions of short-lived, similarly-sized blocks per run — and glibc
// malloc was ~40% of wall time on the fig05 sweep. This allocator serves
// those blocks from per-size-class free lists carved out of large arena
// chunks: an allocation is a free-list pop, a free is a push, and chunks are
// never returned to the OS (the simulator is a batch process; peak footprint
// is the steady state anyway).
//
// Every block carries a 16-byte header recording which size class (or the
// heap fallback) it came from, so Deallocate routes correctly even if the
// enabled flag is flipped between an allocation and its free — which is
// exactly what the allocator-equivalence tests and the MAGESIM_SLAB=0
// kill-switch do.
//
// Determinism: the allocator affects only *where* frames live, never the
// order in which events run; golden traces are byte-identical with it on or
// off (tests/trace/allocator_equivalence_test.cc pins this).
//
// Toggles:
//   MAGESIM_SLAB=0        runtime kill-switch (pass through to operator new)
//   MAGESIM_SLAB_DEFAULT_OFF  compile-time default-off; set by the sanitizer
//       presets so ASan keeps seeing every coroutine-frame free (a recycling
//       slab would otherwise hide use-after-free of parked frames).
//
// Single-threaded by design, like the Engine it serves.
#ifndef MAGESIM_SIM_SLAB_ALLOC_H_
#define MAGESIM_SIM_SLAB_ALLOC_H_

#include <cstddef>
#include <cstdint>

namespace magesim {

struct SlabStats {
  uint64_t allocs = 0;          // total Allocate() calls
  uint64_t frees = 0;           // total Deallocate() calls
  uint64_t freelist_hits = 0;   // allocations served by recycling a block
  uint64_t heap_allocs = 0;     // oversize or disabled: ::operator new
  uint64_t chunks = 0;          // arena chunks carved
  uint64_t chunk_bytes = 0;     // bytes reserved in arena chunks
};

class SlabAllocator {
 public:
  // Largest block (including header) served from slabs; bigger requests fall
  // through to ::operator new (with a header, so Deallocate still routes).
  static constexpr size_t kMaxSlabBytes = 4096;
  static constexpr size_t kGranularity = 64;  // size-class width and alignment
  static constexpr size_t kNumClasses = kMaxSlabBytes / kGranularity;
  static constexpr size_t kChunkBytes = 256 * 1024;

  static void* Allocate(size_t n);
  static void Deallocate(void* p);

  // Whether *new* allocations are served from slabs. Initialized from
  // MAGESIM_SLAB / MAGESIM_SLAB_DEFAULT_OFF on first use.
  static bool enabled();
  // Test hook: reroutes future allocations; outstanding blocks are still
  // freed to wherever they came from (the header remembers).
  static void set_enabled(bool on);

  static const SlabStats& stats();
  static void ResetStats();
};

// Minimal std-allocator shim over SlabAllocator, for containers/handles on
// the hot path that would otherwise hit ::operator new per element —
// e.g. std::allocate_shared puts an RdmaCompletion plus its control block in
// one recyclable slab block.
template <typename T>
struct SlabStdAllocator {
  using value_type = T;
  SlabStdAllocator() = default;
  template <typename U>
  SlabStdAllocator(const SlabStdAllocator<U>&) {}  // NOLINT(runtime/explicit)
  T* allocate(size_t n) { return static_cast<T*>(SlabAllocator::Allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t) { SlabAllocator::Deallocate(p); }
  template <typename U>
  bool operator==(const SlabStdAllocator<U>&) const {
    return true;
  }
};

}  // namespace magesim

#endif  // MAGESIM_SIM_SLAB_ALLOC_H_
