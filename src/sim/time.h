// Simulated-time definitions. All simulation time is in integer nanoseconds.
#ifndef MAGESIM_SIM_TIME_H_
#define MAGESIM_SIM_TIME_H_

#include <cstdint>
#include <limits>

namespace magesim {

// Simulated time / durations, in nanoseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

// Convenience literal-style helpers: UsToNs(3.9) == 3900.
constexpr SimTime UsToNs(double us) { return static_cast<SimTime>(us * 1000.0); }
constexpr SimTime MsToNs(double ms) { return static_cast<SimTime>(ms * 1e6); }
constexpr SimTime SecToNs(double s) { return static_cast<SimTime>(s * 1e9); }
constexpr double NsToUs(SimTime ns) { return static_cast<double>(ns) / 1000.0; }
constexpr double NsToSec(SimTime ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace magesim

#endif  // MAGESIM_SIM_TIME_H_
