// Flat ring-buffer FIFO replacing std::deque in the simulation hot path.
//
// std::deque allocates a map block plus ~512-byte node chunks per queue; the
// sync primitives (mutex/semaphore/condvar waiter queues, channels) create
// thousands of them and push/pop on every contended handoff. RingQueue keeps
// elements in one contiguous power-of-two buffer that grows by doubling and
// is reused for the queue's whole lifetime: steady-state push/pop never
// allocates. FIFO semantics (and therefore wakeup order and determinism) are
// identical to the deque it replaces.
#ifndef MAGESIM_SIM_RING_QUEUE_H_
#define MAGESIM_SIM_RING_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/sim/hot_path.h"

namespace magesim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  MAGESIM_HOT_PATH void push_back(T x) {
    if (count_ == buf_.size()) Grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(x);
    ++count_;
  }

  MAGESIM_HOT_PATH void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T{};  // release resources held by the slot
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

  // Minimal forward iteration in FIFO order (used by broadcast wakeups).
  class const_iterator {
   public:
    const_iterator(const RingQueue* q, size_t i) : q_(q), i_(i) {}
    const T& operator*() const { return q_->buf_[(q_->head_ + i_) & (q_->buf_.size() - 1)]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RingQueue* q_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, count_); }

 private:
  void Grow() {
    size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_RING_QUEUE_H_
