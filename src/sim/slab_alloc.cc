#include "src/sim/slab_alloc.h"

#include <cassert>
#include <cstdlib>
#include <new>

#include "src/sim/prof_counters.h"

namespace magesim {
namespace {

// Block layout: [16-byte Header][user bytes]. The header keeps the user
// pointer at the 16-byte default new-alignment (coroutine frames rely on it)
// and records the block's origin for routing in Deallocate.
struct Header {
  uint32_t magic;
  int32_t cls;  // size-class index, or -1 for a ::operator new fallback block
  uint64_t pad;
};
static_assert(sizeof(Header) == 16, "header must preserve max alignment");

constexpr uint32_t kMagic = 0x51ab51abu;

struct FreeNode {
  FreeNode* next;
};

struct State {
  FreeNode* free_list[SlabAllocator::kNumClasses] = {};
  // Bump region of the current chunk.
  char* bump = nullptr;
  char* bump_end = nullptr;
  SlabStats stats;
  // Tri-state so the env lookup stays off the hot path without a
  // function-local static (whose thread-safe guard showed up in profiles at
  // millions of calls per run): -1 = not yet consulted.
  int enabled = -1;
};

// constinit: zero-initialized before any code runs, so allocations during
// static initialization of other TUs are safe.
constinit State g_state;

void InitEnabled(State& s) {
#ifdef MAGESIM_SLAB_DEFAULT_OFF
  s.enabled = 0;
#else
  s.enabled = 1;
#endif
  if (const char* e = std::getenv("MAGESIM_SLAB")) {
    s.enabled = !(e[0] == '0' && e[1] == '\0') ? 1 : 0;
  }
}

State& S() {
  State& s = g_state;
  if (s.enabled < 0) [[unlikely]] {
    InitEnabled(s);
  }
  return s;
}

// Rounds a gross size (user + header) up to its size class; kNumClasses for
// oversize requests.
size_t ClassFor(size_t gross) {
  return (gross + SlabAllocator::kGranularity - 1) / SlabAllocator::kGranularity - 1;
}

void* CarveFromChunk(State& s, size_t bytes) {
  if (static_cast<size_t>(s.bump_end - s.bump) < bytes) {
    s.bump = static_cast<char*>(::operator new(SlabAllocator::kChunkBytes));
    s.bump_end = s.bump + SlabAllocator::kChunkBytes;
    ++s.stats.chunks;
    s.stats.chunk_bytes += SlabAllocator::kChunkBytes;
    // The tail of the previous chunk (< one max-size block) is abandoned;
    // chunks themselves are never freed (arena).
  }
  void* p = s.bump;
  s.bump += bytes;
  return p;
}

}  // namespace

void* SlabAllocator::Allocate(size_t n) {
  MAGESIM_PROF_SCOPE(slab_alloc);
  State& s = S();
  ++s.stats.allocs;
  size_t gross = n + sizeof(Header);
  if (s.enabled && gross <= kMaxSlabBytes) {
    size_t cls = ClassFor(gross);
    Header* h;
    if (FreeNode* f = s.free_list[cls]) {
      s.free_list[cls] = f->next;
      ++s.stats.freelist_hits;
      h = reinterpret_cast<Header*>(f);
    } else {
      h = static_cast<Header*>(CarveFromChunk(s, (cls + 1) * kGranularity));
    }
    h->magic = kMagic;
    h->cls = static_cast<int32_t>(cls);
    return h + 1;
  }
  ++s.stats.heap_allocs;
  Header* h = static_cast<Header*>(::operator new(gross));
  h->magic = kMagic;
  h->cls = -1;
  return h + 1;
}

void SlabAllocator::Deallocate(void* p) {
  MAGESIM_PROF_SCOPE(slab_free);
  if (p == nullptr) return;
  State& s = S();
  ++s.stats.frees;
  Header* h = static_cast<Header*>(p) - 1;
  assert(h->magic == kMagic && "freed block not from SlabAllocator");
  if (h->cls < 0) {
    ::operator delete(h);
    return;
  }
  FreeNode* f = reinterpret_cast<FreeNode*>(h);
  f->next = s.free_list[h->cls];
  s.free_list[h->cls] = f;
}

bool SlabAllocator::enabled() { return S().enabled; }
void SlabAllocator::set_enabled(bool on) { S().enabled = on; }
const SlabStats& SlabAllocator::stats() { return S().stats; }
void SlabAllocator::ResetStats() { S().stats = SlabStats{}; }

}  // namespace magesim
