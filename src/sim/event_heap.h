// Flat 4-ary min-heap for the engine's event queue.
//
// Replaces std::priority_queue<Event, vector, greater<>>: the 4-ary layout
// halves tree depth, keeps each sift step inside one or two cache lines of
// the flat array, and lets us pre-reserve capacity so steady-state push/pop
// never allocates. Ordering is identical to the binary heap's *extraction
// order*: keys (t, seq) are unique per event, so any correct heap pops the
// same total order and determinism is unaffected by the layout change.
//
// Profile note (fig05 sweep, 2026-08): after the slab allocator landed, the
// event heap was the next-largest engine cost; switching binary -> 4-ary
// recovered most of it. If a future profile shows the heap dominating again
// (deep queues from very wide topologies), the documented fallback is a
// calendar queue / hierarchical timer wheel keyed on SimTime — see
// docs/INTERNALS.md "Perf harness & baselines".
#ifndef MAGESIM_SIM_EVENT_HEAP_H_
#define MAGESIM_SIM_EVENT_HEAP_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/sim/hot_path.h"

namespace magesim {

// Min-heap: Less(a, b) means a is extracted before b. Less must be a strict
// total order over the stored values for deterministic extraction.
template <typename T, typename Less>
class DAryHeap {
 public:
  static constexpr size_t kArity = 4;

  void reserve(size_t n) { v_.reserve(n); }
  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  const T& top() const {
    assert(!v_.empty());
    return v_.front();
  }

  MAGESIM_HOT_PATH void push(T x) {
    size_t i = v_.size();
    // magesim-lint: allow(hotpath-alloc): reserve()d to the event-count
    // high-water mark at engine start; steady-state pushes never grow.
    v_.push_back(std::move(x));
    // Sift up.
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!less_(v_[i], v_[parent])) break;
      std::swap(v_[i], v_[parent]);
      i = parent;
    }
  }

  MAGESIM_HOT_PATH void pop() {
    assert(!v_.empty());
    v_.front() = std::move(v_.back());
    v_.pop_back();
    if (v_.empty()) return;
    // Sift down: move the smallest child up until the hole settles.
    size_t i = 0;
    const size_t n = v_.size();
    for (;;) {
      size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t last = first + kArity < n ? first + kArity : n;
      size_t best = first;
      for (size_t c = first + 1; c < last; ++c) {
        if (less_(v_[c], v_[best])) best = c;
      }
      if (!less_(v_[best], v_[i])) break;
      std::swap(v_[i], v_[best]);
      i = best;
    }
  }

 private:
  std::vector<T> v_;
  Less less_;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_EVENT_HEAP_H_
