// The discrete-event simulation engine.
//
// A single Engine instance drives one simulated machine. All simulated
// activities are Task<> coroutines; they advance simulated time by suspending
// on awaitables (Delay, SimMutex::Lock, ...) that re-schedule them through the
// engine's time-ordered event queue. The engine is strictly single-threaded
// and deterministic: events with equal timestamps run in scheduling order.
//
// Every top-level coroutine spawned through Spawn() gets a logical TaskId.
// Scheduling a continuation inherits the scheduler's current task by default;
// primitives that wake *other* tasks (lock handoff, event release) pass the
// woken task's id explicitly so the analyzer can attribute every resumption
// to the logical task it belongs to. Child coroutines awaited via symmetric
// transfer run within the parent's event, and therefore its task id.
#ifndef MAGESIM_SIM_ENGINE_H_
#define MAGESIM_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/analysis_hooks.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace magesim {

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The engine currently driving this thread's simulation. Exactly one Engine
  // may exist at a time; sync primitives use this to avoid threading an engine
  // reference through every call site.
  static Engine& current();

  SimTime now() const { return now_; }

  // Schedules `h` at time `t`, attributed to the currently running task (or
  // to `task` in the explicit overload — used when waking another task).
  void ScheduleAt(SimTime t, std::coroutine_handle<> h) { ScheduleAt(t, h, current_task_); }
  void ScheduleAt(SimTime t, std::coroutine_handle<> h, TaskId task);
  void ScheduleAfter(SimTime dt, std::coroutine_handle<> h) {
    ScheduleAt(now_ + dt, h, current_task_);
  }
  void ScheduleAfter(SimTime dt, std::coroutine_handle<> h, TaskId task) {
    ScheduleAt(now_ + dt, h, task);
  }

  // Detaches `task` and schedules its first step at the current time under a
  // fresh logical task id, which is returned.
  TaskId Spawn(Task<> task);

  // The logical task whose event is currently being processed; kNoTask
  // outside Run() (setup and teardown code).
  TaskId current_task() const { return current_task_; }

  // As current_task(), but safe when no Engine exists.
  static TaskId CurrentTaskOrNone() {
    return current_ != nullptr ? current_->current_task_ : kNoTask;
  }

  // As now(), but safe when no Engine exists (diagnostics paths).
  static SimTime NowOrZero() { return current_ != nullptr ? current_->now_ : 0; }

  // Runs events until the queue is empty. Returns the number of events
  // processed. Long-running tasks should poll shutdown_requested() so that a
  // RequestShutdown() lets the queue drain naturally.
  uint64_t Run();

  // Asks cooperative loops (application threads, evictors, load generators)
  // to wind down. Does not cancel anything by itself.
  void RequestShutdown() { shutdown_ = true; }
  bool shutdown_requested() const { return shutdown_; }

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime t;
    uint64_t seq;
    std::coroutine_handle<> h;
    TaskId task;
    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t events_processed_ = 0;
  TaskId current_task_ = kNoTask;
  TaskId last_task_id_ = kNoTask;
  bool shutdown_ = false;

  static Engine* current_;
};

// Awaitable: suspends the current task for `d` nanoseconds of simulated time.
// A non-positive delay never suspends.
struct Delay {
  SimTime d;
  bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine& e = Engine::current();
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_await(hk->ctx, nullptr, "delay", AwaitKind::kDelay, e.current_task());
    }
    e.ScheduleAfter(d, h);
  }
  void await_resume() const noexcept {}
};

// Awaitable: re-enqueues the current task at the current time, letting other
// same-timestamp events run first (a cooperative yield).
struct YieldNow {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine& e = Engine::current();
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_await(hk->ctx, nullptr, "yield", AwaitKind::kYield, e.current_task());
    }
    e.ScheduleAfter(0, h);
  }
  void await_resume() const noexcept {}
};

}  // namespace magesim

#endif  // MAGESIM_SIM_ENGINE_H_
