// The discrete-event simulation engine.
//
// A single Engine instance drives one simulated machine. All simulated
// activities are Task<> coroutines; they advance simulated time by suspending
// on awaitables (Delay, SimMutex::Lock, ...) that re-schedule them through the
// engine's time-ordered event queue. The engine is strictly single-threaded
// and deterministic: events with equal timestamps run in scheduling order.
//
// Every top-level coroutine spawned through Spawn() gets a logical TaskId.
// Scheduling a continuation inherits the scheduler's current task by default;
// primitives that wake *other* tasks (lock handoff, event release) pass the
// woken task's id explicitly so the analyzer can attribute every resumption
// to the logical task it belongs to. Child coroutines awaited via symmetric
// transfer run within the parent's event, and therefore its task id.
#ifndef MAGESIM_SIM_ENGINE_H_
#define MAGESIM_SIM_ENGINE_H_

#include <cassert>
#include <coroutine>
#include <cstdint>

#include "src/sim/analysis_hooks.h"
#include "src/sim/event_heap.h"
#include "src/sim/prof_counters.h"
#include "src/sim/ring_queue.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace magesim {

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The engine currently driving this thread's simulation. Exactly one Engine
  // may exist at a time; sync primitives use this to avoid threading an engine
  // reference through every call site. Inline: this is called on every
  // suspension point, so it must compile to a single load.
  static Engine& current() {
    assert(current_ != nullptr && "no Engine is active");
    return *current_;
  }

  SimTime now() const { return now_; }

  // Schedules `h` at time `t`, attributed to the currently running task (or
  // to `task` in the explicit overload — used when waking another task).
  // Scheduling into the past clamps to now. Immediate events (t <= now) skip
  // the heap entirely — see the ready_ comment below.
  void ScheduleAt(SimTime t, std::coroutine_handle<> h) { ScheduleAt(t, h, current_task_); }
  void ScheduleAt(SimTime t, std::coroutine_handle<> h, TaskId task) {
    assert(h);
    if (t <= now_) {
      MAGESIM_PROF_SCOPE(sched_ring_push);
      ready_.push_back(Event{now_, seq_++, h, task});
    } else {
      MAGESIM_PROF_SCOPE(sched_heap_push);
      queue_.push(Event{t, seq_++, h, task});
    }
  }
  void ScheduleAfter(SimTime dt, std::coroutine_handle<> h) {
    ScheduleAt(now_ + dt, h, current_task_);
  }
  void ScheduleAfter(SimTime dt, std::coroutine_handle<> h, TaskId task) {
    ScheduleAt(now_ + dt, h, task);
  }

  // Detaches `task` and schedules its first step at the current time under a
  // fresh logical task id, which is returned.
  TaskId Spawn(Task<> task);

  // The logical task whose event is currently being processed; kNoTask
  // outside Run() (setup and teardown code).
  TaskId current_task() const { return current_task_; }

  // As current_task(), but safe when no Engine exists.
  static TaskId CurrentTaskOrNone() {
    return current_ != nullptr ? current_->current_task_ : kNoTask;
  }

  // As now(), but safe when no Engine exists (diagnostics paths).
  static SimTime NowOrZero() { return current_ != nullptr ? current_->now_ : 0; }

  // Runs events until the queue is empty. Returns the number of events
  // processed. Long-running tasks should poll shutdown_requested() so that a
  // RequestShutdown() lets the queue drain naturally.
  uint64_t Run();

  // Asks cooperative loops (application threads, evictors, load generators)
  // to wind down. Does not cancel anything by itself.
  void RequestShutdown() { shutdown_ = true; }
  bool shutdown_requested() const { return shutdown_; }

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime t;
    uint64_t seq;
    std::coroutine_handle<> h;
    TaskId task;
  };
  // (t, seq) is unique per event, so extraction order — and therefore the
  // simulation — is deterministic regardless of heap layout.
  struct EventBefore {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };

  // Events land in one of two structures:
  //  * ready_: events scheduled at the current time (lock handoffs, wakeups,
  //    yields, spawns — the majority in fault-heavy runs). Each entry's t is
  //    the now_ at push time and seq is globally increasing, so the ring is
  //    (t, seq)-sorted by construction and push/pop are O(1).
  //  * queue_: future events (delays, timers), a 4-ary min-heap.
  // The dispatch loop pops whichever front is (t, seq)-smaller, which is the
  // global minimum — extraction order is bit-identical to a single heap.
  RingQueue<Event> ready_;
  DAryHeap<Event, EventBefore> queue_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t events_processed_ = 0;
  TaskId current_task_ = kNoTask;
  TaskId last_task_id_ = kNoTask;
  bool shutdown_ = false;

  static Engine* current_;
};

// Awaitable: suspends the current task for `d` nanoseconds of simulated time.
// A non-positive delay never suspends.
struct Delay {
  SimTime d;
  bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine& e = Engine::current();
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_await(hk->ctx, nullptr, "delay", AwaitKind::kDelay, e.current_task());
    }
    e.ScheduleAfter(d, h);
  }
  void await_resume() const noexcept {}
};

// Awaitable: re-enqueues the current task at the current time, letting other
// same-timestamp events run first (a cooperative yield).
struct YieldNow {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine& e = Engine::current();
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_await(hk->ctx, nullptr, "yield", AwaitKind::kYield, e.current_task());
    }
    e.ScheduleAfter(0, h);
  }
  void await_resume() const noexcept {}
};

}  // namespace magesim

#endif  // MAGESIM_SIM_ENGINE_H_
