#include "src/sim/random.h"

#include <cassert>

namespace magesim {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift rejection-free mapping is fine for simulation use.
  return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * n) >> 64);
}

int64_t Rng::NextRange(int64_t lo, int64_t hi) {
  assert(hi > lo);
  return lo + static_cast<int64_t>(NextU64(static_cast<uint64_t>(hi - lo)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(static_cast<double>(n_) *
                                     std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

uint64_t ScrambleIndex(uint64_t index, uint64_t n) {
  // FNV-1a style scramble, then reduce. Collisions are acceptable: this is a
  // hotness-scattering function, not a permutation-sensitive index.
  uint64_t h = index ^ 0xcbf29ce484222325ULL;
  h *= 0x100000001b3ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h % n;
}

}  // namespace magesim
