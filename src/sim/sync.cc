#include "src/sim/sync.h"

namespace magesim {

namespace internal {
LockWaitObserver g_lock_wait_fn = nullptr;
void* g_lock_wait_ctx = nullptr;
}  // namespace internal

void SetLockWaitObserver(LockWaitObserver fn, void* ctx) {
  internal::g_lock_wait_fn = fn;
  internal::g_lock_wait_ctx = ctx;
}

namespace analysis_internal {
const SimAnalysisHooks* g_hooks = nullptr;
int g_exempt_depth = 0;
}  // namespace analysis_internal

void SetAnalysisHooks(const SimAnalysisHooks* hooks) {
  analysis_internal::g_hooks = hooks;
}

Task<> SimCondVar::Wait(SimMutex& m) {
  m.AssertHeld("condvar wait");
  m.Unlock();
  co_await WaitAwaiter{*this};
  co_await m.Lock();
}

}  // namespace magesim
