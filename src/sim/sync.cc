#include "src/sim/sync.h"

namespace magesim {

namespace internal {
LockWaitObserver g_lock_wait_fn = nullptr;
void* g_lock_wait_ctx = nullptr;
}  // namespace internal

void SetLockWaitObserver(LockWaitObserver fn, void* ctx) {
  internal::g_lock_wait_fn = fn;
  internal::g_lock_wait_ctx = ctx;
}

}  // namespace magesim
