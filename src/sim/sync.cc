#include "src/sim/sync.h"

// All primitives are header-only templates or inline; this translation unit
// exists so the library archive always has at least one object for sync.

namespace magesim {
namespace {
// Anchor to keep the TU non-empty under all configurations.
[[maybe_unused]] const int kSyncAnchor = 0;
}  // namespace
}  // namespace magesim
