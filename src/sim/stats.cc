#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <limits>

#include "src/sim/prof_counters.h"

namespace magesim {

int Histogram::BucketFor(int64_t value, int* sub) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    *sub = static_cast<int>(v);
    return 0;
  }
  int bucket = 63 - std::countl_zero(v);  // floor(log2(v)), >= 4
  int shift = bucket - 4;                 // map remaining bits into 16 sub-buckets
  *sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return bucket - 3;  // bucket 1 starts at value 16
}

int64_t Histogram::BucketUpperBound(int bucket, int sub) {
  if (bucket == 0) return sub;
  int log2 = bucket + 3;
  // Buckets whose base is >= 2^63 (top of the table, unreachable by Record)
  // would shift out of uint64_t range; saturate instead.
  if (log2 >= 63) return std::numeric_limits<int64_t>::max();
  int shift = log2 - 4;
  uint64_t base = 1ULL << log2;
  // The top bucket's upper bound overflows int64_t (base 2^63); saturate so
  // Percentile never returns a negative value for INT64_MAX-range samples.
  uint64_t bound = base + (static_cast<uint64_t>(sub + 1) << shift) - 1;
  if (bound > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(bound);
}

int Histogram::SlotFor(int64_t value) {
  int sub = 0;
  int bucket = BucketFor(value, &sub);
  return bucket * kSubBuckets + sub;
}

int64_t Histogram::SlotLowerBound(int slot) {
  if (slot < 0) slot = 0;
  if (slot >= kNumSlots) slot = kNumSlots - 1;
  return BucketLowerBound(slot / kSubBuckets, slot % kSubBuckets);
}

void Histogram::Record(int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(int64_t value, uint64_t n) {
  MAGESIM_PROF_SCOPE(hist_record);
  if (n == 0) return;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += n;
  // Accumulate in uint64_t: INT64_MAX-range samples would otherwise be
  // signed overflow (UB). Wraparound keeps bit-identical sums for the
  // non-overflowing case.
  sum_ = static_cast<int64_t>(static_cast<uint64_t>(sum_) +
                              static_cast<uint64_t>(value) * n);
  int sub = 0;
  int bucket = BucketFor(value, &sub);
  buckets_[bucket][sub] += n;
}

int64_t Histogram::BucketLowerBound(int bucket, int sub) {
  if (bucket == 0) return sub;
  int log2 = bucket + 3;
  // See BucketUpperBound: the top buckets saturate rather than overflow.
  if (log2 >= 63) return std::numeric_limits<int64_t>::max();
  int shift = log2 - 4;
  uint64_t lower = (1ULL << log2) + (static_cast<uint64_t>(sub) << shift);
  if (lower > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(lower);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (int s = 0; s < kSubBuckets; ++s) {
      uint64_t k = buckets_[b][s];
      if (k == 0) continue;
      if (seen + k > target) {
        // Interpolate within the sub-bucket: its k samples are assumed evenly
        // spread over [lower, upper]. The result is clamped to the observed
        // range, so a singleton sub-bucket reports the exact sample when it
        // is also the min or max.
        int64_t lower = BucketLowerBound(static_cast<int>(b), s);
        int64_t upper = BucketUpperBound(static_cast<int>(b), s);
        double width = static_cast<double>(upper - lower) + 1.0;
        double frac = (static_cast<double>(target - seen) + 0.5) / static_cast<double>(k);
        int64_t v = lower + static_cast<int64_t>(width * frac);
        return std::clamp(v, min(), max_);
      }
      seen += k;
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (int s = 0; s < kSubBuckets; ++s) {
      buckets_[b][s] += other.buckets_[b][s];
    }
  }
}

void Histogram::Reset() { *this = Histogram(); }

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus p99.9=%.2fus max=%.2fus",
                static_cast<unsigned long long>(count_), mean() / 1000.0,
                Percentile(50) / 1000.0, Percentile(99) / 1000.0,
                Percentile(99.9) / 1000.0, static_cast<double>(max_) / 1000.0);
  return buf;
}

namespace {
// Process-wide category table shared by every Breakdown (single-threaded).
struct CategoryTable {
  std::vector<std::string> names;
  std::map<std::string, int, std::less<>> ids;
};
CategoryTable& Categories() {
  static CategoryTable t;
  return t;
}
}  // namespace

int Breakdown::InternCategory(std::string_view category) {
  CategoryTable& t = Categories();
  auto it = t.ids.find(category);
  if (it != t.ids.end()) return it->second;
  int id = static_cast<int>(t.names.size());
  t.names.emplace_back(category);
  t.ids.emplace(std::string(category), id);
  return id;
}

const std::string& Breakdown::CategoryName(int id) {
  static const std::string kUnknown = "?";
  CategoryTable& t = Categories();
  if (id < 0 || id >= static_cast<int>(t.names.size())) return kUnknown;
  return t.names[static_cast<size_t>(id)];
}

double Breakdown::MeanPer(int category_id, uint64_t per_count) const {
  if (per_count == 0 || category_id < 0 ||
      category_id >= static_cast<int>(by_id_.size())) {
    return 0.0;
  }
  return static_cast<double>(by_id_[static_cast<size_t>(category_id)].total_ns) /
         static_cast<double>(per_count);
}

double Breakdown::MeanPer(const std::string& category, uint64_t per_count) const {
  auto it = Categories().ids.find(category);
  if (it == Categories().ids.end()) return 0.0;
  return MeanPer(it->second, per_count);
}

std::map<std::string, Breakdown::Entry> Breakdown::entries() const {
  std::map<std::string, Entry> out;
  for (size_t i = 0; i < by_id_.size(); ++i) {
    const Entry& e = by_id_[i];
    if (e.count == 0 && e.total_ns == 0) continue;
    out.emplace(CategoryName(static_cast<int>(i)), e);
  }
  return out;
}

void TimeSeries::Add(SimTime t, double value) {
  assert(t >= 0);
  size_t idx = static_cast<size_t>(t / bucket_width_);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0.0);
  }
  buckets_[idx] += value;
}

double TimeSeries::RatePerSec(size_t i) const {
  if (i >= buckets_.size()) return 0.0;
  return buckets_[i] / NsToSec(bucket_width_);
}

}  // namespace magesim
