// Deterministic random number generation for simulations: xoshiro256**
// engine plus uniform, exponential, and Zipf distributions. No global state;
// all callers own their generator so runs are reproducible per seed.
#ifndef MAGESIM_SIM_RANDOM_H_
#define MAGESIM_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace magesim {

// xoshiro256** (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n).
  uint64_t NextU64(uint64_t n);

  // Uniform in [lo, hi).
  int64_t NextRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed with the given mean (for Poisson arrivals).
  double NextExponential(double mean);

  bool NextBool(double p_true);

 private:
  uint64_t s_[4];
};

// Zipf-distributed integers over [0, n) with skew `theta` (0 < theta). Uses
// the Gray et al. quick method: O(n) precompute of zeta(n), O(1) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

// A scrambling permutation so that Zipf rank-0 hotness is scattered across an
// address range instead of clustering at its start (matches YCSB key hashing).
uint64_t ScrambleIndex(uint64_t index, uint64_t n);

}  // namespace magesim

#endif  // MAGESIM_SIM_RANDOM_H_
