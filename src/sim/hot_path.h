// MAGESIM_HOT_PATH: marks a function as part of the simulator's allocation-
// free hot path (the fault-in path, both evictor mains and their batch
// stages, the event heap, the ring queue, and the slab-backed coroutine
// promise types).
//
// The marker is consumed by static analysis, not by the optimizer:
//  * tools/tidy (the magesim clang-tidy plugin) attaches a
//    [[clang::annotate("magesim_hot_path")]] attribute that the
//    `magesim-hotpath-alloc` check reads; `new`, make_shared/make_unique,
//    and growth-capable container mutation inside an annotated function are
//    compile-time findings.
//  * tools/tidy/magesim_tidy_lite.py (the toolchain-free fallback) matches
//    the macro token itself, so annotations are enforced even on builds
//    without LLVM dev packages (including plain gcc CI legs).
//
// Violations that are deliberate — a pre-reserved vector whose push_back
// never grows in steady state, setup work gated behind a one-time branch —
// carry an inline justification:
//
//   v_.push_back(x);  // magesim-lint: allow(hotpath-alloc): reserve()d at start
//
// Allowlist policy: docs/INTERNALS.md §15 "Project lint pass".
#ifndef MAGESIM_SIM_HOT_PATH_H_
#define MAGESIM_SIM_HOT_PATH_H_

#if defined(__clang__)
#define MAGESIM_HOT_PATH [[clang::annotate("magesim_hot_path")]]
#else
// gcc warns on unknown scoped attributes under -Wall (-Werror in CI), and
// the lite checker keys on the token, not the attribute: expand to nothing.
#define MAGESIM_HOT_PATH
#endif

#endif  // MAGESIM_SIM_HOT_PATH_H_
