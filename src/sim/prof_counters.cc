#include "src/sim/prof_counters.h"

#ifdef MAGESIM_PROF

#include <cstdio>
#include <cstdlib>

namespace magesim {
namespace prof {
namespace {

Counter* g_head = nullptr;

}  // namespace

Counter::Counter(const char* n) : name(n) {
  if (g_head == nullptr) std::atexit(Report);
  next = g_head;
  g_head = this;
}

void Report() {
  uint64_t total = 0;
  for (Counter* c = g_head; c != nullptr; c = c->next) total += c->cycles;
  if (total == 0) return;
  std::fprintf(stderr, "\n== MAGESIM_PROF counters (nested scopes overlap) ==\n");
  std::fprintf(stderr, "%-24s %14s %16s %10s %7s\n", "scope", "calls", "cycles",
               "cyc/call", "share");
  for (Counter* c = g_head; c != nullptr; c = c->next) {
    if (c->calls == 0) continue;
    std::fprintf(stderr, "%-24s %14llu %16llu %10.1f %6.1f%%\n", c->name,
                 static_cast<unsigned long long>(c->calls),
                 static_cast<unsigned long long>(c->cycles),
                 static_cast<double>(c->cycles) / static_cast<double>(c->calls),
                 100.0 * static_cast<double>(c->cycles) / static_cast<double>(total));
  }
}

}  // namespace prof
}  // namespace magesim

#endif  // MAGESIM_PROF
