#include "src/sim/engine.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace magesim {

Engine* Engine::current_ = nullptr;

Engine::Engine() {
  if (current_ != nullptr) {
    std::fprintf(stderr, "magesim: only one Engine may exist at a time\n");
    std::abort();
  }
  current_ = this;
}

Engine::~Engine() { current_ = nullptr; }

Engine& Engine::current() {
  assert(current_ != nullptr && "no Engine is active");
  return *current_;
}

void Engine::ScheduleAt(SimTime t, std::coroutine_handle<> h, TaskId task) {
  assert(h);
  if (t < now_) {
    t = now_;  // Never schedule into the past.
  }
  queue_.push(Event{t, seq_++, h, task});
}

TaskId Engine::Spawn(Task<> task) {
  TaskId id = ++last_task_id_;
  ScheduleAt(now_, task.Detach(), id);
  return id;
}

uint64_t Engine::Run() {
  uint64_t processed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.t >= now_);
    now_ = ev.t;
    current_task_ = ev.task;
    ++processed;
    ev.h.resume();
  }
  current_task_ = kNoTask;
  events_processed_ += processed;
  return processed;
}

}  // namespace magesim
