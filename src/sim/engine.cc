#include "src/sim/engine.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/sim/prof_counters.h"

namespace magesim {

Engine* Engine::current_ = nullptr;

Engine::Engine() {
  if (current_ != nullptr) {
    std::fprintf(stderr, "magesim: only one Engine may exist at a time\n");
    std::abort();
  }
  current_ = this;
  // Steady-state push/pop must not allocate; 4K events outgrows every
  // workload's standing event population by a wide margin.
  queue_.reserve(4096);
}

Engine::~Engine() { current_ = nullptr; }

TaskId Engine::Spawn(Task<> task) {
  TaskId id = ++last_task_id_;
  ScheduleAt(now_, task.Detach(), id);
  return id;
}

uint64_t Engine::Run() {
  uint64_t processed = 0;
  const EventBefore before{};
  for (;;) {
    Event ev;
    // ready_ is (t, seq)-sorted by construction and its front always carries
    // t == now_ while non-empty, so comparing the two fronts yields the
    // global minimum — identical extraction order to a single heap.
    if (!ready_.empty()) {
      if (!queue_.empty() && before(queue_.top(), ready_.front())) {
        MAGESIM_PROF_SCOPE(run_heap_pop);
        ev = queue_.top();
        queue_.pop();
      } else {
        ev = ready_.front();
        ready_.pop_front();
      }
    } else if (!queue_.empty()) {
      MAGESIM_PROF_SCOPE(run_heap_pop);
      ev = queue_.top();
      queue_.pop();
    } else {
      break;
    }
    assert(ev.t >= now_);
    now_ = ev.t;
    current_task_ = ev.task;
    ++processed;
    {
      MAGESIM_PROF_SCOPE(run_resume);
      ev.h.resume();
    }
  }
  current_task_ = kNoTask;
  events_processed_ += processed;
  return processed;
}

}  // namespace magesim
