#include "src/sim/engine.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace magesim {

Engine* Engine::current_ = nullptr;

Engine::Engine() {
  if (current_ != nullptr) {
    std::fprintf(stderr, "magesim: only one Engine may exist at a time\n");
    std::abort();
  }
  current_ = this;
}

Engine::~Engine() { current_ = nullptr; }

Engine& Engine::current() {
  assert(current_ != nullptr && "no Engine is active");
  return *current_;
}

void Engine::ScheduleAt(SimTime t, std::coroutine_handle<> h) {
  assert(h);
  if (t < now_) {
    t = now_;  // Never schedule into the past.
  }
  queue_.push(Event{t, seq_++, h});
}

void Engine::Spawn(Task<> task) {
  ScheduleAt(now_, task.Detach());
}

uint64_t Engine::Run() {
  uint64_t processed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.t >= now_);
    now_ = ev.t;
    ++processed;
    ev.h.resume();
  }
  events_processed_ += processed;
  return processed;
}

}  // namespace magesim
