// Measurement utilities: counters, log-bucketed latency histograms with
// percentile queries, time-attribution breakdowns, and time-series recorders.
#ifndef MAGESIM_SIM_STATS_H_
#define MAGESIM_SIM_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/prof_counters.h"
#include "src/sim/time.h"

namespace magesim {

// HDR-style histogram: 64 power-of-two buckets, each split into 16 linear
// sub-buckets (~6% relative error). Records int64 values >= 0.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kNumSlots = 64 * kSubBuckets;

  // Dense index of the sub-bucket `value` records into, in [0, kNumSlots).
  // Slot order is value order, so conditioning aggregates on a latency slot
  // (span tail bands) composes with Percentile on the same histogram.
  static int SlotFor(int64_t value);
  // Smallest value that maps to `slot` (inverse of SlotFor, saturating).
  static int64_t SlotLowerBound(int slot);

  void Record(int64_t value);
  void RecordN(int64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }
  int64_t sum() const { return sum_; }

  // p in [0, 100]; locates the sub-bucket containing the p-th percentile
  // sample and linearly interpolates within it (samples assumed evenly
  // spread), clamped to the observed [min, max]. p<=0 yields min, p>=100
  // yields max.
  int64_t Percentile(double p) const;

  void Merge(const Histogram& other);
  void Reset();

  std::string Summary() const;  // "n=.. mean=.. p50=.. p99=.. p99.9=.. max=.." (µs)

 private:
  static int BucketFor(int64_t value, int* sub);
  static int64_t BucketUpperBound(int bucket, int sub);
  static int64_t BucketLowerBound(int bucket, int sub);

  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::array<std::array<uint64_t, kSubBuckets>, 64> buckets_{};
};

// Named duration accumulators for latency breakdowns (Figs. 6 and 16):
// each fault phase adds its duration under a fixed category.
//
// Category names are interned process-wide into small integer ids; hot
// callers intern once (e.g. a function-local static) and use the id overload
// of Add, which is a plain vector index — no per-call string map lookup. The
// string overloads remain as convenience wrappers for tests and cold paths.
class Breakdown {
 public:
  struct Entry {
    SimTime total_ns = 0;
    uint64_t count = 0;
    bool operator==(const Entry&) const = default;
  };

  // Interns (or looks up) a category name. Ids are dense, stable for the
  // process lifetime, and shared by all Breakdown instances. Single-threaded,
  // like the rest of the simulator.
  static int InternCategory(std::string_view category);
  static const std::string& CategoryName(int id);

  // Hot path: indexed accumulate.
  void Add(int category_id, SimTime ns) {
    MAGESIM_PROF_SCOPE(breakdown_add);
    if (category_id >= static_cast<int>(by_id_.size())) {
      by_id_.resize(static_cast<size_t>(category_id) + 1);
    }
    Entry& e = by_id_[static_cast<size_t>(category_id)];
    e.total_ns += ns;
    ++e.count;
  }

  // String-keyed convenience wrapper (interns on every call).
  void Add(const std::string& category, SimTime ns) { Add(InternCategory(category), ns); }

  // Mean ns per `per_count` events (e.g. per fault).
  double MeanPer(int category_id, uint64_t per_count) const;
  double MeanPer(const std::string& category, uint64_t per_count) const;

  // Name-keyed view, materialized for reporting; categories this breakdown
  // never touched are omitted.
  std::map<std::string, Entry> entries() const;

  void Reset() { by_id_.clear(); }

 private:
  std::vector<Entry> by_id_;  // indexed by interned category id
};

// Fixed-width time-bucketed series (for throughput timelines, Fig. 11).
class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width = 100 * kMillisecond)
      : bucket_width_(bucket_width) {}

  void Add(SimTime t, double value);

  // Value accumulated in each bucket; bucket i covers
  // [i*width, (i+1)*width).
  const std::vector<double>& buckets() const { return buckets_; }
  SimTime bucket_width() const { return bucket_width_; }

  // Rate per second for bucket i.
  double RatePerSec(size_t i) const;

 private:
  SimTime bucket_width_;
  std::vector<double> buckets_;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_STATS_H_
