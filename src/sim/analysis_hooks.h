// Analysis hook surface for the simulated-time concurrency analyzer.
//
// The sync primitives and the engine report lock acquisitions, unlocks,
// guarded-access assertions, and non-lock suspensions through one global hook
// table. Exactly one hook table may be installed at a time (the LockAnalyzer
// in src/analysis installs itself here); when none is installed every
// instrumentation point costs a single pointer test, the same idiom the
// Tracer and SimProfiler use. This header is deliberately free of sim/
// includes so both engine.h and sync.h can use it without cycles.
#ifndef MAGESIM_SIM_ANALYSIS_HOOKS_H_
#define MAGESIM_SIM_ANALYSIS_HOOKS_H_

#include <cstdint>

namespace magesim {

// Identity of a logical sim task. Assigned by Engine::Spawn; kNoTask means
// "outside any task" (setup/teardown code running before or after Run()).
using TaskId = uint64_t;
inline constexpr TaskId kNoTask = 0;

// What kind of awaiter a task suspended on while (possibly) holding locks.
// Lock-wait suspensions are not reported here: queueing on a SimMutex is the
// lock-order graph's job, not the held-across-await rule's.
enum class AwaitKind : int {
  kDelay = 0,   // Delay{} — modeled critical-section / device time
  kYield,       // YieldNow — cooperative yield at the same timestamp
  kEvent,       // SimEvent (RDMA completions, evictor wakeups, latches, ...)
  kSemaphore,   // SimSemaphore::Acquire
  kChannel,     // Channel<T> push/pop waits
  kCondVar,     // SimCondVar::Wait
};

struct SimAnalysisHooks {
  void* ctx = nullptr;
  // A lock was acquired (uncontended fast path, TryLock, or a FIFO handoff —
  // in the handoff case `task` is the new owner, not the unlocking task).
  void (*on_acquire)(void* ctx, const void* lock, const char* name, TaskId task,
                     bool shared) = nullptr;
  // An unlock was attempted by `task`. Fired before the primitive mutates its
  // state; `was_locked` is the primitive's own view, so double-unlocks are
  // observable even in capture (non-aborting) mode.
  void (*on_unlock)(void* ctx, const void* lock, const char* name, TaskId task,
                    bool shared, bool was_locked) = nullptr;
  // `task` suspended on a non-lock awaiter (`site` names it, e.g. the
  // SimEvent's name or "delay").
  void (*on_await)(void* ctx, const void* obj, const char* site, AwaitKind kind,
                   TaskId task) = nullptr;
  // A guarded access asserted that `task` holds `lock` (`what` describes the
  // guarded state, e.g. "buddy free lists").
  void (*on_assert_held)(void* ctx, const void* lock, const char* name,
                         TaskId task, const char* what) = nullptr;
};

namespace analysis_internal {
extern const SimAnalysisHooks* g_hooks;
extern int g_exempt_depth;
}  // namespace analysis_internal

// Null unless an analyzer is installed and the caller is outside every
// AnalysisExemptScope. Instrumentation points test this one pointer.
inline const SimAnalysisHooks* AnalysisHooks() {
  const SimAnalysisHooks* hooks = analysis_internal::g_hooks;
  if (hooks != nullptr && analysis_internal::g_exempt_depth > 0) return nullptr;
  return hooks;
}

// Installs (or, with nullptr, removes) the global hook table.
void SetAnalysisHooks(const SimAnalysisHooks* hooks);

// Suppresses analysis inside a scope (the lockdep_off() analogue). Used by
// deliberate modeling shortcuts that bypass the locking protocol — e.g. the
// ideal-kernel reclaim paths and InstantReclaim touch the buddy allocator and
// accounting lists directly, at zero simulated cost, as an explicit idealized
// model rather than a bug.
class AnalysisExemptScope {
 public:
  AnalysisExemptScope() { ++analysis_internal::g_exempt_depth; }
  ~AnalysisExemptScope() { --analysis_internal::g_exempt_depth; }
  AnalysisExemptScope(const AnalysisExemptScope&) = delete;
  AnalysisExemptScope& operator=(const AnalysisExemptScope&) = delete;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_ANALYSIS_HOOKS_H_
