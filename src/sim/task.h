// Task<T>: the coroutine type used for all simulated activities.
//
// Tasks are lazy: creating one does not run any code. They run either by being
// awaited from another task (`co_await std::move(task)`), or by being handed to
// Engine::Spawn(), which detaches them and schedules their first step at the
// current simulated time.
//
// Ownership rules:
//  * An un-spawned Task owns its coroutine frame and destroys it in ~Task.
//  * A detached (spawned) task's frame destroys itself at final_suspend.
//  * An awaited task resumes its awaiter via symmetric transfer at
//    final_suspend; the awaiting frame's temporary Task then destroys it.
#ifndef MAGESIM_SIM_TASK_H_
#define MAGESIM_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "src/sim/hot_path.h"
#include "src/sim/slab_alloc.h"

namespace magesim {

template <typename T = void>
class Task;

namespace detail {

class TaskPromiseBase {
 public:
  // Coroutine frames are the simulator's hottest allocation (roughly one per
  // simulated activity step); route them through the slab allocator. Frame
  // allocation looks these up in the promise_type's scope, which includes
  // this base in every Task<T>::promise_type.
  MAGESIM_HOT_PATH static void* operator new(std::size_t n) { return SlabAllocator::Allocate(n); }
  MAGESIM_HOT_PATH static void operator delete(void* p, std::size_t) { SlabAllocator::Deallocate(p); }
  MAGESIM_HOT_PATH static void operator delete(void* p) { SlabAllocator::Deallocate(p); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      TaskPromiseBase& p = h.promise();
      if (p.detached_) {
        if (p.exception_) {
          std::fprintf(stderr, "magesim: unhandled exception escaped a detached Task\n");
          std::abort();
        }
        h.destroy();
        return std::noop_coroutine();
      }
      if (p.continuation_) {
        return p.continuation_;
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> c) noexcept { continuation_ = c; }
  void Detach() noexcept { detached_ = true; }
  void RethrowIfException() {
    if (exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::coroutine_handle<> continuation_ = nullptr;
  bool detached_ = false;
  std::exception_ptr exception_ = nullptr;
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  class promise_type : public detail::TaskPromiseBase {
   public:
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value_ = std::forward<U>(v);
    }
    T TakeValue() { return std::move(value_); }

   private:
    T value_{};
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      DestroyFrame();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { DestroyFrame(); }

  bool valid() const { return handle_ != nullptr; }

  // Releases ownership (used by Engine::Spawn); the frame becomes
  // self-destroying at completion.
  std::coroutine_handle<> Detach() {
    assert(handle_);
    handle_.promise().Detach();
    auto h = handle_;
    handle_ = nullptr;
    return h;
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;  // Symmetric transfer: start the child task now.
      }
      T await_resume() {
        h.promise().RethrowIfException();
        return h.promise().TakeValue();
      }
    };
    return Awaiter{handle_};
  }

 private:
  void DestroyFrame() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  class promise_type : public detail::TaskPromiseBase {
   public:
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      DestroyFrame();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { DestroyFrame(); }

  bool valid() const { return handle_ != nullptr; }

  std::coroutine_handle<> Detach() {
    assert(handle_);
    handle_.promise().Detach();
    auto h = handle_;
    handle_ = nullptr;
    return h;
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;
      }
      void await_resume() { h.promise().RethrowIfException(); }
    };
    return Awaiter{handle_};
  }

  // For hand-written awaiters that embed a Task: arms `cont` as the
  // continuation and returns the handle to resume (symmetric transfer).
  // Ownership stays with this Task.
  std::coroutine_handle<> BeginAwait(std::coroutine_handle<> cont) noexcept {
    assert(handle_);
    handle_.promise().set_continuation(cont);
    return handle_;
  }

  void RethrowIfException() {
    if (handle_) handle_.promise().RethrowIfException();
  }

 private:
  void DestroyFrame() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_TASK_H_
