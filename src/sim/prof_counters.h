// Zero-default-cost cycle attribution for the simulator's hot path.
//
// Sampling profilers mis-attribute coroutine-heavy code (mcount arcs and
// gprof call counts are corrupted by frame resumption; see
// docs/INTERNALS.md "Profiling the event loop"), so hot-path attribution is
// done with explicit rdtsc scopes instead. Compile with -DMAGESIM_PROF to
// activate; without it every macro expands to nothing and the simulator is
// byte-for-byte unaffected.
//
//   void Engine::Run() {
//     ...
//     { MAGESIM_PROF_SCOPE(resume); ev.h.resume(); }
//   }
//
// A table (calls, total cycles, cycles/call, share) is printed to stderr at
// process exit. Scopes nest freely — inner scopes are also counted inside
// their enclosing scope, so the table is attribution, not a partition.
//
// Only place scopes in PLAIN functions: a scope inside a coroutine would
// live across suspension points and absorb every other activity that runs
// while the coroutine is parked.
#ifndef MAGESIM_SIM_PROF_COUNTERS_H_
#define MAGESIM_SIM_PROF_COUNTERS_H_

#ifdef MAGESIM_PROF

#include <cstdint>
#include <x86intrin.h>

namespace magesim {
namespace prof {

struct Counter {
  explicit Counter(const char* name);
  const char* name;
  uint64_t cycles = 0;
  uint64_t calls = 0;
  Counter* next = nullptr;  // intrusive registry chain
};

// Prints the counter table to stderr (registered via atexit on first use).
void Report();

class Scope {
 public:
  explicit Scope(Counter& c) : c_(c), t0_(__rdtsc()) {}
  ~Scope() {
    c_.cycles += __rdtsc() - t0_;
    ++c_.calls;
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Counter& c_;
  uint64_t t0_;
};

}  // namespace prof
}  // namespace magesim

#define MAGESIM_PROF_CONCAT2(a, b) a##b
#define MAGESIM_PROF_CONCAT(a, b) MAGESIM_PROF_CONCAT2(a, b)
#define MAGESIM_PROF_SCOPE(name_token)                             \
  static ::magesim::prof::Counter MAGESIM_PROF_CONCAT(             \
      magesim_prof_counter_, __LINE__){#name_token};               \
  ::magesim::prof::Scope MAGESIM_PROF_CONCAT(magesim_prof_scope_,  \
                                             __LINE__)(            \
      MAGESIM_PROF_CONCAT(magesim_prof_counter_, __LINE__))

#else  // !MAGESIM_PROF

#define MAGESIM_PROF_SCOPE(name_token) ((void)0)

#endif  // MAGESIM_PROF

#endif  // MAGESIM_SIM_PROF_COUNTERS_H_
