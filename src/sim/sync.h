// Simulated synchronization primitives.
//
// All primitives use strict FIFO wait queues, which reproduces the queueing
// behavior of contended kernel locks (ticket spinlocks, qspinlocks, mutex wait
// lists). Every lock records acquisition counts and cumulative/max wait time so
// experiments can report contention directly.
#ifndef MAGESIM_SIM_SYNC_H_
#define MAGESIM_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace magesim {

class SimMutex;

// Observer invoked on every contended lock handoff with the time the new
// owner spent queued. At most one observer is installed at a time (the
// sim-time profiler uses this to keep per-lock named wait totals); the hook
// costs one pointer test when none is installed.
using LockWaitObserver = void (*)(void* ctx, const SimMutex& m, SimTime waited_ns);
void SetLockWaitObserver(LockWaitObserver fn, void* ctx);

namespace internal {
extern LockWaitObserver g_lock_wait_fn;
extern void* g_lock_wait_ctx;
}  // namespace internal

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  SimTime total_wait_ns = 0;
  SimTime max_wait_ns = 0;

  double mean_wait_ns() const {
    return acquisitions == 0 ? 0.0 : static_cast<double>(total_wait_ns) / acquisitions;
  }
};

// A FIFO mutex. `co_await m.Lock()` acquires; Unlock() hands the lock directly
// to the next waiter (lock handoff), scheduled at the current time.
class SimMutex {
 public:
  explicit SimMutex(std::string name = "") : name_(std::move(name)) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  struct LockAwaiter {
    SimMutex& m;
    SimTime enqueue_time = 0;
    bool await_ready() {
      if (!m.locked_) {
        m.locked_ = true;
        ++m.stats_.acquisitions;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      enqueue_time = Engine::current().now();
      m.waiters_.push_back(Waiter{h, enqueue_time});
      ++m.stats_.contended;
    }
    void await_resume() const noexcept {}
  };

  LockAwaiter Lock() { return LockAwaiter{*this}; }

  void Unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    Waiter w = waiters_.front();
    waiters_.pop_front();
    SimTime waited = Engine::current().now() - w.enqueue_time;
    stats_.total_wait_ns += waited;
    if (waited > stats_.max_wait_ns) stats_.max_wait_ns = waited;
    ++stats_.acquisitions;
    if (internal::g_lock_wait_fn != nullptr) {
      internal::g_lock_wait_fn(internal::g_lock_wait_ctx, *this, waited);
    }
    Engine::current().ScheduleAfter(0, w.h);  // Lock ownership transfers.
  }

  bool TryLock() {
    if (locked_) return false;
    locked_ = true;
    ++stats_.acquisitions;
    return true;
  }

  // RAII guard usable across co_await points (its destructor runs when the
  // coroutine frame unwinds).
  class Guard {
   public:
    explicit Guard(SimMutex* m) : m_(m) {}
    Guard(Guard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (m_) m_->Unlock();
    }

   private:
    SimMutex* m_;
  };

  struct ScopedAwaiter {
    LockAwaiter inner;
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    Guard await_resume() { return Guard(&inner.m); }
  };

  // `auto g = co_await m.Scoped();`
  ScopedAwaiter Scoped() { return ScopedAwaiter{LockAwaiter{*this}}; }

  bool locked() const { return locked_; }
  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats{}; }
  const std::string& name() const { return name_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    SimTime enqueue_time;
  };

  std::string name_;
  bool locked_ = false;
  std::deque<Waiter> waiters_;
  LockStats stats_;
};

// In a discrete-event model a spinlock and a FIFO mutex behave identically
// (waiters queue and acquire in order); the distinction we preserve is
// statistical: spin-wait time is CPU burned, which callers may account.
using SimSpinLock = SimMutex;

// Manual-reset event: Set() releases all current and future waiters until
// Reset() is called.
class SimEvent {
 public:
  struct Awaiter {
    SimEvent& e;
    bool await_ready() const { return e.set_; }
    void await_suspend(std::coroutine_handle<> h) { e.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Awaiter Wait() { return Awaiter{*this}; }

  void Set() {
    set_ = true;
    ReleaseAll();
  }

  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

  // Wakes current waiters without latching the event.
  void Pulse() { ReleaseAll(); }

  size_t num_waiters() const { return waiters_.size(); }

  // Direct enqueue for composite primitives (SimBarrier).
  void waiters_push(std::coroutine_handle<> h) { waiters_.push_back(h); }

 private:
  void ReleaseAll() {
    for (auto h : waiters_) {
      Engine::current().ScheduleAfter(0, h);
    }
    waiters_.clear();
  }

  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Latch that releases waiters when its count reaches zero.
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {
    if (count_ <= 0) event_.Set();
  }

  void CountDown() {
    assert(count_ > 0);
    if (--count_ == 0) event_.Set();
  }

  SimEvent::Awaiter Wait() { return event_.Wait(); }
  int count() const { return count_; }

 private:
  int count_;
  SimEvent event_;
};

// Counting semaphore with FIFO waiters.
class SimSemaphore {
 public:
  explicit SimSemaphore(int64_t initial) : count_(initial) {}

  struct Awaiter {
    SimSemaphore& s;
    bool await_ready() {
      if (s.count_ > 0) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Awaiter Acquire() { return Awaiter{*this}; }

  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release(int64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      Engine::current().ScheduleAfter(0, waiters_.front());
      waiters_.pop_front();
      --n;
    }
    count_ += n;
  }

  int64_t count() const { return count_; }

 private:
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Tracks a set of spawned tasks; `co_await wg.Wait()` resumes when all
// Done() calls arrive. Reusable after the count hits zero (Add again).
class WaitGroup {
 public:
  void Add(int n = 1) {
    count_ += n;
    if (count_ > 0) event_.Reset();
  }
  void Done() {
    assert(count_ > 0);
    if (--count_ == 0) event_.Set();
  }
  SimEvent::Awaiter Wait() { return event_.Wait(); }
  int count() const { return count_; }

 private:
  int count_ = 0;
  SimEvent event_{};
};

// Reusable rendezvous barrier for `n` participants.
class SimBarrier {
 public:
  explicit SimBarrier(int n) : n_(n) {}

  struct Awaiter {
    SimBarrier& b;
    bool await_ready() {
      if (++b.arrived_ == b.n_) {
        b.arrived_ = 0;
        b.event_.Pulse();  // releases the n-1 waiting participants
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { b.event_.waiters_push(h); }
    void await_resume() const noexcept {}
  };

  Awaiter Arrive() { return Awaiter{*this}; }
  int waiting() const { return arrived_; }

 private:
  friend struct Awaiter;
  int n_;
  int arrived_ = 0;
  SimEvent event_;
};

// Bounded FIFO channel. Push suspends when full, Pop suspends when empty.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {}

  Task<> Push(T value) {
    while (items_.size() >= capacity_) {
      PushWaiterAwaiter a{this};
      co_await a;
    }
    items_.push_back(std::move(value));
    WakeOnePopper();
  }

  bool TryPush(T value) {
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    WakeOnePopper();
    return true;
  }

  Task<T> Pop() {
    while (items_.empty()) {
      PopWaiterAwaiter a{this};
      co_await a;
    }
    T v = std::move(items_.front());
    items_.pop_front();
    WakeOnePusher();
    co_return v;
  }

  bool TryPop(T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    WakeOnePusher();
    return true;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  struct PushWaiterAwaiter {
    Channel* c;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) { c->push_waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  struct PopWaiterAwaiter {
    Channel* c;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) { c->pop_waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  void WakeOnePopper() {
    if (!pop_waiters_.empty()) {
      Engine::current().ScheduleAfter(0, pop_waiters_.front());
      pop_waiters_.pop_front();
    }
  }
  void WakeOnePusher() {
    if (!push_waiters_.empty()) {
      Engine::current().ScheduleAfter(0, push_waiters_.front());
      push_waiters_.pop_front();
    }
  }

  size_t capacity_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> push_waiters_;
  std::deque<std::coroutine_handle<>> pop_waiters_;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_SYNC_H_
