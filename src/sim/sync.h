// Simulated synchronization primitives.
//
// All primitives use strict FIFO wait queues, which reproduces the queueing
// behavior of contended kernel locks (ticket spinlocks, qspinlocks, mutex wait
// lists). Every lock records acquisition counts and cumulative/max wait time so
// experiments can report contention directly.
//
// Locks additionally track their owning logical task (Engine TaskId) and
// report acquire/unlock/assert events through the analysis hooks
// (src/sim/analysis_hooks.h). With no analyzer installed each instrumentation
// point costs one pointer test; `AssertHeld()` is the annotation used by
// guarded shared state (see src/analysis/guarded.h).
#ifndef MAGESIM_SIM_SYNC_H_
#define MAGESIM_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/analysis_hooks.h"
#include "src/sim/engine.h"
#include "src/sim/ring_queue.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace magesim {

class SimMutex;

// Observer invoked on every contended lock handoff with the time the new
// owner spent queued. At most one observer is installed at a time (the
// sim-time profiler uses this to keep per-lock named wait totals); the hook
// costs one pointer test when none is installed.
using LockWaitObserver = void (*)(void* ctx, const SimMutex& m, SimTime waited_ns);
void SetLockWaitObserver(LockWaitObserver fn, void* ctx);

namespace internal {
extern LockWaitObserver g_lock_wait_fn;
extern void* g_lock_wait_ctx;
}  // namespace internal

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  SimTime total_wait_ns = 0;
  SimTime max_wait_ns = 0;

  double mean_wait_ns() const {
    return acquisitions == 0 ? 0.0 : static_cast<double>(total_wait_ns) / acquisitions;
  }
};

// A FIFO mutex. `co_await m.Lock()` acquires; Unlock() hands the lock directly
// to the next waiter (lock handoff), scheduled at the current time.
class SimMutex {
 public:
  explicit SimMutex(std::string name = "") : name_(std::move(name)) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  struct LockAwaiter {
    SimMutex& m;
    SimTime enqueue_time = 0;
    bool await_ready() {
      if (!m.locked_) {
        m.DoAcquire(Engine::CurrentTaskOrNone());
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      enqueue_time = e.now();
      m.waiters_.push_back(Waiter{h, enqueue_time, e.current_task()});
      ++m.stats_.contended;
    }
    void await_resume() const noexcept {}
  };

  LockAwaiter Lock() { return LockAwaiter{*this}; }

  void Unlock() {
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_unlock(hk->ctx, this, name_.c_str(), Engine::CurrentTaskOrNone(),
                    /*shared=*/false, /*was_locked=*/locked_);
      // Capture-mode analyzers record the double unlock above; keep the
      // primitive's state sane instead of corrupting it.
      if (!locked_) return;
    }
    assert(locked_);
    owner_ = kNoTask;
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    Waiter w = waiters_.front();
    waiters_.pop_front();
    SimTime waited = Engine::current().now() - w.enqueue_time;
    stats_.total_wait_ns += waited;
    if (waited > stats_.max_wait_ns) stats_.max_wait_ns = waited;
    ++stats_.acquisitions;
    owner_ = w.task;  // Lock ownership transfers directly to the waiter.
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_acquire(hk->ctx, this, name_.c_str(), w.task, /*shared=*/false);
    }
    if (internal::g_lock_wait_fn != nullptr) {
      internal::g_lock_wait_fn(internal::g_lock_wait_ctx, *this, waited);
    }
    Engine::current().ScheduleAfter(0, w.h, w.task);
  }

  bool TryLock() {
    if (locked_) return false;
    DoAcquire(Engine::CurrentTaskOrNone());
    return true;
  }

  // Asserts (via the installed analyzer) that the calling task owns this
  // lock. A no-op beyond one pointer test when no analyzer is installed;
  // setup/teardown code running outside any task always passes.
  void AssertHeld(const char* what = "") const {
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_assert_held(hk->ctx, this, name_.c_str(), Engine::CurrentTaskOrNone(), what);
    }
  }

  // RAII guard usable across co_await points (its destructor runs when the
  // coroutine frame unwinds).
  class Guard {
   public:
    explicit Guard(SimMutex* m) : m_(m) {}
    Guard(Guard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (m_) m_->Unlock();
    }

   private:
    SimMutex* m_;
  };

  struct ScopedAwaiter {
    LockAwaiter inner;
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    Guard await_resume() { return Guard(&inner.m); }
  };

  // `auto g = co_await m.Scoped();`
  ScopedAwaiter Scoped() { return ScopedAwaiter{LockAwaiter{*this}}; }

  bool locked() const { return locked_; }
  // The logical task holding the lock; kNoTask when free or when acquired
  // outside any task (setup code).
  TaskId owner() const { return owner_; }
  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats{}; }
  const std::string& name() const { return name_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    SimTime enqueue_time;
    TaskId task;
  };

  void DoAcquire(TaskId task) {
    locked_ = true;
    owner_ = task;
    ++stats_.acquisitions;
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_acquire(hk->ctx, this, name_.c_str(), task, /*shared=*/false);
    }
  }

  std::string name_;
  bool locked_ = false;
  TaskId owner_ = kNoTask;
  RingQueue<Waiter> waiters_;
  LockStats stats_;
};

// In a discrete-event model a spinlock and a FIFO mutex behave identically
// (waiters queue and acquire in order); the distinction we preserve is
// statistical: spin-wait time is CPU burned, which callers may account.
using SimSpinLock = SimMutex;

// A reader-writer lock with FIFO fairness: shared and exclusive waiters queue
// in arrival order, a release grants either the next writer or the next
// contiguous batch of readers, and arriving readers never overtake a queued
// writer. Not observed by the LockWaitObserver (which is typed on SimMutex);
// contention still lands in stats().
class SimSharedMutex {
 public:
  explicit SimSharedMutex(std::string name = "") : name_(std::move(name)) {}
  SimSharedMutex(const SimSharedMutex&) = delete;
  SimSharedMutex& operator=(const SimSharedMutex&) = delete;

  struct LockAwaiter {
    SimSharedMutex& m;
    SimTime enqueue_time = 0;
    bool await_ready() {
      if (m.CanGrantExclusive()) {
        m.GrantExclusive(Engine::CurrentTaskOrNone());
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      enqueue_time = e.now();
      m.waiters_.push_back(Waiter{h, enqueue_time, e.current_task(), /*shared=*/false});
      ++m.stats_.contended;
    }
    void await_resume() const noexcept {}
  };

  struct SharedAwaiter {
    SimSharedMutex& m;
    SimTime enqueue_time = 0;
    bool await_ready() {
      if (m.CanGrantShared()) {
        m.GrantShared(Engine::CurrentTaskOrNone());
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      enqueue_time = e.now();
      m.waiters_.push_back(Waiter{h, enqueue_time, e.current_task(), /*shared=*/true});
      ++m.stats_.contended;
    }
    void await_resume() const noexcept {}
  };

  LockAwaiter Lock() { return LockAwaiter{*this}; }
  SharedAwaiter LockShared() { return SharedAwaiter{*this}; }

  void Unlock() {
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_unlock(hk->ctx, this, name_.c_str(), Engine::CurrentTaskOrNone(),
                    /*shared=*/false, /*was_locked=*/exclusive_);
      if (!exclusive_) return;
    }
    assert(exclusive_);
    exclusive_ = false;
    owner_ = kNoTask;
    GrantFromQueue();
  }

  void UnlockShared() {
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_unlock(hk->ctx, this, name_.c_str(), Engine::CurrentTaskOrNone(),
                    /*shared=*/true, /*was_locked=*/shared_holders_ > 0);
      if (shared_holders_ == 0) return;
    }
    assert(shared_holders_ > 0);
    if (--shared_holders_ == 0) GrantFromQueue();
  }

  bool TryLock() {
    if (!CanGrantExclusive()) return false;
    GrantExclusive(Engine::CurrentTaskOrNone());
    return true;
  }

  bool TryLockShared() {
    if (!CanGrantShared()) return false;
    GrantShared(Engine::CurrentTaskOrNone());
    return true;
  }

  void AssertHeld(const char* what = "") const {
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_assert_held(hk->ctx, this, name_.c_str(), Engine::CurrentTaskOrNone(), what);
    }
  }

  class Guard {
   public:
    explicit Guard(SimSharedMutex* m) : m_(m) {}
    Guard(Guard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard() {
      if (m_) m_->Unlock();
    }

   private:
    SimSharedMutex* m_;
  };

  class SharedGuard {
   public:
    explicit SharedGuard(SimSharedMutex* m) : m_(m) {}
    SharedGuard(SharedGuard&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;
    SharedGuard& operator=(SharedGuard&&) = delete;
    ~SharedGuard() {
      if (m_) m_->UnlockShared();
    }

   private:
    SimSharedMutex* m_;
  };

  struct ScopedAwaiter {
    LockAwaiter inner;
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    Guard await_resume() { return Guard(&inner.m); }
  };

  struct ScopedSharedAwaiter {
    SharedAwaiter inner;
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    SharedGuard await_resume() { return SharedGuard(&inner.m); }
  };

  // `auto g = co_await m.Scoped();` / `auto g = co_await m.ScopedShared();`
  ScopedAwaiter Scoped() { return ScopedAwaiter{LockAwaiter{*this}}; }
  ScopedSharedAwaiter ScopedShared() { return ScopedSharedAwaiter{SharedAwaiter{*this}}; }

  bool locked_exclusive() const { return exclusive_; }
  int shared_holders() const { return shared_holders_; }
  TaskId owner() const { return owner_; }
  const LockStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    SimTime enqueue_time;
    TaskId task;
    bool shared;
  };

  // FIFO fairness: never barge past queued waiters.
  bool CanGrantExclusive() const {
    return !exclusive_ && shared_holders_ == 0 && waiters_.empty();
  }
  bool CanGrantShared() const { return !exclusive_ && waiters_.empty(); }

  void GrantExclusive(TaskId task) {
    exclusive_ = true;
    owner_ = task;
    ++stats_.acquisitions;
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_acquire(hk->ctx, this, name_.c_str(), task, /*shared=*/false);
    }
  }

  void GrantShared(TaskId task) {
    ++shared_holders_;
    ++stats_.acquisitions;
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_acquire(hk->ctx, this, name_.c_str(), task, /*shared=*/true);
    }
  }

  void AccountWait(const Waiter& w) {
    SimTime waited = Engine::current().now() - w.enqueue_time;
    stats_.total_wait_ns += waited;
    if (waited > stats_.max_wait_ns) stats_.max_wait_ns = waited;
  }

  void GrantFromQueue() {
    if (waiters_.empty()) return;
    Engine& e = Engine::current();
    if (!waiters_.front().shared) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      AccountWait(w);
      GrantExclusive(w.task);
      e.ScheduleAfter(0, w.h, w.task);
      return;
    }
    while (!waiters_.empty() && waiters_.front().shared) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      AccountWait(w);
      GrantShared(w.task);
      e.ScheduleAfter(0, w.h, w.task);
    }
  }

  std::string name_;
  bool exclusive_ = false;
  int shared_holders_ = 0;
  TaskId owner_ = kNoTask;
  RingQueue<Waiter> waiters_;
  LockStats stats_;
};

// Manual-reset event: Set() releases all current and future waiters until
// Reset() is called. The name feeds held-across-await diagnostics.
class SimEvent {
 public:
  explicit SimEvent(const char* name = "event") : name_(name) {}

  struct Awaiter {
    SimEvent& e;
    bool await_ready() const { return e.set_; }
    void await_suspend(std::coroutine_handle<> h) { e.waiters_push(h); }
    void await_resume() const noexcept {}
  };

  Awaiter Wait() { return Awaiter{*this}; }

  void Set() {
    set_ = true;
    ReleaseAll();
  }

  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

  // Wakes current waiters without latching the event.
  void Pulse() { ReleaseAll(); }

  size_t num_waiters() const { return waiters_.size(); }
  const char* name() const { return name_; }

  // Direct enqueue for composite primitives (SimBarrier).
  void waiters_push(std::coroutine_handle<> h) {
    Engine& eng = Engine::current();
    if (const SimAnalysisHooks* hk = AnalysisHooks()) {
      hk->on_await(hk->ctx, this, name_, AwaitKind::kEvent, eng.current_task());
    }
    waiters_.push_back(Waiter{h, eng.current_task()});
  }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    TaskId task;
  };

  void ReleaseAll() {
    for (const Waiter& w : waiters_) {
      Engine::current().ScheduleAfter(0, w.h, w.task);
    }
    waiters_.clear();
  }

  const char* name_;
  bool set_ = false;
  std::vector<Waiter> waiters_;
};

// Latch that releases waiters when its count reaches zero.
class CountdownLatch {
 public:
  explicit CountdownLatch(int count, const char* name = "latch")
      : count_(count), event_(name) {
    if (count_ <= 0) event_.Set();
  }

  void CountDown() {
    assert(count_ > 0);
    if (--count_ == 0) event_.Set();
  }

  SimEvent::Awaiter Wait() { return event_.Wait(); }
  int count() const { return count_; }

 private:
  int count_;
  SimEvent event_;
};

// Counting semaphore with FIFO waiters.
class SimSemaphore {
 public:
  explicit SimSemaphore(int64_t initial, const char* name = "semaphore")
      : count_(initial), name_(name) {}

  struct Awaiter {
    SimSemaphore& s;
    bool await_ready() {
      if (s.count_ > 0) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      if (const SimAnalysisHooks* hk = AnalysisHooks()) {
        hk->on_await(hk->ctx, &s, s.name_, AwaitKind::kSemaphore, e.current_task());
      }
      s.waiters_.push_back(Waiter{h, e.current_task()});
    }
    void await_resume() const noexcept {}
  };

  Awaiter Acquire() { return Awaiter{*this}; }

  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release(int64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      Engine::current().ScheduleAfter(0, w.h, w.task);
      --n;
    }
    count_ += n;
  }

  int64_t count() const { return count_; }
  const char* name() const { return name_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    TaskId task;
  };

  int64_t count_;
  const char* name_;
  RingQueue<Waiter> waiters_;
};

// Tracks a set of spawned tasks; `co_await wg.Wait()` resumes when all
// Done() calls arrive. Reusable after the count hits zero (Add again).
class WaitGroup {
 public:
  void Add(int n = 1) {
    count_ += n;
    if (count_ > 0) event_.Reset();
  }
  void Done() {
    assert(count_ > 0);
    if (--count_ == 0) event_.Set();
  }
  SimEvent::Awaiter Wait() { return event_.Wait(); }
  int count() const { return count_; }

 private:
  int count_ = 0;
  SimEvent event_{"waitgroup"};
};

// Reusable rendezvous barrier for `n` participants.
class SimBarrier {
 public:
  explicit SimBarrier(int n) : n_(n) {}

  struct Awaiter {
    SimBarrier& b;
    bool await_ready() {
      if (++b.arrived_ == b.n_) {
        b.arrived_ = 0;
        b.event_.Pulse();  // releases the n-1 waiting participants
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { b.event_.waiters_push(h); }
    void await_resume() const noexcept {}
  };

  Awaiter Arrive() { return Awaiter{*this}; }
  int waiting() const { return arrived_; }

 private:
  friend struct Awaiter;
  int n_;
  int arrived_ = 0;
  SimEvent event_{"barrier"};
};

// Condition variable paired with a SimMutex. The caller must hold `m`;
// Wait() releases it, suspends until a notification, and reacquires it
// before returning:
//
//   while (!pred) co_await cv.Wait(m);
class SimCondVar {
 public:
  explicit SimCondVar(const char* name = "condvar") : name_(name) {}

  Task<> Wait(SimMutex& m);

  void NotifyOne() {
    if (waiters_.empty()) return;
    Waiter w = waiters_.front();
    waiters_.pop_front();
    Engine::current().ScheduleAfter(0, w.h, w.task);
  }

  void NotifyAll() {
    for (const Waiter& w : waiters_) {
      Engine::current().ScheduleAfter(0, w.h, w.task);
    }
    waiters_.clear();
  }

  size_t num_waiters() const { return waiters_.size(); }
  const char* name() const { return name_; }

 private:
  struct WaitAwaiter {
    SimCondVar& cv;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      if (const SimAnalysisHooks* hk = AnalysisHooks()) {
        hk->on_await(hk->ctx, &cv, cv.name_, AwaitKind::kCondVar, e.current_task());
      }
      cv.waiters_.push_back(Waiter{h, e.current_task()});
    }
    void await_resume() const noexcept {}
  };

  struct Waiter {
    std::coroutine_handle<> h;
    TaskId task;
  };

  const char* name_;
  RingQueue<Waiter> waiters_;
};

// Bounded FIFO channel. Push suspends when full, Pop suspends when empty.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity, const char* name = "channel")
      : capacity_(capacity), name_(name) {}

  Task<> Push(T value) {
    while (items_.size() >= capacity_) {
      PushWaiterAwaiter a{this};
      co_await a;
    }
    items_.push_back(std::move(value));
    WakeOnePopper();
  }

  bool TryPush(T value) {
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    WakeOnePopper();
    return true;
  }

  Task<T> Pop() {
    while (items_.empty()) {
      PopWaiterAwaiter a{this};
      co_await a;
    }
    T v = std::move(items_.front());
    items_.pop_front();
    WakeOnePusher();
    co_return v;
  }

  bool TryPop(T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    WakeOnePusher();
    return true;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    TaskId task;
  };

  struct PushWaiterAwaiter {
    Channel* c;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      if (const SimAnalysisHooks* hk = AnalysisHooks()) {
        hk->on_await(hk->ctx, c, c->name_, AwaitKind::kChannel, e.current_task());
      }
      c->push_waiters_.push_back(Waiter{h, e.current_task()});
    }
    void await_resume() const noexcept {}
  };
  struct PopWaiterAwaiter {
    Channel* c;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      Engine& e = Engine::current();
      if (const SimAnalysisHooks* hk = AnalysisHooks()) {
        hk->on_await(hk->ctx, c, c->name_, AwaitKind::kChannel, e.current_task());
      }
      c->pop_waiters_.push_back(Waiter{h, e.current_task()});
    }
    void await_resume() const noexcept {}
  };

  void WakeOnePopper() {
    if (!pop_waiters_.empty()) {
      Waiter w = pop_waiters_.front();
      pop_waiters_.pop_front();
      Engine::current().ScheduleAfter(0, w.h, w.task);
    }
  }
  void WakeOnePusher() {
    if (!push_waiters_.empty()) {
      Waiter w = push_waiters_.front();
      push_waiters_.pop_front();
      Engine::current().ScheduleAfter(0, w.h, w.task);
    }
  }

  size_t capacity_;
  const char* name_;
  RingQueue<T> items_;
  RingQueue<Waiter> push_waiters_;
  RingQueue<Waiter> pop_waiters_;
};

}  // namespace magesim

#endif  // MAGESIM_SIM_SYNC_H_
