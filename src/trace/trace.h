// Structured event tracing for the simulation.
//
// The paging/hw layers emit typed events (fault lifecycle, eviction batches,
// TLB shootdowns, RDMA ops, frame circulation) through `TraceEmit`, a hook
// that costs one pointer test when no tracer is installed. A `Tracer` fans
// events out to sinks:
//   * TraceRingBuffer  — last-N window, queryable by page/frame, used by the
//                        invariant checker to explain violations.
//   * JsonlTraceSink   — one JSON object per line, for offline analysis.
//   * ChromeTraceSink  — chrome://tracing / Perfetto `trace_event` JSON for
//                        visual debugging of fault/eviction overlap.
//   * TraceHashSink    — streaming FNV-1a over the event stream plus per-type
//                        counters: a cheap determinism fingerprint (two runs
//                        are behaviorally identical iff hashes match).
// Timestamps come from the driving Engine, so the event stream is exactly as
// deterministic as the simulation itself.
#ifndef MAGESIM_TRACE_TRACE_H_
#define MAGESIM_TRACE_TRACE_H_

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace magesim {

inline constexpr uint64_t kTraceNoPage = ~0ULL;
inline constexpr uint64_t kTraceNoFrame = ~0ULL;

enum class TraceEventType : uint8_t {
  kFaultStart,       // actor=core, page, arg=write
  kFaultEnd,         // actor=core, page, frame, arg=latency ns
  kFaultDedup,       // actor=core, page (coalesced onto an in-flight fault)
  kPageMap,          // actor=core, page, frame
  kPageUnmap,        // actor=evictor id, page, frame
  kFrameAlloc,       // actor=core, page (vpn it will back), frame
  kFrameFree,        // actor=evictor id, page (old vpn), frame
  kEvictBatchStart,  // actor=evictor id, arg=requested batch
  kEvictBatchEnd,    // actor=evictor id, arg=pages freed
  kSyncEvictStart,   // actor=core
  kSyncEvictEnd,     // actor=core, arg=latency ns
  kShootdownBegin,   // actor=initiator core, arg=num pages
  kIpiAck,           // actor=target core, arg=delivery latency ns
  kShootdownDone,    // actor=initiator core, arg=total latency ns
  kRdmaReadPost,     // arg=bytes
  kRdmaReadDone,     // arg=op latency ns
  kRdmaWritePost,    // arg=bytes
  kRdmaWriteDone,    // arg=op latency ns
  kFreeWaitStart,    // actor=core, page (MAGE-style wait for the EP)
  kFreeWaitEnd,      // actor=core, page, arg=waited ns
  kPrefetchIssue,    // actor=core, page
  kRdmaReadError,    // arg=op latency ns (completion flagged failed)
  kRdmaWriteError,   // arg=op latency ns
  kRdmaReadDrop,     // arg=bytes (completion lost; never signals)
  kRdmaWriteDrop,    // arg=bytes
  kRdmaRetry,        // actor=core, page, arg=attempt number
  kRdmaTimeout,      // actor=core, page, arg=grace waited ns
  kBreakerOpen,      // actor=channel (0=read 1=write), arg=consecutive failures
  kBreakerHalfOpen,  // actor=channel (probe admitted)
  kBreakerClose,     // actor=channel, arg=time spent degraded ns
  kFaultWindow,      // arg=FaultKind (an injection window opened)
  kMemnodeCrash,     // memory node went dark
  kMemnodeRecover,   // memory node back up
  kPagePoisoned,     // actor=core, page (read retries exhausted)
  kWritebackLost,    // actor=evictor id, arg=pages lost
  kEvictBackpressure,// actor=evictor id, arg=waited ns
  kPrefetchThrottle, // actor=core, page (suppressed: read channel degraded)
  kAnalysisLockOrderEdge,  // actor=task id, page=from lock class, frame=to lock class
  kAnalysisViolation,      // actor=task id, arg=AnalysisViolationKind
  kTenantCharge,      // actor=core/evictor, page, frame, arg=tenant id
  kTenantUncharge,    // actor=core/evictor, page, frame, arg=tenant id
  kTenantHardWait,    // actor=core, page, arg=waited ns (hard-limit admission)
  kTenantEvictSelect, // actor=evictor id, arg=(tenant id << 32) | pages taken
  kTenantSoftAdjust,  // actor=tenant id, arg=new effective soft limit (pages)
  kTenantThrottle,    // actor=core, page, arg=tenant id (QoS denial/backoff)
  kFleetDegradedRead, // actor=node served from, page=slot, arg=primary node
  kFleetSlotLost,     // actor=last node holding it, page=slot (surfaced loss)
  kFleetRepairQueued, // actor=node missing the copy, page=slot
  kFleetRebuildStart, // actor=crashed/recovered node, arg=slots queued
  kFleetRebuildPage,  // actor=target node, page=slot (one re-replication)
  kFleetRebuildDone,  // arg=slots re-replicated since rebuild started
  kNumTypes,
};

inline constexpr int kNumTraceEventTypes = static_cast<int>(TraceEventType::kNumTypes);

// Stable snake_case name, used by the JSONL format and the golden files.
const char* TraceEventName(TraceEventType t);

struct TraceEvent {
  SimTime t = 0;
  TraceEventType type = TraceEventType::kFaultStart;
  int32_t actor = -1;             // core or evictor id, -1 = n/a
  uint64_t page = kTraceNoPage;   // vpn
  uint64_t frame = kTraceNoFrame; // pfn
  uint64_t arg = 0;               // type-specific (see enum comments)
};

// One-line human-readable rendering ("[12.345us] fault_start core=3 page=17").
std::string FormatTraceEvent(const TraceEvent& e);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& e) = 0;
  virtual void Flush() {}
};

// Keeps the newest `capacity` events; O(capacity) queries by page/frame.
class TraceRingBuffer : public TraceSink {
 public:
  explicit TraceRingBuffer(size_t capacity = 4096);

  void OnEvent(const TraceEvent& e) override;

  size_t size() const { return size_; }
  uint64_t total_events() const { return total_; }

  // Newest-last window of all buffered events.
  std::vector<TraceEvent> Snapshot() const;

  // The last `max` buffered events whose page or frame matches (either may be
  // the sentinel to match only the other), oldest first.
  std::vector<TraceEvent> LastTouching(uint64_t page, uint64_t frame, size_t max) const;

 private:
  std::vector<TraceEvent> buf_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  uint64_t total_ = 0;
};

// One JSON object per line:
//   {"t":123,"ev":"fault_start","actor":3,"page":17,"arg":1}
// Sentinel fields are omitted.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void OnEvent(const TraceEvent& e) override;
  void Flush() override;
  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

// Chrome trace_event JSON array (load in chrome://tracing or Perfetto).
// Fault, sync-eviction and shootdown lifecycles become duration (B/E) slices
// on their core's track; everything else is an instant event.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  void OnEvent(const TraceEvent& e) override;
  void Flush() override;
  bool ok() const { return out_.good(); }

  // Appends one pre-rendered trace_event object (no surrounding comma or
  // newline) into the array, sharing the comma state with Emit. Lets the
  // span tracer ride this sink with slices/flow arrows of its own.
  void AppendRaw(const char* json_object);

 private:
  void Emit(const TraceEvent& e, char phase, const char* name, int tid);

  std::ofstream out_;
  bool first_ = true;
};

// Streaming FNV-1a 64-bit hash over the full event stream + per-type counts.
// Two simulations with equal hashes emitted the same events in the same order
// at the same simulated times.
class TraceHashSink : public TraceSink {
 public:
  TraceHashSink();

  void OnEvent(const TraceEvent& e) override;

  uint64_t hash() const { return hash_; }
  uint64_t total_events() const { return total_; }
  uint64_t count(TraceEventType t) const {
    return counts_[static_cast<size_t>(t)];
  }

  // "hash=<hex> total=<n>" plus one "<name>=<count>" per non-zero type.
  std::string Summary() const;

 private:
  void Mix(uint64_t v);

  uint64_t hash_;
  uint64_t total_ = 0;
  std::array<uint64_t, kNumTraceEventTypes> counts_{};
};

// Fans events out to registered (non-owned) sinks. At most one Tracer is
// installed at a time (mirroring Engine::current()); hooks are no-ops while
// none is.
class Tracer {
 public:
  Tracer() = default;
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void AddSink(TraceSink* sink);
  void RemoveSink(TraceSink* sink);

  void Install();    // make this the process-wide tracer
  void Uninstall();  // no-op unless currently installed

  static Tracer* Get() { return current_; }

  void Emit(const TraceEvent& e);
  void Flush();

 private:
  std::vector<TraceSink*> sinks_;
  static Tracer* current_;
};

// The hook the instrumented layers call. Stamps the current simulated time.
void TraceEmitSlow(TraceEventType type, int32_t actor, uint64_t page, uint64_t frame,
                   uint64_t arg);

inline void TraceEmit(TraceEventType type, int32_t actor = -1, uint64_t page = kTraceNoPage,
                      uint64_t frame = kTraceNoFrame, uint64_t arg = 0) {
  if (Tracer::Get() != nullptr) {
    TraceEmitSlow(type, actor, page, frame, arg);
  }
}

}  // namespace magesim

#endif  // MAGESIM_TRACE_TRACE_H_
