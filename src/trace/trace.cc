#include "src/trace/trace.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "src/sim/engine.h"

namespace magesim {

Tracer* Tracer::current_ = nullptr;

const char* TraceEventName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kFaultStart: return "fault_start";
    case TraceEventType::kFaultEnd: return "fault_end";
    case TraceEventType::kFaultDedup: return "fault_dedup";
    case TraceEventType::kPageMap: return "page_map";
    case TraceEventType::kPageUnmap: return "page_unmap";
    case TraceEventType::kFrameAlloc: return "frame_alloc";
    case TraceEventType::kFrameFree: return "frame_free";
    case TraceEventType::kEvictBatchStart: return "evict_batch_start";
    case TraceEventType::kEvictBatchEnd: return "evict_batch_end";
    case TraceEventType::kSyncEvictStart: return "sync_evict_start";
    case TraceEventType::kSyncEvictEnd: return "sync_evict_end";
    case TraceEventType::kShootdownBegin: return "shootdown_begin";
    case TraceEventType::kIpiAck: return "ipi_ack";
    case TraceEventType::kShootdownDone: return "shootdown_done";
    case TraceEventType::kRdmaReadPost: return "rdma_read_post";
    case TraceEventType::kRdmaReadDone: return "rdma_read_done";
    case TraceEventType::kRdmaWritePost: return "rdma_write_post";
    case TraceEventType::kRdmaWriteDone: return "rdma_write_done";
    case TraceEventType::kFreeWaitStart: return "free_wait_start";
    case TraceEventType::kFreeWaitEnd: return "free_wait_end";
    case TraceEventType::kPrefetchIssue: return "prefetch_issue";
    case TraceEventType::kRdmaReadError: return "rdma_read_error";
    case TraceEventType::kRdmaWriteError: return "rdma_write_error";
    case TraceEventType::kRdmaReadDrop: return "rdma_read_drop";
    case TraceEventType::kRdmaWriteDrop: return "rdma_write_drop";
    case TraceEventType::kRdmaRetry: return "rdma_retry";
    case TraceEventType::kRdmaTimeout: return "rdma_timeout";
    case TraceEventType::kBreakerOpen: return "breaker_open";
    case TraceEventType::kBreakerHalfOpen: return "breaker_half_open";
    case TraceEventType::kBreakerClose: return "breaker_close";
    case TraceEventType::kFaultWindow: return "fault_window";
    case TraceEventType::kMemnodeCrash: return "memnode_crash";
    case TraceEventType::kMemnodeRecover: return "memnode_recover";
    case TraceEventType::kPagePoisoned: return "page_poisoned";
    case TraceEventType::kWritebackLost: return "writeback_lost";
    case TraceEventType::kEvictBackpressure: return "evict_backpressure";
    case TraceEventType::kPrefetchThrottle: return "prefetch_throttle";
    case TraceEventType::kAnalysisLockOrderEdge: return "analysis.lock_order_edge";
    case TraceEventType::kAnalysisViolation: return "analysis.violation";
    case TraceEventType::kTenantCharge: return "tenancy.charge";
    case TraceEventType::kTenantUncharge: return "tenancy.uncharge";
    case TraceEventType::kTenantHardWait: return "tenancy.hard_wait";
    case TraceEventType::kTenantEvictSelect: return "tenancy.evict_select";
    case TraceEventType::kTenantSoftAdjust: return "tenancy.soft_adjust";
    case TraceEventType::kTenantThrottle: return "tenancy.throttle";
    case TraceEventType::kFleetDegradedRead: return "fleet.degraded_read";
    case TraceEventType::kFleetSlotLost: return "fleet.slot_lost";
    case TraceEventType::kFleetRepairQueued: return "fleet.repair_queued";
    case TraceEventType::kFleetRebuildStart: return "fleet.rebuild_start";
    case TraceEventType::kFleetRebuildPage: return "fleet.rebuild_page";
    case TraceEventType::kFleetRebuildDone: return "fleet.rebuild_done";
    case TraceEventType::kNumTypes: break;
  }
  return "unknown";
}

std::string FormatTraceEvent(const TraceEvent& e) {
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf), "[%.3fus] %s", NsToUs(e.t),
                        TraceEventName(e.type));
  auto append = [&](const char* fmt, uint64_t v) {
    if (n < static_cast<int>(sizeof(buf))) {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n), fmt, v);
    }
  };
  if (e.actor >= 0) append(" actor=%" PRIu64, static_cast<uint64_t>(e.actor));
  if (e.page != kTraceNoPage) append(" page=%" PRIu64, e.page);
  if (e.frame != kTraceNoFrame) append(" frame=%" PRIu64, e.frame);
  append(" arg=%" PRIu64, e.arg);
  return std::string(buf, static_cast<size_t>(std::min<int>(n, sizeof(buf) - 1)));
}

// --- TraceRingBuffer ---

TraceRingBuffer::TraceRingBuffer(size_t capacity) : buf_(std::max<size_t>(capacity, 1)) {}

void TraceRingBuffer::OnEvent(const TraceEvent& e) {
  buf_[head_] = e;
  head_ = (head_ + 1) % buf_.size();
  if (size_ < buf_.size()) ++size_;
  ++total_;
}

std::vector<TraceEvent> TraceRingBuffer::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  size_t start = (head_ + buf_.size() - size_) % buf_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRingBuffer::LastTouching(uint64_t page, uint64_t frame,
                                                      size_t max) const {
  std::vector<TraceEvent> out;
  size_t start = (head_ + buf_.size() - size_) % buf_.size();
  for (size_t i = size_; i-- > 0 && out.size() < max;) {
    const TraceEvent& e = buf_[(start + i) % buf_.size()];
    bool page_hit = page != kTraceNoPage && e.page == page;
    bool frame_hit = frame != kTraceNoFrame && e.frame == frame;
    if (page_hit || frame_hit) out.push_back(e);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

// --- JsonlTraceSink ---

JsonlTraceSink::JsonlTraceSink(const std::string& path) : out_(path) {}

JsonlTraceSink::~JsonlTraceSink() { Flush(); }

void JsonlTraceSink::OnEvent(const TraceEvent& e) {
  char buf[224];
  int n = std::snprintf(buf, sizeof(buf), "{\"t\":%" PRId64 ",\"ev\":\"%s\"",
                        static_cast<int64_t>(e.t), TraceEventName(e.type));
  auto append = [&](const char* fmt, uint64_t v) {
    if (n < static_cast<int>(sizeof(buf))) {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n), fmt, v);
    }
  };
  if (e.actor >= 0) append(",\"actor\":%" PRIu64, static_cast<uint64_t>(e.actor));
  if (e.page != kTraceNoPage) append(",\"page\":%" PRIu64, e.page);
  if (e.frame != kTraceNoFrame) append(",\"frame\":%" PRIu64, e.frame);
  append(",\"arg\":%" PRIu64, e.arg);
  out_ << buf << "}\n";
}

void JsonlTraceSink::Flush() { out_.flush(); }

// --- ChromeTraceSink ---

ChromeTraceSink::ChromeTraceSink(const std::string& path) : out_(path) {
  out_ << "[";
}

ChromeTraceSink::~ChromeTraceSink() {
  out_ << "\n]\n";
  Flush();
}

void ChromeTraceSink::Emit(const TraceEvent& e, char phase, const char* name, int tid) {
  if (!first_) out_ << ",";
  first_ = false;
  // trace_event timestamps are in microseconds; keep sub-us resolution.
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "\n{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"
                "\"args\":{\"page\":%" PRId64 ",\"frame\":%" PRId64 ",\"arg\":%" PRIu64 "}}",
                name, phase, NsToUs(e.t), tid,
                e.page == kTraceNoPage ? -1 : static_cast<int64_t>(e.page),
                e.frame == kTraceNoFrame ? -1 : static_cast<int64_t>(e.frame), e.arg);
  out_ << buf;
}

void ChromeTraceSink::AppendRaw(const char* json_object) {
  if (!first_) out_ << ",";
  first_ = false;
  out_ << "\n" << json_object;
}

void ChromeTraceSink::OnEvent(const TraceEvent& e) {
  int tid = e.actor >= 0 ? e.actor : 999;  // 999 = un-attributed (NIC channels)
  switch (e.type) {
    case TraceEventType::kFaultStart: Emit(e, 'B', "fault", tid); return;
    case TraceEventType::kFaultEnd: Emit(e, 'E', "fault", tid); return;
    case TraceEventType::kSyncEvictStart: Emit(e, 'B', "sync_evict", tid); return;
    case TraceEventType::kSyncEvictEnd: Emit(e, 'E', "sync_evict", tid); return;
    case TraceEventType::kShootdownBegin: Emit(e, 'B', "shootdown", tid); return;
    case TraceEventType::kShootdownDone: Emit(e, 'E', "shootdown", tid); return;
    case TraceEventType::kFreeWaitStart: Emit(e, 'B', "free_wait", tid); return;
    case TraceEventType::kFreeWaitEnd: Emit(e, 'E', "free_wait", tid); return;
    default: Emit(e, 'i', TraceEventName(e.type), tid); return;
  }
}

void ChromeTraceSink::Flush() { out_.flush(); }

// --- TraceHashSink ---

namespace {
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

TraceHashSink::TraceHashSink() : hash_(kFnvOffset) {}

void TraceHashSink::Mix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xff;
    hash_ *= kFnvPrime;
  }
}

void TraceHashSink::OnEvent(const TraceEvent& e) {
  Mix(static_cast<uint64_t>(e.t));
  Mix(static_cast<uint64_t>(e.type));
  Mix(static_cast<uint64_t>(static_cast<int64_t>(e.actor)));
  Mix(e.page);
  Mix(e.frame);
  Mix(e.arg);
  ++total_;
  ++counts_[static_cast<size_t>(e.type)];
}

std::string TraceHashSink::Summary() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "hash=%016" PRIx64 " total=%" PRIu64, hash_, total_);
  std::string s = buf;
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    if (counts_[static_cast<size_t>(i)] == 0) continue;
    std::snprintf(buf, sizeof(buf), "\n%s=%" PRIu64,
                  TraceEventName(static_cast<TraceEventType>(i)),
                  counts_[static_cast<size_t>(i)]);
    s += buf;
  }
  return s;
}

// --- Tracer ---

Tracer::~Tracer() { Uninstall(); }

void Tracer::AddSink(TraceSink* sink) { sinks_.push_back(sink); }

void Tracer::RemoveSink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Tracer::Install() {
  assert(current_ == nullptr || current_ == this);
  current_ = this;
}

void Tracer::Uninstall() {
  if (current_ == this) current_ = nullptr;
}

void Tracer::Emit(const TraceEvent& e) {
  for (TraceSink* s : sinks_) s->OnEvent(e);
}

void Tracer::Flush() {
  for (TraceSink* s : sinks_) s->Flush();
}

void TraceEmitSlow(TraceEventType type, int32_t actor, uint64_t page, uint64_t frame,
                   uint64_t arg) {
  TraceEvent e;
  e.t = Engine::current().now();
  e.type = type;
  e.actor = actor;
  e.page = page;
  e.frame = frame;
  e.arg = arg;
  Tracer::Get()->Emit(e);
}

}  // namespace magesim
