#include "src/core/ideal_model.h"

#include <algorithm>

namespace magesim {

double IdealThroughputFraction(const std::vector<uint64_t>& faults_per_core, double t0_sec,
                               SimTime l_ns) {
  uint64_t max_faults = 0;
  for (uint64_t f : faults_per_core) max_faults = std::max(max_faults, f);
  double delay_sec = static_cast<double>(max_faults) * NsToSec(l_ns);
  if (t0_sec <= 0) return 1.0;
  return t0_sec / (t0_sec + delay_sec);
}

double IdealThroughputDropPercent(const std::vector<uint64_t>& faults_per_core, double t0_sec,
                                  SimTime l_ns) {
  return (1.0 - IdealThroughputFraction(faults_per_core, t0_sec, l_ns)) * 100.0;
}

double IdealJobsPerHour(const std::vector<uint64_t>& faults_per_core, double t0_sec,
                        SimTime l_ns) {
  if (t0_sec <= 0) return 0;
  return 3600.0 / t0_sec * IdealThroughputFraction(faults_per_core, t0_sec, l_ns);
}

}  // namespace magesim
