// Public entry point: assemble a simulated machine (topology, NIC, TLB
// shootdown fabric, paging kernel) around a workload, run it, and collect
// results. This is the API the examples and every benchmark harness use.
//
//   PageRankWorkload wl({.threads = 48});
//   FarMemoryMachine::Options opt;
//   opt.kernel = MageLibConfig();
//   opt.local_mem_ratio = 0.5;        // offload 50% of the WSS
//   FarMemoryMachine m(opt, wl);
//   RunResult r = m.Run();
//   std::cout << r.ops_per_sec << "\n";
#ifndef MAGESIM_CORE_FARMEM_H_
#define MAGESIM_CORE_FARMEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/lock_analyzer.h"
#include "src/check/invariant_checker.h"
#include "src/fleet/fleet.h"
#include "src/hw/memnode.h"
#include "src/metrics/metrics.h"
#include "src/metrics/profiler.h"
#include "src/metrics/sampler.h"
#include "src/paging/kernel.h"
#include "src/paging/kernels.h"
#include "src/resilience/fault_injector.h"
#include "src/resilience/rebuild.h"
#include "src/resilience/resilient_rdma.h"
#include "src/spans/spans.h"
#include "src/tenancy/memcg.h"
#include "src/trace/trace.h"
#include "src/workloads/workload.h"

namespace magesim {

// Per-tenant slice of a multi-tenant run (empty unless Options::tenancy /
// MAGESIM_TENANCY attached memory control groups).
struct TenantRunResult {
  std::string name;
  QosClass qos = QosClass::kNormal;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  uint64_t faults = 0;
  uint64_t usage_pages = 0;       // resident charge at end of run
  uint64_t peak_usage_pages = 0;
  uint64_t hard_limit_pages = 0;  // 0 = unlimited
  uint64_t soft_limit_pages = 0;
  uint64_t effective_soft_limit_pages = 0;
  uint64_t max_overage_pages = 0;
  uint64_t evict_selected = 0;
  uint64_t hard_limit_waits = 0;
  SimTime hard_wait_ns = 0;
  uint64_t soft_adjusts = 0;
  uint64_t prefetch_denied = 0;
  uint64_t backpressure_waits = 0;
};

struct RunResult {
  // Workload-completion time (when the last application thread finished, or
  // the configured time limit).
  double sim_seconds = 0;
  // Length of the measured window (sim_seconds minus warmup).
  double measured_seconds = 0;
  uint64_t total_ops = 0;
  double ops_per_sec = 0;
  double jobs_per_hour = 0;  // 3600 / sim_seconds (batch jobs, §3.1)

  // Paging behavior.
  uint64_t faults = 0;
  uint64_t sync_evictions = 0;
  uint64_t evicted_pages = 0;
  uint64_t free_page_waits = 0;
  uint64_t prefetched_pages = 0;
  double fault_mops = 0;  // major faults per second, in millions
  Histogram fault_latency;
  Breakdown fault_breakdown;
  Histogram sync_evict_latency;

  // Fabric.
  double nic_read_gbps = 0;
  double nic_write_gbps = 0;
  Histogram tlb_shootdown_latency;
  Histogram ipi_delivery_latency;
  uint64_t ipis_sent = 0;

  // Contention diagnostics.
  LockStats accounting_lock;

  // Per-core major fault counts (input to the analytic ideal model).
  std::vector<uint64_t> faults_per_core;

  // Invariant checking (when Options::check_interval / check_final enabled).
  uint64_t invariant_checks = 0;
  uint64_t invariant_violations = 0;
  std::string first_violation;  // empty when clean

  // Lock-discipline analysis (when Options::analysis / MAGESIM_ANALYSIS
  // enabled; zero otherwise).
  uint64_t analysis_locks = 0;        // lock instances seen
  uint64_t analysis_order_edges = 0;  // acquisition-order digraph edges
  uint64_t analysis_violations = 0;
  std::string analysis_first_violation;  // empty when clean

  // Resilience (zero unless a fault plan / the resilient path was enabled).
  uint64_t rdma_retries = 0;
  uint64_t rdma_timeouts = 0;
  uint64_t breaker_opens = 0;  // read + write channels combined
  uint64_t pages_poisoned = 0;
  uint64_t writebacks_lost = 0;
  uint64_t prefetch_throttles = 0;
  uint64_t injected_drops = 0;
  uint64_t injected_errors = 0;
  uint64_t fault_windows = 0;
  uint64_t memnode_crashes = 0;
  bool aborted = false;          // TerminalPolicy::kFailRun tripped
  std::string abort_reason;

  // Memory-server fleet (zero unless Options::fleet.num_nodes > 1).
  uint64_t fleet_nodes = 0;           // 0 = no fleet
  uint64_t fleet_degraded_reads = 0;  // reads served off the placement primary
  uint64_t fleet_slots_lost = 0;      // slots surfaced with zero live replicas
  uint64_t fleet_repairs_queued = 0;
  uint64_t fleet_slots_rebuilt = 0;   // replica copies restored by rebuild
  uint64_t fleet_rebuild_pending = 0; // repair backlog at end of run
  uint64_t fleet_silent_losses = 0;   // CheckConsistency() at end — must be 0

  // Per-tenant results, in spec order (empty without tenancy).
  std::vector<TenantRunResult> tenants;
};

class FarMemoryMachine {
 public:
  struct Options {
    KernelConfig kernel;
    // Fraction of the working set kept in local DRAM; (1 - ratio) is the
    // paper's "X% far memory".
    double local_mem_ratio = 1.0;
    // Hardware preset; kernel.virtualized selects VM-exit costs by default.
    MachineParams hw = MachineParams{};
    bool hw_overridden = false;
    uint64_t seed = 1;
    // Hard stop (simulated time); 0 = run until the workload completes.
    SimTime time_limit = 0;
    // Discard everything before this instant from the measured statistics
    // (fault counts, latency histograms, NIC/TLB stats): steady-state
    // measurement for open-ended workloads.
    SimTime stats_warmup = 0;
    // Run the invariant checker every `check_interval` ns of simulated time
    // (0 = no periodic checks). The MAGESIM_CHECK_INTERVAL_US environment
    // variable, when set, overrides this — so every existing harness can be
    // re-run checked without code changes.
    SimTime check_interval = 0;
    // Run one final check after the simulation drains.
    bool check_final = false;
    // Unified observability (src/metrics): registry + profiler + sampler.
    // Each MAGESIM_METRICS_* environment override also force-enables the
    // subsystem, so any existing harness can emit a run-report unchanged:
    //   MAGESIM_METRICS_OUT=report.json   JSON run-report path
    //   MAGESIM_METRICS_CSV=series.csv    sampler time-series CSV path
    //   MAGESIM_METRICS_PROM=metrics.txt  Prometheus text exposition path
    //   MAGESIM_METRICS_SAMPLE_INTERVAL_US=500   sampling period
    //   MAGESIM_METRICS_PROGRESS=1        per-sample stderr progress line
    struct MetricsOptions {
      bool enabled = false;
      // 0 = 1 ms default when enabled.
      SimTime sample_interval = 0;
      std::string report_path;  // JSON run-report ("" = don't write)
      std::string csv_path;     // time-series CSV
      std::string prom_path;    // Prometheus text exposition
      bool progress = false;
    };
    MetricsOptions metrics;

    // Causal span tracing with critical-path tail attribution (src/spans).
    // Each MAGESIM_SPANS* environment override also force-enables it:
    //   MAGESIM_SPANS=1                   enable ("0" disables)
    //   MAGESIM_SPANS_OUT=spans.jsonl     JSONL span export path
    //   MAGESIM_SPANS_TOP_K=16            slowest exemplars per op kind
    // Enabling spans adds a `tail` section to the JSON run-report and
    // spans.* counters to the registry; with spans disabled every golden
    // and benchmark is byte-identical to a build without the subsystem.
    struct SpansOptions {
      bool enabled = false;
      std::string out_path;  // JSONL span export ("" = don't write)
      int top_k = 8;
      // Trace every Nth root op per kind (deterministic head sampling).
      // The enabled-by-default rate keeps spans-on perf_fault_path within
      // the ≤5% faults/sec budget; set 1 for full fidelity (tests, goldens).
      int sample_every = 32;
    };
    SpansOptions spans;

    // Simulated-time lock-discipline analysis (src/analysis): ownership,
    // guarded-state, lock-order and held-across-await checking on every sim
    // lock. The MAGESIM_ANALYSIS environment variable force-enables it ("0"
    // disables), and building with -DMAGESIM_ANALYSIS=ON flips the
    // compile-time default so the whole test suite runs analyzed.
    struct AnalysisConfig {
#ifdef MAGESIM_ANALYSIS_DEFAULT_ON
      bool enabled = true;
#else
      bool enabled = false;
#endif
      // Abort with a named diagnostic on the first violation (the CI
      // posture). When false, violations are recorded into RunResult instead.
      bool abort_on_violation = true;
    };
    AnalysisConfig analysis;

    // Deterministic fault injection: a FaultPlan spec/JSON string, or
    // "@path" to load one from a file. The MAGESIM_FAULT_PLAN environment
    // variable overrides this. Parse errors throw std::invalid_argument from
    // the constructor. A non-empty plan also enables the resilient data path.
    std::string fault_plan;
    // Attach the resilient data path (deadlines/retries/breakers) even with
    // no fault plan — e.g. to measure its healthy-path overhead.
    bool resilience_enabled = false;
    // Retry/breaker/terminal-policy tuning. `resilience.seed == 0` derives a
    // stream from Options::seed.
    ResilienceOptions resilience;

    // Memory-server fleet: shard the far side over `num_nodes` servers with
    // `replication`-way replicated slots and a background rebuild driver.
    // num_nodes > 1 force-enables the resilient data path (fleet routing
    // lives there); num_nodes == 1 (default) is the classic single-node
    // machine, byte-identical to builds without the fleet subsystem.
    // Environment overrides: MAGESIM_FLEET_NODES, MAGESIM_FLEET_REPLICAS,
    // MAGESIM_FLEET_REBUILD_GBPS.
    struct FleetConfig {
      int num_nodes = 1;       // clamped to [1, 16]
      int replication = 2;     // clamped to [1, min(num_nodes, kMaxReplicas)]
      int vnodes_per_node = 64;
      double rebuild_gbps = 10.0;  // background re-replication pacing
    };
    FleetConfig fleet;

    // Multi-tenant memory control groups. When enabled with a non-empty
    // tenant list, the machine *replaces* the workload passed to the
    // constructor with a MultiTenantWorkload built from the specs, attaches
    // a TenancyManager to the kernel (per-tenant accounting, QoS-aware
    // victim selection, hard-limit admission, balance controller), and fills
    // RunResult::tenants. The MAGESIM_TENANCY environment variable
    // (';'-separated spec list, see src/tenancy/tenant_spec.h) overrides
    // this, so any existing harness can be run multi-tenant unchanged.
    TenancyOptions tenancy;
  };

  FarMemoryMachine(Options options, Workload& workload);
  ~FarMemoryMachine();

  // Runs the full simulation (blocking). May be called once.
  RunResult Run();

  // Accessors valid during/after Run (used by tests and custom harnesses).
  Kernel& kernel() { return *kernel_; }
  Engine& engine() { return *engine_; }
  RdmaNic& nic() { return *nic_; }
  // With tenancy attached this is the machine-built MultiTenantWorkload, not
  // the workload passed to the constructor.
  Workload& workload() { return *workload_; }
  // Null unless tenancy was enabled via Options or MAGESIM_TENANCY.
  TenancyManager* tenancy() { return tenancy_.get(); }
  const std::vector<std::unique_ptr<AppThread>>& threads() const { return threads_; }
  // Null unless checking was enabled via Options or MAGESIM_CHECK_INTERVAL_US.
  InvariantChecker* checker() { return checker_.get(); }
  // Null unless analysis was enabled via Options or MAGESIM_ANALYSIS.
  LockAnalyzer* analyzer() { return analyzer_.get(); }
  // Null unless a fault plan / resilience_enabled was set.
  ResilienceManager* resilience() { return resilience_.get(); }
  FaultInjector* injector() { return injector_.get(); }
  MemoryNode& memnode() { return *memnode_; }
  // Null unless Options::fleet.num_nodes > 1 (or the env overrides said so).
  FleetManager* fleet() { return fleet_.get(); }
  RebuildDriver* rebuild() { return rebuild_.get(); }
  // Null unless metrics were enabled via Options or MAGESIM_METRICS_*.
  MetricsRegistry* metrics() { return metrics_.get(); }
  // Null unless spans were enabled via Options or MAGESIM_SPANS*.
  SpanTracer* spans() { return spans_.get(); }
  SimProfiler* profiler() { return profiler_.get(); }
  MetricsSampler* sampler() { return sampler_.get(); }
  // The JSON run-report built at the end of Run(); empty when metrics are
  // disabled or before Run.
  const std::string& run_report_json() const { return report_json_; }

 private:
  Task<> RunThread(int tid);
  Task<> Controller();
  // Copies end-of-run statistics (kernel, NIC, TLB, checker, breakdown) into
  // the registry, then renders the JSON run-report.
  void PublishMetrics(const RunResult& r);
  std::string BuildRunReportJson(const RunResult& r) const;

  Options options_;
  Workload* workload_;  // the constructor argument, or owned_workload_.get()
  std::unique_ptr<Workload> owned_workload_;  // machine-built (tenancy only)
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<TlbShootdownManager> tlb_;
  std::unique_ptr<RdmaNic> nic_;
  std::unique_ptr<MemoryNode> memnode_;
  std::unique_ptr<TenancyManager> tenancy_;  // destroyed after kernel_
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<FleetManager> fleet_;  // null for single-node machines
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ResilienceManager> resilience_;
  std::unique_ptr<RebuildDriver> rebuild_;  // fleet-mode only
  // Recent-event window feeding violation reports; registered with the
  // installed Tracer (if any) for the duration of the run.
  std::unique_ptr<TraceRingBuffer> trace_ring_;
  std::unique_ptr<InvariantChecker> checker_;
  std::unique_ptr<LockAnalyzer> analyzer_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<SimProfiler> profiler_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<SpanTracer> spans_;  // installed for the machine's lifetime
  std::string report_json_;
  std::vector<std::unique_ptr<AppThread>> threads_;
  WaitGroup wg_;
  SimTime end_time_ = 0;
  bool ran_ = false;
};

}  // namespace magesim

#endif  // MAGESIM_CORE_FARMEM_H_
