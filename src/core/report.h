// Output helpers for benchmark harnesses: fixed-width console tables mirroring
// the paper's figures/tables, plus CSV for replotting.
#ifndef MAGESIM_CORE_REPORT_H_
#define MAGESIM_CORE_REPORT_H_

#include <string>
#include <vector>

namespace magesim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double v, int precision = 1);

  // Renders an aligned console table.
  std::string ToString() const;
  // Renders CSV (headers + rows).
  std::string ToCsv() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a figure/table banner: "== Figure 9: ... ==".
void PrintBanner(const std::string& title);

}  // namespace magesim

#endif  // MAGESIM_CORE_REPORT_H_
