// The paper's analytic "ideal far-memory" model (§3.1): an upper bound with
// zero software overhead where each remote page access costs exactly L.
//
//   Thp_ideal(x) = min_c 3600 / (T0 + L * F_{c,x})   [jobs/hour]
//   dThp(x)      = max_c (L * F_{c,x}) / (T0 + L * F_{c,x})
#ifndef MAGESIM_CORE_IDEAL_MODEL_H_
#define MAGESIM_CORE_IDEAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace magesim {

// Fraction of local throughput retained (1 = no degradation). `t0_sec` is the
// all-local runtime; `faults_per_core` are the per-core major-fault counts at
// the offloading ratio of interest; `l_ns` is the unloaded remote access
// latency (the paper's L = 3.9 us).
double IdealThroughputFraction(const std::vector<uint64_t>& faults_per_core, double t0_sec,
                               SimTime l_ns);

// Percentage throughput drop, the paper's dThp(x).
double IdealThroughputDropPercent(const std::vector<uint64_t>& faults_per_core, double t0_sec,
                                  SimTime l_ns);

// Ideal jobs/hour given the same inputs.
double IdealJobsPerHour(const std::vector<uint64_t>& faults_per_core, double t0_sec,
                        SimTime l_ns);

}  // namespace magesim

#endif  // MAGESIM_CORE_IDEAL_MODEL_H_
