#include "src/core/report.h"

#include <algorithm>
#include <cstdio>

namespace magesim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size() + 1, ' ');
    }
    line += "\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t w : widths) sep += "  " + std::string(w, '-') + " ";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  // RFC 4180: cells containing commas, double quotes, or line breaks are
  // quoted, with embedded quotes doubled.
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
    std::string q = "\"";
    for (char c : cell) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  auto join = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) line += ",";
      line += quote(cells[i]);
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace magesim
