#include "src/core/farmem.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <stdexcept>

#include "src/metrics/run_report.h"
#include "src/workloads/multi_tenant.h"

namespace magesim {

namespace {
void WriteFileOrWarn(const std::string& path, const std::string& contents) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "magesim: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
}

// Resolves a fault-plan option: "@path" loads the file, anything else is the
// plan text itself (compact spec or JSON).
std::string LoadFaultPlanText(const std::string& opt) {
  if (opt.empty() || opt[0] != '@') return opt;
  std::string path = opt.substr(1);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::invalid_argument("fault plan file not found: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}
}  // namespace

FarMemoryMachine::FarMemoryMachine(Options options, Workload& workload)
    : options_(std::move(options)), workload_(&workload) {
  if (!options_.hw_overridden) {
    options_.hw = options_.kernel.virtualized ? VirtualizedParams() : BareMetalParams();
  }
  engine_ = std::make_unique<Engine>();
  topo_ = std::make_unique<Topology>(options_.hw);
  tlb_ = std::make_unique<TlbShootdownManager>(*topo_);
  nic_ = std::make_unique<RdmaNic>(options_.hw);

  // Multi-tenant memory control groups: MAGESIM_TENANCY overrides the option,
  // and a non-empty tenant list replaces the passed workload with a
  // machine-built composite running one workload per tenant.
  if (const char* env = std::getenv("MAGESIM_TENANCY")) {
    std::string err;
    TenancyOptions topt;
    if (!ParseTenancyList(env, &topt, &err)) {
      throw std::invalid_argument("bad MAGESIM_TENANCY: " + err);
    }
    options_.tenancy = std::move(topt);
  }
  if (options_.tenancy.enabled && !options_.tenancy.tenants.empty()) {
    std::string err;
    owned_workload_ = MultiTenantWorkload::Build(&options_.tenancy.tenants, &err);
    if (owned_workload_ == nullptr) {
      throw std::invalid_argument("bad tenancy spec: " + err);
    }
    workload_ = owned_workload_.get();
  }

  uint64_t wss = workload_->wss_pages();
  double ratio = std::clamp(options_.local_mem_ratio, 0.01, 1.0);
  uint64_t local_raw = static_cast<uint64_t>(static_cast<double>(wss) * ratio);
  uint64_t local_pages;
  if (ratio >= 1.0) {
    // 100% local: everything resident plus watermark headroom, so no paging
    // activity at all (the paper's all-local baselines).
    local_pages = wss + std::max<uint64_t>(
        256, static_cast<uint64_t>(static_cast<double>(wss) *
                                   options_.kernel.high_watermark * 1.5));
  } else {
    // "X% far memory": the local VM holds exactly (1-X)% of the WSS; the
    // kernel's free-page headroom comes out of that budget, as on a real
    // memory-limited machine.
    local_pages = std::max<uint64_t>(local_raw, 512);
  }

  memnode_ = std::make_unique<MemoryNode>(static_cast<uint64_t>(wss) * kPageSize * 2);
  memnode_->RegisterSetup();
  bool reserved = memnode_->ReserveDirect(wss * kPageSize);
  assert(reserved);
  (void)reserved;

  // Memory-server fleet: env overrides, then construction. Node 0 is the
  // machine's classic NIC/memnode pair; the fleet owns servers 1..N-1.
  if (const char* env = std::getenv("MAGESIM_FLEET_NODES")) {
    options_.fleet.num_nodes = std::atoi(env);
  }
  if (const char* env = std::getenv("MAGESIM_FLEET_REPLICAS")) {
    options_.fleet.replication = std::atoi(env);
  }
  if (const char* env = std::getenv("MAGESIM_FLEET_REBUILD_GBPS")) {
    options_.fleet.rebuild_gbps = std::atof(env);
  }
  if (options_.fleet.num_nodes > 1) {
    FleetManager::Options fo;
    fo.num_nodes = std::min(options_.fleet.num_nodes, 16);
    fo.replication = options_.fleet.replication;
    fo.vnodes_per_node = options_.fleet.vnodes_per_node;
    fo.seed = options_.seed;
    fleet_ = std::make_unique<FleetManager>(*nic_, *memnode_, options_.hw, fo);
    // The fleet data path (slot routing, per-server breakers) lives in the
    // resilience layer.
    options_.resilience_enabled = true;
  }
  if (options_.tenancy.enabled && !options_.tenancy.tenants.empty()) {
    tenancy_ = std::make_unique<TenancyManager>(options_.tenancy, local_pages, wss,
                                                options_.kernel.low_watermark,
                                                options_.kernel.high_watermark);
  }
  kernel_ = std::make_unique<Kernel>(options_.kernel, *topo_, *tlb_, *nic_, local_pages, wss,
                                     tenancy_.get());

  // Deterministic fault injection + resilient data path.
  if (const char* env = std::getenv("MAGESIM_FAULT_PLAN")) {
    options_.fault_plan = env;
  }
  std::string plan_text = LoadFaultPlanText(options_.fault_plan);
  if (!plan_text.empty()) {
    std::string err;
    FaultPlan plan;
    if (!FaultPlan::Parse(plan_text, &plan, &err)) {
      throw std::invalid_argument("bad fault plan: " + err);
    }
    // A plan naming a server outside the fleet is a configuration bug: reject
    // it loudly instead of silently never firing the window.
    int fleet_size = fleet_ != nullptr ? fleet_->num_nodes() : 1;
    if (plan.max_target_node() >= fleet_size) {
      throw std::invalid_argument(
          "fault plan targets node " + std::to_string(plan.max_target_node()) +
          " but the machine has " + std::to_string(fleet_size) +
          " memory node(s)");
    }
    injector_ = std::make_unique<FaultInjector>(std::move(plan), options_.seed);
    if (fleet_ != nullptr) {
      fleet_->SetFaultModelAll(injector_.get());
    } else {
      nic_->SetFaultModel(injector_.get());
    }
    tlb_->SetFaultModel(injector_.get());
    options_.resilience_enabled = true;
  }
  if (options_.resilience_enabled) {
    ResilienceOptions ro = options_.resilience;
    if (ro.seed == 0) ro.seed = options_.seed * 0x9e3779b97f4a7c15ULL + 1;
    resilience_ = std::make_unique<ResilienceManager>(*nic_, ro);
    if (fleet_ != nullptr) {
      resilience_->SetFleet(fleet_.get());
      RebuildOptions rbo;
      rbo.rebuild_gbps = options_.fleet.rebuild_gbps;
      rebuild_ = std::make_unique<RebuildDriver>(*fleet_, rbo);
    }
    kernel_->SetResilience(resilience_.get());
  }

  int threads = workload_->num_threads();
  assert(threads <= topo_->num_cores());
  std::vector<CoreId> app_cores;
  for (int i = 0; i < threads; ++i) {
    app_cores.push_back(i);
    threads_.push_back(std::make_unique<AppThread>(*kernel_, i, options_.seed * 1000003ULL +
                                                                     static_cast<uint64_t>(i)));
  }
  // Flush IPIs target every core that runs application threads.
  tlb_->SetTargetCores(app_cores);

  uint64_t resident = local_pages;
  if (ratio < 1.0) {
    // Leave the high-watermark headroom free so evictors start idle.
    uint64_t headroom = static_cast<uint64_t>(static_cast<double>(local_pages) *
                                              options_.kernel.high_watermark) + 16;
    resident = local_pages > headroom ? local_pages - headroom : local_pages / 2;
  } else {
    resident = wss;
  }
  kernel_->Prepopulate(resident);

  // Env override lets any existing harness run checked without code changes.
  if (const char* env = std::getenv("MAGESIM_CHECK_INTERVAL_US")) {
    long us = std::atol(env);
    if (us > 0) options_.check_interval = static_cast<SimTime>(us) * kMicrosecond;
    options_.check_final = true;
  }
  if (options_.check_interval > 0 || options_.check_final) {
    trace_ring_ = std::make_unique<TraceRingBuffer>(4096);
    if (Tracer::Get() != nullptr) {
      Tracer::Get()->AddSink(trace_ring_.get());
    }
    checker_ = std::make_unique<InvariantChecker>(
        *kernel_, Tracer::Get() != nullptr ? trace_ring_.get() : nullptr);
  }

  // MAGESIM_ANALYSIS force-enables the lock-discipline analyzer ("0"
  // disables it, overriding an analysis-build default).
  if (const char* env = std::getenv("MAGESIM_ANALYSIS")) {
    options_.analysis.enabled = env[0] != '0';
  }
  if (options_.analysis.enabled) {
    AnalysisOptions ao;
    ao.abort_on_violation = options_.analysis.abort_on_violation;
    analyzer_ = std::make_unique<LockAnalyzer>(ao);
    analyzer_->Install();  // uninstalled by ~LockAnalyzer
  }

  // Each MAGESIM_METRICS_* override force-enables the metrics subsystem.
  auto& mo = options_.metrics;
  if (const char* env = std::getenv("MAGESIM_METRICS_OUT")) {
    mo.report_path = env;
    mo.enabled = true;
  }
  if (const char* env = std::getenv("MAGESIM_METRICS_CSV")) {
    mo.csv_path = env;
    mo.enabled = true;
  }
  if (const char* env = std::getenv("MAGESIM_METRICS_PROM")) {
    mo.prom_path = env;
    mo.enabled = true;
  }
  if (const char* env = std::getenv("MAGESIM_METRICS_SAMPLE_INTERVAL_US")) {
    long us = std::atol(env);
    if (us > 0) mo.sample_interval = static_cast<SimTime>(us) * kMicrosecond;
    mo.enabled = true;
  }
  if (const char* env = std::getenv("MAGESIM_METRICS_PROGRESS")) {
    mo.progress = env[0] != '0';
    mo.enabled = true;
  }
  // Each MAGESIM_SPANS* override force-enables span tracing.
  auto& so = options_.spans;
  if (const char* env = std::getenv("MAGESIM_SPANS")) {
    so.enabled = env[0] != '0';
  }
  if (const char* env = std::getenv("MAGESIM_SPANS_OUT")) {
    so.out_path = env;
    so.enabled = true;
  }
  if (const char* env = std::getenv("MAGESIM_SPANS_TOP_K")) {
    long k = std::atol(env);
    if (k >= 0) so.top_k = static_cast<int>(k);
    so.enabled = true;
  }
  if (const char* env = std::getenv("MAGESIM_SPANS_SAMPLE")) {
    long n = std::atol(env);
    if (n >= 1) so.sample_every = static_cast<int>(n);
    so.enabled = true;
  }
  if (so.enabled) {
    SpanTracer::Options sto;
    sto.out_path = so.out_path;
    sto.top_k = so.top_k;
    sto.sample_every = so.sample_every;
    spans_ = std::make_unique<SpanTracer>(sto);
    spans_->Install();  // uninstalled by ~SpanTracer
  }

  if (mo.enabled) {
    if (mo.sample_interval <= 0) mo.sample_interval = kMillisecond;
    metrics_ = std::make_unique<MetricsRegistry>();
    profiler_ = std::make_unique<SimProfiler>(topo_->num_cores());
    SamplerSources src;
    src.free_pages = [this] { return kernel_->free_pages(); };
    src.faults = [this] { return kernel_->stats().faults; };
    src.evicted_pages = [this] { return kernel_->stats().evicted_pages; };
    src.total_ops = [this] {
      uint64_t ops = 0;
      for (const auto& t : threads_) ops += t->ops;
      return ops;
    };
    src.dirty_ratio = [this] {
      uint64_t present = 0, dirty = 0;
      for (uint64_t vpn = 0; vpn < kernel_->wss_pages(); ++vpn) {
        const Pte& pte = kernel_->page_table().At(vpn);
        if (!pte.present) continue;
        ++present;
        if (pte.dirty) ++dirty;
      }
      return present == 0 ? 0.0 : static_cast<double>(dirty) / static_cast<double>(present);
    };
    src.ipi_queue_depth = [this] { return tlb_->pending_ipis(); };
    src.nic_read_busy_ns = [this] { return nic_->read_busy_ns(); };
    src.nic_write_busy_ns = [this] { return nic_->write_busy_ns(); };
    sampler_ = std::make_unique<MetricsSampler>(std::move(src), mo.sample_interval);
  }
}

FarMemoryMachine::~FarMemoryMachine() {
  if (trace_ring_ != nullptr && Tracer::Get() != nullptr) {
    Tracer::Get()->RemoveSink(trace_ring_.get());
  }
}

Task<> FarMemoryMachine::RunThread(int tid) {
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    // App threads are core-bound: per-CPU cache affinity is checkable.
    la->NameCurrentTask("app-" + std::to_string(tid), tid);
  }
  co_await workload_->ThreadBody(*threads_[static_cast<size_t>(tid)], tid);
  wg_.Done();
}

Task<> FarMemoryMachine::Controller() {
  co_await wg_.Wait();
  end_time_ = engine_->now();
  engine_->RequestShutdown();
}

namespace {

Task<> TimeLimitTask(Engine& eng, SimTime limit) {
  co_await Delay{limit};
  eng.RequestShutdown();
}

Task<> WarmupResetTask(Kernel& k, RdmaNic& nic, TlbShootdownManager& tlb, FleetManager* fleet,
                       SimTime at) {
  co_await Delay{at};
  k.ResetMeasurement();
  nic.ResetStats();
  tlb.ResetStats();
  if (fleet != nullptr) {
    for (int i = 1; i < fleet->num_nodes(); ++i) fleet->nic(i).ResetStats();
  }
}

}  // namespace

RunResult FarMemoryMachine::Run() {
  assert(!ran_);
  ran_ = true;

  int threads = workload_->num_threads();
  wg_.Add(threads);
  for (int tid = 0; tid < threads; ++tid) {
    engine_->Spawn(RunThread(tid));
  }
  engine_->Spawn(Controller());
  if (options_.time_limit > 0) {
    engine_->Spawn(TimeLimitTask(*engine_, options_.time_limit));
  }
  if (options_.stats_warmup > 0) {
    engine_->Spawn(
        WarmupResetTask(*kernel_, *nic_, *tlb_, fleet_.get(), options_.stats_warmup));
  }
  kernel_->Start(threads);
  if (injector_ != nullptr) {
    if (fleet_ != nullptr) {
      // Crash/recover windows flip the targeted server and drive the fleet's
      // replica table (degraded reads + repair queueing) via the listener.
      injector_->SetAvailabilityListener([this](int node, bool up) {
        if (up) {
          fleet_->OnNodeRecover(node);
        } else {
          fleet_->OnNodeCrash(node);
        }
      });
      std::vector<MemoryNode*> nodes;
      for (int i = 0; i < fleet_->num_nodes(); ++i) nodes.push_back(&fleet_->node(i));
      injector_->Start(*engine_, std::move(nodes));
    } else {
      injector_->Start(*engine_, memnode_.get());
    }
  }
  if (rebuild_ != nullptr) {
    rebuild_->Start(*engine_);
  }
  if (checker_ != nullptr && options_.check_interval > 0) {
    engine_->Spawn(checker_->PeriodicMain(options_.check_interval));
  }
  if (profiler_ != nullptr) {
    profiler_->Install();
  }
  if (sampler_ != nullptr) {
    engine_->Spawn(sampler_->Main(options_.metrics.progress));
  }

  engine_->Run();
  if (checker_ != nullptr) {
    checker_->CheckNow();  // quiescent-state check after the queue drains
  }
  if (end_time_ == 0) {
    end_time_ = engine_->now();  // threads parked (e.g. queue servers): use drain time
  }

  RunResult r;
  r.sim_seconds = NsToSec(end_time_);
  SimTime measured_ns = end_time_ - options_.stats_warmup;
  if (measured_ns <= 0) measured_ns = end_time_;
  r.measured_seconds = NsToSec(measured_ns);
  for (const auto& t : threads_) r.total_ops += t->ops;
  if (r.sim_seconds > 0) {
    r.ops_per_sec = static_cast<double>(r.total_ops) / r.sim_seconds;
    r.jobs_per_hour = 3600.0 / r.sim_seconds;
  }
  const KernelStats& ks = kernel_->stats();
  r.faults = ks.faults;
  r.sync_evictions = ks.sync_evictions;
  r.evicted_pages = ks.evicted_pages;
  r.free_page_waits = ks.free_page_waits;
  r.prefetched_pages = ks.prefetched_pages;
  r.fault_mops =
      r.measured_seconds > 0 ? static_cast<double>(ks.faults) / r.measured_seconds / 1e6 : 0;
  r.fault_latency = ks.fault_latency;
  r.fault_breakdown = ks.fault_breakdown;
  r.sync_evict_latency = ks.sync_evict_latency;
  uint64_t nic_bytes_read = nic_->bytes_read();
  uint64_t nic_bytes_written = nic_->bytes_written();
  if (fleet_ != nullptr) {
    for (int i = 1; i < fleet_->num_nodes(); ++i) {
      nic_bytes_read += fleet_->nic(i).bytes_read();
      nic_bytes_written += fleet_->nic(i).bytes_written();
    }
  }
  r.nic_read_gbps =
      static_cast<double>(nic_bytes_read) * 8.0 / static_cast<double>(measured_ns);
  r.nic_write_gbps =
      static_cast<double>(nic_bytes_written) * 8.0 / static_cast<double>(measured_ns);
  r.tlb_shootdown_latency = tlb_->shootdown_latency();
  r.ipi_delivery_latency = tlb_->ipi_delivery_latency();
  r.ipis_sent = tlb_->ipis_sent();
  r.accounting_lock = kernel_->accounting_lock_stats();
  for (int c = 0; c < topo_->num_cores(); ++c) {
    r.faults_per_core.push_back(kernel_->FaultsOnCore(c));
  }
  if (checker_ != nullptr) {
    r.invariant_checks = checker_->checks_run();
    r.invariant_violations = checker_->total_violations();
    if (!checker_->violations().empty()) {
      r.first_violation = checker_->violations().front().message;
    }
  }
  if (analyzer_ != nullptr) {
    r.analysis_locks = analyzer_->locks_registered();
    r.analysis_order_edges = analyzer_->order_edges();
    r.analysis_violations = analyzer_->total_violations();
    if (!analyzer_->violations().empty()) {
      r.analysis_first_violation = analyzer_->violations().front().message;
    }
  }
  if (resilience_ != nullptr) {
    r.rdma_retries = resilience_->retries();
    r.rdma_timeouts = resilience_->timeouts();
    r.breaker_opens = resilience_->breaker_opens_total();
    r.pages_poisoned = resilience_->pages_poisoned();
    r.writebacks_lost = resilience_->writebacks_lost();
    r.prefetch_throttles = resilience_->prefetch_throttles();
    r.aborted = resilience_->run_failed();
    r.abort_reason = resilience_->failure_reason();
  }
  if (injector_ != nullptr) {
    r.injected_drops = injector_->drops_injected();
    r.injected_errors = injector_->errors_injected();
    r.fault_windows = injector_->windows_opened();
    r.memnode_crashes =
        fleet_ != nullptr ? fleet_->crash_episodes() : memnode_->crash_episodes();
  }
  if (fleet_ != nullptr) {
    r.fleet_nodes = static_cast<uint64_t>(fleet_->num_nodes());
    r.fleet_degraded_reads = fleet_->degraded_reads();
    r.fleet_slots_lost = fleet_->slots_lost();
    r.fleet_repairs_queued = fleet_->repairs_queued();
    r.fleet_slots_rebuilt = fleet_->slots_rebuilt();
    r.fleet_rebuild_pending = static_cast<uint64_t>(fleet_->rebuild_pending());
    r.fleet_silent_losses = fleet_->CheckConsistency();
  }
  if (tenancy_ != nullptr) {
    for (int t = 0; t < tenancy_->num_tenants(); ++t) {
      const TenantSpec& s = tenancy_->spec(t);
      const MemCgroup& cg = tenancy_->cgroup(t);
      TenantRunResult tr;
      tr.name = s.name;
      tr.qos = s.qos;
      for (int tid = s.thread_begin; tid < s.thread_end; ++tid) {
        tr.ops += threads_[static_cast<size_t>(tid)]->ops;
      }
      if (r.sim_seconds > 0) tr.ops_per_sec = static_cast<double>(tr.ops) / r.sim_seconds;
      tr.faults = cg.faults();
      tr.usage_pages = cg.usage();
      tr.peak_usage_pages = cg.peak_usage();
      tr.hard_limit_pages = cg.hard_limit();
      tr.soft_limit_pages = cg.soft_limit();
      tr.effective_soft_limit_pages = cg.effective_soft_limit();
      tr.max_overage_pages = cg.max_overage();
      tr.evict_selected = cg.evict_selected();
      tr.hard_limit_waits = cg.hard_limit_waits();
      tr.hard_wait_ns = cg.hard_wait_ns();
      tr.soft_adjusts = cg.soft_adjusts();
      tr.prefetch_denied = cg.prefetch_denied();
      tr.backpressure_waits = cg.backpressure_waits();
      r.tenants.push_back(std::move(tr));
    }
  }
  if (metrics_ != nullptr) {
    if (sampler_ != nullptr) {
      sampler_->SampleNow();  // final row at the drain time (dropped if dup)
    }
    PublishMetrics(r);
    report_json_ = BuildRunReportJson(r);
    const auto& mo = options_.metrics;
    WriteFileOrWarn(mo.report_path, report_json_);
    if (sampler_ != nullptr) {
      WriteFileOrWarn(mo.csv_path, sampler_->ToCsv());
    }
    WriteFileOrWarn(mo.prom_path, PrometheusText(*metrics_));
    profiler_->Uninstall();
  }
  return r;
}

void FarMemoryMachine::PublishMetrics(const RunResult& r) {
  MetricsRegistry& m = *metrics_;
  const KernelStats& ks = kernel_->stats();
  m.Counter("kernel.faults").Set(ks.faults);
  m.Counter("kernel.fast_hits").Set(ks.fast_hits);
  m.Counter("kernel.dedup_waits").Set(ks.dedup_waits);
  m.Counter("kernel.sync_evictions").Set(ks.sync_evictions);
  m.Counter("kernel.free_page_waits").Set(ks.free_page_waits);
  m.Counter("kernel.evicted_pages").Set(ks.evicted_pages);
  m.Counter("kernel.eviction_batches").Set(ks.eviction_batches);
  m.Counter("kernel.clean_reclaims").Set(ks.clean_reclaims);
  m.Counter("kernel.prefetched_pages").Set(ks.prefetched_pages);
  m.Counter("kernel.prefetch_hits").Set(ks.prefetch_hits);
  m.Counter("kernel.free_wait_time_ns").Set(static_cast<uint64_t>(ks.free_wait_time_total));
  m.Counter("kernel.free_pages_final").Set(kernel_->free_pages());
  m.Counter("app.total_ops").Set(r.total_ops);
  m.Counter("nic.bytes_read").Set(nic_->bytes_read());
  m.Counter("nic.bytes_written").Set(nic_->bytes_written());
  m.Counter("nic.reads_posted").Set(nic_->reads_posted());
  m.Counter("nic.writes_posted").Set(nic_->writes_posted());
  m.Counter("tlb.ipis_sent").Set(tlb_->ipis_sent());
  m.Counter("tlb.shootdowns").Set(tlb_->shootdowns());
  if (checker_ != nullptr) {
    m.Counter("check.invariant_checks").Set(r.invariant_checks);
    m.Counter("check.invariant_violations").Set(r.invariant_violations);
  }
  if (analyzer_ != nullptr) {
    m.Counter("analysis.locks").Set(r.analysis_locks);
    m.Counter("analysis.lock_classes").Set(analyzer_->lock_classes());
    m.Counter("analysis.order_edges").Set(r.analysis_order_edges);
    m.Counter("analysis.violations").Set(r.analysis_violations);
  }
  if (resilience_ != nullptr) {
    m.Counter("resilience.rdma_retries").Set(r.rdma_retries);
    m.Counter("resilience.rdma_timeouts").Set(r.rdma_timeouts);
    m.Counter("resilience.breaker_opens").Set(r.breaker_opens);
    m.Counter("resilience.pages_poisoned").Set(r.pages_poisoned);
    m.Counter("resilience.writebacks_lost").Set(r.writebacks_lost);
    m.Counter("resilience.backpressure_waits").Set(resilience_->backpressure_waits());
    m.Counter("resilience.prefetch_throttles").Set(r.prefetch_throttles);
    m.Counter("resilience.reads_failed").Set(resilience_->reads_failed());
    m.Counter("resilience.aborted").Set(r.aborted ? 1 : 0);
    m.Counter("resilience.read_degraded_ns")
        .Set(static_cast<uint64_t>(resilience_->read_breaker().time_degraded_ns(end_time_)));
    m.Counter("resilience.write_degraded_ns")
        .Set(static_cast<uint64_t>(resilience_->write_breaker().time_degraded_ns(end_time_)));
    m.Hist("resilience.backoff_ns").histogram().Merge(resilience_->backoff_ns());
    m.Hist("resilience.attempts_per_op").histogram().Merge(resilience_->attempts_per_op());
  }
  if (fleet_ != nullptr) {
    m.Counter("fleet.nodes").Set(r.fleet_nodes);
    m.Counter("fleet.replication").Set(static_cast<uint64_t>(fleet_->replication()));
    m.Counter("fleet.node.crash_episodes").Set(fleet_->crash_episodes());
    m.Counter("fleet.degraded_reads").Set(r.fleet_degraded_reads);
    m.Counter("fleet.slots_lost").Set(r.fleet_slots_lost);
    m.Counter("fleet.repairs_queued").Set(r.fleet_repairs_queued);
    m.Counter("fleet.slots_rebuilt").Set(r.fleet_slots_rebuilt);
    m.Counter("fleet.rebuild_pending").Set(r.fleet_rebuild_pending);
    m.Counter("fleet.silent_losses").Set(r.fleet_silent_losses);
    if (rebuild_ != nullptr) {
      m.Counter("fleet.rebuild_bursts").Set(rebuild_->bursts());
      m.Counter("fleet.rebuild_pages").Set(rebuild_->pages_rebuilt());
      m.Counter("fleet.repair_failures").Set(rebuild_->repair_failures());
    }
    for (int i = 0; i < fleet_->num_nodes(); ++i) {
      std::string p = "fleet.node" + std::to_string(i) + ".";
      m.Counter(p + "crash_episodes").Set(fleet_->node(i).crash_episodes());
      m.Counter(p + "bytes_read").Set(fleet_->nic(i).bytes_read());
      m.Counter(p + "bytes_written").Set(fleet_->nic(i).bytes_written());
    }
  }
  if (injector_ != nullptr) {
    m.Counter("inject.drops").Set(r.injected_drops);
    m.Counter("inject.errors").Set(r.injected_errors);
    m.Counter("inject.spikes").Set(injector_->spikes_injected());
    m.Counter("inject.fault_windows").Set(r.fault_windows);
    m.Counter("inject.memnode_crashes").Set(r.memnode_crashes);
    m.Counter("nic.reads_dropped").Set(nic_->reads_dropped());
    m.Counter("nic.writes_dropped").Set(nic_->writes_dropped());
    m.Counter("nic.reads_errored").Set(nic_->reads_errored());
    m.Counter("nic.writes_errored").Set(nic_->writes_errored());
  }
  if (tenancy_ != nullptr) {
    for (const TenantRunResult& t : r.tenants) {
      std::string p = "tenancy." + t.name + ".";
      m.Counter(p + "ops").Set(t.ops);
      m.Counter(p + "faults").Set(t.faults);
      m.Counter(p + "usage_pages").Set(t.usage_pages);
      m.Counter(p + "peak_usage_pages").Set(t.peak_usage_pages);
      m.Counter(p + "hard_limit_pages").Set(t.hard_limit_pages);
      m.Counter(p + "effective_soft_limit_pages").Set(t.effective_soft_limit_pages);
      m.Counter(p + "max_overage_pages").Set(t.max_overage_pages);
      m.Counter(p + "evict_selected").Set(t.evict_selected);
      m.Counter(p + "hard_limit_waits").Set(t.hard_limit_waits);
      m.Counter(p + "hard_wait_ns").Set(static_cast<uint64_t>(t.hard_wait_ns));
      m.Counter(p + "soft_adjusts").Set(t.soft_adjusts);
      m.Counter(p + "prefetch_denied").Set(t.prefetch_denied);
      m.Counter(p + "backpressure_waits").Set(t.backpressure_waits);
      m.Gauge(p + "ops_per_sec").Set(t.ops_per_sec);
    }
    m.Counter("tenancy.double_charges").Set(tenancy_->double_charges());
    m.Counter("tenancy.missing_uncharges").Set(tenancy_->missing_uncharges());
  }
  m.Gauge("run.ops_per_sec").Set(r.ops_per_sec);
  m.Gauge("run.fault_mops").Set(r.fault_mops);
  m.Gauge("nic.read_gbps").Set(r.nic_read_gbps);
  m.Gauge("nic.write_gbps").Set(r.nic_write_gbps);

  // Fault-phase breakdown (Figs. 6/16) as counters, one pair per category,
  // so bench harnesses read their attribution from the registry.
  for (const auto& [cat, e] : ks.fault_breakdown.entries()) {
    m.Counter("fault_breakdown." + cat + ".total_ns").Set(static_cast<uint64_t>(e.total_ns));
    m.Counter("fault_breakdown." + cat + ".count").Set(e.count);
  }

  if (spans_ != nullptr) {
    m.Counter("spans.spans_total").Set(spans_->spans_total());
    m.Counter("spans.links_total").Set(spans_->links_total());
    m.Counter("spans.exemplar_truncated").Set(spans_->exemplar_trunc_spans());
    m.Counter("spans.open_at_end").Set(spans_->open_spans());
    for (SpanKind k : spans_->ActiveRootKinds()) {
      m.Counter(std::string("spans.ops.") + SpanKindName(k)).Set(spans_->ops(k));
    }
  }

  m.Hist("fault_latency_ns").histogram().Merge(ks.fault_latency);
  m.Hist("sync_evict_latency_ns").histogram().Merge(ks.sync_evict_latency);
  m.Hist("tlb_shootdown_ns").histogram().Merge(tlb_->shootdown_latency());
  m.Hist("ipi_delivery_ns").histogram().Merge(tlb_->ipi_delivery_latency());
  m.Hist("rdma_read_latency_ns").histogram().Merge(nic_->read_latency());
  m.Hist("rdma_write_latency_ns").histogram().Merge(nic_->write_latency());
}

std::string FarMemoryMachine::BuildRunReportJson(const RunResult& r) const {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", kRunReportSchemaVersion);

  // The only nondeterministic section; determinism tests strip it before
  // comparing reports. Kept flat (no nested objects) so a regex can do it.
  w.Key("wall_clock");
  w.BeginObject();
  // magesim-lint: allow(no-wallclock): report metadata only; determinism
  // tests strip the wall_clock section before comparing.
  w.KV("generated_unix_s", static_cast<int64_t>(std::time(nullptr)));
  w.EndObject();

  const KernelConfig& kc = options_.kernel;
  w.Key("config");
  w.BeginObject();
  w.KV("kernel", kc.name);
  w.KV("workload", workload_->name());
  w.KV("threads", workload_->num_threads());
  w.KV("cores", topo_->num_cores());
  w.KV("seed", options_.seed);
  w.KV("local_mem_ratio", options_.local_mem_ratio);
  w.KV("local_pages", kernel_->local_pages());
  w.KV("wss_pages", kernel_->wss_pages());
  w.KV("time_limit_ns", options_.time_limit);
  w.KV("stats_warmup_ns", options_.stats_warmup);
  w.KV("num_evictors", kc.num_evictors);
  w.KV("pipelined_eviction", kc.pipelined_eviction);
  w.KV("allow_sync_eviction", kc.allow_sync_eviction);
  w.KV("prefetch", kc.prefetch);
  w.KV("virtualized", kc.virtualized);
  w.KV("sample_interval_ns", options_.metrics.sample_interval);
  w.KV("fault_plan", injector_ != nullptr ? injector_->plan().ToSpec() : std::string());
  w.KV("resilience", resilience_ != nullptr);
  w.KV("analysis", analyzer_ != nullptr);
  w.KV("spans", spans_ != nullptr);
  w.EndObject();

  if (fleet_ != nullptr) {
    w.Key("fleet");
    w.BeginObject();
    w.KV("nodes", fleet_->num_nodes());
    w.KV("replication", fleet_->replication());
    w.KV("placement_fingerprint", fleet_->placement().Fingerprint());
    w.KV("degraded_reads", r.fleet_degraded_reads);
    w.KV("slots_lost", r.fleet_slots_lost);
    w.KV("repairs_queued", r.fleet_repairs_queued);
    w.KV("slots_rebuilt", r.fleet_slots_rebuilt);
    w.KV("rebuild_pending", r.fleet_rebuild_pending);
    w.KV("silent_losses", r.fleet_silent_losses);
    w.EndObject();
  }

  w.Key("run");
  w.BeginObject();
  w.KV("end_time_ns", end_time_);
  w.KV("sim_seconds", r.sim_seconds);
  w.KV("measured_seconds", r.measured_seconds);
  w.KV("events_processed", engine_->events_processed());
  w.KV("total_ops", r.total_ops);
  w.KV("ops_per_sec", r.ops_per_sec);
  w.EndObject();

  if (tenancy_ != nullptr) {
    w.Key("tenancy");
    w.BeginObject();
    w.KV("num_tenants", tenancy_->num_tenants());
    w.KV("double_charges", tenancy_->double_charges());
    w.KV("missing_uncharges", tenancy_->missing_uncharges());
    w.Key("tenants");
    w.BeginArray();
    for (const TenantRunResult& t : r.tenants) {
      w.BeginObject();
      w.KV("name", t.name);
      w.KV("qos", QosClassName(t.qos));
      w.KV("ops", t.ops);
      w.KV("ops_per_sec", t.ops_per_sec);
      w.KV("faults", t.faults);
      w.KV("usage_pages", t.usage_pages);
      w.KV("peak_usage_pages", t.peak_usage_pages);
      w.KV("hard_limit_pages", t.hard_limit_pages);
      w.KV("soft_limit_pages", t.soft_limit_pages);
      w.KV("effective_soft_limit_pages", t.effective_soft_limit_pages);
      w.KV("max_overage_pages", t.max_overage_pages);
      w.KV("evict_selected", t.evict_selected);
      w.KV("hard_limit_waits", t.hard_limit_waits);
      w.KV("hard_wait_ns", t.hard_wait_ns);
      w.KV("soft_adjusts", t.soft_adjusts);
      w.KV("prefetch_denied", t.prefetch_denied);
      w.KV("backpressure_waits", t.backpressure_waits);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  AppendRegistryJson(w, *metrics_);

  // Percentile-conditioned critical-path attribution (schema_version 2).
  if (spans_ != nullptr) {
    std::vector<std::string> tenant_names;
    if (tenancy_ != nullptr) {
      for (int t = 0; t < tenancy_->num_tenants(); ++t) {
        tenant_names.push_back(tenancy_->spec(t).name);
      }
    }
    w.Key("tail");
    spans_->AppendTailJson(w, tenant_names);
  }

  w.Key("breakdowns");
  w.BeginObject();
  w.Key("fault_breakdown");
  AppendBreakdownJson(w, kernel_->stats().fault_breakdown);
  w.EndObject();

  w.Key("profiler");
  AppendProfilerJson(w, *profiler_, end_time_);

  if (sampler_ != nullptr) {
    w.Key("timeseries");
    AppendTimeseriesJson(w, *sampler_);
  }

  w.EndObject();
  return w.Take();
}

}  // namespace magesim
