#include "src/core/farmem.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace magesim {

FarMemoryMachine::FarMemoryMachine(Options options, Workload& workload)
    : options_(std::move(options)), workload_(workload) {
  if (!options_.hw_overridden) {
    options_.hw = options_.kernel.virtualized ? VirtualizedParams() : BareMetalParams();
  }
  engine_ = std::make_unique<Engine>();
  topo_ = std::make_unique<Topology>(options_.hw);
  tlb_ = std::make_unique<TlbShootdownManager>(*topo_);
  nic_ = std::make_unique<RdmaNic>(options_.hw);

  uint64_t wss = workload_.wss_pages();
  double ratio = std::clamp(options_.local_mem_ratio, 0.01, 1.0);
  uint64_t local_raw = static_cast<uint64_t>(static_cast<double>(wss) * ratio);
  uint64_t local_pages;
  if (ratio >= 1.0) {
    // 100% local: everything resident plus watermark headroom, so no paging
    // activity at all (the paper's all-local baselines).
    local_pages = wss + std::max<uint64_t>(
        256, static_cast<uint64_t>(static_cast<double>(wss) *
                                   options_.kernel.high_watermark * 1.5));
  } else {
    // "X% far memory": the local VM holds exactly (1-X)% of the WSS; the
    // kernel's free-page headroom comes out of that budget, as on a real
    // memory-limited machine.
    local_pages = std::max<uint64_t>(local_raw, 512);
  }

  memnode_ = std::make_unique<MemoryNode>(static_cast<uint64_t>(wss) * kPageSize * 2);
  memnode_->ReserveDirect(wss * kPageSize);
  kernel_ = std::make_unique<Kernel>(options_.kernel, *topo_, *tlb_, *nic_, local_pages, wss);

  int threads = workload_.num_threads();
  assert(threads <= topo_->num_cores());
  std::vector<CoreId> app_cores;
  for (int i = 0; i < threads; ++i) {
    app_cores.push_back(i);
    threads_.push_back(std::make_unique<AppThread>(*kernel_, i, options_.seed * 1000003ULL +
                                                                     static_cast<uint64_t>(i)));
  }
  // Flush IPIs target every core that runs application threads.
  tlb_->SetTargetCores(app_cores);

  uint64_t resident = local_pages;
  if (ratio < 1.0) {
    // Leave the high-watermark headroom free so evictors start idle.
    uint64_t headroom = static_cast<uint64_t>(static_cast<double>(local_pages) *
                                              options_.kernel.high_watermark) + 16;
    resident = local_pages > headroom ? local_pages - headroom : local_pages / 2;
  } else {
    resident = wss;
  }
  kernel_->Prepopulate(resident);

  // Env override lets any existing harness run checked without code changes.
  if (const char* env = std::getenv("MAGESIM_CHECK_INTERVAL_US")) {
    long us = std::atol(env);
    if (us > 0) options_.check_interval = static_cast<SimTime>(us) * kMicrosecond;
    options_.check_final = true;
  }
  if (options_.check_interval > 0 || options_.check_final) {
    trace_ring_ = std::make_unique<TraceRingBuffer>(4096);
    if (Tracer::Get() != nullptr) {
      Tracer::Get()->AddSink(trace_ring_.get());
    }
    checker_ = std::make_unique<InvariantChecker>(
        *kernel_, Tracer::Get() != nullptr ? trace_ring_.get() : nullptr);
  }
}

FarMemoryMachine::~FarMemoryMachine() {
  if (trace_ring_ != nullptr && Tracer::Get() != nullptr) {
    Tracer::Get()->RemoveSink(trace_ring_.get());
  }
}

Task<> FarMemoryMachine::RunThread(int tid) {
  co_await workload_.ThreadBody(*threads_[static_cast<size_t>(tid)], tid);
  wg_.Done();
}

Task<> FarMemoryMachine::Controller() {
  co_await wg_.Wait();
  end_time_ = engine_->now();
  engine_->RequestShutdown();
}

namespace {

Task<> TimeLimitTask(Engine& eng, SimTime limit) {
  co_await Delay{limit};
  eng.RequestShutdown();
}

Task<> WarmupResetTask(Kernel& k, RdmaNic& nic, TlbShootdownManager& tlb, SimTime at) {
  co_await Delay{at};
  k.ResetMeasurement();
  nic.ResetStats();
  tlb.ResetStats();
}

}  // namespace

RunResult FarMemoryMachine::Run() {
  assert(!ran_);
  ran_ = true;

  int threads = workload_.num_threads();
  wg_.Add(threads);
  for (int tid = 0; tid < threads; ++tid) {
    engine_->Spawn(RunThread(tid));
  }
  engine_->Spawn(Controller());
  if (options_.time_limit > 0) {
    engine_->Spawn(TimeLimitTask(*engine_, options_.time_limit));
  }
  if (options_.stats_warmup > 0) {
    engine_->Spawn(WarmupResetTask(*kernel_, *nic_, *tlb_, options_.stats_warmup));
  }
  kernel_->Start(threads);
  if (checker_ != nullptr && options_.check_interval > 0) {
    engine_->Spawn(checker_->PeriodicMain(options_.check_interval));
  }

  engine_->Run();
  if (checker_ != nullptr) {
    checker_->CheckNow();  // quiescent-state check after the queue drains
  }
  if (end_time_ == 0) {
    end_time_ = engine_->now();  // threads parked (e.g. queue servers): use drain time
  }

  RunResult r;
  r.sim_seconds = NsToSec(end_time_);
  SimTime measured_ns = end_time_ - options_.stats_warmup;
  if (measured_ns <= 0) measured_ns = end_time_;
  r.measured_seconds = NsToSec(measured_ns);
  for (const auto& t : threads_) r.total_ops += t->ops;
  if (r.sim_seconds > 0) {
    r.ops_per_sec = static_cast<double>(r.total_ops) / r.sim_seconds;
    r.jobs_per_hour = 3600.0 / r.sim_seconds;
  }
  const KernelStats& ks = kernel_->stats();
  r.faults = ks.faults;
  r.sync_evictions = ks.sync_evictions;
  r.evicted_pages = ks.evicted_pages;
  r.free_page_waits = ks.free_page_waits;
  r.prefetched_pages = ks.prefetched_pages;
  r.fault_mops =
      r.measured_seconds > 0 ? static_cast<double>(ks.faults) / r.measured_seconds / 1e6 : 0;
  r.fault_latency = ks.fault_latency;
  r.fault_breakdown = ks.fault_breakdown;
  r.sync_evict_latency = ks.sync_evict_latency;
  r.nic_read_gbps =
      static_cast<double>(nic_->bytes_read()) * 8.0 / static_cast<double>(measured_ns);
  r.nic_write_gbps =
      static_cast<double>(nic_->bytes_written()) * 8.0 / static_cast<double>(measured_ns);
  r.tlb_shootdown_latency = tlb_->shootdown_latency();
  r.ipi_delivery_latency = tlb_->ipi_delivery_latency();
  r.ipis_sent = tlb_->ipis_sent();
  r.accounting_lock = kernel_->accounting_lock_stats();
  for (int c = 0; c < topo_->num_cores(); ++c) {
    r.faults_per_core.push_back(kernel_->FaultsOnCore(c));
  }
  if (checker_ != nullptr) {
    r.invariant_checks = checker_->checks_run();
    r.invariant_violations = checker_->total_violations();
    if (!checker_->violations().empty()) {
      r.first_violation = checker_->violations().front().message;
    }
  }
  return r;
}

}  // namespace magesim
