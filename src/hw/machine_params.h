// Calibrated hardware cost model for the simulated testbed.
//
// The testbed mirrors the paper's (§6.1): two dual-socket Intel Xeon Gold 6348
// servers (28 cores/socket, 2.6 GHz), Mellanox BlueField-2 200 Gbps RDMA NICs.
// Every constant below is an irreducible primitive cost; all emergent effects
// (IPI queueing storms, lock contention collapse, NIC congestion) come from the
// simulated mechanisms, not from these numbers. Sources cited per field.
#ifndef MAGESIM_HW_MACHINE_PARAMS_H_
#define MAGESIM_HW_MACHINE_PARAMS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace magesim {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;

struct MachineParams {
  // --- Topology (paper §6.1) ---
  int sockets = 2;
  int cores_per_socket = 28;

  // --- CPU ---
  // 2.6 GHz: 1 cycle = 0.3846 ns. Used to convert the paper's cycle counts.
  double ns_per_cycle = 1.0 / 2.6;

  // --- IPI / TLB shootdown (§3.3.1, Fig. 7) ---
  // Per-target APIC ICR write, serialized at the sender.
  SimTime ipi_send_ns = 200;
  // Wire delivery latency to a core on the same socket / across sockets.
  // Cross-socket IPIs are substantially slower (LATR, §3.3.1: "IPI delivery
  // latencies increase substantially across NUMA sockets").
  SimTime ipi_delivery_same_socket_ns = 700;
  SimTime ipi_delivery_cross_socket_ns = 1700;
  // Interrupt entry + flush handler + ack at the receiving core, excluding
  // per-page invalidations.
  SimTime ipi_handler_base_ns = 400;
  // Per-page INVLPG in the handler; above `full_flush_threshold` pages the
  // handler writes cr3 instead (flat cost).
  SimTime invlpg_ns = 40;
  int full_flush_threshold = 33;  // Linux's tlb_single_page_flush_ceiling
  SimTime full_flush_ns = 450;
  // Initiator-side local TLB invalidation (same INVLPG/cr3 economics).
  // VM-exit cost for virtualized guests: the paper measures ~1200 cycles per
  // IPI-induced exit (§3.3.1); at 2.6 GHz that is ~460 ns. Applies on both
  // the send (APIC write traps) and receive (posted-interrupt/injection) side.
  SimTime vmexit_ns = 460;
  bool virtualized = false;

  // --- RDMA fabric (§3.1, §6.1, Fig. 15) ---
  // Paper: best-case 4 KB remote access L = 3.9 us; usable data bandwidth
  // 192 Gbps of the 200 Gbps link (Fig. 14 caption: "192 Gbps RDMA bandwidth
  // limit"), i.e. an ideal ceiling of 5.83 M pages/s. We model the NIC as a
  // pipeline: ops queue for wire serialization (capacity) and then experience
  // fixed base latency (propagation + DMA + completion).
  double nic_gbps = 192.0;
  SimTime rdma_base_ns = 3730;  // 3.9 us total minus 4 KB wire time (~170 ns)
  // Host RDMA stack CPU cost per posted op. Kernel-stack variants (MageLnx,
  // Hermit) pay a contended software path; libOS/microkernel drivers
  // (DiLOS, MageLib) mostly bypass it (§6.4).
  SimTime rdma_post_ns = 150;

  // --- Memory / paging primitive costs ---
  SimTime page_fault_entry_ns = 300;   // trap, save state, dispatch (~800 cyc)
  SimTime pte_update_ns = 60;          // set/clear one PTE + flags
  SimTime page_table_walk_ns = 100;    // resolve VA on the fault path
  SimTime page_copy_ns = 250;          // 4 KB local copy when needed
  SimTime local_access_ns = 0;         // page-granularity touch cost folded
                                       // into workload compute time
  SimTime context_switch_ns = 1200;    // used by wait/wake eviction threads

  int cores() const { return sockets * cores_per_socket; }
  int SocketOf(int core) const { return core / cores_per_socket; }

  // Wire time for one 4 KB page at the configured data rate.
  SimTime PageWireTime() const {
    return static_cast<SimTime>(kPageSize * 8.0 / nic_gbps);  // ns (Gbps==b/ns)
  }

  // Unloaded one-page RDMA op latency (the paper's L).
  SimTime UnloadedRdmaNs() const { return rdma_base_ns + PageWireTime(); }
};

// Bare-metal host (Hermit runs here, §6.1).
inline MachineParams BareMetalParams() { return MachineParams{}; }

// QEMU/KVM guest (DiLOS, MageLib, MageLnx run here, §6.1): IPIs incur
// VM-exits and memory accesses pay EPT overheads (folded into workload
// calibration, Table 2).
inline MachineParams VirtualizedParams() {
  MachineParams p;
  p.virtualized = true;
  return p;
}

// --- Alternative swap backends (§8: the design applies to any fast backend).
// The "NIC" channel doubles as the generic backend pipe: base latency is the
// per-op device latency, the rate is the device's sustained data bandwidth.

// Datacenter NVMe SSD: ~20 us random-read latency, ~7 GB/s (56 Gbps).
inline MachineParams NvmeBackendParams(bool virtualized = true) {
  MachineParams p;
  p.virtualized = virtualized;
  p.nic_gbps = 56.0;
  p.rdma_base_ns = 20000;
  p.rdma_post_ns = 400;  // block-layer submission
  return p;
}

// ZSwap (compressed in-DRAM pool): per-page LZ4-class (de)compression at
// ~3 GB/s per core dominates; "bandwidth" is effectively memory bandwidth.
inline MachineParams ZswapBackendParams(bool virtualized = true) {
  MachineParams p;
  p.virtualized = virtualized;
  p.nic_gbps = 800.0;     // aggregate memcpy bandwidth, rarely binding
  p.rdma_base_ns = 1400;  // 4 KB decompress
  p.rdma_post_ns = 50;
  return p;
}

}  // namespace magesim

#endif  // MAGESIM_HW_MACHINE_PARAMS_H_
