#include "src/hw/ipi.h"

#include <algorithm>

#include "src/analysis/guarded.h"
#include "src/trace/trace.h"

namespace magesim {

TlbShootdownManager::TlbShootdownManager(Topology& topo) : topo_(topo) {
  irq_serializers_.reserve(static_cast<size_t>(topo.num_cores()));
  for (int i = 0; i < topo.num_cores(); ++i) {
    irq_serializers_.push_back(std::make_unique<SimMutex>("irq"));
  }
}

SimTime TlbShootdownManager::HandlerCost(int num_pages) const {
  const MachineParams& p = topo_.params();
  SimTime flush = (num_pages >= p.full_flush_threshold)
                      ? p.full_flush_ns
                      : static_cast<SimTime>(num_pages) * p.invlpg_ns;
  return p.ipi_handler_base_ns + flush;
}

Task<> TlbShootdownManager::DeliverIpi(CoreId target, int num_pages, SimTime send_time,
                                       std::shared_ptr<ShootdownOp> op, SimTime delivery_ns) {
  const MachineParams& p = topo_.params();
  co_await Delay{delivery_ns};
  // The target core handles flush IPIs serially; queueing under IPI storms
  // happens here.
  {
    auto g = co_await irq_serializers_[static_cast<size_t>(target)]->Scoped();
    SimTime cost = HandlerCost(num_pages);
    if (p.virtualized) {
      cost += p.vmexit_ns;  // interrupt injection exits to the hypervisor
    }
    co_await Delay{cost};
    MAGESIM_ASSERT_HELD(*irq_serializers_[static_cast<size_t>(target)],
                        "irq handler state");
    Core& c = topo_.core(target);
    c.CountInterrupt();
    c.AddStolenTime(cost);
  }
  SimTime elapsed = Engine::current().now() - send_time;
  ipi_latency_.Record(elapsed);
  --pending_ipis_;
  TraceEmit(TraceEventType::kIpiAck, target, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(elapsed));
  SpanLeafUnder(op->span(), SpanKind::kIpiDeliver, send_time, Engine::current().now(),
                target, kTraceNoPage, {}, static_cast<uint64_t>(elapsed));
  op->Ack();
}

Task<std::shared_ptr<ShootdownOp>> TlbShootdownManager::Begin(CoreId initiator, int num_pages,
                                                              SpanHandle span) {
  const MachineParams& p = topo_.params();
  Engine& eng = Engine::current();
  ++shootdowns_;
  TraceEmit(TraceEventType::kShootdownBegin, initiator, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(num_pages));

  // Local flush on the initiating core.
  SimTime local = (num_pages >= p.full_flush_threshold)
                      ? p.full_flush_ns
                      : static_cast<SimTime>(num_pages) * p.invlpg_ns;
  co_await Delay{local};

  int remote_targets = 0;
  for (CoreId t : targets_) {
    if (t != initiator) ++remote_targets;
  }
  auto op = std::make_shared<ShootdownOp>(remote_targets, eng.now(), initiator);
  op->set_span(span);
  if (remote_targets == 0) {
    co_return op;
  }

  for (CoreId t : targets_) {
    if (t == initiator) continue;
    // APIC ICR write, serialized at the sender; virtualized guests trap
    // each write to the hypervisor.
    SimTime send_cost = p.ipi_send_ns + (p.virtualized ? p.vmexit_ns : 0);
    co_await Delay{send_cost};
    ++ipis_sent_;
    ++pending_ipis_;
    SimTime delivery = topo_.SameSocket(initiator, t) ? p.ipi_delivery_same_socket_ns
                                                      : p.ipi_delivery_cross_socket_ns;
    if (fault_model_ != nullptr) {
      delivery += fault_model_->ExtraIpiDelayNs(eng.now());
    }
    eng.Spawn(DeliverIpi(t, num_pages, eng.now(), op, delivery));
  }
  co_return op;
}

Task<> TlbShootdownManager::Finish(std::shared_ptr<ShootdownOp> op) {
  co_await op->Wait();
  SimTime elapsed = Engine::current().now() - op->start();
  shootdown_latency_.Record(elapsed);
  TraceEmit(TraceEventType::kShootdownDone, op->initiator(), kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(elapsed));
}

Task<> TlbShootdownManager::Shootdown(CoreId initiator, int num_pages, SpanHandle span) {
  auto op = co_await Begin(initiator, num_pages, span);
  co_await Finish(std::move(op));
}

void TlbShootdownManager::ResetStats() {
  shootdown_latency_.Reset();
  ipi_latency_.Reset();
  ipis_sent_ = 0;
  shootdowns_ = 0;
}

}  // namespace magesim
