// Inter-processor interrupts and TLB shootdowns.
//
// Model (matches §3.3.1): an initiator core invalidates its local TLB, then
// sends one IPI per target core through its APIC (serialized at the sender).
// Each IPI travels the interconnect (NUMA-dependent latency) and is handled
// *serially* by the target's interrupt controller — concurrent shootdowns
// from many initiators therefore queue at the targets, which is exactly the
// "IPI storm" that inflates per-IPI latency 33x in the paper. Virtualized
// guests additionally pay a VM-exit on both the send and receive side.
#ifndef MAGESIM_HW_IPI_H_
#define MAGESIM_HW_IPI_H_

#include <memory>
#include <vector>

#include "src/hw/fault_hooks.h"
#include "src/hw/topology.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/spans/spans.h"

namespace magesim {

// One in-flight shootdown: completes when every targeted core has flushed
// and acknowledged.
class ShootdownOp {
 public:
  ShootdownOp(int num_targets, SimTime start, CoreId initiator)
      : latch_(num_targets, "shootdown-ack"), start_(start), initiator_(initiator) {}

  SimEvent::Awaiter Wait() { return latch_.Wait(); }
  void Ack() { latch_.CountDown(); }
  SimTime start() const { return start_; }
  CoreId initiator() const { return initiator_; }
  bool done() const { return latch_.count() == 0; }

  // Span of the operation (eviction batch) this shootdown belongs to;
  // passed into Begin() so per-IPI delivery leaves attach to it from the
  // spawned delivery tasks.
  void set_span(SpanHandle s) { span_ = s; }
  SpanHandle span() const { return span_; }

 private:
  CountdownLatch latch_;
  SimTime start_;
  CoreId initiator_;
  SpanHandle span_;
};

class TlbShootdownManager {
 public:
  TlbShootdownManager(Topology& topo);

  // Cores that must receive flush IPIs (the application's mm cpumask).
  // The initiator, if present in this set, flushes locally instead.
  void SetTargetCores(std::vector<CoreId> cores) { targets_ = std::move(cores); }
  const std::vector<CoreId>& target_cores() const { return targets_; }

  // Asynchronous begin: returns once all IPIs have been *sent* (the sender-
  // side serialization cost has elapsed); the returned op completes when all
  // targets have acknowledged. `num_pages` selects INVLPG-loop vs full flush.
  // `span` is the initiating operation's span (per-IPI leaves attach to it).
  Task<std::shared_ptr<ShootdownOp>> Begin(CoreId initiator, int num_pages,
                                           SpanHandle span = {});

  // Synchronous shootdown: begin + wait; records total latency.
  Task<> Shootdown(CoreId initiator, int num_pages, SpanHandle span = {});

  // Finishes an op begun with Begin() and records its total latency.
  Task<> Finish(std::shared_ptr<ShootdownOp> op);

  const Histogram& shootdown_latency() const { return shootdown_latency_; }
  const Histogram& ipi_delivery_latency() const { return ipi_latency_; }
  uint64_t ipis_sent() const { return ipis_sent_; }
  uint64_t shootdowns() const { return shootdowns_; }
  // IPIs sent but not yet acknowledged (in flight or queued at a target's
  // interrupt serializer) — the sampler's "IPI queue depth".
  uint64_t pending_ipis() const { return pending_ipis_; }
  void ResetStats();

  // Handler cost for flushing `num_pages` entries at one core.
  SimTime HandlerCost(int num_pages) const;

  // Optional failure model adding interconnect delay per IPI; nullptr disables.
  void SetFaultModel(HwFaultModel* model) { fault_model_ = model; }

 private:
  Task<> DeliverIpi(CoreId target, int num_pages, SimTime send_time,
                    std::shared_ptr<ShootdownOp> op, SimTime delivery_ns);

  Topology& topo_;
  HwFaultModel* fault_model_ = nullptr;
  std::vector<CoreId> targets_;
  // Per-core interrupt serialization: a core handles one flush IPI at a time.
  std::vector<std::unique_ptr<SimMutex>> irq_serializers_;

  Histogram shootdown_latency_;
  Histogram ipi_latency_;
  uint64_t ipis_sent_ = 0;
  uint64_t shootdowns_ = 0;
  uint64_t pending_ipis_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_HW_IPI_H_
