// The far-memory node: a passive server exposing a registered memory region
// over one-sided RDMA (§5.2 "Memory node"). A small daemon handles setup
// requests; steady-state data movement never involves its CPU. The region is
// backed by huge pages, which shortens the remote IOMMU/page-table walk and is
// folded into the NIC base latency.
#ifndef MAGESIM_HW_MEMNODE_H_
#define MAGESIM_HW_MEMNODE_H_

#include <cstdint>

#include "src/hw/machine_params.h"
#include "src/sim/task.h"

namespace magesim {

class MemoryNode {
 public:
  explicit MemoryNode(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Control-path setup: daemon accepts a connection, registers the region
  // with its RDMA NIC, returns the rkey/base. Costs milliseconds but happens
  // once, off the data path.
  Task<> Setup();

  bool registered() const { return registered_; }
  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t capacity_pages() const { return capacity_ / kPageSize; }

  // Linear offset-based reservation used by VMA-level direct mapping: the
  // region [0, wss) mirrors the application's address range one-to-one, so no
  // per-page remote allocation is ever needed (§4.2.3).
  bool ReserveDirect(uint64_t bytes) {
    if (bytes > capacity_) return false;
    direct_reserved_ = bytes;
    return true;
  }
  uint64_t direct_reserved() const { return direct_reserved_; }

 private:
  uint64_t capacity_;
  uint64_t direct_reserved_ = 0;
  bool registered_ = false;
};

}  // namespace magesim

#endif  // MAGESIM_HW_MEMNODE_H_
