// The far-memory node: a passive server exposing a registered memory region
// over one-sided RDMA (§5.2 "Memory node"). A small daemon handles setup
// requests; steady-state data movement never involves its CPU. The region is
// backed by huge pages, which shortens the remote IOMMU/page-table walk and is
// folded into the NIC base latency.
#ifndef MAGESIM_HW_MEMNODE_H_
#define MAGESIM_HW_MEMNODE_H_

#include <cstdint>

#include "src/hw/machine_params.h"
#include "src/sim/task.h"

namespace magesim {

class MemoryNode {
 public:
  // `node_id` identifies this server within a memory-server fleet (0 for the
  // classic single-node machine); availability transitions are traced with it
  // as the actor.
  explicit MemoryNode(uint64_t capacity_bytes, int node_id = 0)
      : capacity_(capacity_bytes), node_id_(node_id) {}

  // Control-path setup: daemon accepts a connection, registers the region
  // with its RDMA NIC, returns the rkey/base. Costs milliseconds but happens
  // once, off the data path.
  Task<> Setup();

  // Instant variant for machine construction, where registration happens
  // before the engine starts running (the 2 ms control-path cost is outside
  // the measured interval either way).
  void RegisterSetup() { registered_ = true; }

  bool registered() const { return registered_; }
  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t capacity_pages() const { return capacity_ / kPageSize; }

  // Linear offset-based reservation used by VMA-level direct mapping: the
  // region [0, wss) mirrors the application's address range one-to-one, so no
  // per-page remote allocation is ever needed (§4.2.3). Reservations
  // accumulate; a request is rejected when the region is not yet registered
  // or when it would exceed the remaining capacity.
  bool ReserveDirect(uint64_t bytes) {
    if (!registered_) return false;
    if (bytes > capacity_ - direct_reserved_) return false;
    direct_reserved_ += bytes;
    return true;
  }
  uint64_t direct_reserved() const { return direct_reserved_; }

  // Availability, driven by injected crash/recover episodes. Steady-state
  // data movement is one-sided, so op outcomes are modeled at the NIC; this
  // flag is observability plus a hook for control-path checks. Transitions
  // emit kMemnodeCrash / kMemnodeRecover trace events (actor = node id);
  // redundant calls with the current state are silent.
  void SetAvailable(bool up);
  bool available() const { return available_; }
  uint64_t crash_episodes() const { return crash_episodes_; }
  int node_id() const { return node_id_; }

 private:
  uint64_t capacity_;
  int node_id_;
  uint64_t direct_reserved_ = 0;
  bool registered_ = false;
  bool available_ = true;
  uint64_t crash_episodes_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_HW_MEMNODE_H_
