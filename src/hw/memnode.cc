#include "src/hw/memnode.h"

#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace magesim {

void MemoryNode::SetAvailable(bool up) {
  if (available_ == up) return;
  available_ = up;
  if (!up) {
    ++crash_episodes_;
    TraceEmit(TraceEventType::kMemnodeCrash, node_id_);
  } else {
    TraceEmit(TraceEventType::kMemnodeRecover, node_id_);
  }
}

Task<> MemoryNode::Setup() {
  // Connection establishment + ibv_reg_mr of the huge-page region. One-time
  // control-path cost.
  co_await Delay{2 * kMillisecond};
  registered_ = true;
}

}  // namespace magesim
