#include "src/hw/memnode.h"

#include "src/sim/engine.h"

namespace magesim {

Task<> MemoryNode::Setup() {
  // Connection establishment + ibv_reg_mr of the huge-page region. One-time
  // control-path cost.
  co_await Delay{2 * kMillisecond};
  registered_ = true;
}

}  // namespace magesim
