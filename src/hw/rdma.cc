#include "src/hw/rdma.h"

#include <algorithm>

namespace magesim {

RdmaNic::RdmaNic(const MachineParams& params) : params_(params) {}

Task<> RdmaNic::SignalAt(std::shared_ptr<RdmaCompletion> c, SimTime when,
                         TraceEventType done_ev, SimTime op_latency) {
  co_await Delay{when - Engine::current().now()};
  TraceEmit(done_ev, -1, kTraceNoPage, kTraceNoFrame, static_cast<uint64_t>(op_latency));
  c->Signal();
}

const RdmaNic::Brownout* RdmaNic::ActiveBrownout(SimTime now) const {
  for (const Brownout& b : brownouts_) {
    if (now >= b.from && now < b.until) return &b;
  }
  return nullptr;
}

void RdmaNic::InjectBrownout(SimTime from, SimTime until, double bandwidth_factor,
                             SimTime extra_latency_ns) {
  brownouts_.push_back(Brownout{from, until, bandwidth_factor, extra_latency_ns});
}

std::shared_ptr<RdmaCompletion> RdmaNic::Post(Channel& ch, uint64_t bytes, Histogram& lat,
                                              Histogram* queueing, TraceEventType done_ev) {
  Engine& eng = Engine::current();
  SimTime now = eng.now();
  double rate = params_.nic_gbps;
  SimTime extra = 0;
  if (const Brownout* b = ActiveBrownout(now)) {
    rate *= b->bandwidth_factor;
    extra = b->extra_latency_ns;
  }
  SimTime wire = static_cast<SimTime>(
      std::max<double>(1.0, static_cast<double>(bytes) * 8.0 / rate));
  SimTime start = std::max(now, ch.next_free);
  ch.next_free = start + wire;
  ch.busy_ns += wire;
  SimTime completes = start + wire + params_.rdma_base_ns + extra;
  lat.Record(completes - now);
  if (queueing != nullptr) {
    queueing->Record(start - now);
  }
  auto c = std::make_shared<RdmaCompletion>(completes);
  eng.Spawn(SignalAt(c, completes, done_ev, completes - now));
  return c;
}

std::shared_ptr<RdmaCompletion> RdmaNic::PostRead(uint64_t bytes) {
  bytes_read_ += bytes;
  ++reads_posted_;
  TraceEmit(TraceEventType::kRdmaReadPost, -1, kTraceNoPage, kTraceNoFrame, bytes);
  return Post(read_ch_, bytes, read_latency_, &read_queueing_, TraceEventType::kRdmaReadDone);
}

std::shared_ptr<RdmaCompletion> RdmaNic::PostWrite(uint64_t bytes) {
  bytes_written_ += bytes;
  ++writes_posted_;
  TraceEmit(TraceEventType::kRdmaWritePost, -1, kTraceNoPage, kTraceNoFrame, bytes);
  return Post(write_ch_, bytes, write_latency_, nullptr, TraceEventType::kRdmaWriteDone);
}

Task<> RdmaNic::Read(uint64_t bytes) {
  auto c = PostRead(bytes);
  co_await c->Wait();
}

Task<> RdmaNic::Write(uint64_t bytes) {
  auto c = PostWrite(bytes);
  co_await c->Wait();
}

double RdmaNic::ReadUtilization() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0
                      : static_cast<double>(read_ch_.busy_ns) / static_cast<double>(elapsed);
}

double RdmaNic::WriteUtilization() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0
                      : static_cast<double>(write_ch_.busy_ns) / static_cast<double>(elapsed);
}

double RdmaNic::AchievedReadGbps() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0 : static_cast<double>(bytes_read_) * 8.0 / elapsed;
}

double RdmaNic::AchievedWriteGbps() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0 : static_cast<double>(bytes_written_) * 8.0 / elapsed;
}

void RdmaNic::ResetStats() {
  stats_epoch_ = Engine::current().now();
  read_ch_.busy_ns = 0;
  write_ch_.busy_ns = 0;
  bytes_read_ = bytes_written_ = 0;
  reads_posted_ = writes_posted_ = 0;
  read_latency_.Reset();
  write_latency_.Reset();
  read_queueing_.Reset();
}

}  // namespace magesim
