#include "src/hw/rdma.h"

#include <algorithm>
#include <memory>

#include "src/sim/prof_counters.h"
#include "src/sim/slab_alloc.h"

namespace magesim {

RdmaNic::RdmaNic(const MachineParams& params, int node_id)
    : params_(params), node_id_(node_id) {}

Task<> RdmaNic::SignalAt(std::shared_ptr<RdmaCompletion> c, SimTime when,
                         TraceEventType done_ev, SimTime op_latency,
                         RdmaCompletion::Status status) {
  co_await Delay{when - Engine::current().now()};
  TraceEmit(done_ev, -1, kTraceNoPage, kTraceNoFrame, static_cast<uint64_t>(op_latency));
  c->Signal(status);
}

const RdmaNic::Brownout* RdmaNic::ActiveBrownout(SimTime now) const {
  while (brownout_cursor_ < brownouts_.size() &&
         brownouts_[brownout_cursor_].until <= now) {
    ++brownout_cursor_;
  }
  if (brownout_cursor_ < brownouts_.size()) {
    const Brownout& b = brownouts_[brownout_cursor_];
    if (now >= b.from) return &b;
  }
  return nullptr;
}

void RdmaNic::InjectBrownout(SimTime from, SimTime until, double bandwidth_factor,
                             SimTime extra_latency_ns) {
  if (until <= from) return;
  brownouts_.push_back(Brownout{from, until, bandwidth_factor, extra_latency_ns});
  std::sort(brownouts_.begin(), brownouts_.end(),
            [](const Brownout& a, const Brownout& b) { return a.from < b.from; });
  // Merge overlapping/adjacent windows so the active-window lookup can assume
  // sorted disjoint intervals. Overlap degrades to the worst of both.
  std::vector<Brownout> merged;
  merged.reserve(brownouts_.size());
  for (const Brownout& b : brownouts_) {
    if (!merged.empty() && b.from <= merged.back().until) {
      Brownout& m = merged.back();
      m.until = std::max(m.until, b.until);
      m.bandwidth_factor = std::min(m.bandwidth_factor, b.bandwidth_factor);
      m.extra_latency_ns = std::max(m.extra_latency_ns, b.extra_latency_ns);
    } else {
      merged.push_back(b);
    }
  }
  brownouts_ = std::move(merged);
  brownout_cursor_ = 0;
}

std::shared_ptr<RdmaCompletion> RdmaNic::Post(Channel& ch, uint64_t bytes, Histogram& lat,
                                              Histogram* queueing, bool is_write) {
  MAGESIM_PROF_SCOPE(rdma_post);
  Engine& eng = Engine::current();
  SimTime now = eng.now();
  double rate = params_.nic_gbps;
  SimTime extra = 0;
  if (const Brownout* b = ActiveBrownout(now)) {
    rate *= b->bandwidth_factor;
    extra = b->extra_latency_ns;
  }
  RdmaOpFate fate;
  if (fault_model_ != nullptr) {
    fate = fault_model_->OnRdmaPost(is_write, now, node_id_);
    rate *= fate.bandwidth_factor;
    extra += fate.extra_latency_ns;
  }
  if (rate < 1e-6) rate = 1e-6;
  SimTime wire = static_cast<SimTime>(
      std::max<double>(1.0, static_cast<double>(bytes) * 8.0 / rate));
  SimTime start = std::max(now, ch.next_free);
  ch.next_free = start + wire;
  ch.busy_ns += wire;
  SimTime completes = start + wire + params_.rdma_base_ns + extra;
  // allocate_shared + slab: completion object and control block live in one
  // recyclable block (one completion per RDMA op adds up to millions).
  auto c = std::allocate_shared<RdmaCompletion>(SlabStdAllocator<RdmaCompletion>{}, completes);
  if (fate.drop) {
    // The op still consumed channel time (the payload may even have reached
    // the far side) but its completion is lost: the event never fires and no
    // latency is recorded.
    c->MarkLost();
    if (is_write) {
      ++writes_dropped_;
    } else {
      ++reads_dropped_;
    }
    TraceEmit(is_write ? TraceEventType::kRdmaWriteDrop : TraceEventType::kRdmaReadDrop, -1,
              kTraceNoPage, kTraceNoFrame, bytes);
    return c;
  }
  lat.Record(completes - now);
  if (queueing != nullptr) {
    queueing->Record(start - now);
  }
  TraceEventType done_ev;
  RdmaCompletion::Status status;
  if (fate.error) {
    done_ev = is_write ? TraceEventType::kRdmaWriteError : TraceEventType::kRdmaReadError;
    status = RdmaCompletion::Status::kError;
    if (is_write) {
      ++writes_errored_;
    } else {
      ++reads_errored_;
    }
  } else {
    done_ev = is_write ? TraceEventType::kRdmaWriteDone : TraceEventType::kRdmaReadDone;
    status = RdmaCompletion::Status::kOk;
  }
  eng.Spawn(SignalAt(c, completes, done_ev, completes - now, status));
  return c;
}

std::shared_ptr<RdmaCompletion> RdmaNic::PostRead(uint64_t bytes) {
  bytes_read_ += bytes;
  ++reads_posted_;
  TraceEmit(TraceEventType::kRdmaReadPost, -1, kTraceNoPage, kTraceNoFrame, bytes);
  return Post(read_ch_, bytes, read_latency_, &read_queueing_, /*is_write=*/false);
}

std::shared_ptr<RdmaCompletion> RdmaNic::PostWrite(uint64_t bytes) {
  bytes_written_ += bytes;
  ++writes_posted_;
  TraceEmit(TraceEventType::kRdmaWritePost, -1, kTraceNoPage, kTraceNoFrame, bytes);
  return Post(write_ch_, bytes, write_latency_, nullptr, /*is_write=*/true);
}

Task<> RdmaNic::Read(uint64_t bytes) {
  auto c = PostRead(bytes);
  co_await c->Wait();
}

Task<> RdmaNic::Write(uint64_t bytes) {
  auto c = PostWrite(bytes);
  co_await c->Wait();
}

double RdmaNic::ReadUtilization() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0
                      : static_cast<double>(read_ch_.busy_ns) / static_cast<double>(elapsed);
}

double RdmaNic::WriteUtilization() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0
                      : static_cast<double>(write_ch_.busy_ns) / static_cast<double>(elapsed);
}

double RdmaNic::AchievedReadGbps() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0 : static_cast<double>(bytes_read_) * 8.0 / elapsed;
}

double RdmaNic::AchievedWriteGbps() const {
  SimTime elapsed = Engine::current().now() - stats_epoch_;
  return elapsed <= 0 ? 0.0 : static_cast<double>(bytes_written_) * 8.0 / elapsed;
}

void RdmaNic::ResetStats() {
  stats_epoch_ = Engine::current().now();
  read_ch_.busy_ns = 0;
  write_ch_.busy_ns = 0;
  bytes_read_ = bytes_written_ = 0;
  reads_posted_ = writes_posted_ = 0;
  reads_dropped_ = writes_dropped_ = 0;
  reads_errored_ = writes_errored_ = 0;
  read_latency_.Reset();
  write_latency_.Reset();
  read_queueing_.Reset();
}

}  // namespace magesim
