// NUMA topology and per-core bookkeeping.
#ifndef MAGESIM_HW_TOPOLOGY_H_
#define MAGESIM_HW_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/hw/machine_params.h"
#include "src/sim/time.h"

namespace magesim {

using CoreId = int;

// One logical CPU. Interrupt work delivered to a core "steals" cycles from
// whatever thread is pinned there; the owning thread absorbs the stolen time
// at its next compute step (DrainStolenTime), the standard DES approximation
// for asynchronous interrupt delivery.
class Core {
 public:
  explicit Core(CoreId id, int socket) : id_(id), socket_(socket) {}

  CoreId id() const { return id_; }
  int socket() const { return socket_; }

  void AddStolenTime(SimTime ns) {
    stolen_pending_ns_ += ns;
    stolen_total_ns_ += ns;
  }

  SimTime DrainStolenTime() {
    SimTime t = stolen_pending_ns_;
    stolen_pending_ns_ = 0;
    return t;
  }

  SimTime stolen_total_ns() const { return stolen_total_ns_; }
  uint64_t interrupts_received() const { return interrupts_received_; }
  void CountInterrupt() { ++interrupts_received_; }

 private:
  CoreId id_;
  int socket_;
  SimTime stolen_pending_ns_ = 0;
  SimTime stolen_total_ns_ = 0;
  uint64_t interrupts_received_ = 0;
};

class Topology {
 public:
  explicit Topology(const MachineParams& params);

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Core& core(CoreId id) { return cores_[static_cast<size_t>(id)]; }
  const Core& core(CoreId id) const { return cores_[static_cast<size_t>(id)]; }
  int SocketOf(CoreId id) const { return cores_[static_cast<size_t>(id)].socket(); }
  bool SameSocket(CoreId a, CoreId b) const { return SocketOf(a) == SocketOf(b); }

  const MachineParams& params() const { return params_; }

 private:
  MachineParams params_;
  std::vector<Core> cores_;
};

}  // namespace magesim

#endif  // MAGESIM_HW_TOPOLOGY_H_
