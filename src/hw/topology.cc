#include "src/hw/topology.h"

namespace magesim {

Topology::Topology(const MachineParams& params) : params_(params) {
  cores_.reserve(static_cast<size_t>(params.cores()));
  for (int i = 0; i < params.cores(); ++i) {
    cores_.emplace_back(i, params.SocketOf(i));
  }
}

}  // namespace magesim
