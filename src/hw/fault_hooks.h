// Failure-injection hooks consulted by the simulated hardware. The hw layer
// owns only the interface; src/resilience provides the scripted implementation
// (FaultInjector), keeping the dependency arrow pointing from resilience to hw
// and never the other way.
#ifndef MAGESIM_HW_FAULT_HOOKS_H_
#define MAGESIM_HW_FAULT_HOOKS_H_

#include "src/sim/time.h"

namespace magesim {

// Outcome assigned to one posted RDMA op, decided at post time.
struct RdmaOpFate {
  double bandwidth_factor = 1.0;  // scales the channel's serialization rate
  SimTime extra_latency_ns = 0;   // added to the op's completion latency
  bool error = false;             // completion arrives flagged failed (remote NAK)
  bool drop = false;              // completion never arrives (lost CQE / dead node)
};

class HwFaultModel {
 public:
  virtual ~HwFaultModel() = default;

  // Consulted once per posted RDMA op, at post time. `node` is the memory
  // node the posting NIC channel belongs to (0 for the single-node machine),
  // so node-targeted fault windows affect only that node's link.
  virtual RdmaOpFate OnRdmaPost(bool is_write, SimTime now, int node) = 0;

  // Extra interconnect delay for one IPI dispatched at `now`.
  virtual SimTime ExtraIpiDelayNs(SimTime now) = 0;
};

}  // namespace magesim

#endif  // MAGESIM_HW_FAULT_HOOKS_H_
