// RDMA NIC model: two simplex channels (read = remote->local, write =
// local->remote), each a single FIFO server with finite data rate. An op
// queues for wire serialization, then experiences the fixed base latency
// (doorbell, PCIe DMA, propagation, completion). Throughput saturates at
// bandwidth/page-size — the paper's 5.83 M pages/s ideal — and tail latency
// grows with queue depth, reproducing the congestion knee of Fig. 15.
#ifndef MAGESIM_HW_RDMA_H_
#define MAGESIM_HW_RDMA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/fault_hooks.h"
#include "src/hw/machine_params.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace magesim {

// Completion handle for asynchronously posted operations.
class RdmaCompletion {
 public:
  enum class Status : uint8_t {
    kPending,  // not yet signaled
    kOk,       // completed successfully
    kError,    // completion arrived flagged failed (remote NAK / CQE error)
    kLost,     // completion never arrives (lost CQE / dead memory node)
  };

  explicit RdmaCompletion(SimTime completes_at) : completes_at_(completes_at) {}
  SimEvent::Awaiter Wait() { return event_.Wait(); }
  void Signal(Status s = Status::kOk) {
    status_ = s;
    event_.Set();
  }
  bool done() const { return event_.is_set(); }
  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }
  // A dropped op is marked lost at post time but its event never fires; a
  // caller that must survive drops pairs Wait() with its own deadline.
  void MarkLost() { status_ = Status::kLost; }
  SimTime completes_at() const { return completes_at_; }

 private:
  SimEvent event_{"rdma-completion"};
  SimTime completes_at_;
  Status status_ = Status::kPending;
};

class RdmaNic {
 public:
  // `node_id` identifies the memory node this NIC's channels reach (0 for
  // the classic single-node machine; fleet machines run one RdmaNic per
  // memory server). It is forwarded to the fault model so injection windows
  // can target individual nodes.
  explicit RdmaNic(const MachineParams& params, int node_id = 0);

  // Posts a one-sided op; completion time is computed at post (FIFO channel).
  // The returned handle's event fires at that time. Posting itself is free of
  // simulated delay; callers model host-stack CPU cost themselves.
  std::shared_ptr<RdmaCompletion> PostRead(uint64_t bytes);
  std::shared_ptr<RdmaCompletion> PostWrite(uint64_t bytes);

  // Synchronous helpers.
  Task<> Read(uint64_t bytes);
  Task<> Write(uint64_t bytes);

  // Failure injection: between [from, until) the link runs at
  // `bandwidth_factor` of its rate and ops pay `extra_latency_ns` —
  // modeling congestion from a bursty neighbor, link retraining, or a
  // struggling memory node. Multiple windows may be scheduled; overlapping
  // windows are merged on insert (min factor, max extra latency).
  void InjectBrownout(SimTime from, SimTime until, double bandwidth_factor,
                      SimTime extra_latency_ns);

  // Optional per-op failure model (scripted injection); nullptr disables.
  void SetFaultModel(HwFaultModel* model) { fault_model_ = model; }
  HwFaultModel* fault_model() const { return fault_model_; }

  int node_id() const { return node_id_; }

  size_t num_brownout_windows() const { return brownouts_.size(); }

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t reads_posted() const { return reads_posted_; }
  uint64_t writes_posted() const { return writes_posted_; }
  uint64_t reads_dropped() const { return reads_dropped_; }
  uint64_t writes_dropped() const { return writes_dropped_; }
  uint64_t reads_errored() const { return reads_errored_; }
  uint64_t writes_errored() const { return writes_errored_; }

  // End-to-end op latency (queueing + wire + base).
  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& write_latency() const { return write_latency_; }
  // Queueing-only component (congestion).
  const Histogram& read_queueing() const { return read_queueing_; }

  // Fraction of wall time the read/write channel was serializing data since
  // the last ResetStats().
  double ReadUtilization() const;
  double WriteUtilization() const;
  // Cumulative channel-busy time since the last ResetStats — the metrics
  // sampler derives windowed utilization from deltas of these (with
  // counter-reset detection for the warmup reset).
  uint64_t read_busy_ns() const { return static_cast<uint64_t>(read_ch_.busy_ns); }
  uint64_t write_busy_ns() const { return static_cast<uint64_t>(write_ch_.busy_ns); }
  double AchievedReadGbps() const;
  double AchievedWriteGbps() const;

  void ResetStats();

  const MachineParams& params() const { return params_; }

 private:
  struct Channel {
    SimTime next_free = 0;
    SimTime busy_ns = 0;
  };

  struct Brownout {
    SimTime from;
    SimTime until;
    double bandwidth_factor;
    SimTime extra_latency_ns;
  };

  // Effective rate/latency adjustments at time `now`. Windows are sorted and
  // disjoint (merged on insert); post times are non-decreasing, so a cursor
  // skips expired windows once — O(1) amortized per posted op.
  const Brownout* ActiveBrownout(SimTime now) const;

  std::shared_ptr<RdmaCompletion> Post(Channel& ch, uint64_t bytes, Histogram& lat,
                                       Histogram* queueing, bool is_write);
  static Task<> SignalAt(std::shared_ptr<RdmaCompletion> c, SimTime when,
                         TraceEventType done_ev, SimTime op_latency,
                         RdmaCompletion::Status status);

  MachineParams params_;
  int node_id_;
  std::vector<Brownout> brownouts_;
  mutable size_t brownout_cursor_ = 0;
  HwFaultModel* fault_model_ = nullptr;
  Channel read_ch_;
  Channel write_ch_;
  SimTime stats_epoch_ = 0;

  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t reads_posted_ = 0;
  uint64_t writes_posted_ = 0;
  uint64_t reads_dropped_ = 0;
  uint64_t writes_dropped_ = 0;
  uint64_t reads_errored_ = 0;
  uint64_t writes_errored_ = 0;
  Histogram read_latency_;
  Histogram write_latency_;
  Histogram read_queueing_;
};

}  // namespace magesim

#endif  // MAGESIM_HW_RDMA_H_
