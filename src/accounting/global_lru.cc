#include "src/accounting/global_lru.h"

#include <algorithm>

#include "src/sim/engine.h"

namespace magesim {

namespace {
constexpr int16_t kInactive = 0;
constexpr int16_t kActive = 1;
}  // namespace

GlobalLru::GlobalLru(PageTable& pt, Costs costs) : pt_(pt), costs_(costs) {}

Task<> GlobalLru::Insert(CoreId core, PageFrame* f) {
  SimTime start = Engine::current().now();
  auto g = co_await lock_.Scoped();
  co_await Delay{costs_.insert_cs_ns};
  inactive_.Locked("lru insert").PushBack(f);
  f->lru_list = kInactive;
  ++stats_.inserts;
  insert_time_total_ += Engine::current().now() - start;
}

void GlobalLru::InsertSetup(CoreId core, PageFrame* f) {
  // Prepopulation runs before the engine spawns any task; Unsafe() skips the
  // (vacuous) held check.
  inactive_.Unsafe().PushBack(f);
  f->lru_list = kInactive;
  ++stats_.inserts;
}

void GlobalLru::Balance() {
  FrameList& inactive = inactive_.Locked("lru balance");
  FrameList& active = active_.Locked("lru balance");
  // Demote from the active list until it is no larger than the inactive list
  // (shrink_active_list analogue). Demotion clears the reference so demoted
  // pages must be re-referenced to survive the next scan.
  while (active.size() > inactive.size()) {
    PageFrame* f = active.PopFront();
    if (f->vpn != kInvalidVpn) {
      pt_.At(f->vpn).accessed = false;
    }
    inactive.PushBack(f);
    f->lru_list = kInactive;
  }
}

Task<size_t> GlobalLru::IsolateBatch(int evictor_id, CoreId core, size_t want,
                                     std::vector<PageFrame*>* out) {
  auto g = co_await lock_.Scoped();
  FrameList& inactive = inactive_.Locked("lru isolate scan");
  FrameList& active = active_.Locked("lru isolate scan");
  size_t got = 0;
  // Scan bound: examine at most 4x the request (and never pages this scan
  // itself reactivated), so a hot inactive list cannot wedge the evictor.
  size_t scan_budget = std::min(want * 4, inactive.size());
  while (got < want && scan_budget > 0 && !inactive.empty()) {
    co_await Delay{costs_.scan_per_page_ns};
    --scan_budget;
    ++stats_.scanned;
    PageFrame* f = inactive.PopFront();
    bool accessed = f->vpn != kInvalidVpn && pt_.At(f->vpn).accessed;
    if (accessed) {
      // Second chance: promote to the active list, clear the reference.
      pt_.At(f->vpn).accessed = false;
      active.PushBack(f);
      f->lru_list = kActive;
      ++stats_.reactivated;
      continue;
    }
    f->lru_list = -1;
    f->state = PageFrame::State::kIsolated;
    out->push_back(f);
    ++got;
    ++stats_.isolated;
  }
  if (got < want) {
    Balance();
    scan_budget = std::min(want * 4, inactive.size());
    while (got < want && scan_budget > 0 && !inactive.empty()) {
      co_await Delay{costs_.scan_per_page_ns};
      --scan_budget;
      ++stats_.scanned;
      PageFrame* f = inactive.PopFront();
      bool accessed = f->vpn != kInvalidVpn && pt_.At(f->vpn).accessed;
      if (accessed) {
        pt_.At(f->vpn).accessed = false;
        active.PushBack(f);
        f->lru_list = kActive;
        ++stats_.reactivated;
        continue;
      }
      f->lru_list = -1;
      f->state = PageFrame::State::kIsolated;
      out->push_back(f);
      ++got;
      ++stats_.isolated;
    }
  }
  co_return got;
}

void GlobalLru::Unlink(PageFrame* f) {
  if (!f->linked()) return;
  FrameList& inactive = inactive_.Locked("lru unlink");
  FrameList& active = active_.Locked("lru unlink");
  if (f->lru_list == kInactive) {
    inactive.Remove(f);
  } else {
    active.Remove(f);
  }
  f->lru_list = -1;
}

}  // namespace magesim
