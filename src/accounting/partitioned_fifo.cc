#include "src/accounting/partitioned_fifo.h"

#include <algorithm>
#include <cassert>

#include "src/analysis/guarded.h"
#include "src/sim/prof_counters.h"
#include "src/sim/engine.h"

namespace magesim {

PartitionedFifo::PartitionedFifo(PageTable& pt, int num_partitions, int num_evictors,
                                 Costs costs)
    : pt_(pt), costs_(costs) {
  assert(num_partitions > 0 && num_evictors > 0);
  lists_.resize(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    locks_.push_back(std::make_unique<SimMutex>("fifo-part"));
  }
  // Each evictor starts scanning at a different list index to balance load
  // (§4.2.2 "Removing pages from LRU lists").
  rr_cursor_.resize(static_cast<size_t>(num_evictors));
  for (int e = 0; e < num_evictors; ++e) {
    rr_cursor_[static_cast<size_t>(e)] =
        static_cast<size_t>(e) * static_cast<size_t>(num_partitions) /
        static_cast<size_t>(num_evictors);
  }
}

Task<> PartitionedFifo::Insert(CoreId core, PageFrame* f) {
  SimTime start = Engine::current().now();
  size_t p = PartitionFor(core);
  {
    auto g = co_await locks_[p]->Scoped();
    co_await Delay{costs_.insert_cs_ns};
    MAGESIM_ASSERT_HELD(*locks_[p], "fifo partition (insert)");
    lists_[p].PushBack(f);
    f->lru_list = static_cast<int16_t>(p);
  }
  ++stats_.inserts;
  insert_time_total_ += Engine::current().now() - start;
}

void PartitionedFifo::InsertSetup(CoreId core, PageFrame* f) {
  size_t p = PartitionFor(core);
  lists_[p].PushBack(f);
  f->lru_list = static_cast<int16_t>(p);
  ++stats_.inserts;
}

Task<size_t> PartitionedFifo::IsolateBatch(int evictor_id, CoreId core, size_t want,
                                           std::vector<PageFrame*>* out) {
  size_t got = 0;
  size_t& cursor = rr_cursor_[static_cast<size_t>(evictor_id)];
  size_t lists_tried = 0;
  while (got < want && lists_tried < lists_.size()) {
    size_t p = cursor;
    cursor = (cursor + 1) % lists_.size();
    ++lists_tried;
    if (lists_[p].empty()) continue;
    auto g = co_await locks_[p]->Scoped();
    MAGESIM_ASSERT_HELD(*locks_[p], "fifo partition (isolate scan)");
    // Never re-examine pages this scan itself rotated back: bound the scan
    // by the list length at entry.
    size_t scan_budget = std::min((want - got) * 4, lists_[p].size());
    while (got < want && scan_budget > 0 && !lists_[p].empty()) {
      co_await Delay{costs_.scan_per_page_ns};
      --scan_budget;
      ++stats_.scanned;
      PageFrame* f = lists_[p].PopFront();
      bool accessed = f->vpn != kInvalidVpn && pt_.At(f->vpn).accessed;
      if (accessed) {
        pt_.At(f->vpn).accessed = false;
        if (f->referenced) {
          // Referenced on two consecutive scans: genuinely hot, requeue.
          ++stats_.reactivated;
        } else {
          // Use-once filter: remember the reference for the next scan.
          f->referenced = true;
        }
        lists_[p].PushBack(f);
        continue;
      }
      if (f->referenced) {
        // Cooled down since the last scan: one more round before eviction.
        f->referenced = false;
        lists_[p].PushBack(f);
        continue;
      }
      f->lru_list = -1;
      f->state = PageFrame::State::kIsolated;
      out->push_back(f);
      ++got;
      ++stats_.isolated;
    }
  }
  co_return got;
}

void PartitionedFifo::Unlink(PageFrame* f) {
  MAGESIM_PROF_SCOPE(fifo_unlink);
  if (!f->linked()) return;
  lists_[static_cast<size_t>(f->lru_list)].Remove(f);
  f->lru_list = -1;
}

uint64_t PartitionedFifo::tracked_pages() const {
  uint64_t n = 0;
  for (const auto& l : lists_) n += l.size();
  return n;
}

LockStats PartitionedFifo::AggregateLockStats() const {
  LockStats agg;
  for (const auto& l : locks_) {
    agg.acquisitions += l->stats().acquisitions;
    agg.contended += l->stats().contended;
    agg.total_wait_ns += l->stats().total_wait_ns;
    agg.max_wait_ns = std::max(agg.max_wait_ns, l->stats().max_wait_ns);
  }
  return agg;
}

}  // namespace magesim
