#include "src/accounting/mglru.h"

#include <algorithm>

#include "src/analysis/guarded.h"
#include "src/sim/engine.h"

namespace magesim {

MgLru::MgLru(PageTable& pt, Costs costs) : pt_(pt), costs_(costs) {}

Task<> MgLru::Insert(CoreId core, PageFrame* f) {
  SimTime start = Engine::current().now();
  {
    auto g = co_await lock_.Scoped();
    co_await Delay{costs_.insert_cs_ns};
    MAGESIM_ASSERT_HELD(lock_, "mglru generations (insert)");
    Youngest().PushBack(f);
    f->lru_list = YoungestId();
  }
  ++stats_.inserts;
  insert_time_total_ += Engine::current().now() - start;
}

void MgLru::InsertSetup(CoreId core, PageFrame* f) {
  // Setup-time pages enter the *oldest* generation: they have no history yet
  // and should be reclaim candidates until referenced.
  Oldest().PushBack(f);
  f->lru_list = static_cast<int16_t>(min_gen_);
  ++stats_.inserts;
}

void MgLru::AgeIfOldestEmpty() {
  // Advancing min_gen makes the next generation the eviction target and
  // frees the old slot to become the new youngest.
  int guard = 0;
  while (Oldest().empty() && guard < kGenerations && tracked_pages() > 0) {
    min_gen_ = (min_gen_ + 1) % kGenerations;
    ++agings_;
    ++guard;
  }
}

Task<size_t> MgLru::IsolateBatch(int evictor_id, CoreId core, size_t want,
                                 std::vector<PageFrame*>* out) {
  auto g = co_await lock_.Scoped();
  MAGESIM_ASSERT_HELD(lock_, "mglru generations (isolate scan)");
  size_t got = 0;
  AgeIfOldestEmpty();
  size_t budget = std::min(want * 4, tracked_pages());
  while (got < want && budget > 0 && tracked_pages() > 0) {
    AgeIfOldestEmpty();
    if (Oldest().empty()) break;
    co_await Delay{costs_.scan_per_page_ns};
    --budget;
    ++stats_.scanned;
    PageFrame* f = Oldest().PopFront();
    bool accessed = f->vpn != kInvalidVpn && pt_.At(f->vpn).accessed;
    if (accessed) {
      // Referenced since it aged into the oldest generation: promote to the
      // youngest generation (the MGLRU aging walk outcome).
      pt_.At(f->vpn).accessed = false;
      Youngest().PushBack(f);
      f->lru_list = YoungestId();
      ++stats_.reactivated;
      continue;
    }
    f->lru_list = -1;
    f->state = PageFrame::State::kIsolated;
    out->push_back(f);
    ++got;
    ++stats_.isolated;
  }
  co_return got;
}

void MgLru::Unlink(PageFrame* f) {
  if (!f->linked()) return;
  gens_[static_cast<size_t>(f->lru_list)].Remove(f);
  f->lru_list = -1;
}

uint64_t MgLru::tracked_pages() const {
  uint64_t n = 0;
  for (const auto& g : gens_) n += g.size();
  return n;
}

}  // namespace magesim
