// S3-FIFO page accounting (Yang et al., SOSP '23 — cited by the paper in
// §4.2.2 as a lower-contention alternative to LRU that nevertheless "requires
// fine-grained access frequency tracking that is incompatible with existing
// OS page table mechanisms"). This adaptation approximates object frequencies
// with the coarse PTE accessed bit sampled at scan time:
//   * Small queue (10% of tracked pages): new pages enter here. On scan,
//     referenced pages promote to Main; unreferenced ones evict, leaving a
//     ghost entry.
//   * Main queue: referenced pages are reinserted with decremented frequency
//     ("lazy promotion"); unreferenced ones evict.
//   * Ghost FIFO (metadata only): a refault whose vpn is still in the ghost
//     inserts directly into Main ("quick demotion" escape hatch).
// One lock protects all three structures — the contention profile the paper
// contrasts against its partitioned design.
#ifndef MAGESIM_ACCOUNTING_S3FIFO_H_
#define MAGESIM_ACCOUNTING_S3FIFO_H_

#include "src/accounting/accounting.h"
#include "src/accounting/intrusive_list.h"
#include "src/accounting/vpn_set.h"
#include "src/sim/ring_queue.h"

namespace magesim {

struct S3FifoCosts {
  SimTime insert_cs_ns = 70;      // ghost lookup + queue insert
  SimTime scan_per_page_ns = 95;  // freq check + queue movement
};

class S3Fifo : public PageAccounting {
 public:
  using Costs = S3FifoCosts;

  explicit S3Fifo(PageTable& pt, Costs costs = Costs());

  Task<> Insert(CoreId core, PageFrame* f) override;
  void InsertSetup(CoreId core, PageFrame* f) override;
  Task<size_t> IsolateBatch(int evictor_id, CoreId core, size_t want,
                            std::vector<PageFrame*>* out) override;
  void Unlink(PageFrame* f) override;

  uint64_t tracked_pages() const override { return small_.size() + main_.size(); }
  LockStats AggregateLockStats() const override { return lock_.stats(); }

  size_t small_size() const { return small_.size(); }
  size_t main_size() const { return main_.size(); }
  size_t ghost_size() const { return ghost_fifo_.size(); }
  uint64_t ghost_hits() const { return ghost_hits_; }

 private:
  // Small queue target: 10% of tracked pages (the S3-FIFO default).
  bool SmallOverTarget() const { return small_.size() * 10 > tracked_pages(); }
  void GhostInsert(uint64_t vpn);
  bool GhostErase(uint64_t vpn);
  void PlaceNew(PageFrame* f);

  PageTable& pt_;
  Costs costs_;
  FrameList small_;  // lru_list id 0
  FrameList main_;   // lru_list id 1
  // Ghost metadata: allocation-free ring + open-addressing set (the
  // unordered_set/deque pair they replace allocated a node per evicted vpn).
  RingQueue<uint64_t> ghost_fifo_;
  VpnSet ghost_set_;
  size_t ghost_capacity_ = 0;  // tracks main_ capacity dynamically
  uint64_t ghost_hits_ = 0;
  SimMutex lock_{"s3fifo"};
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_S3FIFO_H_
