// Page-replacement accounting interface (FP3 + EP1 of §2.1).
//
// Both implementations run second-chance selection over PTE accessed bits
// (the coarse-grained hotness signal page tables give the OS, §4.2.2):
//  * GlobalLru        — Linux/DiLOS-style system-wide active/inactive lists
//                       behind one lru_lock; every fault-in insert and every
//                       eviction scan serializes here (Challenge 2).
//  * PartitionedFifo  — MAGE: per-evictor independent FIFO lists, insertion
//                       hashed by CPU id, round-robin scanning; trades global
//                       recency accuracy for near-zero contention.
#ifndef MAGESIM_ACCOUNTING_ACCOUNTING_H_
#define MAGESIM_ACCOUNTING_ACCOUNTING_H_

#include <cstdint>
#include <vector>

#include "src/hw/topology.h"
#include "src/mem/frame_pool.h"
#include "src/mem/page_table.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {

struct AccountingStats {
  uint64_t inserts = 0;
  uint64_t scanned = 0;
  uint64_t reactivated = 0;
  uint64_t isolated = 0;
};

class PageAccounting {
 public:
  virtual ~PageAccounting() = default;

  // FP3: registers a freshly faulted-in (or reactivated) page.
  virtual Task<> Insert(CoreId core, PageFrame* f) = 0;

  // Setup-time registration with zero simulated cost (machine prepopulation).
  virtual void InsertSetup(CoreId core, PageFrame* f) = 0;

  // EP1: selects up to `want` eviction victims for `evictor_id`, applying
  // second chance (accessed pages are re-queued with the bit cleared).
  // Victims are unlinked from accounting; caller owns them afterwards.
  virtual Task<size_t> IsolateBatch(int evictor_id, CoreId core, size_t want,
                                    std::vector<PageFrame*>* out) = 0;

  // Removes a specific page from accounting if it is linked (used when a
  // fault races with eviction bookkeeping). Cheap, lock-held by caller-side
  // cost model.
  virtual void Unlink(PageFrame* f) = 0;

  virtual uint64_t tracked_pages() const = 0;
  virtual LockStats AggregateLockStats() const = 0;
  const AccountingStats& stats() const { return stats_; }

  // Cumulative simulated time spent in Insert (the FP3 component of the
  // fault-latency breakdown).
  SimTime insert_time_total() const { return insert_time_total_; }

 protected:
  AccountingStats stats_;
  SimTime insert_time_total_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_ACCOUNTING_H_
