// Open-addressing membership set for page numbers (ghost-list metadata).
//
// Replaces std::unordered_set<uint64_t> on the accounting hot path: the node
// allocation per insert and the bucket-array pointer chase both go away.
// Linear probing with backward-shift deletion; the only allocation is the
// doubling rehash. Membership semantics are exactly those of the set it
// replaces (iteration order is never observed), so policy behavior — and the
// golden traces — are unchanged.
#ifndef MAGESIM_ACCOUNTING_VPN_SET_H_
#define MAGESIM_ACCOUNTING_VPN_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace magesim {

class VpnSet {
 public:
  // Returns true if `key` was newly inserted (std::unordered_set::insert
  // pair::second analogue). Any uint64_t key is valid, including ~0.
  bool insert(uint64_t key) {
    if ((count_ + 1) * 10 >= Capacity() * 7) Grow();
    size_t i = Probe(key);
    if (used_[i]) return false;
    used_[i] = 1;
    slot_[i] = key;
    ++count_;
    return true;
  }

  // Returns 1 if the key was present and removed, 0 otherwise
  // (std::unordered_set::erase count analogue).
  size_t erase(uint64_t key) {
    if (count_ == 0) return 0;
    size_t i = Probe(key);
    if (!used_[i]) return 0;
    // Backward-shift deletion: close the hole so probe chains stay intact.
    size_t hole = i;
    size_t mask = Capacity() - 1;
    size_t j = (hole + 1) & mask;
    while (used_[j]) {
      size_t home = Hash(slot_[j]) & mask;
      // slot_[j] may move into the hole only if the hole lies within its
      // probe path (cyclic distance check).
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slot_[hole] = slot_[j];
        hole = j;
      }
      j = (j + 1) & mask;
    }
    used_[hole] = 0;
    --count_;
    return 1;
  }

  bool contains(uint64_t key) const {
    if (count_ == 0) return false;
    return used_[Probe(key)];
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  static uint64_t Hash(uint64_t x) {
    // splitmix64 finalizer: cheap and well-distributed for page numbers.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  size_t Capacity() const { return slot_.size(); }

  // Index of `key` if present, else the empty slot where it would insert.
  size_t Probe(uint64_t key) const {
    size_t mask = Capacity() - 1;
    size_t i = Hash(key) & mask;
    while (used_[i] && slot_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void Grow() {
    size_t cap = Capacity() == 0 ? 128 : Capacity() * 2;
    std::vector<uint64_t> old_slot = std::move(slot_);
    std::vector<uint8_t> old_used = std::move(used_);
    slot_.assign(cap, 0);
    used_.assign(cap, 0);
    count_ = 0;
    for (size_t i = 0; i < old_slot.size(); ++i) {
      if (old_used[i]) insert(old_slot[i]);
    }
  }

  std::vector<uint64_t> slot_;
  std::vector<uint8_t> used_;
  size_t count_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_VPN_SET_H_
