// MAGE's partitioned page accounting (§4.2.2): one independent FIFO list per
// partition, each with its own lock. Fault-in inserts hash by the faulting
// CPU id; evictor threads scan round-robin starting at distinct indices.
// Deliberately trades global recency accuracy for scalability (P3).
#ifndef MAGESIM_ACCOUNTING_PARTITIONED_FIFO_H_
#define MAGESIM_ACCOUNTING_PARTITIONED_FIFO_H_

#include <memory>

#include "src/accounting/accounting.h"
#include "src/accounting/intrusive_list.h"

namespace magesim {

struct PartitionedFifoCosts {
  SimTime insert_cs_ns = 40;
  SimTime scan_per_page_ns = 70;
};

class PartitionedFifo : public PageAccounting {
 public:
  using Costs = PartitionedFifoCosts;

  PartitionedFifo(PageTable& pt, int num_partitions, int num_evictors, Costs costs = Costs());

  Task<> Insert(CoreId core, PageFrame* f) override;
  void InsertSetup(CoreId core, PageFrame* f) override;
  Task<size_t> IsolateBatch(int evictor_id, CoreId core, size_t want,
                            std::vector<PageFrame*>* out) override;
  void Unlink(PageFrame* f) override;

  uint64_t tracked_pages() const override;
  LockStats AggregateLockStats() const override;

  int num_partitions() const { return static_cast<int>(lists_.size()); }
  size_t PartitionSize(int i) const { return lists_[static_cast<size_t>(i)].size(); }

 private:
  size_t PartitionFor(CoreId core) const {
    // Hash of the current CPU id modulo the number of lists (§4.2.2).
    uint64_t h = static_cast<uint64_t>(core) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>((h >> 32) % lists_.size());
  }

  PageTable& pt_;
  Costs costs_;
  std::vector<FrameList> lists_;
  std::vector<std::unique_ptr<SimMutex>> locks_;
  std::vector<size_t> rr_cursor_;  // per-evictor round-robin scan position
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_PARTITIONED_FIFO_H_
