#include "src/accounting/s3fifo.h"

#include <algorithm>

#include "src/analysis/guarded.h"
#include "src/sim/engine.h"

namespace magesim {

namespace {
constexpr int16_t kSmall = 0;
constexpr int16_t kMain = 1;
constexpr uint8_t kMaxFreq = 3;
}  // namespace

S3Fifo::S3Fifo(PageTable& pt, Costs costs) : pt_(pt), costs_(costs) {}

void S3Fifo::GhostInsert(uint64_t vpn) {
  if (ghost_set_.insert(vpn)) {
    ghost_fifo_.push_back(vpn);
  }
  // Ghost capacity tracks the main queue size (S3-FIFO sizes it to Main).
  ghost_capacity_ = std::max<size_t>(main_.size(), 64);
  while (ghost_fifo_.size() > ghost_capacity_) {
    ghost_set_.erase(ghost_fifo_.front());
    ghost_fifo_.pop_front();
  }
}

bool S3Fifo::GhostErase(uint64_t vpn) {
  // Lazy: the FIFO entry stays until it ages out; the set is authoritative.
  return ghost_set_.erase(vpn) > 0;
}

void S3Fifo::PlaceNew(PageFrame* f) {
  f->freq = 0;
  if (f->vpn != kInvalidVpn && GhostErase(f->vpn)) {
    // Refault of a recently evicted page: straight into Main.
    ++ghost_hits_;
    main_.PushBack(f);
    f->lru_list = kMain;
  } else {
    small_.PushBack(f);
    f->lru_list = kSmall;
  }
}

Task<> S3Fifo::Insert(CoreId core, PageFrame* f) {
  SimTime start = Engine::current().now();
  {
    auto g = co_await lock_.Scoped();
    co_await Delay{costs_.insert_cs_ns};
    MAGESIM_ASSERT_HELD(lock_, "s3fifo queues (insert)");
    PlaceNew(f);
  }
  ++stats_.inserts;
  insert_time_total_ += Engine::current().now() - start;
}

void S3Fifo::InsertSetup(CoreId core, PageFrame* f) {
  PlaceNew(f);
  ++stats_.inserts;
}

Task<size_t> S3Fifo::IsolateBatch(int evictor_id, CoreId core, size_t want,
                                  std::vector<PageFrame*>* out) {
  auto g = co_await lock_.Scoped();
  MAGESIM_ASSERT_HELD(lock_, "s3fifo queues (isolate scan)");
  size_t got = 0;
  size_t budget = std::min(want * 4, small_.size() + main_.size());
  while (got < want && budget > 0 && tracked_pages() > 0) {
    co_await Delay{costs_.scan_per_page_ns};
    --budget;
    ++stats_.scanned;
    // Evict from Small while it exceeds its 10% target, else from Main.
    bool from_small = !small_.empty() && (SmallOverTarget() || main_.empty());
    FrameList& q = from_small ? small_ : main_;
    if (q.empty()) break;
    PageFrame* f = q.PopFront();
    bool accessed = f->vpn != kInvalidVpn && pt_.At(f->vpn).accessed;
    if (accessed) {
      pt_.At(f->vpn).accessed = false;
      f->freq = static_cast<uint8_t>(std::min<int>(f->freq + 1, kMaxFreq));
    }
    if (from_small) {
      if (f->freq > 0) {
        // Referenced while in Small: promote to Main.
        main_.PushBack(f);
        f->lru_list = kMain;
        ++stats_.reactivated;
        continue;
      }
      GhostInsert(f->vpn);
    } else {
      if (f->freq > 0) {
        // Lazy promotion: second chance proportional to frequency.
        --f->freq;
        main_.PushBack(f);
        ++stats_.reactivated;
        continue;
      }
    }
    f->lru_list = -1;
    f->state = PageFrame::State::kIsolated;
    out->push_back(f);
    ++got;
    ++stats_.isolated;
  }
  co_return got;
}

void S3Fifo::Unlink(PageFrame* f) {
  if (!f->linked()) return;
  if (f->lru_list == kSmall) {
    small_.Remove(f);
  } else {
    main_.Remove(f);
  }
  f->lru_list = -1;
}

}  // namespace magesim
