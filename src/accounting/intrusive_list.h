// Intrusive doubly-linked list over PageFrame (struct-page style linkage):
// O(1) push/pop/remove with zero allocation, as required for hot accounting
// paths.
#ifndef MAGESIM_ACCOUNTING_INTRUSIVE_LIST_H_
#define MAGESIM_ACCOUNTING_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>

#include "src/mem/frame_pool.h"

namespace magesim {

class FrameList {
 public:
  void PushBack(PageFrame* f) {
    assert(f->prev == nullptr && f->next == nullptr && f != head_);
    f->prev = tail_;
    f->next = nullptr;
    if (tail_ != nullptr) {
      tail_->next = f;
    } else {
      head_ = f;
    }
    tail_ = f;
    ++size_;
  }

  void PushFront(PageFrame* f) {
    assert(f->prev == nullptr && f->next == nullptr && f != tail_);
    f->next = head_;
    f->prev = nullptr;
    if (head_ != nullptr) {
      head_->prev = f;
    } else {
      tail_ = f;
    }
    head_ = f;
    ++size_;
  }

  PageFrame* PopFront() {
    if (head_ == nullptr) return nullptr;
    PageFrame* f = head_;
    Remove(f);
    return f;
  }

  void Remove(PageFrame* f) {
    assert(size_ > 0);
    if (f->prev != nullptr) {
      f->prev->next = f->next;
    } else {
      assert(head_ == f);
      head_ = f->next;
    }
    if (f->next != nullptr) {
      f->next->prev = f->prev;
    } else {
      assert(tail_ == f);
      tail_ = f->prev;
    }
    f->prev = nullptr;
    f->next = nullptr;
    --size_;
  }

  // O(1) transfer of every node in `other` to this list's tail, preserving
  // order. `other` is left empty. Frames keep their lru_list stamp; callers
  // that splice across accounting partitions must restamp themselves.
  void SpliceBack(FrameList& other) {
    if (other.head_ == nullptr) return;
    if (tail_ != nullptr) {
      tail_->next = other.head_;
      other.head_->prev = tail_;
    } else {
      head_ = other.head_;
    }
    tail_ = other.tail_;
    size_ += other.size_;
    other.head_ = nullptr;
    other.tail_ = nullptr;
    other.size_ = 0;
  }

  PageFrame* front() const { return head_; }
  PageFrame* back() const { return tail_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  PageFrame* head_ = nullptr;
  PageFrame* tail_ = nullptr;
  size_t size_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_INTRUSIVE_LIST_H_
