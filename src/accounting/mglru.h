// Multi-generational LRU page accounting (Linux's MGLRU, cited by the paper
// as the modern Linux eviction mechanism [2]). Pages live in one of
// kGenerations generation FIFOs; eviction scans the oldest generation and
// promotes referenced pages to the youngest ("aging" walks are folded into
// the scan). A single lru_lock still serializes generation movement, which is
// the contention MAGE's partitioning removes.
#ifndef MAGESIM_ACCOUNTING_MGLRU_H_
#define MAGESIM_ACCOUNTING_MGLRU_H_

#include <array>

#include "src/accounting/accounting.h"
#include "src/accounting/intrusive_list.h"

namespace magesim {

struct MgLruCosts {
  SimTime insert_cs_ns = 60;
  SimTime scan_per_page_ns = 85;  // gen check + movement (cheaper than rmap walks)
};

class MgLru : public PageAccounting {
 public:
  using Costs = MgLruCosts;
  static constexpr int kGenerations = 4;

  explicit MgLru(PageTable& pt, Costs costs = Costs());

  Task<> Insert(CoreId core, PageFrame* f) override;
  void InsertSetup(CoreId core, PageFrame* f) override;
  Task<size_t> IsolateBatch(int evictor_id, CoreId core, size_t want,
                            std::vector<PageFrame*>* out) override;
  void Unlink(PageFrame* f) override;

  uint64_t tracked_pages() const override;
  LockStats AggregateLockStats() const override { return lock_.stats(); }

  size_t GenerationSize(int g) const {
    return gens_[static_cast<size_t>((min_gen_ + g) % kGenerations)].size();
  }
  uint64_t agings() const { return agings_; }

 private:
  FrameList& Oldest() { return gens_[static_cast<size_t>(min_gen_)]; }
  FrameList& Youngest() {
    return gens_[static_cast<size_t>((min_gen_ + kGenerations - 1) % kGenerations)];
  }
  int16_t YoungestId() const {
    return static_cast<int16_t>((min_gen_ + kGenerations - 1) % kGenerations);
  }
  void AgeIfOldestEmpty();

  PageTable& pt_;
  Costs costs_;
  std::array<FrameList, kGenerations> gens_;  // lru_list = generation index
  int min_gen_ = 0;  // index of the oldest generation
  uint64_t agings_ = 0;
  SimMutex lock_{"mglru"};
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_MGLRU_H_
