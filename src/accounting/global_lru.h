// System-wide two-list LRU behind a single lru_lock (Linux / OSv lineage).
#ifndef MAGESIM_ACCOUNTING_GLOBAL_LRU_H_
#define MAGESIM_ACCOUNTING_GLOBAL_LRU_H_

#include "src/accounting/accounting.h"
#include "src/accounting/intrusive_list.h"
#include "src/analysis/guarded.h"

namespace magesim {

struct GlobalLruCosts {
  SimTime insert_cs_ns = 60;      // list insert under lru_lock
  SimTime scan_per_page_ns = 90;  // isolate/check/rotate one page
};

class GlobalLru : public PageAccounting {
 public:
  using Costs = GlobalLruCosts;

  explicit GlobalLru(PageTable& pt, Costs costs = Costs());

  Task<> Insert(CoreId core, PageFrame* f) override;
  void InsertSetup(CoreId core, PageFrame* f) override;
  Task<size_t> IsolateBatch(int evictor_id, CoreId core, size_t want,
                            std::vector<PageFrame*>* out) override;
  void Unlink(PageFrame* f) override;

  uint64_t tracked_pages() const override {
    // Unsafe(): size() is a plain counter read; a stale value only skews a
    // report sampled mid-scan, never control flow.
    return inactive_.Unsafe().size() + active_.Unsafe().size();
  }
  LockStats AggregateLockStats() const override { return lock_.stats(); }

  // Unsafe(): read-only reporting that tolerates observing a scan mid-update.
  size_t inactive_size() const { return inactive_.Unsafe().size(); }
  size_t active_size() const { return active_.Unsafe().size(); }  // see above

 private:
  void Balance();

  PageTable& pt_;
  Costs costs_;
  SimMutex lock_{"lru"};
  GuardedBy<FrameList> inactive_{lock_};  // lru_list id 0
  GuardedBy<FrameList> active_{lock_};    // lru_list id 1
};

}  // namespace magesim

#endif  // MAGESIM_ACCOUNTING_GLOBAL_LRU_H_
