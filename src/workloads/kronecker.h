// Kronecker (R-MAT) graph generator in CSR form — the GapBS input (§6.1,
// Graph500 parameters a/b/c = 0.57/0.19/0.19).
#ifndef MAGESIM_WORKLOADS_KRONECKER_H_
#define MAGESIM_WORKLOADS_KRONECKER_H_

#include <cstdint>
#include <vector>

#include "src/sim/random.h"

namespace magesim {

struct CsrGraph {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;          // directed edge count after dedup
  std::vector<uint64_t> offsets;   // size num_vertices + 1
  std::vector<uint32_t> neighbors; // size num_edges

  uint64_t OutDegree(uint64_t v) const { return offsets[v + 1] - offsets[v]; }
};

// Generates a Kronecker graph with 2^scale vertices and ~edge_factor edges
// per vertex. Deterministic per seed. Self-loops kept (GapBS does not remove
// them for PageRank), duplicate edges kept (they weight the walk, as in the
// generator's raw output).
CsrGraph GenerateKronecker(int scale, int edge_factor, uint64_t seed);

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_KRONECKER_H_
