#include "src/workloads/seqscan.h"

namespace magesim {

Task<> SeqScanWorkload::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  uint64_t shard = opt_.region_pages / static_cast<uint64_t>(opt_.threads);
  uint64_t begin = shard * static_cast<uint64_t>(tid);
  uint64_t end = (tid == opt_.threads - 1) ? opt_.region_pages : begin + shard;
  uint64_t sum = 0;
  for (int pass = 0; pass < opt_.passes; ++pass) {
    for (uint64_t vpn = begin; vpn < end; ++vpn) {
      if (eng.shutdown_requested()) co_return;
      co_await t.AccessPage(vpn, opt_.write);
      // The checksum itself: deterministic page-content stand-in.
      sum += vpn * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(pass);
      t.Compute(opt_.compute_per_page_ns);
      ++t.ops;
    }
  }
  co_await t.Sync();
  checksum_ ^= sum;
}

Task<> FaultOnlySeqRead::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  uint64_t begin = opt_.pages_per_thread * static_cast<uint64_t>(tid);
  uint64_t end = begin + opt_.pages_per_thread;
  uint64_t dist = static_cast<uint64_t>(opt_.reclaim_distance);
  // Pre-evict the whole shard (the paper's madvise_pageout setup step) so
  // every access below is a major fault.
  for (uint64_t vpn = begin; vpn < end; ++vpn) {
    t.kernel().InstantReclaim(vpn);
  }
  for (uint64_t vpn = begin; vpn < end; ++vpn) {
    if (eng.shutdown_requested()) break;
    co_await t.AccessPage(vpn, /*write=*/false);
    if (opt_.compute_per_page_ns > 0) t.Compute(opt_.compute_per_page_ns);
    ++t.ops;
    // Emulate madvise_pageout far behind the cursor: zero-cost reclaim keeps
    // every access a major fault without engaging the eviction path.
    if (vpn >= begin + dist) {
      t.kernel().InstantReclaim(vpn - dist);
    }
  }
  // Leave no resident pages behind so repeated runs are independent.
  for (uint64_t vpn = end > dist ? end - dist : 0; vpn < end; ++vpn) {
    t.kernel().InstantReclaim(vpn);
  }
  co_await t.Sync();
}

}  // namespace magesim
