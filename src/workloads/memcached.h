// Memcached-style in-memory KV store under Facebook's USR-like load (§6.3):
// an open-loop Poisson request generator (99.8% GET / 0.2% SET, Zipf-0.99
// keys) feeding a pool of server threads over a dispatch queue. A real
// open-addressing hash table backs the store: bucket probes and value reads
// are the simulated memory accesses. Reports per-request latency percentiles.
#ifndef MAGESIM_WORKLOADS_MEMCACHED_H_
#define MAGESIM_WORKLOADS_MEMCACHED_H_

#include <memory>

#include "src/sim/stats.h"
#include "src/workloads/workload.h"

namespace magesim {

class MemcachedWorkload : public Workload {
 public:
  struct Options {
    uint64_t num_keys = 1 << 20;        // paper: 21 M pairs
    double load_ops_per_sec = 400000;   // offered load
    double get_fraction = 0.998;        // USR distribution
    double zipf_theta = 0.99;
    int server_threads = 24;            // single-socket (§6.3)
    SimTime duration = 2 * kSecond;
    SimTime service_compute_ns = 2000;  // parse + hash + respond
    uint64_t seed = 23;
    size_t queue_capacity = 4096;       // accept queue bound
  };

  explicit MemcachedWorkload(Options opt);

  std::string name() const override { return "memcached"; }
  uint64_t wss_pages() const override { return wss_pages_; }
  // +1: thread 0 is the load generator; the rest serve requests.
  int num_threads() const override { return opt_.server_threads + 1; }
  std::string ops_unit() const override { return "requests"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  const Histogram& request_latency() const { return latency_; }
  uint64_t completed_requests() const { return completed_; }
  uint64_t dropped_requests() const { return dropped_; }
  double AchievedOpsPerSec() const {
    return static_cast<double>(completed_) / NsToSec(opt_.duration);
  }

 private:
  struct Request {
    uint64_t key;
    bool is_set;
    SimTime arrival;
  };

  uint64_t BucketVpn(uint64_t key_hash) const;
  uint64_t ValueVpn(uint64_t key) const;

  Options opt_;
  uint64_t bucket_pages_;
  uint64_t value_pages_;
  uint64_t wss_pages_;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::unique_ptr<Channel<Request>> queue_;
  Histogram latency_;
  uint64_t completed_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_MEMCACHED_H_
