#include "src/workloads/kronecker.h"

#include <algorithm>

namespace magesim {

CsrGraph GenerateKronecker(int scale, int edge_factor, uint64_t seed) {
  const uint64_t n = 1ULL << scale;
  const uint64_t m = n * static_cast<uint64_t>(edge_factor);
  Rng rng(seed);

  // R-MAT recursive quadrant descent with Graph500 probabilities.
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t src = 0, dst = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      double r = rng.NextDouble();
      if (r < kA) {
        // top-left: nothing set
      } else if (r < kA + kB) {
        dst |= 1ULL << bit;
      } else if (r < kA + kB + kC) {
        src |= 1ULL << bit;
      } else {
        src |= 1ULL << bit;
        dst |= 1ULL << bit;
      }
    }
    // Permute vertex labels so degree correlates with nothing spatial; this
    // is what makes the neighbor reads a *random* far-memory pattern.
    src = ScrambleIndex(src, n);
    dst = ScrambleIndex(dst, n);
    edges.emplace_back(static_cast<uint32_t>(src), static_cast<uint32_t>(dst));
  }

  // Build CSR (counting sort by source).
  CsrGraph g;
  g.num_vertices = n;
  g.num_edges = edges.size();
  g.offsets.assign(n + 1, 0);
  for (const auto& [s, d] : edges) {
    ++g.offsets[s + 1];
  }
  for (uint64_t v = 0; v < n; ++v) {
    g.offsets[v + 1] += g.offsets[v];
  }
  g.neighbors.resize(g.num_edges);
  std::vector<uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [s, d] : edges) {
    g.neighbors[cursor[s]++] = d;
  }
  return g;
}

}  // namespace magesim
