#include "src/workloads/registry.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <set>

#include "src/workloads/dataframe.h"
#include "src/workloads/gups.h"
#include "src/workloads/memcached.h"
#include "src/workloads/metis.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/seqscan.h"
#include "src/workloads/trace.h"
#include "src/workloads/xsbench.h"

namespace magesim {

namespace {

// Typed option access over the raw key=value map, tracking which keys were
// consumed so Finish() can reject typos.
class OptReader {
 public:
  OptReader(const std::map<std::string, std::string>& opts, std::string* error)
      : opts_(opts), error_(error) {}

  uint64_t U64(const std::string& key, uint64_t def) {
    const std::string* v = Find(key);
    if (v == nullptr) return def;
    char* end = nullptr;
    uint64_t out = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') Fail(key, *v);
    return out;
  }

  int Int(const std::string& key, int def) { return static_cast<int>(U64(key, static_cast<uint64_t>(def))); }

  double Dbl(const std::string& key, double def) {
    const std::string* v = Find(key);
    if (v == nullptr) return def;
    char* end = nullptr;
    double out = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') Fail(key, *v);
    return out;
  }

  std::string Str(const std::string& key, const std::string& def) {
    const std::string* v = Find(key);
    return v == nullptr ? def : *v;
  }

  // True when every provided key was consumed; otherwise reports the typo.
  bool Finish(const std::string& wname) {
    for (const auto& [k, v] : opts_) {
      if (seen_.count(k) == 0) {
        *error_ = "workload '" + wname + "' does not take option '" + k + "'";
        return false;
      }
    }
    return error_->empty();
  }

 private:
  const std::string* Find(const std::string& key) {
    seen_.insert(key);
    auto it = opts_.find(key);
    return it == opts_.end() ? nullptr : &it->second;
  }

  void Fail(const std::string& key, const std::string& v) {
    if (error_->empty()) *error_ = "bad value '" + v + "' for option '" + key + "'";
  }

  const std::map<std::string, std::string>& opts_;
  std::string* error_;
  std::set<std::string> seen_;
};

using Factory =
    std::function<std::unique_ptr<Workload>(const WorkloadParams&, OptReader&)>;

struct Entry {
  WorkloadInfo info;
  Factory make;
};

// Defaults mirror the CLI's historical hard-coded configurations, so
// `--workload=foo` keeps producing exactly the runs it always did.
const std::vector<Entry>& Registry() {
  static const std::vector<Entry>* entries = new std::vector<Entry>{
      {{"dataframe", "columnar filter+group-by queries",
        "rows=8388608 columns=4 queries=4"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<DataframeWorkload>(DataframeWorkload::Options{
             .num_rows = o.U64("rows", 8 * 1024 * 1024),
             .num_columns = o.Int("columns", 4),
             .threads = p.threads,
             .queries_per_thread = o.Int("queries", 4)});
       }},
      {{"gups", "random updates with a working-set phase change",
        "pages=49152 theta=0.99 phase_ms=300 run_ms=600"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<GupsWorkload>(GupsWorkload::Options{
             .total_pages = o.U64("pages", 48 * 1024),
             .threads = p.threads,
             .zipf_theta = o.Dbl("theta", 0.99),
             .phase_change_at = static_cast<SimTime>(o.U64("phase_ms", 300)) * kMillisecond,
             .run_for = static_cast<SimTime>(o.U64("run_ms", 600)) * kMillisecond});
       }},
      {{"memcached", "closed-loop key-value server under offered load",
        "keys=262144 ops=200000 duration_ms=1000"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<MemcachedWorkload>(MemcachedWorkload::Options{
             .num_keys = o.U64("keys", 1 << 18),
             .load_ops_per_sec = o.Dbl("ops", 200000),
             .server_threads = p.threads,
             .duration = static_cast<SimTime>(o.U64("duration_ms", 1000)) * kMillisecond});
       }},
      {{"metis", "map-reduce word count (input scan + hash intermediate)",
        "input=16384 intermediate=12288"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<MetisWorkload>(MetisWorkload::Options{
             .input_pages = o.U64("input", 16 * 1024),
             .intermediate_pages = o.U64("intermediate", 12 * 1024),
             .threads = p.threads});
       }},
      {{"mixed-trace", "zipf point lookups mixed with shard scans",
        "wss=32768 accesses=20000 theta=0.95 scan=0.2"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         TraceGenOptions gopt{.wss_pages = o.U64("wss", 32 * 1024),
                              .threads = p.threads,
                              .accesses_per_thread = o.U64("accesses", 20000)};
         return std::make_unique<TraceReplayWorkload>(
             GenerateMixedTrace(gopt, o.Dbl("theta", 0.95), o.Dbl("scan", 0.2)));
       }},
      {{"pagerank", "GAP-style PageRank over a Kronecker graph",
        "scale=16 iterations=3"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<PageRankWorkload>(PageRankWorkload::Options{
             .scale = o.Int("scale", 16),
             .iterations = o.Int("iterations", 3),
             .threads = p.threads});
       }},
      {{"seqscan", "sequential multi-pass scan over a shared region",
        "pages=32768 passes=2 compute_ns=5570 write=0"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<SeqScanWorkload>(SeqScanWorkload::Options{
             .region_pages = o.U64("pages", 32 * 1024),
             .threads = p.threads,
             .passes = o.Int("passes", 2),
             .compute_per_page_ns = static_cast<SimTime>(o.U64("compute_ns", 5570)),
             .write = o.U64("write", 0) != 0});
       }},
      {{"trace", "replay a recorded access trace", "file=<path>"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         (void)p;  // thread count comes from the trace itself
         std::string path = o.Str("file", "");
         Trace trace;
         if (path.empty() || !Trace::LoadFrom(path, &trace)) return nullptr;
         return std::make_unique<TraceReplayWorkload>(std::move(trace));
       }},
      {{"xsbench", "Monte Carlo cross-section lookups (gather-heavy)",
        "gridpoints=262144 lookups=3000"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         return std::make_unique<XsBenchWorkload>(XsBenchWorkload::Options{
             .gridpoints = o.U64("gridpoints", 1 << 18),
             .lookups_per_thread = o.U64("lookups", 3000),
             .threads = p.threads});
       }},
      {{"zipf-trace", "zipf-distributed point accesses",
        "wss=32768 accesses=20000 theta=0.95"},
       [](const WorkloadParams& p, OptReader& o) -> std::unique_ptr<Workload> {
         TraceGenOptions gopt{.wss_pages = o.U64("wss", 32 * 1024),
                              .threads = p.threads,
                              .accesses_per_thread = o.U64("accesses", 20000)};
         return std::make_unique<TraceReplayWorkload>(
             GenerateZipfTrace(gopt, o.Dbl("theta", 0.95)));
       }},
  };
  return *entries;
}

}  // namespace

std::unique_ptr<Workload> MakeWorkload(const std::string& name, const WorkloadParams& params,
                                       std::string* error) {
  std::string local;
  if (error == nullptr) error = &local;
  error->clear();
  for (const Entry& e : Registry()) {
    if (e.info.name != name) continue;
    OptReader reader(params.opts, error);
    std::unique_ptr<Workload> w = e.make(params, reader);
    if (w == nullptr && error->empty()) {
      *error = "workload '" + name + "' could not be constructed (missing/bad input?)";
    }
    if (!reader.Finish(name)) return nullptr;
    return error->empty() ? std::move(w) : nullptr;
  }
  *error = "unknown workload '" + name + "'";
  return nullptr;
}

const std::vector<WorkloadInfo>& ListWorkloads() {
  static const std::vector<WorkloadInfo>* infos = [] {
    auto* v = new std::vector<WorkloadInfo>;
    for (const Entry& e : Registry()) v->push_back(e.info);
    std::sort(v->begin(), v->end(),
              [](const WorkloadInfo& a, const WorkloadInfo& b) { return a.name < b.name; });
    return v;
  }();
  return *infos;
}

}  // namespace magesim
