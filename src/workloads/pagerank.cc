#include "src/workloads/pagerank.h"

namespace magesim {

namespace {
constexpr double kDamping = 0.85;
constexpr uint64_t kNeighborsPerPage = kPageSize / sizeof(uint32_t);
constexpr uint64_t kOffsetsPerPage = kPageSize / sizeof(uint64_t);
constexpr uint64_t kRanksPerPage = kPageSize / sizeof(double);
constexpr uint64_t kContribPerPage = kPageSize / sizeof(float);
}  // namespace

PageRankWorkload::PageRankWorkload(Options opt)
    : opt_(opt),
      graph_(GenerateKronecker(opt.scale, opt.edge_factor, opt.seed)),
      barrier_(opt.threads) {
  uint64_t neighbor_pages = (graph_.num_edges + kNeighborsPerPage - 1) / kNeighborsPerPage;
  uint64_t offset_pages = (graph_.num_vertices + kOffsetsPerPage) / kOffsetsPerPage + 1;
  uint64_t rank_pages = (graph_.num_vertices + kRanksPerPage - 1) / kRanksPerPage;
  uint64_t contrib_pages = (graph_.num_vertices + kContribPerPage - 1) / kContribPerPage;
  neighbors_base_ = 0;
  offsets_base_ = neighbors_base_ + neighbor_pages;
  rank_src_base_ = offsets_base_ + offset_pages;
  rank_dst_base_ = rank_src_base_ + rank_pages;
  contrib_base_ = rank_dst_base_ + rank_pages;
  wss_pages_ = contrib_base_ + contrib_pages;

  double init = 1.0 / static_cast<double>(graph_.num_vertices);
  rank_src_.assign(graph_.num_vertices, init);
  rank_dst_.assign(graph_.num_vertices, 0.0);
  out_contrib_.assign(graph_.num_vertices, 0.0);
}

uint64_t PageRankWorkload::NeighborsVpn(uint64_t edge_index) const {
  return neighbors_base_ + edge_index / kNeighborsPerPage;
}
uint64_t PageRankWorkload::OffsetsVpn(uint64_t vertex) const {
  return offsets_base_ + vertex / kOffsetsPerPage;
}
uint64_t PageRankWorkload::RankVpn(uint64_t vertex, bool dst) const {
  return (dst ? rank_dst_base_ : rank_src_base_) + vertex / kRanksPerPage;
}
uint64_t PageRankWorkload::ContribVpn(uint64_t vertex) const {
  return contrib_base_ + vertex / kContribPerPage;
}

Task<> PageRankWorkload::ThreadBody(AppThread& t, int tid) {
  // GapBS pull-direction PageRank. Memory behavior mirrors the real code:
  //  * contributions (4 B/vertex) are read at random per edge — the hot,
  //    random far-memory pattern;
  //  * the CSR offsets/neighbors arrays stream sequentially (the capacity
  //    pressure);
  //  * rank arrays are read/written sequentially per shard.
  Engine& eng = Engine::current();
  uint64_t n = graph_.num_vertices;
  uint64_t chunk = (n + static_cast<uint64_t>(opt_.threads) - 1) /
                   static_cast<uint64_t>(opt_.threads);
  uint64_t begin = chunk * static_cast<uint64_t>(tid);
  uint64_t end = std::min(n, begin + chunk);

  for (int iter = 0; iter < opt_.iterations; ++iter) {
    if (eng.shutdown_requested()) co_return;
    // Phase 1: out-contributions (sequential rank read, sequential contrib
    // write, page-granular).
    uint64_t last_rank_vpn = ~0ULL, last_contrib_vpn = ~0ULL;
    for (uint64_t v = begin; v < end; ++v) {
      uint64_t rvpn = RankVpn(v, false);
      if (rvpn != last_rank_vpn) {
        co_await t.AccessPage(rvpn, false);
        last_rank_vpn = rvpn;
      }
      uint64_t cvpn = ContribVpn(v);
      if (cvpn != last_contrib_vpn) {
        co_await t.AccessPage(cvpn, true);
        last_contrib_vpn = cvpn;
      }
      uint64_t deg = graph_.OutDegree(v);
      out_contrib_[v] =
          deg == 0 ? 0.0 : static_cast<float>(rank_src_[v] / static_cast<double>(deg));
      t.Compute(opt_.compute_per_vertex_ns);
    }
    co_await t.Sync();
    co_await barrier_.Arrive();

    // Phase 2: pull along incoming edges; contribution reads hop randomly.
    uint64_t last_edge_vpn = ~0ULL, last_off_vpn = ~0ULL, last_dst_vpn = ~0ULL;
    for (uint64_t v = begin; v < end; ++v) {
      if (eng.shutdown_requested()) co_return;
      uint64_t ovpn = OffsetsVpn(v);
      if (ovpn != last_off_vpn) {
        co_await t.AccessPage(ovpn, false);
        last_off_vpn = ovpn;
      }
      double sum = 0.0;
      uint64_t e_begin = graph_.offsets[v];
      uint64_t e_end = graph_.offsets[v + 1];
      for (uint64_t e = e_begin; e < e_end; ++e) {
        uint64_t evpn = NeighborsVpn(e);
        if (evpn != last_edge_vpn) {  // page-granular stream touch
          co_await t.AccessPage(evpn, false);
          last_edge_vpn = evpn;
        }
        uint32_t u = graph_.neighbors[e];
        co_await t.AccessPage(ContribVpn(u), false);  // random far access
        sum += out_contrib_[u];
        t.Compute(opt_.compute_per_edge_ns);
        ++t.ops;
      }
      uint64_t dvpn = RankVpn(v, true);
      if (dvpn != last_dst_vpn) {
        co_await t.AccessPage(dvpn, true);
        last_dst_vpn = dvpn;
      }
      rank_dst_[v] = (1.0 - kDamping) / static_cast<double>(n) + kDamping * sum;
      t.Compute(opt_.compute_per_vertex_ns);
    }
    co_await t.Sync();
    co_await barrier_.Arrive();

    if (tid == 0) {
      std::swap(rank_src_, rank_dst_);
    }
    co_await barrier_.Arrive();
  }
}

Task<> PageRankWorkload::IterationBarrier(int tid) { co_await barrier_.Arrive(); }

}  // namespace magesim
