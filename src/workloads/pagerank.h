// GapBS PageRank over a Kronecker graph (§6.2 "random access patterns").
//
// Real pull-direction PageRank: the algorithm computes actual ranks over the
// generated graph while every array access is mirrored onto the simulated
// address space at page granularity. The neighbor-contribution reads are the
// random far-memory pattern the paper highlights; the CSR edge stream is
// sequential.
#ifndef MAGESIM_WORKLOADS_PAGERANK_H_
#define MAGESIM_WORKLOADS_PAGERANK_H_

#include <vector>

#include "src/workloads/kronecker.h"
#include "src/workloads/workload.h"

namespace magesim {

class PageRankWorkload : public Workload {
 public:
  struct Options {
    int scale = 18;       // 2^18 = 262k vertices (paper: 41.7 M)
    int edge_factor = 16; // ~4.2 M edges (paper: 1.5 B)
    int iterations = 3;
    int threads = 48;
    uint64_t seed = 7;
    SimTime compute_per_edge_ns = 13;
    SimTime compute_per_vertex_ns = 20;
  };

  explicit PageRankWorkload(Options opt);

  std::string name() const override { return "gapbs-pagerank"; }
  uint64_t wss_pages() const override { return wss_pages_; }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "edges"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  // Final ranks (validated by tests: sums to ~1, converges deterministically).
  const std::vector<double>& ranks() const { return rank_src_; }
  const CsrGraph& graph() const { return graph_; }

  // --- Simulated address-space layout (page numbers) ---
  uint64_t NeighborsVpn(uint64_t edge_index) const;
  uint64_t OffsetsVpn(uint64_t vertex) const;
  uint64_t RankVpn(uint64_t vertex, bool dst) const;
  uint64_t ContribVpn(uint64_t vertex) const;

 private:
  Task<> IterationBarrier(int tid);

  Options opt_;
  CsrGraph graph_;
  uint64_t neighbors_base_ = 0;  // vpn of neighbors[] region
  uint64_t offsets_base_;
  uint64_t rank_src_base_;
  uint64_t rank_dst_base_;
  uint64_t contrib_base_;
  uint64_t wss_pages_;

  std::vector<double> rank_src_;
  std::vector<double> rank_dst_;
  std::vector<float> out_contrib_;
  SimBarrier barrier_;
  int iteration_done_count_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_PAGERANK_H_
