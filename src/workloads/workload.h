// Application-side interface to the paging kernel.
//
// Workloads are real algorithms operating on a simulated address space at
// page granularity: an AppThread accumulates compute time locally (no engine
// events on the fast path) and only suspends on page faults or when its
// accumulated time exceeds a quantum, which keeps multi-million-access
// workloads cheap to simulate while preserving fault timing.
#ifndef MAGESIM_WORKLOADS_WORKLOAD_H_
#define MAGESIM_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/metrics/profiler.h"
#include "src/paging/kernel.h"
#include "src/sim/random.h"

namespace magesim {

// Compute-time accumulation quantum: an app thread syncs with the engine at
// least this often even without faulting, so eviction scanning observes
// reasonably fresh accessed bits.
inline constexpr SimTime kAppQuantum = 20 * kMicrosecond;

class AppThread {
 public:
  AppThread(Kernel& kernel, CoreId core, uint64_t seed)
      : kernel_(kernel),
        core_(core),
        rng_(seed),
        compute_factor_(kernel.config().compute_overhead_factor) {}

  CoreId core() const { return core_; }
  Rng& rng() { return rng_; }
  Kernel& kernel() { return kernel_; }

  // Accumulates local compute time (scaled by the variant's virtualization
  // overhead factor). Accumulation is fractional so sub-nanosecond tax on
  // small quanta is not truncated away.
  void Compute(SimTime ns) { pending_acc_ += static_cast<double>(ns) * compute_factor_; }

  // Engine time plus locally accumulated (not yet flushed) compute time.
  SimTime logical_now() const {
    return Engine::current().now() + static_cast<SimTime>(pending_acc_);
  }

  // Touches the page containing `addr`. Fast path (present PTE, quantum not
  // exceeded) never suspends.  Usage: `co_await t.Access(addr, write);`
  struct AccessAwaiter {
    AppThread& t;
    uint64_t vpn;
    bool write;
    Task<> slow;

    bool await_ready() {
      if (t.pending_acc_ < static_cast<double>(kAppQuantum) &&
          t.kernel_.topology().core(t.core_).stolen_total_ns() == t.stolen_seen_ &&
          t.kernel_.TryFastAccess(vpn, write)) {
        return true;
      }
      return false;
    }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
      slow = t.AccessSlow(vpn, write);
      return slow.BeginAwait(h);
    }
    void await_resume() {
      if (slow.valid()) slow.RethrowIfException();
    }
  };

  AccessAwaiter Access(uint64_t addr, bool write) {
    return AccessAwaiter{*this, (addr >> kPageShift) + vpn_base_, write, {}};
  }
  AccessAwaiter AccessPage(uint64_t vpn, bool write) {
    return AccessAwaiter{*this, vpn + vpn_base_, write, {}};
  }

  // Shifts every access by a fixed page offset: multi-tenant composition
  // places each tenant's workload in its own disjoint vpn window while the
  // inner workload keeps addressing [0, wss_pages).
  void set_vpn_base(uint64_t base) { vpn_base_ = base; }
  uint64_t vpn_base() const { return vpn_base_; }

  // Flushes accumulated compute time to the engine (used at loop boundaries
  // and before reading wall-clock-like state).
  Task<> Sync() {
    SimTime d = TakePending();
    if (d > 0) co_await Delay{d};
  }

  uint64_t ops = 0;  // workload-defined unit of work counter

 private:
  friend struct AccessAwaiter;

  SimTime TakePending() {
    Core& c = kernel_.topology().core(core_);
    SimTime whole = static_cast<SimTime>(pending_acc_);
    pending_acc_ -= static_cast<double>(whole);  // keep the fractional remainder
    SimTime stolen = c.DrainStolenTime();
    stolen_seen_ = c.stolen_total_ns();
    // The caller immediately elapses the returned duration, so attributing
    // here matches the simulated interval: accumulated quanta are app
    // compute, absorbed flush-IPI handler time is TLB-shootdown overhead.
    if (SimProfiler* prof = SimProfiler::Get()) {
      prof->AddPhase(core_, SimPhase::kAppCompute, whole);
      prof->AddPhase(core_, SimPhase::kTlbWait, stolen);
    }
    return whole + stolen;
  }

  Task<> AccessSlow(uint64_t vpn, bool write) {
    SimTime d = TakePending();
    if (d > 0) co_await Delay{d};
    while (!kernel_.TryFastAccess(vpn, write)) {
      co_await kernel_.Fault(core_, vpn, write);
    }
  }

  Kernel& kernel_;
  CoreId core_;
  Rng rng_;
  double compute_factor_;
  double pending_acc_ = 0;
  SimTime stolen_seen_ = 0;
  uint64_t vpn_base_ = 0;
};

// A multi-threaded application.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  // Pages of simulated address space the workload touches ([0, wss_pages)).
  virtual uint64_t wss_pages() const = 0;
  virtual int num_threads() const = 0;
  // Body of thread `tid`, running on `t.core()`. Must return (poll
  // Engine::current().shutdown_requested() in unbounded loops).
  virtual Task<> ThreadBody(AppThread& t, int tid) = 0;

  // Human-readable unit for `ops` (throughput reporting).
  virtual std::string ops_unit() const { return "ops"; }
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_WORKLOAD_H_
