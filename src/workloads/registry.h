// By-name workload factory.
//
// One registry backs every front-end that names workloads as strings: the
// CLI (`--workload=`, `--list-workloads`), tenant specs
// (`--tenant lat:4:0.4:latency=seqscan/2,pages=4096`), and tests. Factories
// take a thread count plus free-form key=value overrides; unknown names,
// unknown keys, and unparsable values all fail with a descriptive error
// instead of silently running the wrong experiment.
#ifndef MAGESIM_WORKLOADS_REGISTRY_H_
#define MAGESIM_WORKLOADS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace magesim {

struct WorkloadParams {
  int threads = 24;
  // Workload-specific overrides; see ListWorkloads() for each entry's keys.
  std::map<std::string, std::string> opts;
};

// Creates a workload by registry name. Returns nullptr and fills *error on
// an unknown name, an unknown option key, or an unparsable option value.
std::unique_ptr<Workload> MakeWorkload(const std::string& name, const WorkloadParams& params,
                                       std::string* error);

struct WorkloadInfo {
  std::string name;
  std::string description;
  std::string options;  // "key=default ..." help string
};

// Registered workloads, sorted by name.
const std::vector<WorkloadInfo>& ListWorkloads();

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_REGISTRY_H_
