#include "src/workloads/xsbench.h"

namespace magesim {

XsBenchWorkload::XsBenchWorkload(Options opt) : opt_(opt) {
  energy_dist_ = std::make_unique<ZipfGenerator>(opt_.gridpoints, opt_.energy_zipf_theta);
  // Unionized grid: one 16-byte entry (energy + index) per gridpoint.
  entries_per_page_ = kPageSize / 16;
  // Cross-section data: 48 bytes per (gridpoint-bucket, nuclide) entry,
  // scaled down by a fixed stride so the region stays simulation-sized.
  xs_per_page_ = kPageSize / 48;
  grid_base_ = 0;
  uint64_t grid_pages = (opt_.gridpoints + entries_per_page_ - 1) / entries_per_page_;
  xs_base_ = grid_pages;
  xs_entries_ = opt_.gridpoints;  // one bucket row per gridpoint
  uint64_t xs_pages = (xs_entries_ + xs_per_page_ - 1) / xs_per_page_;
  wss_pages_ = grid_pages + xs_pages;
}

Task<> XsBenchWorkload::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  uint64_t local_hash = 0;
  for (uint64_t l = 0; l < opt_.lookups_per_thread; ++l) {
    if (eng.shutdown_requested()) break;
    // Sample a particle energy, binary-search the unionized grid. The first
    // probes hit the (hot) middle of the array; the final probes are random.
    uint64_t lo = 0, hi = opt_.gridpoints - 1;
    uint64_t target = ScrambleIndex(energy_dist_->Next(t.rng()), opt_.gridpoints);
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      co_await t.AccessPage(GridVpn(mid), /*write=*/false);
      if (mid < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Gather cross sections for a handful of nuclides at scattered rows.
    double macro_xs = 0.0;
    for (int k = 0; k < opt_.nuclides_per_lookup; ++k) {
      uint64_t nuclide = t.rng().NextU64(static_cast<uint64_t>(opt_.nuclides));
      uint64_t row = ScrambleIndex(lo * 131 + nuclide, xs_entries_);
      co_await t.AccessPage(XsVpn(row), /*write=*/false);
      macro_xs += static_cast<double>((row % 997) + 1) * 1e-3;
    }
    local_hash ^= static_cast<uint64_t>(macro_xs * 1e6) + lo;
    t.Compute(opt_.compute_per_lookup_ns);
    ++t.ops;
  }
  co_await t.Sync();
  result_hash_ ^= local_hash;
}

}  // namespace magesim
