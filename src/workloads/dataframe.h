// Dataframe-style analytics (§6.2 motivates the regular access pattern with
// the hosseinmoein/DataFrame library): a columnar table with filter-scan and
// group-by-aggregate queries. Column scans are sequential (prefetchable);
// the group-by output region is hash-scattered. One op = one query.
#ifndef MAGESIM_WORKLOADS_DATAFRAME_H_
#define MAGESIM_WORKLOADS_DATAFRAME_H_

#include <vector>

#include "src/workloads/workload.h"

namespace magesim {

class DataframeWorkload : public Workload {
 public:
  struct Options {
    uint64_t num_rows = 8 * 1024 * 1024;  // 4 columns x 8 B
    int num_columns = 4;
    int threads = 24;
    int queries_per_thread = 4;
    uint64_t groups = 1 << 14;  // group-by cardinality
    uint64_t seed = 31;
    SimTime compute_per_row_page_ns = 3000;  // vectorized predicate + sum
  };

  explicit DataframeWorkload(Options opt);

  std::string name() const override { return "dataframe"; }
  uint64_t wss_pages() const override { return wss_pages_; }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "queries"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  // Query results (real computation, placement-independent).
  uint64_t result_hash() const { return result_hash_; }
  uint64_t rows_matched() const { return rows_matched_; }

 private:
  uint64_t ColumnVpn(int col, uint64_t row) const;
  uint64_t GroupVpn(uint64_t group) const;

  Options opt_;
  uint64_t rows_per_page_;
  uint64_t column_pages_;
  uint64_t group_base_;
  uint64_t wss_pages_;
  uint64_t result_hash_ = 0;
  uint64_t rows_matched_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_DATAFRAME_H_
