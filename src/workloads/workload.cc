#include "src/workloads/workload.h"

// Interface definitions are header-only; this TU anchors the library.

namespace magesim {
namespace {
[[maybe_unused]] const int kWorkloadAnchor = 0;
}  // namespace
}  // namespace magesim
