// Metis-style in-memory MapReduce (word-histogram aggregation, §6.2): a map
// phase streams the input region and writes hash-scattered intermediate
// entries; a global barrier; then a reduce phase streams the intermediate
// region — an explicit working-set change between phases (Fig. 12).
#ifndef MAGESIM_WORKLOADS_METIS_H_
#define MAGESIM_WORKLOADS_METIS_H_

#include <vector>

#include "src/workloads/workload.h"

namespace magesim {

class MetisWorkload : public Workload {
 public:
  struct Options {
    uint64_t input_pages = 48 * 1024;         // 192 MB (paper: 30 GB wiki)
    uint64_t intermediate_pages = 32 * 1024;  // hash table region
    int threads = 48;
    SimTime compute_per_input_page_ns = 6000;   // tokenize + hash
    SimTime compute_per_intermediate_op_ns = 250;
    int emits_per_input_page = 8;               // intermediate writes per page
    SimTime compute_per_reduce_page_ns = 3000;
  };

  explicit MetisWorkload(Options opt) : opt_(opt), barrier_(opt.threads) {
    counts_.assign(1 << 16, 0);
  }

  std::string name() const override { return "metis"; }
  uint64_t wss_pages() const override { return opt_.input_pages + opt_.intermediate_pages; }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "pages"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  // Phase boundary timestamps (set once by thread 0).
  SimTime map_done_at() const { return map_done_at_; }
  SimTime reduce_done_at() const { return reduce_done_at_; }
  // Aggregate histogram checksum (the reduce result).
  uint64_t result() const { return result_; }

 private:
  Options opt_;
  SimBarrier barrier_;
  std::vector<uint64_t> counts_;
  SimTime map_done_at_ = 0;
  SimTime reduce_done_at_ = 0;
  uint64_t result_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_METIS_H_
