#include "src/workloads/trace.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace magesim {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'G', 'E', 'T', 'R', 'C', '1'};

struct FileHeader {
  char magic[8];
  uint64_t wss_pages;
  uint32_t num_streams;
  uint32_t reserved;
};

struct PackedRecord {
  uint64_t vpn;
  uint32_t compute_ns;
  uint32_t write;
};

}  // namespace

uint64_t Trace::total_accesses() const {
  uint64_t n = 0;
  for (const auto& s : streams) n += s.size();
  return n;
}

bool Trace::SaveTo(const std::string& path) const {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.wss_pages = wss_pages;
  h.num_streams = static_cast<uint32_t>(streams.size());
  if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1) return false;
  for (const auto& s : streams) {
    uint64_t n = s.size();
    if (std::fwrite(&n, sizeof(n), 1, f.get()) != 1) return false;
    for (const TraceRecord& r : s) {
      PackedRecord p{r.vpn, r.compute_ns, r.write ? 1u : 0u};
      if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1) return false;
    }
  }
  return true;
}

bool Trace::LoadFrom(const std::string& path, Trace* out) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return false;
  FileHeader h{};
  if (std::fread(&h, sizeof(h), 1, f.get()) != 1) return false;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) return false;
  out->wss_pages = h.wss_pages;
  out->streams.assign(h.num_streams, {});
  for (auto& s : out->streams) {
    uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f.get()) != 1) return false;
    s.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      PackedRecord p{};
      if (std::fread(&p, sizeof(p), 1, f.get()) != 1) return false;
      if (p.vpn >= h.wss_pages) return false;  // corrupt trace
      s.push_back(TraceRecord{p.vpn, p.compute_ns, p.write != 0});
    }
  }
  return true;
}

Trace GenerateScanTrace(const TraceGenOptions& opt) {
  Trace t;
  t.wss_pages = opt.wss_pages;
  t.streams.resize(static_cast<size_t>(opt.threads));
  uint64_t shard = opt.wss_pages / static_cast<uint64_t>(opt.threads);
  Rng rng(opt.seed);
  for (int tid = 0; tid < opt.threads; ++tid) {
    auto& s = t.streams[static_cast<size_t>(tid)];
    uint64_t base = shard * static_cast<uint64_t>(tid);
    for (uint64_t i = 0; i < opt.accesses_per_thread; ++i) {
      uint64_t vpn = base + (i % shard);
      s.push_back({vpn, opt.compute_ns, rng.NextBool(opt.write_fraction)});
    }
  }
  return t;
}

Trace GenerateZipfTrace(const TraceGenOptions& opt, double theta) {
  Trace t;
  t.wss_pages = opt.wss_pages;
  t.streams.resize(static_cast<size_t>(opt.threads));
  ZipfGenerator zipf(opt.wss_pages, theta);
  for (int tid = 0; tid < opt.threads; ++tid) {
    Rng rng(opt.seed * 7919 + static_cast<uint64_t>(tid));
    auto& s = t.streams[static_cast<size_t>(tid)];
    for (uint64_t i = 0; i < opt.accesses_per_thread; ++i) {
      uint64_t vpn = ScrambleIndex(zipf.Next(rng), opt.wss_pages);
      s.push_back({vpn, opt.compute_ns, rng.NextBool(opt.write_fraction)});
    }
  }
  return t;
}

Trace GenerateMixedTrace(const TraceGenOptions& opt, double theta, double scan_fraction) {
  Trace t;
  t.wss_pages = opt.wss_pages;
  t.streams.resize(static_cast<size_t>(opt.threads));
  ZipfGenerator zipf(opt.wss_pages, theta);
  uint64_t shard = opt.wss_pages / static_cast<uint64_t>(opt.threads);
  for (int tid = 0; tid < opt.threads; ++tid) {
    Rng rng(opt.seed * 104729 + static_cast<uint64_t>(tid));
    auto& s = t.streams[static_cast<size_t>(tid)];
    uint64_t base = shard * static_cast<uint64_t>(tid);
    uint64_t i = 0;
    while (i < opt.accesses_per_thread) {
      if (rng.NextDouble() < scan_fraction) {
        // Burst: scan a 64-page extent of this thread's shard.
        uint64_t start = base + rng.NextU64(shard);
        for (uint64_t k = 0; k < 64 && i < opt.accesses_per_thread; ++k, ++i) {
          s.push_back({base + (start - base + k) % shard, opt.compute_ns, false});
        }
      } else {
        uint64_t vpn = ScrambleIndex(zipf.Next(rng), opt.wss_pages);
        s.push_back({vpn, opt.compute_ns, rng.NextBool(opt.write_fraction)});
        ++i;
      }
    }
  }
  return t;
}

Task<> TraceReplayWorkload::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  const auto& stream = trace_.streams[static_cast<size_t>(tid)];
  for (const TraceRecord& rec : stream) {
    if (eng.shutdown_requested()) co_return;
    t.Compute(rec.compute_ns);
    co_await t.AccessPage(rec.vpn, rec.write);
    ++t.ops;
  }
  co_await t.Sync();
}

}  // namespace magesim
