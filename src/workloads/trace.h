// Trace-driven workloads: record and replay page-access traces.
//
// Research on far-memory systems frequently evaluates against production
// traces that cannot be shipped; this module provides the standard
// substitute: a compact binary trace format, synthetic trace generators that
// mimic well-known production patterns (scan / zipf / scan+point mixtures /
// phase shifts), and a multi-threaded replayer that drives the paging kernel
// from a trace.
//
// Trace record: one per page touch, per thread stream.
#ifndef MAGESIM_WORKLOADS_TRACE_H_
#define MAGESIM_WORKLOADS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace magesim {

struct TraceRecord {
  uint64_t vpn;          // page touched
  uint32_t compute_ns;   // compute time preceding the touch
  bool write;
};

// One access stream per replay thread.
struct Trace {
  uint64_t wss_pages = 0;
  std::vector<std::vector<TraceRecord>> streams;

  int num_threads() const { return static_cast<int>(streams.size()); }
  uint64_t total_accesses() const;

  // Compact binary serialization (little-endian, versioned header).
  bool SaveTo(const std::string& path) const;
  static bool LoadFrom(const std::string& path, Trace* out);
};

// --- Synthetic generators (all deterministic per seed) ---

struct TraceGenOptions {
  uint64_t wss_pages = 32 * 1024;
  int threads = 16;
  uint64_t accesses_per_thread = 20000;
  uint32_t compute_ns = 500;
  double write_fraction = 0.1;
  uint64_t seed = 1;
};

// Pure sequential scan, each thread over its shard.
Trace GenerateScanTrace(const TraceGenOptions& opt);

// Zipf-distributed point accesses over the whole WSS.
Trace GenerateZipfTrace(const TraceGenOptions& opt, double theta);

// Production-style mixture: zipf point lookups with periodic shard scans
// (analytics queries over a cached table).
Trace GenerateMixedTrace(const TraceGenOptions& opt, double theta, double scan_fraction);

// Replays a trace against the paging kernel.
class TraceReplayWorkload : public Workload {
 public:
  explicit TraceReplayWorkload(Trace trace) : trace_(std::move(trace)) {}

  std::string name() const override { return "trace-replay"; }
  uint64_t wss_pages() const override { return trace_.wss_pages; }
  int num_threads() const override { return trace_.num_threads(); }
  std::string ops_unit() const override { return "accesses"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_TRACE_H_
