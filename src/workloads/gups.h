// GUPS (HPCC RandomAccess derivative, §6.2 "varying working sets"): Zipf-
// distributed random updates over region A (80% of the WSS), shifting to
// region B (the remaining 20%) at a configured phase-change time (Fig. 11).
#ifndef MAGESIM_WORKLOADS_GUPS_H_
#define MAGESIM_WORKLOADS_GUPS_H_

#include <memory>

#include "src/workloads/workload.h"

namespace magesim {

class GupsWorkload : public Workload {
 public:
  struct Options {
    uint64_t total_pages = 128 * 1024;  // 512 MB default (paper: 32 GB)
    int threads = 48;
    double zipf_theta = 0.99;
    SimTime phase_change_at = 2 * kSecond;  // paper: 10 s
    SimTime run_for = 4 * kSecond;
    SimTime compute_per_update_ns = 900;
    // Sweep region A once at start so region B is fully displaced before the
    // phase change (the state a long phase-1 converges to).
    bool prewarm_region_a = true;
    SimTime timeline_bucket = 20 * kMillisecond;
  };

  explicit GupsWorkload(Options opt);

  std::string name() const override { return "gups"; }
  uint64_t wss_pages() const override { return opt_.total_pages; }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "updates"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  // Completed updates per 100 ms bucket (the Fig. 11 timeline).
  const TimeSeries& timeline() const { return timeline_; }

 private:
  Options opt_;
  uint64_t region_a_pages_;
  uint64_t region_b_pages_;
  std::unique_ptr<ZipfGenerator> zipf_a_;
  std::unique_ptr<ZipfGenerator> zipf_b_;
  TimeSeries timeline_;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_GUPS_H_
