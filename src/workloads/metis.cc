#include "src/workloads/metis.h"

namespace magesim {

Task<> MetisWorkload::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  uint64_t in_shard = opt_.input_pages / static_cast<uint64_t>(opt_.threads);
  uint64_t in_begin = in_shard * static_cast<uint64_t>(tid);
  uint64_t in_end = (tid == opt_.threads - 1) ? opt_.input_pages : in_begin + in_shard;
  uint64_t inter_base = opt_.input_pages;

  // --- Map phase: stream input, emit hash-scattered intermediate updates ---
  for (uint64_t p = in_begin; p < in_end && !eng.shutdown_requested(); ++p) {
    co_await t.AccessPage(p, /*write=*/false);
    t.Compute(opt_.compute_per_input_page_ns);
    for (int e = 0; e < opt_.emits_per_input_page; ++e) {
      uint64_t key = ScrambleIndex(p * 131 + static_cast<uint64_t>(e), opt_.intermediate_pages);
      co_await t.AccessPage(inter_base + key, /*write=*/true);
      counts_[(p * 131 + static_cast<uint64_t>(e)) & 0xffff] += 1;
      t.Compute(opt_.compute_per_intermediate_op_ns);
    }
    ++t.ops;
  }
  co_await t.Sync();
  co_await barrier_.Arrive();
  if (tid == 0) map_done_at_ = eng.now();
  co_await barrier_.Arrive();

  // --- Reduce phase: stream the intermediate region (new working set) ---
  uint64_t red_shard = opt_.intermediate_pages / static_cast<uint64_t>(opt_.threads);
  uint64_t red_begin = red_shard * static_cast<uint64_t>(tid);
  uint64_t red_end =
      (tid == opt_.threads - 1) ? opt_.intermediate_pages : red_begin + red_shard;
  uint64_t local_sum = 0;
  for (uint64_t p = red_begin; p < red_end && !eng.shutdown_requested(); ++p) {
    co_await t.AccessPage(inter_base + p, /*write=*/false);
    t.Compute(opt_.compute_per_reduce_page_ns);
    local_sum += p * 2654435761ULL;
    ++t.ops;
  }
  co_await t.Sync();
  result_ += local_sum;
  co_await barrier_.Arrive();
  if (tid == 0) reduce_done_at_ = eng.now();
}

}  // namespace magesim
