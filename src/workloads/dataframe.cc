#include "src/workloads/dataframe.h"

namespace magesim {

DataframeWorkload::DataframeWorkload(Options opt) : opt_(opt) {
  rows_per_page_ = kPageSize / 8;  // 8-byte values
  column_pages_ = (opt_.num_rows + rows_per_page_ - 1) / rows_per_page_;
  group_base_ = column_pages_ * static_cast<uint64_t>(opt_.num_columns);
  uint64_t group_pages = (opt_.groups * 16 + kPageSize - 1) / kPageSize;  // key+agg
  wss_pages_ = group_base_ + group_pages;
}

uint64_t DataframeWorkload::ColumnVpn(int col, uint64_t row) const {
  return static_cast<uint64_t>(col) * column_pages_ + row / rows_per_page_;
}

uint64_t DataframeWorkload::GroupVpn(uint64_t group) const {
  return group_base_ + (group * 16) / kPageSize;
}

Task<> DataframeWorkload::ThreadBody(AppThread& t, int tid) {
  // Each query: SELECT group, SUM(c2) WHERE c1 > threshold GROUP BY hash(c0)
  // over this thread's row shard. Column data is synthesized on the fly from
  // a per-row hash so the computation is real and deterministic.
  Engine& eng = Engine::current();
  uint64_t shard = opt_.num_rows / static_cast<uint64_t>(opt_.threads);
  uint64_t row_begin = shard * static_cast<uint64_t>(tid);
  uint64_t row_end = (tid == opt_.threads - 1) ? opt_.num_rows : row_begin + shard;
  uint64_t local_hash = 0;
  uint64_t local_matched = 0;

  for (int q = 0; q < opt_.queries_per_thread; ++q) {
    if (eng.shutdown_requested()) co_return;
    uint64_t threshold = 0x4000000000000000ULL + (static_cast<uint64_t>(q) << 60);
    uint64_t last_vpn0 = ~0ULL, last_vpn1 = ~0ULL, last_vpn2 = ~0ULL;
    uint64_t agg = 0;
    for (uint64_t row = row_begin; row < row_end; ++row) {
      // Columns stream sequentially at page granularity.
      uint64_t v0 = ColumnVpn(0, row);
      if (v0 != last_vpn0) {
        co_await t.AccessPage(v0, false);
        last_vpn0 = v0;
        t.Compute(opt_.compute_per_row_page_ns);
      }
      uint64_t key = row * 0x9e3779b97f4a7c15ULL;  // synthesized c0
      uint64_t v1 = ColumnVpn(1, row);
      if (v1 != last_vpn1) {
        co_await t.AccessPage(v1, false);
        last_vpn1 = v1;
      }
      uint64_t pred = key ^ (key >> 29);  // synthesized c1
      if (pred <= threshold) continue;    // predicate filters most pages' rows
      uint64_t v2 = ColumnVpn(2, row);
      if (v2 != last_vpn2) {
        co_await t.AccessPage(v2, false);
        last_vpn2 = v2;
      }
      // Group-by update: hash-scattered write.
      uint64_t group = (key >> 17) % opt_.groups;
      co_await t.AccessPage(GroupVpn(group), /*write=*/true);
      agg += pred >> 32;
      ++local_matched;
    }
    local_hash ^= agg + static_cast<uint64_t>(q);
    ++t.ops;
  }
  co_await t.Sync();
  result_hash_ ^= local_hash;
  rows_matched_ += local_matched;
}

}  // namespace magesim
