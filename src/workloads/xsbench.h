// XSBench-style Monte Carlo macroscopic cross-section lookup (§6.1): each
// lookup binary-searches the unionized energy grid, then gathers per-nuclide
// cross-section data at random offsets — random access with substantial
// per-access compute (more than GapBS, §6.2).
#ifndef MAGESIM_WORKLOADS_XSBENCH_H_
#define MAGESIM_WORKLOADS_XSBENCH_H_

#include <memory>

#include "src/workloads/workload.h"

namespace magesim {

class XsBenchWorkload : public Workload {
 public:
  struct Options {
    uint64_t gridpoints = 1 << 21;  // unionized grid entries (paper: 10.6 M)
    int nuclides = 355;
    int nuclides_per_lookup = 5;    // gather width per macro-XS lookup
    uint64_t lookups_per_thread = 20000;
    int threads = 48;
    uint64_t seed = 11;
    SimTime compute_per_lookup_ns = 12000;  // interpolation math dominates
    // Sampled particle energies follow a peaked spectrum (resonance regions
    // dominate), giving the unionized grid strong access locality.
    double energy_zipf_theta = 0.85;
  };

  explicit XsBenchWorkload(Options opt);

  std::string name() const override { return "xsbench"; }
  uint64_t wss_pages() const override { return wss_pages_; }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "lookups"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  // Accumulated verification hash over all computed cross sections.
  uint64_t result_hash() const { return result_hash_; }

 private:
  uint64_t GridVpn(uint64_t index) const { return grid_base_ + index / entries_per_page_; }
  uint64_t XsVpn(uint64_t index) const { return xs_base_ + index / xs_per_page_; }

  Options opt_;
  std::unique_ptr<ZipfGenerator> energy_dist_;
  uint64_t entries_per_page_;
  uint64_t xs_per_page_;
  uint64_t grid_base_;
  uint64_t xs_base_;
  uint64_t xs_entries_;
  uint64_t wss_pages_;
  uint64_t result_hash_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_XSBENCH_H_
