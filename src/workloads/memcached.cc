#include "src/workloads/memcached.h"

namespace magesim {

MemcachedWorkload::MemcachedWorkload(Options opt) : opt_(opt) {
  // Hash table: 64 B bucket per key (open addressing, load factor folded in).
  bucket_pages_ = (opt_.num_keys * 64 + kPageSize - 1) / kPageSize;
  // Values: ~128 B each (USR values are small), packed.
  value_pages_ = (opt_.num_keys * 128 + kPageSize - 1) / kPageSize;
  wss_pages_ = bucket_pages_ + value_pages_;
  zipf_ = std::make_unique<ZipfGenerator>(opt_.num_keys, opt_.zipf_theta);
  queue_ = std::make_unique<Channel<Request>>(opt_.queue_capacity);
}

uint64_t MemcachedWorkload::BucketVpn(uint64_t key_hash) const {
  return (key_hash * 64) / kPageSize % bucket_pages_;
}

uint64_t MemcachedWorkload::ValueVpn(uint64_t key) const {
  return bucket_pages_ + (key * 128) / kPageSize % value_pages_;
}

Task<> MemcachedWorkload::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  if (tid == 0) {
    // --- Load generator: open-loop Poisson arrivals ---
    double mean_interarrival_ns = 1e9 / opt_.load_ops_per_sec;
    while (!eng.shutdown_requested() && eng.now() < opt_.duration) {
      co_await Delay{static_cast<SimTime>(t.rng().NextExponential(mean_interarrival_ns)) + 1};
      uint64_t rank = zipf_->Next(t.rng());
      uint64_t key = ScrambleIndex(rank, opt_.num_keys);
      Request req{key, t.rng().NextBool(1.0 - opt_.get_fraction), eng.now()};
      if (!queue_->TryPush(req)) {
        // Accept queue overflow under overload: client-visible drop.
        ++dropped_;
      }
    }
    co_return;
  }

  // --- Server threads ---
  while (!eng.shutdown_requested()) {
    if (queue_->empty() && eng.now() >= opt_.duration) co_return;
    Request req = co_await queue_->Pop();
    // Bucket probe (open addressing: usually one page touch).
    uint64_t h = ScrambleIndex(req.key, opt_.num_keys);
    co_await t.AccessPage(BucketVpn(h), /*write=*/false);
    // Value access: read for GET, write for SET.
    co_await t.AccessPage(ValueVpn(req.key), req.is_set);
    t.Compute(opt_.service_compute_ns);
    co_await t.Sync();
    latency_.Record(eng.now() - req.arrival);
    ++completed_;
    ++t.ops;
  }
}

}  // namespace magesim
