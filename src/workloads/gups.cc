#include "src/workloads/gups.h"

namespace magesim {

GupsWorkload::GupsWorkload(Options opt) : opt_(opt), timeline_(opt.timeline_bucket) {
  region_a_pages_ = opt_.total_pages * 8 / 10;
  region_b_pages_ = opt_.total_pages - region_a_pages_;
  zipf_a_ = std::make_unique<ZipfGenerator>(region_a_pages_, opt_.zipf_theta);
  zipf_b_ = std::make_unique<ZipfGenerator>(region_b_pages_, opt_.zipf_theta);
}

Task<> GupsWorkload::ThreadBody(AppThread& t, int tid) {
  Engine& eng = Engine::current();
  if (opt_.prewarm_region_a) {
    // Fault region A resident (displacing B), as a long first phase would.
    uint64_t shard = region_a_pages_ / static_cast<uint64_t>(opt_.threads) + 1;
    uint64_t begin = shard * static_cast<uint64_t>(tid);
    uint64_t end = std::min(region_a_pages_, begin + shard);
    for (uint64_t vpn = begin; vpn < end && !eng.shutdown_requested(); ++vpn) {
      co_await t.AccessPage(vpn, /*write=*/true);
      t.Compute(200);
    }
    co_await t.Sync();
  }
  // Batch updates between timeline samples to keep bookkeeping cheap.
  while (!eng.shutdown_requested() && t.logical_now() < opt_.run_for) {
    bool phase_b = t.logical_now() >= opt_.phase_change_at;
    uint64_t vpn;
    if (phase_b) {
      uint64_t rank = zipf_b_->Next(t.rng());
      vpn = region_a_pages_ + ScrambleIndex(rank, region_b_pages_);
    } else {
      uint64_t rank = zipf_a_->Next(t.rng());
      vpn = ScrambleIndex(rank, region_a_pages_);
    }
    co_await t.AccessPage(vpn, /*write=*/true);
    t.Compute(opt_.compute_per_update_ns);
    ++t.ops;
    timeline_.Add(t.logical_now(), 1.0);
  }
  co_await t.Sync();
}

}  // namespace magesim
