#include "src/workloads/multi_tenant.h"

#include "src/workloads/registry.h"

namespace magesim {

std::unique_ptr<MultiTenantWorkload> MultiTenantWorkload::Build(std::vector<TenantSpec>* specs,
                                                               std::string* error) {
  if (specs == nullptr || specs->empty()) {
    if (error != nullptr) *error = "no tenants specified";
    return nullptr;
  }
  std::unique_ptr<MultiTenantWorkload> w(new MultiTenantWorkload);
  for (TenantSpec& s : *specs) {
    WorkloadParams params;
    // Modest per-tenant default so several tenants fit on one socket.
    params.threads = s.threads > 0 ? s.threads : 4;
    params.opts = s.workload_opts;
    std::string err;
    std::unique_ptr<Workload> inner = MakeWorkload(s.workload, params, &err);
    if (inner == nullptr) {
      if (error != nullptr) *error = "tenant '" + s.name + "': " + err;
      return nullptr;
    }
    s.threads = inner->num_threads();
    s.vpn_base = w->total_pages_;
    s.vpn_pages = inner->wss_pages();
    s.thread_begin = w->total_threads_;
    s.thread_end = w->total_threads_ + s.threads;
    if (s.vpn_pages == 0) {
      if (error != nullptr) *error = "tenant '" + s.name + "': workload has an empty working set";
      return nullptr;
    }
    w->total_pages_ += s.vpn_pages;
    w->total_threads_ = s.thread_end;
    w->inner_.push_back(std::move(inner));
  }
  w->specs_ = *specs;
  return w;
}

Task<> MultiTenantWorkload::ThreadBody(AppThread& t, int tid) {
  for (size_t k = 0; k < specs_.size(); ++k) {
    const TenantSpec& s = specs_[k];
    if (tid < s.thread_begin || tid >= s.thread_end) continue;
    t.set_vpn_base(s.vpn_base);
    co_await inner_[k]->ThreadBody(t, tid - s.thread_begin);
    co_return;
  }
}

}  // namespace magesim
