// Composite workload running one registry workload per tenant, each in its
// own disjoint vpn window and on its own disjoint set of cores.
//
// Placement is deterministic: tenants keep their spec order; tenant k owns
// vpns [sum(wss of 0..k-1), +wss_k) and global thread ids (== cores)
// [sum(threads of 0..k-1), +threads_k). The vpn windows are what the
// TenancyManager's vpn -> tenant mapping and the per-cgroup charge
// accounting key off.
#ifndef MAGESIM_WORKLOADS_MULTI_TENANT_H_
#define MAGESIM_WORKLOADS_MULTI_TENANT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tenancy/tenant_spec.h"
#include "src/workloads/workload.h"

namespace magesim {

class MultiTenantWorkload : public Workload {
 public:
  // Builds every tenant's inner workload from the registry and fills in the
  // specs' resolved placement fields (vpn_base/vpn_pages/thread range) in
  // place. Returns nullptr with *error set on an unknown workload name, bad
  // options, or zero tenants.
  static std::unique_ptr<MultiTenantWorkload> Build(std::vector<TenantSpec>* specs,
                                                    std::string* error);

  std::string name() const override { return "multi-tenant"; }
  uint64_t wss_pages() const override { return total_pages_; }
  int num_threads() const override { return total_threads_; }
  std::string ops_unit() const override { return "ops"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  int num_tenants() const { return static_cast<int>(inner_.size()); }
  Workload& tenant_workload(int t) { return *inner_[static_cast<size_t>(t)]; }
  const TenantSpec& spec(int t) const { return specs_[static_cast<size_t>(t)]; }

 private:
  MultiTenantWorkload() = default;

  std::vector<TenantSpec> specs_;  // resolved copies
  std::vector<std::unique_ptr<Workload>> inner_;
  uint64_t total_pages_ = 0;
  int total_threads_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_MULTI_TENANT_H_
