// Sequential-scan microbenchmark (§3.1 "regular access patterns", Figs. 4/10):
// a dataframe-style checksum over a memory region equally sharded among worker
// threads. One op = one page processed.
#ifndef MAGESIM_WORKLOADS_SEQSCAN_H_
#define MAGESIM_WORKLOADS_SEQSCAN_H_

#include "src/workloads/workload.h"

namespace magesim {

class SeqScanWorkload : public Workload {
 public:
  struct Options {
    uint64_t region_pages = 64 * 1024;  // 256 MB default (paper: 20 GB)
    int threads = 48;
    int passes = 3;
    // Per-page checksum compute. Calibrated so 48 threads at 100% local
    // memory reach ~8.6 M pages/s, the paper's Table 2 baseline.
    SimTime compute_per_page_ns = 5570;
    // Write scan: dirties every page, forcing eviction write-back.
    bool write = false;
  };

  explicit SeqScanWorkload(Options opt) : opt_(opt) {}

  std::string name() const override { return "seqscan"; }
  uint64_t wss_pages() const override { return opt_.region_pages; }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "pages"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

  // The running checksum (the "real work"), exposed so tests can verify the
  // scan actually reads every page's worth of state deterministically.
  uint64_t checksum() const { return checksum_; }

 private:
  Options opt_;
  uint64_t checksum_ = 0;
};

// Fault-path isolation variant (§3.2 "fault-in only"): every page access is a
// major fault; pages are instantly reclaimed (pre-evicted) a fixed distance
// behind the scan cursor so local memory never pressures the evictors.
class FaultOnlySeqRead : public Workload {
 public:
  struct Options {
    uint64_t pages_per_thread = 4096;
    int threads = 48;
    int reclaim_distance = 8;
    SimTime compute_per_page_ns = 0;
  };

  explicit FaultOnlySeqRead(Options opt) : opt_(opt) {}

  std::string name() const override { return "fault-only-seqread"; }
  uint64_t wss_pages() const override {
    return opt_.pages_per_thread * static_cast<uint64_t>(opt_.threads);
  }
  int num_threads() const override { return opt_.threads; }
  std::string ops_unit() const override { return "faults"; }

  Task<> ThreadBody(AppThread& t, int tid) override;

 private:
  Options opt_;
};

}  // namespace magesim

#endif  // MAGESIM_WORKLOADS_SEQSCAN_H_
