#include "src/spans/spans.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "src/metrics/run_report.h"
#include "src/sim/prof_counters.h"

namespace magesim {

namespace {
// FNV offset/prime seed a word-at-a-time multiply-xor mix. Byte-wise FNV-1a
// (as in TraceHashSink) costs 8 dependent multiplies per field, which at
// ~9 fields/span dominated spans-on overhead; one multiply per word keeps
// the fingerprint deterministic and field-sensitive at ~1/8 the cost.
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Arena block: one slab allocation holding many SpanRecords. A root record
// is the first allocation of its op's first block; spill blocks are chained
// newest-first off root->arena. Closing the op frees the chain — O(blocks),
// not O(spans).
struct ArenaBlock {
  ArenaBlock* next = nullptr;
  uint32_t used = 0;
};
constexpr size_t kArenaHeader =
    (sizeof(ArenaBlock) + alignof(SpanRecord) - 1) & ~(alignof(SpanRecord) - 1);
// Sized so slab header + block lands exactly on a 2 KiB size class; holds a
// whole fault tree (and most eviction batches) in one block.
constexpr size_t kArenaBytes = 2032;
constexpr uint32_t kRecordsPerBlock =
    static_cast<uint32_t>((kArenaBytes - kArenaHeader) / sizeof(SpanRecord));
static_assert(kRecordsPerBlock >= 8, "arena block too small for a fault tree");

SpanRecord* BlockRecords(ArenaBlock* b) {
  return reinterpret_cast<SpanRecord*>(reinterpret_cast<char*>(b) + kArenaHeader);
}

ArenaBlock* NewBlock() {
  void* p = SlabAllocator::Allocate(kArenaBytes);
  return new (p) ArenaBlock();
}

const char* const kSpanKindNames[kNumSpanKinds] = {
    "fault",          "evict_batch",  "prefetch",      "entry",
    "dedup_wait",     "tenant_throttle", "tenant_park", "mm_locks",
    "alloc",          "free_wait",    "rdma_read",     "rdma_write",
    "rdma_retry",     "retry_backoff", "breaker_wait", "map_install",
    "accounting",     "unmap_victims", "shootdown_wait", "lazy_tlb_wait",
    "ipi_deliver",    "reclaim",      "backpressure",  "degraded_read",
    "rebuild",
};
}  // namespace

SpanTracer* SpanTracer::current_ = nullptr;

const char* SpanKindName(SpanKind k) {
  int i = static_cast<int>(k);
  if (i < 0 || i >= kNumSpanKinds) return "?";
  return kSpanKindNames[i];
}

void ComputeCriticalPath(const SpanRecord* root, SimTime* out) {
  size_t self = static_cast<size_t>(root->kind);
  if (root->first_child == nullptr) {  // leaf: every ns is the span's own work
    if (root->t1 > root->t0) out[self] += root->t1 - root->t0;
    return;
  }
  // Most spans have a handful of children; collect into a stack buffer and
  // spill to the slab only for wide fan-out (large eviction batches).
  const SpanRecord* stack_kids[16];
  std::vector<const SpanRecord*, SlabStdAllocator<const SpanRecord*>> heap_kids;
  const SpanRecord** kids = stack_kids;
  size_t n = 0;
  for (const SpanRecord* c = root->first_child; c != nullptr; c = c->next_sibling) {
    if (n == 16 && heap_kids.empty()) {
      heap_kids.assign(stack_kids, stack_kids + 16);
    }
    if (n >= 16) {
      heap_kids.push_back(c);
      kids = heap_kids.data();
    } else {
      stack_kids[n] = c;
    }
    ++n;
  }
  if (!heap_kids.empty()) kids = heap_kids.data();
  // Children are appended in *emit* order; retro-emitted wait leaves can
  // start earlier than a sibling appended before them, so sort by start.
  std::sort(kids, kids + n, [](const SpanRecord* a, const SpanRecord* b) {
    return a->t0 != b->t0 ? a->t0 < b->t0 : a->id < b->id;
  });
  SimTime cursor = root->t0;
  for (size_t i = 0; i < n; ++i) {
    const SpanRecord* c = kids[i];
    if (c->t1 <= cursor) continue;  // concurrent with an earlier sibling
    if (c->t0 >= cursor) {
      out[self] += c->t0 - cursor;  // gap: the parent's own work
      ComputeCriticalPath(c, out);
    } else {
      // Partially overlapped: only the clipped remainder is on the critical
      // path; charge it to the child's kind without recursing (its internal
      // structure belongs to the overlapped prefix).
      out[static_cast<size_t>(c->kind)] += c->t1 - cursor;
    }
    cursor = c->t1;
  }
  if (root->t1 > cursor) out[self] += root->t1 - cursor;
}

SimTime SpanTailBand::total_ns() const {
  SimTime t = 0;
  for (SimTime v : phase_ns) t += v;
  return t;
}

double SpanTailBand::Share(SpanKind k) const {
  SimTime t = total_ns();
  if (t <= 0) return 0.0;
  return static_cast<double>(phase_ns[static_cast<size_t>(k)]) / static_cast<double>(t);
}

void SpanTracer::Agg::Fold(int64_t latency_ns, const SimTime* phase) {
  MAGESIM_PROF_SCOPE(span_fold);
  latency.Record(latency_ns);
  if (slot_ops.empty()) {
    slot_ops.assign(Histogram::kNumSlots, 0);
    slot_phase.assign(Histogram::kNumSlots, {});
  }
  size_t slot = static_cast<size_t>(Histogram::SlotFor(latency_ns));
  ++slot_ops[slot];
  auto& p = slot_phase[slot];
  for (int k = 0; k < kNumSpanKinds; ++k) p[static_cast<size_t>(k)] += phase[k];
}

SpanTracer::SpanTracer(const Options& opt) : opt_(opt), hash_(kFnvOffset) {
  if (opt_.top_k < 0) opt_.top_k = 0;
  if (!opt_.out_path.empty()) out_.open(opt_.out_path);
}

SpanTracer::~SpanTracer() {
  Uninstall();
  // Operations still open at teardown (threads parked mid-fault at
  // shutdown) never finalized; reclaim their records.
  for (auto& [task, stack] : ctx_) {
    // Stacks hold nested open spans of one tree; freeing the outermost
    // root frees the whole tree, and any detached roots adopted via
    // PushContext appear as their own stack base.
    for (SpanRecord* rec : stack) {
      if (rec->parent == nullptr) FreeOp(rec);
    }
  }
}

void SpanTracer::Install() {
  assert(current_ == nullptr || current_ == this);
  current_ = this;
}

void SpanTracer::Uninstall() {
  if (current_ == this) current_ = nullptr;
}

SpanRecord* SpanTracer::NewRecord(SpanRecord* root, SpanKind k, int32_t actor,
                                  uint64_t page, int tenant, SimTime t0) {
  MAGESIM_PROF_SCOPE(span_new_record);
  ArenaBlock* b;
  if (root == nullptr) {
    b = NewBlock();
  } else {
    b = static_cast<ArenaBlock*>(root->arena);
    if (b->used == kRecordsPerBlock) {
      ArenaBlock* spill = NewBlock();
      spill->next = b;
      root->arena = spill;
      b = spill;
    }
  }
  SpanRecord* rec = new (BlockRecords(b) + b->used++) SpanRecord();
  rec->id = next_id_++;
  rec->kind = k;
  rec->actor = actor;
  rec->page = page;
  rec->tenant = static_cast<int8_t>(tenant);
  rec->t0 = t0;
  rec->t1 = t0;
  if (root == nullptr) rec->arena = b;
  return rec;
}

SpanRecord* SpanTracer::RootOf(SpanRecord* s) {
  while (s->parent != nullptr) s = s->parent;
  return s;
}

void SpanTracer::Adopt(SpanRecord* parent, SpanRecord* child) {
  child->parent = parent;
  if (parent->last_child == nullptr) {
    parent->first_child = child;
  } else {
    parent->last_child->next_sibling = child;
  }
  parent->last_child = child;
}

SpanTracer::Stack* SpanTracer::FindStack() {
  TaskId t = Engine::CurrentTaskOrNone();
  if (t == cached_task_ && cached_stack_ != nullptr) return cached_stack_;
  auto it = ctx_.find(t);
  if (it == ctx_.end()) return nullptr;
  cached_task_ = t;
  cached_stack_ = &it->second;
  return cached_stack_;
}

SpanTracer::Stack& SpanTracer::EnsureStack() {
  TaskId t = Engine::CurrentTaskOrNone();
  if (t == cached_task_ && cached_stack_ != nullptr) return *cached_stack_;
  Stack& s = ctx_[t];
  cached_task_ = t;
  cached_stack_ = &s;
  return s;
}

void SpanTracer::ReleaseStackIfEmpty(TaskId task, Stack& s) {
  if (!s.empty()) return;
  // Keep the empty stack: the same task opens its next operation shortly,
  // and map erase+reinsert per op costs more than an idle entry. Trim only
  // if the task population outgrows any plausible steady state.
  if (ctx_.size() <= 64) return;
  cached_task_ = kNoTask;
  cached_stack_ = nullptr;
  ctx_.erase(task);
}

SpanHandle SpanTracer::Begin(SpanKind k, int32_t actor, uint64_t page, int tenant,
                             SimTime t0) {
  MAGESIM_PROF_SCOPE(span_begin);
  Stack& s = EnsureStack();
  // A sampled-out root suppresses its whole tree: nested Begins push the
  // sentinel again so the pops stay balanced.
  if (s.empty() ? !SampleRoot(k) : s.back() == &suppress_) {
    s.push_back(&suppress_);
    return SpanHandle{&suppress_};
  }
  if (t0 < 0) t0 = Engine::NowOrZero();
  SpanRecord* rec =
      NewRecord(s.empty() ? nullptr : RootOf(s.back()), k, actor, page, tenant, t0);
  if (!s.empty()) Adopt(s.back(), rec);
  s.push_back(rec);
  return SpanHandle{rec};
}

void SpanTracer::End(SpanHandle h, uint64_t arg) {
  MAGESIM_PROF_SCOPE(span_end);
  if (h.rec == nullptr) return;
  SpanRecord* rec = h.rec;
  TaskId task = Engine::CurrentTaskOrNone();
  if (Stack* s = FindStack(); s != nullptr && !s->empty() && s->back() == rec) {
    s->pop_back();
    ReleaseStackIfEmpty(task, *s);
  }
  if (rec == &suppress_) return;
  rec->t1 = Engine::NowOrZero();
  rec->arg = arg;
  Seal(rec);
  if (rec->parent == nullptr) FinalizeOp(rec);
}

SpanHandle SpanTracer::BeginDetachedSampled(SpanKind k, int32_t actor, uint64_t page,
                                            int tenant, SimTime t0) {
  MAGESIM_PROF_SCOPE(span_begin_detached);
  if (t0 < 0) t0 = Engine::NowOrZero();
  return SpanHandle{NewRecord(nullptr, k, actor, page, tenant, t0)};
}

SpanHandle SpanTracer::BeginChildSampled(SpanHandle parent, SpanKind k, int32_t actor,
                                         uint64_t page, int tenant) {
  SpanRecord* rec =
      NewRecord(RootOf(parent.rec), k, actor, page, tenant, Engine::NowOrZero());
  Adopt(parent.rec, rec);
  return SpanHandle{rec};
}

void SpanTracer::EndDetachedSampled(SpanHandle h, uint64_t arg) {
  MAGESIM_PROF_SCOPE(span_end_detached);
  h.rec->t1 = Engine::NowOrZero();
  h.rec->arg = arg;
  Seal(h.rec);
  if (h.rec->parent == nullptr) FinalizeOp(h.rec);
}

uint64_t SpanTracer::Leaf(SpanKind k, SimTime t0, int32_t actor, uint64_t page,
                          SpanCausalPoint link, uint64_t arg) {
  MAGESIM_PROF_SCOPE(span_leaf);
  SimTime now = Engine::NowOrZero();
  if (now <= t0) return 0;
  Stack* s = FindStack();
  SpanRecord* parent = (s != nullptr && !s->empty()) ? s->back() : nullptr;
  if (parent == &suppress_) return 0;
  if (parent == nullptr && !SampleRoot(k)) return 0;
  SpanRecord* rec =
      NewRecord(parent != nullptr ? RootOf(parent) : nullptr, k, actor, page, -1, t0);
  rec->t1 = now;
  rec->arg = arg;
  if (link.id != 0) {
    rec->link = link.id;
    rec->link_actor = link.actor;
    rec->link_t = link.t;
  }
  uint64_t id = rec->id;
  Seal(rec);
  if (parent != nullptr) {
    Adopt(parent, rec);
  } else {
    // No operation open in this task: the wait *is* the operation
    // (evictor backpressure between batches).
    FinalizeOp(rec);
  }
  return id;
}

uint64_t SpanTracer::LeafUnderSampled(SpanHandle parent, SpanKind k, SimTime t0,
                                      SimTime t1, int32_t actor, uint64_t page,
                                      SpanCausalPoint link, uint64_t arg) {
  MAGESIM_PROF_SCOPE(span_leaf_under);
  SpanRecord* rec = NewRecord(RootOf(parent.rec), k, actor, page, -1, t0);
  rec->t1 = t1;
  rec->arg = arg;
  if (link.id != 0) {
    rec->link = link.id;
    rec->link_actor = link.actor;
    rec->link_t = link.t;
  }
  Seal(rec);
  Adopt(parent.rec, rec);
  return rec->id;
}

void SpanTracer::PushContext(SpanHandle h) {
  if (h.rec == nullptr) return;
  EnsureStack().push_back(h.rec);
}

void SpanTracer::PopContext() {
  TaskId task = Engine::CurrentTaskOrNone();
  Stack* s = FindStack();
  if (s == nullptr || s->empty()) return;
  s->pop_back();
  ReleaseStackIfEmpty(task, *s);
}

SpanHandle SpanTracer::CurrentContext() {
  Stack* s = FindStack();
  if (s == nullptr || s->empty() || s->back() == &suppress_) return SpanHandle{};
  return SpanHandle{s->back()};
}

void SpanTracer::NoteHeadroomPublisherSampled(SpanHandle h) {
  headroom_ = SpanCausalPoint{h.rec->id, h.rec->actor, Engine::NowOrZero()};
}

void SpanTracer::NoteBreakerOpenSampled(int channel, SpanHandle h) {
  breaker_open_[static_cast<size_t>(channel & 1)] =
      SpanCausalPoint{h.rec->id, h.rec->actor, Engine::NowOrZero()};
}

SpanCausalPoint SpanTracer::breaker_open(int channel) const {
  return breaker_open_[static_cast<size_t>(channel & 1)];
}

void SpanTracer::NoteTenantReleaseSampled(int tenant, SpanHandle h) {
  if (static_cast<size_t>(tenant) >= tenant_release_.size()) {
    tenant_release_.resize(static_cast<size_t>(tenant) + 1);
  }
  tenant_release_[static_cast<size_t>(tenant)] =
      SpanCausalPoint{h.rec->id, h.rec->actor, Engine::NowOrZero()};
}

SpanCausalPoint SpanTracer::tenant_release(int tenant) const {
  if (tenant < 0 || static_cast<size_t>(tenant) >= tenant_release_.size()) return {};
  return tenant_release_[static_cast<size_t>(tenant)];
}

void SpanTracer::NotePageSpan(uint64_t vpn, SpanHandle h) {
  if (h.rec == nullptr || h.rec == &suppress_) return;
  page_spans_[vpn] = SpanCausalPoint{h.rec->id, h.rec->actor, h.rec->t0};
}

void SpanTracer::ErasePageSpan(uint64_t vpn) { page_spans_.erase(vpn); }

SpanCausalPoint SpanTracer::page_span(uint64_t vpn) const {
  auto it = page_spans_.find(vpn);
  return it != page_spans_.end() ? it->second : SpanCausalPoint{};
}

void SpanTracer::Mix(uint64_t v) {
  uint64_t h = (hash_ ^ v) * kFnvPrime;
  hash_ = h ^ (h >> 29);
}

void SpanTracer::Seal(const SpanRecord* s) {
  Mix(s->id);
  Mix(static_cast<uint64_t>(s->kind));
  Mix(static_cast<uint64_t>(s->t0));
  Mix(static_cast<uint64_t>(s->t1));
  Mix(static_cast<uint64_t>(static_cast<int64_t>(s->actor)));
  Mix(s->page);
  Mix(s->link);
  Mix(s->arg);
  Mix(static_cast<uint64_t>(static_cast<int64_t>(s->tenant)));
  ++span_counts_[static_cast<size_t>(s->kind)];
  ++spans_total_;
  if (s->link != 0) ++links_total_;
}

void SpanTracer::ExportTree(const SpanRecord* s, SpanKind op) {
  if (out_.is_open()) ExportSpan(s, op);
  if (chrome_ != nullptr) ChromeSpan(s);
  for (const SpanRecord* c = s->first_child; c != nullptr; c = c->next_sibling) {
    ExportTree(c, op);
  }
}

void SpanTracer::ExportSpan(const SpanRecord* s, SpanKind op) {
  char buf[352];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"id\":%" PRIu64 ",\"op\":\"%s\",\"kind\":\"%s\",\"t0\":%" PRId64
                        ",\"t1\":%" PRId64 ",\"actor\":%d",
                        s->id, SpanKindName(op), SpanKindName(s->kind),
                        static_cast<int64_t>(s->t0), static_cast<int64_t>(s->t1),
                        s->actor);
  auto append = [&](const char* fmt, auto... args) {
    if (n < 0 || static_cast<size_t>(n) >= sizeof(buf)) return;
    int w = std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n), fmt, args...);
    if (w > 0) n += w;
  };
  if (s->parent != nullptr) append(",\"parent\":%" PRIu64, s->parent->id);
  if (s->page != kTraceNoPage) append(",\"page\":%" PRIu64, s->page);
  if (s->tenant >= 0) append(",\"tenant\":%d", static_cast<int>(s->tenant));
  if (s->link != 0) {
    append(",\"link\":%" PRIu64 ",\"link_t\":%" PRId64, s->link,
           static_cast<int64_t>(s->link_t));
  }
  if (s->arg != 0) append(",\"arg\":%" PRIu64, s->arg);
  append("}");
  out_ << buf << "\n";
}

void SpanTracer::ChromeSpan(const SpanRecord* s) {
  // Spans ride the attached sink as pid-2 complete slices so they overlay
  // the pid-1 event stream without colliding with its B/E nesting.
  char buf[288];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":2,\"tid\":%d,\"args\":{\"id\":%" PRIu64
                ",\"page\":%" PRId64 ",\"arg\":%" PRIu64 "}}",
                SpanKindName(s->kind), NsToUs(s->t0), NsToUs(s->t1 - s->t0),
                s->actor >= 0 ? s->actor : 999, s->id,
                s->page == kTraceNoPage ? -1 : static_cast<int64_t>(s->page), s->arg);
  chrome_->AppendRaw(buf);
  if (s->link != 0) {
    // Flow arrow from the publisher's track at publish time to this span's
    // completion; flow id = waiter span id (unique per arrow).
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"causal\",\"cat\":\"span\",\"ph\":\"s\",\"id\":%" PRIu64
                  ",\"ts\":%.3f,\"pid\":2,\"tid\":%d}",
                  s->id, NsToUs(s->link_t), s->link_actor >= 0 ? s->link_actor : 999);
    chrome_->AppendRaw(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"causal\",\"cat\":\"span\",\"ph\":\"f\",\"bp\":\"e\","
                  "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":2,\"tid\":%d}",
                  s->id, NsToUs(s->t1), s->actor >= 0 ? s->actor : 999);
    chrome_->AppendRaw(buf);
  }
}

void SpanTracer::Flatten(const SpanRecord* s, int parent_idx, SpanExemplar* ex) {
  if (ex->spans.size() >= kMaxExemplarSpans) {
    ++ex->dropped_spans;
    ++exemplar_trunc_spans_;
  } else {
    ex->spans.push_back(SpanExemplar::FlatSpan{s->id, s->link, s->t0, s->t1, s->page,
                                               s->arg, parent_idx, s->actor, s->kind,
                                               s->tenant});
    parent_idx = static_cast<int>(ex->spans.size()) - 1;
  }
  for (const SpanRecord* c = s->first_child; c != nullptr; c = c->next_sibling) {
    Flatten(c, parent_idx, ex);
  }
}

void SpanTracer::MaybeKeepExemplar(SpanRecord* root, int64_t latency_ns,
                                   const SimTime* phase) {
  if (opt_.top_k <= 0) return;
  auto& pool = exemplars_[static_cast<size_t>(root->kind)];
  if (pool.size() >= static_cast<size_t>(opt_.top_k) &&
      latency_ns <= pool.back().latency_ns) {
    return;  // ties keep the earlier (lower-id) op — deterministic
  }
  SpanExemplar ex;
  ex.latency_ns = latency_ns;
  ex.id = root->id;
  ex.tenant = root->tenant;
  for (int k = 0; k < kNumSpanKinds; ++k) ex.phase_ns[static_cast<size_t>(k)] = phase[k];
  Flatten(root, -1, &ex);
  auto pos = std::upper_bound(pool.begin(), pool.end(), ex,
                              [](const SpanExemplar& a, const SpanExemplar& b) {
                                return a.latency_ns != b.latency_ns
                                           ? a.latency_ns > b.latency_ns
                                           : a.id < b.id;
                              });
  pool.insert(pos, std::move(ex));
  if (pool.size() > static_cast<size_t>(opt_.top_k)) pool.pop_back();
}

void SpanTracer::FreeOp(SpanRecord* root) {
  MAGESIM_PROF_SCOPE(span_free_op);
  // The chain is newest-first; the root record lives inside the last block,
  // so grab each `next` before its block is recycled.
  ArenaBlock* b = static_cast<ArenaBlock*>(root->arena);
  while (b != nullptr) {
    ArenaBlock* next = b->next;
    SlabAllocator::Deallocate(b);
    b = next;
  }
}

void SpanTracer::FinalizeOp(SpanRecord* root) {
  MAGESIM_PROF_SCOPE(span_finalize_op);
  int64_t latency_ns = root->t1 - root->t0;
  if (latency_ns < 0) latency_ns = 0;
  SimTime phase[kNumSpanKinds] = {};
  {
    MAGESIM_PROF_SCOPE(span_critical_path);
    ComputeCriticalPath(root, phase);
  }
  ++ops_[static_cast<size_t>(root->kind)];
  aggs_[static_cast<size_t>(root->kind)].Fold(latency_ns, phase);
  if (root->kind == SpanKind::kFault && root->tenant >= 0) {
    tenant_aggs_[root->tenant].Fold(latency_ns, phase);
  }
  MaybeKeepExemplar(root, latency_ns, phase);
  if (out_.is_open() || chrome_ != nullptr) ExportTree(root, root->kind);
  FreeOp(root);
}

SpanTailSummary SpanTracer::TailFromAgg(const Agg& a) {
  SpanTailSummary out;
  out.count = a.latency.count();
  out.latency = a.latency;
  if (out.count == 0 || a.slot_ops.empty()) return out;
  for (size_t slot = 0; slot < a.slot_ops.size(); ++slot) {
    for (int k = 0; k < kNumSpanKinds; ++k) {
      out.phase_ns[static_cast<size_t>(k)] += a.slot_phase[slot][static_cast<size_t>(k)];
    }
  }
  constexpr double kPcts[4] = {50.0, 90.0, 99.0, 99.9};
  int edges[5];
  for (int i = 0; i < 4; ++i) {
    int64_t threshold = a.latency.Percentile(kPcts[i]);
    out.bands[static_cast<size_t>(i)].threshold_ns = threshold;
    edges[i] = Histogram::SlotFor(threshold);
    if (i > 0 && edges[i] < edges[i - 1]) edges[i] = edges[i - 1];
  }
  edges[4] = Histogram::kNumSlots;
  for (int i = 0; i < 4; ++i) {
    SpanTailBand& band = out.bands[static_cast<size_t>(i)];
    for (int slot = edges[i]; slot < edges[i + 1]; ++slot) {
      band.ops += a.slot_ops[static_cast<size_t>(slot)];
      for (int k = 0; k < kNumSpanKinds; ++k) {
        band.phase_ns[static_cast<size_t>(k)] +=
            a.slot_phase[static_cast<size_t>(slot)][static_cast<size_t>(k)];
      }
    }
  }
  return out;
}

SpanTailSummary SpanTracer::Tail(SpanKind root_kind) const {
  return TailFromAgg(aggs_[static_cast<size_t>(root_kind)]);
}

SpanTailSummary SpanTracer::TenantTail(int tenant) const {
  auto it = tenant_aggs_.find(tenant);
  if (it == tenant_aggs_.end()) return SpanTailSummary{};
  return TailFromAgg(it->second);
}

std::vector<SpanKind> SpanTracer::ActiveRootKinds() const {
  std::vector<SpanKind> out;
  for (int k = 0; k < kNumSpanKinds; ++k) {
    if (ops_[static_cast<size_t>(k)] > 0) out.push_back(static_cast<SpanKind>(k));
  }
  return out;
}

std::vector<int> SpanTracer::ActiveTenants() const {
  std::vector<int> out;
  out.reserve(tenant_aggs_.size());
  for (const auto& [t, agg] : tenant_aggs_) out.push_back(t);
  return out;
}

const std::vector<SpanExemplar>& SpanTracer::Exemplars(SpanKind root_kind) const {
  return exemplars_[static_cast<size_t>(root_kind)];
}

uint64_t SpanTracer::open_spans() const {
  uint64_t n = 0;
  for (const auto& [task, stack] : ctx_) n += stack.size();
  return n;
}

std::string SpanTracer::FingerprintSummary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "hash=%016" PRIx64 " total=%" PRIu64, hash_,
                spans_total_);
  std::string out = buf;
  for (int k = 0; k < kNumSpanKinds; ++k) {
    if (ops_[static_cast<size_t>(k)] == 0) continue;
    std::snprintf(buf, sizeof(buf), " ops.%s=%" PRIu64,
                  SpanKindName(static_cast<SpanKind>(k)), ops_[static_cast<size_t>(k)]);
    out += buf;
  }
  for (int k = 0; k < kNumSpanKinds; ++k) {
    if (span_counts_[static_cast<size_t>(k)] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s=%" PRIu64,
                  SpanKindName(static_cast<SpanKind>(k)),
                  span_counts_[static_cast<size_t>(k)]);
    out += buf;
  }
  return out;
}

namespace {
void AppendPhasesJson(JsonWriter& w, const std::array<SimTime, kNumSpanKinds>& phase) {
  SimTime total = 0;
  for (SimTime v : phase) total += v;
  w.BeginObject();
  for (int k = 0; k < kNumSpanKinds; ++k) {
    SimTime v = phase[static_cast<size_t>(k)];
    if (v == 0) continue;
    w.Key(SpanKindName(static_cast<SpanKind>(k)));
    w.BeginObject();
    w.KV("ns", static_cast<int64_t>(v));
    w.KV("share", total > 0 ? static_cast<double>(v) / static_cast<double>(total) : 0.0);
    w.EndObject();
  }
  w.EndObject();
}

void AppendTailSummaryJson(JsonWriter& w, const SpanTailSummary& t,
                           const std::vector<SpanExemplar>* slowest) {
  w.BeginObject();
  w.KV("count", t.count);
  w.Key("latency");
  AppendHistogramJson(w, t.latency);
  w.Key("phases");
  AppendPhasesJson(w, t.phase_ns);
  w.Key("bands");
  w.BeginObject();
  for (size_t i = 0; i < t.bands.size(); ++i) {
    w.Key(kSpanBandNames[i]);
    w.BeginObject();
    w.KV("threshold_ns", t.bands[i].threshold_ns);
    w.KV("ops", t.bands[i].ops);
    w.Key("phases");
    AppendPhasesJson(w, t.bands[i].phase_ns);
    w.EndObject();
  }
  w.EndObject();
  if (slowest != nullptr) {
    w.Key("slowest");
    w.BeginArray();
    for (const SpanExemplar& ex : *slowest) {
      w.BeginObject();
      w.KV("latency_ns", ex.latency_ns);
      w.KV("id", ex.id);
      if (ex.tenant >= 0) w.KV("tenant", static_cast<int>(ex.tenant));
      if (ex.dropped_spans > 0) w.KV("dropped_spans", static_cast<uint64_t>(ex.dropped_spans));
      w.Key("phases");
      AppendPhasesJson(w, ex.phase_ns);
      w.Key("spans");
      w.BeginArray();
      for (const SpanExemplar::FlatSpan& s : ex.spans) {
        w.BeginObject();
        w.KV("id", s.id);
        w.KV("parent", s.parent);
        w.KV("kind", SpanKindName(s.kind));
        w.KV("t0", static_cast<int64_t>(s.t0));
        w.KV("t1", static_cast<int64_t>(s.t1));
        w.KV("actor", static_cast<int>(s.actor));
        if (s.page != kTraceNoPage) w.KV("page", s.page);
        if (s.link != 0) w.KV("link", s.link);
        if (s.arg != 0) w.KV("arg", s.arg);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
}
}  // namespace

void SpanTracer::AppendTailJson(JsonWriter& w,
                                const std::vector<std::string>& tenant_names) const {
  w.BeginObject();
  w.KV("top_k", opt_.top_k);
  w.KV("spans_total", spans_total_);
  w.KV("links_total", links_total_);
  w.Key("ops");
  w.BeginObject();
  for (SpanKind k : ActiveRootKinds()) {
    w.Key(SpanKindName(k));
    SpanTailSummary t = Tail(k);
    AppendTailSummaryJson(w, t, &Exemplars(k));
  }
  w.EndObject();
  w.Key("tenants");
  w.BeginObject();
  for (int t : ActiveTenants()) {
    std::string name = static_cast<size_t>(t) < tenant_names.size()
                           ? tenant_names[static_cast<size_t>(t)]
                           : "tenant" + std::to_string(t);
    w.Key(name);
    SpanTailSummary ts = TenantTail(t);
    AppendTailSummaryJson(w, ts, nullptr);
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace magesim
