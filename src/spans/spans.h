// Causal span tracing with critical-path tail-latency attribution.
//
// A SpanTracer opens one root span per logical operation (page fault,
// eviction batch, prefetched page, evictor backpressure pause) and nests a
// child span under it for every stage the operation actually waited on:
// trap entry, fault dedup, tenant admission (QoS throttle / hard-limit
// park), mm locks, frame allocation, free-page waits, each RDMA attempt
// with its backoff, circuit-breaker admission, map install, accounting
// insert, victim unmap, TLB shootdown with per-IPI fan-out, and frame
// reclaim. Where one operation blocks on another, the waiting span carries
// a *causal link* to the span that unblocked it (a fault's free-page wait
// links to the eviction batch that published headroom; backpressure and
// batch-QoS throttles link to the RDMA op that opened the breaker; a
// dedup'd fault links to the in-flight fault it coalesced onto).
//
// When a root span closes, the tracer:
//   1. computes the operation's critical path — every nanosecond of the
//      root interval attributed to exactly one SpanKind via a cursor sweep
//      over the (start-sorted) children, recursing into non-overlapped
//      children and charging gaps to the parent's own kind;
//   2. folds the attribution into percentile-conditioned aggregates, one
//      Histogram slot per latency sub-bucket, so the report can break down
//      "where did the time go" separately for operations in the p50/p90/
//      p99/p99.9 latency bands — overall and per tenant;
//   3. keeps the operation in a bounded top-K slowest-exemplar reservoir
//      (full span tree, flattened) when it is among the worst seen;
//   4. streams the span tree as JSONL (one object per span) and, when a
//      ChromeTraceSink is attached, as trace_event complete slices plus
//      s/f flow arrows for the causal links; then
//   5. frees the whole tree in O(arena blocks), not O(spans).
//
// Hot-path budget (the spans-on perf_fault_path bound is ≤5% on faults/sec):
// records are bump-allocated from per-operation arena blocks — one slab
// allocation per op in steady state, not one per span — and each span is
// mixed into the determinism fingerprint (a word-wide multiply-xor seeded
// with the FNV-1a parameters TraceHashSink uses) at the moment it completes,
// so closing an op does no extra tree walk unless a JSONL/Chrome sink is
// attached.
//
// Like Tracer, at most one SpanTracer is installed at a time and every hook
// is a single pointer test when none is — goldens are byte-identical with
// spans disabled. Span ids are a plain counter, so two same-seed runs
// produce identical streams.
#ifndef MAGESIM_SPANS_SPANS_H_
#define MAGESIM_SPANS_SPANS_H_

#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/slab_alloc.h"
#include "src/sim/stats.h"
#include "src/trace/trace.h"

namespace magesim {

class ChromeTraceSink;
class JsonWriter;

enum class SpanKind : uint8_t {
  // Root operation kinds.
  kFault,         // one page fault (major or dedup-coalesced)
  kEvictBatch,    // one eviction batch (sequential, pipelined, or sync)
  kPrefetch,      // one speculatively read page
  // Stage kinds (children; kBackpressure can also be a root op: the
  // evictor pauses *between* batches, with no operation open).
  kEntry,          // trap entry + page-table walk + VMA resolution
  kDedupWait,      // wait for an in-flight fault on the same page
  kTenantThrottle, // batch-QoS admission backoff
  kTenantPark,     // hard-limit park on the tenant's headroom event
  kMmLocks,        // serialized mm bookkeeping critical section
  kAlloc,          // frame allocation (allocator locks + cache refill)
  kFreeWait,       // MAGE-style wait for the evictors to free pages
  kRdmaRead,       // first read attempt, post -> completion/deadline
  kRdmaWrite,      // first write attempt (or one writeback completion wait)
  kRdmaRetry,      // retry attempt (read or write), post -> outcome
  kRetryBackoff,   // exponential backoff sleep between attempts
  kBreakerWait,    // parked at an open circuit breaker's admission gate
  kMapInstall,     // swap-slot free + residual OS work + PTE install
  kAccounting,     // page-accounting insert (LRU/FIFO locks)
  kUnmapVictims,   // victim isolation + per-page unmap/uncharge/swap-alloc
  kShootdownWait,  // full shootdown wait (local flush + IPI fan-out)
  kLazyTlbWait,    // lazy-TLB mode: park until the reconciliation tick
  kIpiDeliver,     // one IPI: send -> transit -> serialized handler -> ack
  kReclaim,        // freeing victim frames back into the allocator
  kBackpressure,   // evictor pause while the write breaker is open
  kDegradedRead,   // fleet read served from a non-primary surviving replica
  kRebuild,        // fleet re-replication batch (also a detached root op)
  kNumKinds,
};

inline constexpr int kNumSpanKinds = static_cast<int>(SpanKind::kNumKinds);

// Stable snake_case name, used by the JSONL export, the run-report `tail`
// section, and the golden files.
const char* SpanKindName(SpanKind k);

// One node of an operation's span tree. Bump-allocated from the operation's
// arena blocks; the whole tree is recycled when the root closes. Tests may
// also stack-allocate these to hand-build trees for ComputeCriticalPath.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t link = 0;  // span id this span causally waited on (0 = none)
  SimTime t0 = 0;
  SimTime t1 = 0;
  SimTime link_t = 0;  // when the linked span published (flow-arrow tail)
  uint64_t page = kTraceNoPage;
  uint64_t arg = 0;  // kind-specific (attempt number, pages freed, ...)
  SpanRecord* parent = nullptr;
  SpanRecord* first_child = nullptr;
  SpanRecord* last_child = nullptr;
  SpanRecord* next_sibling = nullptr;
  void* arena = nullptr;  // root only: newest arena block of the op's chain
  int32_t actor = -1;       // core or evictor id
  int32_t link_actor = -1;  // actor of the linked span
  SpanKind kind = SpanKind::kFault;
  int8_t tenant = -1;
};

// Opaque reference to an open span. Null handle (default) = disabled/no-op.
struct SpanHandle {
  SpanRecord* rec = nullptr;
  explicit operator bool() const { return rec != nullptr; }
};

// A causal publisher: which span unblocked the waiter, who ran it, and when
// it published (for the Chrome flow arrow's tail).
struct SpanCausalPoint {
  uint64_t id = 0;
  int32_t actor = -1;
  SimTime t = 0;
};

// Critical-path attribution: distributes every nanosecond of
// [root->t0, root->t1] over SpanKinds. Children are swept in start order
// with a cursor: gaps (and the tail) are charged to the parent's own kind;
// a child starting at or after the cursor is recursed into; a child the
// cursor already entered contributes only its clipped remainder, charged to
// the child's kind; a child the cursor passed entirely is skipped (its time
// was concurrent with an earlier sibling — not on the critical path).
// `out` must have kNumSpanKinds entries and is NOT cleared first.
void ComputeCriticalPath(const SpanRecord* root, SimTime* out);

// One latency band of the percentile-conditioned breakdown. Band edges are
// Histogram sub-bucket boundaries (~6% relative blur; see INTERNALS §13).
struct SpanTailBand {
  int64_t threshold_ns = 0;  // latency at the band's lower percentile edge
  uint64_t ops = 0;
  std::array<SimTime, kNumSpanKinds> phase_ns{};

  SimTime total_ns() const;
  double Share(SpanKind k) const;  // phase_ns[k] / total, 0 when empty
};

// Aggregated tail view for one root-op kind (or one tenant's faults):
// overall critical-path attribution plus the four percentile bands
// [p50,p90) [p90,p99) [p99,p99.9) [p99.9,max].
struct SpanTailSummary {
  uint64_t count = 0;
  Histogram latency;
  std::array<SimTime, kNumSpanKinds> phase_ns{};
  std::array<SpanTailBand, 4> bands{};
};

inline constexpr std::array<const char*, 4> kSpanBandNames = {"p50", "p90", "p99",
                                                              "p999"};

// One retained slowest-operation exemplar: the flattened span tree
// (pre-order; parent = index into `spans`, -1 for the root) plus its
// critical-path attribution.
struct SpanExemplar {
  struct FlatSpan {
    uint64_t id = 0;
    uint64_t link = 0;
    SimTime t0 = 0;
    SimTime t1 = 0;
    uint64_t page = kTraceNoPage;
    uint64_t arg = 0;
    int32_t parent = -1;
    int32_t actor = -1;
    SpanKind kind = SpanKind::kFault;
    int8_t tenant = -1;
  };
  int64_t latency_ns = 0;
  uint64_t id = 0;  // root span id
  int8_t tenant = -1;
  uint32_t dropped_spans = 0;  // tree nodes beyond the retention cap
  std::vector<FlatSpan> spans;
  std::array<SimTime, kNumSpanKinds> phase_ns{};
};

class SpanTracer {
 public:
  struct Options {
    std::string out_path;  // JSONL span export ("" = none)
    int top_k = 8;         // slowest exemplars retained per root kind
    // Head-based sampling: trace every Nth root operation per kind in full
    // fidelity; the other N-1 ops are suppressed at Begin for a few cycles
    // each (no records, no aggregation). 1 = trace everything. Deterministic:
    // plain per-kind counters, so same-seed runs sample the same ops.
    int sample_every = 1;
  };

  // Spans retained per exemplar tree; bigger trees record the overflow in
  // `dropped_spans` instead of growing without bound.
  static constexpr size_t kMaxExemplarSpans = 256;

  explicit SpanTracer(const Options& opt);
  ~SpanTracer();
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void Install();    // make this the process-wide span tracer
  void Uninstall();  // no-op unless currently installed
  static SpanTracer* Get() { return current_; }

  // --- Instrumentation hooks (hot while installed) ---
  // Opens a span as a child of the current task's innermost open span (a
  // root operation if there is none) and pushes it on that task's context
  // stack. `t0` < 0 means "now"; a root may backdate t0 to cover work done
  // before the decision to open it (e.g. trap entry before fault dedup).
  SpanHandle Begin(SpanKind k, int32_t actor, uint64_t page, int tenant = -1,
                   SimTime t0 = -1);
  // Closes `h`. Pops the context stack if `h` is on top; finalizes the
  // operation if `h` is a root.
  void End(SpanHandle h, uint64_t arg = 0);

  // Detached span: not tied to any task's context stack. The hot paths
  // (fault, pipelined eviction, prefetch) use detached roots and propagate
  // the handle explicitly — a sampled-out op then costs a few inlined
  // compares per hook instead of a context-map probe or an out-of-line
  // call. `t0` < 0 means "now".
  SpanHandle BeginDetached(SpanKind k, int32_t actor, uint64_t page, int tenant = -1,
                           SimTime t0 = -1) {
    if (!SampleRoot(k)) return SpanHandle{&suppress_};
    return BeginDetachedSampled(k, actor, page, tenant, t0);
  }
  // Opens a detached span nested under `parent` (sync eviction runs its
  // batch under the faulting op). Null parent = detached root; a suppressed
  // parent suppresses the child.
  SpanHandle BeginChild(SpanHandle parent, SpanKind k, int32_t actor, uint64_t page,
                        int tenant = -1) {
    if (parent.rec == &suppress_) return SpanHandle{&suppress_};
    if (parent.rec == nullptr) return BeginDetached(k, actor, page, tenant);
    return BeginChildSampled(parent, k, actor, page, tenant);
  }
  // Closes a detached span; finalizes the operation when `h` is a root.
  void EndDetached(SpanHandle h, uint64_t arg = 0) {
    if (h.rec == nullptr || h.rec == &suppress_) return;
    EndDetachedSampled(h, arg);
  }
  // False for null handles and sampled-out ops: lets call sites skip side
  // work (page-span registration/erase) that only matters for traced ops.
  bool Sampled(SpanHandle h) const { return h.rec != nullptr && h.rec != &suppress_; }

  // Retro-emits a completed wait [t0, now] as a leaf under the current
  // task's innermost open span. Returns the leaf's id, or 0 when skipped
  // (zero duration, or no tracer state). With no open span the leaf becomes
  // a self-contained root operation of its own kind (evictor backpressure).
  uint64_t Leaf(SpanKind k, SimTime t0, int32_t actor, uint64_t page,
                SpanCausalPoint link = {}, uint64_t arg = 0);
  // As Leaf, but parented explicitly (IPI fan-out, pipelined batch stages)
  // and with an explicit end time.
  uint64_t LeafUnder(SpanHandle parent, SpanKind k, SimTime t0, SimTime t1,
                     int32_t actor, uint64_t page, SpanCausalPoint link = {},
                     uint64_t arg = 0) {
    if (parent.rec == nullptr || parent.rec == &suppress_ || t1 <= t0) return 0;
    return LeafUnderSampled(parent, k, t0, t1, actor, page, link, arg);
  }

  // Adopts `h` as the current task's innermost open span (and releases it).
  // Lets a detached batch span parent leaves emitted from helper code
  // (PrepareVictims, the spawned writeback ticket) that only consults the
  // context stack.
  void PushContext(SpanHandle h);
  void PopContext();

  // Innermost open span of the current engine task (null handle if none or
  // if the current operation is sampled out).
  SpanHandle CurrentContext();

  // --- Causal registries ---
  // Inline suppressed-handle guards for the same reason as the hot hooks
  // above: uncharges run per evicted page, so a sampled-out batch must not
  // pay a call per note.
  // The eviction batch about to publish free-page headroom.
  void NoteHeadroomPublisher(SpanHandle h) {
    if (h.rec == nullptr || h.rec == &suppress_) return;
    NoteHeadroomPublisherSampled(h);
  }
  SpanCausalPoint headroom_publisher() const { return headroom_; }
  // The operation whose failure opened the breaker (0 = read, 1 = write).
  void NoteBreakerOpen(int channel, SpanHandle h) {
    if (h.rec == nullptr || h.rec == &suppress_) return;
    NoteBreakerOpenSampled(channel, h);
  }
  SpanCausalPoint breaker_open(int channel) const;
  // The eviction batch that last uncharged a page from tenant `t`.
  void NoteTenantRelease(int tenant, SpanHandle h) {
    if (tenant < 0 || h.rec == nullptr || h.rec == &suppress_) return;
    NoteTenantReleaseSampled(tenant, h);
  }
  SpanCausalPoint tenant_release(int tenant) const;
  // The in-flight fault/prefetch span servicing `vpn` (dedup-wait links).
  void NotePageSpan(uint64_t vpn, SpanHandle h);
  void ErasePageSpan(uint64_t vpn);
  SpanCausalPoint page_span(uint64_t vpn) const;

  // --- Aggregated results ---
  // Tail view for one root-op kind / one tenant's faults. Bands are
  // computed on demand from the slot-conditioned aggregates.
  SpanTailSummary Tail(SpanKind root_kind) const;
  SpanTailSummary TenantTail(int tenant) const;
  // Root kinds with at least one finalized op, enum order; tenants with at
  // least one finalized fault, ascending.
  std::vector<SpanKind> ActiveRootKinds() const;
  std::vector<int> ActiveTenants() const;
  // Slowest exemplars for one root kind, worst first.
  const std::vector<SpanExemplar>& Exemplars(SpanKind root_kind) const;

  uint64_t ops(SpanKind root_kind) const {
    return ops_[static_cast<size_t>(root_kind)];
  }
  uint64_t span_count(SpanKind k) const {
    return span_counts_[static_cast<size_t>(k)];
  }
  uint64_t spans_total() const { return spans_total_; }
  uint64_t links_total() const { return links_total_; }
  uint64_t exemplar_trunc_spans() const { return exemplar_trunc_spans_; }
  // Operations still open (contexts live) — nonzero after shutdown drains.
  uint64_t open_spans() const;
  uint64_t hash() const { return hash_; }
  int top_k() const { return opt_.top_k; }
  int sample_every() const { return opt_.sample_every; }
  bool export_ok() const { return !out_.is_open() || out_.good(); }

  // Determinism fingerprint: "hash=<hex> total=<n> ops.<kind>=<n>... " plus
  // one "<kind>=<count>" per non-zero span kind (golden format).
  std::string FingerprintSummary() const;

  // Chrome trace_event riding: complete slices per span + s/f flow arrows
  // per causal link, appended to `sink` as ops close. Not owned.
  void AttachChrome(ChromeTraceSink* sink) { chrome_ = sink; }

  // The run-report `tail` section (object at the current value position).
  void AppendTailJson(JsonWriter& w,
                      const std::vector<std::string>& tenant_names) const;

 private:
  // Per-op-kind aggregate: latency histogram plus per-latency-slot op count
  // and critical-path attribution (lazily allocated, ~190 KiB when used).
  struct Agg {
    Histogram latency;
    std::vector<uint64_t> slot_ops;
    std::vector<std::array<SimTime, kNumSpanKinds>> slot_phase;
    void Fold(int64_t latency_ns, const SimTime* phase);
  };

  using Stack = std::vector<SpanRecord*, SlabStdAllocator<SpanRecord*>>;

  // True when the next root op of kind `k` is selected by the sampler: the
  // first op of each kind, then every `sample_every`th after it. Runs on
  // every root op, so it is a countdown rather than a modulo (no divide).
  bool SampleRoot(SpanKind k) {
    if (opt_.sample_every <= 1) return true;
    uint64_t& left = sample_left_[static_cast<size_t>(k)];
    if (left == 0) {
      left = static_cast<uint64_t>(opt_.sample_every) - 1;
      return true;
    }
    --left;
    return false;
  }
  // Out-of-line continuations of the inline hot hooks: only reached once
  // the inline guard has established the op is traced (not sampled out).
  SpanHandle BeginDetachedSampled(SpanKind k, int32_t actor, uint64_t page, int tenant,
                                  SimTime t0);
  SpanHandle BeginChildSampled(SpanHandle parent, SpanKind k, int32_t actor,
                               uint64_t page, int tenant);
  void EndDetachedSampled(SpanHandle h, uint64_t arg);
  uint64_t LeafUnderSampled(SpanHandle parent, SpanKind k, SimTime t0, SimTime t1,
                            int32_t actor, uint64_t page, SpanCausalPoint link,
                            uint64_t arg);
  void NoteHeadroomPublisherSampled(SpanHandle h);
  void NoteBreakerOpenSampled(int channel, SpanHandle h);
  void NoteTenantReleaseSampled(int tenant, SpanHandle h);
  // Allocates a record from `root`'s arena chain (a fresh chain when `root`
  // is null, i.e. the record starts a new operation).
  SpanRecord* NewRecord(SpanRecord* root, SpanKind k, int32_t actor,
                        uint64_t page, int tenant, SimTime t0);
  static SpanRecord* RootOf(SpanRecord* s);
  void Adopt(SpanRecord* parent, SpanRecord* child);
  Stack* FindStack();    // current task's stack, nullptr when none
  Stack& EnsureStack();  // current task's stack, created on demand
  void ReleaseStackIfEmpty(TaskId task, Stack& s);
  // Fingerprint + counters, called once per record when its fields go final.
  void Seal(const SpanRecord* s);
  void FinalizeOp(SpanRecord* root);
  // JSONL/Chrome emission, pre-order; `op` is the root kind ("op" field).
  void ExportTree(const SpanRecord* s, SpanKind op);
  void MaybeKeepExemplar(SpanRecord* root, int64_t latency_ns, const SimTime* phase);
  void Flatten(const SpanRecord* s, int parent_idx, SpanExemplar* ex);
  void FreeOp(SpanRecord* root);
  void ExportSpan(const SpanRecord* s, SpanKind op);
  void ChromeSpan(const SpanRecord* s);
  void Mix(uint64_t v);
  static SpanTailSummary TailFromAgg(const Agg& a);

  Options opt_;
  std::ofstream out_;
  ChromeTraceSink* chrome_ = nullptr;
  // Sentinel stack entry marking a sampled-out operation: Begin pushes it
  // instead of a record, every other hook tests against it and bails, End
  // pops it. Never allocated from, never finalized.
  SpanRecord suppress_;
  std::array<uint64_t, kNumSpanKinds> sample_left_{};  // ops until next sample
  uint64_t next_id_ = 1;
  uint64_t hash_;
  uint64_t spans_total_ = 0;
  uint64_t links_total_ = 0;
  uint64_t exemplar_trunc_spans_ = 0;
  std::array<uint64_t, kNumSpanKinds> ops_{};
  std::array<uint64_t, kNumSpanKinds> span_counts_{};

  // Open-span context per engine task. Emptied stacks stay in place for the
  // task's next operation (erase+reinsert per op is hot-path churn); the map
  // is trimmed only if the task population outgrows any plausible steady
  // state. Map nodes and stacks recycle through the slab allocator.
  std::unordered_map<TaskId, Stack, std::hash<TaskId>, std::equal_to<TaskId>,
                     SlabStdAllocator<std::pair<const TaskId, Stack>>>
      ctx_;
  TaskId cached_task_ = kNoTask;
  Stack* cached_stack_ = nullptr;

  SpanCausalPoint headroom_;
  std::array<SpanCausalPoint, 2> breaker_open_{};
  std::vector<SpanCausalPoint> tenant_release_;
  std::unordered_map<uint64_t, SpanCausalPoint, std::hash<uint64_t>,
                     std::equal_to<uint64_t>,
                     SlabStdAllocator<std::pair<const uint64_t, SpanCausalPoint>>>
      page_spans_;

  std::array<Agg, kNumSpanKinds> aggs_{};       // by root kind
  std::map<int, Agg> tenant_aggs_;              // fault ops by tenant
  std::array<std::vector<SpanExemplar>, kNumSpanKinds> exemplars_{};

  static SpanTracer* current_;
};

// --- Inline no-op-when-disabled wrappers for the instrumented layers ---

inline SpanHandle SpanBegin(SpanKind k, int32_t actor, uint64_t page,
                            int tenant = -1, SimTime t0 = -1) {
  SpanTracer* st = SpanTracer::Get();
  return st != nullptr ? st->Begin(k, actor, page, tenant, t0) : SpanHandle{};
}

inline void SpanEnd(SpanHandle h, uint64_t arg = 0) {
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) st->End(h, arg);
}

inline void SpanEndDetached(SpanHandle h, uint64_t arg = 0) {
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) st->EndDetached(h, arg);
}

inline uint64_t SpanLeaf(SpanKind k, SimTime t0, int32_t actor, uint64_t page,
                         SpanCausalPoint link = {}, uint64_t arg = 0) {
  SpanTracer* st = SpanTracer::Get();
  return st != nullptr ? st->Leaf(k, t0, actor, page, link, arg) : 0;
}

inline uint64_t SpanLeafUnder(SpanHandle parent, SpanKind k, SimTime t0, SimTime t1,
                              int32_t actor, uint64_t page, SpanCausalPoint link = {},
                              uint64_t arg = 0) {
  SpanTracer* st = SpanTracer::Get();
  return st != nullptr ? st->LeafUnder(parent, k, t0, t1, actor, page, link, arg) : 0;
}

inline void SpanPushContext(SpanHandle h) {
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr && h.rec != nullptr) {
    st->PushContext(h);
  }
}

inline void SpanPopContext(SpanHandle h) {
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr && h.rec != nullptr) {
    st->PopContext();
  }
}

}  // namespace magesim

#endif  // MAGESIM_SPANS_SPANS_H_
