#include "src/paging/kernel.h"

#include <algorithm>
#include <cassert>

#include "src/accounting/global_lru.h"
#include "src/accounting/mglru.h"
#include "src/accounting/partitioned_fifo.h"
#include "src/accounting/s3fifo.h"
#include "src/analysis/lock_analyzer.h"
#include "src/metrics/profiler.h"
#include "src/paging/prefetcher.h"
#include "src/resilience/resilient_rdma.h"
#include "src/sim/engine.h"
#include "src/sim/hot_path.h"
#include "src/sim/prof_counters.h"
#include "src/spans/spans.h"
#include "src/tenancy/memcg.h"
#include "src/tenancy/tenant_accounting.h"
#include "src/trace/trace.h"

namespace magesim {

namespace {
// Interned breakdown categories for the sync-eviction attribution path.
const int kCatAccounting = Breakdown::InternCategory("accounting");
const int kCatTlb = Breakdown::InternCategory("tlb");
const int kCatOther = Breakdown::InternCategory("other");

// Tenancy controller cadence and the fixed batch-QoS admission backoff.
constexpr SimTime kTenantControllerPeriodNs = 100'000;
constexpr SimTime kTenantBackpressureNs = 2'000;
}  // namespace

Kernel::Kernel(const KernelConfig& config, Topology& topo, TlbShootdownManager& tlb,
               RdmaNic& nic, uint64_t local_pages, uint64_t wss_pages, TenancyManager* tenancy)
    : config_(config),
      topo_(topo),
      tlb_(tlb),
      nic_(nic),
      local_pages_(local_pages),
      wss_pages_(wss_pages),
      direct_map_(0),
      tenancy_(tenancy) {
  low_wm_ = static_cast<uint64_t>(static_cast<double>(local_pages) * config.low_watermark);
  high_wm_ = static_cast<uint64_t>(static_cast<double>(local_pages) * config.high_watermark);
  min_wm_ = static_cast<uint64_t>(static_cast<double>(local_pages) * config.min_watermark);
  low_wm_ = std::max<uint64_t>(low_wm_, 16);
  high_wm_ = std::max<uint64_t>(high_wm_, low_wm_ + 16);
  min_wm_ = std::max<uint64_t>(min_wm_, 4);

  // Scale-down guard: eviction batches must stay small relative to the local
  // pool or concurrent evictors would isolate the entire residency at once
  // (the paper's pools are millions of pages; benches shrink them).
  int max_batch = static_cast<int>(
      local_pages / (8 * static_cast<uint64_t>(std::max(config_.num_evictors, 1))));
  if (max_batch < 8) max_batch = 8;
  if (config_.evict_batch_pages > max_batch) config_.evict_batch_pages = max_batch;
  if (config_.sync_evict_batch > max_batch) config_.sync_evict_batch = max_batch;

  frames_ = std::make_unique<FramePool>(local_pages);
  buddy_ = std::make_unique<BuddyAllocator>(*frames_);
  // Per-core cache depth scaled to the pool so small simulated pools don't
  // strand most of their memory in caches (Linux similarly shrinks pcp
  // batches on small zones).
  int cache_batch = static_cast<int>(std::clamp<uint64_t>(
      local_pages / (static_cast<uint64_t>(topo.num_cores()) * 16), 4, 32));
  switch (config.allocator) {
    case AllocStrategy::kPcp:
      allocator_ = std::make_unique<PcpAllocator>(*buddy_, topo.num_cores(), AllocatorCosts{},
                                                  cache_batch, cache_batch * 2);
      break;
    case AllocStrategy::kGlobalMutex:
      allocator_ = std::make_unique<GlobalMutexAllocator>(*buddy_);
      break;
    case AllocStrategy::kMultilayer:
      allocator_ = std::make_unique<MultilayerAllocator>(*buddy_, topo.num_cores(),
                                                         AllocatorCosts{}, cache_batch,
                                                         cache_batch * 2);
      break;
  }

  pt_ = std::make_unique<PageTable>(wss_pages);
  auto make_policy = [&]() -> std::unique_ptr<PageAccounting> {
    switch (config.accounting) {
      case AccountingPolicy::kPartitionedFifo:
        return std::make_unique<PartitionedFifo>(*pt_, config.accounting_partitions,
                                                 std::max(config.num_evictors, 1));
      case AccountingPolicy::kGlobalLru:
        return std::make_unique<GlobalLru>(*pt_);
      case AccountingPolicy::kS3Fifo:
        return std::make_unique<S3Fifo>(*pt_);
      case AccountingPolicy::kMgLru:
        return std::make_unique<MgLru>(*pt_);
    }
    return nullptr;
  };
  if (tenancy_ != nullptr && tenancy_->num_tenants() > 0) {
    // One full policy instance per cgroup: each tenant keeps its own
    // recency/frequency state, and the facade arbitrates across them.
    std::vector<std::unique_ptr<PageAccounting>> per_tenant;
    per_tenant.reserve(static_cast<size_t>(tenancy_->num_tenants()));
    for (int t = 0; t < tenancy_->num_tenants(); ++t) per_tenant.push_back(make_policy());
    accounting_ = std::make_unique<TenantAccounting>(*tenancy_, std::move(per_tenant));
  } else {
    accounting_ = make_policy();
  }

  switch (config.vma_mode) {
    case VmaMode::kNone:
      vma_ = std::make_unique<NoVma>(wss_pages);
      break;
    case VmaMode::kLocked: {
      auto v = std::make_unique<LockedVmaSet>();
      v->Add({0, wss_pages, 0});
      vma_ = std::move(v);
      break;
    }
    case VmaMode::kSharded: {
      auto v = std::make_unique<ShardedVmaSet>(wss_pages, 64);
      v->Add({0, wss_pages, 0});
      vma_ = std::move(v);
      break;
    }
  }

  if (!config.direct_remote_map) {
    // Swap device sized like the paper's remote pool: the full working set.
    swap_ = std::make_unique<SwapAllocator>(wss_pages + (wss_pages / 4), topo.num_cores());
  }

  if (config.prefetch) {
    prefetcher_ = std::make_unique<Prefetcher>(*this, config.prefetch_window);
  }

  remote_valid_.assign(wss_pages, false);
  prefetched_.assign(wss_pages, false);
  active_evictors_ = config.feedback_evictors ? 1 : config.num_evictors;
  faults_per_core_.assign(static_cast<size_t>(topo.num_cores()), 0);
}

Kernel::~Kernel() = default;

uint64_t Kernel::free_pages() const { return allocator_->global_free_pages(); }

void Kernel::Prepopulate(uint64_t resident_pages) {
  resident_pages = std::min(resident_pages, wss_pages_);
  resident_pages = std::min(resident_pages, local_pages_);
  // Spread resident pages evenly across the working set (Bresenham) so every
  // thread's shard starts with the same residency fraction — the symmetric
  // steady state a warmed-up system converges to.
  uint64_t acc = 0;
  uint64_t mapped = 0;
  for (uint64_t vpn = 0; vpn < wss_pages_ && mapped < resident_pages; ++vpn) {
    acc += resident_pages;
    if (acc < wss_pages_) continue;
    acc -= wss_pages_;
    // Hard limits hold from t=0: budget a capped tenant cannot take is left
    // free for the evictors' headroom instead.
    if (tenancy_ != nullptr && tenancy_->cgroup(tenancy_->TenantOf(vpn)).OverHard()) {
      continue;
    }
    ++mapped;
    PageFrame* f = buddy_->AllocPage();
    assert(f != nullptr);
    pt_->Map(vpn, f);
    pt_->At(vpn).accessed = false;
    // Setup-time charge: silent (no trace events) so prepopulation does not
    // perturb golden traces, but the charge set still mirrors the PTEs.
    if (tenancy_ != nullptr) tenancy_->Charge(vpn, f);
    // Register with accounting directly (setup-time, no lock costs). Spread
    // across stand-in core ids so partitioned accounting starts balanced.
    if (config_.variant == Variant::kIdeal) {
      ideal_fifo_.push_back(vpn);
    } else {
      accounting_->InsertSetup(static_cast<CoreId>(vpn % 64), f);
    }
  }
  // All pages have valid remote copies in the warmed-up state.
  remote_valid_.assign(wss_pages_, true);
  // Non-resident pages live in swap when slot-based.
  if (swap_ != nullptr) {
    for (uint64_t vpn = 0; vpn < wss_pages_; ++vpn) {
      if (pt_->At(vpn).present) continue;
      pt_->At(vpn).swap_slot = vpn;  // setup-time identity assignment
      swap_->MarkUsedForSetup(vpn);
    }
  }
  // With a memory-server fleet those warmed-up remote copies exist on their
  // full desired replica set (slot = vpn at setup, under both slot-based and
  // direct mapping).
  if (resilience_ != nullptr && resilience_->fleet() != nullptr) {
    FleetManager* fleet = resilience_->fleet();
    for (uint64_t vpn = 0; vpn < wss_pages_; ++vpn) {
      fleet->PrepopulateSlot(vpn);
    }
  }
}

MAGESIM_HOT_PATH bool Kernel::TryFastAccess(uint64_t vpn, bool write) {
  MAGESIM_PROF_SCOPE(fast_access);
  Pte& pte = pt_->At(vpn);
  if (!pte.present) return false;
  pte.accessed = true;
  if (write) {
    pte.dirty = true;
    remote_valid_[vpn] = false;
  }
  if (prefetched_[vpn]) {
    prefetched_[vpn] = false;
    ++stats_.prefetch_hits;
  }
  ++stats_.fast_hits;
  return true;
}

void Kernel::InstantReclaim(uint64_t vpn) {
  MAGESIM_PROF_SCOPE(instant_reclaim);
  // Deliberate modeling shortcut (pre-evicted pages, zero simulated cost):
  // bypasses the isolation protocol and the buddy lock on purpose.
  AnalysisExemptScope exempt;
  Pte& pte = pt_->At(vpn);
  if (!pte.present || pte.fault_in_flight) return;
  PageFrame* f = pt_->Unmap(vpn);
  accounting_->Unlink(f);
  UnchargePage(-1, vpn, f);
  remote_valid_[vpn] = true;  // emulates a completed pageout
  TraceEmit(TraceEventType::kPageUnmap, -1, vpn, f->pfn);
  TraceEmit(TraceEventType::kFrameFree, -1, vpn, f->pfn);
  buddy_->FreePage(f);  // resets state/vpn/dirty
}

void Kernel::IdealReclaimOne() {
  // Ideal-variant eviction is free by definition; exempt from lock analysis.
  AnalysisExemptScope exempt;
  while (!ideal_fifo_.empty()) {
    uint64_t vpn = ideal_fifo_.front();
    ideal_fifo_.pop_front();
    Pte& pte = pt_->At(vpn);
    if (!pte.present || pte.fault_in_flight) continue;
    PageFrame* f = pt_->Unmap(vpn);
    UnchargePage(-1, vpn, f);
    remote_valid_[vpn] = true;  // ideal eviction costs nothing
    buddy_->FreePage(f);        // resets state/vpn/dirty
    return;
  }
}

void Kernel::MaybeWakeEvictors() {
  MAGESIM_PROF_SCOPE(maybe_wake_evictors);
  if (free_pages() < low_wm_ || TenancyEvictionPressure()) {
    evictor_wake_.Pulse();
  }
}

void Kernel::ChargePage(int actor, uint64_t vpn, PageFrame* f) {
  if (tenancy_ == nullptr) return;
  int t = tenancy_->Charge(vpn, f);
  TraceEmit(TraceEventType::kTenantCharge, actor, vpn, f->pfn, static_cast<uint64_t>(t));
}

void Kernel::UnchargePage(int actor, uint64_t vpn, PageFrame* f, SpanHandle span) {
  if (tenancy_ == nullptr) return;
  int t = tenancy_->Uncharge(vpn, f);
  TraceEmit(TraceEventType::kTenantUncharge, actor, vpn, f->pfn, static_cast<uint64_t>(t));
  // Register the uncharging batch as the tenant's causal headroom publisher:
  // faults parked on the hard limit link their wait to this batch's span.
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) st->NoteTenantRelease(t, span);
}

bool Kernel::TenancyEvictionPressure() const {
  return tenancy_ != nullptr && tenancy_->EvictionPressure();
}

bool Kernel::TenancyHardWaiters() const {
  return tenancy_ != nullptr && tenancy_->HasHardWaiters();
}

Task<> Kernel::TenantAdmission(CoreId core, uint64_t vpn, SpanHandle op) {
  if (tenancy_ == nullptr) co_return;
  int t = tenancy_->TenantOf(vpn);
  MemCgroup& cg = tenancy_->cgroup(t);
  cg.NoteFault();

  // Batch tenants absorb backpressure first: when memory is tight or the
  // write channel is degraded, their faults are delayed before they compete
  // for frames, leaving headroom for latency/normal tenants.
  if (cg.qos() == QosClass::kBatch &&
      (free_pages() < low_wm_ ||
       (resilience_ != nullptr && resilience_->write_degraded()))) {
    cg.NoteBackpressure();
    TraceEmit(TraceEventType::kTenantThrottle, core, vpn, kTraceNoFrame,
              static_cast<uint64_t>(t));
    SimTime b0 = Engine::current().now();
    bool degraded = resilience_ != nullptr && resilience_->write_degraded();
    co_await Delay{kTenantBackpressureNs};
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      // A throttle taken because the write channel is degraded is causally
      // the open breaker's fault; link to the op that opened it.
      st->LeafUnder(op, SpanKind::kTenantThrottle, b0, Engine::current().now(), core,
                    vpn, degraded ? st->breaker_open(1) : SpanCausalPoint{},
                    static_cast<uint64_t>(t));
    }
  }

  // Hard-limit admission: park on the tenant's headroom event until an
  // uncharge drops usage back under the limit. Waking the evictors here is
  // what reclaims pages from this tenant (it is over its soft limit too, by
  // construction: soft <= hard).
  if (cg.OverHard()) {
    SimTime w0 = Engine::current().now();
    while (cg.OverHard()) {
      tenancy_->NoteHardWaiter(t, +1);
      evictor_wake_.Pulse();
      co_await tenancy_->headroom_event(t).Wait();
      tenancy_->NoteHardWaiter(t, -1);
    }
    SimTime waited = Engine::current().now() - w0;
    cg.NoteHardWait(waited);
    TraceEmit(TraceEventType::kTenantHardWait, core, vpn, kTraceNoFrame,
              static_cast<uint64_t>(waited));
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      // Read the release point after waking: the uncharge that freed the
      // headroom registered its batch span just before the event fired.
      st->LeafUnder(op, SpanKind::kTenantPark, w0, Engine::current().now(), core, vpn,
                    st->tenant_release(t), static_cast<uint64_t>(t));
    }
  }
}

Task<> Kernel::TenantBalanceControllerMain() {
  // The paper's fault/eviction balance controller, lifted to per-tenant
  // scope: every period, compare each tenant's share of recent faults with
  // its weight share. Under memory pressure a tenant faulting far beyond its
  // share has its *effective* soft limit squeezed toward the
  // weight-proportional fair share (making it the preferred eviction victim);
  // once pressure clears, limits relax back toward the configured soft limit.
  Engine& eng = Engine::current();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->NameCurrentTask("tenant-balance-controller");
  }
  const int n = tenancy_->num_tenants();
  std::vector<uint64_t> prev_faults(static_cast<size_t>(n), 0);
  uint64_t total_w = 0;
  for (int t = 0; t < n; ++t) total_w += tenancy_->cgroup(t).weight();
  if (total_w == 0) total_w = 1;
  while (!eng.shutdown_requested()) {
    co_await Delay{kTenantControllerPeriodNs};
    uint64_t total_delta = 0;
    std::vector<uint64_t> delta(static_cast<size_t>(n), 0);
    for (int t = 0; t < n; ++t) {
      uint64_t f = tenancy_->cgroup(t).faults();
      delta[static_cast<size_t>(t)] = f - prev_faults[static_cast<size_t>(t)];
      prev_faults[static_cast<size_t>(t)] = f;
      total_delta += delta[static_cast<size_t>(t)];
    }
    bool pressure = free_pages() < low_wm_ || tenancy_->EvictionPressure();
    for (int t = 0; t < n; ++t) {
      MemCgroup& cg = tenancy_->cgroup(t);
      if (cg.soft_limit() == 0) continue;  // unlimited tenant: nothing to move
      uint64_t fair = local_pages_ * cg.weight() / total_w;
      uint64_t cur = cg.effective_soft_limit();
      uint64_t target = cur;
      // "Thrashing" = more than twice its weight share of this period's
      // faults while the system is under pressure.
      bool thrashing = pressure && total_delta > 0 &&
                       delta[static_cast<size_t>(t)] * total_w >
                           2 * total_delta * cg.weight();
      if (thrashing && cur > fair) {
        target = cur - std::max<uint64_t>((cur - fair) / 8, 1);
        if (target < fair) target = fair;
      } else if (!pressure && cur < cg.soft_limit()) {
        target = cur + std::max<uint64_t>((cg.soft_limit() - cur) / 16, 1);
      }
      if (target != cur && cg.SetEffectiveSoftLimit(target)) {
        TraceEmit(TraceEventType::kTenantSoftAdjust, t, kTraceNoPage, kTraceNoFrame,
                  cg.effective_soft_limit());
      }
    }
    MaybeWakeEvictors();
  }
}

MAGESIM_HOT_PATH Task<PageFrame*> Kernel::AllocWithPressure(CoreId core, uint64_t vpn, SpanHandle op) {
  if (config_.variant == Variant::kIdeal) {
    // The ideal variant has no allocator locks by construction.
    AnalysisExemptScope exempt;
    PageFrame* f = buddy_->AllocPage();
    if (f == nullptr) {
      IdealReclaimOne();
      f = buddy_->AllocPage();
    }
    co_return f;
  }
  for (int attempt = 0;; ++attempt) {
    // Trigger sync eviction below the min watermark (Hermit/DiLOS eager
    // behavior) or on outright allocation failure.
    if (config_.allow_sync_eviction && free_pages() <= min_wm_) {
      co_await SyncEvict(core, op);
    }
    PageFrame* f;
    {
      PhaseScope ps(core, SimPhase::kFaultAlloc);
      SimTime a0 = Engine::current().now();
      f = co_await allocator_->Alloc(core);
      SpanLeafUnder(op, SpanKind::kAlloc, a0, Engine::current().now(), core, vpn);
    }
    if (f != nullptr) {
      MaybeWakeEvictors();
      co_return f;
    }
    MaybeWakeEvictors();
    if (config_.allow_sync_eviction) {
      co_await SyncEvict(core, op);
      continue;
    }
    // MAGE P1: the fault path never evicts; wait for the EP to free pages.
    // Lost-wakeup guard: the evictors may have replenished the pools while
    // this thread was still suspended inside the failed Alloc (its Reset
    // below would wipe that Set). Retry instead of sleeping if pages exist.
    if (free_pages() > 0) {
      continue;
    }
    ++stats_.free_page_waits;
    SimTime w0 = Engine::current().now();
    TraceEmit(TraceEventType::kFreeWaitStart, core, vpn);
    {
      PhaseScope ps(core, SimPhase::kFreeWait);
      free_pages_available_.Reset();
      co_await free_pages_available_.Wait();
    }
    SimTime waited = Engine::current().now() - w0;
    stats_.free_wait_time_total += waited;
    TraceEmit(TraceEventType::kFreeWaitEnd, core, vpn, kTraceNoFrame,
              static_cast<uint64_t>(waited));
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      // Link to the eviction batch that published the headroom we woke on.
      st->LeafUnder(op, SpanKind::kFreeWait, w0, Engine::current().now(), core, vpn,
                    st->headroom_publisher(), static_cast<uint64_t>(waited));
    }
  }
}

MAGESIM_HOT_PATH Task<> Kernel::SyncEvict(CoreId core, SpanHandle op) {
  SimTime t0 = Engine::current().now();
  ++stats_.sync_evictions;
  TraceEmit(TraceEventType::kSyncEvictStart, core);
  co_await EvictBatchSequential(/*evictor_id=*/core % std::max(config_.num_evictors, 1), core,
                                static_cast<size_t>(config_.sync_evict_batch),
                                &stats_.fault_breakdown, op);
  SimTime elapsed = Engine::current().now() - t0;
  stats_.sync_evict_latency.Record(elapsed);
  TraceEmit(TraceEventType::kSyncEvictEnd, core, kTraceNoPage, kTraceNoFrame,
            static_cast<uint64_t>(elapsed));
}

// magesim-lint: allow(coroutine-ref-capture): out/sync_attr point at the
// caller's frame and every caller co_awaits this task inline (never detached).
MAGESIM_HOT_PATH Task<size_t> Kernel::PrepareVictims(int evictor_id, CoreId core, size_t batch,
                                    std::vector<PageFrame*>* out, Breakdown* sync_attr,
                                    SpanHandle bspan) {
  SimTime i0 = Engine::current().now();
  size_t got;
  {
    PhaseScope ps(core, SimPhase::kAccounting);
    got = co_await accounting_->IsolateBatch(evictor_id, core, batch, out);
  }
  if (sync_attr != nullptr) {
    sync_attr->Add(kCatAccounting, Engine::current().now() - i0);
  }
  SpanLeafUnder(bspan, SpanKind::kAccounting, i0, Engine::current().now(), core,
                kTraceNoPage, {}, got);
  if (got == 0) co_return 0;
  const MachineParams& hw = topo_.params();
  SimTime u0 = Engine::current().now();
  PhaseScope ps(core, SimPhase::kEviction);
  for (PageFrame* f : *out) {
    assert(f->vpn != kInvalidVpn);
    uint64_t vpn = f->vpn;
    co_await Delay{hw.pte_update_ns + config_.evict_page_cost_ns};
    pt_->Unmap(vpn);  // transfers the dirty bit onto the frame
    UnchargePage(evictor_id, vpn, f, bspan);
    TraceEmit(TraceEventType::kPageUnmap, evictor_id, vpn, f->pfn);
    if (swap_ != nullptr) {
      // EP3: allocate remote swap space under the global swap lock.
      Pte& pte = pt_->At(vpn);
      if (pte.swap_slot == kNoSwapSlot) {
        uint64_t slot = co_await swap_->Alloc(core);
        pte.swap_slot = slot;
      }
    }
    // Direct mapping needs no allocation: remote_addr = local_addr (§4.2.3).
  }
  SpanLeafUnder(bspan, SpanKind::kUnmapVictims, u0, Engine::current().now(), evictor_id,
                kTraceNoPage, {}, got);
  co_return got;
}

MAGESIM_HOT_PATH size_t Kernel::CountDirtyForWriteback(const std::vector<PageFrame*>& victims) {
  size_t dirty = 0;
  for (PageFrame* f : victims) {
    uint64_t vpn = f->vpn;  // Unmap preserved frame->vpn for writeback routing
    if (f->dirty || !remote_valid_[vpn]) {
      ++dirty;
      remote_valid_[vpn] = true;
    } else {
      ++stats_.clean_reclaims;
    }
  }
  return dirty;
}

MAGESIM_HOT_PATH std::vector<uint64_t> Kernel::CollectWritebackSlots(const std::vector<PageFrame*>& victims) {
  FleetManager* fleet = resilience_->fleet();
  std::vector<uint64_t> slots;
  // magesim-lint: allow(hotpath-alloc): batch-local scratch, one exact-sized
  // reserve per batch; models the evictor's per-batch slot array, whose cost
  // is inside the modeled scan_per_page budget.
  slots.reserve(victims.size());
  for (PageFrame* f : victims) {
    uint64_t vpn = f->vpn;  // Unmap preserved frame->vpn for writeback routing
    uint64_t slot = swap_ != nullptr ? pt_->At(vpn).swap_slot : vpn;
    if (f->dirty || !remote_valid_[vpn] || !fleet->HasLiveCopy(slot)) {
      // magesim-lint: allow(hotpath-alloc): within the capacity reserved above.
      slots.push_back(slot);
      remote_valid_[vpn] = true;
    } else {
      ++stats_.clean_reclaims;
    }
  }
  return slots;
}

uint64_t Kernel::FleetSlotOf(uint64_t vpn) const {
  if (resilience_ == nullptr || resilience_->fleet() == nullptr) {
    return kNoFleetSlot;
  }
  if (swap_ == nullptr) return vpn;
  uint64_t slot = pt_->At(vpn).swap_slot;
  return slot == kNoSwapSlot ? vpn : slot;
}

MAGESIM_HOT_PATH std::shared_ptr<RdmaCompletion> Kernel::PostWriteback(const std::vector<PageFrame*>& victims) {
  size_t dirty = CountDirtyForWriteback(victims);
  std::shared_ptr<RdmaCompletion> last;
  for (size_t i = 0; i < dirty; ++i) {
    last = nic_.PostWrite(kPageSize);
  }
  return last;
}

// magesim-lint: allow(coroutine-ref-capture): sync_attr points at the
// caller's frame (or kernel-lifetime stats) and callers co_await inline.
MAGESIM_HOT_PATH Task<size_t> Kernel::EvictBatchSequential(int evictor_id, CoreId core, size_t batch,
                                          Breakdown* sync_attr, SpanHandle parent) {
  std::vector<PageFrame*> victims;
  // magesim-lint: allow(hotpath-alloc): batch-local scratch, one exact-sized
  // reserve per batch (IsolateBatch fills it in place, never grows it).
  victims.reserve(batch);
  // Open before victim prep so the unmap/uncharge leaves (and the tenant
  // headroom releases inside them) land under this batch span. When called
  // from SyncEvict the span nests as a child of the faulting op.
  SpanHandle bspan{};
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    bspan = st->BeginChild(parent, SpanKind::kEvictBatch, evictor_id, kTraceNoPage);
  }
  size_t got = co_await PrepareVictims(evictor_id, core, batch, &victims, sync_attr, bspan);
  if (got == 0) {
    SpanEndDetached(bspan, 0);
    co_return 0;
  }
  TraceEmit(TraceEventType::kEvictBatchStart, evictor_id, kTraceNoPage, kTraceNoFrame, got);

  // EP2: invalidate victim translations everywhere — or, in lazy-TLB mode,
  // wait for the next reconciliation tick instead of sending IPIs.
  SimTime s0 = Engine::current().now();
  {
    PhaseScope ps(core, SimPhase::kTlbWait);
    if (config_.lazy_tlb) {
      co_await lazy_epoch_.Wait();
    } else {
      co_await tlb_.Shootdown(core, static_cast<int>(got), bspan);
    }
  }
  if (sync_attr != nullptr) {
    sync_attr->Add(kCatTlb, Engine::current().now() - s0);
  }
  SpanLeafUnder(bspan, config_.lazy_tlb ? SpanKind::kLazyTlbWait : SpanKind::kShootdownWait,
                s0, Engine::current().now(), evictor_id, kTraceNoPage, {}, got);

  // EP4: write back dirty pages. The resilient path awaits every completion
  // with a deadline and retries failures; pages whose writes are lost for
  // good are counted and their frames still reclaimed, so eviction always
  // makes progress.
  SimTime w0 = Engine::current().now();
  {
    PhaseScope ps(core, SimPhase::kRdmaWait);
    if (resilience_ != nullptr && resilience_->fleet() != nullptr) {
      std::vector<uint64_t> slots = CollectWritebackSlots(victims);
      if (!slots.empty()) {
        co_await resilience_->WriteSlots(evictor_id, std::move(slots), bspan);
      }
    } else if (resilience_ != nullptr) {
      size_t dirty = CountDirtyForWriteback(victims);
      if (dirty > 0) {
        co_await resilience_->WritePages(evictor_id, dirty, bspan);
      }
    } else {
      auto last = PostWriteback(victims);
      if (last != nullptr) {
        co_await last->Wait();
      }
      SpanLeafUnder(bspan, SpanKind::kRdmaWrite, w0, Engine::current().now(), evictor_id,
                    kTraceNoPage);
    }
  }
  if (sync_attr != nullptr) {
    sync_attr->Add(kCatOther, Engine::current().now() - w0);
  }

  // Reclaim frames into the allocator and release waiting fault paths.
  if (Tracer::Get() != nullptr) {
    for (PageFrame* f : victims) {
      TraceEmit(TraceEventType::kFrameFree, evictor_id, f->vpn, f->pfn);
    }
  }
  {
    PhaseScope ps(core, SimPhase::kEviction);
    SimTime f0 = Engine::current().now();
    co_await allocator_->FreeBatch(core, victims);
    SpanLeafUnder(bspan, SpanKind::kReclaim, f0, Engine::current().now(), evictor_id,
                  kTraceNoPage, {}, got);
  }
  stats_.evicted_pages += got;
  ++stats_.eviction_batches;
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    st->NoteHeadroomPublisher(bspan);
  }
  free_pages_available_.Set();
  TraceEmit(TraceEventType::kEvictBatchEnd, evictor_id, kTraceNoPage, kTraceNoFrame, got);
  SpanEndDetached(bspan, got);
  co_return got;
}

Task<> Kernel::LazyTlbTickerMain() {
  // Scheduler-tick reconciliation (LATR-style): each tick performs a local
  // full flush on every application core (charged as stolen time) and
  // releases eviction batches parked on the epoch.
  Engine& eng = Engine::current();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->NameCurrentTask("lazy-tlb-ticker");
  }
  const MachineParams& hw = topo_.params();
  while (!eng.shutdown_requested()) {
    co_await Delay{config_.lazy_tlb_period_ns};
    ++lazy_epochs_;
    for (CoreId c : tlb_.target_cores()) {
      topo_.core(c).AddStolenTime(hw.full_flush_ns);
    }
    lazy_epoch_.Pulse();
  }
}

void Kernel::Start(int num_app_cores) {
  assert(!started_);
  started_ = true;
  if (config_.variant == Variant::kIdeal) return;
  Engine& eng = Engine::current();
  int total_cores = topo_.num_cores();
  for (int i = 0; i < config_.num_evictors; ++i) {
    CoreId core = total_cores - 1 - i;
    if (core < num_app_cores) core = num_app_cores % total_cores;  // degenerate small configs
    if (config_.pipelined_eviction) {
      eng.Spawn(PipelinedEvictorMain(i, core));
    } else {
      eng.Spawn(SequentialEvictorMain(i, core));
    }
  }
  if (config_.feedback_evictors) {
    eng.Spawn(FeedbackControllerMain());
  }
  if (tenancy_ != nullptr && tenancy_->num_tenants() > 0) {
    eng.Spawn(TenantBalanceControllerMain());
  }
  if (config_.lazy_tlb) {
    eng.Spawn(LazyTlbTickerMain());
  }
}

}  // namespace magesim
