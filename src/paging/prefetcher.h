// Pattern-matching prefetcher (§6.2 "they record past fault-in virtual
// addresses to detect sequential access patterns"): per-core stride detection
// on major-fault addresses with Leap-style adaptive read-ahead — the window
// doubles while the stride holds (up to `max_window`) and collapses when the
// pattern breaks, bounding wasted fetches on irregular phases.
#ifndef MAGESIM_PAGING_PREFETCHER_H_
#define MAGESIM_PAGING_PREFETCHER_H_

#include <cstdint>
#include <vector>

#include "src/hw/topology.h"
#include "src/sim/task.h"

namespace magesim {

class Kernel;

class Prefetcher {
 public:
  // `max_window` bounds the adaptive read-ahead depth.
  Prefetcher(Kernel& kernel, int max_window);

  // Called by the fault path after servicing a major fault on `core`.
  // May spawn an asynchronous prefetch task.
  void OnFault(CoreId core, uint64_t vpn);

  uint64_t issued() const { return issued_; }

 private:
  // One tracked access stream. A core tracks several concurrently (columnar
  // scans interleave multiple sequential streams per thread).
  struct Stream {
    uint64_t last_vpn = ~0ULL;
    int64_t stride = 0;
    int streak = 0;
    bool active = false;             // readahead engaged
    uint64_t expected_next = ~0ULL;  // first fault address past the covered window
    int window = 2;                  // adaptive depth, 2..max_window_
    uint64_t last_use = 0;           // LRU stamp for slot replacement
  };
  static constexpr int kStreamsPerCore = 6;
  static constexpr uint64_t kProximityPages = 256;  // stream-match radius

  struct CoreHistory {
    Stream streams[kStreamsPerCore];
    uint64_t use_counter = 0;
  };

  // Finds the stream owning `vpn` (expected-next hit or proximity match) or
  // recycles the least-recently-used slot.
  Stream* MatchStream(CoreHistory& h, uint64_t vpn, bool* is_expected);

  Task<> PrefetchRange(CoreId core, uint64_t start_vpn, int64_t stride, int count);

  Kernel& kernel_;
  int max_window_;
  std::vector<CoreHistory> history_;
  uint64_t issued_ = 0;
};

}  // namespace magesim

#endif  // MAGESIM_PAGING_PREFETCHER_H_
