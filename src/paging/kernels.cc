#include "src/paging/kernels.h"

#include <stdexcept>

namespace magesim {

KernelConfig IdealConfig() {
  KernelConfig c;
  c.variant = Variant::kIdeal;
  c.name = "ideal";
  c.num_evictors = 0;
  c.allow_sync_eviction = false;
  c.prefetch = false;
  return c;
}

KernelConfig HermitConfig() {
  KernelConfig c;
  c.variant = Variant::kHermit;
  c.name = "hermit";
  // Feedback-directed asynchrony with sequential batch eviction and a
  // synchronous fallback in the fault path (§2.2, §3.2).
  c.num_evictors = 4;
  c.feedback_evictors = true;
  c.pipelined_eviction = false;
  c.evict_batch_pages = 32;  // Linux reclaim batch (SWAP_CLUSTER_MAX)
  c.allow_sync_eviction = true;
  c.sync_evict_batch = 32;
  // Linux mm: global active/inactive LRU, per-CPU page caches over the buddy
  // lock, swap-slot allocator behind the swap_info spinlock.
  c.accounting = AccountingPolicy::kGlobalLru;
  c.allocator = AllocStrategy::kPcp;
  c.direct_remote_map = false;
  c.vma_mode = VmaMode::kLocked;
  // Calibration: Hermit's uncontended fault handler is ~5.8 us (§6.5) with
  // 3.9 us of RDMA; the remaining ~1.9 us of software splits into the
  // modeled locks plus this residual bookkeeping (rmap, cgroup, swap cache).
  c.fault_entry_ns = 300;
  c.fault_extra_ns = 500;
  // Serialized mm bookkeeping region: bounds fault-in-only throughput to
  // ~20% of the 5.83 M ops/s ideal (Fig. 5).
  c.mm_locks_cs_ns = 650;
  // Kernel verbs stack (frontswap/fastswap path).
  c.rdma_stack_cs_ns = 180;
  // Linux reclaim: rmap walk + swap-cache + cgroup work per victim page —
  // this is why Hermit's evictors fall behind and sync eviction kicks in.
  c.evict_page_cost_ns = 2600;
  // Hermit's eager fault path triggers direct reclaim well before memory is
  // exhausted (its feedback loop reacts to falling free pages), putting
  // shootdown-heavy sync eviction on the critical path under load.
  c.min_watermark = 0.035;
  c.virtualized = false;  // Hermit runs bare-metal in the paper's testbed
  return c;
}

KernelConfig DilosConfig() {
  KernelConfig c;
  c.variant = Variant::kDilos;
  c.name = "dilos";
  // Multiple eviction threads (the paper's extended DiLOS) with sequential
  // batches, IPI-based wait-wake, and a synchronous fallback.
  c.num_evictors = 4;
  c.feedback_evictors = false;
  c.pipelined_eviction = false;
  c.evict_batch_pages = 64;
  c.allow_sync_eviction = true;
  c.sync_evict_batch = 64;
  c.evictor_wake_cost_ns = 2200;  // IPI wait-wake + context switch
  // Unikernel: global LRU, single physical-allocator mutex, direct mapping,
  // flat address space (no VMA locks, no swap layer).
  c.accounting = AccountingPolicy::kGlobalLru;
  c.allocator = AllocStrategy::kGlobalMutex;
  c.direct_remote_map = true;
  c.vma_mode = VmaMode::kNone;
  // Calibration: DiLOS's uncontended fault handler is ~4.7 us (§6.5);
  // ~0.8 us of software on top of the 3.9 us read. The global allocator
  // mutex (280 ns CS) bounds fault-in-only throughput to ~56% of ideal.
  c.fault_entry_ns = 350;  // virtualized trap is slightly costlier
  c.fault_extra_ns = 120;
  c.evict_page_cost_ns = 220;
  c.mm_locks_cs_ns = 0;
  c.rdma_stack_cs_ns = 0;  // microkernel-style driver
  c.virtualized = true;
  c.compute_overhead_factor = 1.035;  // EPT / VM overheads (Table 2: ~3-8%)
  return c;
}

KernelConfig MageLnxConfig() {
  KernelConfig c;
  c.variant = Variant::kMageLnx;
  c.name = "magelnx";
  // MAGE principles on Linux (§5.1): 4 dedicated pipelined evictors, no sync
  // eviction, partitioned FIFO accounting, multilayer allocator, sharded
  // address-space locks, swap layer skipped entirely.
  c.num_evictors = 4;
  c.feedback_evictors = false;
  c.pipelined_eviction = true;
  c.evict_batch_pages = 256;
  c.allow_sync_eviction = false;
  c.accounting = AccountingPolicy::kPartitionedFifo;
  c.accounting_partitions = 8;
  c.allocator = AllocStrategy::kMultilayer;
  c.direct_remote_map = true;
  c.vma_mode = VmaMode::kSharded;
  c.fault_entry_ns = 350;
  c.fault_extra_ns = 250;  // trimmed but still-Linux fault bookkeeping
  c.mm_locks_cs_ns = 0;    // rmap bypassed (adopted from Hermit, then sharded)
  // Linux RDMA stack interference between fault-in and eviction threads
  // limits MageLnx to ~139 Gbps (§6.4): a ~210 ns serialized post section
  // bounds 48-thread throughput at ~4.3 M ops/s.
  c.rdma_stack_cs_ns = 210;
  c.virtualized = true;
  c.compute_overhead_factor = 1.045;  // VM + Linux syscall-path overheads
  // No prefetching support in MageLnx (§6.2).
  c.prefetch = false;
  return c;
}

KernelConfig MageLibConfig() {
  KernelConfig c;
  c.variant = Variant::kMageLib;
  c.name = "magelib";
  c.num_evictors = 4;
  c.feedback_evictors = false;
  c.pipelined_eviction = true;
  c.evict_batch_pages = 256;
  c.allow_sync_eviction = false;
  c.accounting = AccountingPolicy::kPartitionedFifo;
  c.accounting_partitions = 8;
  c.allocator = AllocStrategy::kMultilayer;
  c.direct_remote_map = true;
  c.vma_mode = VmaMode::kNone;
  c.fault_entry_ns = 350;
  c.fault_extra_ns = 80;  // unikernel fault path
  c.mm_locks_cs_ns = 0;
  c.rdma_stack_cs_ns = 0;  // low-latency driver adopted from DiLOS (§5.2)
  c.virtualized = true;
  // VM overheads plus OSv's less mature userspace libraries (§6.5: 2-8.6%
  // regression vs. bare-metal Hermit at 100% local memory).
  c.compute_overhead_factor = 1.05;
  return c;
}

KernelConfig FastswapConfig() {
  KernelConfig c = HermitConfig();
  c.variant = Variant::kHermit;  // same Linux substrate
  c.name = "fastswap";
  // One dedicated reclaim core, no feedback scaling, eager direct reclaim.
  c.num_evictors = 1;
  c.feedback_evictors = false;
  c.min_watermark = 0.045;  // falls back to direct reclaim sooner than Hermit
  c.prefetch = false;
  return c;
}

KernelConfig ConfigByName(const std::string& name) {
  if (name == "ideal") return IdealConfig();
  if (name == "hermit") return HermitConfig();
  if (name == "dilos") return DilosConfig();
  if (name == "magelnx") return MageLnxConfig();
  if (name == "magelib") return MageLibConfig();
  if (name == "fastswap") return FastswapConfig();
  throw std::invalid_argument("unknown kernel config: " + name);
}

std::vector<KernelConfig> AllSystemConfigs() {
  return {MageLibConfig(), MageLnxConfig(), DilosConfig(), HermitConfig()};
}

}  // namespace magesim
