// Evictor thread entry points live on Kernel (kernel.h); this header exists
// for discoverability and future extension points (custom eviction policies).
#ifndef MAGESIM_PAGING_EVICTOR_H_
#define MAGESIM_PAGING_EVICTOR_H_

#include "src/paging/kernel.h"

#endif  // MAGESIM_PAGING_EVICTOR_H_
