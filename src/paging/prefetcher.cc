#include "src/paging/prefetcher.h"

#include <algorithm>

#include "src/paging/kernel.h"
#include "src/resilience/resilient_rdma.h"
#include "src/sim/engine.h"
#include "src/tenancy/memcg.h"
#include "src/trace/trace.h"

namespace magesim {

Prefetcher::Prefetcher(Kernel& kernel, int max_window)
    : kernel_(kernel), max_window_(max_window) {
  history_.resize(static_cast<size_t>(kernel.topology().num_cores()));
}

Prefetcher::Stream* Prefetcher::MatchStream(CoreHistory& h, uint64_t vpn, bool* is_expected) {
  *is_expected = false;
  // 1. A stream whose readahead window just ran out (exact continuation).
  for (Stream& s : h.streams) {
    if (s.active && vpn == s.expected_next) {
      *is_expected = true;
      return &s;
    }
  }
  // 2. The nearest stream within the proximity radius (interleaved streams
  //    live in disjoint address regions, e.g. dataframe columns).
  Stream* best = nullptr;
  uint64_t best_dist = kProximityPages + 1;
  for (Stream& s : h.streams) {
    if (s.last_vpn == ~0ULL) continue;
    uint64_t dist = vpn > s.last_vpn ? vpn - s.last_vpn : s.last_vpn - vpn;
    if (dist <= kProximityPages && dist < best_dist) {
      best_dist = dist;
      best = &s;
    }
  }
  if (best != nullptr) return best;
  // 3. Recycle the LRU slot for a new stream.
  Stream* lru = &h.streams[0];
  for (Stream& s : h.streams) {
    if (s.last_use < lru->last_use) lru = &s;
  }
  *lru = Stream{};
  return lru;
}

void Prefetcher::OnFault(CoreId core, uint64_t vpn) {
  // Auto-throttle: while the read channel is degraded, speculative traffic
  // would only compete with demand faults for a failing link.
  if (kernel_.resilience() != nullptr && kernel_.resilience()->read_degraded()) {
    kernel_.resilience()->NotePrefetchThrottle(core, vpn);
    return;
  }
  // Tenancy QoS gate: latency tenants keep their read-ahead (that is the
  // point of the class); batch tenants lose it first under memory pressure;
  // any tenant over its limits stops speculating against its own quota.
  if (TenancyManager* ten = kernel_.tenancy(); ten != nullptr && ten->num_tenants() > 0) {
    int t = ten->TenantOf(vpn);
    bool global_pressure = kernel_.free_pages() < kernel_.low_wm_pages();
    if (!ten->AllowPrefetch(t, global_pressure)) {
      TraceEmit(TraceEventType::kTenantThrottle, core, vpn, kTraceNoFrame,
                static_cast<uint64_t>(t));
      return;
    }
  }
  CoreHistory& h = history_[static_cast<size_t>(core)];
  bool is_expected = false;
  Stream& s = *MatchStream(h, vpn, &is_expected);
  s.last_use = ++h.use_counter;

  // Stream continuation: prefetched pages do not fault, so a tracked stream's
  // next major fault lands exactly one stride past the covered window. Grow
  // the window (Leap-style) and read further ahead.
  if (is_expected) {
    s.window = std::min(s.window * 2, max_window_);
    Engine::current().Spawn(
        PrefetchRange(core, vpn + static_cast<uint64_t>(s.stride), s.stride, s.window));
    s.expected_next =
        vpn + static_cast<uint64_t>(s.stride) * static_cast<uint64_t>(s.window + 1);
    s.last_vpn = vpn;
    return;
  }

  // Raw stride detection over this stream's consecutive fault addresses.
  if (s.last_vpn != ~0ULL) {
    int64_t stride = static_cast<int64_t>(vpn) - static_cast<int64_t>(s.last_vpn);
    if (stride != 0 && stride == s.stride) {
      ++s.streak;
    } else {
      s.streak = 0;
      s.stride = stride;
      s.active = false;
      s.window = 2;  // pattern broke: collapse read-ahead
    }
  }
  s.last_vpn = vpn;
  if (s.streak >= 2 && s.stride != 0) {
    s.active = true;
    Engine::current().Spawn(
        PrefetchRange(core, vpn + static_cast<uint64_t>(s.stride), s.stride, s.window));
    s.expected_next =
        vpn + static_cast<uint64_t>(s.stride) * static_cast<uint64_t>(s.window + 1);
  }
}

Task<> Prefetcher::PrefetchRange(CoreId core, uint64_t start_vpn, int64_t stride, int count) {
  Kernel& k = kernel_;
  uint64_t vpn = start_vpn;
  // Streams never read ahead across a tenant boundary: pages there would be
  // charged to (and evicted from) a different cgroup's quota.
  int owner = -1;
  if (k.tenancy() != nullptr && start_vpn < k.wss_pages()) {
    owner = k.tenancy()->TenantOf(start_vpn);
  }
  for (int i = 0; i < count; ++i, vpn = static_cast<uint64_t>(static_cast<int64_t>(vpn) + stride)) {
    if (vpn >= k.wss_pages()) co_return;
    if (owner >= 0 && k.tenancy()->TenantOf(vpn) != owner) co_return;
    Pte& pte = k.page_table().At(vpn);
    if (pte.present || !k.page_table().TryBeginFault(vpn)) continue;
    ++issued_;
    TraceEmit(TraceEventType::kPrefetchIssue, core, vpn);
    SpanHandle pspan{};
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      pspan = st->BeginDetached(SpanKind::kPrefetch, core, vpn, owner);
      st->NotePageSpan(vpn, pspan);  // demand faults that dedup onto this read
    }
    // Prefetch shares the fault path's allocation policy: under Hermit-style
    // configs it can therefore trigger synchronous eviction, which is exactly
    // how prefetching backfires for those systems (§6.2).
    PageFrame* frame = co_await k.AllocWithPressure(core, vpn, pspan);
    TraceEmit(TraceEventType::kFrameAlloc, core, vpn, frame->pfn);
    if (k.resilience() != nullptr) {
      RemoteOpStatus st = co_await k.resilience()->ReadPage(
          core, vpn, /*allow_poison=*/false, pspan, k.FleetSlotOf(vpn));
      if (st == RemoteOpStatus::kAbandoned) {
        // Speculative read failed for good: unwind instead of poisoning.
        // Free the frame, release the in-flight fault, and stop reading
        // ahead on this (evidently unhealthy) channel.
        ++k.mutable_stats().prefetches_abandoned;
        TraceEmit(TraceEventType::kFrameFree, core, vpn, frame->pfn);
        std::vector<PageFrame*> unwound{frame};
        co_await k.allocator().FreeBatch(core, unwound);
        k.page_table().EndFault(vpn);
        if (SpanTracer* tr = SpanTracer::Get(); tr != nullptr && pspan) {
          if (tr->Sampled(pspan)) tr->ErasePageSpan(vpn);
          tr->EndDetached(pspan, /*arg=*/2);  // arg 2 marks an abandoned prefetch
        }
        co_return;
      }
    } else {
      SimTime n0 = Engine::current().now();
      co_await k.nic().Read(kPageSize);
      SpanLeafUnder(pspan, SpanKind::kRdmaRead, n0, Engine::current().now(), core, vpn);
    }
    SimTime m0 = Engine::current().now();
    co_await Delay{k.topology().params().pte_update_ns};
    k.page_table().Map(vpn, frame);
    k.ChargePage(core, vpn, frame);
    TraceEmit(TraceEventType::kPageMap, core, vpn, frame->pfn);
    SpanLeafUnder(pspan, SpanKind::kMapInstall, m0, Engine::current().now(), core, vpn);
    // Speculative: not a real reference yet.
    k.page_table().At(vpn).accessed = false;
    k.prefetched_[vpn] = true;
    ++k.mutable_stats().prefetched_pages;
    SimTime acc0 = Engine::current().now();
    co_await k.accounting().Insert(core, frame);
    SpanLeafUnder(pspan, SpanKind::kAccounting, acc0, Engine::current().now(), core, vpn);
    k.page_table().EndFault(vpn);
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr && pspan) {
      if (st->Sampled(pspan)) st->ErasePageSpan(vpn);
      st->EndDetached(pspan);
    }
  }
}

}  // namespace magesim
