// MAGE's cross-batch pipelined evictor (§4.1, Fig. 8).
//
// Three batches are in flight per evictor:
//   cur       — freshly scanned/unmapped; its shootdown IPIs just went out.
//   prev      — shootdown acknowledged; dirty pages posted for RDMA write.
//   prevprev  — RDMA writes complete; frames reclaimed to the allocator.
// The evictor never idles waiting for a TLB ACK or RDMA completion while
// there is pipeline work for another batch: RDMA wait latency hides the
// other stages' overheads.
#include <optional>

#include "src/analysis/lock_analyzer.h"
#include "src/metrics/profiler.h"
#include "src/paging/kernel.h"
#include "src/resilience/resilient_rdma.h"
#include "src/sim/engine.h"
#include "src/sim/hot_path.h"
#include "src/trace/trace.h"

namespace magesim {

MAGESIM_HOT_PATH Task<> Kernel::PipelinedEvictorMain(int evictor_id, CoreId core) {
  Engine& eng = Engine::current();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    // Unbound (-1): evictors legitimately touch other cores' structures.
    la->NameCurrentTask("evictor-" + std::to_string(evictor_id));
  }
  std::optional<EvictionBatch> prev;
  std::optional<EvictionBatch> prevprev;

  auto pipeline_empty = [&]() { return !prev.has_value() && !prevprev.has_value(); };

  for (;;) {
    // Pressure accounts for pages already in the eviction pipeline (they
    // will reach the allocator within two stages).
    bool pressure =
        free_pages() + pending_reclaims_ < high_wm_ || TenancyEvictionPressure();
    if (!pressure && pipeline_empty()) {
      if (eng.shutdown_requested()) co_return;
      co_await evictor_wake_.Wait();
      continue;
    }
    if (pressure && resilience_ != nullptr && resilience_->write_degraded()) {
      // Write channel degraded: pause once instead of piling batches onto an
      // open breaker; the next writeback acts as the half-open probe.
      co_await resilience_->EvictionBackpressure(evictor_id);
    }

    // Stage 1: slice a batch off the accounting lists, unmap, allocate
    // remote space.
    EvictionBatch cur;
    if (pressure) {
      if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
        // Detached: the batch's span outlives this co_await chain by two
        // pipeline stages, so the handle rides the EvictionBatch and is
        // passed explicitly to every stage that emits leaves.
        cur.span = st->BeginDetached(SpanKind::kEvictBatch, evictor_id, kTraceNoPage);
      }
      co_await PrepareVictims(evictor_id, core, static_cast<size_t>(config_.evict_batch_pages),
                              &cur.victims, nullptr, cur.span);
      pending_reclaims_ += cur.victims.size();
      if (!cur.victims.empty()) {
        TraceEmit(TraceEventType::kEvictBatchStart, evictor_id, kTraceNoPage, kTraceNoFrame,
                  cur.victims.size());
      } else if (cur.span) {
        SpanEndDetached(cur.span, 0);  // empty scan: close the attempt immediately
        cur.span = SpanHandle{};
      }
    }

    // Stage 2: wait for the *previous* batch's TLB ACKs (normally already
    // complete thanks to the overlap), then kick off this batch's shootdown.
    // Lazy-TLB mode replaces both with a wait for the reconciliation tick.
    if (prev.has_value()) {
      PhaseScope ps(core, SimPhase::kTlbWait);
      SimTime s0 = eng.now();
      if (config_.lazy_tlb) {
        co_await lazy_epoch_.Wait();
        SpanLeafUnder(prev->span, SpanKind::kLazyTlbWait, s0, eng.now(), evictor_id,
                      kTraceNoPage);
      } else {
        co_await tlb_.Finish(prev->shootdown);
        SpanLeafUnder(prev->span, SpanKind::kShootdownWait, s0, eng.now(), evictor_id,
                      kTraceNoPage);
        prev->shootdown = nullptr;
      }
    }
    if (!cur.victims.empty() && !config_.lazy_tlb) {
      PhaseScope ps(core, SimPhase::kTlbWait);
      // Begin() carries the batch span into the ShootdownOp so the per-IPI
      // delivery leaves land under this batch.
      cur.shootdown =
          co_await tlb_.Begin(core, static_cast<int>(cur.victims.size()), cur.span);
    }

    // Stage 3: wait for the oldest batch's RDMA writes, reclaim its frames,
    // then post writes for the middle batch.
    if (prevprev.has_value()) {
      if (prevprev->write_completion != nullptr) {
        PhaseScope ps(core, SimPhase::kRdmaWait);
        SimTime w0 = eng.now();
        co_await prevprev->write_completion->Wait();
        SpanLeafUnder(prevprev->span, SpanKind::kRdmaWrite, w0, eng.now(), evictor_id,
                      kTraceNoPage);
      } else if (prevprev->write_ticket != nullptr) {
        // The resilient writeback ticket emits its own rdma/retry/backoff
        // leaves under this batch's span from its spawned task.
        PhaseScope ps(core, SimPhase::kRdmaWait);
        co_await prevprev->write_ticket->done.Wait();
      }
      if (Tracer::Get() != nullptr) {
        for (PageFrame* f : prevprev->victims) {
          TraceEmit(TraceEventType::kFrameFree, evictor_id, f->vpn, f->pfn);
        }
      }
      {
        PhaseScope ps(core, SimPhase::kEviction);
        SimTime f0 = eng.now();
        co_await allocator_->FreeBatch(core, prevprev->victims);
        SpanLeafUnder(prevprev->span, SpanKind::kReclaim, f0, eng.now(), evictor_id,
                      kTraceNoPage, {}, prevprev->victims.size());
      }
      pending_reclaims_ -= prevprev->victims.size();
      stats_.evicted_pages += prevprev->victims.size();
      ++stats_.eviction_batches;
      if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
        st->NoteHeadroomPublisher(prevprev->span);
      }
      free_pages_available_.Set();
      TraceEmit(TraceEventType::kEvictBatchEnd, evictor_id, kTraceNoPage, kTraceNoFrame,
                prevprev->victims.size());
      SpanEndDetached(prevprev->span, prevprev->victims.size());
      prevprev.reset();
    }
    if (prev.has_value()) {
      if (resilience_ != nullptr && resilience_->fleet() != nullptr) {
        std::vector<uint64_t> slots = CollectWritebackSlots(prev->victims);
        if (!slots.empty()) {
          prev->write_ticket =
              resilience_->SpawnWriteSlots(evictor_id, std::move(slots), prev->span);
        }
      } else if (resilience_ != nullptr) {
        size_t dirty = CountDirtyForWriteback(prev->victims);
        if (dirty > 0) {
          prev->write_ticket = resilience_->SpawnWritePages(evictor_id, dirty, prev->span);
        }
      } else {
        prev->write_completion = PostWriteback(prev->victims);
      }
      prevprev = std::move(prev);
      prev.reset();
    }
    if (!cur.victims.empty()) {
      prev = std::move(cur);
    } else if (pressure && pipeline_empty()) {
      if (eng.shutdown_requested()) co_return;
      if (FaultersWaitingForPages() || TenancyHardWaiters()) {
        // Nothing isolatable *right now* (reference bits still decaying) but
        // faulting threads are blocked on us: retry shortly instead of
        // parking — the blocked threads cannot generate another wakeup.
        co_await Delay{2 * kMicrosecond};
      } else {
        // No urgency: park until the fault path signals pressure again.
        co_await evictor_wake_.Wait();
      }
    }
  }
}

}  // namespace magesim
