// Sequential (non-pipelined) evictor threads and the Hermit-style feedback
// controller.
#include "src/analysis/lock_analyzer.h"
#include "src/paging/kernel.h"
#include "src/resilience/resilient_rdma.h"
#include "src/sim/engine.h"
#include "src/sim/hot_path.h"

namespace magesim {

MAGESIM_HOT_PATH Task<> Kernel::SequentialEvictorMain(int evictor_id, CoreId core) {
  Engine& eng = Engine::current();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    // Unbound (-1): evictors legitimately touch other cores' structures.
    la->NameCurrentTask("evictor-" + std::to_string(evictor_id));
  }
  for (;;) {
    if (evictor_id >= active_evictors_) {
      // Parked by the feedback controller; check back periodically while the
      // system is live.
      if (eng.shutdown_requested()) co_return;
      co_await evictor_wake_.Wait();
      if (config_.evictor_wake_cost_ns > 0) {
        co_await Delay{config_.evictor_wake_cost_ns};
      }
      continue;
    }
    if (free_pages() >= high_wm_ && !TenancyEvictionPressure()) {
      if (eng.shutdown_requested()) co_return;
      // Sleep until the fault path signals pressure (DiLOS wait-wake: the
      // wake itself costs an IPI + context switch, charged on resume).
      co_await evictor_wake_.Wait();
      if (config_.evictor_wake_cost_ns > 0) {
        co_await Delay{config_.evictor_wake_cost_ns};
      }
      continue;
    }
    if (resilience_ != nullptr && resilience_->write_degraded()) {
      // Write channel is degraded: pause briefly instead of hammering the
      // open breaker; the next writeback acts as the half-open probe.
      co_await resilience_->EvictionBackpressure(evictor_id);
    }
    size_t got = co_await EvictBatchSequential(evictor_id, core,
                                               static_cast<size_t>(config_.evict_batch_pages));
    if (got == 0) {
      if (eng.shutdown_requested()) co_return;
      if (FaultersWaitingForPages() || TenancyHardWaiters()) {
        // Blocked faulters cannot signal again; retry once references decay.
        co_await Delay{2 * kMicrosecond};
      } else {
        // Nothing reclaimable and no one waiting: park until signaled.
        co_await evictor_wake_.Wait();
      }
    }
  }
}

Task<> Kernel::FeedbackControllerMain() {
  // Hermit's feedback-directed asynchrony: scale the number of active
  // evictor threads with reclaim pressure.
  Engine& eng = Engine::current();
  if (LockAnalyzer* la = LockAnalyzer::Active()) {
    la->NameCurrentTask("evict-controller");
  }
  constexpr SimTime kPeriod = 100 * kMicrosecond;
  uint64_t last_faults = 0;
  while (!eng.shutdown_requested()) {
    co_await Delay{kPeriod};
    uint64_t faults = stats_.faults;
    uint64_t recent = faults - last_faults;
    last_faults = faults;
    uint64_t free = free_pages();
    if (free < low_wm_ || stats_.sync_evictions > 0) {
      active_evictors_ = config_.num_evictors;
    } else if (free < high_wm_ && recent > 0) {
      active_evictors_ = std::min(active_evictors_ + 1, config_.num_evictors);
    } else if (recent == 0 && free >= high_wm_) {
      active_evictors_ = std::max(1, active_evictors_ - 1);
    }
    if (free < high_wm_) {
      evictor_wake_.Pulse();  // make newly activated evictors notice
    }
  }
}

}  // namespace magesim
