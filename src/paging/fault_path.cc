// Kernel fault-in path (FP of Fig. 2), with per-phase latency attribution.
#include <cassert>

#include "src/metrics/profiler.h"
#include "src/paging/kernel.h"
#include "src/paging/prefetcher.h"
#include "src/resilience/resilient_rdma.h"
#include "src/sim/engine.h"
#include "src/sim/hot_path.h"
#include "src/spans/spans.h"
#include "src/tenancy/memcg.h"
#include "src/trace/trace.h"

namespace magesim {

namespace {
// Interned breakdown categories, resolved once — Breakdown::Add on the fault
// hot path is then a plain vector index.
const int kCatEntry = Breakdown::InternCategory("entry");
const int kCatOther = Breakdown::InternCategory("other");
const int kCatAlloc = Breakdown::InternCategory("alloc");
const int kCatRdma = Breakdown::InternCategory("rdma");
const int kCatAccounting = Breakdown::InternCategory("accounting");
}  // namespace

MAGESIM_HOT_PATH Task<> Kernel::Fault(CoreId core, uint64_t vpn, bool write) {
  Engine& eng = Engine::current();
  const MachineParams& hw = topo_.params();
  SimTime t0 = eng.now();
  assert(vpn < wss_pages_);
  ++faults_per_core_[static_cast<size_t>(core)];

  if (config_.variant == Variant::kIdeal) {
    // Zero software overhead: only the data movement cost (§3.1).
    Pte& pte = pt_->At(vpn);
    if (pte.present) co_return;
    if (!pt_->TryBeginFault(vpn)) {
      TraceEmit(TraceEventType::kFaultDedup, core, vpn);
      co_await pt_->WaitForFault(vpn);
      stats_.fault_latency.Record(eng.now() - t0);
      co_return;
    }
    ++stats_.faults;
    TraceEmit(TraceEventType::kFaultStart, core, vpn, kTraceNoFrame, write ? 1 : 0);
    PageFrame* f = co_await AllocWithPressure(core, vpn);
    assert(f != nullptr);
    TraceEmit(TraceEventType::kFrameAlloc, core, vpn, f->pfn);
    {
      PhaseScope ps(core, SimPhase::kRdmaWait);
      if (resilience_ != nullptr) {
        RemoteOpStatus st = co_await resilience_->ReadPage(core, vpn, /*allow_poison=*/true,
                                                           {}, FleetSlotOf(vpn));
        if (st == RemoteOpStatus::kPoisoned) ++stats_.pages_poisoned;
      } else {
        co_await nic_.Read(kPageSize);
      }
    }
    pt_->Map(vpn, f);
    ChargePage(core, vpn, f);
    TraceEmit(TraceEventType::kPageMap, core, vpn, f->pfn);
    if (write) {
      pt_->At(vpn).dirty = true;
      remote_valid_[vpn] = false;
    }
    // magesim-lint: allow(hotpath-alloc): ideal variant models zero software
    // overhead, so host-side deque growth is explicitly outside the model.
    ideal_fifo_.push_back(vpn);
    pt_->EndFault(vpn);
    stats_.fault_latency.Record(eng.now() - t0);
    TraceEmit(TraceEventType::kFaultEnd, core, vpn, f->pfn,
              static_cast<uint64_t>(eng.now() - t0));
    co_return;
  }

  // --- Trap entry and dispatch ---
  {
    PhaseScope ps(core, SimPhase::kFaultMap);
    co_await Delay{config_.fault_entry_ns + hw.page_table_walk_ns};

    // --- VMA resolution (variant-dependent locking) ---
    const Vma* v = nullptr;
    if (!vma_->TryFind(vpn, &v)) v = co_await vma_->Find(vpn);
    assert(v != nullptr);
    (void)v;  // only consulted by the assert in NDEBUG builds
  }
  stats_.fault_breakdown.Add(kCatEntry, eng.now() - t0);

  Pte& pte = pt_->At(vpn);
  if (pte.present) {
    // Raced with a concurrent fault or prefetch: minor fault.
    pte.accessed = true;
    if (write) {
      pte.dirty = true;
      remote_valid_[vpn] = false;
    }
    co_return;
  }
  if (!pt_->TryBeginFault(vpn)) {
    // Fault dedup via the unified page table / swap cache: wait for the
    // in-flight fault instead of issuing a duplicate read.
    ++stats_.dedup_waits;
    TraceEmit(TraceEventType::kFaultDedup, core, vpn);
    SpanHandle droot{};
    SpanCausalPoint inflight{};
    SimTime w0 = eng.now();
    if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
      int tenant = tenancy_ != nullptr ? tenancy_->TenantOf(vpn) : -1;
      droot = st->BeginDetached(SpanKind::kFault, core, vpn, tenant, t0);
      if (st->Sampled(droot)) {
        st->LeafUnder(droot, SpanKind::kEntry, t0, w0, core, vpn);
        // Capture the in-flight fault before waiting: it erases its page-span
        // registration when it completes.
        inflight = st->page_span(vpn);
      }
    }
    co_await pt_->WaitForFault(vpn);
    if (droot) {
      SpanLeafUnder(droot, SpanKind::kDedupWait, w0, eng.now(), core, vpn, inflight);
      SpanEndDetached(droot, /*arg=*/1);  // arg 1 marks a dedup-coalesced fault
    }
    stats_.fault_latency.Record(eng.now() - t0);
    co_return;
  }
  ++stats_.faults;
  TraceEmit(TraceEventType::kFaultStart, core, vpn, kTraceNoFrame, write ? 1 : 0);
  // The fault span is a detached root: the handle is threaded explicitly
  // through admission, allocation, and the resilient read so the suppressed
  // (sampled-out) case never touches the tracer's context map.
  SpanHandle root{};
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr) {
    int tenant = tenancy_ != nullptr ? tenancy_->TenantOf(vpn) : -1;
    root = st->BeginDetached(SpanKind::kFault, core, vpn, tenant, t0);
    if (st->Sampled(root)) {
      st->LeafUnder(root, SpanKind::kEntry, t0, eng.now(), core, vpn);
      st->NotePageSpan(vpn, root);  // dedup'd followers link to this fault
    }
  }

  // --- Tenancy admission: QoS backpressure + hard-limit gate ---
  if (tenancy_ != nullptr) {
    PhaseScope ps(core, SimPhase::kFreeWait);
    co_await TenantAdmission(core, vpn, root);
  }

  // --- Serialized mm bookkeeping (page-table lock, rmap, cgroup: Linux) ---
  if (config_.mm_locks_cs_ns > 0) {
    SimTime m0 = eng.now();
    PhaseScope ps(core, SimPhase::kFaultMap);
    auto g = co_await mm_locks_.Scoped();
    co_await Delay{config_.mm_locks_cs_ns};
    stats_.fault_breakdown.Add(kCatOther, eng.now() - m0);
    SpanLeafUnder(root, SpanKind::kMmLocks, m0, eng.now(), core, vpn);
  }

  // --- FP1: local page allocation (may wait for / trigger eviction) ---
  SimTime a0 = eng.now();
  PageFrame* frame = co_await AllocWithPressure(core, vpn, root);
  assert(frame != nullptr);
  TraceEmit(TraceEventType::kFrameAlloc, core, vpn, frame->pfn);
  stats_.fault_breakdown.Add(kCatAlloc, eng.now() - a0);

  // --- FP2: RDMA read of the page ---
  SimTime r0 = eng.now();
  {
    PhaseScope ps(core, SimPhase::kRdmaWait);
    if (config_.rdma_stack_cs_ns > 0) {
      auto g = co_await rdma_stack_lock_.Scoped();
      co_await Delay{config_.rdma_stack_cs_ns};
    }
    if (resilience_ != nullptr) {
      // The resilience manager emits its own rdma/retry/backoff/breaker
      // leaves under the fault span.
      RemoteOpStatus st = co_await resilience_->ReadPage(
          core, vpn, /*allow_poison=*/true, root, FleetSlotOf(vpn));
      if (st == RemoteOpStatus::kPoisoned) ++stats_.pages_poisoned;
    } else {
      SimTime n0 = eng.now();
      co_await nic_.Read(kPageSize);
      SpanLeafUnder(root, SpanKind::kRdmaRead, n0, eng.now(), core, vpn);
    }
  }
  stats_.fault_breakdown.Add(kCatRdma, eng.now() - r0);

  // --- Swap bookkeeping (slot-based variants free the slot on swap-in) ---
  SimTime o0 = eng.now();
  {
    PhaseScope ps(core, SimPhase::kFaultMap);
    if (swap_ != nullptr && pte.swap_slot != kNoSwapSlot) {
      co_await swap_->Free(pte.swap_slot);
      pte.swap_slot = kNoSwapSlot;
    }
    // Residual per-fault OS work outside the modeled locks.
    if (config_.fault_extra_ns > 0) {
      co_await Delay{config_.fault_extra_ns};
    }

    // --- Install the mapping ---
    co_await Delay{hw.pte_update_ns};
  }
  pt_->Map(vpn, frame);
  ChargePage(core, vpn, frame);
  TraceEmit(TraceEventType::kPageMap, core, vpn, frame->pfn);
  if (write) {
    pte.dirty = true;
    remote_valid_[vpn] = false;
  }
  stats_.fault_breakdown.Add(kCatOther, eng.now() - o0);
  SpanLeafUnder(root, SpanKind::kMapInstall, o0, eng.now(), core, vpn);

  // --- FP3: page accounting insert ---
  SimTime acc0 = eng.now();
  {
    PhaseScope ps(core, SimPhase::kAccounting);
    co_await accounting_->Insert(core, frame);
  }
  stats_.fault_breakdown.Add(kCatAccounting, eng.now() - acc0);
  SpanLeafUnder(root, SpanKind::kAccounting, acc0, eng.now(), core, vpn);

  pt_->EndFault(vpn);
  if (SpanTracer* st = SpanTracer::Get(); st != nullptr && root) {
    if (st->Sampled(root)) st->ErasePageSpan(vpn);
    st->EndDetached(root);
  }
  stats_.fault_latency.Record(eng.now() - t0);
  TraceEmit(TraceEventType::kFaultEnd, core, vpn, frame->pfn,
            static_cast<uint64_t>(eng.now() - t0));

  if (prefetcher_ != nullptr) {
    prefetcher_->OnFault(core, vpn);
  }
}

}  // namespace magesim
