// The far-memory paging kernel: owns the page table, allocators, accounting,
// and eviction machinery for one application address space, and exposes the
// two paths of Fig. 2: HandleAccess (FP) for application threads, and evictor
// tasks (EP) spawned by Start().
#ifndef MAGESIM_PAGING_KERNEL_H_
#define MAGESIM_PAGING_KERNEL_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/accounting/accounting.h"
#include "src/hw/ipi.h"
#include "src/hw/rdma.h"
#include "src/mem/multilayer_allocator.h"
#include "src/mem/page_table.h"
#include "src/mem/percpu_cache.h"
#include "src/mem/swap_allocator.h"
#include "src/mem/vma.h"
#include "src/paging/config.h"
#include "src/sim/stats.h"
#include "src/spans/spans.h"

namespace magesim {

class Prefetcher;
class ResilienceManager;
class TenancyManager;
struct WritebackTicket;

struct KernelStats {
  uint64_t faults = 0;           // major faults actually serviced
  uint64_t fast_hits = 0;        // present-PTE accesses
  uint64_t dedup_waits = 0;      // faults coalesced onto an in-flight fault
  uint64_t sync_evictions = 0;   // inline evictions run by faulting threads
  uint64_t free_page_waits = 0;  // MAGE-style waits for the EP to free pages
  uint64_t evicted_pages = 0;
  uint64_t eviction_batches = 0;
  uint64_t clean_reclaims = 0;   // evictions that skipped the RDMA write
  uint64_t prefetched_pages = 0;
  uint64_t prefetch_hits = 0;    // fast hits on previously prefetched pages
  uint64_t pages_poisoned = 0;   // demand reads that exhausted their retries
  uint64_t prefetches_abandoned = 0;  // speculative reads unwound on failure

  Histogram fault_latency;       // end-to-end major-fault latency
  Histogram sync_evict_latency;
  Breakdown fault_breakdown;     // per-phase attribution (Figs. 6/16)
  SimTime free_wait_time_total = 0;
};

class Kernel {
 public:
  // `tenancy` (optional, not owned) attaches the multi-tenant memory control
  // groups: accounting becomes per-tenant, every Map/Unmap charges/uncharges
  // the owning cgroup, and victim selection turns QoS-aware.
  Kernel(const KernelConfig& config, Topology& topo, TlbShootdownManager& tlb, RdmaNic& nic,
         uint64_t local_pages, uint64_t wss_pages, TenancyManager* tenancy = nullptr);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Pre-faults resident pages (zero simulated cost, setup only): maps the
  // first `resident` pages of the working set and registers them with
  // accounting. Remote copies of all pages are marked valid, modeling a
  // warmed-up steady state.
  void Prepopulate(uint64_t resident_pages);

  // Spawns evictor threads and (if configured) the feedback controller.
  // Evictor cores are assigned from the top of the core range, after
  // `num_app_cores` application cores.
  void Start(int num_app_cores);

  // --- Fault-in path ---
  // Fast path: if the page is present, sets accessed/dirty bits and returns
  // true. No simulated time passes.
  bool TryFastAccess(uint64_t vpn, bool write);

  // Slow path (major fault). Suspends the calling (application) coroutine for
  // the full fault duration.
  Task<> Fault(CoreId core, uint64_t vpn, bool write);

  // Instant page reclaim with zero simulated cost: used by microbenchmarks to
  // emulate pre-evicted pages (madvise_pageout before the measurement starts)
  // so the fault path can be measured in isolation (§3.2 "fault-in only").
  void InstantReclaim(uint64_t vpn);

  // --- Eviction machinery (shared by evictor threads and sync eviction) ---
  // Runs one sequential eviction batch: isolate victims, unmap, allocate
  // remote space, shootdown, write dirty pages, reclaim. Returns pages freed.
  // `parent` is the span of the operation running the batch inline (sync
  // eviction nests its batch span under the faulting op); default = a
  // detached batch root.
  Task<size_t> EvictBatchSequential(int evictor_id, CoreId core, size_t batch,
                                    Breakdown* sync_attr = nullptr,
                                    SpanHandle parent = {});

  // Evictor main loops (implemented in evictor.cc / pipelined_evictor.cc).
  Task<> SequentialEvictorMain(int evictor_id, CoreId core);
  Task<> PipelinedEvictorMain(int evictor_id, CoreId core);
  Task<> FeedbackControllerMain();
  // Per-tenant fault/eviction balance controller (tenancy only): squeezes the
  // effective soft limit of tenants faulting far beyond their weighted share.
  Task<> TenantBalanceControllerMain();
  // Periodic TLB reconciliation for lazy_tlb mode (scheduler-tick flushes).
  Task<> LazyTlbTickerMain();

  // --- Introspection ---
  const KernelConfig& config() const { return config_; }
  const KernelStats& stats() const { return stats_; }
  KernelStats& mutable_stats() { return stats_; }
  uint64_t free_pages() const;
  uint64_t wss_pages() const { return wss_pages_; }
  uint64_t local_pages() const { return local_pages_; }
  PageTable& page_table() { return *pt_; }
  PageAccounting& accounting() { return *accounting_; }
  PageAllocator& allocator() { return *allocator_; }
  BuddyAllocator& buddy() { return *buddy_; }
  FramePool& frame_pool() { return *frames_; }
  bool remote_valid(uint64_t vpn) const { return remote_valid_[vpn]; }
  RdmaNic& nic() { return nic_; }
  Topology& topology() { return topo_; }
  TlbShootdownManager& tlb() { return tlb_; }

  // Attaches the resilient data path (timeouts/retries/breakers). With none
  // attached every remote op takes the legacy direct-NIC path unchanged.
  void SetResilience(ResilienceManager* r) { resilience_ = r; }
  ResilienceManager* resilience() { return resilience_; }

  // The fleet routing slot for a remote read of `vpn` (identity under direct
  // mapping), or the no-fleet sentinel when no fleet is attached.
  uint64_t FleetSlotOf(uint64_t vpn) const;
  // Null unless the machine attached memory control groups.
  TenancyManager* tenancy() { return tenancy_; }
  uint64_t FaultsOnCore(CoreId c) const { return faults_per_core_[static_cast<size_t>(c)]; }

  // Watermark thresholds in pages.
  uint64_t low_wm_pages() const { return low_wm_; }
  uint64_t high_wm_pages() const { return high_wm_; }
  uint64_t min_wm_pages() const { return min_wm_; }

  // Lock-contention report entries for diagnostics.
  LockStats accounting_lock_stats() const { return accounting_->AggregateLockStats(); }

  // Clears measurement counters (stats + per-core fault counts) so harnesses
  // can discard warmup transients.
  void ResetMeasurement() {
    stats_ = KernelStats{};
    std::fill(faults_per_core_.begin(), faults_per_core_.end(), 0);
  }

 private:
  friend class Prefetcher;

  // Allocates one frame, applying the variant's pressure policy (sync
  // eviction vs. waiting for the EP). Attributes wait time to the breakdown.
  // `op` is the requesting operation's span (alloc/free-wait leaves attach
  // to it; spans are hot-path handle-explicit, never context-stack lookups).
  Task<PageFrame*> AllocWithPressure(CoreId core, uint64_t vpn, SpanHandle op = {});

  // --- Tenancy hooks (all no-ops with no TenancyManager attached) ---
  // Charge/uncharge accompany every Map/Unmap so the per-tenant charge set
  // mirrors the present PTEs at every event boundary.
  void ChargePage(int actor, uint64_t vpn, PageFrame* f);
  // `span` is the uncharging batch's span, registered as the tenant's causal
  // headroom publisher.
  void UnchargePage(int actor, uint64_t vpn, PageFrame* f, SpanHandle span = {});
  // Hard-limit admission + batch-QoS backpressure, run by the fault path
  // after fault dedup and before allocation. `op` is the fault's span.
  Task<> TenantAdmission(CoreId core, uint64_t vpn, SpanHandle op = {});
  // True while any tenant has blocked faulters or is inside its watermark
  // band: keeps evictors running above the global high watermark.
  bool TenancyEvictionPressure() const;
  bool TenancyHardWaiters() const;

  // One inline (synchronous) eviction from the fault path; the batch span
  // nests under `op` (the faulting operation).
  Task<> SyncEvict(CoreId core, SpanHandle op = {});

  // Batch state for the pipelined evictor. Exactly one of write_completion /
  // write_ticket is set once writeback is posted (ticket when the resilient
  // path handles the batch).
  struct EvictionBatch {
    std::vector<PageFrame*> victims;
    std::shared_ptr<ShootdownOp> shootdown;
    std::shared_ptr<RdmaCompletion> write_completion;
    std::shared_ptr<WritebackTicket> write_ticket;
    // Detached batch span: the batch outlives any single co_await chain, so
    // its span is closed explicitly when the frames are reclaimed (stage 3).
    SpanHandle span;
  };

  // Wakes sleeping evictors when free pages dip below the low watermark.
  void MaybeWakeEvictors();

  // Ideal-system instant eviction: recycles the oldest resident page with
  // zero software cost.
  void IdealReclaimOne();

  // Unmaps victims, assigns remote slots. Returns unmapped frames via `out`.
  // `bspan` is the owning batch's span (accounting/unmap leaves attach to it).
  Task<size_t> PrepareVictims(int evictor_id, CoreId core, size_t batch,
                              std::vector<PageFrame*>* out, Breakdown* sync_attr = nullptr,
                              SpanHandle bspan = {});

  // Marks remote copies valid, counts clean reclaims, and returns how many
  // victims need an RDMA write.
  size_t CountDirtyForWriteback(const std::vector<PageFrame*>& victims);

  // Fleet-mode variant: returns the swap slots that need a replicated
  // writeback. A clean page whose slot has no live replica left (its holders
  // crashed) is rewritten too — the resident copy is the last one and the
  // write restores the desired replica set.
  std::vector<uint64_t> CollectWritebackSlots(const std::vector<PageFrame*>& victims);


  // Writes back dirty victims (returns the last completion, or nullptr if all
  // clean) and marks remote copies valid.
  std::shared_ptr<RdmaCompletion> PostWriteback(const std::vector<PageFrame*>& victims);

  KernelConfig config_;
  Topology& topo_;
  TlbShootdownManager& tlb_;
  RdmaNic& nic_;
  uint64_t local_pages_;
  uint64_t wss_pages_;
  uint64_t low_wm_, high_wm_, min_wm_;

  std::unique_ptr<FramePool> frames_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<PageAllocator> allocator_;
  std::unique_ptr<PageTable> pt_;
  std::unique_ptr<PageAccounting> accounting_;
  std::unique_ptr<VmaResolver> vma_;
  std::unique_ptr<SwapAllocator> swap_;  // null when direct-mapped
  DirectMapping direct_map_;
  std::unique_ptr<Prefetcher> prefetcher_;
  ResilienceManager* resilience_ = nullptr;  // owned by FarMemoryMachine
  TenancyManager* tenancy_ = nullptr;        // owned by FarMemoryMachine

  // Remote copy validity per vpn (clean reclaim optimization).
  std::vector<bool> remote_valid_;
  // Prefetched-but-not-yet-touched marker (prefetch hit stats).
  std::vector<bool> prefetched_;

  // Free-page pressure plumbing.
  SimEvent evictor_wake_{"evictor-wake"};
  SimEvent free_pages_available_{"free-pages"};
  bool FaultersWaitingForPages() const { return free_pages_available_.num_waiters() > 0; }

 public:
  // Debug introspection for harnesses/tests.
  size_t DebugFreeWaiters() const { return free_pages_available_.num_waiters(); }
  size_t DebugParkedEvictors() const { return evictor_wake_.num_waiters(); }
  uint64_t DebugPendingReclaims() const { return pending_reclaims_; }

 private:
  SimMutex rdma_stack_lock_{"rdma-stack"};
  SimMutex mm_locks_{"mm-locks"};
  int active_evictors_;  // feedback-controlled (<= num_evictors)
  bool started_ = false;

  // Pages isolated by evictors but not yet returned to the allocator;
  // counted into the pressure check so deep pipelines do not over-evict.
  uint64_t pending_reclaims_ = 0;

  // Lazy-TLB epoch plumbing: waiting on the event resumes at the next tick,
  // by which point every core has flushed.
  SimEvent lazy_epoch_{"lazy-epoch"};
  uint64_t lazy_epochs_ = 0;

  // Ideal-variant FIFO of resident vpns.
  std::deque<uint64_t> ideal_fifo_;

  KernelStats stats_;
  std::vector<uint64_t> faults_per_core_;
};

}  // namespace magesim

#endif  // MAGESIM_PAGING_KERNEL_H_
