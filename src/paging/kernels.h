// Preset KernelConfigs for the five systems compared in the paper, with the
// calibration rationale for every variant-specific cost (§3.2, §6).
#ifndef MAGESIM_PAGING_KERNELS_H_
#define MAGESIM_PAGING_KERNELS_H_

#include <string>
#include <vector>

#include "src/paging/config.h"

namespace magesim {

// The "ideal" analytical baseline: data movement only (§3.1).
KernelConfig IdealConfig();

// Hermit (NSDI '23): Linux swap path with feedback-directed async eviction.
// Runs on bare metal in the paper's testbed.
KernelConfig HermitConfig();

// DiLOS (EuroSys '23): OSv unikernel, unified page table, direct remote
// mapping, global physical-allocator mutex. Virtualized.
KernelConfig DilosConfig();

// MageLnx: Linux-based MAGE (§5.1). Virtualized; kernel RDMA stack.
KernelConfig MageLnxConfig();

// MageLib: OSv-based MAGE (§5.2). Virtualized; microkernel-style RDMA driver.
KernelConfig MageLibConfig();

// Fastswap (EuroSys '20, cited as prior work): Linux frontswap backend with
// reclaim offloaded to one dedicated core and direct-reclaim fallback. The
// generation before Hermit's feedback-directed asynchrony.
KernelConfig FastswapConfig();

KernelConfig ConfigByName(const std::string& name);

// All real systems (no ideal), in the paper's presentation order.
std::vector<KernelConfig> AllSystemConfigs();

}  // namespace magesim

#endif  // MAGESIM_PAGING_KERNELS_H_
