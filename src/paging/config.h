// Kernel variant configuration. Each paper system is a preset over these
// knobs (see kernels.h); ablation benches (Figs. 17/18) flip them one at a
// time.
#ifndef MAGESIM_PAGING_CONFIG_H_
#define MAGESIM_PAGING_CONFIG_H_

#include <string>

#include "src/sim/time.h"

namespace magesim {

enum class Variant { kIdeal, kHermit, kDilos, kMageLnx, kMageLib };

enum class AllocStrategy {
  kPcp,          // Linux per-CPU caches + global buddy lock
  kGlobalMutex,  // DiLOS single sleepable mutex
  kMultilayer,   // MAGE per-core cache -> shared queue -> buddy
};

enum class VmaMode { kNone, kLocked, kSharded };

// Page-replacement accounting implementations (§4.2.2 and cited
// alternatives). kPartitionedFifo is MAGE's; the rest are centralized
// policies with one lock.
enum class AccountingPolicy { kGlobalLru, kPartitionedFifo, kS3Fifo, kMgLru };

struct KernelConfig {
  Variant variant = Variant::kMageLib;
  std::string name = "magelib";

  // --- Eviction path ---
  int num_evictors = 4;
  // Hermit-style feedback-directed asynchrony: the number of *active*
  // evictors scales with fault pressure instead of being fixed.
  bool feedback_evictors = false;
  int evict_batch_pages = 256;
  // MAGE cross-batch pipelining (P2). Off = sequential batch eviction.
  bool pipelined_eviction = true;
  // Synchronous eviction fallback in the fault path (prior systems). MAGE
  // forbids it (P1).
  bool allow_sync_eviction = false;
  int sync_evict_batch = 32;
  // DiLOS-style wait-wake: evictors sleep and are woken by the fault path
  // (costs an IPI + context switch per wake).
  SimTime evictor_wake_cost_ns = 0;
  // Per-victim reclaim bookkeeping outside the modeled locks: Linux pays
  // try_to_unmap rmap walks, swap-cache insertion and cgroup uncharging per
  // page (heavy); unikernels only flip a PTE.
  SimTime evict_page_cost_ns = 60;

  // --- Page accounting (FP3 / EP1) ---
  AccountingPolicy accounting = AccountingPolicy::kPartitionedFifo;  // MAGE P3
  int accounting_partitions = 8;

  // --- Page circulation (FP1 / EP3) ---
  AllocStrategy allocator = AllocStrategy::kMultilayer;
  bool direct_remote_map = true;  // off = Linux swap-slot allocator

  // --- Fault-path costs (variant-specific software overhead) ---
  SimTime fault_entry_ns = 300;
  // Lumped per-fault OS bookkeeping outside the modeled locks: rmap, cgroup
  // charging, swap-cache maintenance (large for Hermit, tiny for unikernels).
  SimTime fault_extra_ns = 0;
  // Serialized section of per-fault mm bookkeeping under shared locks
  // (page-table lock + rmap + cgroup counters). Zero for unikernels.
  SimTime mm_locks_cs_ns = 0;
  // Host RDMA stack serialization per posted op (kernel verbs path); the
  // microkernel-style drivers of DiLOS/MageLib bypass it (§6.4).
  SimTime rdma_stack_cs_ns = 0;

  VmaMode vma_mode = VmaMode::kNone;

  // LATR/EcoTLB-style lazy TLB coherence (cited in §7): eviction defers
  // invalidation to a periodic reconciliation tick instead of sending IPIs;
  // freed frames only recirculate after the next tick. Trades reclaim
  // latency for zero shootdown traffic.
  bool lazy_tlb = false;
  SimTime lazy_tlb_period_ns = 50 * kMicrosecond;

  // --- Prefetching (pattern matching on fault addresses, §6.2) ---
  bool prefetch = false;
  int prefetch_window = 16;  // adaptive max read-ahead depth (Leap-style)

  // --- Watermarks (fractions of local frames) ---
  double low_watermark = 0.04;   // wake evictors below this
  double high_watermark = 0.10;  // evictors sleep above this
  // Sync-eviction trigger (Hermit/DiLOS): the fault path evicts inline when
  // free pages dip below this fraction.
  double min_watermark = 0.01;

  bool virtualized = false;
  // Guest compute slowdown vs. bare metal (EPT translations, table 2): the
  // virtualized presets run application compute ~4% slower.
  double compute_overhead_factor = 1.0;
};

}  // namespace magesim

#endif  // MAGESIM_PAGING_CONFIG_H_
