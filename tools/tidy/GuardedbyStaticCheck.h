// magesim-guardedby-static: lexical lock-scope matching for GuardedBy<T>
// fields.
//
// PR 4's lock-discipline analyzer enforces GuardedBy at *runtime*, on paths
// a test happens to execute. This check complements it at compile time:
//
//  * every `field.Locked()` access must appear in a function whose body
//    lexically acquires the field's declared mutex *before* the access —
//    `co_await m.Scoped()`, `co_await m.Acquire()`, `m.AssertHeld(...)`, or
//    a MAGESIM_ASSERT_HELD on it. The mutex is resolved from the GuardedBy
//    field's in-class initializer (`GuardedBy<T> f_{lock_};` -> `lock_`);
//    when it cannot be resolved, any lexical acquisition in scope counts.
//  * every `field.Unsafe()` escape must carry a justification: a comment on
//    the same line or the line directly above (the API doc already demands
//    one; this makes it enforced).
//
// Lexical matching cannot see callers (a helper that requires the lock held
// by contract): annotate such helpers' access sites with
// `// magesim-lint: allow(guardedby-static): <reason>` — typically "caller
// holds <lock>, asserted at entry".
#ifndef MAGESIM_TOOLS_TIDY_GUARDEDBY_STATIC_CHECK_H_
#define MAGESIM_TOOLS_TIDY_GUARDEDBY_STATIC_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace magesim {

class GuardedbyStaticCheck : public ClangTidyCheck {
 public:
  GuardedbyStaticCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const bool RequireUnsafeJustification;
};

}  // namespace magesim
}  // namespace tidy
}  // namespace clang

#endif  // MAGESIM_TOOLS_TIDY_GUARDEDBY_STATIC_CHECK_H_
