#include "UnorderedIterationCheck.h"

#include "LintAllow.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace magesim {

// Default sink vocabulary: golden-trace emission, metrics/report writers,
// victim selection, and growth of an ordered output sequence (building a
// result vector in hash order is the classic leak — callers serialize it).
static const char kDefaultSinkRegex[] =
    "^(TraceEmit|Emit.*|Record|Export.*|Report.*|Print.*|Write.*|KV|String|"
    "AppendRow|push_back|emplace_back|insert|emplace|SelectVictims?|"
    "IsolateVictims?)$";

UnorderedIterationCheck::UnorderedIterationCheck(StringRef Name,
                                                ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SinkRegexStr(Options.get("SinkRegex", kDefaultSinkRegex)),
      SinkRegex(SinkRegexStr) {}

void UnorderedIterationCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SinkRegex", SinkRegexStr);
}

void UnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  auto UnorderedRecord = classTemplateSpecializationDecl(hasAnyName(
      "::std::unordered_map", "::std::unordered_set",
      "::std::unordered_multimap", "::std::unordered_multiset"));
  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(qualType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(UnorderedRecord))))))))
          .bind("loop"),
      this);
}

void UnorderedIterationCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
  if (Loop == nullptr || Loop->getBody() == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = Loop->getBeginLoc();
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  if (LineHasAllow(SM, Loc, "unordered-iteration"))
    return;

  // Scan the loop body for calls whose callee name is a sink.
  const Stmt *Body = Loop->getBody();
  auto Calls = match(findAll(callExpr().bind("c")), *Body, *Result.Context);
  for (const auto &BN : Calls) {
    const auto *Call = BN.getNodeAs<CallExpr>("c");
    if (Call == nullptr)
      continue;
    const FunctionDecl *Callee = Call->getDirectCallee();
    if (Callee == nullptr)
      continue;
    if (const IdentifierInfo *II = Callee->getIdentifier()) {
      if (SinkRegex.match(II->getName())) {
        diag(Loc, "iteration over an unordered container feeds '%0' (trace/"
                  "metrics/victim-selection sink); hash order leaks into "
                  "output — iterate a sorted copy, use an ordered container, "
                  "or justify with '// magesim-lint: "
                  "allow(unordered-iteration): <reason>'")
            << II->getName();
        diag(Call->getBeginLoc(), "sink call is here", DiagnosticIDs::Note);
        return;  // one diagnostic per loop
      }
    }
  }
}

}  // namespace magesim
}  // namespace tidy
}  // namespace clang
