// magesim-coroutine-ref-capture: use-after-suspend hazards in coroutines.
//
// A coroutine frame outlives the call expression that created it. Anything
// the frame holds by reference — a by-reference lambda capture, a reference
// or pointer parameter — may dangle the moment the coroutine suspends and
// the creator's scope unwinds (the detached-Task pattern: Engine::Spawn).
//
// Flagged:
//  * lambda coroutines (body contains co_await) with a by-reference default
//    capture or any explicit by-reference/this capture;
//  * rvalue-reference parameters used after the first co_await (the bound
//    temporary dies with the caller's full-expression);
//  * lvalue-reference / pointer parameters used after the first co_await,
//    unless the pointee type is in LongLivedTypes — machine-lifetime objects
//    (Engine, Kernel, PageFrame, ...) that outlive every coroutine by
//    construction, the codebase's dominant safe idiom.
//
// "Used after the first co_await" is lexical (source order), matching the
// lite fallback; structured callers that co_await the child immediately keep
// the referent alive and annotate the remaining sites with
// `// magesim-lint: allow(coroutine-ref-capture): <reason>`.
#ifndef MAGESIM_TOOLS_TIDY_COROUTINE_REF_CAPTURE_CHECK_H_
#define MAGESIM_TOOLS_TIDY_COROUTINE_REF_CAPTURE_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

#include <vector>

namespace clang {
namespace tidy {
namespace magesim {

class CoroutineRefCaptureCheck : public ClangTidyCheck {
 public:
  CoroutineRefCaptureCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool IsLongLived(QualType Pointee) const;

  const bool CheckParameters;
  const std::string LongLivedTypesStr;
  std::vector<std::string> LongLivedTypes;
};

}  // namespace magesim
}  // namespace tidy
}  // namespace clang

#endif  // MAGESIM_TOOLS_TIDY_COROUTINE_REF_CAPTURE_CHECK_H_
