#include "CoroutineRefCaptureCheck.h"

#include "LintAllow.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/StringExtras.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace magesim {

// Machine-lifetime types: constructed before the engine runs, destroyed
// after it drains, so a reference held in any coroutine frame cannot
// dangle. Mirrors MAGESIM_LONG_LIVED_TYPES in magesim_tidy_lite.py.
static const char kDefaultLongLived[] =
    "Engine;Topology;TlbShootdownManager;RdmaNic;Kernel;FarMemoryMachine;"
    "TenancyManager;ResilienceManager;MemoryNode;FleetManager;"
    "RebuildDriver;AppThread;Workload;MachineParams;KernelConfig;SimMutex;"
    "SimEvent;SimSemaphore;SimCondVar;MetricsRegistry;MetricsSampler;"
    "SpanTracer;PageFrame;PageTable;PageAccounting;PageAllocator;FramePool;"
    "BuddyAllocator;SwapAllocator;VmaResolver;Prefetcher;CircuitBreaker;"
    "MemCgroup;LockAnalyzer;Rng;ZipfGenerator;FaultInjector;KernelStats;char";

CoroutineRefCaptureCheck::CoroutineRefCaptureCheck(StringRef Name,
                                                  ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      CheckParameters(Options.get("CheckParameters", true)),
      LongLivedTypesStr(Options.get("LongLivedTypes", kDefaultLongLived)) {
  llvm::SmallVector<llvm::StringRef, 32> Parts;
  llvm::StringRef(LongLivedTypesStr).split(Parts, ';', -1, false);
  for (llvm::StringRef P : Parts)
    LongLivedTypes.push_back(P.trim().str());
}

void CoroutineRefCaptureCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CheckParameters", CheckParameters);
  Options.store(Opts, "LongLivedTypes", LongLivedTypesStr);
}

void CoroutineRefCaptureCheck::registerMatchers(MatchFinder *Finder) {
  // Lambda coroutines with by-reference state.
  Finder->addMatcher(
      lambdaExpr(hasDescendant(coawaitExpr())).bind("lambda"), this);
  // Coroutine function definitions (body contains co_await).
  if (CheckParameters) {
    Finder->addMatcher(functionDecl(isDefinition(), hasBody(stmt()),
                                    hasDescendant(coawaitExpr()))
                           .bind("coro"),
                       this);
  }
}

bool CoroutineRefCaptureCheck::IsLongLived(QualType Pointee) const {
  // Word-scan the printed type so `const std::vector<PageFrame*>&` counts as
  // long-lived via its element type — a container of machine-lifetime
  // objects handed down the call chain is this codebase's dominant safe
  // idiom. Mirrors the lite fallback's behavior exactly.
  std::string Printed = Pointee.getAsString();
  llvm::StringRef S(Printed);
  size_t I = 0;
  while (I < S.size()) {
    if (!llvm::isAlpha(S[I]) && S[I] != '_') {
      ++I;
      continue;
    }
    size_t J = I;
    while (J < S.size() && (llvm::isAlnum(S[J]) || S[J] == '_'))
      ++J;
    llvm::StringRef Word = S.slice(I, J);
    for (const std::string &T : LongLivedTypes)
      if (Word == T)
        return true;
    I = J;
  }
  return false;
}

void CoroutineRefCaptureCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda")) {
    SourceLocation Loc = Lambda->getBeginLoc();
    if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
      return;
    if (LineHasAllow(SM, Loc, "coroutine-ref-capture"))
      return;
    if (Lambda->getCaptureDefault() == LCD_ByRef) {
      diag(Loc, "coroutine lambda captures by reference ([&]); captures may "
                "dangle after the first suspension — capture by value or "
                "justify with '// magesim-lint: allow(coroutine-ref-capture): "
                "<reason>'");
      return;
    }
    for (const LambdaCapture &Cap : Lambda->captures()) {
      if (!Cap.isExplicit())
        continue;
      if (Cap.getCaptureKind() == LCK_ByRef || Cap.getCaptureKind() == LCK_This) {
        diag(Cap.getLocation().isValid() ? Cap.getLocation() : Loc,
             "coroutine lambda holds a by-reference capture live across "
             "co_await; it may dangle after the first suspension");
        return;
      }
    }
    return;
  }

  const auto *Coro = Result.Nodes.getNodeAs<FunctionDecl>("coro");
  if (Coro == nullptr || !CheckParameters)
    return;
  const Stmt *Body = Coro->getBody();
  if (Body == nullptr)
    return;
  SourceLocation FnLoc = Coro->getBeginLoc();
  if (FnLoc.isInvalid() || SM.isInSystemHeader(FnLoc))
    return;

  // Earliest co_await in source order.
  auto Awaits = match(findAll(coawaitExpr().bind("aw")), *Body, *Result.Context);
  SourceLocation FirstAwait;
  for (const auto &BN : Awaits) {
    const auto *Aw = BN.getNodeAs<CoawaitExpr>("aw");
    if (Aw == nullptr)
      continue;
    SourceLocation L = SM.getExpansionLoc(Aw->getBeginLoc());
    if (FirstAwait.isInvalid() ||
        SM.isBeforeInTranslationUnit(L, FirstAwait))
      FirstAwait = L;
  }
  if (FirstAwait.isInvalid())
    return;

  for (const ParmVarDecl *P : Coro->parameters()) {
    QualType T = P->getType();
    QualType Pointee;
    bool RvalueRef = false;
    if (T->isRValueReferenceType()) {
      Pointee = T->getPointeeType();
      RvalueRef = true;
    } else if (T->isLValueReferenceType()) {
      Pointee = T->getPointeeType();
    } else if (T->isPointerType()) {
      Pointee = T->getPointeeType();
    } else {
      continue;  // by value: copied into the frame, safe
    }
    if (!RvalueRef && IsLongLived(Pointee))
      continue;
    // Any use lexically after the first co_await?
    auto Uses = match(
        findAll(declRefExpr(to(parmVarDecl(equalsNode(P)))).bind("use")),
        *Body, *Result.Context);
    for (const auto &BN : Uses) {
      const auto *Use = BN.getNodeAs<DeclRefExpr>("use");
      if (Use == nullptr)
        continue;
      SourceLocation UL = SM.getExpansionLoc(Use->getBeginLoc());
      if (!SM.isBeforeInTranslationUnit(UL, FirstAwait)) {
        if (LineHasAllow(SM, P->getLocation(), "coroutine-ref-capture") ||
            LineHasAllow(SM, FnLoc, "coroutine-ref-capture") ||
            LineHasAllow(SM, UL, "coroutine-ref-capture"))
          break;
        diag(P->getLocation(),
             "%0 parameter '%1' of a coroutine is used after a co_await; "
             "if this task is ever detached the referent may be gone — pass "
             "by value, use a machine-lifetime type, or justify with "
             "'// magesim-lint: allow(coroutine-ref-capture): <reason>'")
            << (RvalueRef ? "rvalue-reference"
                          : (T->isPointerType() ? "pointer" : "reference"))
            << P->getName();
        diag(UL, "first use after suspension is here", DiagnosticIDs::Note);
        break;
      }
    }
  }
}

}  // namespace magesim
}  // namespace tidy
}  // namespace clang
