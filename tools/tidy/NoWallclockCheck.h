// magesim-no-wallclock: ban wall-clock and ambient-entropy sources in
// simulation code.
//
// The determinism contract (docs/INTERNALS.md §4) requires byte-identical
// traces for a given seed. Any read of host time or host entropy breaks it
// silently: std::chrono::{system,steady,high_resolution}_clock::now(),
// time(), clock(), gettimeofday(), rand()/srand(), std::random_device.
// Simulation code must use SimTime (Engine::now) and the seeded magesim::Rng.
//
// Allowlist: the bench harness "wall" metric group and the rdtsc profiler
// (prof_counters) measure the host on purpose; they match AllowedFilesRegex.
// Site-level escapes use `// magesim-lint: allow(no-wallclock): <reason>`.
#ifndef MAGESIM_TOOLS_TIDY_NO_WALLCLOCK_CHECK_H_
#define MAGESIM_TOOLS_TIDY_NO_WALLCLOCK_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace magesim {

class NoWallclockCheck : public ClangTidyCheck {
 public:
  NoWallclockCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool InAllowedFile(const SourceManager &SM, SourceLocation Loc);

  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

}  // namespace magesim
}  // namespace tidy
}  // namespace clang

#endif  // MAGESIM_TOOLS_TIDY_NO_WALLCLOCK_CHECK_H_
