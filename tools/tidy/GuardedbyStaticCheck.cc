#include "GuardedbyStaticCheck.h"

#include "LintAllow.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"
#include "llvm/ADT/StringExtras.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace magesim {

GuardedbyStaticCheck::GuardedbyStaticCheck(StringRef Name,
                                           ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RequireUnsafeJustification(
          Options.get("RequireUnsafeJustification", true)) {}

void GuardedbyStaticCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "RequireUnsafeJustification", RequireUnsafeJustification);
}

void GuardedbyStaticCheck::registerMatchers(MatchFinder *Finder) {
  auto GuardedByClass = cxxRecordDecl(hasName("GuardedBy"));
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasName("Locked"),
                                             ofClass(GuardedByClass))),
                        forFunction(functionDecl().bind("f")))
          .bind("locked"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasName("Unsafe"),
                                             ofClass(GuardedByClass))))
          .bind("unsafe"),
      this);
}

// The member the GuardedBy field names as its mutex, from the field's
// in-class initializer (`GuardedBy<T> f_{lock_};`). Empty when the
// initializer is absent or does not name a member/variable directly.
static std::string MutexNameOfField(const Expr *BaseOfCall,
                                    ASTContext &Ctx) {
  const auto *ME = dyn_cast_or_null<MemberExpr>(
      BaseOfCall != nullptr ? BaseOfCall->IgnoreParenImpCasts() : nullptr);
  if (ME == nullptr)
    return {};
  const auto *FD = dyn_cast_or_null<FieldDecl>(ME->getMemberDecl());
  if (FD == nullptr || !FD->hasInClassInitializer())
    return {};
  const Expr *Init = FD->getInClassInitializer();
  if (Init == nullptr)
    return {};
  // First named reference inside the initializer is the mutex argument.
  auto Refs = match(
      findAll(expr(anyOf(memberExpr().bind("m"), declRefExpr().bind("d")))),
      *Init, Ctx);
  for (const auto &BN : Refs) {
    if (const auto *M = BN.getNodeAs<MemberExpr>("m"))
      if (const ValueDecl *VD = M->getMemberDecl())
        return VD->getNameAsString();
    if (const auto *D = BN.getNodeAs<DeclRefExpr>("d"))
      if (const ValueDecl *VD = D->getDecl())
        return VD->getNameAsString();
  }
  return {};
}

void GuardedbyStaticCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  const LangOptions &LO = Result.Context->getLangOpts();

  if (const auto *Unsafe =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("unsafe")) {
    if (!RequireUnsafeJustification)
      return;
    SourceLocation Loc = Unsafe->getBeginLoc();
    if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
      return;
    if (LineHasAllow(SM, Loc, "guardedby-static"))
      return;
    // Any adjacent comment counts as the justification the Unsafe() API
    // doc demands.
    SourceLocation Exp = SM.getExpansionLoc(Loc);
    FileID FID = SM.getFileID(Exp);
    unsigned Line = SM.getExpansionLineNumber(Exp);
    auto HasComment = [&](unsigned L) {
      llvm::StringRef T = FileLineText(SM, FID, L);
      return T.contains("//") || T.contains("/*");
    };
    if (HasComment(Line) || (Line > 1 && HasComment(Line - 1)))
      return;
    diag(Loc, "unchecked GuardedBy access (.Unsafe()) without an adjacent "
              "justification comment; say why lock-free access is safe here");
    return;
  }

  const auto *Locked = Result.Nodes.getNodeAs<CXXMemberCallExpr>("locked");
  const auto *F = Result.Nodes.getNodeAs<FunctionDecl>("f");
  if (Locked == nullptr || F == nullptr || F->getBody() == nullptr)
    return;
  SourceLocation Loc = Locked->getBeginLoc();
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  if (LineHasAllow(SM, Loc, "guardedby-static"))
    return;

  std::string Mutex =
      MutexNameOfField(Locked->getImplicitObjectArgument(), *Result.Context);

  // Function-body text from the opening brace up to the access: the guard
  // must be acquired (or asserted) lexically before the guarded access.
  SourceLocation BodyBegin = SM.getExpansionLoc(F->getBody()->getBeginLoc());
  SourceLocation AccessLoc = SM.getExpansionLoc(Loc);
  if (!SM.isBeforeInTranslationUnit(BodyBegin, AccessLoc))
    return;
  CharSourceRange Range = CharSourceRange::getCharRange(BodyBegin, AccessLoc);
  llvm::StringRef Before = Lexer::getSourceText(Range, SM, LO);

  // Token-anchored contains: `mu_.Scoped` must not match inside
  // `other_mu_.Scoped`. Mirrors the lite fallback.
  auto ContainsToken = [&](llvm::StringRef Needle) {
    size_t Pos = 0;
    while ((Pos = Before.find(Needle, Pos)) != llvm::StringRef::npos) {
      if (Pos == 0 || (!llvm::isAlnum(Before[Pos - 1]) &&
                       Before[Pos - 1] != '_'))
        return true;
      ++Pos;
    }
    return false;
  };
  auto Acquires = [&](llvm::StringRef Name) {
    return ContainsToken((Name + ".Scoped").str()) ||
           ContainsToken((Name + ".Acquire").str()) ||
           ContainsToken((Name + ".AssertHeld").str()) ||
           Before.contains(("MAGESIM_ASSERT_HELD(" + Name).str()) ||
           Before.contains(("MAGESIM_GUARDED_BY(" + Name).str());
  };
  bool Held;
  if (!Mutex.empty()) {
    Held = Acquires(Mutex);
  } else {
    // Mutex unresolvable: accept any lexical acquisition in scope.
    Held = Before.contains(".Scoped") || Before.contains(".Acquire") ||
           Before.contains("AssertHeld") ||
           Before.contains("MAGESIM_ASSERT_HELD") ||
           Before.contains("MAGESIM_GUARDED_BY");
  }
  if (Held)
    return;
  diag(Loc, "GuardedBy field accessed via Locked() but no acquisition of "
            "'%0' is lexically in scope before it; take the lock "
            "(co_await %0.Scoped()), assert it, or justify with "
            "'// magesim-lint: allow(guardedby-static): <reason>'")
      << (Mutex.empty() ? StringRef("its mutex") : StringRef(Mutex));
}

}  // namespace magesim
}  // namespace tidy
}  // namespace clang
