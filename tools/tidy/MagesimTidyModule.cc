// magesim-tidy: the project's clang-tidy module (loaded with
// `clang-tidy -load libMagesimTidy.so -checks=magesim-*`).
//
// Five checks encode invariants no stock tool knows about — determinism
// (no-wallclock, unordered-iteration), coroutine lifetime
// (coroutine-ref-capture), hot-path allocation discipline (hotpath-alloc),
// and static GuardedBy enforcement (guardedby-static). Catalog and
// allowlist policy: docs/INTERNALS.md §15.
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "CoroutineRefCaptureCheck.h"
#include "GuardedbyStaticCheck.h"
#include "HotpathAllocCheck.h"
#include "NoWallclockCheck.h"
#include "UnorderedIterationCheck.h"

namespace clang {
namespace tidy {
namespace magesim {

class MagesimModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NoWallclockCheck>("magesim-no-wallclock");
    Factories.registerCheck<UnorderedIterationCheck>(
        "magesim-unordered-iteration");
    Factories.registerCheck<CoroutineRefCaptureCheck>(
        "magesim-coroutine-ref-capture");
    Factories.registerCheck<HotpathAllocCheck>("magesim-hotpath-alloc");
    Factories.registerCheck<GuardedbyStaticCheck>("magesim-guardedby-static");
  }
};

}  // namespace magesim

// Register the module with clang-tidy's global registry at load time.
static ClangTidyModuleRegistry::Add<magesim::MagesimModule>
    X("magesim-module", "Adds magesim-specific determinism/coroutine/"
                        "hot-path/locking checks.");

}  // namespace tidy
}  // namespace clang

// Anchor so the shared object exports at least one symbol unconditionally.
volatile int MagesimTidyModuleAnchorSource = 0;
