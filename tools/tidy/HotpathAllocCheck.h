// magesim-hotpath-alloc: allocation discipline inside MAGESIM_HOT_PATH
// functions.
//
// PR 6's perf scoreboard rests on the fault/evict hot path staying
// allocation-free in steady state: coroutine frames come from the slab,
// queues are flat pre-reserved rings, accounting lists are intrusive. This
// check makes the discipline a compile-time property for every function
// annotated MAGESIM_HOT_PATH (src/sim/hot_path.h =
// [[clang::annotate("magesim_hot_path")]]):
//
//  * new-expressions;
//  * std::make_shared / std::make_unique (std::allocate_shared with the
//    SlabStdAllocator is the sanctioned replacement and stays silent);
//  * growth-capable mutation of std containers (push_back, emplace_back,
//    emplace, insert, resize, reserve, append, push_front) — receivers whose
//    class matches AllowedContainersRegex (magesim's own no-steady-state-
//    alloc structures) are exempt.
//
// Deliberate exceptions carry
// `// magesim-lint: allow(hotpath-alloc): <reason>`.
#ifndef MAGESIM_TOOLS_TIDY_HOTPATH_ALLOC_CHECK_H_
#define MAGESIM_TOOLS_TIDY_HOTPATH_ALLOC_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace magesim {

class HotpathAllocCheck : public ClangTidyCheck {
 public:
  HotpathAllocCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string AllowedContainersRegexStr;
  llvm::Regex AllowedContainersRegex;
};

}  // namespace magesim
}  // namespace tidy
}  // namespace clang

#endif  // MAGESIM_TOOLS_TIDY_HOTPATH_ALLOC_CHECK_H_
