// Shared inline-allowlist support for the magesim clang-tidy checks.
//
// Every magesim-* check honors the repo's own suppression syntax in addition
// to clang-tidy's NOLINT:
//
//   stats_.push_back(x);  // magesim-lint: allow(hotpath-alloc): reserve()d
//
// The annotation may sit on the flagged line or anywhere in the contiguous
// block of comment-only lines directly above it (so a justification can wrap
// onto several lines). The parenthesized list names one or more check slugs
// (the check name minus the "magesim-" prefix) or "all". Everything after
// the closing paren is the human justification — required by review policy
// (docs/INTERNALS.md §15), not by the tool.
//
// The same syntax is understood by tools/tidy/magesim_tidy_lite.py so a
// single annotation satisfies both the plugin and the fallback analyzer.
#ifndef MAGESIM_TOOLS_TIDY_LINT_ALLOW_H_
#define MAGESIM_TOOLS_TIDY_LINT_ALLOW_H_

#include <cstring>

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace magesim {

inline llvm::StringRef FileLineText(const SourceManager &SM, FileID FID,
                                    unsigned Line) {
  if (Line == 0)
    return {};
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(FID, &Invalid);
  if (Invalid)
    return {};
  SourceLocation Start = SM.translateLineCol(FID, Line, 1);
  if (Start.isInvalid())
    return {};
  unsigned Off = SM.getFileOffset(Start);
  if (Off >= Buf.size())
    return {};
  size_t End = Buf.find('\n', Off);
  return Buf.slice(Off, End == llvm::StringRef::npos ? Buf.size() : End);
}

inline bool TextAllows(llvm::StringRef Text, llvm::StringRef Slug) {
  static constexpr char kTag[] = "magesim-lint: allow(";
  size_t P = Text.find(kTag);
  if (P == llvm::StringRef::npos)
    return false;
  llvm::StringRef Rest = Text.substr(P + std::strlen(kTag));
  size_t Close = Rest.find(')');
  if (Close == llvm::StringRef::npos)
    return false;
  llvm::StringRef List = Rest.take_front(Close);
  llvm::SmallVector<llvm::StringRef, 4> Parts;
  List.split(Parts, ',');
  for (llvm::StringRef Part : Parts) {
    Part = Part.trim();
    if (Part == Slug || Part == "all")
      return true;
  }
  return false;
}

// True when the physical line holding `Loc` — or any line in the contiguous
// run of comment-only lines directly above it — carries a
// `magesim-lint: allow(<slug>)` annotation covering `Slug`.
inline bool LineHasAllow(const SourceManager &SM, SourceLocation Loc,
                         llvm::StringRef Slug) {
  if (Loc.isInvalid())
    return false;
  SourceLocation Exp = SM.getExpansionLoc(Loc);
  FileID FID = SM.getFileID(Exp);
  unsigned Line = SM.getExpansionLineNumber(Exp);
  if (TextAllows(FileLineText(SM, FID, Line), Slug))
    return true;
  while (Line > 1) {
    --Line;
    llvm::StringRef Text = FileLineText(SM, FID, Line);
    if (TextAllows(Text, Slug))
      return true;
    // Stop at the first non-comment line. Spelled without
    // StringRef::starts_with/startswith: neither exists across all of
    // LLVM 14..19.
    llvm::StringRef T = Text.ltrim();
    if (T.size() < 2 || T[0] != '/' || T[1] != '/')
      return false;
  }
  return false;
}

}  // namespace magesim
}  // namespace tidy
}  // namespace clang

#endif  // MAGESIM_TOOLS_TIDY_LINT_ALLOW_H_
