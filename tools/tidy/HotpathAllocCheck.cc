#include "HotpathAllocCheck.h"

#include "LintAllow.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace magesim {

static bool IsHotPath(const FunctionDecl *FD) {
  if (FD == nullptr)
    return false;
  for (const FunctionDecl *RD : FD->redecls())
    for (const auto *A : RD->specific_attrs<AnnotateAttr>())
      if (A->getAnnotation() == "magesim_hot_path")
        return true;
  return false;
}

HotpathAllocCheck::HotpathAllocCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedContainersRegexStr(Options.get(
          "AllowedContainersRegex",
          "^(RingQueue|DAryHeap|IntrusiveList|VpnSet|SlabAllocator|"
          "FixedVector|Histogram|Breakdown)$")),
      AllowedContainersRegex(AllowedContainersRegexStr) {}

void HotpathAllocCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedContainersRegex", AllowedContainersRegexStr);
}

void HotpathAllocCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxNewExpr(forFunction(functionDecl().bind("f"))).bind("new"), this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::std::make_shared", "::std::make_unique"))),
               forFunction(functionDecl().bind("f")))
          .bind("make"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("push_back", "emplace_back",
                                          "emplace", "insert", "resize",
                                          "reserve", "append", "push_front"))),
          forFunction(functionDecl().bind("f")))
          .bind("grow"),
      this);
}

void HotpathAllocCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *F = Result.Nodes.getNodeAs<FunctionDecl>("f");
  if (!IsHotPath(F))
    return;
  const SourceManager &SM = *Result.SourceManager;

  const Expr *Site = nullptr;
  StringRef Kind;
  if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    Site = New;
    Kind = "new-expression";
  } else if (const auto *Make = Result.Nodes.getNodeAs<CallExpr>("make")) {
    Site = Make;
    Kind = "make_shared/make_unique";
  } else if (const auto *Grow =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("grow")) {
    // Exempt magesim's own flat structures: their growth paths are
    // amortized/pre-reserved by contract and individually tested.
    const CXXRecordDecl *RD = Grow->getRecordDecl();
    if (RD != nullptr && AllowedContainersRegex.match(RD->getName()))
      return;
    Site = Grow;
    Kind = "growth-capable container mutation";
  }
  if (Site == nullptr)
    return;
  SourceLocation Loc = Site->getBeginLoc();
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  if (LineHasAllow(SM, Loc, "hotpath-alloc"))
    return;
  diag(Loc, "%0 inside MAGESIM_HOT_PATH function '%1'; the fault/evict hot "
            "path must not allocate in steady state — use the slab allocator "
            "/ pre-reserved flat structures, or justify with "
            "'// magesim-lint: allow(hotpath-alloc): <reason>'")
      << Kind << (F->getIdentifier() ? F->getName() : StringRef("<function>"));
}

}  // namespace magesim
}  // namespace tidy
}  // namespace clang
