#include "NoWallclockCheck.h"

#include "LintAllow.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace magesim {

NoWallclockCheck::NoWallclockCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(Options.get(
          "AllowedFilesRegex",
          "(^|/)(bench|tests|tools|examples)/|prof_counters|perf_common")),
      AllowedFiles(AllowedFilesRegex) {}

void NoWallclockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void NoWallclockCheck::registerMatchers(MatchFinder *Finder) {
  // C-library wall-clock / entropy entry points. Both the global and the
  // std:: spellings resolve to the same redeclarations.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::std::time", "::clock", "::std::clock",
                   "::gettimeofday", "::clock_gettime", "::localtime",
                   "::gmtime", "::rand", "::std::rand", "::srand",
                   "::std::srand", "::random", "::drand48", "::getentropy"))))
          .bind("call"),
      this);
  // std::chrono wall clocks: any call to <clock>::now().
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasName("now"),
                   hasDeclContext(cxxRecordDecl(hasAnyName(
                       "::std::chrono::system_clock",
                       "::std::chrono::steady_clock",
                       "::std::chrono::high_resolution_clock"))))))
          .bind("clock"),
      this);
  // std::random_device: flagged at construction (every use needs one).
  Finder->addMatcher(
      cxxConstructExpr(hasType(cxxRecordDecl(hasName("::std::random_device"))))
          .bind("rd"),
      this);
}

bool NoWallclockCheck::InAllowedFile(const SourceManager &SM,
                                     SourceLocation Loc) {
  StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  return !File.empty() && AllowedFiles.match(File);
}

void NoWallclockCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  const Expr *E = nullptr;
  StringRef What;
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    E = Call;
    if (const FunctionDecl *FD = Call->getDirectCallee())
      What = FD->getName();
  } else if (const auto *Clock = Result.Nodes.getNodeAs<CallExpr>("clock")) {
    E = Clock;
    What = "std::chrono clock ::now";
  } else if (const auto *RD = Result.Nodes.getNodeAs<CXXConstructExpr>("rd")) {
    E = RD;
    What = "std::random_device";
  }
  if (E == nullptr)
    return;
  SourceLocation Loc = E->getBeginLoc();
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  if (InAllowedFile(SM, Loc) || LineHasAllow(SM, Loc, "no-wallclock"))
    return;
  diag(Loc, "wall-clock/entropy source '%0' in simulation code; use SimTime "
            "(Engine::now) or the seeded magesim::Rng, or justify with "
            "'// magesim-lint: allow(no-wallclock): <reason>'")
      << What;
}

}  // namespace magesim
}  // namespace tidy
}  // namespace clang
