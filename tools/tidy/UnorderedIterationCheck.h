// magesim-unordered-iteration: flag range-for loops over unordered
// containers whose bodies reach trace sinks, metrics/report export, or
// victim selection.
//
// Iterating an unordered_map/unordered_set visits elements in pointer/hash
// order — stable within one run but not across allocator or libstdc++
// changes, so any such order leaking into the golden trace stream, a
// metrics/report file, or an eviction victim list is a latent determinism
// break. Order-independent bodies (summing a counter, freeing every node)
// are fine and stay silent.
//
// "Reaches a sink" is approximated as: the loop body (transitively, at the
// AST level of this translation unit) contains a call whose callee name
// matches SinkRegex. That is deliberately lexical — same contract as the
// lite fallback — and tuned to this codebase's sink vocabulary.
#ifndef MAGESIM_TOOLS_TIDY_UNORDERED_ITERATION_CHECK_H_
#define MAGESIM_TOOLS_TIDY_UNORDERED_ITERATION_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace magesim {

class UnorderedIterationCheck : public ClangTidyCheck {
 public:
  UnorderedIterationCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string SinkRegexStr;
  llvm::Regex SinkRegex;
};

}  // namespace magesim
}  // namespace tidy
}  // namespace clang

#endif  // MAGESIM_TOOLS_TIDY_UNORDERED_ITERATION_CHECK_H_
