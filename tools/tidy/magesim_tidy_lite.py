#!/usr/bin/env python3
"""magesim-tidy-lite: toolchain-free fallback for the magesim clang-tidy
checks.

Implements heuristic (lexical) versions of the five magesim-* checks so the
project's invariants are enforced even on machines without LLVM/Clang dev
packages — including this repo's plain-gcc CI legs and the ctest lint suite:

  magesim-no-wallclock          wall-clock/entropy sources in sim code
  magesim-unordered-iteration   unordered-container iteration feeding
                                trace/metrics/report/victim sinks
  magesim-coroutine-ref-capture by-ref lambda captures / ref-or-pointer
                                params live across co_await
  magesim-hotpath-alloc         allocation inside MAGESIM_HOT_PATH functions
  magesim-guardedby-static      GuardedBy<T>.Locked() without a lexical lock
                                acquisition in scope; Unsafe() without a
                                justification comment

The authoritative implementations live in tools/tidy/*.cc (the clang-tidy
plugin); this file mirrors their defaults and their suppression syntax:

  <code>  // magesim-lint: allow(<slug>[, <slug>...]): <reason>

on the flagged line or the line directly above, plus clang-tidy style
NOLINT / NOLINT(magesim-<slug>) / NOLINTNEXTLINE.

Output mimics clang-tidy's normalized finding lines so
tools/run_clang_tidy.sh-style diff gating works unchanged:

  path:line:col: warning: <message> [magesim-<slug>]

Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import bisect
import os
import re
import sys

CHECKS = (
    "no-wallclock",
    "unordered-iteration",
    "coroutine-ref-capture",
    "hotpath-alloc",
    "guardedby-static",
)

# Mirrors NoWallclockCheck's AllowedFilesRegex default.
WALLCLOCK_ALLOWED_FILES = re.compile(
    r"(^|/)(bench|tests|tools|examples)/|prof_counters|perf_common")

# Mirrors UnorderedIterationCheck's SinkRegex default (callee names). \b not
# a stricter lookbehind: sinks are usually member calls (`out->push_back(`).
SINK_RE = re.compile(
    r"\b(?:TraceEmit|Emit\w*|Record|Export\w*|Report\w*|Print\w*|"
    r"Write\w*|KV|String|AppendRow|push_back|emplace_back|insert|emplace|"
    r"SelectVictims?|IsolateVictims?)\s*\(")

# Mirrors CoroutineRefCaptureCheck's LongLivedTypes default (machine-lifetime
# classes: built before the engine runs, torn down after it drains), plus
# `char` (string literals live forever).
LONG_LIVED_TYPES = {
    "Engine", "Topology", "TlbShootdownManager", "RdmaNic", "Kernel",
    "FarMemoryMachine", "TenancyManager", "ResilienceManager", "MemoryNode",
    "FleetManager", "RebuildDriver", "AppThread", "Workload",
    "MachineParams", "KernelConfig", "SimMutex", "SimEvent", "SimSemaphore",
    "SimCondVar", "MetricsRegistry", "MetricsSampler", "SpanTracer",
    "PageFrame", "PageTable", "PageAccounting", "PageAllocator", "FramePool",
    "BuddyAllocator", "SwapAllocator", "VmaResolver", "Prefetcher",
    "CircuitBreaker", "MemCgroup", "LockAnalyzer", "Rng", "ZipfGenerator",
    "FaultInjector", "KernelStats", "char",
}

# Mirrors HotpathAllocCheck's AllowedContainersRegex: magesim structures
# whose growth is amortized/pre-reserved by contract. The lite checker can't
# resolve receiver types, so it exempts receivers *declared in the same file*
# with one of these types.
ALLOWED_CONTAINER_TYPES = (
    "RingQueue", "DAryHeap", "IntrusiveList", "VpnSet", "SlabAllocator",
    "FixedVector", "Histogram", "Breakdown",
)

GROWTH_METHODS = (
    "push_back", "emplace_back", "emplace", "insert", "resize", "reserve",
    "append", "push_front",
)


class Finding:
    def __init__(self, path, line, col, slug, message):
        self.path = path
        self.line = line
        self.col = col
        self.slug = slug
        self.message = message

    def render(self):
        return "%s:%d:%d: warning: %s [magesim-%s]" % (
            self.path, self.line, self.col, self.message, self.slug)

    def normalized(self):
        return "%s:%d [magesim-%s]" % (self.path, self.line, self.slug)


def strip_code(text):
    """Blanks comments and string/char literal contents, preserving offsets
    and newlines exactly."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum()):
            m = re.match(r'R"([^(\s"]{0,16})\(', text[i:])
            if m is None:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j < 0 else j
            for k in range(i, j + len(close)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + len(close)
        elif c == '"' or c == "'":
            # char literal heuristic: skip digit separators like 1'000.
            if c == "'" and i > 0 and text[i - 1].isdigit():
                i += 1
                continue
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c or text[j] == "\n":
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n - 1) + 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.raw = text
        self.code = strip_code(text)
        self.raw_lines = text.split("\n")
        self.line_starts = [0]
        for m in re.finditer("\n", text):
            self.line_starts.append(m.end())
        self._functions = None

    def line_of(self, offset):
        return bisect.bisect_right(self.line_starts, offset)

    def col_of(self, offset):
        line = self.line_of(offset)
        return offset - self.line_starts[line - 1] + 1

    def raw_line(self, lineno):
        if 1 <= lineno <= len(self.raw_lines):
            return self.raw_lines[lineno - 1]
        return ""

    def allowed(self, lineno, slug):
        """magesim-lint allow on `lineno` or the contiguous comment block
        directly above it (multi-line justifications); NOLINT on `lineno` /
        NOLINTNEXTLINE on the line above. Mirrors LintAllow.h."""

        def allow_in(text):
            m = re.search(r"magesim-lint:\s*allow\(([^)]*)\)", text)
            if m is None:
                return False
            slugs = [s.strip() for s in m.group(1).split(",")]
            return slug in slugs or "all" in slugs

        if allow_in(self.raw_line(lineno)):
            return True
        probe = lineno - 1
        while probe >= 1:
            text = self.raw_line(probe)
            if allow_in(text):
                return True
            if not text.lstrip().startswith("//"):
                break
            probe -= 1
        for lineno2, tag in ((lineno, "NOLINT"), (lineno - 1, "NOLINTNEXTLINE")):
            text = self.raw_line(lineno2)
            m = re.search(tag + r"(\(([^)]*)\))?", text)
            if m is not None:
                if m.group(2) is None:
                    return True
                names = [s.strip() for s in m.group(2).split(",")]
                if ("magesim-" + slug) in names or "magesim-*" in names:
                    return True
        return False

    def functions(self):
        """Brace-matched candidate function regions:
        (header_start, header, params, body_start, body_end)."""
        if self._functions is not None:
            return self._functions
        regions = []
        stack = []
        boundary = 0
        code = self.code
        i, n = 0, len(code)
        while i < n:
            c = code[i]
            if c == "{":
                stack.append((i, boundary))
                boundary = i + 1
            elif c == "}":
                if stack:
                    start, hdr_start = stack.pop()
                    regions.append((hdr_start, start, i))
                boundary = i + 1
            elif c == ";":
                boundary = i + 1
            i += 1
        funcs = []
        for hdr_start, body_start, body_end in regions:
            header = code[hdr_start:body_start]
            params = _function_params(header)
            if params is None:
                continue
            funcs.append((hdr_start, header, params, body_start, body_end))
        funcs.sort(key=lambda f: f[3])
        self._functions = funcs
        return funcs

    def enclosing_function(self, offset):
        best = None
        for f in self.functions():
            if f[3] < offset <= f[4]:
                if best is None or f[3] > best[3]:
                    best = f
        return best


_NOT_FUNCTION_HEAD = re.compile(
    r"^\s*(if|for|while|switch|catch|do|else|return|struct|class|namespace|"
    r"union|enum|case|default|new|delete|co_return|co_yield|using|typedef|"
    r"static_assert|public|private|protected)\b")


def _function_params(header):
    """Parameter-list text if `header` looks like a function definition
    header, else None."""
    h = header.strip()
    # The first member after an access specifier has `public:` etc. in its
    # header (no ';'/'{' boundary in between); peel the label off.
    h = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+\s*", "", h)
    if not h or "(" not in h:
        return None
    if _NOT_FUNCTION_HEAD.match(h):
        return None
    # Lambdas are handled separately.
    if re.match(r"^\[[^\[]", h):
        return None
    # Initializer-ish headers: `= {`, `return x ? a : b`, designated inits.
    if h.endswith("=") or h.endswith(",") or h.endswith("("):
        return None
    # Find the last top-level '(' ... ')' group; the header may end with
    # qualifiers (const, noexcept, override, -> T, : mem-init list).
    depth = 0
    close = -1
    for i in range(len(h) - 1, -1, -1):
        c = h[i]
        if c == ")":
            if depth == 0:
                close = i
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0:
                after = h[close + 1:]
                if re.fullmatch(
                        r"(\s|const|noexcept|override|final|mutable|&&?|"
                        r"->\s*[\w:<>,&*\s]+|:\s*[^{]*)*", after):
                    before = h[:i].rstrip()
                    # Need an identifier (function name) right before '('.
                    if re.search(r"[\w>\]]$", before) and not before.endswith(
                            "operator"):
                        return h[i + 1:close]
                return None
    return None


def split_params(params):
    out, depth, cur = [], 0, []
    for c in params:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        out.append("".join(cur))
    return [p.strip() for p in out if p.strip()]


def match_angle(text, open_idx):
    """Offset just past the '>' matching the '<' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


# --- Check 1: magesim-no-wallclock -----------------------------------------

WALLCLOCK_RES = (
    re.compile(r"std\s*::\s*chrono\s*::\s*"
               r"(system_clock|steady_clock|high_resolution_clock)"),
    re.compile(r"std\s*::\s*random_device|(?<![\w.:>])random_device\s+\w"),
    re.compile(r"(?<![\w.>])(time|clock|gettimeofday|clock_gettime|"
               r"localtime|gmtime|rand|srand|random|drand48|getentropy)"
               r"\s*\("),
)


# A banned name preceded by `identifier whitespace` is a declaration
# (`uint64_t time(uint64_t)`), not a call — unless the identifier is a
# keyword that can precede a call expression. The plugin only matches
# callExpr, so declarations must not fire here either.
_DECLARATIONISH_RE = re.compile(r"([A-Za-z_]\w*)[ \t]+$")
_CALL_KEYWORDS = {"return", "co_return", "co_yield", "co_await", "case",
                  "throw", "else", "do", "and", "or", "not"}


def check_no_wallclock(sf, findings):
    if WALLCLOCK_ALLOWED_FILES.search(sf.path):
        return
    for regex in WALLCLOCK_RES:
        for m in regex.finditer(sf.code):
            if regex is WALLCLOCK_RES[-1]:
                pre = sf.code[max(0, m.start() - 80):m.start()]
                dm = _DECLARATIONISH_RE.search(pre)
                if dm is not None and dm.group(1) not in _CALL_KEYWORDS:
                    continue
            line = sf.line_of(m.start())
            if sf.allowed(line, "no-wallclock"):
                continue
            what = (m.group(1) if m.lastindex else m.group(0)).strip()
            findings.append(Finding(
                sf.path, line, sf.col_of(m.start()), "no-wallclock",
                "wall-clock/entropy source '%s' in simulation code; use "
                "SimTime (Engine::now) or the seeded magesim::Rng" % what))


# --- Check 2: magesim-unordered-iteration ----------------------------------

UNORDERED_DECL_RE = re.compile(r"unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"(?<!\w)for\s*\(")


def unordered_names(sf):
    names = set()
    code = sf.code
    for m in UNORDERED_DECL_RE.finditer(code):
        open_idx = code.index("<", m.start())
        end = match_angle(code, open_idx)
        if end < 0:
            continue
        nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", code[end:])
        if nm is not None:
            names.add(nm.group(1))
    return names


def check_unordered_iteration(sf, findings):
    names = unordered_names(sf)
    code = sf.code
    for m in RANGE_FOR_RE.finditer(code):
        open_paren = code.index("(", m.start())
        depth, i = 0, open_paren
        close_paren = -1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    close_paren = i
                    break
            i += 1
        if close_paren < 0:
            continue
        inside = code[open_paren + 1:close_paren]
        if ";" in inside or ":" not in inside:
            continue  # classic for / no range-for
        range_expr = inside.rsplit(":", 1)[1]
        hit = "unordered" in range_expr or any(
            re.search(r"(?<![\w.])%s\b" % re.escape(n), range_expr)
            for n in names)
        if not hit:
            continue
        # Loop body: block or single statement.
        rest = code[close_paren + 1:]
        stripped = rest.lstrip()
        if stripped.startswith("{"):
            body_open = close_paren + 1 + (len(rest) - len(stripped))
            body_close = match_brace(code, body_open)
            body = code[body_open:body_close] if body_close > 0 else ""
        else:
            semi = rest.find(";")
            body = rest[:semi] if semi >= 0 else rest
        sink = SINK_RE.search(body)
        if sink is None:
            continue
        line = sf.line_of(m.start())
        if sf.allowed(line, "unordered-iteration"):
            continue
        findings.append(Finding(
            sf.path, line, sf.col_of(m.start()), "unordered-iteration",
            "iteration over an unordered container feeds '%s' (trace/"
            "metrics/victim-selection sink); hash order leaks into output" %
            sink.group(0).rstrip("( \t")))


# --- Check 3: magesim-coroutine-ref-capture --------------------------------

LAMBDA_RE = re.compile(r"(?<![\w\])\]])\[([^\[\]]*)\]\s*"
                       r"(\([^()]*\))?\s*"
                       r"(?:mutable\s*|noexcept\s*|->\s*[\w:<>&*\s]+)?\{")


def check_coroutine_ref_capture(sf, findings):
    code = sf.code
    # Lambda coroutines with by-reference captures.
    for m in LAMBDA_RE.finditer(code):
        body_open = code.index("{", m.end() - 1)
        body_close = match_brace(code, body_open)
        if body_close < 0:
            continue
        body = code[body_open:body_close]
        if "co_await" not in body:
            continue
        if "&" not in m.group(1):
            continue
        line = sf.line_of(m.start())
        if sf.allowed(line, "coroutine-ref-capture"):
            continue
        findings.append(Finding(
            sf.path, line, sf.col_of(m.start()), "coroutine-ref-capture",
            "coroutine lambda captures by reference; captures may dangle "
            "after the first suspension"))
    # Reference/pointer parameters live across co_await.
    for hdr_start, header, params, body_start, body_end in sf.functions():
        body = code[body_start:body_end]
        aw = body.find("co_await")
        if aw < 0:
            continue
        after = body[aw:]
        for p in split_params(params):
            p_nodefault = p.split("=")[0].strip()
            if "&" not in p_nodefault and "*" not in p_nodefault:
                continue
            nm = re.search(r"([A-Za-z_]\w*)\s*$", p_nodefault)
            if nm is None:
                continue
            name = nm.group(1)
            type_text = p_nodefault[:nm.start()].strip()
            if not type_text:
                continue
            rvalue = "&&" in type_text
            if not rvalue and any(
                    re.search(r"\b%s\b" % t, type_text)
                    for t in LONG_LIVED_TYPES):
                continue
            use = re.search(r"(?<![\w.])%s\b" % re.escape(name), after)
            if use is None:
                continue
            hdr_line = sf.line_of(hdr_start + len(header) - len(header.lstrip()))
            use_line = sf.line_of(body_start + aw + use.start())
            if (sf.allowed(hdr_line, "coroutine-ref-capture")
                    or sf.allowed(use_line, "coroutine-ref-capture")):
                continue
            findings.append(Finding(
                sf.path, hdr_line, 1, "coroutine-ref-capture",
                "%s parameter '%s' of a coroutine is used after a co_await; "
                "if this task is ever detached the referent may be gone" %
                ("rvalue-reference" if rvalue else
                 ("pointer" if "*" in p_nodefault else "reference"), name)))


# --- Check 4: magesim-hotpath-alloc ----------------------------------------

HOTPATH_TOKEN_RE = re.compile(r"\bMAGESIM_HOT_PATH\b")
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")
MAKE_RE = re.compile(r"(?<![\w.])make_(?:shared|unique)\s*<")
GROW_RE = re.compile(r"(?:\.|->)\s*(%s)\s*\(" % "|".join(GROWTH_METHODS))


def allowed_container_receivers(sf):
    names = set()
    type_re = re.compile(
        r"\b(?:%s)\b[\w<>:,\s*&]*?[\s&]([A-Za-z_]\w*)\s*[;{=(]" %
        "|".join(ALLOWED_CONTAINER_TYPES))
    for m in type_re.finditer(sf.code):
        names.add(m.group(1))
    return names


def check_hotpath_alloc(sf, findings):
    code = sf.code
    exempt = allowed_container_receivers(sf)
    for tok in HOTPATH_TOKEN_RE.finditer(code):
        fn = None
        for f in sf.functions():
            if f[0] <= tok.start() < f[3]:
                fn = f
                break
        if fn is None:
            continue
        _, header, _, body_start, body_end = fn
        body = code[body_start:body_end]

        def report(offset_in_body, what):
            off = body_start + offset_in_body
            line = sf.line_of(off)
            if sf.allowed(line, "hotpath-alloc"):
                return
            findings.append(Finding(
                sf.path, line, sf.col_of(off), "hotpath-alloc",
                "%s inside MAGESIM_HOT_PATH function; the fault/evict hot "
                "path must not allocate in steady state" % what))

        for m in NEW_RE.finditer(body):
            report(m.start(), "new-expression")
        for m in MAKE_RE.finditer(body):
            report(m.start(), "make_shared/make_unique")
        for m in GROW_RE.finditer(body):
            recv = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*%s\s*\($" %
                             m.group(1), body[:m.end()])
            if recv is not None and recv.group(1) in exempt:
                continue
            report(m.start(), "growth-capable container mutation "
                   "(.%s)" % m.group(1))


# --- Check 5: magesim-guardedby-static -------------------------------------

GUARDEDBY_DECL_RE = re.compile(r"\bGuardedBy\s*<")
LOCKED_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\.\s*Locked\s*\(")
UNSAFE_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\.\s*Unsafe\s*\(")


def guardedby_fields(sf):
    fields = {}
    code = sf.code
    for m in GUARDEDBY_DECL_RE.finditer(code):
        open_idx = code.index("<", m.start())
        end = match_angle(code, open_idx)
        if end < 0:
            continue
        dm = re.match(r"\s*([A-Za-z_]\w*)\s*(?:\{([^}]*)\}|\(([^)]*)\))?",
                      code[end:])
        if dm is None:
            continue
        init = dm.group(2) or dm.group(3) or ""
        mm = re.search(r"[A-Za-z_]\w*", init)
        fields[dm.group(1)] = mm.group(0) if mm else ""
    return fields


def check_guardedby_static(sf, findings):
    fields = guardedby_fields(sf)
    code = sf.code
    for m in LOCKED_CALL_RE.finditer(code):
        field = m.group(1)
        if field not in fields:
            continue
        fn = sf.enclosing_function(m.start())
        if fn is None:
            continue
        before = code[fn[3]:m.start()]
        mutex = fields[field]
        if mutex:
            # Token-anchored: `mu_.Scoped` must not match inside
            # `other_mu_.Scoped`.
            held = (re.search(r"(?<!\w)%s\s*\.\s*(?:Scoped|Acquire|AssertHeld)"
                              % re.escape(mutex), before) is not None or
                    "MAGESIM_ASSERT_HELD(" + mutex in before or
                    "MAGESIM_GUARDED_BY(" + mutex in before)
        else:
            held = (".Scoped" in before or ".Acquire" in before or
                    "AssertHeld" in before or
                    "MAGESIM_ASSERT_HELD" in before or
                    "MAGESIM_GUARDED_BY" in before)
        if held:
            continue
        line = sf.line_of(m.start())
        if sf.allowed(line, "guardedby-static"):
            continue
        findings.append(Finding(
            sf.path, line, sf.col_of(m.start()), "guardedby-static",
            "GuardedBy field '%s' accessed via Locked() but no acquisition "
            "of '%s' is lexically in scope before it" %
            (field, mutex or "its mutex")))
    for m in UNSAFE_CALL_RE.finditer(code):
        field = m.group(1)
        if field not in fields:
            continue
        line = sf.line_of(m.start())
        if sf.allowed(line, "guardedby-static"):
            continue
        same = sf.raw_line(line)
        above = sf.raw_line(line - 1)
        if "//" in same or "/*" in same or \
                above.strip().startswith(("//", "/*", "*")):
            continue
        findings.append(Finding(
            sf.path, line, sf.col_of(m.start()), "guardedby-static",
            "unchecked GuardedBy access (.Unsafe()) on '%s' without an "
            "adjacent justification comment" % field))


CHECK_FNS = {
    "no-wallclock": check_no_wallclock,
    "unordered-iteration": check_unordered_iteration,
    "coroutine-ref-capture": check_coroutine_ref_capture,
    "hotpath-alloc": check_hotpath_alloc,
    "guardedby-static": check_guardedby_static,
}


def resolve_checks(spec):
    if spec in (None, "", "magesim-*", "*", "all"):
        return list(CHECKS)
    out = []
    for part in spec.split(","):
        slug = part.strip()
        if slug.startswith("magesim-"):
            slug = slug[len("magesim-"):]
        if slug not in CHECK_FNS:
            raise SystemExit("magesim-tidy-lite: unknown check '%s' "
                             "(have: %s)" % (part.strip(), ", ".join(CHECKS)))
        out.append(slug)
    return out


def collect_files(roots, files):
    out = list(files)
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".cc", ".cpp", ".h", ".hpp")):
                    out.append(os.path.join(dirpath, name))
    return sorted(set(out))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", action="append", default=[],
                    help="directory tree to scan (default: src, if no files "
                         "given)")
    ap.add_argument("--checks", default="magesim-*",
                    help="comma-separated magesim check names or slugs "
                         "(default: all)")
    ap.add_argument("--dump", metavar="FILE",
                    help="write normalized findings (path:line [check]) for "
                         "merge-base diffing")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("files", nargs="*")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print("magesim-" + c)
        return 0

    checks = resolve_checks(args.checks)
    roots = args.root
    if not roots and not args.files:
        roots = ["src"]
    paths = collect_files(roots, args.files)
    if not paths:
        print("magesim-tidy-lite: no input files", file=sys.stderr)
        return 2

    findings = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print("magesim-tidy-lite: %s: %s" % (path, e), file=sys.stderr)
            return 2
        sf = SourceFile(path, text)
        for slug in checks:
            CHECK_FNS[slug](sf, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.slug))
    for f in findings:
        print(f.render())
    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as out:
            for line in sorted({f.normalized() for f in findings}):
                out.write(line + "\n")
    if findings:
        print("magesim-tidy-lite: %d finding(s) in %d file(s)" %
              (len(findings), len({f.path for f in findings})),
              file=sys.stderr)
        return 1
    print("magesim-tidy-lite: clean (%d files, checks: %s)" %
          (len(paths), ",".join("magesim-" + c for c in checks)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
