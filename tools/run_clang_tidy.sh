#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the main-tree sources using the
# compilation database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS=ON,
# on by default).
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [--dump FILE] [files...]
#
#   build-dir   directory containing compile_commands.json (default: build)
#   --dump FILE additionally write normalized findings (path:line [check])
#               to FILE — the CI job diffs this against the main branch so
#               only *new* findings fail a PR.
#   files...    restrict to specific sources (default: src/ examples/ bench/)
#
# Exits 0 when clang-tidy finds nothing, 1 on findings, 2 on setup errors.
# When clang-tidy is not installed the script reports and exits 0 so local
# workflows without LLVM don't break; CI installs it explicitly.
set -u

cd "$(dirname "$0")/.."

BUILD_DIR=build
DUMP_FILE=""
FILES=()
while [ $# -gt 0 ]; do
  case "$1" in
    --dump)
      shift
      [ $# -gt 0 ] || { echo "--dump needs a file argument" >&2; exit 2; }
      DUMP_FILE=$1
      ;;
    --*)
      echo "unknown option: $1" >&2
      exit 2
      ;;
    *)
      if [ ${#FILES[@]} -eq 0 ] && [ -f "$1/compile_commands.json" ]; then
        BUILD_DIR=$1
      else
        FILES+=("$1")
      fi
      ;;
  esac
  shift
done

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not installed; skipping (CI installs it)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
       "configure first: cmake --preset default" >&2
  exit 2
fi

if [ ${#FILES[@]} -eq 0 ]; then
  # Main-tree translation units only: tests use gtest macros that trip
  # bugprone checks by design, and goldens/benches follow test idiom.
  mapfile -t FILES < <(find src examples bench -name '*.cc' -o -name '*.cpp' | sort)
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

STATUS=0
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}" >"$OUT" 2>/dev/null || STATUS=$?

# Keep only findings (path:line:col: warning/error: ... [check]); drop the
# "N warnings generated" chatter and system-header noise clang-tidy lets
# through despite HeaderFilterRegex.
FINDINGS=$(grep -E '^[^ ].*:[0-9]+:[0-9]+: (warning|error):' "$OUT" \
  | grep -vE '^/usr/' || true)

if [ -n "$DUMP_FILE" ]; then
  # Normalized (no column, sorted, deduped): stable across unrelated edits,
  # so a diff against main shows only genuinely new findings.
  printf '%s\n' "$FINDINGS" \
    | sed -E 's/^([^:]+):([0-9]+):[0-9]+: (warning|error): .* (\[[a-z0-9.,-]+\])$/\1:\2 \4/' \
    | sort -u >"$DUMP_FILE"
fi

if [ -n "$FINDINGS" ]; then
  printf '%s\n' "$FINDINGS"
  echo "run_clang_tidy: findings present" >&2
  exit 1
fi
echo "run_clang_tidy: clean (${#FILES[@]} files)"
exit 0
