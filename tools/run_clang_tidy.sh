#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the main-tree sources using the
# compilation database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS=ON,
# on by default).
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [--dump FILE] [--checks GLOB] [files...]
#
#   build-dir   directory containing compile_commands.json (default: build)
#   --dump FILE additionally write normalized findings (path:line [check])
#               to FILE — the CI job diffs this against the main branch so
#               only *new* findings fail a PR.
#   --checks GLOB
#               extra check glob. 'magesim-*' selects the fast project-lint
#               mode: ONLY the magesim checks run, over src/ by default
#               (the project invariants are scoped to the simulator tree —
#               docs/INTERNALS.md §15). Other globs are appended to the
#               .clang-tidy check set.
#   files...    restrict to specific sources (default: src/ examples/ bench/;
#               src/ in magesim-only mode)
#
# The magesim checks come from the clang-tidy plugin (tools/tidy). When the
# plugin target was configured (LLVM/Clang dev packages present) it is built
# on demand and loaded with -load; otherwise the magesim-only mode falls
# back to tools/tidy/magesim_tidy_lite.py, and the full run proceeds with
# the stock checks alone after a notice.
#
# Exits 0 when clang-tidy finds nothing, 1 on findings, 2 on setup errors.
# When clang-tidy is not installed the script reports and exits 0 (the
# magesim-only mode still runs via the lite analyzer); CI installs it
# explicitly.
set -u

cd "$(dirname "$0")/.."

BUILD_DIR=build
DUMP_FILE=""
CHECKS=""
MAGESIM_ONLY=0
FILES=()
while [ $# -gt 0 ]; do
  case "$1" in
    --dump)
      shift
      [ $# -gt 0 ] || { echo "--dump needs a file argument" >&2; exit 2; }
      DUMP_FILE=$1
      ;;
    --checks)
      shift
      [ $# -gt 0 ] || { echo "--checks needs a glob argument" >&2; exit 2; }
      CHECKS=$1
      case "$CHECKS" in
        magesim-*|-\*,magesim-*) MAGESIM_ONLY=1 ;;
      esac
      ;;
    --*)
      echo "unknown option: $1" >&2
      exit 2
      ;;
    *)
      if [ ${#FILES[@]} -eq 0 ] && [ -f "$1/compile_commands.json" ]; then
        BUILD_DIR=$1
      else
        FILES+=("$1")
      fi
      ;;
  esac
  shift
done

# Locate (building on demand) the magesim-tidy plugin. Prints the path when
# available; fails silently when the target was never configured (no LLVM
# dev packages) or the build breaks.
find_plugin() {
  local p
  for p in "$BUILD_DIR/tools/tidy/libMagesimTidy.so" \
           "$BUILD_DIR/libMagesimTidy.so" \
           build-tidy/libMagesimTidy.so; do
    [ -f "$p" ] && { echo "$p"; return 0; }
  done
  if cmake --build "$BUILD_DIR" --target MagesimTidy >/dev/null 2>&1; then
    for p in "$BUILD_DIR/tools/tidy/libMagesimTidy.so" \
             "$BUILD_DIR/libMagesimTidy.so"; do
      [ -f "$p" ] && { echo "$p"; return 0; }
    done
  fi
  return 1
}

EXPLICIT_FILES=1
if [ ${#FILES[@]} -eq 0 ]; then
  EXPLICIT_FILES=0
  if [ "$MAGESIM_ONLY" = 1 ]; then
    # The magesim invariants gate the simulator tree; bench/examples follow
    # harness idiom (wall-clock groups, caller-frame out-params) by design.
    mapfile -t FILES < <(find src -name '*.cc' -o -name '*.cpp' | sort)
  else
    # Main-tree translation units only: tests use gtest macros that trip
    # bugprone checks by design, and goldens/benches follow test idiom.
    mapfile -t FILES < <(find src examples bench -name '*.cc' -o -name '*.cpp' | sort)
  fi
fi

TIDY=${CLANG_TIDY:-clang-tidy}
HAVE_TIDY=1
command -v "$TIDY" >/dev/null 2>&1 || HAVE_TIDY=0

PLUGIN=""
if [ "$HAVE_TIDY" = 1 ]; then
  PLUGIN=$(find_plugin || true)
fi

if [ "$MAGESIM_ONLY" = 1 ] && { [ "$HAVE_TIDY" = 0 ] || [ -z "$PLUGIN" ]; }; then
  # Fast mode without the plugin: the lite analyzer implements the same five
  # checks (same defaults, same allow syntax) with no toolchain requirement.
  echo "run_clang_tidy: magesim plugin unavailable; using magesim_tidy_lite" >&2
  LITE_ARGS=()
  [ -n "$DUMP_FILE" ] && LITE_ARGS+=(--dump "$DUMP_FILE")
  if [ "$EXPLICIT_FILES" = 0 ]; then
    # Whole tree, headers included — the lite analyzer reads sources
    # directly, unlike clang-tidy which reaches headers through TUs.
    exec python3 tools/tidy/magesim_tidy_lite.py --checks "$CHECKS" \
         "${LITE_ARGS[@]}" --root src
  fi
  exec python3 tools/tidy/magesim_tidy_lite.py --checks "$CHECKS" \
       "${LITE_ARGS[@]}" "${FILES[@]}"
fi

if [ "$HAVE_TIDY" = 0 ]; then
  echo "run_clang_tidy: $TIDY not installed; skipping (CI installs it)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
       "configure first: cmake --preset default" >&2
  exit 2
fi

TIDY_ARGS=(-p "$BUILD_DIR" --quiet)
if [ "$MAGESIM_ONLY" = 1 ]; then
  TIDY_ARGS+=(-load "$PLUGIN" --checks="-*,magesim-*")
elif [ -n "$PLUGIN" ]; then
  # Full run with the plugin available: stock checks plus the magesim set
  # (-checks appends to the .clang-tidy Checks value).
  TIDY_ARGS+=(-load "$PLUGIN" --checks="${CHECKS:-magesim-*}")
elif [ -n "$CHECKS" ]; then
  TIDY_ARGS+=(--checks="$CHECKS")
else
  echo "run_clang_tidy: magesim plugin not built (no LLVM dev packages?);" \
       "running stock checks only" >&2
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

STATUS=0
"$TIDY" "${TIDY_ARGS[@]}" "${FILES[@]}" >"$OUT" 2>/dev/null || STATUS=$?

# Keep only findings (path:line:col: warning/error: ... [check]); drop the
# "N warnings generated" chatter and system-header noise clang-tidy lets
# through despite HeaderFilterRegex.
FINDINGS=$(grep -E '^[^ ].*:[0-9]+:[0-9]+: (warning|error):' "$OUT" \
  | grep -vE '^/usr/' || true)

if [ -n "$DUMP_FILE" ]; then
  # Normalized (no column, sorted, deduped): stable across unrelated edits,
  # so a diff against main shows only genuinely new findings.
  printf '%s\n' "$FINDINGS" \
    | sed -E 's/^([^:]+):([0-9]+):[0-9]+: (warning|error): .* (\[[a-z0-9.,-]+\])$/\1:\2 \4/' \
    | sort -u >"$DUMP_FILE"
fi

if [ -n "$FINDINGS" ]; then
  printf '%s\n' "$FINDINGS"
  echo "run_clang_tidy: findings present" >&2
  exit 1
fi
echo "run_clang_tidy: clean (${#FILES[@]} files)"
exit 0
