#!/usr/bin/env python3
"""Summarize a magesim span export (--spans-out JSONL).

Rebuilds each operation's span tree, recomputes its critical path with the
same cursor sweep the simulator uses (src/spans/spans.cc), and prints the
top-K slowest operations with per-phase critical-path percentages:

  ./tools/span_view.py spans.jsonl
  ./tools/span_view.py spans.jsonl --op=fault --tenant=2 --top=20
  ./tools/span_view.py spans.jsonl --phases          # aggregate view only

Stdlib-only; reads stdin when no file is given.
"""

import argparse
import json
import os
import sys
from collections import defaultdict


def load_ops(stream):
    """Parse JSONL spans into one dict per operation: root + children by id."""
    spans = {}
    roots = []
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            s = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"warning: line {lineno}: {e}", file=sys.stderr)
            continue
        s["children"] = []
        spans[s["id"]] = s
        if "parent" not in s:
            roots.append(s)
    orphans = 0
    for s in spans.values():
        p = s.get("parent")
        if p is None:
            continue
        parent = spans.get(p)
        if parent is None:
            orphans += 1
            continue
        parent["children"].append(s)
    if orphans:
        print(f"warning: {orphans} spans reference a missing parent", file=sys.stderr)
    for s in spans.values():
        s["children"].sort(key=lambda c: (c["t0"], c["id"]))
    return roots


def critical_path(span, out):
    """Cursor sweep: charge every ns of [t0, t1] to exactly one span kind.

    Gaps between children (and the tail) go to the parent's own kind; a child
    starting at or after the cursor is recursed into; a child the cursor
    already entered contributes only its clipped remainder; a child the
    cursor passed entirely was concurrent with an earlier sibling and is
    skipped. Mirrors ComputeCriticalPath in src/spans/spans.cc.
    """
    cursor = span["t0"]
    for c in span["children"]:
        if c["t1"] <= cursor:
            continue  # fully overlapped: not on the critical path
        if c["t0"] >= cursor:
            out[span["kind"]] += c["t0"] - cursor
            critical_path(c, out)
        else:
            out[c["kind"]] += c["t1"] - cursor
        cursor = c["t1"]
    if span["t1"] > cursor:
        out[span["kind"]] += span["t1"] - cursor


def fmt_us(ns):
    return f"{ns / 1000.0:.1f}us"


def describe(root, phases):
    latency = root["t1"] - root["t0"]
    total = sum(phases.values()) or 1
    parts = ", ".join(
        f"{k} {100.0 * v / total:.0f}%"
        for k, v in sorted(phases.items(), key=lambda kv: -kv[1])
        if v > 0
    )
    where = f"page={root['page']}" if "page" in root else f"actor={root['actor']}"
    tenant = f" tenant={root['tenant']}" if "tenant" in root else ""
    return (
        f"  #{root['id']:<10} {root['op']:<11} {fmt_us(latency):>10}  "
        f"{where}{tenant}  [{parts}]"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="span JSONL (default: stdin)")
    ap.add_argument("--op", help="only this root op kind (fault, evict_batch, ...)")
    ap.add_argument("--tenant", type=int, help="only ops charged to this tenant")
    ap.add_argument("--top", type=int, default=10, help="slowest ops to show")
    ap.add_argument("--phases", action="store_true",
                    help="print only the aggregate per-op-kind phase table")
    args = ap.parse_args()

    stream = open(args.file) if args.file else sys.stdin
    with stream:
        roots = load_ops(stream)

    if args.op:
        roots = [r for r in roots if r["op"] == args.op]
    if args.tenant is not None:
        roots = [r for r in roots if r.get("tenant") == args.tenant]
    if not roots:
        print("no matching operations")
        return 1

    # Aggregate critical-path attribution per root op kind.
    agg = defaultdict(lambda: defaultdict(int))
    counts = defaultdict(int)
    lat_sum = defaultdict(int)
    scored = []
    for r in roots:
        phases = defaultdict(int)
        critical_path(r, phases)
        counts[r["op"]] += 1
        lat_sum[r["op"]] += r["t1"] - r["t0"]
        for k, v in phases.items():
            agg[r["op"]][k] += v
        scored.append((r["t1"] - r["t0"], r["id"], r, phases))

    print(f"{len(roots)} operations")
    for op in sorted(agg):
        total = sum(agg[op].values()) or 1
        mean = lat_sum[op] / counts[op]
        print(f"\n{op}: {counts[op]} ops, mean {fmt_us(mean)}; critical path:")
        for k, v in sorted(agg[op].items(), key=lambda kv: -kv[1]):
            print(f"  {k:<16} {100.0 * v / total:6.1f}%  {fmt_us(v)}")

    if not args.phases:
        print(f"\nslowest {min(args.top, len(scored))}:")
        scored.sort(key=lambda s: (-s[0], s[1]))
        for latency, _, r, phases in scored[: args.top]:
            print(describe(r, phases))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report: not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
