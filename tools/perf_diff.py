#!/usr/bin/env python3
"""Compare fresh BENCH_*.json perf results against committed baselines.

Two gates, matching the two metric groups bench/perf_common.h emits:

  sim   Deterministic per-rep values (event counts, faults, simulated ns).
        Compared EXACTLY. Any drift means the simulation itself changed —
        a determinism regression — and always fails, regardless of flags.
        Rep counts do not affect per-rep sim values, so a CI smoke run
        (MAGESIM_BENCH_REPS=1:2) still exact-matches a baseline recorded
        with full reps, as long as MAGESIM_SCALE matches.

  wall  Wall-clock-derived values (events/sec, ns/event, best_rep_ns).
        Machine-dependent; compared within a relative noise threshold and
        only when --check-wall is given. Direction is inferred from the key:
        *_per_sec is higher-is-better, everything else (ns_per_*, *_ns)
        is lower-is-better. Improvements never fail.

Usage:
  tools/perf_diff.py --baseline-dir bench/baselines --fresh-dir out
  tools/perf_diff.py --baseline-dir bench/baselines --fresh-dir out \
      --check-wall --wall-threshold 0.35
  tools/perf_diff.py baseline.json fresh.json [--check-wall]

Exit status: 0 = all gates pass, 1 = regression or structural mismatch.
See docs/INTERNALS.md "Perf harness & baselines" for the re-baseline
procedure and threshold policy.
"""

import argparse
import json
import os
import sys

SCHEMA = "magesim-bench-v1"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def wall_higher_is_better(key):
    return key.endswith("_per_sec")


def diff_one(name, base, fresh, check_wall, threshold):
    """Returns a list of failure strings; prints a per-metric report."""
    failures = []

    if base.get("scale") != fresh.get("scale"):
        failures.append(
            f"{name}: scale mismatch (baseline {base.get('scale')}, "
            f"fresh {fresh.get('scale')}); sim values are not comparable — "
            "run with the baseline's MAGESIM_SCALE"
        )
        return failures

    bsim, fsim = base.get("sim", {}), fresh.get("sim", {})
    for key in bsim:
        if key not in fsim:
            failures.append(f"{name}: sim.{key} missing from fresh run")
            continue
        if bsim[key] != fsim[key]:
            failures.append(
                f"{name}: sim.{key} drifted: baseline {bsim[key]} != fresh "
                f"{fsim[key]} (determinism regression)"
            )
    for key in fsim:
        if key not in bsim:
            failures.append(
                f"{name}: sim.{key} present in fresh run but not in baseline "
                "(re-baseline after intentional metric changes)"
            )

    bwall, fwall = base.get("wall", {}), fresh.get("wall", {})
    for key in sorted(set(bwall) & set(fwall)):
        b, f = float(bwall[key]), float(fwall[key])
        if b == 0:
            continue
        ratio = f / b
        if wall_higher_is_better(key):
            regressed = ratio < 1.0 - threshold
            direction = "-"
        else:
            regressed = ratio > 1.0 + threshold
            direction = "+"
        delta_pct = (ratio - 1.0) * 100.0
        status = "ok"
        if regressed:
            status = "REGRESSED" if check_wall else "regressed (not gated)"
            if check_wall:
                failures.append(
                    f"{name}: wall.{key} regressed beyond {threshold:.0%}: "
                    f"baseline {b:g}, fresh {f:g} ({delta_pct:+.1f}%)"
                )
        print(f"  wall.{key:<24} base {b:>14g}  fresh {f:>14g}  "
              f"{delta_pct:+7.1f}%  [{status}]")
        del direction
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="explicit pair: BASELINE.json FRESH.json")
    ap.add_argument("--baseline-dir", help="directory of committed BENCH_*.json")
    ap.add_argument("--fresh-dir", help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--check-wall", action="store_true",
                    help="gate wall-clock metrics (default: report only)")
    ap.add_argument("--wall-threshold", type=float, default=0.35,
                    help="relative noise threshold for wall metrics (default 0.35)")
    args = ap.parse_args()

    pairs = []
    if args.files:
        if len(args.files) != 2 or args.baseline_dir or args.fresh_dir:
            ap.error("pass either BASELINE FRESH or --baseline-dir/--fresh-dir")
        pairs.append((args.files[0], args.files[1]))
    else:
        if not (args.baseline_dir and args.fresh_dir):
            ap.error("pass either BASELINE FRESH or --baseline-dir/--fresh-dir")
        names = sorted(n for n in os.listdir(args.baseline_dir)
                       if n.startswith("BENCH_") and n.endswith(".json"))
        if not names:
            print(f"error: no BENCH_*.json baselines in {args.baseline_dir}",
                  file=sys.stderr)
            return 1
        for n in names:
            pairs.append((os.path.join(args.baseline_dir, n),
                          os.path.join(args.fresh_dir, n)))

    failures = []
    for base_path, fresh_path in pairs:
        if not os.path.exists(fresh_path):
            failures.append(f"{fresh_path}: fresh result missing "
                            "(harness did not run or wrote elsewhere)")
            continue
        base, fresh = load(base_path), load(fresh_path)
        name = base.get("name", os.path.basename(base_path))
        print(f"{name}:")
        failures.extend(diff_one(name, base, fresh, args.check_wall,
                                 args.wall_threshold))

    if failures:
        print(f"\nFAIL: {len(failures)} perf-diff failure(s):", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("\nOK: all perf gates passed "
          f"({'wall gated at ' + format(args.wall_threshold, '.0%') if args.check_wall else 'sim exact-match only'}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
