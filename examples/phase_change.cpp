// Working-set phase changes (the GUPS scenario of §6.2): watch each system's
// throughput timeline as the application abruptly shifts its working set,
// and measure how long it stalls.
//
//   $ ./build/examples/phase_change
#include <cstdio>
#include <string>

#include "src/core/farmem.h"
#include "src/workloads/gups.h"

namespace {

void RunAndPlot(const magesim::KernelConfig& kernel) {
  using namespace magesim;
  GupsWorkload workload({.total_pages = 48 * 1024,
                         .threads = 24,
                         .zipf_theta = 0.75,
                         .phase_change_at = 500 * kMillisecond,
                         .run_for = 1 * kSecond,
                         .timeline_bucket = 100 * kMillisecond});
  FarMemoryMachine::Options options;
  options.kernel = kernel;
  options.local_mem_ratio = 0.85;
  options.time_limit = 1100 * kMillisecond;
  FarMemoryMachine machine(options, workload);
  machine.Run();

  // ASCII throughput plot, one row per 100 ms bucket.
  const TimeSeries& ts = workload.timeline();
  double peak = 0;
  for (size_t i = 0; i < 10; ++i) peak = std::max(peak, ts.RatePerSec(i));
  std::printf("\n%s (| = phase change):\n", kernel.name.c_str());
  for (size_t i = 0; i < 10; ++i) {
    double rate = ts.RatePerSec(i);
    int bars = peak > 0 ? static_cast<int>(rate / peak * 50) : 0;
    std::printf("  %3.1fs %c %-50.*s %6.2f M/s\n", 0.1 * static_cast<double>(i),
                i == 5 ? '|' : ' ', bars,
                "##################################################", rate / 1e6);
  }
}

}  // namespace

int main() {
  using namespace magesim;
  std::printf("GUPS with a working-set shift at t=0.5s, 85%% local memory\n");
  RunAndPlot(MageLibConfig());
  RunAndPlot(DilosConfig());
  RunAndPlot(HermitConfig());
  std::printf("\nMAGE dips briefly and recovers; the baselines stall while their\n"
              "eviction paths struggle to drain the old working set.\n");
  return 0;
}
