// Latency-critical offloading: how much of a memcached-style KV store's
// memory can be offloaded while holding a p99 SLO? Mirrors §6.3: sweep the
// far-memory ratio at fixed load and report the largest ratio that satisfies
// the SLO for each system.
//
//   $ ./build/examples/kv_store_offload
#include <cstdio>

#include "src/core/farmem.h"
#include "src/workloads/memcached.h"

namespace {

double P99Us(const magesim::KernelConfig& kernel, double local_ratio, double load) {
  using namespace magesim;
  MemcachedWorkload workload({.num_keys = 1 << 18,
                              .load_ops_per_sec = load,
                              .server_threads = 24,
                              .duration = 500 * kMillisecond});
  FarMemoryMachine::Options options;
  options.kernel = kernel;
  options.local_mem_ratio = local_ratio;
  options.time_limit = 600 * kMillisecond;
  options.stats_warmup = 100 * kMillisecond;
  FarMemoryMachine machine(options, workload);
  machine.Run();
  return static_cast<double>(workload.request_latency().Percentile(99)) / 1000.0;
}

}  // namespace

int main() {
  using namespace magesim;
  constexpr double kSloUs = 200.0;  // the paper's 200 us p99 SLO
  constexpr double kLoad = 200000;  // fixed offered load (ops/s)

  std::printf("Memcached offloading under a %.0f us p99 SLO at %.0f Kops/s\n\n", kSloUs,
              kLoad / 1000);
  std::printf("%6s  %10s %10s %10s %10s\n", "far%", "magelib", "magelnx", "dilos", "hermit");

  std::vector<KernelConfig> systems = {MageLibConfig(), MageLnxConfig(), DilosConfig(),
                                       HermitConfig()};
  std::map<std::string, int> max_offload;
  for (int far = 0; far <= 80; far += 10) {
    std::printf("%5d%%  ", far);
    for (const auto& cfg : systems) {
      double p99 = P99Us(cfg, 1.0 - far / 100.0, kLoad);
      std::printf("%8.1fus ", p99);
      if (p99 <= kSloUs) {
        auto [it, inserted] = max_offload.try_emplace(cfg.name, far);
        if (!inserted && it->second == far - 10) it->second = far;
      }
    }
    std::printf("\n");
  }
  std::printf("\nmax offloadable memory within SLO:\n");
  for (const auto& cfg : systems) {
    std::printf("  %-8s %d%%\n", cfg.name.c_str(), max_offload[cfg.name]);
  }
  return 0;
}
