// Graph analytics on far memory: PageRank over a Kronecker graph, comparing
// MAGE-Lib against Hermit at 50% memory offloading — the workload class the
// paper's introduction motivates (large-scale analytics that outgrow DRAM).
//
//   $ ./build/examples/graph_analytics
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "src/core/farmem.h"
#include "src/workloads/pagerank.h"

namespace {

magesim::RunResult RunOn(const magesim::KernelConfig& kernel,
                         magesim::PageRankWorkload& workload, double local_ratio) {
  magesim::FarMemoryMachine::Options options;
  options.kernel = kernel;
  options.local_mem_ratio = local_ratio;
  magesim::FarMemoryMachine machine(options, workload);
  return machine.Run();
}

}  // namespace

int main() {
  using namespace magesim;

  PageRankWorkload::Options opt{.scale = 16, .iterations = 5, .threads = 24};

  std::printf("Generating Kronecker graph (2^%d vertices)...\n", opt.scale);
  PageRankWorkload mage_wl(opt);
  std::printf("graph: %llu vertices, %llu edges, %llu pages WSS\n\n",
              static_cast<unsigned long long>(mage_wl.graph().num_vertices),
              static_cast<unsigned long long>(mage_wl.graph().num_edges),
              static_cast<unsigned long long>(mage_wl.wss_pages()));

  RunResult mage = RunOn(MageLibConfig(), mage_wl, 0.5);
  PageRankWorkload hermit_wl(opt);
  RunResult hermit = RunOn(HermitConfig(), hermit_wl, 0.5);

  std::printf("%-10s %10s %12s %14s %10s\n", "system", "runtime", "faults", "sync-evicts",
              "p99-fault");
  std::printf("%-10s %8.1fms %12llu %14llu %8.1fus\n", "magelib", mage.sim_seconds * 1e3,
              static_cast<unsigned long long>(mage.faults),
              static_cast<unsigned long long>(mage.sync_evictions),
              static_cast<double>(mage.fault_latency.Percentile(99)) / 1e3);
  std::printf("%-10s %8.1fms %12llu %14llu %8.1fus\n", "hermit", hermit.sim_seconds * 1e3,
              static_cast<unsigned long long>(hermit.faults),
              static_cast<unsigned long long>(hermit.sync_evictions),
              static_cast<double>(hermit.fault_latency.Percentile(99)) / 1e3);
  std::printf("\nspeedup with half the memory offloaded: %.2fx\n",
              hermit.sim_seconds / mage.sim_seconds);

  // The ranks are real results: identical regardless of memory placement.
  const auto& ranks = mage_wl.ranks();
  std::vector<uint32_t> idx(ranks.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + 5, idx.end(),
                    [&](uint32_t a, uint32_t b) { return ranks[a] > ranks[b]; });
  double sum = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  std::printf("rank mass: %.6f (should be ~1)\n", sum);
  std::printf("top-5 vertices by PageRank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  v%-8u rank %.3e\n", idx[static_cast<size_t>(i)],
                ranks[idx[static_cast<size_t>(i)]]);
  }
  return 0;
}
