// magesim_cli: run any workload on any system variant from the command line.
//
//   magesim_cli --workload=pagerank --system=magelib --far=50 [--threads=48]
//   magesim_cli --workload=trace --trace-file=prod.trc --system=hermit --far=30
//   magesim_cli --workload=zipf-trace --system=dilos --far=40 --save-trace=out.trc
//   magesim_cli --workload=seqscan --system=magelib --trace=events.jsonl
//               --check-interval=100
//   magesim_cli --tenant='lat:4:0.4:latency=seqscan/2,pages=4096,passes=64'
//               --tenant='bg:1:0.8:batch=gups/2' --system=magelib --far=50
//
// Workloads come from the registry (src/workloads/registry.h); run
// --list-workloads for names, descriptions and per-workload options, and pass
// overrides with --workload-opts=key=val,key=val. "trace" requires
// --trace-file.
// Systems:   ideal, hermit, dilos, magelnx, magelib, fastswap.
//
// Multi-tenancy (src/tenancy):
//   --tenant=spec         attach a memory control group running its own
//                         workload; repeat the flag once per tenant. Spec
//                         grammar: name:weight:limit[:soft]:qos=workload
//                         [/threads][,key=val...] — see src/tenancy/
//                         tenant_spec.h. MAGESIM_TENANCY overrides.
// Debugging:
//   --trace=path          write every simulation event as JSONL
//   --trace-chrome=path   write a chrome://tracing / Perfetto JSON timeline
//   --check-interval=us   run the invariant checker every N simulated µs
//   --check               run one invariant check after the simulation drains
// Fault injection (src/resilience):
//   --fault-plan=spec     compact spec, JSON, or @file: e.g.
//                         "brownout@2ms-6ms:bw=0.2;crash@10ms-12ms"
//   --terminal=poison|fail  policy when a demand read exhausts retries
//   --seed=N              simulation seed (default 1)
// Observability:
//   --metrics-out=path       write the JSON run-report
//   --metrics-csv=path       write the sampler time series as CSV
//   --metrics-prom=path      write a Prometheus text exposition
//   --sample-interval-us=N   sampling period (default 1000)
//   --progress               print a per-sample progress line to stderr
// Span tracing (src/spans):
//   --spans                  enable causal span tracing + tail attribution
//   --spans-out=path         stream every span tree as JSONL (implies --spans;
//                            feed to tools/span_view.py)
//   --spans-top-k=N          slowest exemplars kept per op kind (default 8)
//   --spans-sample=N         trace every Nth root op per kind (default 16;
//                            1 = full fidelity, deterministic either way)
// Unknown --flags are rejected (no silent typo-ignoring).
// Exit status is nonzero if any invariant violation was detected.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/check/invariant_checker.h"
#include "src/trace/trace.h"

#include "src/core/farmem.h"
#include "src/tenancy/tenant_spec.h"
#include "src/workloads/registry.h"
#include "src/workloads/trace.h"

namespace {

// Every flag the CLI understands. Anything else is rejected with an error
// (a typo'd --span-out silently running an un-traced simulation wastes far
// more time than the check costs).
constexpr const char* kKnownFlags[] = {
    "list-workloads", "workload",       "system",        "far",
    "threads",        "workload-opts",  "trace-file",    "save-trace",
    "tenant",         "seed",           "fault-plan",    "terminal",
    "check-interval", "check",          "analysis",      "metrics-out",
    "metrics-csv",    "metrics-prom",   "sample-interval-us",
    "progress",       "trace",          "trace-chrome",  "spans",
    "spans-out",      "spans-top-k",    "spans-sample",  "fleet-nodes",
    "fleet-replicas", "fleet-rebuild-gbps",
};

bool IsKnownFlag(const std::string& name) {
  for (const char* f : kKnownFlags) {
    if (name == f) return true;
  }
  return false;
}

// Returns false (after printing the offender) on any unknown --flag.
bool ParseArgs(int argc, char** argv, std::map<std::string, std::string>* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    size_t eq = a.find('=');
    std::string name = eq == std::string::npos ? a.substr(2) : a.substr(2, eq - 2);
    if (!IsKnownFlag(name)) {
      std::fprintf(stderr, "unknown option --%s\n", name.c_str());
      return false;
    }
    if (eq == std::string::npos) {
      // insert_or_assign rather than operator[]= : the latter trips a GCC 12
      // -Wrestrict false positive (PR105329) when the char* assign inlines.
      args->insert_or_assign(name, std::string("1"));
    } else {
      args->insert_or_assign(name, a.substr(eq + 1));
    }
  }
  return true;
}

// ParseArgs collapses repeated flags; --tenant legitimately repeats, so it
// gets its own pass over argv.
std::vector<std::string> CollectTenantSpecs(int argc, char** argv) {
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--tenant=", 0) == 0) specs.push_back(a.substr(std::strlen("--tenant=")));
  }
  return specs;
}

std::string Get(const std::map<std::string, std::string>& args, const std::string& key,
                const std::string& def) {
  auto it = args.find(key);
  return it == args.end() ? def : it->second;
}

// "key=val,key=val" -> map; returns false on an entry with no '='.
bool ParseKvList(const std::string& s, std::map<std::string, std::string>* out) {
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string kv = s.substr(pos, comma - pos);
    size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    out->insert_or_assign(kv.substr(0, eq), kv.substr(eq + 1));
    pos = comma + 1;
  }
  return true;
}

int ListWorkloadsMain() {
  for (const magesim::WorkloadInfo& w : magesim::ListWorkloads()) {
    std::printf("%-12s %s\n", w.name.c_str(), w.description.c_str());
    std::printf("%-12s options: %s\n", "", w.options.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: magesim_cli --workload=<name> --system=<name> [--far=<pct>]\n"
               "                   [--threads=N] [--workload-opts=k=v,...]\n"
               "                   [--tenant=spec]... [--list-workloads]\n"
               "                   [--trace-file=path] [--save-trace=path]\n"
               "                   [--trace=events.jsonl] [--trace-chrome=timeline.json]\n"
               "                   [--check-interval=us] [--check] [--analysis]\n"
               "                   [--metrics-out=report.json] [--metrics-csv=series.csv]\n"
               "                   [--metrics-prom=metrics.txt] [--sample-interval-us=N]\n"
               "                   [--progress] [--fault-plan=spec|@file]\n"
               "                   [--terminal=poison|fail] [--seed=N]\n"
               "                   [--spans] [--spans-out=spans.jsonl] [--spans-top-k=N]\n"
               "                   [--spans-sample=N] [--fleet-nodes=N]\n"
               "                   [--fleet-replicas=K] [--fleet-rebuild-gbps=G]\n"
               "workloads: see --list-workloads (trace requires --trace-file)\n"
               "systems:   ideal hermit dilos magelnx magelib fastswap\n"
               "tenants:   --tenant=name:weight:limit[:soft]:qos=workload[/threads][,k=v...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magesim;
  std::map<std::string, std::string> args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (args.count("list-workloads") != 0) return ListWorkloadsMain();

  std::string wname = Get(args, "workload", "");
  std::string sname = Get(args, "system", "magelib");
  int far = std::atoi(Get(args, "far", "30").c_str());
  int threads = std::atoi(Get(args, "threads", "24").c_str());
  std::vector<std::string> tenant_specs = CollectTenantSpecs(argc, argv);
  if (wname.empty() && tenant_specs.empty()) return Usage();

  std::unique_ptr<Workload> wl;
  if (!wname.empty()) {
    WorkloadParams params;
    params.threads = threads;
    if (!ParseKvList(Get(args, "workload-opts", ""), &params.opts)) {
      std::fprintf(stderr, "malformed --workload-opts (expected key=val,key=val)\n");
      return 2;
    }
    std::string tf = Get(args, "trace-file", "");
    if (!tf.empty()) params.opts.insert_or_assign("file", tf);
    std::string werr;
    wl = MakeWorkload(wname, params, &werr);
    if (wl == nullptr) {
      std::fprintf(stderr, "%s\n", werr.c_str());
      return 2;
    }
    std::string save = Get(args, "save-trace", "");
    if (!save.empty()) {
      auto* replay = dynamic_cast<TraceReplayWorkload*>(wl.get());
      if (replay == nullptr) {
        std::fprintf(stderr, "--save-trace only applies to trace-backed workloads\n");
        return 2;
      }
      if (!replay->trace().SaveTo(save)) {
        std::fprintf(stderr, "cannot save trace to '%s'\n", save.c_str());
        return 1;
      }
    }
  } else {
    // Tenancy replaces the constructor workload with a machine-built
    // MultiTenantWorkload; the placeholder below never runs.
    wl = MakeWorkload("seqscan", WorkloadParams{.threads = 1, .opts = {{"pages", "64"}, {"passes", "1"}}},
                      nullptr);
  }

  FarMemoryMachine::Options opt;
  try {
    opt.kernel = ConfigByName(sname);
  } catch (const std::invalid_argument&) {
    return Usage();
  }
  for (const std::string& s : tenant_specs) {
    TenantSpec spec;
    std::string terr;
    if (!ParseTenantSpec(s, &spec, &terr)) {
      std::fprintf(stderr, "bad --tenant spec '%s': %s\n", s.c_str(), terr.c_str());
      return 2;
    }
    opt.tenancy.tenants.push_back(std::move(spec));
  }
  opt.tenancy.enabled = !opt.tenancy.tenants.empty();
  opt.local_mem_ratio = 1.0 - static_cast<double>(far) / 100.0;
  opt.time_limit = 5 * kSecond;  // safety stop for open-ended workloads
  opt.seed = static_cast<uint64_t>(std::atoll(Get(args, "seed", "1").c_str()));
  opt.fault_plan = Get(args, "fault-plan", "");
  std::string terminal = Get(args, "terminal", "poison");
  if (terminal == "fail") {
    opt.resilience.terminal = TerminalPolicy::kFailRun;
  } else if (terminal != "poison") {
    return Usage();
  }
  long fleet_nodes = std::atol(Get(args, "fleet-nodes", "0").c_str());
  if (fleet_nodes > 0) opt.fleet.num_nodes = static_cast<int>(fleet_nodes);
  long fleet_replicas = std::atol(Get(args, "fleet-replicas", "0").c_str());
  if (fleet_replicas > 0) opt.fleet.replication = static_cast<int>(fleet_replicas);
  double fleet_gbps = std::atof(Get(args, "fleet-rebuild-gbps", "0").c_str());
  if (fleet_gbps > 0) opt.fleet.rebuild_gbps = fleet_gbps;
  long check_us = std::atol(Get(args, "check-interval", "0").c_str());
  if (check_us > 0) opt.check_interval = check_us * kMicrosecond;
  if (args.count("check") != 0) opt.check_final = true;
  if (args.count("analysis") != 0) opt.analysis.enabled = true;

  opt.metrics.report_path = Get(args, "metrics-out", "");
  opt.metrics.csv_path = Get(args, "metrics-csv", "");
  opt.metrics.prom_path = Get(args, "metrics-prom", "");
  long sample_us = std::atol(Get(args, "sample-interval-us", "0").c_str());
  if (sample_us > 0) opt.metrics.sample_interval = sample_us * kMicrosecond;
  opt.metrics.progress = args.count("progress") != 0;
  opt.metrics.enabled = !opt.metrics.report_path.empty() || !opt.metrics.csv_path.empty() ||
                        !opt.metrics.prom_path.empty() || sample_us > 0 ||
                        opt.metrics.progress;

  opt.spans.out_path = Get(args, "spans-out", "");
  long spans_top_k = std::atol(Get(args, "spans-top-k", "-1").c_str());
  if (spans_top_k >= 0) opt.spans.top_k = static_cast<int>(spans_top_k);
  long spans_sample = std::atol(Get(args, "spans-sample", "0").c_str());
  if (spans_sample >= 1) opt.spans.sample_every = static_cast<int>(spans_sample);
  opt.spans.enabled = args.count("spans") != 0 || !opt.spans.out_path.empty() ||
                      spans_top_k >= 0 || spans_sample >= 1;

  // Install the tracer (if requested) before building the machine so the
  // checker's recent-event ring registers with it.
  Tracer tracer;
  std::unique_ptr<JsonlTraceSink> jsonl;
  std::unique_ptr<ChromeTraceSink> chrome;
  std::string trace_path = Get(args, "trace", "");
  std::string chrome_path = Get(args, "trace-chrome", "");
  if (!trace_path.empty()) {
    jsonl = std::make_unique<JsonlTraceSink>(trace_path);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot open trace output '%s'\n", trace_path.c_str());
      return 1;
    }
    tracer.AddSink(jsonl.get());
  }
  if (!chrome_path.empty()) {
    chrome = std::make_unique<ChromeTraceSink>(chrome_path);
    if (!chrome->ok()) {
      std::fprintf(stderr, "cannot open trace output '%s'\n", chrome_path.c_str());
      return 1;
    }
    tracer.AddSink(chrome.get());
  }
  if (jsonl != nullptr || chrome != nullptr || opt.check_interval > 0 || opt.check_final) {
    tracer.Install();
  }

  std::unique_ptr<FarMemoryMachine> machine_ptr;
  try {
    machine_ptr = std::make_unique<FarMemoryMachine>(opt, *wl);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  FarMemoryMachine& machine = *machine_ptr;
  if (machine.spans() != nullptr && chrome != nullptr) {
    // Span slices + causal flow arrows ride the same Chrome timeline.
    machine.spans()->AttachChrome(chrome.get());
  }
  RunResult r = machine.Run();

  // With tenancy the machine swaps in a MultiTenantWorkload; report that one.
  Workload& ran = machine.workload();
  std::printf("workload=%s system=%s far=%d%% threads=%d\n", ran.name().c_str(), sname.c_str(),
              far, ran.num_threads());
  std::printf("sim time        %.4f s\n", r.sim_seconds);
  std::printf("throughput      %.3f M %s/s\n", r.ops_per_sec / 1e6, ran.ops_unit().c_str());
  std::printf("major faults    %llu (%.2f M/s)\n",
              static_cast<unsigned long long>(r.faults), r.fault_mops);
  std::printf("fault latency   %s\n", r.fault_latency.Summary().c_str());
  std::printf("sync evictions  %llu\n", static_cast<unsigned long long>(r.sync_evictions));
  std::printf("evicted pages   %llu\n", static_cast<unsigned long long>(r.evicted_pages));
  std::printf("network         read %.1f Gbps / write %.1f Gbps\n", r.nic_read_gbps,
              r.nic_write_gbps);
  std::printf("tlb shootdowns  %s (ipis %llu)\n", r.tlb_shootdown_latency.Summary().c_str(),
              static_cast<unsigned long long>(r.ipis_sent));
  for (const TenantRunResult& t : r.tenants) {
    std::printf("tenant %-8s qos=%-7s %.3f M ops/s  faults %llu  usage %llu/%llu pages"
                "  evicted %llu  hard-waits %llu  throttles %llu\n",
                t.name.c_str(), QosClassName(t.qos), t.ops_per_sec / 1e6,
                static_cast<unsigned long long>(t.faults),
                static_cast<unsigned long long>(t.usage_pages),
                static_cast<unsigned long long>(t.hard_limit_pages),
                static_cast<unsigned long long>(t.evict_selected),
                static_cast<unsigned long long>(t.hard_limit_waits),
                static_cast<unsigned long long>(t.backpressure_waits));
  }
  if (machine.resilience() != nullptr) {
    std::printf("resilience      retries %llu timeouts %llu breaker-opens %llu "
                "poisoned %llu wb-lost %llu\n",
                static_cast<unsigned long long>(r.rdma_retries),
                static_cast<unsigned long long>(r.rdma_timeouts),
                static_cast<unsigned long long>(r.breaker_opens),
                static_cast<unsigned long long>(r.pages_poisoned),
                static_cast<unsigned long long>(r.writebacks_lost));
  }
  if (machine.fleet() != nullptr) {
    std::printf("fleet           nodes %llu x%d  degraded-reads %llu  lost %llu  "
                "rebuilt %llu  pending %llu  silent-losses %llu\n",
                static_cast<unsigned long long>(r.fleet_nodes), machine.fleet()->replication(),
                static_cast<unsigned long long>(r.fleet_degraded_reads),
                static_cast<unsigned long long>(r.fleet_slots_lost),
                static_cast<unsigned long long>(r.fleet_slots_rebuilt),
                static_cast<unsigned long long>(r.fleet_rebuild_pending),
                static_cast<unsigned long long>(r.fleet_silent_losses));
  }
  if (machine.injector() != nullptr) {
    std::printf("injected        windows %llu drops %llu errors %llu crashes %llu\n",
                static_cast<unsigned long long>(r.fault_windows),
                static_cast<unsigned long long>(r.injected_drops),
                static_cast<unsigned long long>(r.injected_errors),
                static_cast<unsigned long long>(r.memnode_crashes));
  }
  if (machine.metrics() != nullptr && !opt.metrics.report_path.empty()) {
    std::printf("run report      %s\n", opt.metrics.report_path.c_str());
  }
  if (machine.spans() != nullptr) {
    SpanTracer& st = *machine.spans();
    std::printf("spans           %s\n", st.FingerprintSummary().c_str());
    SpanTailSummary tail = st.Tail(SpanKind::kFault);
    if (tail.count > 0) {
      // Where do the slowest faults spend their time? Name the dominant
      // critical-path phase of the p99 latency band.
      const SpanTailBand& band = tail.bands[2];
      SpanKind top = SpanKind::kFault;
      for (int k = 0; k < kNumSpanKinds; ++k) {
        if (band.phase_ns[static_cast<size_t>(k)] >
            band.phase_ns[static_cast<size_t>(top)]) {
          top = static_cast<SpanKind>(k);
        }
      }
      std::printf("fault p99 band  %llu ops >= %.1f us: top phase %s (%.0f%%)\n",
                  static_cast<unsigned long long>(band.ops),
                  static_cast<double>(band.threshold_ns) / 1000.0, SpanKindName(top),
                  band.Share(top) * 100.0);
    }
    if (!opt.spans.out_path.empty()) {
      std::printf("span export     %s%s\n", opt.spans.out_path.c_str(),
                  st.export_ok() ? "" : " (write failed)");
    }
  }
  if (machine.checker() != nullptr) {
    std::printf("%s\n", machine.checker()->Report().c_str());
    if (r.invariant_violations > 0) return 1;
  }
  if (machine.analyzer() != nullptr) {
    std::printf("analysis        locks %llu order-edges %llu violations %llu\n",
                static_cast<unsigned long long>(r.analysis_locks),
                static_cast<unsigned long long>(r.analysis_order_edges),
                static_cast<unsigned long long>(r.analysis_violations));
    if (r.analysis_violations > 0) {
      std::printf("%s\n", machine.analyzer()->Report().c_str());
      return 1;
    }
  }
  if (r.aborted) {
    std::fprintf(stderr, "run aborted: %s\n", r.abort_reason.c_str());
    return 1;
  }
  return 0;
}
