// magesim_cli: run any workload on any system variant from the command line.
//
//   magesim_cli --workload=pagerank --system=magelib --far=50 [--threads=48]
//   magesim_cli --workload=trace --trace-file=prod.trc --system=hermit --far=30
//   magesim_cli --workload=zipf-trace --system=dilos --far=40 --save-trace=out.trc
//   magesim_cli --workload=seqscan --system=magelib --trace=events.jsonl
//               --check-interval=100
//
// Workloads: pagerank, xsbench, seqscan, gups, metis, memcached,
//            zipf-trace, mixed-trace, trace (requires --trace-file).
// Systems:   ideal, hermit, dilos, magelnx, magelib, fastswap.
//
// Debugging:
//   --trace=path          write every simulation event as JSONL
//   --trace-chrome=path   write a chrome://tracing / Perfetto JSON timeline
//   --check-interval=us   run the invariant checker every N simulated µs
//   --check               run one invariant check after the simulation drains
// Fault injection (src/resilience):
//   --fault-plan=spec     compact spec, JSON, or @file: e.g.
//                         "brownout@2ms-6ms:bw=0.2;crash@10ms-12ms"
//   --terminal=poison|fail  policy when a demand read exhausts retries
//   --seed=N              simulation seed (default 1)
// Observability:
//   --metrics-out=path       write the JSON run-report
//   --metrics-csv=path       write the sampler time series as CSV
//   --metrics-prom=path      write a Prometheus text exposition
//   --sample-interval-us=N   sampling period (default 1000)
//   --progress               print a per-sample progress line to stderr
// Exit status is nonzero if any invariant violation was detected.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "src/check/invariant_checker.h"
#include "src/trace/trace.h"

#include "src/core/farmem.h"
#include "src/workloads/gups.h"
#include "src/workloads/memcached.h"
#include "src/workloads/metis.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/seqscan.h"
#include "src/workloads/trace.h"
#include "src/workloads/xsbench.h"

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    size_t eq = a.find('=');
    if (eq == std::string::npos) {
      // insert_or_assign rather than operator[]= : the latter trips a GCC 12
      // -Wrestrict false positive (PR105329) when the char* assign inlines.
      args.insert_or_assign(a.substr(2), std::string("1"));
    } else {
      args.insert_or_assign(a.substr(2, eq - 2), a.substr(eq + 1));
    }
  }
  return args;
}

std::string Get(const std::map<std::string, std::string>& args, const std::string& key,
                const std::string& def) {
  auto it = args.find(key);
  return it == args.end() ? def : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: magesim_cli --workload=<name> --system=<name> [--far=<pct>]\n"
               "                   [--threads=N] [--trace-file=path] [--save-trace=path]\n"
               "                   [--trace=events.jsonl] [--trace-chrome=timeline.json]\n"
               "                   [--check-interval=us] [--check] [--analysis]\n"
               "                   [--metrics-out=report.json] [--metrics-csv=series.csv]\n"
               "                   [--metrics-prom=metrics.txt] [--sample-interval-us=N]\n"
               "                   [--progress] [--fault-plan=spec|@file]\n"
               "                   [--terminal=poison|fail] [--seed=N]\n"
               "workloads: pagerank xsbench seqscan gups metis memcached\n"
               "           zipf-trace mixed-trace trace\n"
               "systems:   ideal hermit dilos magelnx magelib fastswap\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magesim;
  auto args = ParseArgs(argc, argv);
  std::string wname = Get(args, "workload", "");
  std::string sname = Get(args, "system", "magelib");
  int far = std::atoi(Get(args, "far", "30").c_str());
  int threads = std::atoi(Get(args, "threads", "24").c_str());
  if (wname.empty()) return Usage();

  std::unique_ptr<Workload> wl;
  if (wname == "pagerank") {
    wl = std::make_unique<PageRankWorkload>(
        PageRankWorkload::Options{.scale = 16, .iterations = 3, .threads = threads});
  } else if (wname == "xsbench") {
    wl = std::make_unique<XsBenchWorkload>(XsBenchWorkload::Options{
        .gridpoints = 1 << 18, .lookups_per_thread = 3000, .threads = threads});
  } else if (wname == "seqscan") {
    wl = std::make_unique<SeqScanWorkload>(
        SeqScanWorkload::Options{.region_pages = 32 * 1024, .threads = threads, .passes = 2});
  } else if (wname == "gups") {
    wl = std::make_unique<GupsWorkload>(GupsWorkload::Options{
        .total_pages = 48 * 1024,
        .threads = threads,
        .phase_change_at = 300 * kMillisecond,
        .run_for = 600 * kMillisecond});
  } else if (wname == "metis") {
    wl = std::make_unique<MetisWorkload>(MetisWorkload::Options{
        .input_pages = 16 * 1024, .intermediate_pages = 12 * 1024, .threads = threads});
  } else if (wname == "memcached") {
    wl = std::make_unique<MemcachedWorkload>(MemcachedWorkload::Options{
        .num_keys = 1 << 18,
        .load_ops_per_sec = 200000,
        .server_threads = threads,
        .duration = 1 * kSecond});
  } else if (wname == "zipf-trace" || wname == "mixed-trace" || wname == "trace") {
    Trace trace;
    if (wname == "trace") {
      std::string path = Get(args, "trace-file", "");
      if (path.empty() || !Trace::LoadFrom(path, &trace)) {
        std::fprintf(stderr, "cannot load trace file '%s'\n", path.c_str());
        return 1;
      }
    } else {
      TraceGenOptions gopt{.wss_pages = 32 * 1024,
                           .threads = threads,
                           .accesses_per_thread = 20000};
      trace = wname == "zipf-trace" ? GenerateZipfTrace(gopt, 0.95)
                                    : GenerateMixedTrace(gopt, 0.95, 0.2);
    }
    std::string save = Get(args, "save-trace", "");
    if (!save.empty() && !trace.SaveTo(save)) {
      std::fprintf(stderr, "cannot save trace to '%s'\n", save.c_str());
      return 1;
    }
    wl = std::make_unique<TraceReplayWorkload>(std::move(trace));
  } else {
    return Usage();
  }

  FarMemoryMachine::Options opt;
  try {
    opt.kernel = ConfigByName(sname);
  } catch (const std::invalid_argument&) {
    return Usage();
  }
  opt.local_mem_ratio = 1.0 - static_cast<double>(far) / 100.0;
  opt.time_limit = 5 * kSecond;  // safety stop for open-ended workloads
  opt.seed = static_cast<uint64_t>(std::atoll(Get(args, "seed", "1").c_str()));
  opt.fault_plan = Get(args, "fault-plan", "");
  std::string terminal = Get(args, "terminal", "poison");
  if (terminal == "fail") {
    opt.resilience.terminal = TerminalPolicy::kFailRun;
  } else if (terminal != "poison") {
    return Usage();
  }
  long check_us = std::atol(Get(args, "check-interval", "0").c_str());
  if (check_us > 0) opt.check_interval = check_us * kMicrosecond;
  if (args.count("check") != 0) opt.check_final = true;
  if (args.count("analysis") != 0) opt.analysis.enabled = true;

  opt.metrics.report_path = Get(args, "metrics-out", "");
  opt.metrics.csv_path = Get(args, "metrics-csv", "");
  opt.metrics.prom_path = Get(args, "metrics-prom", "");
  long sample_us = std::atol(Get(args, "sample-interval-us", "0").c_str());
  if (sample_us > 0) opt.metrics.sample_interval = sample_us * kMicrosecond;
  opt.metrics.progress = args.count("progress") != 0;
  opt.metrics.enabled = !opt.metrics.report_path.empty() || !opt.metrics.csv_path.empty() ||
                        !opt.metrics.prom_path.empty() || sample_us > 0 ||
                        opt.metrics.progress;

  // Install the tracer (if requested) before building the machine so the
  // checker's recent-event ring registers with it.
  Tracer tracer;
  std::unique_ptr<JsonlTraceSink> jsonl;
  std::unique_ptr<ChromeTraceSink> chrome;
  std::string trace_path = Get(args, "trace", "");
  std::string chrome_path = Get(args, "trace-chrome", "");
  if (!trace_path.empty()) {
    jsonl = std::make_unique<JsonlTraceSink>(trace_path);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot open trace output '%s'\n", trace_path.c_str());
      return 1;
    }
    tracer.AddSink(jsonl.get());
  }
  if (!chrome_path.empty()) {
    chrome = std::make_unique<ChromeTraceSink>(chrome_path);
    if (!chrome->ok()) {
      std::fprintf(stderr, "cannot open trace output '%s'\n", chrome_path.c_str());
      return 1;
    }
    tracer.AddSink(chrome.get());
  }
  if (jsonl != nullptr || chrome != nullptr || opt.check_interval > 0 || opt.check_final) {
    tracer.Install();
  }

  std::unique_ptr<FarMemoryMachine> machine_ptr;
  try {
    machine_ptr = std::make_unique<FarMemoryMachine>(opt, *wl);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  FarMemoryMachine& machine = *machine_ptr;
  RunResult r = machine.Run();

  std::printf("workload=%s system=%s far=%d%% threads=%d\n", wname.c_str(), sname.c_str(),
              far, wl->num_threads());
  std::printf("sim time        %.4f s\n", r.sim_seconds);
  std::printf("throughput      %.3f M %s/s\n", r.ops_per_sec / 1e6, wl->ops_unit().c_str());
  std::printf("major faults    %llu (%.2f M/s)\n",
              static_cast<unsigned long long>(r.faults), r.fault_mops);
  std::printf("fault latency   %s\n", r.fault_latency.Summary().c_str());
  std::printf("sync evictions  %llu\n", static_cast<unsigned long long>(r.sync_evictions));
  std::printf("evicted pages   %llu\n", static_cast<unsigned long long>(r.evicted_pages));
  std::printf("network         read %.1f Gbps / write %.1f Gbps\n", r.nic_read_gbps,
              r.nic_write_gbps);
  std::printf("tlb shootdowns  %s (ipis %llu)\n", r.tlb_shootdown_latency.Summary().c_str(),
              static_cast<unsigned long long>(r.ipis_sent));
  if (machine.resilience() != nullptr) {
    std::printf("resilience      retries %llu timeouts %llu breaker-opens %llu "
                "poisoned %llu wb-lost %llu\n",
                static_cast<unsigned long long>(r.rdma_retries),
                static_cast<unsigned long long>(r.rdma_timeouts),
                static_cast<unsigned long long>(r.breaker_opens),
                static_cast<unsigned long long>(r.pages_poisoned),
                static_cast<unsigned long long>(r.writebacks_lost));
  }
  if (machine.injector() != nullptr) {
    std::printf("injected        windows %llu drops %llu errors %llu crashes %llu\n",
                static_cast<unsigned long long>(r.fault_windows),
                static_cast<unsigned long long>(r.injected_drops),
                static_cast<unsigned long long>(r.injected_errors),
                static_cast<unsigned long long>(r.memnode_crashes));
  }
  if (machine.metrics() != nullptr && !opt.metrics.report_path.empty()) {
    std::printf("run report      %s\n", opt.metrics.report_path.c_str());
  }
  if (machine.checker() != nullptr) {
    std::printf("%s\n", machine.checker()->Report().c_str());
    if (r.invariant_violations > 0) return 1;
  }
  if (machine.analyzer() != nullptr) {
    std::printf("analysis        locks %llu order-edges %llu violations %llu\n",
                static_cast<unsigned long long>(r.analysis_locks),
                static_cast<unsigned long long>(r.analysis_order_edges),
                static_cast<unsigned long long>(r.analysis_violations));
    if (r.analysis_violations > 0) {
      std::printf("%s\n", machine.analyzer()->Report().c_str());
      return 1;
    }
  }
  if (r.aborted) {
    std::fprintf(stderr, "run aborted: %s\n", r.abort_reason.c_str());
    return 1;
  }
  return 0;
}
