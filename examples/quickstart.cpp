// Quickstart: run an application on a simulated MAGE far-memory machine and
// inspect what the paging layer did.
//
//   $ ./build/examples/quickstart
//
// The public API in three steps: pick a workload, pick a kernel variant and
// an offloading ratio, run the machine.
#include <cstdio>

#include "src/core/farmem.h"
#include "src/workloads/seqscan.h"

int main() {
  using namespace magesim;

  // 1. A workload: 8 threads scanning a 64 MB region twice.
  SeqScanWorkload workload({.region_pages = 16 * 1024, .threads = 8, .passes = 2});

  // 2. A machine: MAGE-Lib kernel, 40% of the working set offloaded to the
  //    far-memory node.
  FarMemoryMachine::Options options;
  options.kernel = MageLibConfig();
  options.local_mem_ratio = 0.6;

  // 3. Run and inspect.
  FarMemoryMachine machine(options, workload);
  RunResult r = machine.Run();

  std::printf("workload:        %s (%d threads, %llu pages WSS)\n", workload.name().c_str(),
              workload.num_threads(),
              static_cast<unsigned long long>(workload.wss_pages()));
  std::printf("kernel:          %s\n", options.kernel.name.c_str());
  std::printf("simulated time:  %.3f s\n", r.sim_seconds);
  std::printf("throughput:      %.2f M pages/s\n", r.ops_per_sec / 1e6);
  std::printf("major faults:    %llu (%.2f M/s)\n",
              static_cast<unsigned long long>(r.faults), r.fault_mops);
  std::printf("fault latency:   %s\n", r.fault_latency.Summary().c_str());
  std::printf("evicted pages:   %llu in %llu batches\n",
              static_cast<unsigned long long>(r.evicted_pages),
              static_cast<unsigned long long>(r.faults ? r.evicted_pages / 256 + 1 : 0));
  std::printf("sync evictions:  %llu (MAGE forbids them by design)\n",
              static_cast<unsigned long long>(r.sync_evictions));
  std::printf("network:         read %.1f Gbps, write %.1f Gbps\n", r.nic_read_gbps,
              r.nic_write_gbps);
  std::printf("TLB shootdowns:  %s\n", r.tlb_shootdown_latency.Summary().c_str());
  std::printf("checksum:        %llx (placement-independent)\n",
              static_cast<unsigned long long>(workload.checksum()));
  return 0;
}
