// The invariant checker must (a) stay silent on healthy simulations, even
// mid-flight with faults and evictions racing, and (b) catch each class of
// corruption when we deliberately break the kernel's state. The negative
// tests are the checker's own regression net: a refactor that silently stops
// detecting double-frees fails here, not in a production debugging session.
#include <gtest/gtest.h>

#include <string>

#include "src/check/invariant_checker.h"
#include "src/core/farmem.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

FarMemoryMachine::Options CheckedOptions() {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;
  opt.check_final = true;
  return opt;
}

SeqScanWorkload::Options SmallScan() {
  return SeqScanWorkload::Options{.region_pages = 2048, .threads = 2, .passes = 1};
}

bool HasViolation(const InvariantChecker& c, ViolationClass cls) {
  for (const Violation& v : c.violations()) {
    if (v.cls == cls) return true;
  }
  return false;
}

TEST(InvariantCheckerTest, CleanRunPeriodicChecksFindNothing) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine::Options opt = CheckedOptions();
  opt.check_interval = 50 * kMicrosecond;  // many checks while faults are live
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_GT(r.faults, 0u);
  EXPECT_GT(r.evicted_pages, 0u);  // scenario must actually stress eviction
  EXPECT_GT(r.invariant_checks, 10u);
  EXPECT_EQ(r.invariant_violations, 0u) << m.checker()->Report();
  EXPECT_TRUE(r.first_violation.empty());
  EXPECT_TRUE(m.checker()->ok());
}

TEST(InvariantCheckerTest, DoubleFreeIsBuddyCorruption) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  // Take an aligned pair so the single-page free below cannot coalesce, then
  // free the same frame twice (resetting the state byte to slip past the
  // allocator's own debug assert — a real double-free bug would arrive with
  // the frame already recycled, i.e. in exactly this shape).
  BuddyAllocator& buddy = m.kernel().buddy();
  uint32_t pfn = buddy.AllocBlock(1);
  ASSERT_NE(pfn, BuddyAllocator::kNoBlock);
  PageFrame& f = m.kernel().frame_pool().frame(pfn);
  buddy.FreePage(&f);
  f.state = PageFrame::State::kAllocated;
  buddy.FreePage(&f);

  EXPECT_GT(c.CheckNow(), 0u);
  EXPECT_TRUE(HasViolation(c, ViolationClass::kBuddyCorruption)) << c.Report();
}

TEST(InvariantCheckerTest, UnlinkedResidentPageIsAccountingLeak) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  // Yank a resident page out of the accounting lists: it is still mapped, but
  // no evictor can ever find it again (a page leak in a real kernel).
  PageFrame* victim = nullptr;
  for (uint32_t i = 0; i < m.kernel().frame_pool().size(); ++i) {
    PageFrame& f = m.kernel().frame_pool().frame(i);
    if (f.state == PageFrame::State::kMapped && f.linked()) {
      victim = &f;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no resident page at end of run";
  m.kernel().accounting().Unlink(victim);

  EXPECT_GT(c.CheckNow(), 0u);
  EXPECT_TRUE(HasViolation(c, ViolationClass::kAccountingLeak)) << c.Report();
  EXPECT_FALSE(c.ok());
}

TEST(InvariantCheckerTest, FlippedPresentBitIsPteFrameMismatch) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  PageFrame* victim = nullptr;
  for (uint32_t i = 0; i < m.kernel().frame_pool().size(); ++i) {
    PageFrame& f = m.kernel().frame_pool().frame(i);
    if (f.state == PageFrame::State::kMapped) {
      victim = &f;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  m.kernel().page_table().At(victim->vpn).present = false;

  EXPECT_GT(c.CheckNow(), 0u);
  EXPECT_TRUE(HasViolation(c, ViolationClass::kPteFrameMismatch)) << c.Report();
}

TEST(InvariantCheckerTest, IsolatedPageWithFaultInFlightIsOverlap) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  // Forge the forbidden state: an eviction batch holding a page whose fault
  // is simultaneously in flight (the dedup bit is what rules this out).
  PageFrame* victim = nullptr;
  for (uint32_t i = 0; i < m.kernel().frame_pool().size(); ++i) {
    PageFrame& f = m.kernel().frame_pool().frame(i);
    if (f.state == PageFrame::State::kMapped && f.linked()) {
      victim = &f;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  m.kernel().accounting().Unlink(victim);
  victim->state = PageFrame::State::kIsolated;
  m.kernel().page_table().At(victim->vpn).fault_in_flight = true;

  EXPECT_GT(c.CheckNow(), 0u);
  EXPECT_TRUE(HasViolation(c, ViolationClass::kEvictFaultOverlap)) << c.Report();
}

TEST(InvariantCheckerTest, CleanRunPassesQuiescentCheck) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());
  // The run drained naturally, so the strict quiescent rules apply too: no
  // fault left in flight, no frame stuck in transit.
  EXPECT_EQ(c.CheckQuiescent(), 0u) << c.Report();
}

TEST(InvariantCheckerTest, LeakedTransitFrameIsTransitLeak) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  // Forge a failed-remote-op leak: a frame allocated for a fault whose owner
  // bailed out without freeing it or completing the fault. Individually the
  // frame looks legal (kAllocated is a valid transit state); only the census
  // "transit <= faults in flight" catches it.
  BuddyAllocator& buddy = m.kernel().buddy();
  uint32_t pfn = buddy.AllocBlock(0);
  ASSERT_NE(pfn, BuddyAllocator::kNoBlock);
  m.kernel().frame_pool().frame(pfn).state = PageFrame::State::kAllocated;

  EXPECT_GT(c.CheckNow(), 0u);
  EXPECT_TRUE(HasViolation(c, ViolationClass::kTransitLeak)) << c.Report();
  EXPECT_FALSE(c.ok());
}

TEST(InvariantCheckerTest, AbandonedFaultIsStuckAtQuiescence) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  // Forge a fault path that died without calling EndFault. Mid-run this is
  // indistinguishable from a fault still in progress, so only the quiescent
  // check may flag it.
  PageTable& pt = m.kernel().page_table();
  uint64_t vpn = pt.num_pages();
  for (uint64_t i = 0; i < pt.num_pages(); ++i) {
    if (!pt.At(i).present && !pt.At(i).fault_in_flight) {
      vpn = i;
      break;
    }
  }
  ASSERT_LT(vpn, pt.num_pages()) << "no non-resident page at end of run";
  ASSERT_TRUE(pt.TryBeginFault(vpn));

  EXPECT_EQ(c.CheckNow(), 0u);  // mid-run rules cannot tell this apart
  EXPECT_GT(c.CheckQuiescent(), 0u);
  EXPECT_TRUE(HasViolation(c, ViolationClass::kStuckFault)) << c.Report();
}

TEST(InvariantCheckerTest, ViolationReportIncludesRecentTraceEvents) {
  Tracer tracer;
  TraceRingBuffer ring(4096);  // mirror of the machine's internal ring
  tracer.AddSink(&ring);
  tracer.Install();  // machine registers its recent-event ring with us

  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  ASSERT_TRUE(c.ok());

  // Corrupt a recently mapped page, so the recent-event window is guaranteed
  // to still hold events touching it.
  std::vector<TraceEvent> events = ring.Snapshot();
  PageFrame* victim = nullptr;
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->type != TraceEventType::kPageMap) continue;
    const Pte& pte = m.kernel().page_table().At(it->page);
    if (pte.present && pte.frame != nullptr &&
        pte.frame->state == PageFrame::State::kMapped) {
      victim = pte.frame;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no still-mapped page in the trace window";
  m.kernel().page_table().At(victim->vpn).present = false;
  c.CheckNow();

  bool found_context = false;
  for (const Violation& v : c.violations()) {
    if (v.pfn == victim->pfn && v.message.find("\n      ") != std::string::npos) {
      found_context = true;
    }
  }
  EXPECT_TRUE(found_context) << c.Report();
}

TEST(InvariantCheckerTest, ReportSummarizesPerClass) {
  SeqScanWorkload wl(SmallScan());
  FarMemoryMachine m(CheckedOptions(), wl);
  m.Run();
  InvariantChecker& c = *m.checker();
  std::string clean = c.Report();
  EXPECT_NE(clean.find("0 violations"), std::string::npos) << clean;

  PageFrame* victim = nullptr;
  for (uint32_t i = 0; i < m.kernel().frame_pool().size(); ++i) {
    PageFrame& f = m.kernel().frame_pool().frame(i);
    if (f.state == PageFrame::State::kMapped) {
      victim = &f;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  m.kernel().page_table().At(victim->vpn).present = false;
  c.CheckNow();
  std::string broken = c.Report();
  EXPECT_NE(broken.find("pte_frame_mismatch"), std::string::npos) << broken;
}

}  // namespace
}  // namespace magesim
