// FaultPlan parsing: the compact spec and the JSON surface must accept the
// documented grammar, reject malformed plans with a useful error, and round-
// trip losslessly through both renderings — the run-report embeds ToSpec()
// precisely so a logged plan can reproduce the run.
#include "src/resilience/fault_plan.h"

#include <gtest/gtest.h>

namespace magesim {
namespace {

TEST(FaultPlanTest, ParsesCompactSpecWithDefaults) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::Parse(
      "brownout@2ms-6ms:bw=0.2,lat=20us;drop@3ms-4ms:p=0.05,ch=read", &plan, &err))
      << err;
  ASSERT_EQ(plan.windows().size(), 2u);
  const FaultWindow& b = plan.windows()[0];
  EXPECT_EQ(b.kind, FaultKind::kBrownout);
  EXPECT_EQ(b.from, 2 * kMillisecond);
  EXPECT_EQ(b.until, 6 * kMillisecond);
  EXPECT_DOUBLE_EQ(b.bandwidth_factor, 0.2);
  EXPECT_EQ(b.extra_latency_ns, 20 * kMicrosecond);
  const FaultWindow& d = plan.windows()[1];
  EXPECT_EQ(d.kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(d.probability, 0.05);
  EXPECT_EQ(d.channel, FaultChannel::kRead);
  EXPECT_EQ(plan.end_time(), 6 * kMillisecond);
}

TEST(FaultPlanTest, KindDefaultsApply) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::Parse("brownout@0-1ms;degrade@0-1ms;drop@0-1ms;spike@0-1ms",
                               &plan, &err))
      << err;
  ASSERT_EQ(plan.windows().size(), 4u);
  EXPECT_DOUBLE_EQ(plan.windows()[0].bandwidth_factor, 0.25);  // brownout default
  EXPECT_DOUBLE_EQ(plan.windows()[1].bandwidth_factor, 0.5);   // degrade default
  EXPECT_DOUBLE_EQ(plan.windows()[1].probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.windows()[2].probability, 0.01);       // drop default
  EXPECT_EQ(plan.windows()[3].extra_latency_ns, 20 * kMicrosecond);  // spike default
}

TEST(FaultPlanTest, SpecRoundTripsLosslessly) {
  const char* specs[] = {
      "brownout@2ms-6ms:bw=0.2,lat=20us;drop@3ms-4ms:p=0.05,ch=read",
      "crash@10ms-12ms",
      "degrade@1us-2us:p=0.5,bw=0.125,lat=7ns",
      "spike@0-1s:p=0.001,lat=123us;ipidelay@500ms-800ms:lat=10us",
      // Values equal to kind defaults and "irrelevant" keys must survive too.
      "drop@1ms-2ms:p=0.01,lat=5us",
      "error@1ms-2ms:ch=write",
  };
  for (const char* spec : specs) {
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &err)) << spec << ": " << err;
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::Parse(plan.ToSpec(), &again, &err))
        << plan.ToSpec() << ": " << err;
    EXPECT_EQ(plan, again) << spec << " -> " << plan.ToSpec();
  }
}

TEST(FaultPlanTest, JsonRoundTripsLosslessly) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::Parse(
      "brownout@2ms-6ms:bw=0.2,lat=20us;drop@3ms-4ms:p=0.05,ch=read;crash@8ms-9ms",
      &plan, &err))
      << err;
  std::string json = plan.ToJson();
  EXPECT_EQ(json.front(), '[');  // auto-detection keys off the leading bracket
  FaultPlan again;
  ASSERT_TRUE(FaultPlan::Parse(json, &again, &err)) << json << ": " << err;
  EXPECT_EQ(plan, again);
}

TEST(FaultPlanTest, ParsesHandwrittenJson) {
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::Parse(
      R"([{"kind":"brownout","from":"2ms","until":"6ms","bw":0.2,"lat":"20us"},)"
      R"( {"kind":"drop","from":3000000,"until":4000000,"p":0.05,"ch":"read"}])",
      &plan, &err))
      << err;
  ASSERT_EQ(plan.windows().size(), 2u);
  EXPECT_EQ(plan.windows()[0].from, 2 * kMillisecond);
  EXPECT_EQ(plan.windows()[1].from, 3 * kMillisecond);
  EXPECT_EQ(plan.windows()[1].channel, FaultChannel::kRead);
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  const char* bad[] = {
      "meltdown@1ms-2ms",          // unknown kind
      "drop@2ms-1ms",              // until <= from
      "drop@1ms-1ms",              // empty window
      "drop@1ms-2ms:p=1.5",        // probability out of range
      "brownout@1ms-2ms:bw=0",     // zero bandwidth
      "brownout@1ms-2ms:bw=-1",    // negative bandwidth
      "drop@1ms-2ms:ch=sideways",  // unknown channel
      "drop@1ms",                  // missing until
      "drop@abc-2ms",              // bad time
      "drop@1ms-2ms:p",            // missing value
      "@1ms-2ms",                  // missing kind
      "[{\"kind\":\"drop\"}]",     // JSON missing window bounds
      "[{\"kind\":\"drop\",\"from\":0,\"until\":\"1ms\"",  // truncated JSON
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(FaultPlanTest, TimeUnitsParseAndFormat) {
  SimTime t = 0;
  EXPECT_TRUE(ParseTimeNs("250", &t));
  EXPECT_EQ(t, 250);
  EXPECT_TRUE(ParseTimeNs("12us", &t));
  EXPECT_EQ(t, 12 * kMicrosecond);
  EXPECT_TRUE(ParseTimeNs("3ms", &t));
  EXPECT_EQ(t, 3 * kMillisecond);
  EXPECT_TRUE(ParseTimeNs("2s", &t));
  EXPECT_EQ(t, 2 * kSecond);
  EXPECT_TRUE(ParseTimeNs("1500us", &t));
  EXPECT_EQ(t, 1500 * kMicrosecond);
  EXPECT_FALSE(ParseTimeNs("", &t));
  EXPECT_FALSE(ParseTimeNs("ms", &t));
  EXPECT_FALSE(ParseTimeNs("-5us", &t));

  EXPECT_EQ(FormatTimeNs(3 * kMillisecond), "3ms");
  EXPECT_EQ(FormatTimeNs(1500 * kMicrosecond), "1500us");
  EXPECT_EQ(FormatTimeNs(42), "42ns");
  EXPECT_EQ(FormatTimeNs(2 * kSecond), "2s");
  EXPECT_EQ(FormatTimeNs(0), "0ns");
}

TEST(FaultPlanTest, AddKeepsWindowsSortedByStart) {
  FaultPlan plan;
  plan.Add(FaultWindow{.kind = FaultKind::kDrop, .from = 5000, .until = 6000});
  plan.Add(FaultWindow{.kind = FaultKind::kSpike, .from = 1000, .until = 2000});
  plan.Add(FaultWindow{.kind = FaultKind::kCrash, .from = 3000, .until = 9000});
  ASSERT_EQ(plan.windows().size(), 3u);
  EXPECT_EQ(plan.windows()[0].from, 1000);
  EXPECT_EQ(plan.windows()[1].from, 3000);
  EXPECT_EQ(plan.windows()[2].from, 5000);
  EXPECT_EQ(plan.end_time(), 9000);
}

}  // namespace
}  // namespace magesim
