// End-to-end resilience: a machine running a real workload through a scripted
// fault plan must (a) stay deterministic per seed, (b) survive drops, errors,
// brownouts, and a memory-node crash with zero invariant violations, and
// (c) honor the terminal policy when the plan is unsurvivable.
#include <regex>
#include <string>

#include <gtest/gtest.h>

#include "src/core/farmem.h"
#include "src/workloads/gups.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

GupsWorkload::Options SmallGups() {
  GupsWorkload::Options o;
  o.total_pages = 4096;
  o.threads = 4;
  o.phase_change_at = 5 * kMillisecond;
  o.run_for = 10 * kMillisecond;
  o.prewarm_region_a = false;
  return o;
}

FarMemoryMachine::Options ChaosOptions(uint64_t seed) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = seed;
  opt.check_final = true;
  return opt;
}

TEST(ResiliencePathTest, SameSeedSamePlanIsByteIdentical) {
  auto run = [](uint64_t seed) {
    GupsWorkload wl(SmallGups());
    FarMemoryMachine::Options opt = ChaosOptions(seed);
    opt.fault_plan =
        "drop@1ms-4ms:p=0.05;spike@2ms-6ms:p=0.02,lat=30us;brownout@5ms-8ms:bw=0.25";
    opt.metrics.enabled = true;
    opt.metrics.sample_interval = 500 * kMicrosecond;
    FarMemoryMachine m(opt, wl);
    m.Run();
    return m.run_report_json();
  };
  static const std::regex kWallClock("\"wall_clock\":\\{[^}]*\\},?");
  std::string a = std::regex_replace(run(11), kWallClock, "");
  std::string b = std::regex_replace(run(11), kWallClock, "");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // A different seed draws different injection coin flips.
  std::string c = std::regex_replace(run(12), kWallClock, "");
  EXPECT_NE(a, c);
}

TEST(ResiliencePathTest, SurvivesDropsWithRetriesAndNoViolations) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(21);
  opt.fault_plan = "drop@1ms-6ms:p=0.05";
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_GT(r.injected_drops, 0u);
  EXPECT_GT(r.rdma_timeouts, 0u);    // every drop must be noticed...
  EXPECT_GT(r.rdma_retries, 0u);     // ...and re-issued
  EXPECT_EQ(r.pages_poisoned, 0u);   // light drops never exhaust the budget
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(ResiliencePathTest, SurvivesMemoryNodeCrashAndRecovery) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(5);
  opt.fault_plan = "crash@2ms-3ms";
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.memnode_crashes, 1u);
  EXPECT_GT(r.rdma_retries, 0u);
  EXPECT_GT(r.breaker_opens, 0u);  // a 1 ms outage must trip the breakers
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_FALSE(m.memnode().available() == false);  // recovered by plan end
}

TEST(ResiliencePathTest, FailRunPolicyAbortsUnderUnsurvivableCrash) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(5);
  // Crash that outlasts the whole run: retries must exhaust.
  opt.fault_plan = "crash@1ms-1s";
  opt.resilience.terminal = TerminalPolicy::kFailRun;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.abort_reason.empty());
}

TEST(ResiliencePathTest, PoisonPolicyKeepsRunningUnderUnsurvivableCrash) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(5);
  opt.fault_plan = "crash@1ms-1s";  // default terminal policy: poison
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(r.pages_poisoned, 0u);
  EXPECT_GT(r.breaker_opens, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(ResiliencePathTest, PrefetcherThrottlesWhileReadChannelDegraded) {
  // Sequential scan drives the stride prefetcher. A heavy error window keeps
  // the read breaker flapping open while faults still trickle through, so
  // faults that arrive during degraded stretches must suppress their stream
  // prefetch (counted) rather than issue speculative reads into a sick link.
  SeqScanWorkload wl({.region_pages = 4096, .threads = 4, .passes = 4});
  FarMemoryMachine::Options opt = ChaosOptions(9);
  opt.kernel.prefetch = true;  // off by default in every stock config
  opt.fault_plan = "error@2ms-20ms:p=0.95";
  opt.time_limit = 60 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_GT(r.breaker_opens, 0u);
  EXPECT_GT(r.prefetch_throttles, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(ResiliencePathTest, ResilientPathIdlesCleanlyWithoutFaultPlan) {
  // resilience_enabled with no plan: the data path takes the resilient route
  // (deadlines, breakers) but nothing ever fails, so every resilience counter
  // stays zero and the run completes normally.
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(31);
  opt.resilience_enabled = true;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.rdma_retries, 0u);
  EXPECT_EQ(r.rdma_timeouts, 0u);
  EXPECT_EQ(r.breaker_opens, 0u);
  EXPECT_EQ(r.pages_poisoned, 0u);
  EXPECT_EQ(r.fault_windows, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(ResiliencePathTest, BadPlanThrowsFromConstructor) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(1);
  opt.fault_plan = "meltdown@1ms-2ms";
  EXPECT_THROW({ FarMemoryMachine m(opt, wl); }, std::invalid_argument);
}

TEST(ResiliencePathTest, RunReportRecordsPlanAndResilienceCounters) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = ChaosOptions(11);
  opt.fault_plan = "drop@1ms-4ms:p=0.05";
  opt.metrics.enabled = true;
  FarMemoryMachine m(opt, wl);
  m.Run();
  const std::string& json = m.run_report_json();
  EXPECT_NE(json.find("\"fault_plan\":\"drop@1ms-4ms:p=0.05\""), std::string::npos);
  EXPECT_NE(json.find("\"resilience\":true"), std::string::npos);
  EXPECT_NE(json.find("resilience.rdma_retries"), std::string::npos);
  EXPECT_NE(json.find("inject.drops"), std::string::npos);
}

}  // namespace
}  // namespace magesim
