// Backoff and circuit-breaker building blocks: deterministic jitter, cap
// behavior, and the full breaker state machine (trip, cool-down, half-open
// probe, close / re-open) driven inside the simulation engine.
#include "src/resilience/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace magesim {
namespace {

TEST(BackoffTest, ZeroJitterIsExactGeometricWithCap) {
  RetryPolicy p;
  p.backoff_base_ns = 1000;
  p.backoff_mult = 2.0;
  p.backoff_cap_ns = 6000;
  p.jitter = 0.0;
  BackoffSequence seq(p);
  Rng rng(1);
  EXPECT_EQ(seq.Next(rng), 1000);
  EXPECT_EQ(seq.Next(rng), 2000);
  EXPECT_EQ(seq.Next(rng), 4000);
  EXPECT_EQ(seq.Next(rng), 6000);  // capped
  EXPECT_EQ(seq.Next(rng), 6000);  // stays capped
  seq.Reset();
  EXPECT_EQ(seq.Next(rng), 1000);
}

TEST(BackoffTest, JitterStaysWithinConfiguredBand) {
  RetryPolicy p;
  p.backoff_base_ns = 1000;
  p.backoff_mult = 2.0;
  p.backoff_cap_ns = 1 * kMillisecond;
  p.jitter = 0.25;
  Rng rng(42);
  BackoffSequence seq(p);
  double expected = 1000;
  for (int i = 0; i < 10; ++i) {
    SimTime d = seq.Next(rng);
    EXPECT_GE(d, static_cast<SimTime>(expected));
    EXPECT_LT(d, static_cast<SimTime>(expected * 1.25) + 1);
    expected = std::min(expected * 2, static_cast<double>(p.backoff_cap_ns));
  }
}

TEST(BackoffTest, SameSeedYieldsSameSequence) {
  RetryPolicy p;
  std::vector<SimTime> a, b;
  {
    Rng rng(7);
    BackoffSequence seq(p);
    for (int i = 0; i < 20; ++i) a.push_back(seq.Next(rng));
  }
  {
    Rng rng(7);
    BackoffSequence seq(p);
    for (int i = 0; i < 20; ++i) b.push_back(seq.Next(rng));
  }
  EXPECT_EQ(a, b);
}

TEST(BackoffTest, NeverReturnsZero) {
  RetryPolicy p;
  p.backoff_base_ns = 0;
  p.jitter = 0.0;
  BackoffSequence seq(p);
  Rng rng(1);
  EXPECT_GE(seq.Next(rng), 1);
}

TEST(BreakerTest, TripsAfterConsecutiveFailuresAndRecovers) {
  Engine e;
  BreakerPolicy p;
  p.failure_threshold = 3;
  p.open_duration_ns = 1000;
  CircuitBreaker br(p, 0);

  std::vector<SimTime> admit_times;
  auto body = [](CircuitBreaker& br, std::vector<SimTime>& admits) -> Task<> {
    Engine& eng = Engine::current();
    // Interleaved successes keep it closed.
    co_await br.Admit();
    br.OnFailure();
    co_await br.Admit();
    br.OnFailure();
    co_await br.Admit();
    br.OnSuccess();  // resets the consecutive count
    EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);

    for (int i = 0; i < 3; ++i) {
      co_await br.Admit();
      br.OnFailure();
    }
    EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(br.opens(), 1u);
    EXPECT_TRUE(br.degraded());

    // Next Admit parks through the cool-down, then proceeds as the probe.
    SimTime before = eng.now();
    co_await br.Admit();
    admits.push_back(eng.now() - before);
    EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
    br.OnSuccess();
    EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
    EXPECT_FALSE(br.degraded());
    EXPECT_GT(br.time_degraded_ns(eng.now()), 0);
  };
  e.Spawn(body(br, admit_times));
  e.Run();
  ASSERT_EQ(admit_times.size(), 1u);
  EXPECT_GE(admit_times[0], 1000);  // waited out the open duration
}

TEST(BreakerTest, FailedProbeReopens) {
  Engine e;
  BreakerPolicy p;
  p.failure_threshold = 1;
  p.open_duration_ns = 500;
  CircuitBreaker br(p, 1);
  auto body = [](CircuitBreaker& br) -> Task<> {
    co_await br.Admit();
    br.OnFailure();  // trips immediately (threshold 1)
    EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
    co_await br.Admit();  // probe after cool-down
    br.OnFailure();       // probe fails
    EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(br.opens(), 2u);
    co_await br.Admit();
    br.OnSuccess();
    EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  };
  e.Spawn(body(br));
  e.Run();
  EXPECT_EQ(br.opens(), 2u);
}

TEST(BreakerTest, WaitersQueueBehindProbeAndAllAdmitEventually) {
  Engine e;
  BreakerPolicy p;
  p.failure_threshold = 1;
  p.open_duration_ns = 1000;
  CircuitBreaker br(p, 0);
  int admitted = 0;
  bool probe_done = false;

  auto tripper = [](CircuitBreaker& br) -> Task<> {
    co_await br.Admit();
    br.OnFailure();
  };
  // The first waiter through becomes the probe; the rest park on the state
  // change and re-evaluate when the probe's verdict lands.
  auto waiter = [](CircuitBreaker& br, int& admitted, bool& probe_done, bool probe) -> Task<> {
    co_await br.Admit();
    ++admitted;
    if (probe) {
      // Hold the half-open state briefly so the others demonstrably park.
      co_await Delay{100};
      br.OnSuccess();
      probe_done = true;
    } else {
      EXPECT_TRUE(probe_done);  // non-probe waiters admit only after the close
      br.OnSuccess();
    }
  };
  e.Spawn(tripper(br));
  e.Spawn(waiter(br, admitted, probe_done, /*probe=*/true));
  e.Spawn(waiter(br, admitted, probe_done, /*probe=*/false));
  e.Spawn(waiter(br, admitted, probe_done, /*probe=*/false));
  e.Run();
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace magesim
