// Known-good fixture for magesim-coroutine-ref-capture: the safe idioms —
// by-value state, machine-lifetime referents, pre-suspension-only use,
// value captures, and a justified allow.
#include "fixture_support.h"

namespace magesim_fixture {

using magesim::Kernel;
using magesim::Task;

// By-value parameters are copied into the coroutine frame: always safe.
Task<> ByValue(long v) {
  co_await Task<>{};
  (void)v;
}

// Machine-lifetime referent (LongLivedTypes): outlives every task.
Task<> LongLived(Kernel* kernel) {
  co_await Task<>{};
  kernel->Touch();
}

// Pointer used only before the first suspension: nothing dangles.
Task<> UseBeforeAwait(int* counter) {
  ++*counter;
  co_await Task<>{};
}

// Value capture: copied into the lambda object before the coroutine starts.
Task<> ValueCaptureLambda() {
  int local = 7;
  auto work = [local]() -> Task<> {
    co_await Task<>{};
    (void)local;
    co_return;
  };
  co_await work();
  co_return;
}

// Justified: the caller structurally co_awaits this task inline.
// magesim-lint: allow(coroutine-ref-capture): out points into the caller's
// frame and every caller co_awaits inline (never detached).
Task<> Justified(long* out) {
  co_await Task<>{};
  *out = 1;
}

}  // namespace magesim_fixture
