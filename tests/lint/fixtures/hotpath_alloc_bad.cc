// Known-bad fixture for magesim-hotpath-alloc: allocation inside functions
// annotated MAGESIM_HOT_PATH.
#include <memory>
#include <vector>

#include "fixture_support.h"

namespace magesim_fixture {

MAGESIM_HOT_PATH int* DirectNew() {
  return new int(7);  // magesim-expect: hotpath-alloc
}

MAGESIM_HOT_PATH long SmartAlloc() {
  auto p = std::make_unique<long>(9);  // magesim-expect: hotpath-alloc
  auto q = std::make_shared<long>(11);  // magesim-expect: hotpath-alloc
  return *p + *q;
}

MAGESIM_HOT_PATH void GrowVector(std::vector<int>& v) {
  v.push_back(1);  // magesim-expect: hotpath-alloc
  v.emplace_back(2);  // magesim-expect: hotpath-alloc
  v.resize(64);  // magesim-expect: hotpath-alloc
}

}  // namespace magesim_fixture
