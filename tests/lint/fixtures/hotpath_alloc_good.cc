// Known-good fixture for magesim-hotpath-alloc: unannotated code may
// allocate freely; annotated code is fine with exempt amortized containers
// or a justified allow.
#include <vector>

#include "fixture_support.h"

namespace magesim_fixture {

using magesim::RingQueue;

// Setup-time code (no MAGESIM_HOT_PATH): allocation is expected here.
std::vector<int>* BuildTable() {
  auto* t = new std::vector<int>();
  t->push_back(1);
  return t;
}

// Growth-amortized magesim container receivers are exempt by type.
class Waiters {
 public:
  MAGESIM_HOT_PATH void Enqueue(int w) { queue_.push_back(w); }
  MAGESIM_HOT_PATH void Dequeue() { queue_.pop_front(); }

 private:
  RingQueue<int> queue_;
};

// Pre-reserved vector: justified with an inline allow.
class Batch {
 public:
  explicit Batch(std::size_t cap) { slots_.reserve(cap); }
  MAGESIM_HOT_PATH void Add(int s) {
    // magesim-lint: allow(hotpath-alloc): reserve()d to batch capacity at
    // construction; steady-state pushes never grow.
    slots_.push_back(s);
  }

 private:
  std::vector<int> slots_;
};

}  // namespace magesim_fixture
