// Known-good fixture for magesim-unordered-iteration: order-independent
// consumption of unordered containers, ordered containers feeding sinks,
// and a justified allow.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace magesim_fixture {

// Order-independent reduction over an unordered container: fine.
long SumCounters(const std::unordered_map<std::string, long>& counters) {
  long total = 0;
  for (const auto& kv : counters) {
    total += kv.second;
  }
  return total;
}

// Ordered container feeding a sink: iteration order is deterministic.
void ExportSorted(const std::map<std::string, long>& by_name,
                  std::vector<std::string>* rows) {
  for (const auto& kv : by_name) {
    rows->push_back(kv.first);
  }
}

// Unordered-to-sink, justified: the consumer sorts before emitting.
void ExportUnsorted(const std::unordered_map<std::string, long>& counters,
                    std::vector<std::string>* rows) {
  // magesim-lint: allow(unordered-iteration): consumer sorts `rows` before
  // any output; collection order is not observable.
  for (const auto& kv : counters) {
    rows->push_back(kv.first);
  }
}

}  // namespace magesim_fixture
