// Known-bad fixture for magesim-guardedby-static: Locked() access with no
// acquisition of the named mutex lexically in scope, and Unsafe() with no
// adjacent justification comment.
#include <vector>

#include "fixture_support.h"

namespace magesim_fixture {

using magesim::GuardedBy;
using magesim::SimMutex;
using magesim::Task;

class Queues {
 public:
  Task<> DrainWithoutLock() {
    pending_.Locked().pop_back();  // magesim-expect: guardedby-static
    co_return;
  }

  Task<> WrongLock() {
    auto g = co_await other_mu_.Scoped();
    pending_.Locked().pop_back();  // magesim-expect: guardedby-static
    co_return;
  }

  std::size_t UnjustifiedUnsafe() {
    // magesim-expect+2: guardedby-static
    std::size_t n = 0;
    n = pending_.Unsafe().size();
    return n;
  }

 private:
  SimMutex mu_;
  SimMutex other_mu_;
  GuardedBy<std::vector<int>> pending_{mu_};
};

}  // namespace magesim_fixture
