// Known-bad fixture for magesim-no-wallclock: every banned wall-clock /
// entropy source, one per line, each tagged with the finding it must raise.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace magesim_fixture {

long StampUnix() {
  return static_cast<long>(std::time(nullptr));  // magesim-expect: no-wallclock
}

long StampSteady() {
  auto t = std::chrono::steady_clock::now();  // magesim-expect: no-wallclock
  return t.time_since_epoch().count();
}

long StampSystem() {
  auto t = std::chrono::system_clock::now();  // magesim-expect: no-wallclock
  return t.time_since_epoch().count();
}

int LegacyRand() {
  return rand();  // magesim-expect: no-wallclock
}

unsigned HardwareEntropy() {
  std::random_device rd;  // magesim-expect: no-wallclock
  return rd();
}

}  // namespace magesim_fixture
