// Known-good fixture for magesim-no-wallclock: sim-time and seeded-RNG
// idioms, names that merely resemble banned calls, and a justified allow.
#include <cstdint>
#include <ctime>

namespace magesim_fixture {

// Deterministic stand-ins for Engine::now() / magesim::Rng.
inline uint64_t SimNow() { return 42; }

struct Rng {
  uint64_t state = 1;
  uint64_t Next() { return state = state * 6364136223846793005ULL + 1; }
};

uint64_t Sample(Rng& rng) { return rng.Next(); }

// Identifiers that embed banned names must not match: suffix/prefix words...
uint64_t wait_time(uint64_t deadline) { return deadline - SimNow(); }
struct Op {
  uint64_t time(uint64_t t) { return t; }  // ...nor member functions
};
uint64_t Member(Op& op) { return op.time(7); }

// A justified use is accepted when annotated.
long ReportStamp() {
  // magesim-lint: allow(no-wallclock): report metadata only, stripped by
  // the determinism tests before comparison.
  return static_cast<long>(std::time(nullptr));
}

}  // namespace magesim_fixture
