// Minimal self-contained stand-ins for the magesim types the lint fixtures
// exercise. The fixtures must compile as bare translation units (clang-tidy
// parses them with no project include path beyond this directory), so the
// real Task/SimMutex/GuardedBy machinery is reduced to the shapes the
// magesim-* checks key on: names, method spellings, and coroutine-ness.
//
// This header itself must stay clean under every magesim-* check — the
// fixture harness scans it along with the fixtures.
#ifndef MAGESIM_TESTS_LINT_FIXTURES_FIXTURE_SUPPORT_H_
#define MAGESIM_TESTS_LINT_FIXTURES_FIXTURE_SUPPORT_H_

#include <coroutine>
#include <cstddef>

#if defined(__clang__)
#define MAGESIM_HOT_PATH [[clang::annotate("magesim_hot_path")]]
#else
#define MAGESIM_HOT_PATH
#endif

namespace magesim {

// Coroutine return type: enough for `co_await`/`co_return` to parse and for
// the plugin's coawaitExpr() matchers to fire.
template <typename T = void>
class Task {
 public:
  struct promise_type {
    Task get_return_object() { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

// Mutex stand-in with the acquisition spellings guardedby-static recognizes.
class SimMutex {
 public:
  struct ScopedAwaiter {
    bool await_ready() const noexcept { return true; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    int await_resume() const noexcept { return 0; }
  };
  ScopedAwaiter Scoped() { return {}; }
  void AssertHeld() const {}
};

// GuardedBy with the real Locked()/Unsafe() API and the in-class-initializer
// idiom (`GuardedBy<T> f_{mu_};`) the check resolves the mutex from.
template <typename T>
class GuardedBy {
 public:
  explicit GuardedBy(SimMutex& m) : mu_(&m) {}
  T& Locked() { return v_; }
  const T& Locked() const { return v_; }
  T& Unsafe() { return v_; }
  const T& Unsafe() const { return v_; }

 private:
  SimMutex* mu_;
  T v_;
};

// Growth-amortized container: receivers of this type are exempt from
// hotpath-alloc by name (AllowedContainersRegex / ALLOWED_CONTAINER_TYPES).
template <typename T>
class RingQueue {
 public:
  void push_back(T) {}
  void pop_front() {}
  std::size_t size() const { return 0; }
};

// Machine-lifetime type: pointers/references to it are exempt from
// coroutine-ref-capture (LongLivedTypes).
class Kernel {
 public:
  void Touch() {}
};

}  // namespace magesim

#endif  // MAGESIM_TESTS_LINT_FIXTURES_FIXTURE_SUPPORT_H_
