// Known-good fixture for magesim-guardedby-static: Locked() behind a scoped
// acquisition or a held-assertion of the right mutex, and Unsafe() with a
// justification comment.
#include <vector>

#include "fixture_support.h"

namespace magesim_fixture {

using magesim::GuardedBy;
using magesim::SimMutex;
using magesim::Task;

class Queues {
 public:
  Task<> DrainLocked() {
    auto g = co_await mu_.Scoped();
    pending_.Locked().pop_back();
    co_return;
  }

  void DrainAsserted() {
    mu_.AssertHeld();
    pending_.Locked().pop_back();
  }

  std::size_t Depth() const {
    // Unsafe(): size() is a single word-sized read for reporting; a stale
    // value never steers control flow.
    return pending_.Unsafe().size();
  }

  Task<> DrainJustified() {
    // magesim-lint: allow(guardedby-static): single-threaded setup phase,
    // no concurrent evictor is running yet.
    pending_.Locked().pop_back();
    co_return;
  }

 private:
  SimMutex mu_;
  GuardedBy<std::vector<int>> pending_{mu_};
};

}  // namespace magesim_fixture
