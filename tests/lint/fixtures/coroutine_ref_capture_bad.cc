// Known-bad fixture for magesim-coroutine-ref-capture: by-ref state that
// lives across a suspension point in a coroutine.
#include "fixture_support.h"

namespace magesim_fixture {

using magesim::Task;

// Pointer parameter dereferenced after the first co_await: if the task is
// ever detached, the caller frame (and *counter) may be gone.
Task<> BumpAfterAwait(int* counter) {  // magesim-expect: coroutine-ref-capture
  co_await Task<>{};
  ++*counter;
}

// Reference parameter used after the first co_await.
Task<> StoreAfterAwait(long& slot, long v) {  // magesim-expect: coroutine-ref-capture
  co_await Task<>{};
  slot = v;
}

Task<> ByRefLambda() {
  int local = 0;
  auto work = [&]() -> Task<> {  // magesim-expect: coroutine-ref-capture
    co_await Task<>{};
    ++local;
    co_return;
  };
  co_await work();
  co_return;
}

}  // namespace magesim_fixture
