// Known-bad fixture for magesim-unordered-iteration: range-for over
// unordered containers whose bodies reach trace/metrics/victim sinks —
// hash order would leak into externally visible output.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace magesim_fixture {

void ExportCounters(const std::unordered_map<std::string, long>& counters,
                    std::vector<std::string>* rows) {
  for (const auto& kv : counters) {  // magesim-expect: unordered-iteration
    rows->push_back(kv.first);
  }
}

void SelectVictims(const std::unordered_set<unsigned long>& resident,
                   std::vector<unsigned long>* victims) {
  for (unsigned long vpn : resident) {  // magesim-expect: unordered-iteration
    if (victims->size() < 8) victims->emplace_back(vpn);
  }
}

}  // namespace magesim_fixture
